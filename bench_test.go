package citymesh_test

// This file is the benchmark harness mandated by DESIGN.md: one testing.B
// benchmark per table and figure in the paper, plus the ablations. Each
// benchmark runs the same experiment code the cmd/ binaries use and reports
// the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every row/series the paper reports (at a reduced Scale so the
// harness completes in minutes; the cmd/ tools run full size).

import (
	"fmt"
	"io"
	"testing"

	"citymesh/internal/experiments"
)

// BenchmarkTable1MeasurementStudy regenerates Table 1 (measurements and
// unique APs per survey area).
func BenchmarkTable1MeasurementStudy(b *testing.B) {
	var res *experiments.MeasurementStudyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasurementStudy(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rows["downtown"].UniqueAPs), "downtownAPs")
	b.ReportMetric(float64(res.Rows["river"].UniqueAPs), "riverAPs")
}

// BenchmarkFigure1aMACsPerMeasurement regenerates Figure 1a's CDF medians.
func BenchmarkFigure1aMACsPerMeasurement(b *testing.B) {
	var res *experiments.MeasurementStudyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasurementStudy(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MACsPerMeasurement["downtown"].Quantile(0.5), "downtownP50macs")
	b.ReportMetric(res.MACsPerMeasurement["river"].Quantile(0.5), "riverP50macs")
}

// BenchmarkFigure1bAPSpread regenerates Figure 1b's spread CDF medians.
func BenchmarkFigure1bAPSpread(b *testing.B) {
	var res *experiments.MeasurementStudyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasurementStudy(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Spread["campus"].Quantile(0.5), "campusP50spreadM")
	b.ReportMetric(res.Spread["river"].Quantile(0.5), "riverP50spreadM")
}

// BenchmarkFigure2CommonAPs regenerates Figure 2 (common APs vs pair
// distance).
func BenchmarkFigure2CommonAPs(b *testing.B) {
	var res *experiments.MeasurementStudyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MeasurementStudy(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	sums := res.CommonByDistance["downtown"].Summaries()
	if len(sums) > 0 {
		b.ReportMetric(sums[0].P50, "nearBinP50common")
	}
}

// BenchmarkFigure5Render regenerates the Figure 5 panels (footprints and AP
// graph SVGs).
func BenchmarkFigure5Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure5("boston", 0.5, io.Discard, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6PerCity regenerates Figure 6: reachability,
// deliverability and transmission overhead for every preset city (X2's 13x
// overhead figure is the overhead metric here).
func BenchmarkFigure6PerCity(b *testing.B) {
	cfg := experiments.Figure6Config{
		ReachPairs:   300,
		DeliverPairs: 20,
		Seed:         1,
		Scale:        0.5,
	}
	var rows []experiments.Figure6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Reachability, r.City+"_reach")
		b.ReportMetric(r.Deliverability, r.City+"_deliv")
		b.ReportMetric(r.OverheadMedian, r.City+"_ovhP50")
	}
}

// BenchmarkFigure7SingleSimulation regenerates Figure 7 (one rendered
// simulation with conduit/forwarding overlay).
func BenchmarkFigure7SingleSimulation(b *testing.B) {
	var res experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure7("boston", 0.5, 3, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Forwarded), "conduitAPs")
	b.ReportMetric(float64(res.ReceivedOnly), "receiveOnlyAPs")
}

// BenchmarkHeaderSizeBits regenerates the §4 in-text result: compressed
// source-route header of median 175 / p90 225 bits.
func BenchmarkHeaderSizeBits(b *testing.B) {
	var res experiments.HeaderSizeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.HeaderSizes("boston", 0.75, 1, 150)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RouteBits.P50, "routeBitsP50")
	b.ReportMetric(res.RouteBits.P90, "routeBitsP90")
	b.ReportMetric(res.FullHeaderBits.P50, "headerBitsP50")
}

// BenchmarkAblationConduitWidth regenerates A1: the conduit width W sweep.
func BenchmarkAblationConduitWidth(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ConduitWidthSweep("boston", 0.4, 1, []float64{25, 50, 100}, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Deliverability, r.Label+"_deliv")
	}
}

// BenchmarkAblationEdgeWeightExponent regenerates A2: the cubed-distance
// design choice versus linear and squared weights.
func BenchmarkAblationEdgeWeightExponent(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.WeightExponentSweep("boston", 0.4, 1, []float64{1, 2, 3}, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Deliverability, r.Label+"_deliv")
	}
}

// BenchmarkBaselineComparison regenerates A3: CityMesh vs flooding, gossip,
// greedy geographic and the AODV discovery-cost model.
func BenchmarkBaselineComparison(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.BaselineComparison("boston", 0.4, 1, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.BroadcastsP50, r.Label+"_bcastP50")
	}
}

// BenchmarkFailureInjection regenerates A4: deliverability versus the
// fraction of failed or compromised APs.
func BenchmarkFailureInjection(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.FailureInjection("boston", 0.4, 1, []float64{0, 0.2, 0.4}, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Deliverability, r.Label+"_deliv")
	}
}

// BenchmarkMultipathUnderAttack regenerates A5: k-route multipath
// deliverability under compromised (blackhole) APs.
func BenchmarkMultipathUnderAttack(b *testing.B) {
	var rows []experiments.SecurityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.MultipathUnderAttack("boston", 0.4, 1, []float64{0, 0.1}, []int{1, 3}, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Deliverability, fmt.Sprintf("atk%.0f_k%d_deliv", 100*r.AttackFrac, r.Paths))
	}
}

// BenchmarkRadioModels regenerates A6: PHY-model fidelity ablation.
func BenchmarkRadioModels(b *testing.B) {
	var rows []experiments.RadioRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RadioModelSweep("boston", 0.4, 1, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, r := range rows {
		b.ReportMetric(r.Deliverability, fmt.Sprintf("model%d_deliv", i))
	}
}

// BenchmarkGeocastCoverage regenerates A7: geospatial-messaging coverage by
// target radius.
func BenchmarkGeocastCoverage(b *testing.B) {
	var rows []experiments.GeocastRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.GeocastSweep("boston", 0.4, 1, []float64{100, 250}, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.CoverageP50, fmt.Sprintf("r%.0f_covP50", r.RadiusM))
	}
}
