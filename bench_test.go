package citymesh_test

// This file is the benchmark harness mandated by DESIGN.md. It iterates
// experiments.Registry() instead of hand-enumerating entry points, so a new
// experiment becomes benchmarkable by registering itself. Two extra
// benchmark families measure the parallel sweep engine: the same sweep at
// Parallelism=1 and Parallelism=GOMAXPROCS (output is byte-identical by
// construction; only wall-clock differs).
//
//	go test -bench=. -benchmem                  # every experiment, reduced scale
//	go test -bench=Parallel -benchmem           # just the speedup pair
//	CITYMESH_BENCH=1 go test -run WriteBenchJSON # emit BENCH_sim.json
//
// BENCH_sim.json records ns/op, allocs and the parallel-vs-serial speedup
// together with the core count the numbers were taken on — the speedup is
// only meaningful relative to that.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/experiments"
	"citymesh/internal/faults"
	"citymesh/internal/geo"
	"citymesh/internal/sim"
	"citymesh/internal/trafficgen"
)

// benchRunConfig is the reduced-scale setting every registry benchmark
// runs at, so the full sweep completes in minutes. The cmd/ tools run the
// paper's full size.
func benchRunConfig() experiments.RunConfig {
	return experiments.RunConfig{
		City:   "gridtown",
		Cities: []string{"gridtown"},
		Scale:  0.4,
		Seed:   1,
		Pairs:  10,
	}
}

// BenchmarkExperiments runs every registered experiment as a
// sub-benchmark: go test -bench=Experiments/resilience, etc.
func BenchmarkExperiments(b *testing.B) {
	for _, e := range experiments.Registry() {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			cfg := benchRunConfig()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchParallelisms is the serial/parallel pair the speedup benchmarks and
// BENCH_sim.json compare.
func benchParallelisms() []int {
	ps := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		ps = append(ps, n)
	}
	return ps
}

// BenchmarkResilienceParallel measures the tentpole claim: the resilience
// sweep at Parallelism=1 versus all cores, identical output.
func BenchmarkResilienceParallel(b *testing.B) {
	for _, par := range benchParallelisms() {
		par := par
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			cfg := benchRunConfig()
			cfg.Parallelism = par
			cfg.Pairs = 20
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunByName("resilience", cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure6Parallel holds the headline table to the same
// measurement.
func BenchmarkFigure6Parallel(b *testing.B) {
	for _, par := range benchParallelisms() {
		par := par
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			cfg := benchRunConfig()
			cfg.Parallelism = par
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunByName("figure6", cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure5Render covers the one paper figure that lives outside
// the registry (pure SVG rendering, no sweep).
func BenchmarkFigure5Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure5("boston", 0.5, io.Discard, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEntry is one row of BENCH_sim.json.
type benchEntry struct {
	Name        string  `json:"name"`
	Parallelism int     `json:"parallelism"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_serial"`
	// AdmissionRejectRate is the session layer's rejection fraction at the
	// entry's fixed offered load (trafficgen entry only).
	AdmissionRejectRate float64 `json:"admission_rejection_rate,omitempty"`
}

// benchReport is the whole BENCH_sim.json document.
type benchReport struct {
	Cores      int          `json:"cores"`
	GoMaxProcs int          `json:"gomaxprocs"`
	GoVersion  string       `json:"go_version"`
	Note       string       `json:"note"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// TestWriteBenchJSON emits BENCH_sim.json. Gated behind CITYMESH_BENCH=1
// because it re-runs the sweeps several times via testing.Benchmark and is
// far too slow for the ordinary test suite:
//
//	CITYMESH_BENCH=1 go test -run WriteBenchJSON -timeout 30m
func TestWriteBenchJSON(t *testing.T) {
	if os.Getenv("CITYMESH_BENCH") == "" {
		t.Skip("set CITYMESH_BENCH=1 to regenerate BENCH_sim.json")
	}

	sweep := func(name string, par int) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			cfg := benchRunConfig()
			cfg.Parallelism = par
			cfg.Pairs = 20
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunByName(name, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	report := benchReport{
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "speedup_vs_serial compares the same sweep at Parallelism=1 and " +
			"Parallelism=GOMAXPROCS on this machine; outputs are byte-identical.",
	}
	for _, name := range []string{"resilience", "figure6"} {
		serial := sweep(name, 1)
		serialNs := serial.NsPerOp()
		report.Benchmarks = append(report.Benchmarks, benchEntry{
			Name: name, Parallelism: 1,
			NsPerOp:     serialNs,
			AllocsPerOp: serial.AllocsPerOp(),
			BytesPerOp:  serial.AllocedBytesPerOp(),
			Speedup:     1,
		})
		par := runtime.GOMAXPROCS(0)
		if par <= 1 {
			continue
		}
		parallel := sweep(name, par)
		speedup := 0.0
		if parallel.NsPerOp() > 0 {
			speedup = float64(serialNs) / float64(parallel.NsPerOp())
		}
		report.Benchmarks = append(report.Benchmarks, benchEntry{
			Name: name, Parallelism: par,
			NsPerOp:     parallel.NsPerOp(),
			AllocsPerOp: parallel.AllocsPerOp(),
			BytesPerOp:  parallel.AllocedBytesPerOp(),
			Speedup:     speedup,
		})
	}

	// trafficgen: the closed-loop user-traffic generator at a fixed 4x
	// flash-crowd load on a small healthy mesh. The rejection rate is the
	// session layer's admission behavior at that load — deterministic, so
	// one extra run outside the timer pins it exactly.
	n, tcfg := benchTrafficSetup(t)
	tg := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trafficgen.Run(n, sim.DefaultConfig(), tcfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep, err := trafficgen.Run(n, sim.DefaultConfig(), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	report.Benchmarks = append(report.Benchmarks, benchEntry{
		Name: "trafficgen", Parallelism: 1,
		NsPerOp:             tg.NsPerOp(),
		AllocsPerOp:         tg.AllocsPerOp(),
		BytesPerOp:          tg.AllocedBytesPerOp(),
		Speedup:             1,
		AdmissionRejectRate: rep.RejectRate(),
	})

	// metroscale: one full resilience cell on the 10^5-AP metro preset,
	// network build included — the cost a CI smoke run pays end to end.
	ms := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := runMetroCell(); err != nil {
				b.Fatal(err)
			}
		}
	})
	report.Benchmarks = append(report.Benchmarks, benchEntry{
		Name: "metroscale", Parallelism: 1,
		NsPerOp:     ms.NsPerOp(),
		AllocsPerOp: ms.AllocsPerOp(),
		BytesPerOp:  ms.AllocedBytesPerOp(),
		Speedup:     1,
	})

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile("BENCH_sim.json", out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_sim.json (%d cores, gomaxprocs %d)", report.Cores, report.GoMaxProcs)
}

// runMetroCell executes the metroscale unit of work: a single-fraction
// uniform-failure resilience cell on the hidden metro preset (~10^5 APs),
// including city generation, AP placement, and engine construction.
func runMetroCell() ([]experiments.ResilienceRow, error) {
	return experiments.Resilience(experiments.ResilienceConfig{
		Cities:      []string{"metro"},
		Mode:        faults.ModeUniform,
		Fracs:       []float64{0.3},
		Pairs:       3,
		Seed:        1,
		Parallelism: 1,
	})
}

// TestMetroscaleSmoke is the CI regression gate on metro-scale wall time:
// one metro resilience cell must finish inside 10 seconds and inside 2x
// the committed BENCH_sim.json metroscale baseline. Gated behind
// CITYMESH_METRO=1 so the ordinary test suite stays fast:
//
//	CITYMESH_METRO=1 go test -run TestMetroscaleSmoke
func TestMetroscaleSmoke(t *testing.T) {
	if os.Getenv("CITYMESH_METRO") == "" {
		t.Skip("set CITYMESH_METRO=1 to run the metro-scale smoke benchmark")
	}

	raw, err := os.ReadFile("BENCH_sim.json")
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	var baseline benchReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parse committed baseline: %v", err)
	}
	var baseNs int64
	for _, e := range baseline.Benchmarks {
		if e.Name == "metroscale" {
			baseNs = e.NsPerOp
		}
	}
	if baseNs <= 0 {
		t.Fatal("BENCH_sim.json has no metroscale baseline; regenerate it with CITYMESH_BENCH=1")
	}

	start := time.Now()
	rows, err := runMetroCell()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(rows) == 0 || rows[0].Pairs == 0 {
		t.Fatalf("metro cell ran no pairs: %+v", rows)
	}
	t.Logf("metro cell: %v (baseline %v, limit %v)",
		elapsed, time.Duration(baseNs), 2*time.Duration(baseNs))
	if elapsed > 10*time.Second {
		t.Errorf("metro cell took %v, budget 10s", elapsed)
	}
	if elapsed > 2*time.Duration(baseNs) {
		t.Errorf("metro cell took %v, >2x the committed baseline %v", elapsed, time.Duration(baseNs))
	}
}

// benchTrafficSetup builds the small fixed-load scenario the trafficgen
// bench entry measures: a shrunk featureless gridtown and a 4x flash crowd.
func benchTrafficSetup(t *testing.T) (*core.Network, trafficgen.Config) {
	spec, ok := citygen.Preset("gridtown")
	if !ok {
		t.Fatal("gridtown preset missing")
	}
	spec.Width, spec.Height = 260, 260
	spec.Rivers, spec.Parks, spec.Highways = nil, nil, nil
	spec.DowntownRect, spec.CampusRect = geo.Rect{}, geo.Rect{}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n, trafficgen.Config{
		Users: 40, APs: 6, Ticks: 24,
		FlashMultiplier: 4,
		Seed:            1,
	}
}
