package session

import (
	"fmt"
	"testing"
)

// handle round-trips a request through the wire path and decodes the reply,
// exercising encode/decode on every test interaction.
func handle(t *testing.T, s *Service, m Msg, now float64) Reply {
	t.Helper()
	frame, err := EncodeMsg(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out := s.Handle(frame, now)
	if out == nil {
		t.Fatalf("Handle returned nil for valid frame %+v", m)
	}
	r, err := DecodeReply(out)
	if err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	return r
}

func checkBooks(t *testing.T, s *Service) {
	t.Helper()
	if err := s.Stats().AccountingError(); err != nil {
		t.Fatal(err)
	}
}

// sinkForwarder delivers or drops everything, at a fixed latency.
type sinkForwarder struct {
	deliver bool
	latency float64
	count   int
}

func (f *sinkForwarder) Forward(m *Pending, now float64) Outcome {
	f.count++
	return Outcome{Delivered: f.deliver, Latency: f.latency}
}

func TestSessionLifecycle(t *testing.T) {
	s := New(Config{Building: 5})
	const alice, bob = 1, 2
	if r := handle(t, s, Msg{Type: TAttach, ClientID: alice, Addr: addr(0xA1)}, 0); r.Type != TAccept {
		t.Fatalf("attach: got %+v", r)
	}
	if r := handle(t, s, Msg{Type: TAttach, ClientID: bob, Addr: addr(0xB2)}, 0); r.Type != TAccept {
		t.Fatalf("attach: got %+v", r)
	}

	// Alice sends to Bob, whose postbox is on this same AP (building 5).
	r := handle(t, s, Msg{Type: TSubmit, ClientID: alice, Dst: 5, To: addr(0xB2), Payload: []byte("hi bob")}, 1)
	if r.Type != TAccept {
		t.Fatalf("submit: got %+v", r)
	}
	if got := s.QueueLen(); got != 1 {
		t.Fatalf("queue len %d, want 1", got)
	}

	// Drain stores it locally.
	ds := s.Drain(3, 10, nil)
	if len(ds) != 1 || !ds[0].Delivered || ds[0].Latency != 2 {
		t.Fatalf("drain: %+v", ds)
	}

	// Bob fetches, then acks.
	fr := handle(t, s, Msg{Type: TFetch, ClientID: bob}, 4)
	if fr.Type != TDeliver || len(fr.Msgs) != 1 || string(fr.Msgs[0].Payload) != "hi bob" {
		t.Fatalf("fetch: %+v", fr)
	}
	ar := handle(t, s, Msg{Type: TAck, ClientID: bob, UpToSeq: fr.Msgs[0].Seq}, 5)
	if ar.Type != TAckOK || ar.Remaining != 0 {
		t.Fatalf("ack: %+v", ar)
	}

	st := s.Stats()
	if st.Offered != 1 || st.Accepted != 1 || st.Delivered != 1 || st.Fetched != 1 || st.Acked != 1 {
		t.Fatalf("stats: %+v", st)
	}
	checkBooks(t, s)
}

func TestSubmitWithoutSessionIsAdmissionReject(t *testing.T) {
	s := New(Config{})
	r := handle(t, s, Msg{Type: TSubmit, ClientID: 99, Dst: 1, Payload: []byte("x")}, 0)
	if r.Type != TReject || r.Cause != CauseAdmission {
		t.Fatalf("got %+v, want admission reject", r)
	}
	if st := s.Stats(); st.RejectedAdmission != 1 {
		t.Fatalf("stats: %+v", st)
	}
	checkBooks(t, s)
}

func TestRateLimitCause(t *testing.T) {
	s := New(Config{ClientRate: 1, ClientBurst: 2})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(1)}, 0)
	var rejected int
	// Distinct payloads: identical resends are deduped before the bucket.
	for i := 0; i < 5; i++ {
		r := handle(t, s, Msg{Type: TSubmit, ClientID: 1, Dst: 1, Payload: []byte{'x', byte(i)}}, 0)
		if r.Type == TReject {
			if r.Cause != CauseRateLimit {
				t.Fatalf("got cause %v, want rate-limit", r.Cause)
			}
			if r.RetryAfterMs == 0 {
				t.Fatal("reject must carry a retry-after hint")
			}
			rejected++
		}
	}
	if rejected != 3 {
		t.Fatalf("rejected %d of 5, want 3 (burst 2)", rejected)
	}
	// Tokens refill with time.
	if r := handle(t, s, Msg{Type: TSubmit, ClientID: 1, Dst: 1, Payload: []byte("refill")}, 10); r.Type != TAccept {
		t.Fatalf("after refill: %+v", r)
	}
	checkBooks(t, s)
}

func TestBufferFullCauses(t *testing.T) {
	// Per-client send buffer first.
	s := New(Config{SendBufCap: 2, QueueCap: 100, ClientRate: 1000, ClientBurst: 1000})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(1)}, 0)
	for i := 0; i < 2; i++ {
		if r := handle(t, s, Msg{Type: TSubmit, ClientID: 1, Dst: 1, Payload: []byte{'x', byte(i)}}, 0); r.Type != TAccept {
			t.Fatalf("submit %d: %+v", i, r)
		}
	}
	r := handle(t, s, Msg{Type: TSubmit, ClientID: 1, Dst: 1, Payload: []byte("overflow")}, 0)
	if r.Type != TReject || r.Cause != CauseBufferFull {
		t.Fatalf("send-buffer overflow: got %+v", r)
	}

	// AP-wide queue cap next: many clients, one-slot queue each side.
	s2 := New(Config{SendBufCap: 10, QueueCap: 3, ClientRate: 1000, ClientBurst: 1000,
		// Thresholds above 1.0 keep the tier at normal so this test sees
		// only the buffer cause, not admission PoW.
		CongestedAt: 2, OverloadAt: 3})
	var bufferFull int
	for c := uint64(1); c <= 5; c++ {
		handle(t, s2, Msg{Type: TAttach, ClientID: c, Addr: addr(byte(c))}, 0)
		if r := handle(t, s2, Msg{Type: TSubmit, ClientID: c, Dst: 1, Payload: []byte("x")}, 0); r.Type == TReject {
			if r.Cause != CauseBufferFull {
				t.Fatalf("client %d: got cause %v, want buffer-full", c, r.Cause)
			}
			bufferFull++
		}
	}
	if bufferFull != 2 {
		t.Fatalf("buffer-full rejections %d, want 2 (cap 3 of 5)", bufferFull)
	}
	checkBooks(t, s)
	checkBooks(t, s2)
}

func TestTierEscalationDemandsPow(t *testing.T) {
	s := New(Config{QueueCap: 10, CongestedAt: 0.5, OverloadAt: 0.9,
		PowBitsCongested: 4, PowBitsOverload: 8,
		ClientRate: 1000, ClientBurst: 1000, SendBufCap: 100})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(1)}, 0)

	if tier, bits, _ := s.Advice(0); tier != TierNormal || bits != 0 {
		t.Fatalf("empty queue: tier %v bits %d", tier, bits)
	}
	// Fill to congestion threshold: 5 of 10 (distinct payloads, or the
	// dedup window would collapse them into one).
	for i := 0; i < 5; i++ {
		if r := handle(t, s, Msg{Type: TSubmit, ClientID: 1, Dst: 1, Payload: []byte{'x', byte(i)}}, 0); r.Type != TAccept {
			t.Fatalf("fill %d: %+v", i, r)
		}
	}
	tier, bits, headroom := s.Advice(0)
	if tier != TierCongested || bits != 4 || headroom != 5 {
		t.Fatalf("at 5/10: tier %v bits %d headroom %d", tier, bits, headroom)
	}

	// A submit without proof is now refused as admission.
	payload := []byte("no proof")
	r := handle(t, s, Msg{Type: TSubmit, ClientID: 1, Dst: 1, To: addr(2), Payload: payload}, 0)
	if r.Type != TReject || r.Cause != CauseAdmission || r.PowBits != 4 {
		t.Fatalf("unsolved submit at congested: %+v", r)
	}

	// The same submit with a solved nonce is admitted.
	nonce, ok := SolvePoW(1, addr(2), payload, int(bits), 0)
	if !ok {
		t.Fatal("solve failed")
	}
	r = handle(t, s, Msg{Type: TSubmit, ClientID: 1, Dst: 1, To: addr(2), PowNonce: nonce, Payload: payload}, 0)
	if r.Type != TAccept {
		t.Fatalf("solved submit at congested: %+v", r)
	}

	// Push to overload: difficulty rises again.
	for s.QueueLen() < 9 {
		p := []byte(fmt.Sprintf("fill-%d", s.QueueLen()))
		n, _ := SolvePoW(1, addr(2), p, 4, 0)
		if r := handle(t, s, Msg{Type: TSubmit, ClientID: 1, Dst: 1, To: addr(2), PowNonce: n, Payload: p}, 0); r.Type != TAccept {
			t.Fatalf("fill to overload: %+v", r)
		}
	}
	if tier, bits, _ := s.Advice(0); tier != TierOverload || bits != 8 {
		t.Fatalf("at 9/10: tier %v bits %d", tier, bits)
	}
	if st := s.Stats(); st.PeakTier != TierOverload {
		t.Fatalf("peak tier %v, want overload", st.PeakTier)
	}
	checkBooks(t, s)
}

func TestSessionTableRecyclesStalest(t *testing.T) {
	s := New(Config{MaxSessions: 2})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(1)}, 0)
	handle(t, s, Msg{Type: TAttach, ClientID: 2, Addr: addr(2)}, 5)
	// Client 3 attaches at capacity: client 1 (stalest, idle) is recycled.
	if r := handle(t, s, Msg{Type: TAttach, ClientID: 3, Addr: addr(3)}, 10); r.Type != TAccept {
		t.Fatalf("attach at capacity: %+v", r)
	}
	if st := s.Stats(); st.Attached != 2 {
		t.Fatalf("attached %d, want 2", st.Attached)
	}
	// Client 1's session is gone: its submit is an admission reject.
	if r := handle(t, s, Msg{Type: TSubmit, ClientID: 1, Dst: 1, Payload: []byte("x")}, 11); r.Cause != CauseAdmission {
		t.Fatalf("recycled client submit: %+v", r)
	}
	checkBooks(t, s)
}

func TestAttachRefusedWhenAllSessionsBusy(t *testing.T) {
	s := New(Config{MaxSessions: 2, ClientRate: 1000, ClientBurst: 1000})
	for c := uint64(1); c <= 2; c++ {
		handle(t, s, Msg{Type: TAttach, ClientID: c, Addr: addr(byte(c))}, 0)
		handle(t, s, Msg{Type: TSubmit, ClientID: c, Dst: 1, Payload: []byte("x")}, 0)
	}
	if r := handle(t, s, Msg{Type: TAttach, ClientID: 3, Addr: addr(3)}, 1); r.Type != TReject || r.Cause != CauseAdmission {
		t.Fatalf("attach with all sessions busy: %+v", r)
	}
}

func TestDrainForwarderOutcomes(t *testing.T) {
	s := New(Config{Building: 0, ClientRate: 1000, ClientBurst: 1000})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(1)}, 0)
	for i := 0; i < 4; i++ {
		// Distinct payloads: identical resubmissions would be deduped.
		handle(t, s, Msg{Type: TSubmit, ClientID: 1, Dst: 7, Payload: []byte{'r', byte(i)}}, 0)
	}
	// First two deliver through the forwarder, with transport latency added.
	fwd := &sinkForwarder{deliver: true, latency: 0.5}
	ds := s.Drain(2, 2, fwd)
	if len(ds) != 2 || !ds[0].Delivered || ds[0].Latency != 2.5 {
		t.Fatalf("delivering drain: %+v", ds)
	}
	// Remaining two hit a dead network.
	fwd.deliver = false
	ds = s.Drain(3, 10, fwd)
	if len(ds) != 2 || ds[0].Delivered || ds[1].Delivered {
		t.Fatalf("exhausted drain: %+v", ds)
	}
	st := s.Stats()
	if st.Delivered != 2 || st.DroppedNetworkExhausted != 2 || st.Queued != 0 {
		t.Fatalf("stats: %+v", st)
	}
	checkBooks(t, s)
}

func TestFetchWindowBounded(t *testing.T) {
	s := New(Config{Building: 0, RecvBufCap: 3})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(0xCC)}, 0)
	for i := 0; i < 8; i++ {
		s.Store().Put(addr(0xCC), []byte{byte(i)}, false)
	}
	r := handle(t, s, Msg{Type: TFetch, ClientID: 1}, 1)
	if len(r.Msgs) != 3 {
		t.Fatalf("fetch window: got %d msgs, want 3", len(r.Msgs))
	}
	// Acking advances the window to the next three.
	handle(t, s, Msg{Type: TAck, ClientID: 1, UpToSeq: r.Msgs[2].Seq}, 2)
	r2 := handle(t, s, Msg{Type: TFetch, ClientID: 1}, 3)
	if len(r2.Msgs) != 3 || r2.Msgs[0].Seq <= r.Msgs[2].Seq {
		t.Fatalf("post-ack fetch: %+v", r2.Msgs)
	}
}

func TestHandleMalformedCounted(t *testing.T) {
	s := New(Config{})
	if out := s.Handle([]byte{0x01, 0x02}, 0); out != nil {
		t.Fatalf("malformed frame produced a reply: %x", out)
	}
	if st := s.Stats(); st.Malformed != 1 || st.Offered != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
