package session

import (
	"testing"
)

// FuzzHandle drives the session wire boundary — decode plus dispatch —
// with arbitrary client frames. The service must absorb anything: no
// panics, every frame either produces a decodable reply or increments the
// malformed counter, and the accounting partition holds after every frame.
func FuzzHandle(f *testing.F) {
	seed := func(m Msg) []byte {
		frame, err := EncodeMsg(m)
		if err != nil {
			f.Fatal(err)
		}
		return frame
	}
	f.Add(seed(Msg{Type: TAttach, ClientID: 7, Addr: addr(0x11)}))
	f.Add(seed(Msg{Type: TSubmit, ClientID: 7, Dst: 3, To: addr(0x22), PowNonce: 5, Payload: []byte("seed")}))
	f.Add(seed(Msg{Type: TFetch, ClientID: 7, AfterSeq: 2}))
	f.Add(seed(Msg{Type: TAck, ClientID: 7, UpToSeq: 4}))
	f.Add([]byte{Magic, Version, TSubmit})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, frame []byte) {
		s := New(Config{QueueCap: 4, SendBufCap: 2, MaxSessions: 4})
		// Pre-attach the common seed client so submits can reach the
		// deeper accept/enqueue paths, then replay the frame twice.
		s.Attach(7, addr(0x11), 0)
		for i := 0; i < 2; i++ {
			out := s.Handle(frame, float64(i))
			if out != nil {
				if _, err := DecodeReply(out); err != nil {
					t.Fatalf("reply does not decode: %v (% x)", err, out)
				}
			}
		}
		st := s.Stats()
		if err := st.AccountingError(); err != nil {
			t.Fatal(err)
		}
		// Drain whatever was accepted into the void and re-check.
		s.Drain(10, 100, nil)
		if err := s.Stats().AccountingError(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzDecodeReply checks the client-side decoder against arbitrary bytes
// and round-trips anything it accepts.
func FuzzDecodeReply(f *testing.F) {
	acc, _ := EncodeReply(Reply{Type: TAccept, Tier: TierCongested, PowBits: 8, Headroom: 10})
	rej, _ := EncodeReply(Reply{Type: TReject, Cause: CauseBufferFull, Tier: TierOverload, PowBits: 12, RetryAfterMs: 2000})
	del, _ := EncodeReply(Reply{Type: TDeliver, Msgs: []DeliverMsg{{Seq: 3, Payload: []byte("m")}}})
	f.Add(acc)
	f.Add(rej)
	f.Add(del)
	f.Fuzz(func(t *testing.T, frame []byte) {
		r, err := DecodeReply(frame)
		if err != nil {
			return
		}
		re, err := EncodeReply(r)
		if err != nil {
			t.Fatalf("decoded reply does not re-encode: %v (%+v)", err, r)
		}
		r2, err := DecodeReply(re)
		if err != nil {
			t.Fatalf("re-encoded reply does not decode: %v", err)
		}
		if r2.Type != r.Type || len(r2.Msgs) != len(r.Msgs) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", r, r2)
		}
	})
}
