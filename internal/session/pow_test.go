package session

import "testing"

func TestPowZeroDifficultyAlwaysPasses(t *testing.T) {
	if !CheckPoW(1, addr(1), []byte("m"), 0, 0) {
		t.Fatal("difficulty 0 must pass with nonce 0")
	}
	if !CheckPoW(1, addr(1), []byte("m"), 12345, -3) {
		t.Fatal("negative difficulty must pass")
	}
}

func TestPowSolveAndCheck(t *testing.T) {
	payload := []byte("emergency: meet at the library")
	to := addr(0x42)
	for _, bits := range []int{1, 4, 8, 12} {
		nonce, ok := SolvePoW(77, to, payload, bits, 0)
		if !ok {
			t.Fatalf("bits=%d: no solution found", bits)
		}
		if !CheckPoW(77, to, payload, nonce, bits) {
			t.Fatalf("bits=%d: solved nonce %d fails check", bits, nonce)
		}
		// The proof must commit to the client, recipient, and payload.
		if CheckPoW(78, to, payload, nonce, bits) && CheckPoW(77, addr(0x43), payload, nonce, bits) &&
			CheckPoW(77, to, []byte("tampered"), nonce, bits) {
			t.Fatalf("bits=%d: nonce %d valid for all altered inputs — proof not binding", bits, nonce)
		}
	}
}

func TestPowSolveDeterministic(t *testing.T) {
	n1, ok1 := SolvePoW(9, addr(9), []byte("p"), 10, 0)
	n2, ok2 := SolvePoW(9, addr(9), []byte("p"), 10, 0)
	if !ok1 || !ok2 || n1 != n2 {
		t.Fatalf("SolvePoW not deterministic: (%d,%v) vs (%d,%v)", n1, ok1, n2, ok2)
	}
}

func TestPowSolveRespectsMaxTries(t *testing.T) {
	// One try at a hard difficulty essentially never solves.
	if _, ok := SolvePoW(1, addr(1), []byte("x"), 24, 1); ok {
		t.Skip("1-in-16M lottery hit; ignore")
	}
}

func TestLeadingZeroBits(t *testing.T) {
	var h [32]byte
	if got := leadingZeroBits(h); got != 256 {
		t.Fatalf("all-zero hash: got %d, want 256", got)
	}
	h[0] = 0x01
	if got := leadingZeroBits(h); got != 7 {
		t.Fatalf("0x01 first byte: got %d, want 7", got)
	}
	h[0] = 0x80
	if got := leadingZeroBits(h); got != 0 {
		t.Fatalf("0x80 first byte: got %d, want 0", got)
	}
	h[0] = 0x00
	h[1] = 0x10
	if got := leadingZeroBits(h); got != 11 {
		t.Fatalf("0x0010 prefix: got %d, want 11", got)
	}
}
