package session

import (
	"bytes"
	"errors"
	"testing"

	"citymesh/internal/postbox"
)

func addr(b byte) postbox.Address {
	var a postbox.Address
	for i := range a {
		a[i] = b
	}
	return a
}

func TestMsgRoundTrip(t *testing.T) {
	msgs := []Msg{
		{Type: TAttach, ClientID: 42, Addr: addr(0xAA)},
		{Type: TSubmit, ClientID: 7, Dst: 123, To: addr(0xBB), PowNonce: 999, Payload: []byte("hello mesh")},
		{Type: TSubmit, ClientID: 7, Dst: 0, To: addr(0x00), PowNonce: 0, Payload: nil},
		{Type: TFetch, ClientID: 1 << 60, AfterSeq: 77},
		{Type: TAck, ClientID: 3, UpToSeq: 1 << 40},
	}
	for _, want := range msgs {
		frame, err := EncodeMsg(want)
		if err != nil {
			t.Fatalf("encode %#x: %v", want.Type, err)
		}
		got, err := DecodeMsg(frame)
		if err != nil {
			t.Fatalf("decode %#x: %v", want.Type, err)
		}
		if got.Type != want.Type || got.ClientID != want.ClientID ||
			got.Addr != want.Addr || got.Dst != want.Dst || got.To != want.To ||
			got.PowNonce != want.PowNonce || got.AfterSeq != want.AfterSeq ||
			got.UpToSeq != want.UpToSeq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	replies := []Reply{
		{Type: TAccept, Tier: TierCongested, PowBits: 8, Headroom: 512},
		{Type: TReject, Cause: CauseRateLimit, Tier: TierOverload, PowBits: 12, RetryAfterMs: 4000},
		{Type: TDeliver, Msgs: []DeliverMsg{{Seq: 1, Payload: []byte("a")}, {Seq: 9, Payload: []byte("bb")}}},
		{Type: TDeliver},
		{Type: TAckOK, Remaining: 5},
	}
	for _, want := range replies {
		frame, err := EncodeReply(want)
		if err != nil {
			t.Fatalf("encode %#x: %v", want.Type, err)
		}
		got, err := DecodeReply(frame)
		if err != nil {
			t.Fatalf("decode %#x: %v", want.Type, err)
		}
		if got.Type != want.Type || got.Tier != want.Tier || got.PowBits != want.PowBits ||
			got.Cause != want.Cause || got.Headroom != want.Headroom ||
			got.RetryAfterMs != want.RetryAfterMs || got.Remaining != want.Remaining ||
			len(got.Msgs) != len(want.Msgs) {
			t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
		}
		for i := range want.Msgs {
			if got.Msgs[i].Seq != want.Msgs[i].Seq || !bytes.Equal(got.Msgs[i].Payload, want.Msgs[i].Payload) {
				t.Fatalf("deliver msg %d mismatch: got %+v want %+v", i, got.Msgs[i], want.Msgs[i])
			}
		}
	}
}

func TestDecodeMsgRejections(t *testing.T) {
	good, err := EncodeMsg(Msg{Type: TSubmit, ClientID: 1, Dst: 5, To: addr(1), Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrTruncated},
		{"short", good[:5], ErrTruncated},
		{"bad magic", append([]byte{0xC9}, good[1:]...), ErrBadMagic},
		{"bad version", func() []byte {
			f := append([]byte(nil), good...)
			f[1] = 99
			return f
		}(), ErrBadVersion},
		{"bad crc", func() []byte {
			f := append([]byte(nil), good...)
			f[len(f)-1] ^= 0xFF
			return f
		}(), ErrBadCRC},
		{"flipped body byte", func() []byte {
			f := append([]byte(nil), good...)
			f[10] ^= 0x01
			return f
		}(), ErrBadCRC},
		{"oversize frame", make([]byte, MaxSessionFrame+1), ErrFrameTooLarge},
	}
	for _, tc := range cases {
		if _, err := DecodeMsg(tc.frame); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeMsgUnknownType(t *testing.T) {
	frame := sealFrame(appendU64(appendEnvelope(nil, 0x7F), 1))
	if _, err := DecodeMsg(frame); !errors.Is(err, ErrBadType) {
		t.Fatalf("got %v, want ErrBadType", err)
	}
}

func TestDecodeMsgTrailingBytes(t *testing.T) {
	body := appendU64(appendEnvelope(nil, TFetch), 1)
	body = append(body, 0x00)       // AfterSeq = 0
	body = append(body, 0xDE, 0xAD) // junk after the body
	frame := sealFrame(body)
	if _, err := DecodeMsg(frame); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("got %v, want ErrTrailingBytes", err)
	}
}

func TestEncodeMsgPayloadBudget(t *testing.T) {
	m := Msg{Type: TSubmit, ClientID: 1, Dst: 1, Payload: make([]byte, MaxSessionPayload+1)}
	if _, err := EncodeMsg(m); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("got %v, want ErrPayloadTooLarge", err)
	}
}

func TestEncodeReplyBatchBudget(t *testing.T) {
	r := Reply{Type: TDeliver, Msgs: make([]DeliverMsg, MaxDeliverBatch+1)}
	if _, err := EncodeReply(r); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("got %v, want ErrBatchTooLarge", err)
	}
}
