package session

import (
	"fmt"
	"testing"
)

func TestResubmitIsDedupedNotRequeued(t *testing.T) {
	s := New(Config{Building: 5})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(0xA1)}, 0)

	m := Msg{Type: TSubmit, ClientID: 1, Dst: 9, To: addr(0xB2), Payload: []byte("are you ok?")}
	if r := handle(t, s, m, 1); r.Type != TAccept {
		t.Fatalf("first submit: %+v", r)
	}
	// The TAccept was lost on the client's link; it resends verbatim.
	for i := 0; i < 3; i++ {
		if r := handle(t, s, m, 2+float64(i)); r.Type != TAccept {
			t.Fatalf("resubmit %d must be answered idempotently: %+v", i, r)
		}
	}
	if got := s.QueueLen(); got != 1 {
		t.Fatalf("queue holds %d copies, want 1", got)
	}
	st := s.Stats()
	if st.Accepted != 1 || st.Deduped != 3 || st.Offered != 4 {
		t.Fatalf("stats: %+v", st)
	}
	checkBooks(t, s)

	// Different content from the same client is a new message.
	m2 := m
	m2.Payload = []byte("still there?")
	if r := handle(t, s, m2, 5); r.Type != TAccept {
		t.Fatalf("new content: %+v", r)
	}
	if got := s.QueueLen(); got != 2 {
		t.Fatalf("queue %d, want 2", got)
	}
	checkBooks(t, s)
}

func TestDedupDoesNotChargeRateLimit(t *testing.T) {
	s := New(Config{ClientRate: 0.001, ClientBurst: 2})
	handle(t, s, Msg{Type: TAttach, ClientID: 7, Addr: addr(1)}, 0)
	m := Msg{Type: TSubmit, ClientID: 7, Dst: 3, To: addr(2), Payload: []byte("x")}
	if r := handle(t, s, m, 0); r.Type != TAccept {
		t.Fatalf("first: %+v", r)
	}
	// Many resends: none consume tokens, all answered TAccept.
	for i := 0; i < 10; i++ {
		if r := handle(t, s, m, 0.1); r.Type != TAccept {
			t.Fatalf("resend %d: %+v", i, r)
		}
	}
	// The bucket still has its second token for fresh content.
	m.Payload = []byte("y")
	if r := handle(t, s, m, 0.2); r.Type != TAccept {
		t.Fatalf("fresh content after resends should still have a token: %+v", r)
	}
	checkBooks(t, s)
}

func TestDedupWindowExpires(t *testing.T) {
	s := New(Config{DedupWindowS: 10})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(1)}, 0)
	m := Msg{Type: TSubmit, ClientID: 1, Dst: 3, To: addr(2), Payload: []byte("good morning")}
	if r := handle(t, s, m, 0); r.Type != TAccept {
		t.Fatalf("first: %+v", r)
	}
	if handle(t, s, m, 9.9); s.Stats().Deduped != 1 {
		t.Fatalf("in-window resend not deduped: %+v", s.Stats())
	}
	// The same greeting a day later is a genuinely new message.
	if r := handle(t, s, m, 86400); r.Type != TAccept {
		t.Fatalf("post-window submit: %+v", r)
	}
	st := s.Stats()
	if st.Accepted != 2 || st.Deduped != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if got := s.QueueLen(); got != 2 {
		t.Fatalf("queue %d, want 2", got)
	}
	checkBooks(t, s)
}

func TestDedupOnlyCoversAcceptedMessages(t *testing.T) {
	// A buffer-full rejection must not poison the window: the retry after
	// drain succeeds instead of being swallowed as a duplicate.
	// Thresholds above 1.0 keep the tier normal: this test wants the
	// buffer-full cause, not admission PoW.
	s := New(Config{QueueCap: 1, CongestedAt: 2, OverloadAt: 3})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(1)}, 0)
	fill := Msg{Type: TSubmit, ClientID: 1, Dst: 3, To: addr(2), Payload: []byte("first")}
	if r := handle(t, s, fill, 0); r.Type != TAccept {
		t.Fatalf("fill: %+v", r)
	}
	m := fill
	m.Payload = []byte("second")
	if r := handle(t, s, m, 1); r.Type != TReject || r.Cause != CauseBufferFull {
		t.Fatalf("want buffer-full reject, got %+v", r)
	}
	s.Drain(2, 10, &sinkForwarder{deliver: true})
	if r := handle(t, s, m, 3); r.Type != TAccept {
		t.Fatalf("retry after drain must be accepted, got %+v", r)
	}
	if st := s.Stats(); st.Deduped != 0 || st.Accepted != 2 {
		t.Fatalf("stats: %+v", st)
	}
	checkBooks(t, s)
}

func TestDedupDisabledByNegativeCap(t *testing.T) {
	s := New(Config{DedupCap: -1})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(1)}, 0)
	m := Msg{Type: TSubmit, ClientID: 1, Dst: 3, To: addr(2), Payload: []byte("x")}
	handle(t, s, m, 0)
	handle(t, s, m, 1)
	if st := s.Stats(); st.Deduped != 0 || st.Accepted != 2 {
		t.Fatalf("disabled dedup still suppressed: %+v", st)
	}
	if got := s.QueueLen(); got != 2 {
		t.Fatalf("queue %d, want 2", got)
	}
	checkBooks(t, s)
}

func TestDedupWindowBounded(t *testing.T) {
	s := New(Config{DedupCap: 8, QueueCap: 4096, SendBufCap: 4096, ClientRate: 1e9, ClientBurst: 1e9})
	handle(t, s, Msg{Type: TAttach, ClientID: 1, Addr: addr(1)}, 0)
	for i := 0; i < 100; i++ {
		m := Msg{Type: TSubmit, ClientID: 1, Dst: 3, To: addr(2),
			Payload: []byte(fmt.Sprintf("msg %d", i))}
		if r := handle(t, s, m, float64(i)); r.Type != TAccept {
			t.Fatalf("submit %d: %+v", i, r)
		}
	}
	if n := s.recent.len(); n != 8 {
		t.Fatalf("window grew to %d entries, cap is 8", n)
	}
	// The newest entry is still deduped; the oldest was evicted, so its
	// resend is accepted as fresh (and that is fine — the queue-level
	// consequence is one extra copy, not corruption).
	newest := Msg{Type: TSubmit, ClientID: 1, Dst: 3, To: addr(2), Payload: []byte("msg 99")}
	if handle(t, s, newest, 100); s.Stats().Deduped != 1 {
		t.Fatalf("newest entry lost from bounded window: %+v", s.Stats())
	}
	checkBooks(t, s)
}
