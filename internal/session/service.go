// Package session is the per-AP user-traffic layer: the boundary between
// phones attached to an AP's Wi-Fi and the inter-AP mesh. The paper's
// fallback network earns its keep exactly when everyone reaches for it at
// once, so this layer is built around overload: bounded per-client send
// and receive buffers, a bounded AP forwarding queue, and an admission
// controller (token bucket + tiered hashcash) that tightens automatically
// as the queue backs up. Backpressure is explicit — every reply carries
// the AP's load tier, the proof-of-work difficulty currently demanded, and
// the queue headroom — and every message an AP refuses or loses is charged
// to exactly one Cause, so offered load always reconciles:
//
//	Offered = Delivered + Queued + RejectedAdmission + RejectedRateLimit
//	        + RejectedBufferFull + DroppedNetworkExhausted
//
// Accepted messages ride the existing postbox substrate: local recipients'
// messages go straight into the AP's postbox store; remote ones drain
// through a Forwarder (core.SendReliable in the simulator, packet
// injection on a live agent) to the destination AP's store, where the
// recipient's device fetches and acks them through its own session.
//
// All methods take an explicit `now` in seconds (simulation time, or
// seconds-since-start on a live agent) so behaviour is fully deterministic
// under test and in experiment sweeps.
package session

import (
	"fmt"
	"sync"

	"citymesh/internal/postbox"
)

// Defaults for the buffer bounds.
const (
	// DefaultSendBufCap bounds one client's unsent messages in the AP queue.
	DefaultSendBufCap = 32
	// DefaultRecvBufCap bounds the unacked messages handed out per fetch —
	// the receive window a client must ack to advance.
	DefaultRecvBufCap = 64
	// DefaultQueueCap bounds the AP-wide forwarding queue; its depth drives
	// the admission tier.
	DefaultQueueCap = 1024
	// DefaultRetryAfter is the advisory client backoff at TierNormal,
	// seconds; it doubles per tier.
	DefaultRetryAfter = 1.0
)

// Config parameterizes a Service. Zero values select the defaults above.
type Config struct {
	// Building is the AP's dense building index; submissions addressed to
	// it are stored locally instead of forwarded.
	Building int
	// Store holds messages for recipients whose postbox is this AP. Nil
	// creates a fresh in-memory store.
	Store *postbox.Store

	SendBufCap  int
	RecvBufCap  int
	MaxSessions int
	QueueCap    int

	// DedupCap bounds the content-hash resubmission window (0 takes
	// DefaultDedupCap, negative disables dedup); DedupWindowS is how long
	// an accepted submission suppresses identical resends (0 takes
	// DefaultDedupWindowS).
	DedupCap     int
	DedupWindowS float64

	ClientRate  float64
	ClientBurst float64

	CongestedAt      float64
	OverloadAt       float64
	PowBitsCongested int
	PowBitsOverload  int

	RetryAfter float64
}

func (c Config) withDefaults() Config {
	if c.Store == nil {
		c.Store = postbox.NewStore()
	}
	if c.SendBufCap <= 0 {
		c.SendBufCap = DefaultSendBufCap
	}
	if c.RecvBufCap <= 0 {
		c.RecvBufCap = DefaultRecvBufCap
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.ClientRate <= 0 {
		c.ClientRate = DefaultClientRate
	}
	if c.ClientBurst <= 0 {
		c.ClientBurst = DefaultClientBurst
	}
	if c.CongestedAt <= 0 {
		c.CongestedAt = DefaultCongestedAt
	}
	if c.OverloadAt <= 0 {
		c.OverloadAt = DefaultOverloadAt
	}
	if c.PowBitsCongested <= 0 {
		c.PowBitsCongested = DefaultPowBitsCongested
	}
	if c.PowBitsOverload <= 0 {
		c.PowBitsOverload = DefaultPowBitsOverload
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// Pending is one accepted message waiting in the AP's forwarding queue.
type Pending struct {
	From       uint64
	Dst        int
	To         postbox.Address
	Payload    []byte
	EnqueuedAt float64
}

// Outcome is a Forwarder's verdict on one message.
type Outcome struct {
	// Delivered reports whether the message reached the destination AP's
	// postbox store.
	Delivered bool
	// Latency is transport time in seconds (backoff waits, retries) beyond
	// the queue wait, which the Service adds itself.
	Latency float64
	// Broadcasts is the transmission cost of the attempt.
	Broadcasts int
}

// Forwarder carries a drained message toward its destination AP. A
// Forwarder that reports Delivered must also have deposited the payload in
// the destination postbox; the Service only does that for its own building.
type Forwarder interface {
	Forward(m *Pending, now float64) Outcome
}

// Delivery is the drain-time record of one dequeued message, returned so
// callers (the traffic generator, a live drain loop) can aggregate
// latency distributions without the Service retaining unbounded history.
type Delivery struct {
	Msg       *Pending
	Delivered bool
	// Latency is queue wait + transport time, seconds.
	Latency    float64
	Broadcasts int
}

// Stats counts the service's message flow. Every offered message lands in
// exactly one terminal counter (or is still Queued); AccountingError checks
// the partition.
type Stats struct {
	Offered  uint64
	Accepted uint64
	// Deduped counts resubmissions suppressed by the content-hash window:
	// the client's original was already accepted, so the resend is answered
	// with an idempotent TAccept and not queued again.
	Deduped uint64
	// Delivered counts messages that reached a postbox store (local or via
	// a Forwarder).
	Delivered               uint64
	RejectedAdmission       uint64
	RejectedRateLimit       uint64
	RejectedBufferFull      uint64
	DroppedNetworkExhausted uint64
	// Queued is the forwarding-queue depth at snapshot time.
	Queued int
	// Fetched and Acked count receive-side messages handed out and
	// acknowledged.
	Fetched uint64
	Acked   uint64
	// Malformed counts undecodable frames; these never become offered
	// messages and sit outside the partition.
	Malformed uint64
	// Attached is the live session count; PeakTier the worst tier reached.
	Attached int
	Tier     Tier
	PeakTier Tier
}

// AccountingError verifies that every offered message is in exactly one
// state. It returns nil when the books balance.
func (s Stats) AccountingError() error {
	terminal := s.Delivered + s.DroppedNetworkExhausted + uint64(s.Queued)
	if s.Accepted != terminal {
		return fmt.Errorf("session: accepted %d != delivered %d + exhausted %d + queued %d",
			s.Accepted, s.Delivered, s.DroppedNetworkExhausted, s.Queued)
	}
	sum := s.Accepted + s.Deduped + s.RejectedAdmission + s.RejectedRateLimit + s.RejectedBufferFull
	if s.Offered != sum {
		return fmt.Errorf("session: offered %d != accepted %d + deduped %d + admission %d + rate %d + buffer %d",
			s.Offered, s.Accepted, s.Deduped, s.RejectedAdmission, s.RejectedRateLimit, s.RejectedBufferFull)
	}
	return nil
}

type sessionState struct {
	addr       postbox.Address
	bucket     clientBucket
	queued     int // this client's messages in the AP queue
	lastActive float64
}

// Service is one AP's session endpoint. Safe for concurrent use: a live
// agent handles client frames and runs the drain loop on separate
// goroutines.
type Service struct {
	mu       sync.Mutex
	cfg      Config
	store    *postbox.Store
	sessions map[uint64]*sessionState
	queue    []*Pending
	recent   *dedupWindow
	stats    Stats
}

// New builds a Service from cfg (zero fields take defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:      cfg,
		store:    cfg.Store,
		sessions: make(map[uint64]*sessionState),
		recent:   newDedupWindow(cfg.DedupCap, cfg.DedupWindowS),
	}
}

// Store exposes the AP's postbox store (live agents share it with the
// packet-delivery path).
func (s *Service) Store() *postbox.Store { return s.store }

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Service) snapshotLocked() Stats {
	st := s.stats
	st.Queued = len(s.queue)
	st.Attached = len(s.sessions)
	st.Tier = s.tierLocked()
	return st
}

func (s *Service) tierLocked() Tier {
	return tierFor(len(s.queue), s.cfg.QueueCap, s.cfg.CongestedAt, s.cfg.OverloadAt)
}

func (s *Service) powBits(t Tier) uint8 {
	switch t {
	case TierCongested:
		return uint8(s.cfg.PowBitsCongested)
	case TierOverload:
		return uint8(s.cfg.PowBitsOverload)
	default:
		return 0
	}
}

func (s *Service) noteTierLocked(t Tier) {
	if t > s.stats.PeakTier {
		s.stats.PeakTier = t
	}
}

func (s *Service) acceptLocked() Reply {
	t := s.tierLocked()
	s.noteTierLocked(t)
	headroom := s.cfg.QueueCap - len(s.queue)
	if headroom < 0 {
		headroom = 0
	}
	return Reply{Type: TAccept, Tier: t, PowBits: s.powBits(t), Headroom: uint32(headroom)}
}

func (s *Service) rejectLocked(cause Cause) Reply {
	t := s.tierLocked()
	s.noteTierLocked(t)
	retry := s.cfg.RetryAfter * float64(uint32(1)<<t)
	return Reply{
		Type: TReject, Cause: cause, Tier: t, PowBits: s.powBits(t),
		RetryAfterMs: uint32(retry * 1000),
	}
}

// Advice returns the current backpressure signal without side effects:
// tier, required proof-of-work bits, and queue headroom. Clients use it to
// pre-solve proofs before submitting.
func (s *Service) Advice(now float64) (Tier, uint8, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = now
	t := s.tierLocked()
	headroom := s.cfg.QueueCap - len(s.queue)
	if headroom < 0 {
		headroom = 0
	}
	return t, s.powBits(t), headroom
}

// Attach opens or refreshes a session. The session table is bounded: at
// capacity the stalest idle session is recycled; if every session has
// queued traffic the attach is refused (CauseAdmission).
func (s *Service) Attach(clientID uint64, addr postbox.Address, now float64) Reply {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[clientID]; ok {
		sess.addr = addr
		sess.lastActive = now
		return s.acceptLocked()
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		if !s.recycleLocked() {
			return s.rejectLocked(CauseAdmission)
		}
	}
	s.sessions[clientID] = &sessionState{
		addr:       addr,
		bucket:     clientBucket{tokens: s.cfg.ClientBurst, last: now},
		lastActive: now,
	}
	return s.acceptLocked()
}

// recycleLocked evicts the stalest session with no queued traffic,
// reporting whether a slot was freed.
func (s *Service) recycleLocked() bool {
	var (
		victim uint64
		oldest float64
		found  bool
	)
	for id, sess := range s.sessions {
		if sess.queued > 0 {
			continue
		}
		if !found || sess.lastActive < oldest || (sess.lastActive == oldest && id < victim) {
			victim, oldest, found = id, sess.lastActive, true
		}
	}
	if found {
		delete(s.sessions, victim)
	}
	return found
}

// Submit offers one message. The checks run cheapest-first and each failed
// message is charged to exactly one cause: rate-limit (token bucket), then
// admission (missing/insufficient proof-of-work for the current tier, or
// no session), then buffer-full (per-client send buffer or AP queue).
func (s *Service) Submit(m Msg, now float64) Reply {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Offered++
	sess, ok := s.sessions[m.ClientID]
	if !ok {
		s.stats.RejectedAdmission++
		return s.rejectLocked(CauseAdmission)
	}
	sess.lastActive = now
	// Resubmission of content this AP already accepted (the TAccept was
	// lost on the client's lossy link): answer idempotently without
	// queueing a second copy — and without charging the client's token
	// bucket for the mesh's unreliability. Only accepted messages enter
	// the window, so a rejected submission can always be retried.
	key := submitKey(m.ClientID, m.Dst, m.To, m.Payload)
	if s.recent.seen(key, now) {
		s.stats.Deduped++
		return s.acceptLocked()
	}
	if !sess.bucket.allow(now, s.cfg.ClientRate, s.cfg.ClientBurst) {
		s.stats.RejectedRateLimit++
		return s.rejectLocked(CauseRateLimit)
	}
	tier := s.tierLocked()
	s.noteTierLocked(tier)
	if bits := int(s.powBits(tier)); bits > 0 &&
		!CheckPoW(m.ClientID, m.To, m.Payload, m.PowNonce, bits) {
		s.stats.RejectedAdmission++
		return s.rejectLocked(CauseAdmission)
	}
	if sess.queued >= s.cfg.SendBufCap || len(s.queue) >= s.cfg.QueueCap {
		s.stats.RejectedBufferFull++
		return s.rejectLocked(CauseBufferFull)
	}
	s.stats.Accepted++
	s.recent.record(key, now)
	sess.queued++
	s.queue = append(s.queue, &Pending{
		From: m.ClientID, Dst: m.Dst, To: m.To,
		Payload: m.Payload, EnqueuedAt: now,
	})
	return s.acceptLocked()
}

// Fetch returns up to the receive window of stored messages for the
// client's address with sequence numbers above afterSeq. The window is the
// receive-side backpressure bound: un-acked messages keep occupying it, so
// a client that never acks stops receiving.
func (s *Service) Fetch(clientID, afterSeq uint64, now float64) Reply {
	s.mu.Lock()
	sess, ok := s.sessions[clientID]
	if !ok {
		r := s.rejectLocked(CauseAdmission)
		s.mu.Unlock()
		return r
	}
	sess.lastActive = now
	addr := sess.addr
	window := s.cfg.RecvBufCap
	s.mu.Unlock()

	if window > MaxDeliverBatch {
		window = MaxDeliverBatch
	}
	stored := s.store.Retrieve(addr, afterSeq, s.cfg.Building)
	if len(stored) > window {
		stored = stored[:window]
	}
	msgs := make([]DeliverMsg, len(stored))
	for i, sm := range stored {
		msgs[i] = DeliverMsg{Seq: sm.Seq, Payload: sm.Sealed}
	}
	s.mu.Lock()
	s.stats.Fetched += uint64(len(msgs))
	s.mu.Unlock()
	return Reply{Type: TDeliver, Msgs: msgs}
}

// Ack confirms receipt of stored messages up to upToSeq, freeing the
// receive window. The reply reports how many messages remain stored.
func (s *Service) Ack(clientID, upToSeq uint64, now float64) Reply {
	s.mu.Lock()
	sess, ok := s.sessions[clientID]
	if !ok {
		r := s.rejectLocked(CauseAdmission)
		s.mu.Unlock()
		return r
	}
	sess.lastActive = now
	addr := sess.addr
	s.mu.Unlock()

	before := s.store.Len(addr)
	s.store.Ack(addr, upToSeq)
	after := s.store.Len(addr)

	s.mu.Lock()
	if before > after {
		s.stats.Acked += uint64(before - after)
	}
	s.mu.Unlock()
	return Reply{Type: TAckOK, Remaining: uint32(after)}
}

// Handle is the wire entry point: decode one client frame, dispatch it,
// and return the encoded reply (nil for undecodable frames, which are
// counted as Malformed and never panic — this is the fuzz target).
func (s *Service) Handle(frame []byte, now float64) []byte {
	m, err := DecodeMsg(frame)
	if err != nil {
		s.mu.Lock()
		s.stats.Malformed++
		s.mu.Unlock()
		return nil
	}
	var r Reply
	switch m.Type {
	case TAttach:
		r = s.Attach(m.ClientID, m.Addr, now)
	case TSubmit:
		r = s.Submit(m, now)
	case TFetch:
		r = s.Fetch(m.ClientID, m.AfterSeq, now)
	case TAck:
		r = s.Ack(m.ClientID, m.UpToSeq, now)
	default:
		s.mu.Lock()
		s.stats.Malformed++
		s.mu.Unlock()
		return nil
	}
	out, err := EncodeReply(r)
	if err != nil {
		return nil
	}
	return out
}

// Drain dequeues up to budget messages and carries each toward its
// destination: messages for this AP's own building go straight into the
// local postbox store; the rest go through fwd. A nil fwd (or a ladder
// that runs dry) charges the message to CauseNetworkExhausted. The
// forwarding itself runs outside the service lock so client frames are
// never blocked behind transport retries.
func (s *Service) Drain(now float64, budget int, fwd Forwarder) []Delivery {
	s.mu.Lock()
	n := budget
	if n > len(s.queue) {
		n = len(s.queue)
	}
	if n <= 0 {
		s.mu.Unlock()
		return nil
	}
	batch := make([]*Pending, n)
	copy(batch, s.queue[:n])
	s.queue = append(s.queue[:0], s.queue[n:]...)
	for _, m := range batch {
		if sess := s.sessions[m.From]; sess != nil && sess.queued > 0 {
			sess.queued--
		}
	}
	s.mu.Unlock()

	out := make([]Delivery, 0, n)
	for _, m := range batch {
		d := Delivery{Msg: m, Latency: now - m.EnqueuedAt}
		if m.Dst == s.cfg.Building {
			s.store.Put(m.To, m.Payload, false)
			d.Delivered = true
		} else if fwd != nil {
			o := fwd.Forward(m, now)
			d.Delivered = o.Delivered
			d.Latency += o.Latency
			d.Broadcasts = o.Broadcasts
		}
		s.mu.Lock()
		if d.Delivered {
			s.stats.Delivered++
		} else {
			s.stats.DroppedNetworkExhausted++
		}
		s.mu.Unlock()
		out = append(out, d)
	}
	return out
}

// QueueLen reports the forwarding-queue depth.
func (s *Service) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}
