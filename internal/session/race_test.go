package session

import (
	"sync"
	"testing"
)

// TestConcurrentSessionsOneAP hammers a single AP service from many client
// goroutines while a drain loop runs, mirroring a live agent's layout
// (frame handler and drain ticker on separate goroutines). Run under
// -race in CI; the accounting invariant must survive the interleaving.
func TestConcurrentSessionsOneAP(t *testing.T) {
	s := New(Config{
		Building:   0,
		QueueCap:   64,
		SendBufCap: 8,
		// Generous bucket so contention, not rate limiting, dominates.
		ClientRate: 1000, ClientBurst: 1000,
	})
	const (
		clients   = 16
		perClient = 200
	)

	// Drain loop: alternates between a live and a dead network so both
	// delivered and network-exhausted paths race with submissions.
	stop := make(chan struct{})
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		fwd := &sinkForwarder{deliver: true}
		now := 0.0
		for {
			select {
			case <-stop:
				for s.QueueLen() > 0 {
					s.Drain(now, 64, fwd)
					now++
				}
				return
			default:
				fwd.deliver = !fwd.deliver
				s.Drain(now, 8, fwd)
				now++
			}
		}
	}()

	var clientWG sync.WaitGroup
	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func(id uint64) {
			defer clientWG.Done()
			a := addr(byte(id))
			frame, err := EncodeMsg(Msg{Type: TAttach, ClientID: id, Addr: a})
			if err != nil {
				t.Error(err)
				return
			}
			s.Handle(frame, 0)
			for i := 0; i < perClient; i++ {
				now := float64(i)
				switch i % 4 {
				case 0, 1:
					sub, _ := EncodeMsg(Msg{Type: TSubmit, ClientID: id, Dst: int(id % 3), To: a, Payload: []byte("stress")})
					s.Handle(sub, now)
				case 2:
					f, _ := EncodeMsg(Msg{Type: TFetch, ClientID: id})
					s.Handle(f, now)
				case 3:
					ack, _ := EncodeMsg(Msg{Type: TAck, ClientID: id, UpToSeq: 1 << 62})
					s.Handle(ack, now)
				}
			}
		}(uint64(c + 1))
	}
	clientWG.Wait()
	close(stop)
	drainWG.Wait()

	st := s.Stats()
	if st.Queued != 0 {
		t.Fatalf("queue not flushed: %+v", st)
	}
	if err := st.AccountingError(); err != nil {
		t.Fatal(err)
	}
	if st.Offered == 0 || st.Accepted == 0 || st.Delivered == 0 {
		t.Fatalf("no traffic flowed: %+v", st)
	}
}
