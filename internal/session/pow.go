package session

import (
	"crypto/sha256"
	"encoding/binary"
	"math/bits"

	"citymesh/internal/postbox"
)

// Hashcash-style admission proof. When an AP is congested it demands that
// each submitted message carry a nonce such that a hash over the message's
// stable fields has a minimum number of leading zero bits. The work is
// client-side and stateless for the AP: verification is one hash, so a
// flash crowd pays for admission with its own CPU rather than the AP's
// queue space, and the difficulty knob turns smoothly with queue depth.

// powPrefix domain-separates the session proof-of-work from every other
// hash in the system.
const powPrefix = "citymesh-session-pow-v1"

// MaxPowBits bounds the difficulty an AP may demand. 24 bits is ~16M
// expected hashes — seconds of phone CPU — beyond which admission is
// effectively closed and the AP should reject outright instead.
const MaxPowBits = 24

// powHash computes the proof hash for one (client, recipient, payload,
// nonce) tuple.
func powHash(clientID uint64, to postbox.Address, payload []byte, nonce uint64) [32]byte {
	var idb, nb [8]byte
	binary.BigEndian.PutUint64(idb[:], clientID)
	binary.BigEndian.PutUint64(nb[:], nonce)
	payloadDigest := sha256.Sum256(payload)
	h := sha256.New()
	h.Write([]byte(powPrefix))
	h.Write(idb[:])
	h.Write(to[:])
	h.Write(payloadDigest[:])
	h.Write(nb[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// leadingZeroBits counts the leading zero bits of a hash.
func leadingZeroBits(h [32]byte) int {
	n := 0
	for _, b := range h {
		if b == 0 {
			n += 8
			continue
		}
		return n + bits.LeadingZeros8(b)
	}
	return n
}

// CheckPoW reports whether nonce is a valid proof of work for the message
// at the given difficulty. Difficulty <= 0 always passes (the normal tier
// demands no work).
func CheckPoW(clientID uint64, to postbox.Address, payload []byte, nonce uint64, difficulty int) bool {
	if difficulty <= 0 {
		return true
	}
	if difficulty > MaxPowBits {
		difficulty = MaxPowBits
	}
	return leadingZeroBits(powHash(clientID, to, payload, nonce)) >= difficulty
}

// SolvePoW searches nonces from 0 upward for a valid proof, trying at most
// maxTries hashes (maxTries <= 0 uses 1<<(difficulty+6), far above the
// 2^difficulty expectation). It reports the nonce and whether one was found.
// The search is deterministic: the same inputs always yield the same nonce.
func SolvePoW(clientID uint64, to postbox.Address, payload []byte, difficulty int, maxTries uint64) (uint64, bool) {
	if difficulty <= 0 {
		return 0, true
	}
	if difficulty > MaxPowBits {
		difficulty = MaxPowBits
	}
	if maxTries == 0 {
		maxTries = 1 << (uint(difficulty) + 6)
	}
	for nonce := uint64(0); nonce < maxTries; nonce++ {
		if leadingZeroBits(powHash(clientID, to, payload, nonce)) >= difficulty {
			return nonce, true
		}
	}
	return 0, false
}
