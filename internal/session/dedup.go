package session

import (
	"encoding/binary"
	"hash/fnv"

	"citymesh/internal/postbox"
)

// Dedup window defaults. The window mirrors the relay daemon's
// duplicate-suppression cache (internal/agent's dedupSet), adapted for the
// session layer: the mesh dedups by message ID, but a phone that never saw
// its TAccept reply resubmits the *same content* under a fresh submission —
// so here the key is a content hash and entries expire, letting a user
// legitimately send the identical text again later.
const (
	// DefaultDedupCap bounds the remembered submissions per AP.
	DefaultDedupCap = 4096
	// DefaultDedupWindowS is how long a resubmission counts as a duplicate,
	// sized to outlast any client retry schedule (tier backoffs cap at
	// seconds) with a wide margin.
	DefaultDedupWindowS = 300.0
)

// submitKey fingerprints a submission's identity-relevant content: same
// client, same recipient, same bytes → same message, however many times the
// lossy mesh makes the client resend it.
func submitKey(clientID uint64, dst int, to postbox.Address, payload []byte) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], clientID)
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], uint64(int64(dst)))
	h.Write(b[:])
	h.Write(to[:])
	h.Write(payload)
	return h.Sum64()
}

// dedupWindow is a FIFO-evicting content-hash set with per-entry
// timestamps: a hit only counts as duplicate while its entry is younger
// than the window. Eviction is FIFO over insertion order — the same
// reasoning as the agent's dedup cache: a retry burst is short relative to
// capacity, so FIFO behaves like LRU without per-hit bookkeeping.
type dedupWindow struct {
	cap     int
	windowS float64
	at      map[uint64]float64
	ring    []uint64
	next    int
}

func newDedupWindow(capacity int, windowS float64) *dedupWindow {
	if capacity < 0 {
		return nil // dedup disabled
	}
	if capacity == 0 {
		capacity = DefaultDedupCap
	}
	if windowS <= 0 {
		windowS = DefaultDedupWindowS
	}
	return &dedupWindow{
		cap:     capacity,
		windowS: windowS,
		at:      make(map[uint64]float64, capacity),
	}
}

// seen reports whether key was recorded within the window before now.
func (d *dedupWindow) seen(key uint64, now float64) bool {
	if d == nil {
		return false
	}
	at, ok := d.at[key]
	return ok && now-at < d.windowS
}

// record stamps key at now, evicting the oldest insertion at capacity.
func (d *dedupWindow) record(key uint64, now float64) {
	if d == nil {
		return
	}
	if _, ok := d.at[key]; ok {
		d.at[key] = now // refresh an expired (or racing) entry in place
		return
	}
	if len(d.ring) < d.cap {
		d.ring = append(d.ring, key)
	} else {
		delete(d.at, d.ring[d.next])
		d.ring[d.next] = key
		d.next = (d.next + 1) % d.cap
	}
	d.at[key] = now
}

func (d *dedupWindow) len() int {
	if d == nil {
		return 0
	}
	return len(d.at)
}
