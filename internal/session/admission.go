package session

// Admission control: a per-client token bucket in front of a tiered
// hashcash demand. The token bucket caps any single client's sustained
// rate; the proof-of-work tiers throttle the aggregate when the AP's
// forwarding queue backs up. Mirrors internal/agent's neighbor limiter:
// the client table is bounded, and at capacity the stalest entry is
// recycled so the table itself cannot be used to exhaust memory.

// Tier is the AP's load state, derived from forwarding-queue depth. It is
// advertised to clients on every accept/reject so backpressure is explicit
// rather than inferred from drops.
type Tier uint8

const (
	// TierNormal admits any message that passes the rate limit.
	TierNormal Tier = iota
	// TierCongested demands a modest proof-of-work per message.
	TierCongested
	// TierOverload demands an expensive proof-of-work per message.
	TierOverload
)

func (t Tier) String() string {
	switch t {
	case TierNormal:
		return "normal"
	case TierCongested:
		return "congested"
	case TierOverload:
		return "overload"
	default:
		return "tier?"
	}
}

// Cause attributes one rejected or dropped message to exactly one reason.
// Together with delivery, the causes partition every offered message:
// offered = delivered + queued + Σ per-cause counts.
type Cause uint8

const (
	// CauseNone marks an accepted message (used in TAccept replies).
	CauseNone Cause = iota
	// CauseAdmission: the submit lacked a sufficient proof-of-work for the
	// current tier (or came from an unattached client).
	CauseAdmission
	// CauseRateLimit: the client's token bucket was empty.
	CauseRateLimit
	// CauseBufferFull: the session send buffer or the AP queue was full.
	CauseBufferFull
	// CauseNetworkExhausted: the message was accepted but the delivery
	// ladder ran out of rungs before reaching the destination.
	CauseNetworkExhausted
)

func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseAdmission:
		return "admission"
	case CauseRateLimit:
		return "rate-limit"
	case CauseBufferFull:
		return "buffer-full"
	case CauseNetworkExhausted:
		return "network-exhausted"
	default:
		return "cause?"
	}
}

// Admission defaults.
const (
	// DefaultClientRate is the sustained per-client submit rate (msgs/sec).
	DefaultClientRate = 0.2
	// DefaultClientBurst is the per-client bucket depth.
	DefaultClientBurst = 3
	// DefaultMaxSessions bounds the session/bucket table.
	DefaultMaxSessions = 4096
	// DefaultCongestedAt is the queue-depth fraction entering TierCongested.
	DefaultCongestedAt = 0.5
	// DefaultOverloadAt is the queue-depth fraction entering TierOverload.
	DefaultOverloadAt = 0.85
	// DefaultPowBitsCongested is the hashcash difficulty at TierCongested
	// (~256 expected hashes: trivial for a phone, fatal for a tight loop).
	DefaultPowBitsCongested = 8
	// DefaultPowBitsOverload is the hashcash difficulty at TierOverload
	// (~4096 expected hashes).
	DefaultPowBitsOverload = 12
)

// clientBucket is a token bucket on the session's float64 sim-second clock.
type clientBucket struct {
	tokens float64
	last   float64
}

func (b *clientBucket) allow(now, rate, burst float64) bool {
	if now > b.last {
		b.tokens += (now - b.last) * rate
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tierFor maps queue depth to a load tier.
func tierFor(depth, capacity int, congestedAt, overloadAt float64) Tier {
	if capacity <= 0 {
		return TierNormal
	}
	frac := float64(depth) / float64(capacity)
	switch {
	case frac >= overloadAt:
		return TierOverload
	case frac >= congestedAt:
		return TierCongested
	default:
		return TierNormal
	}
}
