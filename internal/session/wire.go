package session

import (
	"errors"
	"fmt"
	"hash/crc32"

	"citymesh/internal/packet"
	"citymesh/internal/postbox"
)

// Session wire format.
//
// Clients (phones on an AP's Wi-Fi) speak a tiny request/reply protocol to
// their attached AP. Like the inter-AP packet format, the decode path is an
// untrusted-input boundary: every frame arrives from an arbitrary radio
// client, so frames carry a magic byte, a version, a CRC-32 trailer, and
// explicit byte budgets, and decoding rejects anything out of bounds with a
// typed sentinel error (match with errors.Is).
//
// Frame envelope: magic(1) | version(1) | type(1) | body | crc32(4, IEEE,
// over everything before it).

const (
	// Magic distinguishes session frames from inter-AP packets (0xC9) and
	// discovery hellos (0xCA) on a shared socket.
	Magic = 0xCB
	// Version is the current session wire version.
	Version = 1
)

// Request types (client → AP).
const (
	// TAttach opens (or refreshes) a session: clientID + postbox address.
	TAttach = 0x01
	// TSubmit offers one message for store-and-forward delivery.
	TSubmit = 0x02
	// TFetch asks for stored messages after a sequence number.
	TFetch = 0x03
	// TAck acknowledges delivery up to a sequence number, freeing the
	// receive window.
	TAck = 0x04
)

// Reply types (AP → client).
const (
	// TAccept reports a successful attach or submit, plus current
	// backpressure advice (tier, required PoW bits, queue headroom).
	TAccept = 0x81
	// TReject reports a refused submit or attach with its cause and the
	// advice needed to retry (tier, required PoW bits, backoff hint).
	TReject = 0x82
	// TDeliver carries a batch of stored messages in response to TFetch.
	TDeliver = 0x83
	// TAckOK confirms an ack and reports how many messages remain stored.
	TAckOK = 0x84
)

// Byte budgets for the session decode path.
const (
	// MaxSessionFrame bounds a whole session frame; it matches the UDP
	// datagram cap used by the inter-AP transport.
	MaxSessionFrame = packet.MaxFrameLen
	// MaxSessionPayload bounds one user message; user traffic rides the
	// same low-bandwidth substrate as inter-AP payloads.
	MaxSessionPayload = packet.MaxPayloadLen
	// MaxDeliverBatch bounds the number of messages in one TDeliver reply.
	MaxDeliverBatch = 64

	envelopeLen = 3 // magic + version + type
	crcLen      = 4
)

// Typed decode errors for the session wire.
var (
	ErrFrameTooLarge   = errors.New("session: frame exceeds MaxSessionFrame")
	ErrTruncated       = errors.New("session: truncated frame")
	ErrBadMagic        = errors.New("session: bad magic")
	ErrBadVersion      = errors.New("session: unsupported version")
	ErrBadType         = errors.New("session: unknown frame type")
	ErrBadCRC          = errors.New("session: CRC mismatch")
	ErrPayloadTooLarge = errors.New("session: payload exceeds MaxSessionPayload")
	ErrBatchTooLarge   = errors.New("session: deliver batch exceeds MaxDeliverBatch")
	ErrTrailingBytes   = errors.New("session: trailing bytes after body")
)

// Msg is a decoded client→AP request. Fields beyond Type and ClientID are
// populated per type: Addr for TAttach; Dst/To/PowNonce/Payload for TSubmit;
// AfterSeq for TFetch; UpToSeq for TAck.
type Msg struct {
	Type     byte
	ClientID uint64
	Addr     postbox.Address // TAttach: client's postbox address
	Dst      int             // TSubmit: destination building index
	To       postbox.Address // TSubmit: recipient postbox address
	PowNonce uint64          // TSubmit: hashcash nonce (0 when tier demands none)
	Payload  []byte          // TSubmit: opaque (normally sealed) message bytes
	AfterSeq uint64          // TFetch: return stored messages with seq > AfterSeq
	UpToSeq  uint64          // TAck: acknowledge stored messages with seq <= UpToSeq
}

// DeliverMsg is one stored message inside a TDeliver reply.
type DeliverMsg struct {
	Seq     uint64
	Payload []byte
}

// Reply is a decoded AP→client reply. Tier/PowBits/Headroom accompany
// TAccept and TReject (the explicit backpressure channel); Cause and
// RetryAfterMs are set on TReject; Msgs on TDeliver; Remaining on TAckOK.
type Reply struct {
	Type         byte
	Tier         Tier
	PowBits      uint8
	Cause        Cause
	Headroom     uint32 // TAccept: free slots left in the AP queue
	RetryAfterMs uint32 // TReject: advisory client backoff
	Msgs         []DeliverMsg
	Remaining    uint32 // TAckOK: messages still stored for this client
}

func appendEnvelope(dst []byte, typ byte) []byte {
	return append(dst, Magic, Version, typ)
}

func sealFrame(dst []byte) []byte {
	crc := crc32.ChecksumIEEE(dst)
	return append(dst, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

// openFrame validates the envelope and CRC and returns (type, body).
func openFrame(frame []byte) (byte, []byte, error) {
	if len(frame) > MaxSessionFrame {
		return 0, nil, ErrFrameTooLarge
	}
	if len(frame) < envelopeLen+crcLen {
		return 0, nil, ErrTruncated
	}
	if frame[0] != Magic {
		return 0, nil, ErrBadMagic
	}
	if frame[1] != Version {
		return 0, nil, ErrBadVersion
	}
	body := frame[:len(frame)-crcLen]
	tail := frame[len(frame)-crcLen:]
	want := uint32(tail[0])<<24 | uint32(tail[1])<<16 | uint32(tail[2])<<8 | uint32(tail[3])
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, ErrBadCRC
	}
	return frame[2], body[envelopeLen:], nil
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func takeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	v := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	return v, b[8:], nil
}

func takeAddr(b []byte) (postbox.Address, []byte, error) {
	var a postbox.Address
	if len(b) < postbox.AddressLen {
		return a, nil, ErrTruncated
	}
	copy(a[:], b[:postbox.AddressLen])
	return a, b[postbox.AddressLen:], nil
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n, err := packet.Uvarint(b)
	if err != nil {
		return 0, nil, ErrTruncated
	}
	return v, b[n:], nil
}

// EncodeMsg serializes a client→AP request.
func EncodeMsg(m Msg) ([]byte, error) {
	out := appendEnvelope(make([]byte, 0, envelopeLen+32+len(m.Payload)), m.Type)
	out = appendU64(out, m.ClientID)
	switch m.Type {
	case TAttach:
		out = append(out, m.Addr[:]...)
	case TSubmit:
		if len(m.Payload) > MaxSessionPayload {
			return nil, ErrPayloadTooLarge
		}
		if m.Dst < 0 {
			return nil, fmt.Errorf("session: negative destination building %d", m.Dst)
		}
		out = packet.AppendUvarint(out, uint64(m.Dst))
		out = append(out, m.To[:]...)
		out = appendU64(out, m.PowNonce)
		out = packet.AppendUvarint(out, uint64(len(m.Payload)))
		out = append(out, m.Payload...)
	case TFetch:
		out = packet.AppendUvarint(out, m.AfterSeq)
	case TAck:
		out = packet.AppendUvarint(out, m.UpToSeq)
	default:
		return nil, ErrBadType
	}
	frame := sealFrame(out)
	if len(frame) > MaxSessionFrame {
		return nil, ErrFrameTooLarge
	}
	return frame, nil
}

// DecodeMsg parses a client→AP request frame.
func DecodeMsg(frame []byte) (Msg, error) {
	typ, body, err := openFrame(frame)
	if err != nil {
		return Msg{}, err
	}
	var m Msg
	m.Type = typ
	if m.ClientID, body, err = takeU64(body); err != nil {
		return Msg{}, err
	}
	switch typ {
	case TAttach:
		if m.Addr, body, err = takeAddr(body); err != nil {
			return Msg{}, err
		}
	case TSubmit:
		var dst uint64
		if dst, body, err = takeUvarint(body); err != nil {
			return Msg{}, err
		}
		if dst > 1<<31 {
			return Msg{}, fmt.Errorf("session: destination building %d out of range: %w", dst, ErrBadType)
		}
		m.Dst = int(dst)
		if m.To, body, err = takeAddr(body); err != nil {
			return Msg{}, err
		}
		if m.PowNonce, body, err = takeU64(body); err != nil {
			return Msg{}, err
		}
		var plen uint64
		if plen, body, err = takeUvarint(body); err != nil {
			return Msg{}, err
		}
		if plen > MaxSessionPayload {
			return Msg{}, ErrPayloadTooLarge
		}
		if uint64(len(body)) < plen {
			return Msg{}, ErrTruncated
		}
		m.Payload = append([]byte(nil), body[:plen]...)
		body = body[plen:]
	case TFetch:
		if m.AfterSeq, body, err = takeUvarint(body); err != nil {
			return Msg{}, err
		}
	case TAck:
		if m.UpToSeq, body, err = takeUvarint(body); err != nil {
			return Msg{}, err
		}
	default:
		return Msg{}, ErrBadType
	}
	if len(body) != 0 {
		return Msg{}, ErrTrailingBytes
	}
	return m, nil
}

// EncodeReply serializes an AP→client reply.
func EncodeReply(r Reply) ([]byte, error) {
	out := appendEnvelope(make([]byte, 0, 64), r.Type)
	switch r.Type {
	case TAccept:
		out = append(out, byte(r.Tier), r.PowBits)
		out = packet.AppendUvarint(out, uint64(r.Headroom))
	case TReject:
		out = append(out, byte(r.Cause), byte(r.Tier), r.PowBits)
		out = packet.AppendUvarint(out, uint64(r.RetryAfterMs))
	case TDeliver:
		if len(r.Msgs) > MaxDeliverBatch {
			return nil, ErrBatchTooLarge
		}
		out = packet.AppendUvarint(out, uint64(len(r.Msgs)))
		for _, dm := range r.Msgs {
			if len(dm.Payload) > MaxSessionPayload {
				return nil, ErrPayloadTooLarge
			}
			out = packet.AppendUvarint(out, dm.Seq)
			out = packet.AppendUvarint(out, uint64(len(dm.Payload)))
			out = append(out, dm.Payload...)
		}
	case TAckOK:
		out = packet.AppendUvarint(out, uint64(r.Remaining))
	default:
		return nil, ErrBadType
	}
	frame := sealFrame(out)
	if len(frame) > MaxSessionFrame {
		return nil, ErrFrameTooLarge
	}
	return frame, nil
}

// DecodeReply parses an AP→client reply frame.
func DecodeReply(frame []byte) (Reply, error) {
	typ, body, err := openFrame(frame)
	if err != nil {
		return Reply{}, err
	}
	var r Reply
	r.Type = typ
	switch typ {
	case TAccept:
		if len(body) < 2 {
			return Reply{}, ErrTruncated
		}
		r.Tier, r.PowBits = Tier(body[0]), body[1]
		body = body[2:]
		var h uint64
		if h, body, err = takeUvarint(body); err != nil {
			return Reply{}, err
		}
		if h > 1<<31 {
			return Reply{}, ErrTruncated
		}
		r.Headroom = uint32(h)
	case TReject:
		if len(body) < 3 {
			return Reply{}, ErrTruncated
		}
		r.Cause, r.Tier, r.PowBits = Cause(body[0]), Tier(body[1]), body[2]
		body = body[3:]
		var ra uint64
		if ra, body, err = takeUvarint(body); err != nil {
			return Reply{}, err
		}
		if ra > 1<<31 {
			return Reply{}, ErrTruncated
		}
		r.RetryAfterMs = uint32(ra)
	case TDeliver:
		var count uint64
		if count, body, err = takeUvarint(body); err != nil {
			return Reply{}, err
		}
		if count > MaxDeliverBatch {
			return Reply{}, ErrBatchTooLarge
		}
		r.Msgs = make([]DeliverMsg, 0, count)
		for i := uint64(0); i < count; i++ {
			var dm DeliverMsg
			if dm.Seq, body, err = takeUvarint(body); err != nil {
				return Reply{}, err
			}
			var plen uint64
			if plen, body, err = takeUvarint(body); err != nil {
				return Reply{}, err
			}
			if plen > MaxSessionPayload {
				return Reply{}, ErrPayloadTooLarge
			}
			if uint64(len(body)) < plen {
				return Reply{}, ErrTruncated
			}
			dm.Payload = append([]byte(nil), body[:plen]...)
			body = body[plen:]
			r.Msgs = append(r.Msgs, dm)
		}
	case TAckOK:
		var rem uint64
		if rem, body, err = takeUvarint(body); err != nil {
			return Reply{}, err
		}
		if rem > 1<<31 {
			return Reply{}, ErrTruncated
		}
		r.Remaining = uint32(rem)
	default:
		return Reply{}, ErrBadType
	}
	if len(body) != 0 {
		return Reply{}, ErrTrailingBytes
	}
	return r, nil
}
