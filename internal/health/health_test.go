package health

import (
	"math"
	"testing"
)

func TestFailureRaisesSuspicionAndPenalty(t *testing.T) {
	m := New(Config{})
	if got := m.Suspicion(7); got != 0 {
		t.Fatalf("fresh map suspicion = %v, want 0", got)
	}
	if got := m.Penalty(7); got != 1 {
		t.Fatalf("fresh map penalty = %v, want 1", got)
	}
	m.ObserveFailure([]int{7, 9})
	if got := m.Suspicion(7); got != 1 {
		t.Errorf("suspicion after one failure = %v, want FailBump=1", got)
	}
	wantPen := 1 + DefaultConfig().PenaltyWeight*1
	if got := m.Penalty(9); got != wantPen {
		t.Errorf("penalty = %v, want %v", got, wantPen)
	}
	// Unobserved buildings stay clean.
	if got := m.Suspicion(8); got != 0 {
		t.Errorf("uninvolved building suspicion = %v, want 0", got)
	}
}

func TestSuspicionDecaysExponentially(t *testing.T) {
	m := New(Config{DecayTau: 10})
	m.ObserveFailure([]int{3})
	m.Advance(10) // one tau
	got := m.Suspicion(3)
	want := math.Exp(-1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("after one tau suspicion = %v, want 1/e = %v", got, want)
	}
	m.Advance(1000) // many taus: effectively healed, no control traffic
	if got := m.Suspicion(3); got > 1e-9 {
		t.Errorf("after many taus suspicion = %v, want ~0", got)
	}
	if got := m.Penalty(3); math.Abs(got-1) > 1e-6 {
		t.Errorf("healed penalty = %v, want ~1", got)
	}
}

func TestSuccessRelievesFasterThanDecay(t *testing.T) {
	m := New(Config{DecayTau: 1e9}) // freeze decay; isolate success relief
	m.ObserveFailure([]int{4})
	m.ObserveFailure([]int{4})
	before := m.Suspicion(4)
	m.ObserveSuccess([]int{4})
	after := m.Suspicion(4)
	if after >= before {
		t.Fatalf("success must shrink suspicion: %v -> %v", before, after)
	}
	if math.Abs(after-before*0.25) > 1e-9 {
		t.Errorf("success relief = %v, want %v (SuccessFactor 0.25)", after, before*0.25)
	}
	// Repeated successes clear the entry entirely.
	for i := 0; i < 20; i++ {
		m.ObserveSuccess([]int{4})
	}
	if got := m.Suspicion(4); got != 0 {
		t.Errorf("suspicion after many successes = %v, want 0", got)
	}
}

func TestMaxSuspicionCaps(t *testing.T) {
	m := New(Config{MaxSuspicion: 3})
	for i := 0; i < 50; i++ {
		m.ObserveFailure([]int{1})
	}
	if got := m.Suspicion(1); got > 3 {
		t.Errorf("suspicion = %v exceeds cap 3", got)
	}
}

func TestPenaltyFuncSnapshot(t *testing.T) {
	m := New(Config{})
	if vp := m.PenaltyFunc(); vp != nil {
		t.Fatal("empty map should produce a nil penalty func")
	}
	m.ObserveFailure([]int{5})
	vp := m.PenaltyFunc()
	if vp == nil {
		t.Fatal("non-empty map must produce a penalty func")
	}
	if got := vp(5); got <= 1 {
		t.Errorf("suspect penalty = %v, want > 1", got)
	}
	if got := vp(6); got != 1 {
		t.Errorf("clean penalty = %v, want 1", got)
	}
	// The snapshot is immutable: later observations don't change it.
	m.ObserveFailure([]int{6})
	if got := vp(6); got != 1 {
		t.Errorf("snapshot mutated: penalty(6) = %v", got)
	}
}

func TestSuspectsSortedAndCounted(t *testing.T) {
	m := New(Config{})
	m.ObserveFailure([]int{10})
	m.ObserveFailure([]int{20})
	m.ObserveFailure([]int{20}) // 20 is twice as suspect
	if got := m.SuspectCount(); got != 2 {
		t.Fatalf("SuspectCount = %d, want 2", got)
	}
	s := m.Suspects()
	if len(s) != 2 || s[0].Building != 20 || s[1].Building != 10 {
		t.Errorf("Suspects = %+v, want building 20 first", s)
	}
}

func TestPartitionClassification(t *testing.T) {
	m := New(Config{PartitionAfter: 2, ProbeAfter: 5})
	if m.Partitioned(42) {
		t.Fatal("fresh destination must not be partitioned")
	}
	if got := m.ObserveExhausted(42); got != 1 {
		t.Fatalf("first exhaustion count = %d, want 1", got)
	}
	if m.Partitioned(42) {
		t.Error("one exhaustion is below PartitionAfter=2")
	}
	m.ObserveExhausted(42)
	if !m.Partitioned(42) {
		t.Error("two consecutive exhaustions must classify partitioned")
	}
	// Delivery clears the classification.
	m.ObserveDelivered(42)
	if m.Partitioned(42) {
		t.Error("delivery must clear partition state")
	}
	// Re-probe: the classification lapses after ProbeAfter sim seconds.
	m.ObserveExhausted(42)
	m.ObserveExhausted(42)
	m.Advance(5.1)
	if m.Partitioned(42) {
		t.Error("partition belief must lapse after ProbeAfter so the destination is re-probed")
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	m := New(Config{})
	m.Advance(3)
	m.Advance(-100)
	if got := m.Now(); got != 3 {
		t.Errorf("Now = %v, want 3 (negative Advance ignored)", got)
	}
}

func TestResetAndString(t *testing.T) {
	m := New(Config{})
	m.ObserveFailure([]int{1, 2})
	m.ObserveExhausted(3)
	m.Reset()
	if m.SuspectCount() != 0 || m.Suspicion(1) != 0 {
		t.Error("Reset must clear suspicion")
	}
	if s := m.String(); s == "" {
		t.Error("String must render")
	}
}
