// Package health is the sender-side route-health memory that makes the
// resilient delivery ladder (core.SendReliable) self-healing. The paper's
// zero-metadata property forbids APs from exchanging liveness or routing
// state, so the only signal a sender ever gets is the end-to-end outcome of
// its own transmissions. This package turns that signal into memory: every
// failed attempt raises a *suspicion score* on the waypoint buildings of the
// failed route, every success relieves it, and all scores decay
// exponentially over simulated time so that healed regions are re-trusted
// without a single control packet.
//
// The planner consumes the memory as per-building cost multipliers
// (buildinggraph vertex penalties): a building under suspicion makes every
// route through it expensive, steering Dijkstra around the suspected-dead
// region instead of burning retries, widened conduits, and floods through
// it again.
//
// The map also classifies destinations as *partitioned* when the full
// ladder exhausts repeatedly against them. Partitioned destinations are
// candidates for store-and-heal delivery (core.SendEventually): park the
// message, back off, and re-probe as churn or repair restores the mesh.
// Partition belief expires after ProbeAfter seconds of sim time, so a
// healed destination is re-probed rather than shunned forever.
package health

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Config tunes the memory. The zero value of any field selects its default.
type Config struct {
	// DecayTau is the e-folding time of suspicion in simulated seconds: a
	// score decays by 1/e every DecayTau with no new evidence. Shorter taus
	// re-trust damaged regions faster; longer taus remember damage longer.
	DecayTau float64
	// FailBump is the suspicion added to each observed building of a
	// failed route.
	FailBump float64
	// SuccessFactor multiplies (shrinks) the suspicion of each building of
	// a delivered route — direct evidence the region forwards again, which
	// re-trusts much faster than decay alone.
	SuccessFactor float64
	// MismatchBump is the suspicion added per delivery-evidence mismatch: a
	// building whose AP provably received a frame and should have forwarded
	// it, yet the wave died there. A mismatch is stronger evidence than a
	// bare route failure (the lie is localized), so it bumps harder than
	// FailBump.
	MismatchBump float64
	// MaxSuspicion caps any single building's score so a long outage
	// cannot build unbounded distrust that outlives the repair.
	MaxSuspicion float64
	// PenaltyWeight converts suspicion into the planner's multiplicative
	// cost factor: penalty = 1 + PenaltyWeight * suspicion.
	PenaltyWeight float64
	// SuspectThreshold is the suspicion above which a building counts as
	// suspect in diagnostics (SuspectCount, Suspects).
	SuspectThreshold float64
	// PartitionAfter is the number of consecutive full-ladder exhaustions
	// against one destination before it is classified partitioned.
	PartitionAfter int
	// ProbeAfter is how long (sim seconds) a partition classification
	// stands before the destination is re-probed: Partitioned returns
	// false once this much time has passed since the last exhaustion.
	ProbeAfter float64
}

// DefaultConfig returns the evaluation defaults: 30 s decay, unit fail
// bumps, 4x success relief, penalty weight 8, partition after 2 exhausted
// ladders, re-probe after 10 s.
func DefaultConfig() Config {
	return Config{
		DecayTau:         30,
		FailBump:         1,
		SuccessFactor:    0.25,
		MismatchBump:     2,
		MaxSuspicion:     8,
		PenaltyWeight:    8,
		SuspectThreshold: 0.5,
		PartitionAfter:   2,
		ProbeAfter:       10,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DecayTau <= 0 {
		c.DecayTau = d.DecayTau
	}
	if c.FailBump <= 0 {
		c.FailBump = d.FailBump
	}
	if c.SuccessFactor <= 0 || c.SuccessFactor >= 1 {
		c.SuccessFactor = d.SuccessFactor
	}
	if c.MismatchBump <= 0 {
		c.MismatchBump = d.MismatchBump
	}
	if c.MaxSuspicion <= 0 {
		c.MaxSuspicion = d.MaxSuspicion
	}
	if c.PenaltyWeight <= 0 {
		c.PenaltyWeight = d.PenaltyWeight
	}
	if c.SuspectThreshold <= 0 {
		c.SuspectThreshold = d.SuspectThreshold
	}
	if c.PartitionAfter <= 0 {
		c.PartitionAfter = d.PartitionAfter
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = d.ProbeAfter
	}
	return c
}

// entry is one building's lazily-decayed suspicion score.
type entry struct {
	score float64 // value at time `at`
	at    float64 // sim time of last update
}

// partition tracks ladder exhaustions against one destination.
type partition struct {
	consecutive int
	lastExhaust float64
}

// Map is one sender's route-health memory. It is safe for concurrent use,
// though the intended deployment is one Map per sending agent.
type Map struct {
	mu  sync.Mutex
	cfg Config
	now float64
	sus map[int]entry
	// parts tracks consecutive full-ladder exhaustions per destination
	// building for partition classification.
	parts map[int]partition
}

// New returns an empty memory at sim time 0.
func New(cfg Config) *Map {
	return &Map{
		cfg:   cfg.withDefaults(),
		sus:   make(map[int]entry),
		parts: make(map[int]partition),
	}
}

// Config returns the effective (defaulted) configuration.
func (m *Map) Config() Config {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg
}

// Now returns the map's current sim time.
func (m *Map) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the map's clock forward by dt seconds. Decay is lazy, so
// Advance is O(1); negative dt is ignored (the clock never runs backward).
func (m *Map) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	m.mu.Lock()
	m.now += dt
	m.mu.Unlock()
}

// decayedLocked returns e's score decayed to the map's current time.
func (m *Map) decayedLocked(e entry) float64 {
	if e.score <= 0 {
		return 0
	}
	return e.score * math.Exp(-(m.now-e.at)/m.cfg.DecayTau)
}

// Suspicion returns building b's current (decayed) suspicion score.
func (m *Map) Suspicion(b int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.sus[b]
	if !ok {
		return 0
	}
	return m.decayedLocked(e)
}

// AddSuspicion raises building b's score by amount (clamped to
// MaxSuspicion). Exposed so callers can spread partial suspicion onto
// graph neighbors of a failed waypoint — damage is spatially correlated.
func (m *Map) AddSuspicion(b int, amount float64) {
	if amount <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.addLocked(b, amount)
}

func (m *Map) addLocked(b int, amount float64) {
	s := 0.0
	if e, ok := m.sus[b]; ok {
		s = m.decayedLocked(e)
	}
	s += amount
	if s > m.cfg.MaxSuspicion {
		s = m.cfg.MaxSuspicion
	}
	m.sus[b] = entry{score: s, at: m.now}
}

// ObserveFailure records a failed traversal: every listed building gains
// FailBump suspicion. Callers pass the *interior* waypoints of the failed
// route — the endpoints are not evidence of damage (the sender is alive,
// and the destination's state is tracked separately by partition
// classification).
func (m *Map) ObserveFailure(buildings []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range buildings {
		m.addLocked(b, m.cfg.FailBump)
	}
}

// ObserveSuccess records a delivered traversal: every listed building's
// suspicion shrinks by SuccessFactor — the strongest possible evidence the
// region is healthy again.
func (m *Map) ObserveSuccess(buildings []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range buildings {
		e, ok := m.sus[b]
		if !ok {
			continue
		}
		s := m.decayedLocked(e) * m.cfg.SuccessFactor
		if s < 1e-6 {
			delete(m.sus, b)
			continue
		}
		m.sus[b] = entry{score: s, at: m.now}
	}
}

// ObserveMismatch records delivery-evidence mismatches: buildings whose AP
// received a frame it should have forwarded, yet the wave provably died
// there — the signature of a grayhole or blackhole rather than radio loss.
// Each listed building gains MismatchBump suspicion, so penalty-weighted
// replanning routes around liars the same way it routes around damage.
func (m *Map) ObserveMismatch(buildings []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range buildings {
		m.addLocked(b, m.cfg.MismatchBump)
	}
}

// Penalty returns the planner cost multiplier for building b:
// 1 + PenaltyWeight * suspicion. Healthy buildings cost 1 (no change).
func (m *Map) Penalty(b int) float64 {
	return 1 + m.cfg.PenaltyWeight*m.Suspicion(b)
}

// PenaltyFunc snapshots the current penalties into a closure suitable as a
// buildinggraph.VertexPenalty. The snapshot is taken once, so the Dijkstra
// hot loop performs plain map reads with no locking or exp calls.
func (m *Map) PenaltyFunc() func(b int) float64 {
	m.mu.Lock()
	snap := make(map[int]float64, len(m.sus))
	for b, e := range m.sus {
		if s := m.decayedLocked(e); s > 1e-9 {
			snap[b] = 1 + m.cfg.PenaltyWeight*s
		}
	}
	m.mu.Unlock()
	if len(snap) == 0 {
		return nil
	}
	return func(b int) float64 {
		if p, ok := snap[b]; ok {
			return p
		}
		return 1
	}
}

// SuspectCount returns the number of buildings whose current suspicion
// exceeds SuspectThreshold.
func (m *Map) SuspectCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.sus {
		if m.decayedLocked(e) > m.cfg.SuspectThreshold {
			n++
		}
	}
	return n
}

// Suspect is one suspect building in a diagnostic snapshot.
type Suspect struct {
	Building  int
	Suspicion float64
}

// Suspects returns the buildings above SuspectThreshold, most suspect
// first (ties broken by building index for determinism).
func (m *Map) Suspects() []Suspect {
	m.mu.Lock()
	var out []Suspect
	for b, e := range m.sus {
		if s := m.decayedLocked(e); s > m.cfg.SuspectThreshold {
			out = append(out, Suspect{Building: b, Suspicion: s})
		}
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suspicion != out[j].Suspicion {
			return out[i].Suspicion > out[j].Suspicion
		}
		return out[i].Building < out[j].Building
	})
	return out
}

// ObserveExhausted records that a full delivery ladder exhausted against
// destination dst, and returns the consecutive-exhaustion count.
func (m *Map) ObserveExhausted(dst int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.parts[dst]
	p.consecutive++
	p.lastExhaust = m.now
	m.parts[dst] = p
	return p.consecutive
}

// ObserveDelivered clears destination dst's partition state — any
// delivery, by any rung, proves the destination reachable.
func (m *Map) ObserveDelivered(dst int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.parts, dst)
}

// Partitioned reports whether dst is currently classified partitioned:
// at least PartitionAfter consecutive ladder exhaustions, with the most
// recent one within the last ProbeAfter seconds. Once ProbeAfter elapses
// the classification lapses so the destination gets re-probed — the
// passive analog of the store-and-heal scheduler's backoff.
func (m *Map) Partitioned(dst int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.parts[dst]
	if !ok || p.consecutive < m.cfg.PartitionAfter {
		return false
	}
	return m.now-p.lastExhaust < m.cfg.ProbeAfter
}

// Reset clears all suspicion and partition state (the clock is kept).
func (m *Map) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sus = make(map[int]entry)
	m.parts = make(map[int]partition)
}

// String summarizes the map for status dumps.
func (m *Map) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	suspects, parts := 0, 0
	for _, e := range m.sus {
		if m.decayedLocked(e) > m.cfg.SuspectThreshold {
			suspects++
		}
	}
	for _, p := range m.parts {
		if p.consecutive >= m.cfg.PartitionAfter && m.now-p.lastExhaust < m.cfg.ProbeAfter {
			parts++
		}
	}
	return fmt.Sprintf("health.Map{t=%.2fs suspects=%d tracked=%d partitioned=%d}",
		m.now, suspects, len(m.sus), parts)
}
