// Package citygen synthesizes city maps for the CityMesh evaluation.
//
// The paper evaluates on real OpenStreetMap extracts of several US cities.
// This module is offline, so citygen generates parametric synthetic cities —
// street grids with downtown towers, residential lots, campus quads, rivers,
// parks and highway corridors — and emits them either directly as planar
// features or as OSM XML documents, which exercises the same
// osm.Parse → osm.ExtractCity pipeline a real extract would.
//
// Generation is fully deterministic given a Spec (including its Seed).
package citygen

import (
	"fmt"
	"math"
	"math/rand"

	"citymesh/internal/geo"
)

// District labels the land use of a city block.
type District int

const (
	// Downtown blocks hold a few large commercial buildings.
	Downtown District = iota
	// Residential blocks hold many small houses along the block perimeter.
	Residential
	// Campus blocks hold mid-size buildings separated by quads.
	Campus
	// Empty blocks hold no buildings (outskirts).
	Empty
)

// String implements fmt.Stringer.
func (d District) String() string {
	switch d {
	case Downtown:
		return "downtown"
	case Residential:
		return "residential"
	case Campus:
		return "campus"
	default:
		return "empty"
	}
}

// RiverSpec is a straight river band across the city.
type RiverSpec struct {
	Start, End geo.Point
	Width      float64
}

// RectSpec is an axis-aligned region used for parks and highway corridors.
type RectSpec struct {
	Rect geo.Rect
}

// Spec parameterizes a synthetic city.
type Spec struct {
	Name   string
	Seed   int64
	Origin geo.LatLon // geographic anchor for OSM output

	// Extent of the city in meters.
	Width, Height float64

	// Street grid: block dimensions and street width.
	BlockW, BlockH, StreetW float64

	// DowntownRect bounds the downtown district; blocks whose centers fall
	// inside are Downtown. CampusRect likewise for Campus. Everything else
	// is Residential.
	DowntownRect geo.Rect
	CampusRect   geo.Rect

	// Coverage scales how full blocks are, per district (0..1].
	DowntownCoverage    float64
	ResidentialCoverage float64
	CampusCoverage      float64

	Rivers   []RiverSpec
	Parks    []RectSpec
	Highways []RectSpec
}

// Validate checks spec consistency.
func (s *Spec) Validate() error {
	if s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("citygen: extent %gx%g must be positive", s.Width, s.Height)
	}
	if s.BlockW <= 0 || s.BlockH <= 0 {
		return fmt.Errorf("citygen: block %gx%g must be positive", s.BlockW, s.BlockH)
	}
	if s.StreetW < 0 || s.StreetW >= math.Min(s.BlockW, s.BlockH) {
		return fmt.Errorf("citygen: street width %g must be in [0, min block dim)", s.StreetW)
	}
	return nil
}

// Building is one generated building footprint.
type Building struct {
	Footprint geo.Polygon
	District  District
	Levels    int
}

// Plan is a generated city: planar features ready to convert to an OSM
// document or consume directly.
type Plan struct {
	Spec      Spec
	Buildings []Building
	Water     []geo.Polygon
	Parks     []geo.Polygon
	Highways  []geo.Polygon
	Bounds    geo.Rect
}

// Generate builds the city plan. The same Spec always produces the same
// plan.
func Generate(spec Spec) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	p := &Plan{
		Spec:   spec,
		Bounds: geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(spec.Width, spec.Height)},
	}

	for _, r := range spec.Rivers {
		p.Water = append(p.Water, riverPolygon(r))
	}
	for _, pk := range spec.Parks {
		p.Parks = append(p.Parks, geo.RectPolygon(pk.Rect))
	}
	for _, hw := range spec.Highways {
		p.Highways = append(p.Highways, geo.RectPolygon(hw.Rect))
	}

	nx := int(spec.Width / spec.BlockW)
	ny := int(spec.Height / spec.BlockH)
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			block := geo.Rect{
				Min: geo.Pt(float64(bx)*spec.BlockW+spec.StreetW/2, float64(by)*spec.BlockH+spec.StreetW/2),
				Max: geo.Pt(float64(bx+1)*spec.BlockW-spec.StreetW/2, float64(by+1)*spec.BlockH-spec.StreetW/2),
			}
			d := spec.districtAt(block.Center())
			if d == Empty {
				continue
			}
			p.fillBlock(rng, block, d)
		}
	}
	return p, nil
}

// districtAt returns the district for a block centered at c.
func (s *Spec) districtAt(c geo.Point) District {
	switch {
	case s.DowntownRect.Contains(c):
		return Downtown
	case s.CampusRect.Contains(c):
		return Campus
	default:
		return Residential
	}
}

// blocked reports whether a candidate footprint overlaps any gap feature
// (water, park, highway); such footprints are suppressed.
func (p *Plan) blocked(fp geo.Rect) bool {
	pgs := [][]geo.Polygon{p.Water, p.Parks, p.Highways}
	for _, group := range pgs {
		for _, gap := range group {
			if !gap.Bounds().Overlaps(fp) {
				continue
			}
			c := fp.Center()
			if gap.Contains(c) {
				return true
			}
			// Any footprint corner inside the gap also blocks.
			for _, corner := range fp.Corners() {
				if gap.Contains(corner) {
					return true
				}
			}
		}
	}
	return false
}

// fillBlock places buildings inside a block according to its district.
func (p *Plan) fillBlock(rng *rand.Rand, block geo.Rect, d District) {
	switch d {
	case Downtown:
		p.fillDowntown(rng, block)
	case Residential:
		p.fillResidential(rng, block)
	case Campus:
		p.fillCampus(rng, block)
	}
}

func (p *Plan) fillDowntown(rng *rand.Rand, block geo.Rect) {
	cov := p.Spec.DowntownCoverage
	// 1, 2 or 4 towers filling most of the block.
	n := 1 + rng.Intn(3)
	if n == 3 {
		n = 4
	}
	cells := splitRect(block, n)
	for _, cell := range cells {
		if rng.Float64() > cov {
			continue
		}
		inset := 2 + rng.Float64()*6
		fp := shrink(cell, inset)
		if fp.Width() < 10 || fp.Height() < 10 || p.blocked(fp) {
			continue
		}
		p.Buildings = append(p.Buildings, Building{
			Footprint: jitteredRect(rng, fp, 1.0),
			District:  Downtown,
			Levels:    8 + rng.Intn(32),
		})
	}
}

func (p *Plan) fillResidential(rng *rand.Rand, block geo.Rect) {
	cov := p.Spec.ResidentialCoverage
	// Two facing rows of row houses: adjacent houses share walls (0-2 m
	// gaps) with coverage-controlled breaks, matching the contiguous
	// building fabric of the dense urban neighborhoods the paper surveys.
	for _, row := range [2]struct{ y0, y1 float64 }{
		{block.Min.Y + 2, block.Min.Y + block.Height()/2 - 4},
		{block.Min.Y + block.Height()/2 + 4, block.Max.Y - 2},
	} {
		x := block.Min.X + 2
		for {
			hw := 9 + rng.Float64()*6  // house width
			hh := 10 + rng.Float64()*5 // house depth
			if x+hw > block.Max.X-2 {
				break
			}
			if rng.Float64() <= cov {
				depth := math.Min(hh, row.y1-row.y0)
				setback := rng.Float64() * math.Max(0, row.y1-row.y0-depth)
				fp := geo.Rect{
					Min: geo.Pt(x, row.y0+setback),
					Max: geo.Pt(x+hw, row.y0+setback+depth),
				}
				if !p.blocked(fp) {
					p.Buildings = append(p.Buildings, Building{
						Footprint: jitteredRect(rng, fp, 0.3),
						District:  Residential,
						Levels:    1 + rng.Intn(3),
					})
				}
				x += hw + rng.Float64()*2 // shared wall or narrow alley
			} else {
				x += hw + 4 + rng.Float64()*8 // vacant lot / driveway break
			}
		}
	}
}

func (p *Plan) fillCampus(rng *rand.Rand, block geo.Rect) {
	cov := p.Spec.CampusCoverage
	// A few large halls with quads between them; halls are big enough that
	// their AP complements bridge the quad gaps, as on a real campus.
	cells := splitRect(block, 4)
	for _, cell := range cells {
		if rng.Float64() > cov {
			continue
		}
		w := 26 + rng.Float64()*16
		h := 20 + rng.Float64()*14
		cx := cell.Min.X + rng.Float64()*math.Max(1, cell.Width()-w)
		cy := cell.Min.Y + rng.Float64()*math.Max(1, cell.Height()-h)
		fp := geo.Rect{Min: geo.Pt(cx, cy), Max: geo.Pt(cx+w, cy+h)}
		if fp.Max.X > cell.Max.X || fp.Max.Y > cell.Max.Y || p.blocked(fp) {
			continue
		}
		p.Buildings = append(p.Buildings, Building{
			Footprint: jitteredRect(rng, fp, 0.8),
			District:  Campus,
			Levels:    2 + rng.Intn(6),
		})
	}
}

// splitRect divides r into n near-equal cells (n must be 1, 2 or 4).
func splitRect(r geo.Rect, n int) []geo.Rect {
	switch n {
	case 1:
		return []geo.Rect{r}
	case 2:
		c := r.Center()
		if r.Width() >= r.Height() {
			return []geo.Rect{
				{Min: r.Min, Max: geo.Pt(c.X, r.Max.Y)},
				{Min: geo.Pt(c.X, r.Min.Y), Max: r.Max},
			}
		}
		return []geo.Rect{
			{Min: r.Min, Max: geo.Pt(r.Max.X, c.Y)},
			{Min: geo.Pt(r.Min.X, c.Y), Max: r.Max},
		}
	default:
		c := r.Center()
		return []geo.Rect{
			{Min: r.Min, Max: c},
			{Min: geo.Pt(c.X, r.Min.Y), Max: geo.Pt(r.Max.X, c.Y)},
			{Min: geo.Pt(r.Min.X, c.Y), Max: geo.Pt(c.X, r.Max.Y)},
			{Min: c, Max: r.Max},
		}
	}
}

func shrink(r geo.Rect, d float64) geo.Rect { return r.Pad(-d) }

// jitteredRect converts a rect footprint to a polygon with small vertex
// jitter so synthetic buildings are not perfectly axis-aligned.
func jitteredRect(rng *rand.Rand, r geo.Rect, j float64) geo.Polygon {
	c := r.Corners()
	pg := make(geo.Polygon, 4)
	for i, p := range c {
		pg[i] = geo.Pt(p.X+(rng.Float64()*2-1)*j, p.Y+(rng.Float64()*2-1)*j)
	}
	return pg
}

// riverPolygon converts a river spec into a band polygon.
func riverPolygon(r RiverSpec) geo.Polygon {
	axis := r.End.Sub(r.Start).Unit()
	off := axis.Perp().Scale(r.Width / 2)
	// Extend the band beyond both endpoints so it fully crosses the extent.
	a := r.Start.Sub(axis.Scale(r.Width))
	b := r.End.Add(axis.Scale(r.Width))
	return geo.Polygon{a.Add(off), b.Add(off), b.Sub(off), a.Sub(off)}
}
