package citygen

import (
	"sort"

	"citymesh/internal/geo"
)

// Preset returns the Spec for a named synthetic city and whether the name is
// known. The presets mirror the qualitative structure of the cities the
// paper surveys: dense grid downtowns, residential rings, a campus, rivers
// that do or do not fracture the city, parks and highways.
func Preset(name string) (Spec, bool) {
	s, ok := presets()[name]
	return s, ok
}

// PresetNames returns all preset names in sorted order. The metro-scale
// stress preset is deliberately absent: experiments that default to "all
// cities" iterate this list, and a 10^5-AP city would turn every default
// sweep into a benchmark run. Resolve it explicitly with Preset("metro").
func PresetNames() []string {
	m := presets()
	names := make([]string, 0, len(m))
	for n := range m {
		if n == "metro" {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func presets() map[string]Spec {
	base := func(name string, seed int64, w, h float64) Spec {
		return Spec{
			Name:                name,
			Seed:                seed,
			Origin:              geo.LatLon{Lat: 42.36, Lon: -71.06},
			Width:               w,
			Height:              h,
			BlockW:              100,
			BlockH:              90,
			StreetW:             14,
			DowntownCoverage:    0.9,
			ResidentialCoverage: 0.78,
			CampusCoverage:      0.6,
		}
	}

	m := make(map[string]Spec)

	// gridtown: a pure, gap-free grid — the idealized best case.
	g := base("gridtown", 101, 2000, 2000)
	g.ResidentialCoverage = 0.85
	g.DowntownRect = geo.Rect{Min: geo.Pt(600, 600), Max: geo.Pt(1400, 1400)}
	m["gridtown"] = g

	// boston: downtown core, campus, river along the northern edge. The
	// river borders rather than splits the buildable area, so the city stays
	// mostly connected.
	b := base("boston", 102, 3000, 2400)
	b.DowntownRect = geo.Rect{Min: geo.Pt(1700, 300), Max: geo.Pt(2800, 1300)}
	b.CampusRect = geo.Rect{Min: geo.Pt(300, 300), Max: geo.Pt(1100, 1000)}
	b.Rivers = []RiverSpec{{Start: geo.Pt(0, 2100), End: geo.Pt(3000, 1900), Width: 260}}
	b.Parks = []RectSpec{{Rect: geo.Rect{Min: geo.Pt(1250, 500), Max: geo.Pt(1580, 1000)}}}
	m["boston"] = b

	// cambridge: campus-heavy with small parks; dense and well connected.
	c := base("cambridge", 103, 2400, 2000)
	c.CampusRect = geo.Rect{Min: geo.Pt(700, 500), Max: geo.Pt(1700, 1400)}
	c.Parks = []RectSpec{
		{Rect: geo.Rect{Min: geo.Pt(200, 1500), Max: geo.Pt(550, 1800)}},
		{Rect: geo.Rect{Min: geo.Pt(1900, 200), Max: geo.Pt(2200, 500)}},
	}
	m["cambridge"] = c

	// dc: a wide river plus a long mall-like park crossing the middle —
	// the city fractures into islands of connectivity (§4's Washington
	// D.C. observation).
	d := base("dc", 104, 3200, 2600)
	d.DowntownRect = geo.Rect{Min: geo.Pt(1900, 1500), Max: geo.Pt(2900, 2300)}
	d.Rivers = []RiverSpec{{Start: geo.Pt(0, 500), End: geo.Pt(3200, 1250), Width: 420}}
	d.Parks = []RectSpec{{Rect: geo.Rect{Min: geo.Pt(600, 1600), Max: geo.Pt(1750, 1950)}}}
	m["dc"] = d

	// chicago: very dense tall downtown against a lakefront (eastern band
	// of water); the rest a regular residential grid.
	ch := base("chicago", 105, 3000, 2600)
	ch.BlockW, ch.BlockH = 90, 80
	ch.DowntownRect = geo.Rect{Min: geo.Pt(1800, 800), Max: geo.Pt(2600, 2000)}
	ch.Rivers = []RiverSpec{{Start: geo.Pt(2850, 0), End: geo.Pt(2850, 2600), Width: 300}}
	m["chicago"] = ch

	// sanfrancisco: long park band (Golden Gate Park) and a highway
	// corridor; moderate density.
	sf := base("sanfrancisco", 106, 3000, 2400)
	sf.DowntownRect = geo.Rect{Min: geo.Pt(2100, 1500), Max: geo.Pt(2900, 2200)}
	sf.ResidentialCoverage = 0.75
	sf.Parks = []RectSpec{{Rect: geo.Rect{Min: geo.Pt(200, 900), Max: geo.Pt(1700, 1250)}}}
	sf.Highways = []RectSpec{{Rect: geo.Rect{Min: geo.Pt(1900, 0), Max: geo.Pt(1980, 2400)}}}
	m["sanfrancisco"] = sf

	// austin: sparser residential sprawl with a narrow river through the
	// middle; lower coverage stresses the density assumption.
	a := base("austin", 107, 3200, 2600)
	a.BlockW, a.BlockH = 120, 110
	a.ResidentialCoverage = 0.62
	a.DowntownRect = geo.Rect{Min: geo.Pt(1300, 1400), Max: geo.Pt(2000, 2000)}
	a.Rivers = []RiverSpec{{Start: geo.Pt(0, 1150), End: geo.Pt(3200, 1000), Width: 150}}
	m["austin"] = a

	// metro: the metro-scale stress preset — downtown density across the
	// whole ~50 km² extent, yielding on the order of 10^5 APs. It exists
	// for the metroscale benchmark and engine stress tests, and is hidden
	// from PresetNames (see there).
	me := base("metro", 108, 7500, 6750)
	me.DowntownRect = geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(7500, 6750)}
	m["metro"] = me

	return m
}

// SmallTestSpec returns a tiny city used throughout the test suites: fast
// to generate yet structurally complete (downtown, residential, one park).
func SmallTestSpec(seed int64) Spec {
	s := Spec{
		Name:                "smalltown",
		Seed:                seed,
		Origin:              geo.LatLon{Lat: 42.36, Lon: -71.06},
		Width:               800,
		Height:              600,
		BlockW:              100,
		BlockH:              90,
		StreetW:             14,
		DowntownCoverage:    0.9,
		ResidentialCoverage: 0.7,
		CampusCoverage:      0.5,
		DowntownRect:        geo.Rect{Min: geo.Pt(250, 150), Max: geo.Pt(550, 450)},
	}
	return s
}
