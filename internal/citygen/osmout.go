package citygen

import (
	"citymesh/internal/geo"
	"citymesh/internal/osm"
)

// Document converts the plan into an OSM document anchored at the spec's
// Origin, suitable for osm.Write and for feeding back through osm.Parse /
// osm.ExtractCity — the exact pipeline a real map extract takes.
func (p *Plan) Document() *osm.Document {
	doc := osm.NewDocument()
	proj := geo.NewProjection(p.Spec.Origin)

	// Set bounds so the re-imported document re-centers at the same origin.
	min := proj.ToLatLon(p.Bounds.Min)
	max := proj.ToLatLon(p.Bounds.Max)
	doc.MinLat, doc.MinLon, doc.MaxLat, doc.MaxLon = min.Lat, min.Lon, max.Lat, max.Lon
	doc.HasBounds = true

	nextNode := osm.ID(1)
	nextWay := osm.ID(1)

	addPolygon := func(pg geo.Polygon, tags osm.Tags) {
		refs := make([]osm.ID, 0, len(pg)+1)
		for _, pt := range pg {
			doc.AddNode(&osm.Node{ID: nextNode, Pos: proj.ToLatLon(pt)})
			refs = append(refs, nextNode)
			nextNode++
		}
		refs = append(refs, refs[0]) // close the ring
		doc.AddWay(&osm.Way{ID: nextWay, Refs: refs, Tags: tags})
		nextWay++
	}

	for _, b := range p.Buildings {
		tags := osm.Tags{"building": "yes"}
		if b.Levels > 0 {
			tags["building:levels"] = itoa(b.Levels)
		}
		addPolygon(b.Footprint, tags)
	}
	for _, w := range p.Water {
		addPolygon(w, osm.Tags{"natural": "water"})
	}
	for _, pk := range p.Parks {
		addPolygon(pk, osm.Tags{"leisure": "park"})
	}
	for _, hw := range p.Highways {
		addPolygon(hw, osm.Tags{"highway": "motorway", "area:highway": "motorway"})
	}
	return doc
}

// City converts the plan to a planar osm.City through the full OSM pipeline
// (document build + feature extraction), then re-centers coordinates to the
// plan's own frame so downstream geometry matches the spec rectangles.
func (p *Plan) City() *osm.City {
	city := osm.ExtractCity(p.Spec.Name, p.Document(), 20)
	// ExtractCity centers its projection on the document bounds center;
	// shift everything back into the plan's [0,W]x[0,H] frame.
	offset := p.Bounds.Center()
	shift := func(f *osm.Feature) {
		for i := range f.Footprint {
			f.Footprint[i] = f.Footprint[i].Add(offset)
		}
		f.Centroid = f.Centroid.Add(offset)
	}
	for _, f := range city.Buildings {
		shift(f)
	}
	for _, f := range city.Water {
		shift(f)
	}
	for _, f := range city.Parks {
		shift(f)
	}
	for _, f := range city.Highways {
		shift(f)
	}
	city.Bounds = geo.Rect{
		Min: city.Bounds.Min.Add(offset),
		Max: city.Bounds.Max.Add(offset),
	}
	return city
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
