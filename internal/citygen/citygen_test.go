package citygen

import (
	"bytes"
	"testing"

	"citymesh/internal/geo"
	"citymesh/internal/osm"
)

func TestGenerateSmall(t *testing.T) {
	p, err := Generate(SmallTestSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Buildings) < 50 {
		t.Fatalf("only %d buildings generated", len(p.Buildings))
	}
	for i, b := range p.Buildings {
		if b.Footprint.Area() <= 0 {
			t.Fatalf("building %d has non-positive area", i)
		}
		if b.Levels < 1 {
			t.Fatalf("building %d has %d levels", i, b.Levels)
		}
		c := b.Footprint.Centroid()
		if !p.Bounds.Pad(5).Contains(c) {
			t.Fatalf("building %d centroid %v outside city bounds", i, c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SmallTestSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallTestSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Buildings) != len(b.Buildings) {
		t.Fatalf("nondeterministic building count: %d vs %d", len(a.Buildings), len(b.Buildings))
	}
	for i := range a.Buildings {
		if a.Buildings[i].Footprint[0] != b.Buildings[i].Footprint[0] {
			t.Fatalf("building %d differs between runs", i)
		}
	}
	c, err := Generate(SmallTestSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Buildings) == len(a.Buildings) {
		same := true
		for i := range c.Buildings {
			if c.Buildings[i].Footprint[0] != a.Buildings[i].Footprint[0] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical cities")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Spec{
		{Width: 0, Height: 100, BlockW: 10, BlockH: 10},
		{Width: 100, Height: 100, BlockW: 0, BlockH: 10},
		{Width: 100, Height: 100, BlockW: 10, BlockH: 10, StreetW: 20},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
}

func TestDistrictsAssigned(t *testing.T) {
	p, err := Generate(SmallTestSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[District]int{}
	for _, b := range p.Buildings {
		counts[b.District]++
	}
	if counts[Downtown] == 0 {
		t.Error("no downtown buildings")
	}
	if counts[Residential] == 0 {
		t.Error("no residential buildings")
	}
	// Downtown buildings should be larger on average.
	var dtArea, resArea float64
	for _, b := range p.Buildings {
		switch b.District {
		case Downtown:
			dtArea += b.Footprint.Area() / float64(counts[Downtown])
		case Residential:
			resArea += b.Footprint.Area() / float64(counts[Residential])
		}
	}
	if dtArea <= resArea {
		t.Errorf("downtown mean area %.0f <= residential %.0f", dtArea, resArea)
	}
}

func TestRiverSuppressesBuildings(t *testing.T) {
	s := SmallTestSpec(5)
	s.Rivers = []RiverSpec{{Start: geo.Pt(0, 300), End: geo.Pt(800, 300), Width: 120}}
	p, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	river := riverPolygon(s.Rivers[0])
	for i, b := range p.Buildings {
		if river.Contains(b.Footprint.Centroid()) {
			t.Fatalf("building %d sits in the river", i)
		}
	}
	if len(p.Water) != 1 {
		t.Fatalf("water features = %d", len(p.Water))
	}
}

func TestParkSuppressesBuildings(t *testing.T) {
	s := SmallTestSpec(6)
	park := geo.Rect{Min: geo.Pt(100, 100), Max: geo.Pt(350, 350)}
	s.Parks = []RectSpec{{Rect: park}}
	p, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	pg := geo.RectPolygon(park)
	for i, b := range p.Buildings {
		if pg.Contains(b.Footprint.Centroid()) {
			t.Fatalf("building %d sits in the park", i)
		}
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	p, err := Generate(SmallTestSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	doc := p.Document()
	if len(doc.Ways) != len(p.Buildings)+len(p.Water)+len(p.Parks)+len(p.Highways) {
		t.Fatalf("document has %d ways, want %d", len(doc.Ways), len(p.Buildings))
	}
	var buf bytes.Buffer
	if err := osm.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := osm.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	city := osm.ExtractCity("t", doc2, 20)
	// Some buildings may fall below the extraction min-area, but the vast
	// majority must survive the full XML round trip.
	if city.NumBuildings() < len(p.Buildings)*9/10 {
		t.Fatalf("extracted %d buildings from %d generated", city.NumBuildings(), len(p.Buildings))
	}
}

func TestCityFrameMatchesPlan(t *testing.T) {
	p, err := Generate(SmallTestSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	city := p.City()
	if city.NumBuildings() == 0 {
		t.Fatal("no buildings extracted")
	}
	// Each extracted centroid should be within a few meters of some
	// generated building centroid (projection round-trip error only).
	for _, f := range city.Buildings[:min(20, city.NumBuildings())] {
		best := 1e18
		for _, b := range p.Buildings {
			if d := f.Centroid.Dist(b.Footprint.Centroid()); d < best {
				best = d
			}
		}
		if best > 5 {
			t.Fatalf("extracted centroid %v is %.1f m from any generated building", f.Centroid, best)
		}
	}
	// Bounds should roughly match the plan's extent.
	if city.Bounds.Width() > p.Bounds.Width()*1.1 || city.Bounds.Height() > p.Bounds.Height()*1.1 {
		t.Errorf("city bounds %+v much larger than plan %+v", city.Bounds, p.Bounds)
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) < 6 {
		t.Fatalf("only %d presets", len(names))
	}
	for _, name := range names {
		s, ok := Preset(name)
		if !ok {
			t.Fatalf("Preset(%q) not found", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("preset %q has Name %q", name, s.Name)
		}
	}
	if _, ok := Preset("atlantis"); ok {
		t.Error("unknown preset should not resolve")
	}
}

func TestPresetStructure(t *testing.T) {
	dc, _ := Preset("dc")
	if len(dc.Rivers) == 0 {
		t.Error("dc should have a river")
	}
	g, _ := Preset("gridtown")
	if len(g.Rivers) != 0 || len(g.Parks) != 0 {
		t.Error("gridtown should have no gaps")
	}
}

func TestDistrictString(t *testing.T) {
	for d, want := range map[District]string{
		Downtown: "downtown", Residential: "residential",
		Campus: "campus", Empty: "empty",
	} {
		if d.String() != want {
			t.Errorf("String(%d) = %q", d, d.String())
		}
	}
}

func TestSplitRect(t *testing.T) {
	r := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 20)}
	if got := splitRect(r, 1); len(got) != 1 || got[0] != r {
		t.Errorf("split 1 = %v", got)
	}
	halves := splitRect(r, 2)
	if len(halves) != 2 {
		t.Fatalf("split 2 = %d cells", len(halves))
	}
	if a := halves[0].Area() + halves[1].Area(); a != r.Area() {
		t.Errorf("split 2 area = %v, want %v", a, r.Area())
	}
	quads := splitRect(r, 4)
	if len(quads) != 4 {
		t.Fatalf("split 4 = %d cells", len(quads))
	}
	var total float64
	for _, q := range quads {
		total += q.Area()
	}
	if total != r.Area() {
		t.Errorf("split 4 area = %v, want %v", total, r.Area())
	}
}

func TestItoa(t *testing.T) {
	for n, want := range map[int]string{0: "0", 7: "7", 42: "42", 1234: "1234"} {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q", n, got)
		}
	}
}

func TestGeneratePresetSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("preset generation in -short mode")
	}
	for _, name := range PresetNames() {
		s, _ := Preset(name)
		p, err := Generate(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p.Buildings) < 300 {
			t.Errorf("%s: only %d buildings", name, len(p.Buildings))
		}
	}
}
