package geo

import "math"

// Grid is a uniform spatial hash over points, used for unit-disk neighbor
// queries when building AP graphs over hundreds of thousands of nodes. Cell
// size should be on the order of the query radius: a radius-r query then
// touches at most a 3x3 block of cells.
type Grid struct {
	cell    float64
	cells   map[gridKey][]int32
	pts     []Point
	bounds  Rect
	hasPts  bool
	invCell float64
}

type gridKey struct{ cx, cy int32 }

// NewGrid returns an empty grid with the given cell size. Cell sizes that
// are zero or negative are replaced with 1.
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &Grid{
		cell:    cellSize,
		invCell: 1 / cellSize,
		cells:   make(map[gridKey][]int32),
	}
}

// Insert adds p to the grid and returns its index. Indices are assigned
// sequentially from zero and identify points in query results.
func (g *Grid) Insert(p Point) int {
	id := int32(len(g.pts))
	g.pts = append(g.pts, p)
	k := g.key(p)
	g.cells[k] = append(g.cells[k], id)
	if !g.hasPts {
		g.bounds = Rect{Min: p, Max: p}
		g.hasPts = true
	} else {
		g.bounds = g.bounds.ExpandToPoint(p)
	}
	return int(id)
}

// Len returns the number of points in the grid.
func (g *Grid) Len() int { return len(g.pts) }

// At returns the point with index id.
func (g *Grid) At(id int) Point { return g.pts[id] }

// Bounds returns the bounding box of all inserted points.
func (g *Grid) Bounds() Rect { return g.bounds }

func (g *Grid) key(p Point) gridKey {
	return gridKey{
		cx: int32(math.Floor(p.X * g.invCell)),
		cy: int32(math.Floor(p.Y * g.invCell)),
	}
}

// WithinRadius calls fn with the index and location of every point within
// radius r of center (inclusive). Iteration order is unspecified. If fn
// returns false the query stops early.
func (g *Grid) WithinRadius(center Point, r float64, fn func(id int, p Point) bool) {
	if r < 0 {
		return
	}
	r2 := r * r
	minK := g.key(Point{center.X - r, center.Y - r})
	maxK := g.key(Point{center.X + r, center.Y + r})
	for cx := minK.cx; cx <= maxK.cx; cx++ {
		for cy := minK.cy; cy <= maxK.cy; cy++ {
			for _, id := range g.cells[gridKey{cx, cy}] {
				p := g.pts[id]
				if p.Dist2(center) <= r2 {
					if !fn(int(id), p) {
						return
					}
				}
			}
		}
	}
}

// InRect calls fn with the index and location of every point inside r
// (boundary inclusive). If fn returns false the query stops early.
func (g *Grid) InRect(r Rect, fn func(id int, p Point) bool) {
	minK := g.key(r.Min)
	maxK := g.key(r.Max)
	for cx := minK.cx; cx <= maxK.cx; cx++ {
		for cy := minK.cy; cy <= maxK.cy; cy++ {
			for _, id := range g.cells[gridKey{cx, cy}] {
				p := g.pts[id]
				if r.Contains(p) {
					if !fn(int(id), p) {
						return
					}
				}
			}
		}
	}
}

// Nearest returns the index of the point nearest to center and its distance.
// It returns (-1, +Inf) when the grid is empty. maxRadius bounds the search;
// pass a non-positive value to search the whole grid.
func (g *Grid) Nearest(center Point, maxRadius float64) (int, float64) {
	if len(g.pts) == 0 {
		return -1, math.Inf(1)
	}
	limit := maxRadius
	if limit <= 0 {
		// Expand until the whole bounding box is covered.
		limit = math.Max(g.bounds.Width(), g.bounds.Height()) + g.cell
		if limit <= 0 {
			limit = g.cell
		}
	}
	bestID, bestD := -1, math.Inf(1)
	for r := g.cell; ; r *= 2 {
		g.WithinRadius(center, r, func(id int, p Point) bool {
			if d := p.Dist(center); d < bestD {
				bestID, bestD = id, d
			}
			return true
		})
		// A hit is only guaranteed nearest once the search radius exceeds
		// the best distance found so far.
		if bestID >= 0 && bestD <= r {
			return bestID, bestD
		}
		if r >= limit {
			return bestID, bestD
		}
	}
}
