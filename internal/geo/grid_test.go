package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestGridInsertAndAt(t *testing.T) {
	g := NewGrid(10)
	ids := []int{
		g.Insert(Pt(1, 1)),
		g.Insert(Pt(50, 50)),
		g.Insert(Pt(-30, 20)),
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	for i, id := range ids {
		if id != i {
			t.Errorf("id %d != %d", id, i)
		}
	}
	if g.At(1) != Pt(50, 50) {
		t.Errorf("At(1) = %v", g.At(1))
	}
	b := g.Bounds()
	if b.Min != Pt(-30, 1) || b.Max != Pt(50, 50) {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestGridWithinRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGrid(25)
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
		g.Insert(pts[i])
	}
	for trial := 0; trial < 50; trial++ {
		c := Pt(rng.Float64()*1000, rng.Float64()*1000)
		r := rng.Float64() * 120
		var got []int
		g.WithinRadius(c, r, func(id int, _ Point) bool {
			got = append(got, id)
			return true
		})
		var want []int
		for i, p := range pts {
			if p.Dist(c) <= r {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestGridWithinRadiusEarlyStop(t *testing.T) {
	g := NewGrid(10)
	for i := 0; i < 100; i++ {
		g.Insert(Pt(float64(i%10), float64(i/10)))
	}
	n := 0
	g.WithinRadius(Pt(5, 5), 100, func(int, Point) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d, want 5", n)
	}
}

func TestGridInRect(t *testing.T) {
	g := NewGrid(10)
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			g.Insert(Pt(float64(x)*10, float64(y)*10))
		}
	}
	count := 0
	g.InRect(Rect{Min: Pt(15, 15), Max: Pt(45, 45)}, func(int, Point) bool {
		count++
		return true
	})
	if count != 9 { // x,y in {20,30,40}
		t.Errorf("InRect count = %d, want 9", count)
	}
}

func TestGridNearest(t *testing.T) {
	g := NewGrid(10)
	if id, d := g.Nearest(Pt(0, 0), 0); id != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty Nearest = %d, %v", id, d)
	}
	g.Insert(Pt(0, 0))
	g.Insert(Pt(100, 0))
	g.Insert(Pt(51, 0))
	id, d := g.Nearest(Pt(60, 0), 0)
	if id != 2 || !almostEq(d, 9, 1e-12) {
		t.Errorf("Nearest = %d, %v; want 2, 9", id, d)
	}
	// With a tight maxRadius, a far query may find nothing.
	id, _ = g.Nearest(Pt(1000, 1000), 5)
	if id != -1 {
		t.Errorf("bounded Nearest = %d, want -1", id)
	}
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := NewGrid(30)
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000)
		g.Insert(pts[i])
	}
	for trial := 0; trial < 40; trial++ {
		c := Pt(rng.Float64()*2500-1250, rng.Float64()*2500-1250)
		gotID, gotD := g.Nearest(c, 0)
		wantD := math.Inf(1)
		for _, p := range pts {
			if d := p.Dist(c); d < wantD {
				wantD = d
			}
		}
		if gotID < 0 || !almostEq(gotD, wantD, 1e-9) {
			t.Fatalf("trial %d: Nearest d=%v, brute force d=%v", trial, gotD, wantD)
		}
	}
}

func TestGridZeroCellSize(t *testing.T) {
	g := NewGrid(0)
	g.Insert(Pt(0.5, 0.5))
	found := false
	g.WithinRadius(Pt(0, 0), 1, func(int, Point) bool { found = true; return true })
	if !found {
		t.Error("grid with clamped cell size should still work")
	}
}

func BenchmarkGridWithinRadius(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGrid(50)
	for i := 0; i < 100000; i++ {
		g.Insert(Pt(rng.Float64()*10000, rng.Float64()*10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Pt(rng.Float64()*10000, rng.Float64()*10000)
		n := 0
		g.WithinRadius(c, 50, func(int, Point) bool { n++; return true })
	}
}
