package geo

import "math"

// Polygon is a simple polygon given by its vertices in order. The ring is
// implicitly closed: the last vertex connects back to the first. Vertex
// order may be clockwise or counterclockwise.
type Polygon []Point

// Bounds returns the axis-aligned bounding box of the polygon.
func (pg Polygon) Bounds() Rect { return RectFromPoints(pg...) }

// SignedArea returns the signed area of the polygon: positive when the
// vertices wind counterclockwise.
func (pg Polygon) SignedArea() float64 {
	if len(pg) < 3 {
		return 0
	}
	var s float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		s += p.Cross(q)
	}
	return s / 2
}

// Area returns the absolute area of the polygon.
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// Centroid returns the area centroid of the polygon. For degenerate
// polygons (fewer than 3 vertices or zero area) it falls back to the
// vertex mean.
func (pg Polygon) Centroid() Point {
	a := pg.SignedArea()
	if len(pg) < 3 || a == 0 {
		var c Point
		if len(pg) == 0 {
			return c
		}
		for _, p := range pg {
			c = c.Add(p)
		}
		return c.Scale(1 / float64(len(pg)))
	}
	var cx, cy float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		w := p.Cross(q)
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
	}
	k := 1 / (6 * a)
	return Point{cx * k, cy * k}
}

// Contains reports whether p lies inside the polygon (ray casting; points
// exactly on an edge may be reported either way).
func (pg Polygon) Contains(p Point) bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg[i], pg[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// Perimeter returns the total edge length of the polygon.
func (pg Polygon) Perimeter() float64 {
	n := len(pg)
	if n < 2 {
		return 0
	}
	var s float64
	for i, p := range pg {
		s += p.Dist(pg[(i+1)%n])
	}
	return s
}

// DistToPoint returns the minimum distance from p to the polygon boundary,
// or 0 if p is inside the polygon.
func (pg Polygon) DistToPoint(p Point) float64 {
	if pg.Contains(p) {
		return 0
	}
	n := len(pg)
	if n == 0 {
		return math.Inf(1)
	}
	if n == 1 {
		return p.Dist(pg[0])
	}
	best := math.Inf(1)
	for i := range pg {
		d := (Segment{pg[i], pg[(i+1)%n]}).DistToPoint(p)
		if d < best {
			best = d
		}
	}
	return best
}

// GapTo returns the minimum distance between the boundaries of pg and other,
// or 0 if they overlap or one contains the other. It is the inter-building
// "gap" distance used for building-graph edge prediction.
func (pg Polygon) GapTo(other Polygon) float64 {
	if len(pg) == 0 || len(other) == 0 {
		return math.Inf(1)
	}
	// Overlap / containment fast paths.
	if pg.Contains(other[0]) || other.Contains(pg[0]) {
		return 0
	}
	best := math.Inf(1)
	for i := range pg {
		si := Segment{pg[i], pg[(i+1)%len(pg)]}
		for j := range other {
			sj := Segment{other[j], other[(j+1)%len(other)]}
			if si.Intersects(sj) {
				return 0
			}
			d := math.Min(
				math.Min(si.DistToPoint(sj.A), si.DistToPoint(sj.B)),
				math.Min(sj.DistToPoint(si.A), sj.DistToPoint(si.B)),
			)
			if d < best {
				best = d
			}
		}
	}
	return best
}

// IntersectsSegment reports whether the segment crosses or touches the
// polygon boundary or lies inside it.
func (pg Polygon) IntersectsSegment(s Segment) bool {
	n := len(pg)
	if n < 2 {
		return false
	}
	for i := range pg {
		if (Segment{pg[i], pg[(i+1)%n]}).Intersects(s) {
			return true
		}
	}
	return pg.Contains(s.A) || pg.Contains(s.B)
}

// RectPolygon returns the polygon form of an axis-aligned rectangle.
func RectPolygon(r Rect) Polygon {
	c := r.Corners()
	return Polygon{c[0], c[1], c[2], c[3]}
}

// RegularPolygon returns an n-gon of the given circumradius centered at c,
// with the first vertex at angle phase (radians).
func RegularPolygon(c Point, radius float64, n int, phase float64) Polygon {
	if n < 3 {
		n = 3
	}
	pg := make(Polygon, n)
	for i := range pg {
		a := phase + 2*math.Pi*float64(i)/float64(n)
		pg[i] = Point{c.X + radius*math.Cos(a), c.Y + radius*math.Sin(a)}
	}
	return pg
}
