package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
}

func TestDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(0, 0).Dist2(Pt(3, 4)); d != 25 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
}

func TestUnit(t *testing.T) {
	u := Pt(3, 4).Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if (Point{}).Unit() != (Point{}) {
		t.Error("Unit of zero vector should be zero")
	}
}

func TestPerpOrthogonal(t *testing.T) {
	p := Pt(2.5, -1.25)
	if d := p.Dot(p.Perp()); d != 0 {
		t.Errorf("Perp not orthogonal: dot = %v", d)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},
		{Pt(-3, 4), 5},
		{Pt(13, 4), 5},
		{Pt(5, 0), 0},
		{Pt(0, 0), 0},
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSegmentDistDegenerate(t *testing.T) {
	s := Segment{Pt(1, 1), Pt(1, 1)}
	if got := s.DistToPoint(Pt(4, 5)); !almostEq(got, 5, 1e-12) {
		t.Errorf("degenerate DistToPoint = %v, want 5", got)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		a, b Segment
		want bool
	}{
		{Segment{Pt(0, 0), Pt(10, 10)}, Segment{Pt(0, 10), Pt(10, 0)}, true},
		{Segment{Pt(0, 0), Pt(10, 0)}, Segment{Pt(0, 1), Pt(10, 1)}, false},
		{Segment{Pt(0, 0), Pt(10, 0)}, Segment{Pt(5, 0), Pt(5, 5)}, true},  // T-junction
		{Segment{Pt(0, 0), Pt(5, 0)}, Segment{Pt(5, 0), Pt(10, 0)}, true},  // shared endpoint
		{Segment{Pt(0, 0), Pt(4, 0)}, Segment{Pt(5, 0), Pt(10, 0)}, false}, // collinear disjoint
		{Segment{Pt(0, 0), Pt(10, 0)}, Segment{Pt(2, 0), Pt(8, 0)}, true},  // collinear overlap
		{Segment{Pt(0, 0), Pt(1, 1)}, Segment{Pt(2, 2), Pt(3, 1)}, false},  // near miss
	}
	for i, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		// Symmetry.
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("case %d: reversed Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestQuickDistSymmetricAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		if math.IsNaN(ax + ay + bx + by + cx + cy) {
			return true
		}
		if a.Dist(b) != b.Dist(a) {
			return false
		}
		// Triangle inequality with slack for float rounding.
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9*(1+a.Dist(c))
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickLerpEndpoints(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > 1e12 {
				return true // skip pathological float inputs
			}
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Lerp(b, 0) == a && a.Lerp(b, 1).Dist(b) <= 1e-9*(1+b.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
