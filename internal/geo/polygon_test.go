package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare() Polygon {
	return Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
}

func TestPolygonArea(t *testing.T) {
	if a := unitSquare().Area(); !almostEq(a, 1, 1e-12) {
		t.Errorf("unit square area = %v", a)
	}
	// Clockwise winding gives negative signed area but same absolute area.
	cw := Polygon{Pt(0, 0), Pt(0, 1), Pt(1, 1), Pt(1, 0)}
	if sa := cw.SignedArea(); sa >= 0 {
		t.Errorf("clockwise signed area = %v, want negative", sa)
	}
	if a := cw.Area(); !almostEq(a, 1, 1e-12) {
		t.Errorf("clockwise area = %v", a)
	}
	tri := Polygon{Pt(0, 0), Pt(4, 0), Pt(0, 3)}
	if a := tri.Area(); !almostEq(a, 6, 1e-12) {
		t.Errorf("triangle area = %v, want 6", a)
	}
}

func TestPolygonCentroid(t *testing.T) {
	c := unitSquare().Centroid()
	if !almostEq(c.X, 0.5, 1e-12) || !almostEq(c.Y, 0.5, 1e-12) {
		t.Errorf("centroid = %v", c)
	}
	// Degenerate: vertex mean fallback.
	line := Polygon{Pt(0, 0), Pt(2, 0)}
	if c := line.Centroid(); c != Pt(1, 0) {
		t.Errorf("degenerate centroid = %v", c)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := unitSquare()
	inside := []Point{Pt(0.5, 0.5), Pt(0.01, 0.99), Pt(0.999, 0.001)}
	outside := []Point{Pt(-0.1, 0.5), Pt(1.1, 0.5), Pt(0.5, -0.1), Pt(0.5, 1.1), Pt(2, 2)}
	for _, p := range inside {
		if !sq.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range outside {
		if sq.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// L-shape: the notch (top-right) is outside.
	l := Polygon{Pt(0, 0), Pt(2, 0), Pt(2, 1), Pt(1, 1), Pt(1, 2), Pt(0, 2)}
	if !l.Contains(Pt(0.5, 1.5)) {
		t.Error("point in L arm should be inside")
	}
	if l.Contains(Pt(1.5, 1.5)) {
		t.Error("point in notch should be outside")
	}
}

func TestPolygonPerimeter(t *testing.T) {
	if p := unitSquare().Perimeter(); !almostEq(p, 4, 1e-12) {
		t.Errorf("perimeter = %v", p)
	}
}

func TestPolygonDistToPoint(t *testing.T) {
	sq := unitSquare()
	if d := sq.DistToPoint(Pt(0.5, 0.5)); d != 0 {
		t.Errorf("inside dist = %v, want 0", d)
	}
	if d := sq.DistToPoint(Pt(2, 0.5)); !almostEq(d, 1, 1e-12) {
		t.Errorf("outside dist = %v, want 1", d)
	}
	if d := sq.DistToPoint(Pt(2, 2)); !almostEq(d, math.Sqrt2, 1e-12) {
		t.Errorf("corner dist = %v, want sqrt(2)", d)
	}
}

func TestPolygonGapTo(t *testing.T) {
	a := unitSquare()
	b := Polygon{Pt(3, 0), Pt(4, 0), Pt(4, 1), Pt(3, 1)}
	if g := a.GapTo(b); !almostEq(g, 2, 1e-12) {
		t.Errorf("gap = %v, want 2", g)
	}
	// Touching polygons have zero gap.
	c := Polygon{Pt(1, 0), Pt(2, 0), Pt(2, 1), Pt(1, 1)}
	if g := a.GapTo(c); g != 0 {
		t.Errorf("touching gap = %v, want 0", g)
	}
	// Overlapping polygons have zero gap.
	d := Polygon{Pt(0.5, 0.5), Pt(1.5, 0.5), Pt(1.5, 1.5), Pt(0.5, 1.5)}
	if g := a.GapTo(d); g != 0 {
		t.Errorf("overlap gap = %v, want 0", g)
	}
	// Containment has zero gap.
	inner := Polygon{Pt(0.4, 0.4), Pt(0.6, 0.4), Pt(0.6, 0.6), Pt(0.4, 0.6)}
	if g := a.GapTo(inner); g != 0 {
		t.Errorf("containment gap = %v, want 0", g)
	}
	// Symmetry.
	if a.GapTo(b) != b.GapTo(a) {
		t.Error("GapTo not symmetric")
	}
}

func TestIntersectsSegment(t *testing.T) {
	sq := unitSquare()
	if !sq.IntersectsSegment(Segment{Pt(-1, 0.5), Pt(2, 0.5)}) {
		t.Error("crossing segment should intersect")
	}
	if !sq.IntersectsSegment(Segment{Pt(0.4, 0.4), Pt(0.6, 0.6)}) {
		t.Error("interior segment should intersect")
	}
	if sq.IntersectsSegment(Segment{Pt(2, 2), Pt(3, 3)}) {
		t.Error("distant segment should not intersect")
	}
}

func TestRegularPolygon(t *testing.T) {
	hex := RegularPolygon(Pt(0, 0), 1, 6, 0)
	if len(hex) != 6 {
		t.Fatalf("hexagon has %d vertices", len(hex))
	}
	// Area of a regular hexagon with circumradius 1 is 3*sqrt(3)/2.
	want := 3 * math.Sqrt(3) / 2
	if a := hex.Area(); !almostEq(a, want, 1e-9) {
		t.Errorf("hexagon area = %v, want %v", a, want)
	}
	c := hex.Centroid()
	if !almostEq(c.X, 0, 1e-9) || !almostEq(c.Y, 0, 1e-9) {
		t.Errorf("hexagon centroid = %v, want origin", c)
	}
	// n < 3 is clamped.
	if got := len(RegularPolygon(Pt(0, 0), 1, 2, 0)); got != 3 {
		t.Errorf("clamped polygon has %d vertices, want 3", got)
	}
}

// Property: the centroid of a convex polygon lies inside it.
func TestQuickConvexCentroidInside(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := 3 + rng.Intn(8)
		c := Pt(rng.Float64()*1000-500, rng.Float64()*1000-500)
		r := 1 + rng.Float64()*200
		pg := RegularPolygon(c, r, n, rng.Float64()*math.Pi)
		if !pg.Contains(pg.Centroid()) {
			t.Fatalf("centroid %v outside polygon %v", pg.Centroid(), pg)
		}
	}
}

// Property: points generated strictly inside the bounding box of a regular
// polygon agree between Contains and a radial test (for regular polygons the
// incircle/circumcircle sandwich must hold).
func TestQuickRegularPolygonContainsSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		n := 3 + rng.Intn(9)
		r := 10 + rng.Float64()*100
		c := Pt(rng.Float64()*100, rng.Float64()*100)
		pg := RegularPolygon(c, r, n, rng.Float64())
		inradius := r * math.Cos(math.Pi/float64(n))
		p := Pt(c.X+(rng.Float64()*2-1)*r*1.5, c.Y+(rng.Float64()*2-1)*r*1.5)
		d := p.Dist(c)
		switch {
		case d < inradius*0.999:
			if !pg.Contains(p) {
				t.Fatalf("point %v at dist %v < inradius %v not contained", p, d, inradius)
			}
		case d > r*1.001:
			if pg.Contains(p) {
				t.Fatalf("point %v at dist %v > circumradius %v contained", p, d, r)
			}
		}
	}
}

// Property: scaling a polygon by k scales its area by k^2.
func TestQuickAreaScaling(t *testing.T) {
	f := func(k float64) bool {
		k = math.Mod(math.Abs(k), 10) + 0.1
		pg := Polygon{Pt(0, 0), Pt(3, 0), Pt(4, 2), Pt(1, 3)}
		scaled := make(Polygon, len(pg))
		for i, p := range pg {
			scaled[i] = p.Scale(k)
		}
		return almostEq(scaled.Area(), pg.Area()*k*k, 1e-6*(1+pg.Area()*k*k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
