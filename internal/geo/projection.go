package geo

import "math"

// EarthRadiusMeters is the mean Earth radius used by the equirectangular
// projection.
const EarthRadiusMeters = 6371000.0

// LatLon is a WGS-84 coordinate in degrees.
type LatLon struct {
	Lat, Lon float64
}

// Projection maps lat/lon coordinates to a local tangent plane in meters
// using the equirectangular approximation around an origin. At city scale
// (tens of kilometers) the distortion is far below the Wi-Fi transmission
// range, so all CityMesh geometry can run in the plane.
type Projection struct {
	Origin LatLon
	cosLat float64
}

// NewProjection returns a projection centered at origin.
func NewProjection(origin LatLon) *Projection {
	return &Projection{Origin: origin, cosLat: math.Cos(origin.Lat * math.Pi / 180)}
}

// ToPlane projects ll into the local plane.
func (pr *Projection) ToPlane(ll LatLon) Point {
	const degToRad = math.Pi / 180
	return Point{
		X: (ll.Lon - pr.Origin.Lon) * degToRad * EarthRadiusMeters * pr.cosLat,
		Y: (ll.Lat - pr.Origin.Lat) * degToRad * EarthRadiusMeters,
	}
}

// ToLatLon is the inverse of ToPlane.
func (pr *Projection) ToLatLon(p Point) LatLon {
	const radToDeg = 180 / math.Pi
	return LatLon{
		Lat: pr.Origin.Lat + p.Y/EarthRadiusMeters*radToDeg,
		Lon: pr.Origin.Lon + p.X/(EarthRadiusMeters*pr.cosLat)*radToDeg,
	}
}

// HaversineMeters returns the great-circle distance between two coordinates.
// It is the ground truth the projection is validated against in tests.
func HaversineMeters(a, b LatLon) float64 {
	const degToRad = math.Pi / 180
	lat1, lat2 := a.Lat*degToRad, b.Lat*degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}
