package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestRectFromPoints(t *testing.T) {
	r := RectFromPoints(Pt(1, 5), Pt(-2, 3), Pt(4, -1))
	want := Rect{Min: Pt(-2, -1), Max: Pt(4, 5)}
	if r != want {
		t.Errorf("RectFromPoints = %+v, want %+v", r, want)
	}
	if z := RectFromPoints(); z != (Rect{}) {
		t.Errorf("empty RectFromPoints = %+v", z)
	}
}

func TestRectContainsOverlaps(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	if !r.Contains(Pt(5, 5)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) {
		t.Error("Contains should include interior and boundary")
	}
	if r.Contains(Pt(10.1, 5)) {
		t.Error("Contains should exclude exterior")
	}
	if !r.Overlaps(Rect{Min: Pt(5, 5), Max: Pt(15, 15)}) {
		t.Error("overlapping rects should overlap")
	}
	if !r.Overlaps(Rect{Min: Pt(10, 0), Max: Pt(20, 10)}) {
		t.Error("touching rects should overlap")
	}
	if r.Overlaps(Rect{Min: Pt(11, 0), Max: Pt(20, 10)}) {
		t.Error("disjoint rects should not overlap")
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{Min: Pt(1, 2), Max: Pt(4, 6)}
	if r.Width() != 3 || r.Height() != 4 || r.Area() != 12 {
		t.Errorf("W/H/A = %v/%v/%v", r.Width(), r.Height(), r.Area())
	}
	if c := r.Center(); c != Pt(2.5, 4) {
		t.Errorf("Center = %v", c)
	}
	p := r.Pad(1)
	if p.Min != Pt(0, 1) || p.Max != Pt(5, 7) {
		t.Errorf("Pad = %+v", p)
	}
	u := r.Union(Rect{Min: Pt(-1, 0), Max: Pt(2, 3)})
	if u.Min != Pt(-1, 0) || u.Max != Pt(4, 6) {
		t.Errorf("Union = %+v", u)
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	if d := r.DistToPoint(Pt(5, 5)); d != 0 {
		t.Errorf("inside dist = %v", d)
	}
	if d := r.DistToPoint(Pt(13, 14)); !almostEq(d, 5, 1e-12) {
		t.Errorf("corner dist = %v, want 5", d)
	}
	if d := r.DistToPoint(Pt(-3, 5)); !almostEq(d, 3, 1e-12) {
		t.Errorf("edge dist = %v, want 3", d)
	}
}

func TestOrientedRectContains(t *testing.T) {
	// Horizontal conduit from (0,0) to (100,0), half-width 25, no caps.
	o := OrientedRect{A: Pt(0, 0), B: Pt(100, 0), HalfWidth: 25}
	inside := []Point{Pt(50, 0), Pt(50, 24.9), Pt(50, -24.9), Pt(0, 0), Pt(100, 25)}
	outside := []Point{Pt(50, 25.1), Pt(-1, 0), Pt(101, 0), Pt(50, -26)}
	for _, p := range inside {
		if !o.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range outside {
		if o.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestOrientedRectEndCap(t *testing.T) {
	o := OrientedRect{A: Pt(0, 0), B: Pt(100, 0), HalfWidth: 25, EndCap: 10}
	if !o.Contains(Pt(-9, 0)) || !o.Contains(Pt(109, 0)) {
		t.Error("points within end caps should be contained")
	}
	if o.Contains(Pt(-11, 0)) || o.Contains(Pt(111, 0)) {
		t.Error("points beyond end caps should not be contained")
	}
}

func TestOrientedRectDegenerate(t *testing.T) {
	o := OrientedRect{A: Pt(5, 5), B: Pt(5, 5), HalfWidth: 10, EndCap: 2}
	if !o.Contains(Pt(5, 16.9)) {
		t.Error("degenerate conduit should be a disc of radius HalfWidth+EndCap")
	}
	if o.Contains(Pt(5, 17.1)) {
		t.Error("point beyond disc should not be contained")
	}
}

func TestOrientedRectDiagonalInvariance(t *testing.T) {
	// A conduit's membership must be rotation invariant: build one along a
	// diagonal and check the same relative geometry as the horizontal case.
	a, b := Pt(10, 10), Pt(110, 110)
	o := OrientedRect{A: a, B: b, HalfWidth: 25}
	mid := a.Lerp(b, 0.5)
	axis := b.Sub(a).Unit()
	perp := axis.Perp()
	if !o.Contains(mid.Add(perp.Scale(24.9))) {
		t.Error("point 24.9m off-axis should be inside")
	}
	if o.Contains(mid.Add(perp.Scale(25.1))) {
		t.Error("point 25.1m off-axis should be outside")
	}
}

func TestOrientedRectBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		o := OrientedRect{
			A:         Pt(rng.Float64()*1000, rng.Float64()*1000),
			B:         Pt(rng.Float64()*1000, rng.Float64()*1000),
			HalfWidth: rng.Float64() * 60,
			EndCap:    rng.Float64() * 30,
		}
		bounds := o.Bounds()
		// Sample points inside the conduit; all must be inside the bounds.
		for j := 0; j < 20; j++ {
			tt := rng.Float64()
			off := (rng.Float64()*2 - 1) * o.HalfWidth
			axis := o.B.Sub(o.A)
			var p Point
			if axis.Norm() == 0 {
				p = o.A.Add(Pt(off, 0))
			} else {
				p = o.A.Lerp(o.B, tt).Add(axis.Unit().Perp().Scale(off))
			}
			if o.Contains(p) && !bounds.Contains(p) {
				t.Fatalf("point %v in conduit but outside Bounds %+v", p, bounds)
			}
		}
	}
}

func TestOrientedRectLength(t *testing.T) {
	o := OrientedRect{A: Pt(0, 0), B: Pt(3, 4)}
	if l := o.Length(); !almostEq(l, 5, 1e-12) {
		t.Errorf("Length = %v, want 5", l)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(LatLon{Lat: 42.3601, Lon: -71.0589}) // Boston
	coords := []LatLon{
		{42.3601, -71.0589},
		{42.37, -71.11},
		{42.35, -71.05},
	}
	for _, ll := range coords {
		back := pr.ToLatLon(pr.ToPlane(ll))
		if !almostEq(back.Lat, ll.Lat, 1e-9) || !almostEq(back.Lon, ll.Lon, 1e-9) {
			t.Errorf("round trip %v -> %v", ll, back)
		}
	}
}

func TestProjectionMatchesHaversine(t *testing.T) {
	pr := NewProjection(LatLon{Lat: 42.3601, Lon: -71.0589})
	a := LatLon{42.3601, -71.0589}
	b := LatLon{42.3701, -71.0689}
	planar := pr.ToPlane(a).Dist(pr.ToPlane(b))
	sphere := HaversineMeters(a, b)
	// At ~1.4 km the equirectangular error should be well under 0.1%.
	if math.Abs(planar-sphere)/sphere > 1e-3 {
		t.Errorf("planar %v vs haversine %v", planar, sphere)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// MIT (42.3601,-71.0942) to Boston Common (42.3550,-71.0656): ~2.4 km.
	d := HaversineMeters(LatLon{42.3601, -71.0942}, LatLon{42.3550, -71.0656})
	if d < 2200 || d > 2600 {
		t.Errorf("MIT->Common = %v m, want ~2400", d)
	}
	if d := HaversineMeters(LatLon{1, 2}, LatLon{1, 2}); d != 0 {
		t.Errorf("zero distance = %v", d)
	}
}
