package geo

import "math"

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right; a Rect with Min == Max is a degenerate point.
type Rect struct {
	Min, Max Point
}

// RectFromPoints returns the smallest Rect containing every point in pts.
// It returns the zero Rect when pts is empty.
func RectFromPoints(pts ...Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.ExpandToPoint(p)
	}
	return r
}

// ExpandToPoint returns r grown to contain p.
func (r Rect) ExpandToPoint(p Point) Rect {
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
	return r
}

// Pad returns r grown by d on every side.
func (r Rect) Pad(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Union returns the smallest Rect containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return r.ExpandToPoint(s.Min).ExpandToPoint(s.Max)
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Overlaps reports whether r and s share any area or boundary.
func (r Rect) Overlaps(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Corners returns the four corners of r in counterclockwise order starting
// from Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// DistToPoint returns the distance from p to the nearest point of r; zero if
// p is inside r.
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// OrientedRect is a rectangle of the given half-width extruded along the
// segment from A to B, optionally extended by EndCap beyond both endpoints.
// It is the geometric form of a CityMesh conduit: a region of width
// 2*HalfWidth following a waypoint-to-waypoint leg.
type OrientedRect struct {
	A, B      Point
	HalfWidth float64
	// EndCap extends the rectangle beyond A and B along the axis, so that
	// buildings at the waypoints themselves fall inside the conduit.
	EndCap float64
}

// Contains reports whether p lies inside the oriented rectangle.
func (o OrientedRect) Contains(p Point) bool {
	axis := o.B.Sub(o.A)
	l := axis.Norm()
	if l == 0 {
		// Degenerate conduit: a disc of radius HalfWidth+EndCap around A.
		return p.Dist(o.A) <= o.HalfWidth+o.EndCap
	}
	u := axis.Scale(1 / l)
	rel := p.Sub(o.A)
	along := rel.Dot(u)
	if along < -o.EndCap || along > l+o.EndCap {
		return false
	}
	across := math.Abs(rel.Cross(u))
	return across <= o.HalfWidth
}

// Bounds returns the axis-aligned bounding box of the oriented rectangle.
func (o OrientedRect) Bounds() Rect {
	pad := math.Hypot(o.HalfWidth, o.EndCap)
	return RectFromPoints(o.A, o.B).Pad(pad)
}

// MayContain is a conservative prefilter for Contains: it tests p against
// the axis-aligned box around the segment padded by HalfWidth+EndCap on
// every side — a superset of the oriented rectangle — using only
// comparisons and additions, no square roots. A false result means
// Contains(p) is certainly false; a true result means "run the full test".
func (o OrientedRect) MayContain(p Point) bool {
	pad := o.HalfWidth + o.EndCap
	minX, maxX := o.A.X, o.B.X
	if minX > maxX {
		minX, maxX = maxX, minX
	}
	if p.X < minX-pad || p.X > maxX+pad {
		return false
	}
	minY, maxY := o.A.Y, o.B.Y
	if minY > maxY {
		minY, maxY = maxY, minY
	}
	return p.Y >= minY-pad && p.Y <= maxY+pad
}

// Length returns the axis length of the oriented rectangle (without caps).
func (o OrientedRect) Length() float64 { return o.A.Dist(o.B) }
