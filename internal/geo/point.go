// Package geo provides planar geometry primitives for CityMesh.
//
// All coordinates are in meters in a local tangent plane. Latitude and
// longitude from map data are projected with an equirectangular projection
// (see Projection) before any geometric computation; city-scale extents keep
// the projection error well below the Wi-Fi transmission range that drives
// every distance threshold in the system.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the local plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q viewed as
// vectors; its sign gives the orientation of the turn from p to q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as unit-disk graph construction.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Unit returns the unit vector in the direction of p. The zero vector is
// returned unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return Point{}
	}
	return Point{p.X / n, p.Y / n}
}

// Perp returns p rotated 90 degrees counterclockwise.
func (p Point) Perp() Point { return Point{-p.Y, p.X} }

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Length returns the length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// DistToPoint returns the minimum distance from p to any point on s.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Dist(s.A.Add(d.Scale(t)))
}

// Intersects reports whether segments s and t share at least one point.
func (s Segment) Intersects(t Segment) bool {
	d1 := orient(t.A, t.B, s.A)
	d2 := orient(t.A, t.B, s.B)
	d3 := orient(s.A, s.B, t.A)
	d4 := orient(s.A, s.B, t.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(t.A, t.B, s.A):
		return true
	case d2 == 0 && onSegment(t.A, t.B, s.B):
		return true
	case d3 == 0 && onSegment(s.A, s.B, t.A):
		return true
	case d4 == 0 && onSegment(s.A, s.B, t.B):
		return true
	}
	return false
}

// orient returns the orientation of c relative to the directed line a->b:
// positive for counterclockwise, negative for clockwise, zero for collinear.
func orient(a, b, c Point) float64 { return b.Sub(a).Cross(c.Sub(a)) }

// onSegment reports whether collinear point p lies within the bounding box
// of segment ab.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}
