package core

import (
	"citymesh/internal/buildinggraph"
	"citymesh/internal/conduit"
	"citymesh/internal/sim"
)

// MultipathResult is the outcome of a k-route redundant send.
type MultipathResult struct {
	// Routes are the diverse compressed routes attempted, in order.
	Routes []conduit.Route
	// Paths are the uncompressed building paths behind Routes. Conduit
	// compression drops interior buildings a straight corridor traverses;
	// health feedback needs them (see Network.observeHealth).
	Paths [][]int
	// Results are the per-route simulation outcomes.
	Results []sim.Result
	// Delivered reports whether any copy arrived.
	Delivered bool
	// TotalBroadcasts sums transmissions across all copies — the price of
	// redundancy.
	TotalBroadcasts int
}

// PlanDiverseRoutes returns up to k spatially diverse compressed routes
// from src to dst (see buildinggraph.DiversePaths). The security rationale
// (§1): if some conduits traverse compromised areas, an alternative that
// avoids them may still deliver.
func (n *Network) PlanDiverseRoutes(src, dst, k int) ([]conduit.Route, error) {
	return n.PlanDiverseRoutesPenalized(src, dst, k, nil)
}

// PlanDiverseRoutesPenalized is PlanDiverseRoutes under per-building cost
// multipliers: the diversity penalties compose with the health penalties,
// so every candidate route is both corridor-diverse and damage-aware. A
// nil vp is identical to PlanDiverseRoutes.
func (n *Network) PlanDiverseRoutesPenalized(src, dst, k int, vp buildinggraph.VertexPenalty) ([]conduit.Route, error) {
	paths, err := n.Graph.DiversePathsPenalized(src, dst, k, 16, vp)
	if err != nil {
		return nil, err
	}
	routes := make([]conduit.Route, 0, len(paths))
	for _, p := range paths {
		r, err := conduit.Compress(n.City, p, n.Cfg.ConduitWidth)
		if err != nil {
			return nil, err
		}
		routes = append(routes, r)
	}
	return routes, nil
}

// MultipathSend sends one copy of the payload along each of up to k diverse
// routes and reports combined delivery. Each copy has a distinct message
// ID, so compromised or failed regions that swallow one copy do not
// suppress the others.
func (n *Network) MultipathSend(src, dst int, payload []byte, k int, simCfg sim.Config) (MultipathResult, error) {
	return n.MultipathSendPenalized(src, dst, payload, k, simCfg, nil)
}

// MultipathSendPenalized is MultipathSend with damage-aware route planning
// (see PlanDiverseRoutesPenalized). A nil vp is identical to MultipathSend.
func (n *Network) MultipathSendPenalized(src, dst int, payload []byte, k int, simCfg sim.Config, vp buildinggraph.VertexPenalty) (MultipathResult, error) {
	paths, err := n.Graph.DiversePathsPenalized(src, dst, k, 16, vp)
	if err != nil {
		return MultipathResult{}, err
	}
	routes := make([]conduit.Route, 0, len(paths))
	for _, p := range paths {
		r, err := conduit.Compress(n.City, p, n.Cfg.ConduitWidth)
		if err != nil {
			return MultipathResult{}, err
		}
		routes = append(routes, r)
	}
	out := MultipathResult{Routes: routes, Paths: paths}
	for _, r := range routes {
		pkt, err := n.NewPacket(r, payload)
		if err != nil {
			return out, err
		}
		res, err := n.Engine().Run(pkt, simCfg)
		if err != nil {
			return out, err
		}
		out.Results = append(out.Results, res)
		out.TotalBroadcasts += res.Broadcasts
		if res.Delivered {
			out.Delivered = true
		}
	}
	return out, nil
}
