package core

import (
	"encoding/binary"
	"fmt"

	"citymesh/internal/postbox"
	"citymesh/internal/sim"
)

// EventualConfig tunes SendEventually's healing scheduler.
type EventualConfig struct {
	// MaxAttempts caps the number of full ladder runs, including the
	// first (default 8).
	MaxAttempts int
	// BackoffBase is the healing backoff after the first exhausted
	// ladder, in sim seconds (default 0.5). Each further exhaustion
	// doubles it.
	BackoffBase float64
	// BackoffMax caps the healing backoff (default 30 s).
	BackoffMax float64
	// ParkAfter is the number of consecutive exhausted ladders before the
	// destination is classified partitioned and the message is parked in
	// the sender's postbox store (default 2).
	ParkAfter int
}

// DefaultEventualConfig returns the evaluation healing scheduler: up to 8
// ladder runs, 0.5 s → 30 s capped exponential backoff, park after 2
// exhaustions.
func DefaultEventualConfig() EventualConfig {
	return EventualConfig{MaxAttempts: 8, BackoffBase: 0.5, BackoffMax: 30, ParkAfter: 2}
}

// EventualResult is the outcome of a store-and-heal delivery run.
type EventualResult struct {
	// Delivered reports whether any ladder run eventually delivered.
	Delivered bool
	// Partitioned reports whether the destination was classified
	// partitioned (ParkAfter consecutive exhausted ladders).
	Partitioned bool
	// Parked reports whether the message was parked in the postbox store.
	Parked bool
	// ParkedSeq is the store sequence number of the parked copy (valid
	// when Parked).
	ParkedSeq uint64
	// HealedFromPark reports a delivery that happened *after* parking —
	// the store-and-heal success case; the parked copy is acked away.
	HealedFromPark bool
	// Attempts is the number of ladder runs performed.
	Attempts int
	// TimeToHeal is the simulated time elapsed from the first transmission
	// until the run ended: with Delivered set it is the time-to-heal, the
	// headline metric of the store-and-heal scheduler.
	TimeToHeal float64
	// TotalBroadcasts sums transmissions across every ladder run.
	TotalBroadcasts int
	// Ladders records each ladder run in order.
	Ladders []ReliableResult
}

// BuildingAddress derives the deterministic postbox address under which
// messages for a destination building are parked awaiting mesh healing.
func BuildingAddress(b int) postbox.Address {
	var a postbox.Address
	binary.BigEndian.PutUint64(a[:], uint64(b))
	return a
}

// ParkedStore returns the sender's store of messages parked for
// partitioned destinations, creating it on first use (safe under
// concurrent sends).
func (n *Network) ParkedStore() *postbox.Store {
	n.parkedOnce.Do(func() {
		n.parked = postbox.NewStore()
	})
	return n.parked
}

// SendEventually is partition-aware store-and-heal delivery: it runs the
// SendReliable ladder, and when the full ladder exhausts repeatedly it
// classifies the destination as partitioned, parks the message in the
// sender's postbox store, and keeps re-attempting under a capped
// exponential backoff as the failure schedule (churn, injected recovery)
// restores nodes. Each re-attempt advances the simulated clock, and the
// simulator consults the failure schedule at that *shifted* time — so a
// mesh that heals mid-run genuinely becomes reachable mid-run. The
// returned TimeToHeal is the sim time from first transmission to eventual
// delivery.
//
// The run is deterministic under fixed seeds: the healing backoff carries
// no jitter (the per-ladder backoffs inside SendReliable already
// de-synchronize concurrent senders).
func (n *Network) SendEventually(src, dst int, payload []byte, simCfg sim.Config, rcfg ReliableConfig, ecfg EventualConfig) (EventualResult, error) {
	if err := rcfg.Validate(); err != nil {
		return EventualResult{}, err
	}
	d := DefaultEventualConfig()
	if ecfg.MaxAttempts <= 0 {
		ecfg.MaxAttempts = d.MaxAttempts
	}
	if ecfg.BackoffBase <= 0 {
		ecfg.BackoffBase = d.BackoffBase
	}
	if ecfg.BackoffMax <= 0 {
		ecfg.BackoffMax = d.BackoffMax
	}
	if ecfg.BackoffMax < ecfg.BackoffBase {
		return EventualResult{}, fmt.Errorf("core: EventualConfig backoff base %v > max %v: %w",
			ecfg.BackoffBase, ecfg.BackoffMax, ErrBackoffInverted)
	}
	if ecfg.ParkAfter <= 0 {
		ecfg.ParkAfter = d.ParkAfter
	}

	out := EventualResult{}
	var parked postbox.StoredMessage
	baseSchedule := simCfg.Schedule
	t := 0.0
	backoff := ecfg.BackoffBase
	consecExhausted := 0
	baseMobiles := simCfg.Mobiles
	for attempt := 0; attempt < ecfg.MaxAttempts; attempt++ {
		cfg := simCfg
		if baseSchedule != nil && t > 0 {
			cfg.Schedule = sim.OffsetSchedule{Base: baseSchedule, Offset: t}
		}
		if len(baseMobiles) > 0 && t > 0 {
			// Shift every carrier's clock the same way the failure schedule
			// is shifted: a re-attempt at global time t must find the bus
			// where its route has taken it by now, not back at the depot.
			cfg.Mobiles = make([]sim.Mobile, len(baseMobiles))
			for i, mb := range baseMobiles {
				mb.Path = sim.OffsetPath{Base: mb.Path, Offset: t}
				cfg.Mobiles[i] = mb
			}
		}
		// Distinct deterministic seeds per attempt: retries must see fresh
		// loss/jitter realizations, not replay the first failure.
		cfg.Seed = simCfg.Seed + int64(attempt)*0x9e3779b9
		rc := rcfg
		rc.Seed = rcfg.Seed + int64(attempt)*0x9e3779b9
		rr, err := n.SendReliable(src, dst, payload, cfg, rc)
		if err != nil {
			return out, err
		}
		out.Attempts++
		out.TotalBroadcasts += rr.TotalBroadcasts
		out.Ladders = append(out.Ladders, rr)
		t += rr.TotalBackoff
		if rr.Delivered {
			out.Delivered = true
			out.TimeToHeal = t
			// The winning attempt's in-run delivery instant counts too: a
			// mule delivery ends seconds-to-minutes into its run, not at
			// the run's first transmission.
			for i := len(rr.Attempts) - 1; i >= 0; i-- {
				if rr.Attempts[i].Delivered {
					out.TimeToHeal += rr.Attempts[i].DeliveryTime
					break
				}
			}
			if out.Parked {
				out.HealedFromPark = true
				n.ParkedStore().Ack(BuildingAddress(dst), parked.Seq)
			}
			return out, nil
		}
		consecExhausted++
		if !out.Parked && consecExhausted >= ecfg.ParkAfter {
			out.Partitioned = true
			out.Parked = true
			parked = n.ParkedStore().Put(BuildingAddress(dst), payload, false)
			out.ParkedSeq = parked.Seq
		}
		t += backoff
		backoff *= 2
		if backoff > ecfg.BackoffMax {
			backoff = ecfg.BackoffMax
		}
	}
	out.TimeToHeal = t
	return out, nil
}
