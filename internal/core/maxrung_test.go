package core

import (
	"errors"
	"testing"

	"citymesh/internal/sim"
)

func TestReliableMaxRungStopsEscalation(t *testing.T) {
	// Kill the short corridor's midpoint so direct and retry both fail;
	// with MaxRung = RungRetry the ladder must stop there — no widen, no
	// multipath, no flood — and report exhaustion.
	n, src, dst, mid := corridorNetwork(t, 400, 300)
	simCfg := sim.DefaultConfig()
	simCfg.FailedAPs = map[int]bool{}
	for _, ap := range n.Mesh.APsInBuilding(mid) {
		simCfg.FailedAPs[int(ap)] = true
	}
	rcfg := DefaultReliableConfig()
	rcfg.MaxRung = RungRetry
	res, err := n.SendReliable(src, dst, nil, simCfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered || res.Rung != RungExhausted {
		t.Fatalf("bounded ladder delivered: %+v", res)
	}
	if len(res.Attempts) != 1+rcfg.Retries {
		t.Fatalf("got %d attempts, want %d (direct + retries only)", len(res.Attempts), 1+rcfg.Retries)
	}
	for i, a := range res.Attempts {
		if a.Rung > RungRetry {
			t.Errorf("attempt %d escalated past the cap: %v", i, a.Rung)
		}
	}

	// Raising the cap to RungMultipath re-enables the rung that can route
	// around the dead midpoint.
	rcfg.MaxRung = RungMultipath
	res, err = n.SendReliable(src, dst, nil, simCfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Rung != RungMultipath {
		t.Fatalf("cap at multipath: rung = %v delivered = %v", res.Rung, res.Delivered)
	}
}

func TestReliableMaxRungZeroIsFullLadder(t *testing.T) {
	// The zero value keeps PR-8 behavior: everything up to flood runs.
	n, src, dst, _ := corridorNetwork(t, 400, 300)
	rcfg := DefaultReliableConfig()
	if rcfg.MaxRung != 0 {
		t.Fatal("default config should leave the ladder unbounded")
	}
	res, err := n.SendReliable(src, dst, nil, sim.DefaultConfig(), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("healthy mesh: %+v", res)
	}
}

func TestReliableMaxRungValidation(t *testing.T) {
	for _, bad := range []Rung{-1, RungExhausted, RungExhausted + 3} {
		c := ReliableConfig{MaxRung: bad}
		if err := c.Validate(); !errors.Is(err, ErrBadMaxRung) {
			t.Errorf("MaxRung = %v: err = %v, want ErrBadMaxRung", bad, err)
		}
	}
	for _, ok := range []Rung{0, RungRetry, RungWiden, RungFlood} {
		c := ReliableConfig{MaxRung: ok}
		if err := c.Validate(); err != nil {
			t.Errorf("MaxRung = %v: unexpected err %v", ok, err)
		}
	}
}
