package core

import (
	"errors"
	"testing"

	"citymesh/internal/faults"
	"citymesh/internal/geo"
	"citymesh/internal/mobility"
	"citymesh/internal/sim"
)

func TestReliableConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  ReliableConfig
		want error // nil means valid
	}{
		{"zero value", ReliableConfig{}, nil},
		{"defaults", DefaultReliableConfig(), nil},
		{"negative retries", ReliableConfig{Retries: -1}, ErrNegativeRetries},
		{"zero widen factor", ReliableConfig{WidenFactors: []float64{2, 0}}, ErrBadWidenFactor},
		{"negative widen factor", ReliableConfig{WidenFactors: []float64{-3}}, ErrBadWidenFactor},
		{"inverted backoff", ReliableConfig{BackoffBase: 2, BackoffMax: 1}, ErrBackoffInverted},
		{"base without max", ReliableConfig{BackoffBase: 2}, nil},
		{"max without base", ReliableConfig{BackoffMax: 0.01}, nil},
		{"negative jitter", ReliableConfig{JitterFrac: -0.1}, ErrBadJitterFrac},
		{"jitter above one", ReliableConfig{JitterFrac: 1.5}, ErrBadJitterFrac},
		{"jitter boundaries", ReliableConfig{JitterFrac: 1}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is %v", err, tc.want)
			}
		})
	}
}

func TestSendReliableRejectsInvalidConfig(t *testing.T) {
	n := smallNetwork(t, 401)
	rcfg := DefaultReliableConfig()
	rcfg.Retries = -2
	if _, err := n.SendReliable(0, 1, nil, sim.DefaultConfig(), rcfg); !errors.Is(err, ErrNegativeRetries) {
		t.Fatalf("SendReliable with negative retries = %v, want ErrNegativeRetries", err)
	}
	rcfg = DefaultReliableConfig()
	rcfg.JitterFrac = 2
	if _, err := n.SendEventually(0, 1, nil, sim.DefaultConfig(), rcfg, EventualConfig{}); !errors.Is(err, ErrBadJitterFrac) {
		t.Fatalf("SendEventually with bad jitter = %v, want ErrBadJitterFrac", err)
	}
}

// TestRandomPairsTinyCity is the regression for the degenerate sampler: a
// one-building city used to spin count*50 rejection attempts and silently
// return nothing; now it is an explicit typed error, and a two-building
// city caps the request at the number of distinct ordered pairs.
func TestRandomPairsTinyCity(t *testing.T) {
	one, err := NewNetwork(gridCity(5, geo.Pt(0, 0)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.RandomPairs(1, 10); !errors.Is(err, ErrTooFewBuildings) {
		t.Fatalf("one-building RandomPairs = %v, want ErrTooFewBuildings", err)
	}

	two, err := NewNetwork(gridCity(5, geo.Pt(0, 0), geo.Pt(40, 0)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := two.RandomPairs(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("two-building city yields %d pairs, want the 2 distinct ordered pairs", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p[0] == p[1] || seen[p] {
			t.Fatalf("bad pair set %v", pairs)
		}
		seen[p] = true
	}
	if empty, err := two.RandomPairs(1, 0); err != nil || empty != nil {
		t.Fatalf("count<=0 = (%v, %v), want (nil, nil)", empty, err)
	}
}

// TestSendEventuallyHealsAfterRecovery drives the store-and-heal scheduler
// end to end: the destination's only AP is down until t=60 s of global sim
// time, so early ladders exhaust, the message is parked, and a later
// re-attempt — running against the schedule shifted past the recovery
// instant — delivers and acks the parked copy.
func TestSendEventuallyHealsAfterRecovery(t *testing.T) {
	n, src, dst, _ := corridorNetwork(t, 400, 300)
	failed := map[int]bool{}
	for _, ap := range n.Mesh.APsInBuilding(dst) {
		failed[int(ap)] = true
	}
	const recoverAt = 60.0
	simCfg := sim.DefaultConfig()
	simCfg.Schedule = faults.Recovery(failed, recoverAt)

	ecfg := EventualConfig{MaxAttempts: 8, BackoffBase: 8, BackoffMax: 64, ParkAfter: 2}
	res, err := n.SendEventually(src, dst, []byte("park me"), simCfg, DefaultReliableConfig(), ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("never healed: %+v", res)
	}
	if !res.Partitioned || !res.Parked || !res.HealedFromPark {
		t.Fatalf("expected park-then-heal, got %+v", res)
	}
	if res.TimeToHeal < recoverAt {
		t.Errorf("TimeToHeal %.1f s predates the recovery at %.1f s", res.TimeToHeal, recoverAt)
	}
	if res.Attempts < ecfg.ParkAfter+1 {
		t.Errorf("healed in %d attempts, impossible before parking at %d", res.Attempts, ecfg.ParkAfter)
	}
	// The delivered message's parked copy is acked away.
	if got := n.ParkedStore().Len(BuildingAddress(dst)); got != 0 {
		t.Errorf("parked store still holds %d messages after heal", got)
	}
}

// TestSendEventuallyStaysParkedWithoutRecovery: a destination that never
// comes back is classified partitioned and its message stays in the store.
func TestSendEventuallyStaysParkedWithoutRecovery(t *testing.T) {
	city := gridCity(5, geo.Pt(0, 0), geo.Pt(5000, 0))
	cfg := DefaultConfig()
	cfg.APDensity = 1e-12
	n, err := NewNetwork(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := EventualConfig{MaxAttempts: 3, BackoffBase: 0.5, BackoffMax: 4, ParkAfter: 2}
	res, err := n.SendEventually(0, 1, []byte("stranded"), sim.DefaultConfig(), DefaultReliableConfig(), ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered || res.HealedFromPark {
		t.Fatalf("5 km gap should never deliver: %+v", res)
	}
	if !res.Partitioned || !res.Parked {
		t.Fatalf("expected partition classification and parking, got %+v", res)
	}
	if res.Attempts != ecfg.MaxAttempts {
		t.Errorf("attempts = %d, want all %d", res.Attempts, ecfg.MaxAttempts)
	}
	if got := n.ParkedStore().Len(BuildingAddress(1)); got != 1 {
		t.Errorf("parked store holds %d messages, want 1", got)
	}
}

// TestSendEventuallyDeterministic: two identical runs produce identical
// attempt sequences and time-to-heal under fixed seeds.
func TestSendEventuallyDeterministic(t *testing.T) {
	run := func() EventualResult {
		n, src, dst, _ := corridorNetwork(t, 400, 300)
		failed := map[int]bool{}
		for _, ap := range n.Mesh.APsInBuilding(dst) {
			failed[int(ap)] = true
		}
		simCfg := sim.DefaultConfig()
		simCfg.Schedule = faults.Recovery(failed, 60)
		ecfg := EventualConfig{MaxAttempts: 8, BackoffBase: 8, BackoffMax: 64, ParkAfter: 2}
		res, err := n.SendEventually(src, dst, nil, simCfg, DefaultReliableConfig(), ecfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Attempts != b.Attempts || a.TimeToHeal != b.TimeToHeal || a.TotalBroadcasts != b.TotalBroadcasts {
		t.Fatalf("non-deterministic store-and-heal:\n%+v\n%+v", a, b)
	}
}

// TestSendEventuallyMuleBridgesPartition: two buildings 300 m apart — no
// static route exists and store-and-heal alone would strand the message
// forever — but an evacuation walker carrying a radio from src to dst
// picks the flood rung's packet up and mules it across within one run.
func TestSendEventuallyMuleBridgesPartition(t *testing.T) {
	city := gridCity(5, geo.Pt(0, 0), geo.Pt(300, 0))
	cfg := DefaultConfig()
	cfg.APDensity = 1e-12
	n, err := NewNetwork(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := EventualConfig{MaxAttempts: 3, BackoffBase: 0.5, BackoffMax: 4, ParkAfter: 2}

	// Baseline: no carrier, permanently parked.
	base, err := n.SendEventually(0, 1, []byte("stranded"), sim.DefaultConfig(), DefaultReliableConfig(), ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Delivered {
		t.Fatalf("300 m gap delivered without a carrier: %+v", base)
	}

	walk, err := mobility.Line(geo.Pt(0, 0), geo.Pt(300, 0), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.DefaultConfig()
	simCfg.Mobiles = []sim.Mobile{{Path: walk, HorizonS: 60}}
	res, err := n.SendEventually(0, 1, []byte("mule me"), simCfg, DefaultReliableConfig(), ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("walker never bridged the gap: %+v", res)
	}
	if res.Ladders[len(res.Ladders)-1].Rung != RungFlood {
		t.Errorf("mule pickup requires the flood rung, delivered via %v", res.Ladders[len(res.Ladders)-1].Rung)
	}
}

// clockProbePath records the latest absolute time it was queried at,
// proving SendEventually shifts carrier clocks with OffsetPath on
// re-attempts (each sim run restarts its own clock at zero).
type clockProbePath struct{ maxT *float64 }

func (p clockProbePath) PosAt(t float64) geo.Point {
	if t > *p.maxT {
		*p.maxT = t
	}
	return geo.Pt(1e6, 1e6) // far away: never participates
}

func TestSendEventuallyShiftsMobileClocks(t *testing.T) {
	city := gridCity(5, geo.Pt(0, 0), geo.Pt(300, 0))
	cfg := DefaultConfig()
	cfg.APDensity = 1e-12
	n, err := NewNetwork(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var maxT float64
	simCfg := sim.DefaultConfig()
	simCfg.Mobiles = []sim.Mobile{{Path: clockProbePath{maxT: &maxT}}}
	ecfg := EventualConfig{MaxAttempts: 3, BackoffBase: 8, BackoffMax: 64, ParkAfter: 2}
	if _, err := n.SendEventually(0, 1, nil, simCfg, DefaultReliableConfig(), ecfg); err != nil {
		t.Fatal(err)
	}
	// Attempt 3 runs at global t >= 8+16 s; without the OffsetPath wrap the
	// carrier would only ever see each run's own millisecond-scale clock.
	if maxT < 8 {
		t.Errorf("carrier clock never shifted past the first backoff: max query at t=%.3f", maxT)
	}
}
