package core

import (
	"bytes"
	"strings"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/conduit"
	"citymesh/internal/osm"
	"citymesh/internal/sim"
)

func smallNetwork(t testing.TB, seed int64) *Network {
	t.Helper()
	n, err := FromSpec(citygen.SmallTestSpec(seed), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, DefaultConfig()); err == nil {
		t.Error("nil city should error")
	}
	if _, err := NewNetwork(&osm.City{Name: "empty"}, DefaultConfig()); err == nil {
		t.Error("empty city should error")
	}
}

func TestNetworkDefaultsApplied(t *testing.T) {
	n, err := FromSpec(citygen.SmallTestSpec(81), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Cfg.TransmissionRange != 50 || n.Cfg.ConduitWidth != 50 || n.Cfg.TTL == 0 {
		t.Errorf("defaults = %+v", n.Cfg)
	}
}

func TestFromPreset(t *testing.T) {
	if _, err := FromPreset("nowhere", DefaultConfig()); err == nil {
		t.Error("unknown preset should error")
	}
	if !strings.Contains(strings.Join(citygen.PresetNames(), ","), "gridtown") {
		t.Skip("gridtown preset missing")
	}
	n, err := FromPreset("gridtown", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n.City.NumBuildings() < 300 {
		t.Errorf("gridtown buildings = %d", n.City.NumBuildings())
	}
}

func TestFromOSMPipeline(t *testing.T) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(82))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := osm.Write(&buf, plan.Document()); err != nil {
		t.Fatal(err)
	}
	n, err := FromOSM(&buf, "roundtrip", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n.City.NumBuildings() < len(plan.Buildings)*9/10 {
		t.Errorf("extracted %d of %d buildings", n.City.NumBuildings(), len(plan.Buildings))
	}
	if _, err := FromOSM(strings.NewReader("<osm"), "bad", DefaultConfig()); err == nil {
		t.Error("bad XML should error")
	}
}

func TestPlanRouteAndPacket(t *testing.T) {
	n := smallNetwork(t, 83)
	pairs, err := n.RandomPairs(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	planned := 0
	for _, p := range pairs {
		r, err := n.PlanRoute(p[0], p[1])
		if err != nil {
			continue
		}
		planned++
		if r.Src() != p[0] || r.Dst() != p[1] {
			t.Fatalf("route endpoints %d,%d != pair %v", r.Src(), r.Dst(), p)
		}
		pkt, err := n.NewPacket(r, []byte("hi"))
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Header.Src() != p[0] || pkt.Header.Dst() != p[1] {
			t.Fatal("packet endpoints mismatch")
		}
		if pkt.Header.WidthMeters() != n.Cfg.ConduitWidth {
			t.Fatalf("packet width %v != cfg %v", pkt.Header.WidthMeters(), n.Cfg.ConduitWidth)
		}
	}
	if planned == 0 {
		t.Fatal("no route planned at all")
	}
}

func TestNewPacketUniqueMsgIDs(t *testing.T) {
	n := smallNetwork(t, 84)
	r := conduit.Route{Waypoints: []int{0, 1}, Width: 50}
	ids := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		pkt, err := n.NewPacket(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ids[pkt.Header.MsgID] {
			t.Fatal("duplicate message ID")
		}
		ids[pkt.Header.MsgID] = true
	}
	if _, err := n.NewPacket(conduit.Route{}, nil); err == nil {
		t.Error("empty route should error")
	}
}

func TestSendEndToEnd(t *testing.T) {
	n := smallNetwork(t, 85)
	pairs, err := n.RandomPairs(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	attempted := 0
	for _, p := range pairs {
		if !n.Reachable(p[0], p[1]) {
			continue
		}
		res, err := n.Send(p[0], p[1], []byte("payload"), sim.DefaultConfig())
		if err != nil {
			continue
		}
		attempted++
		if res.Sim.Delivered {
			delivered++
			if res.IdealTransmissions > 0 && res.Overhead() < 1 {
				t.Fatalf("overhead %v < 1 is impossible", res.Overhead())
			}
		}
		if attempted >= 25 {
			break
		}
	}
	if attempted == 0 {
		t.Fatal("no sends attempted")
	}
	if float64(delivered)/float64(attempted) < 0.5 {
		t.Errorf("deliverability %d/%d too low for a dense small city", delivered, attempted)
	}
}

func TestRandomPairsUnique(t *testing.T) {
	n := smallNetwork(t, 86)
	pairs, err := n.RandomPairs(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 100 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	seen := make(map[[2]int]bool)
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatal("self pair")
		}
		if seen[p] {
			t.Fatal("duplicate pair")
		}
		seen[p] = true
	}
	// Determinism.
	again, err := n.RandomPairs(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("RandomPairs not deterministic")
		}
	}
}

func TestBuildingPath(t *testing.T) {
	n := smallNetwork(t, 87)
	pairs, err := n.RandomPairs(4, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		path, err := n.BuildingPath(p[0], p[1])
		if err != nil {
			continue
		}
		if path[0] != p[0] || path[len(path)-1] != p[1] {
			t.Fatal("path endpoints mismatch")
		}
		return
	}
	t.Skip("no path found")
}

func TestPlanToCityCarriesGaps(t *testing.T) {
	spec := citygen.SmallTestSpec(88)
	spec.Rivers = []citygen.RiverSpec{{Start: spec.DowntownRect.Min, End: spec.DowntownRect.Max, Width: 50}}
	plan, err := citygen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	city := PlanToCity(plan)
	if len(city.Water) != 1 {
		t.Errorf("water features = %d", len(city.Water))
	}
}

func TestMsgIDSpread(t *testing.T) {
	a := msgID(1, 1)
	b := msgID(1, 2)
	c := msgID(2, 1)
	if a == b || a == c || b == c {
		t.Error("msgID collisions")
	}
}
