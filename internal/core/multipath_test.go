package core

import (
	"fmt"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/sim"
)

func TestPlanDiverseRoutes(t *testing.T) {
	n := smallNetwork(t, 301)
	found := false
	pairs, err := n.RandomPairs(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		base, err := n.BuildingPath(p[0], p[1])
		if err != nil || len(base) < 6 {
			continue
		}
		routes, err := n.PlanDiverseRoutes(p[0], p[1], 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(routes) == 0 {
			t.Fatal("no routes")
		}
		for _, r := range routes {
			if r.Src() != p[0] || r.Dst() != p[1] {
				t.Fatalf("route endpoints %d-%d != pair %v", r.Src(), r.Dst(), p)
			}
			if r.Width != n.Cfg.ConduitWidth {
				t.Fatalf("route width %v", r.Width)
			}
		}
		if len(routes) >= 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("never produced 2+ diverse routes")
	}
	if _, err := n.PlanDiverseRoutes(0, 1<<20, 2); err == nil {
		t.Error("out-of-range destination should error")
	}
}

func TestMultipathSendDeliversAndSumsCost(t *testing.T) {
	n := smallNetwork(t, 302)
	pairs, err := n.RandomPairs(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if !n.Reachable(p[0], p[1]) {
			continue
		}
		res, err := n.MultipathSend(p[0], p[1], []byte("x"), 2, sim.DefaultConfig())
		if err != nil {
			continue
		}
		if len(res.Routes) == 0 || len(res.Results) != len(res.Routes) {
			t.Fatalf("routes %d results %d", len(res.Routes), len(res.Results))
		}
		sum := 0
		anyDelivered := false
		for _, r := range res.Results {
			sum += r.Broadcasts
			anyDelivered = anyDelivered || r.Delivered
		}
		if sum != res.TotalBroadcasts {
			t.Fatalf("TotalBroadcasts %d != sum %d", res.TotalBroadcasts, sum)
		}
		if anyDelivered != res.Delivered {
			t.Fatal("Delivered flag inconsistent with per-route results")
		}
		// Message IDs must be distinct so copies propagate independently.
		if len(res.Results) >= 2 {
			return
		}
	}
	t.Skip("no multi-route pair exercised")
}

func TestMultipathSendUnroutable(t *testing.T) {
	n := smallNetwork(t, 303)
	// Find a disconnected pair in the building graph, if any.
	pairs, err := n.RandomPairs(3, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if _, err := n.BuildingPath(p[0], p[1]); err != nil {
			if _, err := n.MultipathSend(p[0], p[1], nil, 2, sim.DefaultConfig()); err == nil {
				t.Error("unroutable pair should error")
			}
			return
		}
	}
	t.Skip("city fully connected; nothing to test")
}

func TestSendResultOverheadEdgeCases(t *testing.T) {
	if (SendResult{IdealTransmissions: 0}).Overhead() != 0 {
		t.Error("zero ideal should give zero overhead")
	}
	if (SendResult{IdealTransmissions: -1}).Overhead() != 0 {
		t.Error("unknown ideal should give zero overhead")
	}
	r := SendResult{IdealTransmissions: 2, Sim: sim.Result{Broadcasts: 26}}
	if r.Overhead() != 13 {
		t.Errorf("overhead = %v", r.Overhead())
	}
}

func TestFromSpecInvalid(t *testing.T) {
	if _, err := FromSpec(citygen.Spec{}, DefaultConfig()); err == nil {
		t.Error("invalid spec should error")
	}
}

// TestMultipathSendSelfPair: a degenerate src==dst send plans the trivial
// single-waypoint route and still reports delivery.
func TestMultipathSendSelfPair(t *testing.T) {
	n := smallNetwork(t, 304)
	res, err := n.MultipathSend(3, 3, []byte("x"), 2, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != 1 || len(res.Routes[0].Waypoints) != 1 || res.Routes[0].Waypoints[0] != 3 {
		t.Fatalf("self pair routes = %+v, want one trivial route", res.Routes)
	}
	if !res.Delivered {
		t.Error("self pair should deliver")
	}
}

// TestMultipathSendNonPositiveK: k<=0 clamps to a single route rather than
// erroring or sending nothing.
func TestMultipathSendNonPositiveK(t *testing.T) {
	n := smallNetwork(t, 304)
	for _, k := range []int{0, -3} {
		res, err := n.MultipathSend(0, 1, nil, k, sim.DefaultConfig())
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(res.Routes) != 1 {
			t.Fatalf("k=%d planned %d routes, want 1", k, len(res.Routes))
		}
	}
}

// TestMultipathSendKExceedsAvailable: asking for more diversity than the
// graph offers returns the distinct paths that exist — deduplicated, never
// padded with repeats. (Dedup is at building-path level; two distinct paths
// may still compress to the same conduit skeleton.)
func TestMultipathSendKExceedsAvailable(t *testing.T) {
	n := smallNetwork(t, 304)
	res, err := n.MultipathSend(0, 1, nil, 50, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) == 0 || len(res.Routes) > 50 {
		t.Fatalf("k=50 planned %d routes", len(res.Routes))
	}
	if len(res.Paths) != len(res.Routes) {
		t.Fatalf("paths %d != routes %d", len(res.Paths), len(res.Routes))
	}
	seen := map[string]bool{}
	for _, p := range res.Paths {
		key := fmt.Sprint(p)
		if seen[key] {
			t.Fatalf("duplicate path %v among %d", p, len(res.Paths))
		}
		seen[key] = true
	}
	if len(res.Results) != len(res.Routes) {
		t.Fatalf("results %d != routes %d", len(res.Results), len(res.Routes))
	}
}
