package core

import (
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/sim"
)

func TestPlanDiverseRoutes(t *testing.T) {
	n := smallNetwork(t, 301)
	found := false
	for _, p := range n.RandomPairs(1, 200) {
		base, err := n.BuildingPath(p[0], p[1])
		if err != nil || len(base) < 6 {
			continue
		}
		routes, err := n.PlanDiverseRoutes(p[0], p[1], 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(routes) == 0 {
			t.Fatal("no routes")
		}
		for _, r := range routes {
			if r.Src() != p[0] || r.Dst() != p[1] {
				t.Fatalf("route endpoints %d-%d != pair %v", r.Src(), r.Dst(), p)
			}
			if r.Width != n.Cfg.ConduitWidth {
				t.Fatalf("route width %v", r.Width)
			}
		}
		if len(routes) >= 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("never produced 2+ diverse routes")
	}
	if _, err := n.PlanDiverseRoutes(0, 1<<20, 2); err == nil {
		t.Error("out-of-range destination should error")
	}
}

func TestMultipathSendDeliversAndSumsCost(t *testing.T) {
	n := smallNetwork(t, 302)
	for _, p := range n.RandomPairs(2, 200) {
		if !n.Reachable(p[0], p[1]) {
			continue
		}
		res, err := n.MultipathSend(p[0], p[1], []byte("x"), 2, sim.DefaultConfig())
		if err != nil {
			continue
		}
		if len(res.Routes) == 0 || len(res.Results) != len(res.Routes) {
			t.Fatalf("routes %d results %d", len(res.Routes), len(res.Results))
		}
		sum := 0
		anyDelivered := false
		for _, r := range res.Results {
			sum += r.Broadcasts
			anyDelivered = anyDelivered || r.Delivered
		}
		if sum != res.TotalBroadcasts {
			t.Fatalf("TotalBroadcasts %d != sum %d", res.TotalBroadcasts, sum)
		}
		if anyDelivered != res.Delivered {
			t.Fatal("Delivered flag inconsistent with per-route results")
		}
		// Message IDs must be distinct so copies propagate independently.
		if len(res.Results) >= 2 {
			return
		}
	}
	t.Skip("no multi-route pair exercised")
}

func TestMultipathSendUnroutable(t *testing.T) {
	n := smallNetwork(t, 303)
	// Find a disconnected pair in the building graph, if any.
	for _, p := range n.RandomPairs(3, 300) {
		if _, err := n.BuildingPath(p[0], p[1]); err != nil {
			if _, err := n.MultipathSend(p[0], p[1], nil, 2, sim.DefaultConfig()); err == nil {
				t.Error("unroutable pair should error")
			}
			return
		}
	}
	t.Skip("city fully connected; nothing to test")
}

func TestSendResultOverheadEdgeCases(t *testing.T) {
	if (SendResult{IdealTransmissions: 0}).Overhead() != 0 {
		t.Error("zero ideal should give zero overhead")
	}
	if (SendResult{IdealTransmissions: -1}).Overhead() != 0 {
		t.Error("unknown ideal should give zero overhead")
	}
	r := SendResult{IdealTransmissions: 2, Sim: sim.Result{Broadcasts: 26}}
	if r.Overhead() != 13 {
		t.Errorf("overhead = %v", r.Overhead())
	}
}

func TestFromSpecInvalid(t *testing.T) {
	if _, err := FromSpec(citygen.Spec{}, DefaultConfig()); err == nil {
		t.Error("invalid spec should error")
	}
}
