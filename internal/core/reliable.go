package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"citymesh/internal/buildinggraph"
	"citymesh/internal/conduit"
	"citymesh/internal/fwd"
	"citymesh/internal/health"
	"citymesh/internal/packet"
	"citymesh/internal/routing"
	"citymesh/internal/sim"
)

// Rung identifies one step of the resilient delivery ladder. The ladder
// escalates from the cheapest recovery (send the same conduit route again)
// to the most expensive (a TTL-scoped flood), stopping at the first rung
// that delivers.
type Rung int

const (
	// RungDirect is the initial conduit-routed send — no recovery needed.
	RungDirect Rung = iota
	// RungRetry retransmits along the same route with fresh timing, the
	// cure for losses, collisions, and transient churn.
	RungRetry
	// RungWiden re-plans with a widened conduit W, recruiting buildings
	// adjacent to the failed corridor.
	RungWiden
	// RungMultipath sends copies along k spatially diverse routes.
	RungMultipath
	// RungFlood is the last resort: a TTL-scoped flood that reaches the
	// destination whenever the surviving mesh is physically connected.
	RungFlood
	// RungExhausted marks a ReliableResult whose every rung failed.
	RungExhausted
)

// String names the rung for tables and logs.
func (r Rung) String() string {
	switch r {
	case RungDirect:
		return "direct"
	case RungRetry:
		return "retry"
	case RungWiden:
		return "widen"
	case RungMultipath:
		return "multipath"
	case RungFlood:
		return "flood"
	case RungExhausted:
		return "exhausted"
	}
	return fmt.Sprintf("rung(%d)", int(r))
}

// NumRungs is the count of real ladder rungs (excluding RungExhausted).
const NumRungs = int(RungExhausted)

// ReliableConfig tunes SendReliable.
type ReliableConfig struct {
	// Retries is how many same-route retransmissions RungRetry attempts.
	Retries int
	// WidenFactors are the successive conduit-width multipliers RungWiden
	// tries (each is one attempt, applied to the original width).
	WidenFactors []float64
	// MultipathK is the number of diverse routes at RungMultipath.
	MultipathK int
	// FloodTTL caps the scoped flood; 0 derives a bound from the building
	// route length (or falls back to the network TTL when unroutable).
	FloodTTL uint8
	// MaxRung caps how far the ladder escalates: rungs above it are
	// skipped entirely, and the result reports RungExhausted when nothing
	// at or below delivered. Zero means unbounded (the full ladder) — a
	// direct-send-only ladder is not expressible, which is intentional:
	// callers that want one plain attempt should use Send. The federation
	// layer bounds legs at RungWiden so gateway failover, not a flood, is
	// the next recovery step after local widening fails.
	MaxRung Rung
	// BackoffBase is the first backoff delay in seconds; each subsequent
	// attempt doubles it up to BackoffMax.
	BackoffBase float64
	// BackoffMax caps the exponential backoff.
	BackoffMax float64
	// JitterFrac randomizes each backoff within ±JitterFrac/2 of itself,
	// de-synchronizing recovery retransmissions from concurrent senders.
	JitterFrac float64
	// Seed drives the backoff jitter and per-attempt simulation seeds;
	// the whole ladder is reproducible under a fixed seed.
	Seed int64
	// Health, when non-nil, makes the ladder self-healing: route planning
	// (direct, widen, and multipath rungs alike) consults the map's
	// per-building penalties so routes avoid suspected-dead regions, and
	// every attempt outcome is fed back into the map. The map's clock
	// advances by each backoff wait, so suspicion decays in the same sim
	// time the ladder spends.
	Health *health.Map
	// Evidence, with Health set, audits every failed conduit attempt for
	// per-neighbor delivery-evidence mismatches: an in-conduit AP that
	// provably received the frame with TTL to spare and did not forward it
	// is a liar (grayhole/blackhole), not collateral damage — honest
	// in-conduit APs always rebroadcast. Accused buildings take a
	// MismatchBump instead of the gentler corridor-wide FailBump, so
	// penalty-weighted replanning routes around liars specifically. The
	// audit reads the attempt's simulation transcript, the simulator's
	// stand-in for the passive overhear evidence a deployed AP collects.
	Evidence bool
}

// Typed validation errors returned (wrapped) by ReliableConfig.Validate.
var (
	// ErrNegativeRetries marks a Retries count below zero.
	ErrNegativeRetries = errors.New("negative Retries")
	// ErrBadWidenFactor marks a WidenFactors entry that is zero or
	// negative (a conduit cannot have non-positive width).
	ErrBadWidenFactor = errors.New("non-positive widen factor")
	// ErrBackoffInverted marks BackoffMax set below BackoffBase: the
	// exponential backoff would cap below its own starting point.
	ErrBackoffInverted = errors.New("BackoffMax below BackoffBase")
	// ErrBadJitterFrac marks a JitterFrac outside [0, 1].
	ErrBadJitterFrac = errors.New("JitterFrac outside [0, 1]")
	// ErrBadMaxRung marks a MaxRung outside the real ladder: negative, or
	// at/above RungExhausted (which is a result marker, not a rung).
	ErrBadMaxRung = errors.New("MaxRung outside ladder")
)

// Validate rejects nonsensical ladders with typed errors (errors.Is
// against the Err* sentinels). Zero values are not errors — they select
// defaults — so only actively contradictory settings fail.
func (c ReliableConfig) Validate() error {
	if c.Retries < 0 {
		return fmt.Errorf("core: ReliableConfig.Retries = %d: %w", c.Retries, ErrNegativeRetries)
	}
	for i, f := range c.WidenFactors {
		if f <= 0 {
			return fmt.Errorf("core: ReliableConfig.WidenFactors[%d] = %v: %w", i, f, ErrBadWidenFactor)
		}
	}
	if c.BackoffBase > 0 && c.BackoffMax > 0 && c.BackoffMax < c.BackoffBase {
		return fmt.Errorf("core: ReliableConfig backoff base %v > max %v: %w",
			c.BackoffBase, c.BackoffMax, ErrBackoffInverted)
	}
	if c.JitterFrac < 0 || c.JitterFrac > 1 {
		return fmt.Errorf("core: ReliableConfig.JitterFrac = %v: %w", c.JitterFrac, ErrBadJitterFrac)
	}
	if c.MaxRung < 0 || c.MaxRung >= RungExhausted {
		return fmt.Errorf("core: ReliableConfig.MaxRung = %v: %w", c.MaxRung, ErrBadMaxRung)
	}
	return nil
}

// DefaultReliableConfig returns the evaluation ladder: 2 retries, widen
// x2 then x4, 3-route multipath, 50 ms base backoff.
func DefaultReliableConfig() ReliableConfig {
	return ReliableConfig{
		Retries:      2,
		WidenFactors: []float64{2, 4},
		MultipathK:   3,
		BackoffBase:  0.05,
		BackoffMax:   2,
		JitterFrac:   0.5,
		Seed:         1,
	}
}

// ReliableAttempt records one transmission attempt of the ladder.
type ReliableAttempt struct {
	// Rung is the ladder step this attempt belongs to.
	Rung Rung
	// Backoff is the delay waited before this attempt (0 for the first).
	Backoff float64
	// Broadcasts is the transmission cost of this attempt.
	Broadcasts int
	// Delivered reports end-to-end success of this attempt.
	Delivered bool
	// DeliveryTime is the in-run simulation instant of delivery (0 when
	// the attempt did not deliver). A plain broadcast wave delivers within
	// milliseconds, but a flood overheard by a mobile carrier can deliver
	// long after — the physical carry time shows up here.
	DeliveryTime float64
	// Err records a planning failure ("" when the attempt transmitted).
	Err string
}

// ReliableResult is the outcome of a SendReliable ladder run.
type ReliableResult struct {
	// Delivered reports whether any rung succeeded.
	Delivered bool
	// Rung is the rung that delivered, or RungExhausted.
	Rung Rung
	// Attempts lists every attempt in order.
	Attempts []ReliableAttempt
	// TotalBroadcasts sums transmissions across all attempts — the price
	// of reliability, comparable against a single Send's Broadcasts.
	TotalBroadcasts int
	// TotalBackoff sums the backoff delays incurred before success (or
	// exhaustion).
	TotalBackoff float64
	// FirstAttempt keeps the plain-send outcome for overhead comparisons.
	FirstAttempt SendResult
}

// Overhead returns TotalBroadcasts relative to the ideal unicast minimum
// recorded by the first attempt, or 0 if unavailable.
func (r ReliableResult) Overhead() float64 {
	if r.FirstAttempt.IdealTransmissions <= 0 {
		return 0
	}
	return float64(r.TotalBroadcasts) / float64(r.FirstAttempt.IdealTransmissions)
}

// SendReliable wraps Send with end-to-end delivery confirmation and a
// deterministic escalation ladder: retransmit the same route, re-plan with
// a widened conduit, k-disjoint multipath, and finally a TTL-scoped flood.
// Between attempts it waits (in simulated time accounting) an
// exponentially-growing, jittered backoff. The run stops at the first rung
// that delivers and records which rung won plus the total overhead.
//
// With ReliableConfig.Health set the ladder is self-healing: planning
// routes around buildings the map suspects dead, and every outcome —
// per-route success and failure, full-ladder exhaustion — feeds back into
// the map for the next send.
func (n *Network) SendReliable(src, dst int, payload []byte, simCfg sim.Config, rcfg ReliableConfig) (ReliableResult, error) {
	if src < 0 || src >= n.City.NumBuildings() || dst < 0 || dst >= n.City.NumBuildings() {
		return ReliableResult{}, fmt.Errorf("core: building out of range (%d, %d of %d)",
			src, dst, n.City.NumBuildings())
	}
	if err := rcfg.Validate(); err != nil {
		return ReliableResult{}, err
	}
	d := DefaultReliableConfig()
	if rcfg.MultipathK <= 0 {
		rcfg.MultipathK = d.MultipathK
	}
	if rcfg.BackoffBase <= 0 {
		rcfg.BackoffBase = d.BackoffBase
	}
	if rcfg.BackoffMax <= 0 {
		rcfg.BackoffMax = d.BackoffMax
	}
	if rcfg.BackoffMax < rcfg.BackoffBase {
		// Only reachable when the max was defaulted under an explicit
		// base; an explicit inversion already failed Validate.
		rcfg.BackoffMax = rcfg.BackoffBase
	}
	hm := rcfg.Health
	var vp buildinggraph.VertexPenalty
	if hm != nil {
		if f := hm.PenaltyFunc(); f != nil {
			vp = f
		}
	}
	rng := rand.New(rand.NewSource(rcfg.Seed))
	out := ReliableResult{Rung: RungExhausted}
	// maxAllows gates each rung under MaxRung (0 = full ladder). Skipped
	// rungs record no attempt and draw no backoff — the rng stream is
	// reproducible for a fixed config, which is all determinism needs.
	maxAllows := func(r Rung) bool {
		return rcfg.MaxRung == 0 || r <= rcfg.MaxRung
	}

	// backoff computes the jittered delay before attempt i (0-based; the
	// very first transmission waits nothing). Drawn unconditionally so the
	// rng stream — and thus every later jitter — is reproducible
	// regardless of which rungs run.
	attemptIdx := 0
	backoff := func() float64 {
		u := rng.Float64()
		if attemptIdx == 0 {
			attemptIdx++
			return 0
		}
		b := rcfg.BackoffBase * math.Pow(2, float64(attemptIdx-1))
		if b > rcfg.BackoffMax {
			b = rcfg.BackoffMax
		}
		attemptIdx++
		return b * (1 - rcfg.JitterFrac/2 + u*rcfg.JitterFrac)
	}
	// attemptSim derives a distinct deterministic simulator seed per
	// attempt so retries see fresh loss and jitter realizations.
	attemptSim := func(i int) sim.Config {
		c := simCfg
		c.Seed = simCfg.Seed + int64(i)*0x9e3779b9
		if rcfg.Evidence && hm != nil {
			// The mismatch audit needs per-AP reception evidence.
			c.RecordTranscript = true
		}
		return c
	}
	record := func(rung Rung, wait float64, broadcasts int, delivered bool, deliveryTime float64, errStr string) {
		out.Attempts = append(out.Attempts, ReliableAttempt{
			Rung: rung, Backoff: wait, Broadcasts: broadcasts,
			Delivered: delivered, DeliveryTime: deliveryTime, Err: errStr,
		})
		out.TotalBroadcasts += broadcasts
		out.TotalBackoff += wait
		if hm != nil {
			// The map's suspicion decays in the same sim time the ladder
			// spends waiting.
			hm.Advance(wait)
		}
		if delivered && !out.Delivered {
			out.Delivered = true
			out.Rung = rung
			if hm != nil {
				hm.ObserveDelivered(dst)
			}
		}
	}

	// Rung 0 + 1: the direct send, then same-route retransmissions. Under
	// a health map the "direct" route is already damage-aware: Dijkstra
	// pays the suspicion penalty through suspect buildings and detours.
	route, planErr := n.PlanRoutePenalized(src, dst, vp)
	var path []int
	if planErr == nil {
		path, _ = n.BuildingPathPenalized(src, dst, vp)
		retries := rcfg.Retries
		if !maxAllows(RungRetry) {
			retries = 0
		}
		for try := 0; try <= retries; try++ {
			rung := RungDirect
			if try > 0 {
				rung = RungRetry
			}
			wait := backoff()
			pkt, err := n.NewPacket(route, payload)
			if err != nil {
				return out, err
			}
			res, err := n.Engine().Run(pkt, attemptSim(len(out.Attempts)))
			if err != nil {
				return out, err
			}
			if try == 0 {
				out.FirstAttempt = SendResult{Route: route, Packet: pkt, Sim: res, IdealTransmissions: -1}
				if ideal, err := n.Mesh.MinTransmissions(src, dst); err == nil {
					out.FirstAttempt.IdealTransmissions = ideal
				}
			}
			record(rung, wait, res.Broadcasts, res.Delivered, res.DeliveryTime, "")
			// Feed back the uncompressed path: conduit compression strips
			// the interior buildings a straight corridor traverses, and
			// those are exactly where the evidence is.
			n.observeHealth(hm, path, res.Delivered)
			if res.Delivered {
				return out, nil
			}
			if rcfg.Evidence {
				n.observeEvidence(hm, pkt, res, src, dst)
			}
		}
	} else {
		record(RungDirect, backoff(), 0, false, 0, planErr.Error())
	}

	// Rung 2: widen the conduit, recruiting rebroadcasters around the
	// failed corridor.
	widens := rcfg.WidenFactors
	if widens == nil {
		widens = d.WidenFactors
	}
	if planErr == nil && len(path) > 0 && maxAllows(RungWiden) {
		for _, f := range widens {
			wait := backoff()
			wide, err := conduit.Compress(n.City, path, n.Cfg.ConduitWidth*f)
			if err != nil {
				record(RungWiden, wait, 0, false, 0, err.Error())
				continue
			}
			pkt, err := n.NewPacket(wide, payload)
			if err != nil {
				record(RungWiden, wait, 0, false, 0, err.Error())
				continue
			}
			res, err := n.Engine().Run(pkt, attemptSim(len(out.Attempts)))
			if err != nil {
				return out, err
			}
			record(RungWiden, wait, res.Broadcasts, res.Delivered, res.DeliveryTime, "")
			n.observeHealth(hm, path, res.Delivered)
			if res.Delivered {
				return out, nil
			}
			if rcfg.Evidence {
				n.observeEvidence(hm, pkt, res, src, dst)
			}
		}
	}

	// Rung 3: k spatially diverse routes (damage-aware under a health map,
	// so the diversity penalties compose with the suspicion penalties).
	if maxAllows(RungMultipath) {
		wait := backoff()
		mp, err := n.MultipathSendPenalized(src, dst, payload, rcfg.MultipathK, attemptSim(len(out.Attempts)), vp)
		if err != nil {
			record(RungMultipath, wait, 0, false, 0, err.Error())
		} else {
			mpTime := 0.0
			for _, res := range mp.Results {
				if res.Delivered && (mpTime == 0 || res.DeliveryTime < mpTime) {
					mpTime = res.DeliveryTime
				}
			}
			record(RungMultipath, wait, mp.TotalBroadcasts, mp.Delivered, mpTime, "")
			// Feed back each copy's fate individually: the route that
			// delivered is healthy evidence even when another copy died.
			for i, res := range mp.Results {
				if i < len(mp.Paths) {
					n.observeHealth(hm, mp.Paths[i], res.Delivered)
				}
			}
			if mp.Delivered {
				return out, nil
			}
		}
	}

	// Rung 4: scoped flood. The packet carries only {src, dst} waypoints
	// (no conduit constrains forwarding under the flood policy) and a TTL
	// bounding the blast radius to a multiple of the predicted route
	// length when one exists.
	if maxAllows(RungFlood) {
		wait := backoff()
		ttl := rcfg.FloodTTL
		if ttl == 0 {
			if len(path) > 0 {
				scope := 4*len(path) + 8
				if scope < int(n.Cfg.TTL) {
					ttl = uint8(scope)
				} else {
					ttl = n.Cfg.TTL
				}
			} else {
				ttl = n.Cfg.TTL
			}
		}
		seq := n.msgSeq.Add(1)
		pkt := &packet.Packet{
			Header: packet.Header{
				TTL:       ttl,
				MsgID:     msgID(n.Cfg.APSeed, seq),
				Waypoints: []uint32{uint32(src), uint32(dst)},
			},
			Payload: payload,
		}
		res, err := n.Engine().RunPolicy(routing.Flood{}, pkt, attemptSim(len(out.Attempts)))
		if err != nil {
			return out, err
		}
		record(RungFlood, wait, res.Broadcasts, res.Delivered, res.DeliveryTime, "")
	}
	if hm != nil && !out.Delivered {
		// Even the scoped flood failed: the destination is a partition
		// candidate (see health.Map.Partitioned and SendEventually).
		hm.ObserveExhausted(dst)
	}
	return out, nil
}

// observeHealth feeds one route's attempt outcome into the health map. Only
// the route's *interior* waypoints carry evidence — the sender is alive by
// definition and the destination's reachability is tracked separately by
// partition classification. On failure, half of FailBump also spreads to
// the graph neighbors of each interior waypoint: disaster damage is
// spatially correlated (the disk and flood injectors kill regions, not
// points), so a failed corridor implicates its surroundings.
// observeEvidence is the ReliableConfig.Evidence audit: after a failed
// conduit attempt, accuse every in-conduit AP that received the frame with
// TTL to spare yet never forwarded it. Out-of-conduit silence is correct
// behavior and endpoint buildings are excluded (the source always
// transmits; the destination's state is partition classification's job), so
// what remains is exactly the grayhole/blackhole signature. Accusations are
// per building (deduplicated, sorted for determinism) and carry the
// MismatchBump weight.
func (n *Network) observeEvidence(hm *health.Map, pkt *packet.Packet, res sim.Result, src, dst int) {
	if hm == nil || res.Delivered || len(res.Transcript) == 0 {
		return
	}
	region := fwd.BuildRegion(n.City, &pkt.Header)
	if region == nil {
		return
	}
	accused := make(map[int]bool)
	for ap := range res.Transcript {
		tr := &res.Transcript[ap]
		if !tr.Received || tr.Forwarded {
			continue
		}
		if tr.Hops >= int(pkt.Header.TTL)-1 {
			continue // the wave legitimately died of TTL here
		}
		b := n.Mesh.APs[ap].Building
		if b < 0 || b == src || b == dst {
			continue
		}
		self := fwd.Self{Pos: n.Mesh.APs[ap].Pos, Building: b}
		if !region.Contains(fwd.TestPoint(n.City, self)) {
			continue
		}
		accused[b] = true
	}
	if len(accused) == 0 {
		return
	}
	bs := make([]int, 0, len(accused))
	for b := range accused {
		bs = append(bs, b)
	}
	sort.Ints(bs)
	hm.ObserveMismatch(bs)
}

func (n *Network) observeHealth(hm *health.Map, waypoints []int, delivered bool) {
	if hm == nil || len(waypoints) < 3 {
		return
	}
	interior := waypoints[1 : len(waypoints)-1]
	if delivered {
		hm.ObserveSuccess(interior)
		return
	}
	hm.ObserveFailure(interior)
	spread := hm.Config().FailBump / 2
	for _, w := range interior {
		n.Graph.Neighbors(w, func(nb int, _ float64) {
			hm.AddSuspicion(nb, spread)
		})
	}
}
