package core

import (
	"math"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/geo"
	"citymesh/internal/health"
	"citymesh/internal/osm"
	"citymesh/internal/sim"
)

// gridCity builds square buildings of the given half-size at the points.
func gridCity(half float64, pts ...geo.Point) *osm.City {
	city := &osm.City{Name: "grid"}
	for i, p := range pts {
		fp := geo.Polygon{
			p.Add(geo.Pt(-half, -half)), p.Add(geo.Pt(half, -half)),
			p.Add(geo.Pt(half, half)), p.Add(geo.Pt(-half, half)),
		}
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: fp, Centroid: fp.Centroid(),
		})
	}
	city.Bounds = geo.RectFromPoints(pts...).Pad(half)
	return city
}

// corridorNetwork builds two parallel building corridors from x=0 to
// x=xEnd: row A at y=0 (the shortest route) and row B at y=sep, joined by
// vertical connectors at both ends. Returns the network plus the building
// index at rowA's midpoint.
func corridorNetwork(t testing.TB, xEnd, sep float64) (*Network, int, int, int) {
	t.Helper()
	var pts []geo.Point
	mid := -1
	srcIdx, dstIdx := -1, -1
	add := func(p geo.Point) int {
		pts = append(pts, p)
		return len(pts) - 1
	}
	for x := 0.0; x <= xEnd; x += 40 {
		i := add(geo.Pt(x, 0))
		if x == 0 {
			srcIdx = i
		}
		if math.Abs(x-xEnd/2) < 20 && mid < 0 {
			mid = i
		}
		if x+40 > xEnd {
			dstIdx = i
		}
	}
	for x := 0.0; x <= xEnd; x += 40 {
		add(geo.Pt(x, sep))
	}
	for y := 40.0; y < sep; y += 40 {
		add(geo.Pt(0, y))
		add(geo.Pt(xEnd-math.Mod(xEnd, 40), y))
	}
	city := gridCity(5, pts...)
	cfg := DefaultConfig()
	cfg.APDensity = 1e-12 // exactly one AP per building
	n, err := NewNetwork(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, srcIdx, dstIdx, mid
}

func TestReliableDirectWinsOnHealthyMesh(t *testing.T) {
	n, src, dst, _ := corridorNetwork(t, 400, 300)
	res, err := n.SendReliable(src, dst, nil, sim.DefaultConfig(), DefaultReliableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Rung != RungDirect {
		t.Fatalf("healthy mesh: rung = %v delivered = %v", res.Rung, res.Delivered)
	}
	if len(res.Attempts) != 1 {
		t.Errorf("ladder must stop at first success, got %d attempts", len(res.Attempts))
	}
	if res.TotalBackoff != 0 {
		t.Errorf("first attempt must not back off, got %v", res.TotalBackoff)
	}
	if res.TotalBroadcasts != res.Attempts[0].Broadcasts {
		t.Error("TotalBroadcasts mismatch")
	}
}

func TestReliableEscalatesToMultipath(t *testing.T) {
	// Kill the midpoint of the short corridor. Direct, retry and widened
	// conduits (up to 4 x 50 m lateral) all fail — the alternate corridor
	// at y=300 is beyond them — but a diverse path via row B delivers.
	n, src, dst, mid := corridorNetwork(t, 400, 300)
	simCfg := sim.DefaultConfig()
	simCfg.FailedAPs = map[int]bool{}
	for _, ap := range n.Mesh.APsInBuilding(mid) {
		simCfg.FailedAPs[int(ap)] = true
	}
	res, err := n.SendReliable(src, dst, nil, simCfg, DefaultReliableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("multipath should route around the dead midpoint: %+v", res.Attempts)
	}
	if res.Rung != RungMultipath {
		t.Fatalf("rung = %v, want multipath (attempts %+v)", res.Rung, res.Attempts)
	}
	// The ladder must have climbed in order: direct, retries, widens, then
	// multipath, and stopped there (no flood).
	wantOrder := []Rung{RungDirect, RungRetry, RungRetry, RungWiden, RungWiden, RungMultipath}
	if len(res.Attempts) != len(wantOrder) {
		t.Fatalf("attempts = %+v, want rung order %v", res.Attempts, wantOrder)
	}
	for i, a := range res.Attempts {
		if a.Rung != wantOrder[i] {
			t.Fatalf("attempt %d rung = %v, want %v", i, a.Rung, wantOrder[i])
		}
		if i > 0 && a.Backoff <= 0 {
			t.Errorf("attempt %d should have backed off", i)
		}
		if a.Delivered != (i == len(wantOrder)-1) {
			t.Errorf("attempt %d delivered = %v", i, a.Delivered)
		}
	}
	// Backoff grows (modulo +-25%% jitter, comparing attempt 1 vs 3).
	if res.Attempts[3].Backoff <= res.Attempts[1].Backoff {
		t.Errorf("backoff not growing: %v", res.Attempts)
	}
}

func TestReliableFloodRescuesMispredictedChain(t *testing.T) {
	// Buildings 47 m apart with 4 m footprints: the 45 m gap exceeds the
	// 42.5 m prediction threshold, so the building graph sees no path —
	// but APs (within +-2 m of centroids) are under the 50 m radio range.
	// Only the scoped flood, which ignores route planning, can deliver.
	var pts []geo.Point
	for i := 0; i < 6; i++ {
		pts = append(pts, geo.Pt(float64(i)*47, 0))
	}
	city := gridCity(2, pts...)
	cfg := DefaultConfig()
	cfg.APDensity = 1e-12
	n, err := NewNetwork(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.PlanRoute(0, 5); err == nil {
		t.Fatal("test premise broken: route should be unplannable")
	}
	res, err := n.SendReliable(0, 5, []byte("mayday"), sim.DefaultConfig(), DefaultReliableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Rung != RungFlood {
		t.Fatalf("rung = %v delivered = %v (attempts %+v)", res.Rung, res.Delivered, res.Attempts)
	}
	// The unroutable rungs must be recorded as planning failures, not
	// silently skipped.
	if res.Attempts[0].Err == "" {
		t.Error("direct attempt should record the planning error")
	}
}

func TestReliableExhaustedWhenPartitioned(t *testing.T) {
	// Two buildings 5 km apart: nothing can deliver.
	city := gridCity(5, geo.Pt(0, 0), geo.Pt(5000, 0))
	cfg := DefaultConfig()
	cfg.APDensity = 1e-12
	n, err := NewNetwork(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.SendReliable(0, 1, nil, sim.DefaultConfig(), DefaultReliableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered || res.Rung != RungExhausted {
		t.Fatalf("partitioned pair: %+v", res)
	}
	// The flood rung must still have been attempted.
	last := res.Attempts[len(res.Attempts)-1]
	if last.Rung != RungFlood {
		t.Errorf("last attempt = %v, want flood", last.Rung)
	}
}

func TestReliableBackoffJitteredButReproducible(t *testing.T) {
	n, src, dst, mid := corridorNetwork(t, 400, 300)
	simCfg := sim.DefaultConfig()
	simCfg.FailedAPs = map[int]bool{}
	for _, ap := range n.Mesh.APsInBuilding(mid) {
		simCfg.FailedAPs[int(ap)] = true
	}
	run := func(seed int64) ReliableResult {
		rcfg := DefaultReliableConfig()
		rcfg.Seed = seed
		res, err := n.SendReliable(src, dst, nil, simCfg, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if len(a.Attempts) != len(b.Attempts) {
		t.Fatal("same seed produced different attempt counts")
	}
	for i := range a.Attempts {
		if a.Attempts[i].Backoff != b.Attempts[i].Backoff {
			t.Fatalf("attempt %d backoff %v != %v under the same seed",
				i, a.Attempts[i].Backoff, b.Attempts[i].Backoff)
		}
	}
	c := run(8)
	differs := len(c.Attempts) != len(a.Attempts)
	for i := 0; !differs && i < len(a.Attempts); i++ {
		differs = a.Attempts[i].Backoff != c.Attempts[i].Backoff
	}
	if !differs {
		t.Error("different seeds produced identical jitter — backoff not jittered")
	}
	// Jitter stays within the configured +-25% envelope of the exponential
	// schedule.
	rcfg := DefaultReliableConfig()
	for i, att := range a.Attempts {
		if i == 0 {
			continue
		}
		base := rcfg.BackoffBase * math.Pow(2, float64(i-1))
		if base > rcfg.BackoffMax {
			base = rcfg.BackoffMax
		}
		lo, hi := base*(1-rcfg.JitterFrac/2), base*(1+rcfg.JitterFrac/2)
		if att.Backoff < lo-1e-12 || att.Backoff > hi+1e-12 {
			t.Errorf("attempt %d backoff %v outside [%v, %v]", i, att.Backoff, lo, hi)
		}
	}
}

func TestReliableBeatsPlainSendUnderUniformFailure(t *testing.T) {
	// The acceptance scenario in miniature: on a downtown-style grid with
	// 30% of APs dead, SendReliable must deliver strictly more pairs than
	// plain Send.
	spec, ok := citygen.Preset("gridtown")
	if !ok {
		t.Fatal("no gridtown preset")
	}
	spec.Width, spec.Height = 700, 700
	spec.DowntownRect = geo.Rect{Min: geo.Pt(100, 100), Max: geo.Pt(600, 600)}
	n, err := FromSpec(spec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Kill 30% of APs uniformly (deterministic hash, like the ablations).
	failed := make(map[int]bool)
	span := float64(uint64(1) << 32)
	threshold := uint64(0.30 * span)
	for i := 0; i < n.Mesh.NumAPs(); i++ {
		x := uint64(i)*0x9e3779b97f4a7c15 + 99
		x ^= x >> 29
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 32
		if x&0xffffffff < threshold {
			failed[i] = true
		}
	}
	simCfg := sim.DefaultConfig()
	simCfg.FailedAPs = failed

	plain, reliable := 0, 0
	pairs := 0
	sample, err := n.RandomPairs(3, 120)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sample {
		if !n.Reachable(p[0], p[1]) {
			continue
		}
		pairs++
		if res, err := n.Send(p[0], p[1], nil, simCfg); err == nil && res.Sim.Delivered {
			plain++
		}
		rr, err := n.SendReliable(p[0], p[1], nil, simCfg, DefaultReliableConfig())
		if err == nil && rr.Delivered {
			reliable++
		}
		if pairs >= 25 {
			break
		}
	}
	if pairs < 10 {
		t.Skipf("only %d reachable pairs", pairs)
	}
	t.Logf("pairs=%d plain=%d reliable=%d", pairs, plain, reliable)
	if reliable <= plain {
		t.Errorf("SendReliable (%d/%d) must beat plain Send (%d/%d) at 30%% failure",
			reliable, pairs, plain, pairs)
	}
}

// TestReliableHealthMapLearnsAndReroutes is the self-healing loop end to
// end: with the corridor's midpoint dead, the first ladder run pays for the
// discovery (escalating past the broken direct route), feeds the failure
// into the health map, and the *second* send's direct route detours around
// the suspect region — delivering at RungDirect for strictly fewer
// broadcasts.
func TestReliableHealthMapLearnsAndReroutes(t *testing.T) {
	n, src, dst, mid := corridorNetwork(t, 400, 300)
	simCfg := sim.DefaultConfig()
	simCfg.FailedAPs = map[int]bool{}
	for _, ap := range n.Mesh.APsInBuilding(mid) {
		simCfg.FailedAPs[int(ap)] = true
	}
	hm := health.New(health.DefaultConfig())
	rcfg := DefaultReliableConfig()
	rcfg.Health = hm

	first, err := n.SendReliable(src, dst, nil, simCfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Delivered || first.Rung == RungDirect {
		t.Fatalf("first send should deliver via an escalated rung, got %+v", first)
	}
	if hm.Suspicion(mid) <= 0 {
		t.Fatalf("failed corridor midpoint %d has no suspicion", mid)
	}

	second, err := n.SendReliable(src, dst, nil, simCfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Delivered || second.Rung != RungDirect {
		t.Fatalf("second send should reroute and deliver directly, got rung %v", second.Rung)
	}
	if second.TotalBroadcasts >= first.TotalBroadcasts {
		t.Errorf("learned route costs %d broadcasts, first discovery cost %d — no saving",
			second.TotalBroadcasts, first.TotalBroadcasts)
	}
	// The learned detour actually avoids the suspect midpoint.
	path, err := n.BuildingPathPenalized(src, dst, hm.PenaltyFunc())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range path {
		if b == mid {
			t.Fatalf("penalized path %v still crosses dead midpoint %d", path, mid)
		}
	}
}

// TestReliableHealthSuspicionDecays: with no fresh failures the suspicion
// decays toward zero as the map's clock advances, so a healed region is
// eventually trusted again.
func TestReliableHealthSuspicionDecays(t *testing.T) {
	hm := health.New(health.DefaultConfig())
	hm.ObserveFailure([]int{7})
	before := hm.Suspicion(7)
	if before <= 0 {
		t.Fatal("no suspicion recorded")
	}
	hm.Advance(10 * hm.Config().DecayTau)
	if after := hm.Suspicion(7); after > before/1000 {
		t.Errorf("suspicion %v barely decayed from %v after 10 taus", after, before)
	}
}
