// Package core is CityMesh's top-level API. It wires the substrates
// together: parse or generate a city map, build the building graph
// (map-predicted connectivity), realize the AP mesh (simulated ground
// truth), plan and compress building routes, and send packets through the
// event simulator under the conduit policy.
//
// Downstream users interact with the root citymesh package, which re-exports
// these types.
package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"

	"citymesh/internal/buildinggraph"
	"citymesh/internal/citygen"
	"citymesh/internal/conduit"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/postbox"
	"citymesh/internal/routing"
	"citymesh/internal/sim"
)

// Config collects the tunable parameters of a CityMesh deployment. The
// defaults reproduce the paper's evaluation settings.
type Config struct {
	// TransmissionRange is the symmetric AP-to-AP range cutoff in meters.
	TransmissionRange float64
	// APDensity is APs per square meter of building footprint.
	APDensity float64
	// APSeed drives deterministic AP placement.
	APSeed int64
	// ConduitWidth is the route compression parameter W in meters.
	ConduitWidth float64
	// WeightExponent is the building-graph edge weight exponent (3 in the
	// paper).
	WeightExponent float64
	// PredictGapFactor scales TransmissionRange into the building-graph
	// edge threshold: two buildings are predicted connected when their
	// footprint gap is at most PredictGapFactor * TransmissionRange. The
	// paper predicts edges "likely to exist" given range and density; the
	// slightly conservative 0.85 default keeps mispredicted hops rare
	// without disconnecting the graph on pairs the mesh can serve.
	PredictGapFactor float64
	// TTL is the packet TTL for sends.
	TTL uint8
	// MinBuildingArea filters degenerate footprints during OSM extraction.
	MinBuildingArea float64
}

// DefaultConfig matches §4: 50 m range, 1 AP / 200 m², W = 50 m, cubed
// weights.
func DefaultConfig() Config {
	return Config{
		TransmissionRange: 50,
		APDensity:         1.0 / 200.0,
		APSeed:            1,
		ConduitWidth:      conduit.DefaultWidth,
		WeightExponent:    3,
		PredictGapFactor:  0.85,
		TTL:               packet.DefaultTTL,
		MinBuildingArea:   20,
	}
}

// Network is a fully constructed CityMesh deployment over one city.
type Network struct {
	City  *osm.City
	Graph *buildinggraph.Graph
	Mesh  *mesh.Mesh
	Cfg   Config

	// msgSeq is atomic so concurrent sends over one Network mint unique
	// message ids without a race. MsgID values never influence simulation
	// outcomes (the RNG comes from sim.Config.Seed; policies only need ids
	// to be distinct), so allocation order doesn't affect determinism.
	msgSeq atomic.Uint64
	// parked holds messages awaiting mesh healing for partitioned
	// destinations (see SendEventually); lazily created by ParkedStore.
	parkedOnce sync.Once
	parked     *postbox.Store
	// engine is the shared per-network simulation engine (see Engine);
	// lazily built so networks that never simulate pay nothing.
	engineOnce sync.Once
	engine     *sim.Engine
}

// NewNetwork builds the building graph and AP mesh for an already-extracted
// city.
func NewNetwork(city *osm.City, cfg Config) (*Network, error) {
	if city == nil {
		return nil, fmt.Errorf("core: nil city")
	}
	if city.NumBuildings() == 0 {
		return nil, fmt.Errorf("core: city %q has no buildings", city.Name)
	}
	d := DefaultConfig()
	if cfg.TransmissionRange <= 0 {
		cfg.TransmissionRange = d.TransmissionRange
	}
	if cfg.APDensity <= 0 {
		cfg.APDensity = d.APDensity
	}
	if cfg.ConduitWidth <= 0 {
		cfg.ConduitWidth = d.ConduitWidth
	}
	if cfg.WeightExponent == 0 {
		cfg.WeightExponent = d.WeightExponent
	}
	if cfg.TTL == 0 {
		cfg.TTL = d.TTL
	}
	if cfg.PredictGapFactor <= 0 || cfg.PredictGapFactor > 1 {
		cfg.PredictGapFactor = d.PredictGapFactor
	}
	g := buildinggraph.Build(city, buildinggraph.Config{
		MaxGap:         cfg.PredictGapFactor * cfg.TransmissionRange,
		WeightExponent: cfg.WeightExponent,
		MinWeight:      1,
	})
	m := mesh.Place(city, mesh.Config{
		Density:        cfg.APDensity,
		Range:          cfg.TransmissionRange,
		Seed:           cfg.APSeed,
		MinPerBuilding: 1,
	})
	return &Network{City: city, Graph: g, Mesh: m, Cfg: cfg}, nil
}

// FromOSM parses an OSM XML document and builds a network from it — the
// production path for a real map extract.
func FromOSM(r io.Reader, name string, cfg Config) (*Network, error) {
	doc, err := osm.Parse(r)
	if err != nil {
		return nil, err
	}
	minArea := cfg.MinBuildingArea
	if minArea <= 0 {
		minArea = DefaultConfig().MinBuildingArea
	}
	return NewNetwork(osm.ExtractCity(name, doc, minArea), cfg)
}

// FromPreset generates one of the built-in synthetic cities and builds a
// network from it.
func FromPreset(name string, cfg Config) (*Network, error) {
	spec, ok := citygen.Preset(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown preset %q (have %v)", name, citygen.PresetNames())
	}
	return FromSpec(spec, cfg)
}

// FromSpec generates a synthetic city from an explicit spec.
func FromSpec(spec citygen.Spec, cfg Config) (*Network, error) {
	plan, err := citygen.Generate(spec)
	if err != nil {
		return nil, err
	}
	return NewNetwork(PlanToCity(plan), cfg)
}

// PlanToCity converts a generated plan directly into a planar city without
// the OSM XML round trip (which Plan.City performs). Generation benchmarks
// and tests use this fast path.
func PlanToCity(p *citygen.Plan) *osm.City {
	city := &osm.City{Name: p.Spec.Name, Bounds: p.Bounds}
	for i, b := range p.Buildings {
		fp := b.Footprint
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: fp, Centroid: fp.Centroid(), Levels: b.Levels,
		})
	}
	for _, wpg := range p.Water {
		city.Water = append(city.Water, &osm.Feature{Kind: osm.KindWater, Footprint: wpg, Centroid: wpg.Centroid()})
	}
	for _, pg := range p.Parks {
		city.Parks = append(city.Parks, &osm.Feature{Kind: osm.KindPark, Footprint: pg, Centroid: pg.Centroid()})
	}
	for _, pg := range p.Highways {
		city.Highways = append(city.Highways, &osm.Feature{Kind: osm.KindHighway, Footprint: pg, Centroid: pg.Centroid()})
	}
	return city
}

// PlanRoute computes the cubed-weight shortest building route from src to
// dst and compresses it into conduit waypoints (§3 step 2).
func (n *Network) PlanRoute(src, dst int) (conduit.Route, error) {
	return n.PlanRoutePenalized(src, dst, nil)
}

// PlanRoutePenalized is PlanRoute under per-building cost multipliers —
// damage-aware planning: with a health.Map's penalty function the route
// detours around suspected-dead regions. A nil vp is identical to
// PlanRoute.
func (n *Network) PlanRoutePenalized(src, dst int, vp buildinggraph.VertexPenalty) (conduit.Route, error) {
	path, _, err := n.Graph.ShortestPathPenalized(src, dst, vp)
	if err != nil {
		return conduit.Route{}, err
	}
	return conduit.Compress(n.City, path, n.Cfg.ConduitWidth)
}

// BuildingPath returns the uncompressed building route (for rendering).
func (n *Network) BuildingPath(src, dst int) ([]int, error) {
	path, _, err := n.Graph.ShortestPath(src, dst)
	return path, err
}

// BuildingPathPenalized is BuildingPath under per-building cost
// multipliers (see PlanRoutePenalized).
func (n *Network) BuildingPathPenalized(src, dst int, vp buildinggraph.VertexPenalty) ([]int, error) {
	path, _, err := n.Graph.ShortestPathPenalized(src, dst, vp)
	return path, err
}

// NewPacket wraps a compressed route and payload into a packet with a fresh
// message ID.
func (n *Network) NewPacket(r conduit.Route, payload []byte) (*packet.Packet, error) {
	if len(r.Waypoints) == 0 {
		return nil, fmt.Errorf("core: empty route")
	}
	wps := make([]uint32, len(r.Waypoints))
	for i, w := range r.Waypoints {
		if w < 0 {
			return nil, fmt.Errorf("core: negative waypoint %d", w)
		}
		wps[i] = uint32(w)
	}
	seq := n.msgSeq.Add(1)
	width := uint8(0)
	if r.Width > 0 && r.Width < 256 {
		width = uint8(r.Width)
	}
	return &packet.Packet{
		Header: packet.Header{
			TTL:       n.Cfg.TTL,
			MsgID:     msgID(n.Cfg.APSeed, seq),
			Width:     width,
			Waypoints: wps,
		},
		Payload: payload,
	}, nil
}

// msgID derives a well-spread deterministic message id.
func msgID(seed int64, seq uint64) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + seq
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SendResult combines the routing plan and the simulation outcome of one
// end-to-end send.
type SendResult struct {
	Route  conduit.Route
	Packet *packet.Packet
	Sim    sim.Result
	// IdealTransmissions is the BFS minimum on the realized AP graph
	// (overhead denominator); -1 when the pair is mesh-unreachable.
	IdealTransmissions int
}

// Overhead returns the transmission overhead versus the ideal unicast
// route, or 0 if unavailable.
func (s SendResult) Overhead() float64 {
	if s.IdealTransmissions <= 0 {
		return 0
	}
	return s.Sim.Overhead(s.IdealTransmissions)
}

// Engine returns the network's shared simulation engine: one
// sim.Engine per Network, built lazily on first use, backed by one
// kernel-backed CityMesh policy. Every ladder rung, experiment sweep,
// and application send over this Network reuses it, so the per-mesh
// struct-of-arrays precomputation and pooled per-run scratch are paid
// once. Safe for concurrent use; when runs share the engine
// concurrently, per-run Result.Decisions deltas are approximate (see
// sim.DecisionCounter) while every other Result field stays exact.
func (n *Network) Engine() *sim.Engine {
	n.engineOnce.Do(func() {
		n.engine = sim.NewEngine(n.Mesh, n.City, routing.NewCityMesh())
	})
	return n.engine
}

// Send plans a route from src to dst, encodes the packet, and simulates its
// propagation under the CityMesh conduit policy.
func (n *Network) Send(src, dst int, payload []byte, simCfg sim.Config) (SendResult, error) {
	r, err := n.PlanRoute(src, dst)
	if err != nil {
		return SendResult{}, err
	}
	pkt, err := n.NewPacket(r, payload)
	if err != nil {
		return SendResult{}, err
	}
	res, err := n.Engine().Run(pkt, simCfg)
	if err != nil {
		return SendResult{}, err
	}
	out := SendResult{Route: r, Packet: pkt, Sim: res, IdealTransmissions: -1}
	if ideal, err := n.Mesh.MinTransmissions(src, dst); err == nil {
		out.IdealTransmissions = ideal
	}
	return out, nil
}

// Reachable reports AP-graph reachability between two buildings (Fig 6's
// reachability metric).
func (n *Network) Reachable(a, b int) bool { return n.Mesh.Reachable(a, b) }

// ErrTooFewBuildings is returned by RandomPairs when the city cannot form
// a single distinct (src, dst) pair.
var ErrTooFewBuildings = errors.New("core: city has fewer than 2 buildings")

// RandomPairs returns count distinct (src, dst) building pairs drawn
// uniformly with the given seed, matching the paper's sampling of 1000
// unique building pairs. A city with fewer than two buildings cannot form
// any pair and returns ErrTooFewBuildings instead of silently coming back
// short. When count exceeds the nb*(nb-1) distinct ordered pairs the city
// offers, the request is capped to that maximum (a documented shortfall,
// not an error); rejection sampling may fall slightly short of a
// near-exhaustive cap, never of a typical request.
func (n *Network) RandomPairs(seed int64, count int) ([][2]int, error) {
	nb := n.City.NumBuildings()
	if nb < 2 {
		return nil, fmt.Errorf("%w (have %d)", ErrTooFewBuildings, nb)
	}
	if count <= 0 {
		return nil, nil
	}
	if max := nb * (nb - 1); count > max {
		count = max
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool)
	var out [][2]int
	maxAttempts := count * 50
	for len(out) < count && maxAttempts > 0 {
		maxAttempts--
		p := [2]int{rng.Intn(nb), rng.Intn(nb)}
		if p[0] == p[1] || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out, nil
}
