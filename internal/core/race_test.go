package core

import (
	"sync"
	"testing"

	"citymesh/internal/sim"
)

// Concurrent sim.Run calls share one Network — and with it the mesh's
// lazily built adjacency, the flattened union-find, the atomic message-id
// counter, and the lazily created parked store. This stress test drives
// every one of those shared paths from many goroutines at once; it exists
// to fail under `go test -race` if any of them regresses to unsynchronized
// mutation.
func TestConcurrentSendsShareOneNetwork(t *testing.T) {
	n := smallNetwork(t, 3)
	pairs, err := n.RandomPairs(7, 16)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	results := make([][]SendResult, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i, p := range pairs {
				simCfg := sim.DefaultConfig()
				simCfg.Seed = int64(i + 1)
				// Exercise the concurrent query surface alongside the send.
				n.Reachable(p[0], p[1])
				_, _ = n.Mesh.MinTransmissions(p[0], p[1])
				res, err := n.Send(p[0], p[1], nil, simCfg)
				if err != nil {
					continue
				}
				results[g] = append(results[g], res)
				// The ladder mints packets through the same atomic counter
				// and the parked store path.
				rc := DefaultReliableConfig()
				rc.Seed = int64(i + 1)
				_, _ = n.SendReliable(p[0], p[1], nil, simCfg, rc)
			}
			n.ParkedStore() // lazy-init under contention
		}(g)
	}
	wg.Wait()

	// Same pair + same seed must give the same simulation outcome in every
	// goroutine: randomness comes from the config seed, never from shared
	// network state.
	for g := 1; g < goroutines; g++ {
		if len(results[g]) != len(results[0]) {
			t.Fatalf("goroutine %d completed %d sends, goroutine 0 completed %d",
				g, len(results[g]), len(results[0]))
		}
		for i := range results[g] {
			got, want := results[g][i].Sim, results[0][i].Sim
			if got.Delivered != want.Delivered || got.Broadcasts != want.Broadcasts ||
				got.Receptions != want.Receptions || got.DeliveryHops != want.DeliveryHops {
				t.Errorf("goroutine %d send %d diverged: %+v vs %+v", g, i, got, want)
			}
		}
	}

	// Message ids must all be distinct despite concurrent allocation.
	if got := n.msgSeq.Load(); got == 0 {
		t.Fatal("no packets were minted")
	}
}
