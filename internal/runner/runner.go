// Package runner is the deterministic parallel sweep engine behind the
// experiment harness. Every table and figure in the evaluation is a sweep
// over independent simulation tasks — one per (src, dst) pair × seed ×
// config point — and each task is a pure function of its index and shared
// read-only state. The runner executes those tasks on a worker pool sized
// by GOMAXPROCS and aggregates results strictly in task-index order, so
// the output of a parallel run is byte-identical to a serial run of the
// same sweep.
//
// Two rules keep parallel output equal to serial output:
//
//  1. Randomness derives from the task, never from the worker. TaskSeed
//     mixes the sweep seed with the task index; which goroutine happens to
//     execute a task, and in what order tasks complete, can never reach an
//     RNG stream.
//  2. Aggregation happens in task-index order. Map returns a slice indexed
//     by task, and callers fold it left-to-right — floating-point sums,
//     percentile inputs and rendered tables see the same sequence a serial
//     loop would produce.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism resolves a requested worker count: zero or negative selects
// GOMAXPROCS (all available cores), any positive value is used as given.
// This is the semantics of every `Parallelism` knob in the experiment
// configs and the -par CLI flags.
func Parallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// TaskSeed derives the deterministic RNG seed of one task from the sweep
// seed and the task index (SplitMix64 finalizer). Distinct indices map to
// well-spread seeds, so tasks see independent loss/jitter realizations,
// and the mapping depends on nothing but (sweepSeed, task) — never on
// worker identity or completion order.
func TaskSeed(sweepSeed int64, task int) int64 {
	x := uint64(sweepSeed) + (uint64(task)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Map executes n independent tasks on a pool of Parallelism(parallelism)
// workers and returns their results indexed by task. Workers pull the next
// unclaimed index from a shared counter, so the pool stays busy under
// uneven task costs, and every result lands at its own index regardless of
// completion order. A panicking task is re-panicked on the calling
// goroutine after the pool drains, matching a serial loop's behaviour.
func Map[T any](parallelism, n int, task func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	p := Parallelism(parallelism)
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			out[i] = task(i)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &r)
						}
					}()
					out[i] = task(i)
				}()
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(*r)
	}
	return out
}

// MapErr is Map for fallible tasks. Every task runs to completion; the
// returned error is the error of the lowest-indexed failing task — a
// deterministic choice under any schedule — and the result slice is still
// fully populated (failed tasks hold their zero value).
func MapErr[T any](parallelism, n int, task func(i int) (T, error)) ([]T, error) {
	type slot struct {
		v   T
		err error
	}
	slots := Map(parallelism, n, func(i int) slot {
		v, err := task(i)
		return slot{v: v, err: err}
	})
	out := make([]T, n)
	var firstErr error
	for i, s := range slots {
		out[i] = s.v
		if s.err != nil && firstErr == nil {
			firstErr = s.err
		}
	}
	return out, firstErr
}
