package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByTaskIndex(t *testing.T) {
	for _, par := range []int{1, 2, 8, 64} {
		out := Map(par, 100, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("par=%d: got %d results, want 100", par, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSerialUnderUnevenTaskCost(t *testing.T) {
	// Tasks sleep a pseudo-random amount so completion order scrambles;
	// the result slice must still be index-ordered.
	task := func(i int) string {
		d := time.Duration(rand.Intn(3)) * time.Millisecond
		time.Sleep(d)
		return fmt.Sprintf("task-%03d seed=%d", i, TaskSeed(42, i))
	}
	serial := Map(1, 40, task)
	parallel := Map(8, 40, task)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("out[%d]: serial %q != parallel %q", i, serial[i], parallel[i])
		}
	}
}

func TestMapZeroAndNegativeCounts(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("n=0: got %v, want nil", out)
	}
	if out := Map(4, -3, func(i int) int { return i }); out != nil {
		t.Fatalf("n<0: got %v, want nil", out)
	}
}

func TestMapRunsEveryTaskExactlyOnce(t *testing.T) {
	var calls [500]atomic.Int32
	Map(16, len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if got := calls[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, got)
		}
	}
}

func TestMapPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	Map(4, 20, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func TestMapErrReturnsLowestIndexedError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, par := range []int{1, 8} {
		out, err := MapErr(par, 50, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 40:
				return 0, errHigh
			default:
				return i, nil
			}
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("par=%d: err = %v, want lowest-indexed error %v", par, err, errLow)
		}
		if len(out) != 50 || out[10] != 10 {
			t.Fatalf("par=%d: result slice not fully populated: len=%d", par, len(out))
		}
	}
}

func TestMapErrNilOnSuccess(t *testing.T) {
	out, err := MapErr(8, 10, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestParallelismResolution(t *testing.T) {
	if got := Parallelism(4); got != 4 {
		t.Fatalf("Parallelism(4) = %d", got)
	}
	if got := Parallelism(0); got < 1 {
		t.Fatalf("Parallelism(0) = %d, want >= 1", got)
	}
	if got := Parallelism(-2); got != Parallelism(0) {
		t.Fatalf("Parallelism(-2) = %d, want GOMAXPROCS default", got)
	}
}

func TestTaskSeedDeterministicAndSpread(t *testing.T) {
	seen := make(map[int64]int)
	for task := 0; task < 10_000; task++ {
		s := TaskSeed(1, task)
		if s2 := TaskSeed(1, task); s2 != s {
			t.Fatalf("TaskSeed not deterministic at task %d", task)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: tasks %d and %d both map to %d", prev, task, s)
		}
		seen[s] = task
	}
	// Different sweep seeds must not share per-task streams.
	if TaskSeed(1, 0) == TaskSeed(2, 0) {
		t.Fatal("TaskSeed ignores the sweep seed")
	}
}
