package trafficgen

import (
	"reflect"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/geo"
	"citymesh/internal/session"
	"citymesh/internal/sim"
)

// testNetwork shrinks the gridtown preset to a handful of blocks with no
// districts or water, keeping each Run to a fraction of a second.
func testNetwork(t *testing.T) *core.Network {
	t.Helper()
	spec, ok := citygen.Preset("gridtown")
	if !ok {
		t.Fatal("gridtown preset missing")
	}
	spec.Width, spec.Height = 260, 260
	spec.Rivers, spec.Parks, spec.Highways = nil, nil, nil
	spec.DowntownRect, spec.CampusRect = geo.Rect{}, geo.Rect{}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func smallConfig() Config {
	return Config{
		Users: 20, APs: 4, Ticks: 16,
		FlashMultiplier: 4,
		Seed:            7,
	}
}

func TestRunDeterministic(t *testing.T) {
	n := testNetwork(t)
	a, err := Run(n, sim.DefaultConfig(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(n, sim.DefaultConfig(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs with the same seed differ:\n a=%+v\n b=%+v", a, b)
	}
}

func TestRunAccountingAndFlow(t *testing.T) {
	n := testNetwork(t)
	rep, err := Run(n, sim.DefaultConfig(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.AccountingError(); err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Delivered == 0 {
		t.Fatalf("no traffic flowed: %+v", rep)
	}
	if rep.Fetched == 0 {
		t.Fatalf("recipients never fetched anything: %+v", rep)
	}
	if rep.Residual != 0 {
		t.Fatalf("flush left %d messages queued", rep.Residual)
	}
}

func TestFlashCrowdRaisesOfferedLoad(t *testing.T) {
	n := testNetwork(t)
	quiet := smallConfig()
	quiet.FlashMultiplier = 1
	crowd := smallConfig()
	crowd.FlashMultiplier = 8
	q, err := Run(n, sim.DefaultConfig(), quiet)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(n, sim.DefaultConfig(), crowd)
	if err != nil {
		t.Fatal(err)
	}
	if c.Offered <= q.Offered {
		t.Fatalf("flash crowd did not raise offered load: quiet %d, crowd %d", q.Offered, c.Offered)
	}
}

func TestDeadNetworkChargesNetworkExhausted(t *testing.T) {
	n := testNetwork(t)
	simCfg := sim.DefaultConfig()
	simCfg.FailedAPs = map[int]bool{}
	for _, ap := range n.Mesh.APs {
		simCfg.FailedAPs[ap.ID] = true
	}
	cfg := smallConfig()
	cfg.Ticks = 8
	rep, err := Run(n, simCfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedNetworkExhausted == 0 {
		t.Fatalf("fully dead mesh produced no network-exhausted drops: %+v", rep)
	}
	// Same-AP messages still deliver locally; nothing crosses the mesh.
	if rep.Broadcasts != 0 && rep.Delivered > rep.Accepted-rep.DroppedNetworkExhausted {
		t.Fatalf("remote deliveries on a dead mesh: %+v", rep)
	}
	if err := rep.AccountingError(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionTemplateOverride(t *testing.T) {
	n := testNetwork(t)
	cfg := smallConfig()
	// A one-slot queue forces buffer-full rejections under any real load.
	cfg.Session = session.Config{QueueCap: 1, CongestedAt: 2, OverloadAt: 3}
	rep, err := Run(n, sim.DefaultConfig(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RejectedBufferFull == 0 {
		t.Fatalf("one-slot queue produced no buffer-full rejections: %+v", rep)
	}
	if err := rep.AccountingError(); err != nil {
		t.Fatal(err)
	}
}
