// Package trafficgen is a closed-loop deterministic user-traffic generator
// for the session layer. It models N users spread round-robin over a
// city's buildings, each attached to their home AP's session.Service,
// sending to random other users on a diurnal baseline rate until a
// post-disaster flash crowd multiplies the offered load (and makes senders
// bursty). The loop is closed: clients honor the AP's explicit
// backpressure, backing off for the advertised retry interval after a
// rejection and pre-solving the advertised proof-of-work difficulty when
// their device class can afford it.
//
// Everything is deterministic: one math/rand stream seeded from Config.Seed
// drives user behaviour in a fixed iteration order, per-message transport
// seeds derive from a SplitMix64 counter, and time is simulation seconds
// (ticks), so a run is a pure function of (network, sim config, Config) —
// the property the "overload" experiment's parallel sweep relies on.
package trafficgen

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"citymesh/internal/core"
	"citymesh/internal/postbox"
	"citymesh/internal/runner"
	"citymesh/internal/session"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// Config parameterizes one traffic run.
type Config struct {
	// Users is the total user population, assigned round-robin to the
	// populated buildings (default 150).
	Users int
	// APs is how many buildings host users (default 10, capped at the
	// city's building count). Concentrating the population is what makes
	// per-AP queue dynamics visible at simulation scale.
	APs int
	// Ticks is the run length in ticks (default 90); Tick is the tick
	// duration in simulation seconds (default 1).
	Ticks int
	Tick  float64
	// BaseRate is the per-user baseline send rate in msgs/sec, modulated
	// by a diurnal factor (default 0.03).
	BaseRate float64
	// FlashAtTick starts the flash crowd (default Ticks/2); from then on
	// the per-user rate is multiplied by FlashMultiplier (default 1 = no
	// crowd) and each send event becomes a burst of FlashBurst messages
	// (default 3) — people re-sending "are you ok?" repeatedly.
	FlashAtTick     int
	FlashMultiplier float64
	FlashBurst      int
	// LegacyFrac / MidFrac split the population by proof-of-work
	// capability: legacy devices solve nothing, mid devices up to
	// MidPowCap bits, the rest up to session.MaxPowBits. Defaults 0.2 /
	// 0.5 with MidPowCap 8.
	LegacyFrac float64
	MidFrac    float64
	MidPowCap  int
	// FetchEvery is the tick interval between a user's fetch+ack polls
	// (default 2).
	FetchEvery int
	// DrainBudget is messages forwarded per AP per tick (default 8).
	DrainBudget int
	// Seed drives all generator randomness.
	Seed int64
	// Session is the per-AP service template; Building and Store are set
	// per AP.
	Session session.Config
	// Reliable configures the inter-AP delivery ladder (zero = defaults).
	Reliable core.ReliableConfig
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 150
	}
	if c.APs <= 0 {
		c.APs = 10
	}
	if c.Ticks <= 0 {
		c.Ticks = 90
	}
	if c.Tick <= 0 {
		c.Tick = 1
	}
	if c.BaseRate <= 0 {
		c.BaseRate = 0.1
	}
	if c.FlashAtTick <= 0 {
		c.FlashAtTick = c.Ticks / 2
	}
	if c.FlashMultiplier <= 0 {
		c.FlashMultiplier = 1
	}
	if c.FlashBurst <= 0 {
		c.FlashBurst = 3
	}
	if c.LegacyFrac <= 0 {
		c.LegacyFrac = 0.2
	}
	if c.MidFrac <= 0 {
		c.MidFrac = 0.5
	}
	if c.MidPowCap <= 0 {
		c.MidPowCap = 8
	}
	if c.FetchEvery <= 0 {
		c.FetchEvery = 2
	}
	if c.DrainBudget <= 0 {
		c.DrainBudget = 4
	}
	// The session template defaults are tuned for AP-scale queue dynamics
	// at traffic-generator scale: a small queue so tiers move within a
	// short run, and a per-client bucket generous enough that aggregate
	// queue depth — not individual chattiness — drives the tier.
	if c.Session.QueueCap == 0 {
		c.Session.QueueCap = 32
	}
	if c.Session.SendBufCap == 0 {
		c.Session.SendBufCap = 8
	}
	if c.Session.ClientRate == 0 {
		c.Session.ClientRate = 1.5
	}
	if c.Session.ClientBurst == 0 {
		c.Session.ClientBurst = 4
	}
	return c
}

// Report aggregates one run. The per-cause counters partition every
// offered message; AccountingError checks the books.
type Report struct {
	Users   int
	Ticks   int
	Offered uint64
	// Accepted entered an AP queue; Delivered reached a postbox store.
	Accepted  uint64
	Delivered uint64

	RejectedAdmission       uint64
	RejectedRateLimit       uint64
	RejectedBufferFull      uint64
	DroppedNetworkExhausted uint64

	// Fetched counts messages recipients actually pulled from their
	// postboxes (receive-side flow).
	Fetched uint64

	// LatencyP50/P99 are accepted-and-delivered end-to-end latencies in
	// seconds: queue wait plus transport backoff.
	LatencyP50 float64
	LatencyP99 float64
	// Throughput is delivered messages per simulated second.
	Throughput float64
	// Broadcasts is the total transmission cost of inter-AP forwarding.
	Broadcasts int64
	// PeakTier is the worst admission tier any AP reached.
	PeakTier session.Tier
	// FlushTicks is how many extra ticks it took to empty the queues
	// after the run; Residual is what still remained (0 unless the flush
	// cap was hit).
	FlushTicks int
	Residual   int
}

// RejectRate is the fraction of offered messages refused at admission
// time for any cause (the "admission-rejection rate" headline metric).
func (r Report) RejectRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.RejectedAdmission+r.RejectedRateLimit+r.RejectedBufferFull) / float64(r.Offered)
}

// AccountingError verifies that every offered message is attributed to
// exactly one outcome.
func (r Report) AccountingError() error {
	sum := r.Delivered + r.DroppedNetworkExhausted + uint64(r.Residual) +
		r.RejectedAdmission + r.RejectedRateLimit + r.RejectedBufferFull
	if r.Offered != sum {
		return fmt.Errorf("trafficgen: offered %d != outcomes %d (delivered %d, exhausted %d, residual %d, adm %d, rate %d, buf %d)",
			r.Offered, sum, r.Delivered, r.DroppedNetworkExhausted, r.Residual,
			r.RejectedAdmission, r.RejectedRateLimit, r.RejectedBufferFull)
	}
	if r.Accepted != r.Delivered+r.DroppedNetworkExhausted+uint64(r.Residual) {
		return fmt.Errorf("trafficgen: accepted %d != delivered %d + exhausted %d + residual %d",
			r.Accepted, r.Delivered, r.DroppedNetworkExhausted, r.Residual)
	}
	return nil
}

type user struct {
	id      uint64
	home    int
	addr    postbox.Address
	powCap  int
	lastAck uint64
	// retryAt is the closed-loop backpressure state: no sends before it.
	retryAt float64
}

func userAddr(id uint64) postbox.Address {
	var a postbox.Address
	binary.BigEndian.PutUint64(a[:], id^0xA5A5A5A5A5A5A5A5)
	return a
}

// netForwarder drains one AP's queue onto the mesh via the escalation
// ladder, depositing delivered payloads in the destination AP's postbox
// store. Per-message seeds derive from a counter so transport randomness
// is independent of wall behaviour but fully reproducible.
type netForwarder struct {
	n      *core.Network
	simCfg sim.Config
	rcfg   core.ReliableConfig
	seed   int64
	ctr    int
	src    int
	stores map[int]*postbox.Store
}

func (f *netForwarder) Forward(m *session.Pending, now float64) session.Outcome {
	f.ctr++
	seed := runner.TaskSeed(f.seed, f.ctr)
	sc := f.simCfg
	sc.Seed = seed
	rc := f.rcfg
	rc.Seed = seed
	rr, err := f.n.SendReliable(f.src, m.Dst, m.Payload, sc, rc)
	if err != nil || !rr.Delivered {
		return session.Outcome{Broadcasts: rr.TotalBroadcasts}
	}
	if st := f.stores[m.Dst]; st != nil {
		st.Put(m.To, m.Payload, false)
	}
	return session.Outcome{Delivered: true, Latency: rr.TotalBackoff, Broadcasts: rr.TotalBroadcasts}
}

// Run executes one deterministic traffic run against an already-built
// network. simCfg carries the disaster (fault injection applied by the
// caller); its Seed is overridden per message.
func Run(n *core.Network, simCfg sim.Config, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	nb := n.City.NumBuildings()
	if nb == 0 {
		return Report{}, fmt.Errorf("trafficgen: city has no buildings")
	}
	rcfg := cfg.Reliable
	if rcfg.MultipathK == 0 && rcfg.Retries == 0 && rcfg.BackoffBase == 0 {
		rcfg = core.DefaultReliableConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Populated buildings: cfg.APs homes spread evenly across the
	// building index space.
	naps := cfg.APs
	if naps > nb {
		naps = nb
	}
	homes := make([]int, naps)
	for i := range homes {
		homes[i] = i * nb / naps
	}

	// Population: round-robin homes, device-class capability mix.
	users := make([]*user, cfg.Users)
	for i := range users {
		u := &user{id: uint64(i + 1), home: homes[i%naps]}
		u.addr = userAddr(u.id)
		switch roll := rng.Float64(); {
		case roll < cfg.LegacyFrac:
			u.powCap = 0
		case roll < cfg.LegacyFrac+cfg.MidFrac:
			u.powCap = cfg.MidPowCap
		default:
			u.powCap = session.MaxPowBits
		}
		users[i] = u
	}

	// One session service per populated building, in sorted order so every
	// per-tick iteration is deterministic.
	services := make(map[int]*session.Service)
	stores := make(map[int]*postbox.Store)
	forwarders := make(map[int]*netForwarder)
	var buildings []int
	for _, u := range users {
		if _, ok := services[u.home]; ok {
			continue
		}
		scfg := cfg.Session
		scfg.Building = u.home
		scfg.Store = nil // fresh per-AP store
		svc := session.New(scfg)
		services[u.home] = svc
		stores[u.home] = svc.Store()
		buildings = append(buildings, u.home)
	}
	sort.Ints(buildings)
	for _, b := range buildings {
		forwarders[b] = &netForwarder{
			n: n, simCfg: simCfg, rcfg: rcfg, src: b, stores: stores,
			seed: runner.TaskSeed(cfg.Seed, 1_000_000+b),
		}
	}

	// Attach everyone through the wire path.
	for _, u := range users {
		frame, err := session.EncodeMsg(session.Msg{Type: session.TAttach, ClientID: u.id, Addr: u.addr})
		if err != nil {
			return Report{}, err
		}
		services[u.home].Handle(frame, 0)
	}

	rep := Report{Users: cfg.Users, Ticks: cfg.Ticks}
	var latencies []float64

	fetchUser := func(u *user, now float64) {
		svc := services[u.home]
		ff, _ := session.EncodeMsg(session.Msg{Type: session.TFetch, ClientID: u.id, AfterSeq: u.lastAck})
		out := svc.Handle(ff, now)
		if out == nil {
			return
		}
		reply, err := session.DecodeReply(out)
		if err != nil || reply.Type != session.TDeliver || len(reply.Msgs) == 0 {
			return
		}
		last := reply.Msgs[len(reply.Msgs)-1].Seq
		af, _ := session.EncodeMsg(session.Msg{Type: session.TAck, ClientID: u.id, UpToSeq: last})
		svc.Handle(af, now)
		u.lastAck = last
	}

	drainAll := func(now float64) {
		for _, b := range buildings {
			for _, d := range services[b].Drain(now, cfg.DrainBudget, forwarders[b]) {
				if d.Delivered {
					latencies = append(latencies, d.Latency)
				}
				rep.Broadcasts += int64(d.Broadcasts)
			}
		}
	}

	for tick := 0; tick < cfg.Ticks; tick++ {
		now := float64(tick) * cfg.Tick
		flash := tick >= cfg.FlashAtTick
		// Diurnal modulation: a smooth day curve over the run.
		diurnal := 0.6 + 0.4*math.Sin(2*math.Pi*float64(tick)/float64(cfg.Ticks))
		rate := cfg.BaseRate * diurnal
		burst := 1
		if flash {
			rate *= cfg.FlashMultiplier
			burst = cfg.FlashBurst
		}
		for ui, u := range users {
			if u.retryAt > now {
				continue
			}
			if rng.Float64() >= rate*cfg.Tick {
				continue
			}
			svc := services[u.home]
			for b := 0; b < burst; b++ {
				// Random distinct recipient.
				vi := ui
				if len(users) > 1 {
					for vi == ui {
						vi = rng.Intn(len(users))
					}
				}
				v := users[vi]
				payload := []byte(fmt.Sprintf("u%d>u%d t%d b%d", u.id, v.id, tick, b))
				_, bits, _ := svc.Advice(now)
				var nonce uint64
				if int(bits) > 0 && int(bits) <= u.powCap {
					nonce, _ = session.SolvePoW(u.id, v.addr, payload, int(bits), 0)
				}
				frame, err := session.EncodeMsg(session.Msg{
					Type: session.TSubmit, ClientID: u.id,
					Dst: v.home, To: v.addr, PowNonce: nonce, Payload: payload,
				})
				if err != nil {
					return Report{}, err
				}
				out := svc.Handle(frame, now)
				reply, err := session.DecodeReply(out)
				if err != nil {
					return Report{}, fmt.Errorf("trafficgen: bad reply: %w", err)
				}
				if reply.Type == session.TReject {
					// Closed loop: honor the advertised backoff.
					u.retryAt = now + float64(reply.RetryAfterMs)/1000
					break
				}
			}
		}
		drainAll(now)
		if tick%cfg.FetchEvery == 0 {
			for _, u := range users {
				fetchUser(u, now)
			}
		}
	}

	// Flush: no new submissions, keep draining until every queue is empty
	// (bounded — each tick strictly shrinks a non-empty queue).
	maxFlush := 0
	for _, b := range buildings {
		if q := services[b].QueueLen(); q > 0 {
			need := (q + cfg.DrainBudget - 1) / cfg.DrainBudget
			if need > maxFlush {
				maxFlush = need
			}
		}
	}
	for ft := 0; ft < maxFlush; ft++ {
		now := float64(cfg.Ticks+ft) * cfg.Tick
		drainAll(now)
		rep.FlushTicks++
	}
	finalNow := float64(cfg.Ticks+rep.FlushTicks) * cfg.Tick
	for _, u := range users {
		fetchUser(u, finalNow)
	}

	for _, b := range buildings {
		st := services[b].Stats()
		rep.Offered += st.Offered
		rep.Accepted += st.Accepted
		rep.Delivered += st.Delivered
		rep.RejectedAdmission += st.RejectedAdmission
		rep.RejectedRateLimit += st.RejectedRateLimit
		rep.RejectedBufferFull += st.RejectedBufferFull
		rep.DroppedNetworkExhausted += st.DroppedNetworkExhausted
		rep.Fetched += st.Fetched
		rep.Residual += st.Queued
		if st.PeakTier > rep.PeakTier {
			rep.PeakTier = st.PeakTier
		}
	}
	if len(latencies) > 0 {
		rep.LatencyP50 = stats.Percentile(latencies, 50)
		rep.LatencyP99 = stats.Percentile(latencies, 99)
	}
	if d := float64(cfg.Ticks) * cfg.Tick; d > 0 {
		rep.Throughput = float64(rep.Delivered) / d
	}
	if err := rep.AccountingError(); err != nil {
		return rep, err
	}
	return rep, nil
}
