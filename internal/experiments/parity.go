package experiments

import (
	"fmt"

	"citymesh/internal/fwd/parity"
)

// Parity runs the sim↔live differential suite (internal/fwd/parity): the
// same city, packet, and fault set through the discrete-event simulator
// and a hub of live agents, diffing the reached/forwarded/delivered AP
// sets. It returns an error when any scenario mismatches, so a CI step
// running `-experiment parity` fails the build on kernel drift.
func Parity() ([]parity.Result, error) {
	results, err := parity.RunAll(parity.Scenarios())
	if err != nil {
		return results, err
	}
	for _, r := range results {
		if !r.OK() {
			return results, fmt.Errorf(
				"experiments: parity broken in scenario %q: %d mismatches (first: %s)",
				r.Scenario.Name, len(r.Mismatches), r.Mismatches[0])
		}
	}
	return results, nil
}

// ParityText renders the suite as a table.
func ParityText(results []parity.Result) string {
	out := fmt.Sprintf("P1: sim vs live-agent forwarding parity\n%-12s %6s %7s %8s %9s %9s %10s %6s\n",
		"scenario", "APs", "failed", "reached", "forwarded", "delivered", "sim-delvd", "match")
	for _, r := range results {
		match := "OK"
		if !r.OK() {
			match = fmt.Sprintf("%d!!", len(r.Mismatches))
		}
		out += fmt.Sprintf("%-12s %6d %7d %8d %9d %9d %10v %6s\n",
			r.Scenario.Name, r.APs, r.FailedAPs, r.Reached, r.Forwarded, r.Delivered,
			r.SimDelivered, match)
	}
	return out
}

// ParityCSV renders the suite as CSV, including the kernel's per-reason
// decision tally per scenario.
func ParityCSV(results []parity.Result) string {
	out := "scenario,aps,failed,reached,forwarded,delivered,sim_delivered,mismatches," +
		"dec_first_hop,dec_geocast,dec_in_conduit,dec_out_of_conduit,dec_ttl_expired,dec_bad_route\n"
	for _, r := range results {
		out += fmt.Sprintf("%s,%d,%d,%d,%d,%d,%v,%d,%d,%d,%d,%d,%d,%d\n",
			r.Scenario.Name, r.APs, r.FailedAPs, r.Reached, r.Forwarded, r.Delivered,
			r.SimDelivered, len(r.Mismatches),
			r.Decisions.FirstHop, r.Decisions.Geocast, r.Decisions.InConduit,
			r.Decisions.OutOfConduit, r.Decisions.TTLExpired, r.Decisions.BadRoute)
	}
	return out
}
