package experiments

import (
	"fmt"
	"strings"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/faults"
	"citymesh/internal/health"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// SelfHealingConfig scales the self-healing experiment (E: route-health
// memory + store-and-heal, PR 3).
type SelfHealingConfig struct {
	// City is the preset name (default "gridtown").
	City string
	// Scale shrinks the preset extent (0 < Scale <= 1) for fast runs.
	Scale float64
	// Mode is the fault injector (default disk — the spatially correlated
	// damage the health map is built for).
	Mode faults.Mode
	// Frac is the failure fraction (default 0.3).
	Frac float64
	// Pairs is the number of building pairs sent, in a fixed deterministic
	// order so the health map's learning curve is reproducible.
	Pairs int
	// Seed drives sampling, injection, and ladder jitter.
	Seed int64
	// Reliable configures the ladder; zero-value uses the defaults.
	Reliable core.ReliableConfig
	// Health tunes the route-health memory; zero fields use the defaults.
	// (The -heal-decay flag lands in Health.DecayTau.)
	Health health.Config
	// RecoverAt, when > 0, wraps the injection so every failure heals at
	// that sim instant, and runs the store-and-heal phase: pairs whose
	// ladder exhausted are re-driven through SendEventually, which parks
	// them and re-attempts across the recovery.
	RecoverAt float64
	// Eventual configures the healing scheduler of the store-and-heal
	// phase; zero-value uses the defaults.
	Eventual core.EventualConfig
	// Parallelism is the worker count for the independent phases (plain
	// ladder, store-and-heal): 0 or negative uses GOMAXPROCS. The
	// shared-health-map phase is inherently sequential — its whole point is
	// that earlier sends teach later ones — and always runs serially.
	Parallelism int
}

// DefaultSelfHealingConfig is the evaluation setting: gridtown under a 30%
// disk outage that heals at t=60s.
func DefaultSelfHealingConfig() SelfHealingConfig {
	return SelfHealingConfig{
		City:      "gridtown",
		Mode:      faults.ModeDisk,
		Frac:      0.3,
		Pairs:     30,
		Seed:      1,
		RecoverAt: 60,
	}
}

// SelfHealingResult compares the plain escalation ladder against the
// ladder with route-health memory on the same pairs, same faults, same
// seeds — then reports the store-and-heal phase for the pairs neither
// could reach.
type SelfHealingResult struct {
	City  string
	Mode  faults.Mode
	Frac  float64
	Pairs int

	// LadderRate and LadderBroadcasts are delivery fraction and total
	// transmission cost of the health-less ladder across all pairs.
	LadderRate       float64
	LadderBroadcasts int
	// HealthRate and HealthBroadcasts are the same under a shared
	// route-health map that learns across the batch.
	HealthRate       float64
	HealthBroadcasts int
	// HealthDirectWins counts health-ladder deliveries that needed no
	// escalation (RungDirect) — the payoff of planning around known damage.
	HealthDirectWins int
	LadderDirectWins int
	// Suspects is the number of buildings the map holds under suspicion
	// after the batch.
	Suspects int

	// Store-and-heal phase (RecoverAt > 0): every pair whose health-ladder
	// run exhausted is re-driven through SendEventually against the
	// recovering fault schedule.
	RecoverAt float64
	// Undeliverable is how many pairs exhausted the health ladder and
	// entered the store-and-heal phase.
	Undeliverable int
	// Parked counts messages classified partitioned and parked.
	Parked int
	// Healed counts parked messages eventually delivered (and acked).
	Healed int
	// HealedFraction is Healed/Parked (1 when nothing parked).
	HealedFraction float64
	// TimeToHealP50 is the median sim time from first transmission to
	// delivery across healed messages.
	TimeToHealP50 float64
}

// SelfHealing runs the PR 3 evaluation: does per-sender route-health
// memory (decaying suspicion, penalty-weighted replanning) deliver at
// least as often as the plain ladder for strictly less broadcast cost, and
// does partition-aware store-and-heal carry the rest across a recovery?
// The run is fully deterministic under a fixed Seed.
func SelfHealing(cfg SelfHealingConfig) (SelfHealingResult, error) {
	d := DefaultSelfHealingConfig()
	if cfg.City == "" {
		cfg.City = d.City
	}
	if cfg.Mode == "" {
		cfg.Mode = d.Mode
	}
	if cfg.Frac <= 0 {
		cfg.Frac = d.Frac
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = d.Pairs
	}
	spec, ok := citygen.Preset(cfg.City)
	if !ok {
		return SelfHealingResult{}, fmt.Errorf("experiments: unknown city %q", cfg.City)
	}
	if cfg.Scale > 0 && cfg.Scale < 1 {
		spec = scaleSpec(spec, cfg.Scale)
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return SelfHealingResult{}, err
	}
	pairs, err := sampleReachablePairs(n, cfg.Seed, cfg.Pairs)
	if err != nil {
		return SelfHealingResult{}, err
	}
	inj, err := faults.Inject(n.Mesh, n.City, faults.Config{
		Mode: cfg.Mode, Frac: cfg.Frac, Seed: cfg.Seed,
	})
	if err != nil {
		return SelfHealingResult{}, err
	}

	out := SelfHealingResult{
		City: cfg.City, Mode: cfg.Mode, Frac: cfg.Frac,
		Pairs: len(pairs), RecoverAt: cfg.RecoverAt,
	}
	rcfg := cfg.Reliable
	if rcfg.MultipathK == 0 && rcfg.Retries == 0 && rcfg.BackoffBase == 0 {
		rcfg = core.DefaultReliableConfig()
	}
	rcfg.Seed = cfg.Seed

	simCfg := sim.DefaultConfig()
	simCfg.Seed = cfg.Seed
	inj.Apply(&simCfg)

	// Phase A: the health-less ladder — independent pairs, so they run as
	// parallel tasks, folded in index order.
	type ladderOutcome struct {
		ran, delivered, direct bool
		broadcasts             int
	}
	ladderOuts := runner.Map(cfg.Parallelism, len(pairs), func(i int) ladderOutcome {
		rc := rcfg
		rc.Health = nil
		rr, err := n.SendReliable(pairs[i][0], pairs[i][1], nil, simCfg, rc)
		if err != nil {
			return ladderOutcome{}
		}
		return ladderOutcome{
			ran: true, delivered: rr.Delivered,
			direct: rr.Delivered && rr.Rung == core.RungDirect, broadcasts: rr.TotalBroadcasts,
		}
	})
	ladderDelivered := 0
	for _, o := range ladderOuts {
		if !o.ran {
			continue
		}
		out.LadderBroadcasts += o.broadcasts
		if o.delivered {
			ladderDelivered++
			if o.direct {
				out.LadderDirectWins++
			}
		}
	}

	// Phase B: the same pairs, same order, under one shared route-health
	// map — the accumulated memory of a relay that serves the whole batch.
	// Early failures teach it where the damage is; later sends route
	// around it and skip the escalation cost. This phase is deliberately
	// serial: each send depends on the map state the previous sends left
	// behind, so there are no independent tasks to hand the runner.
	hm := health.New(cfg.Health)
	healthDelivered := 0
	var exhausted [][2]int
	for _, p := range pairs {
		rc := rcfg
		rc.Health = hm
		rr, err := n.SendReliable(p[0], p[1], nil, simCfg, rc)
		if err != nil {
			continue
		}
		out.HealthBroadcasts += rr.TotalBroadcasts
		if rr.Delivered {
			healthDelivered++
			if rr.Rung == core.RungDirect {
				out.HealthDirectWins++
			}
		} else {
			exhausted = append(exhausted, p)
		}
	}
	if out.Pairs > 0 {
		out.LadderRate = float64(ladderDelivered) / float64(out.Pairs)
		out.HealthRate = float64(healthDelivered) / float64(out.Pairs)
	}
	out.Suspects = hm.SuspectCount()

	// Phase C: store-and-heal. The pairs nothing could reach are parked
	// and re-attempted against the recovering schedule; the metric is how
	// many heal and how long healing takes.
	out.Undeliverable = len(exhausted)
	if cfg.RecoverAt > 0 && len(exhausted) > 0 {
		healing := inj.WithRecovery(cfg.RecoverAt)
		type healOutcome struct {
			ran, parked, healed bool
			timeToHeal          float64
		}
		healOuts := runner.Map(cfg.Parallelism, len(exhausted), func(i int) healOutcome {
			sc := sim.DefaultConfig()
			sc.Seed = cfg.Seed
			healing.Apply(&sc)
			res, err := n.SendEventually(exhausted[i][0], exhausted[i][1], nil, sc, rcfg, cfg.Eventual)
			if err != nil {
				return healOutcome{}
			}
			return healOutcome{
				ran: true, parked: res.Parked,
				healed: res.Parked && res.HealedFromPark, timeToHeal: res.TimeToHeal,
			}
		})
		var heals []float64
		for _, o := range healOuts {
			if o.ran && o.parked {
				out.Parked++
				if o.healed {
					out.Healed++
					heals = append(heals, o.timeToHeal)
				}
			}
		}
		if len(heals) > 0 {
			out.TimeToHealP50 = stats.Percentile(heals, 50)
		}
	}
	if out.Parked > 0 {
		out.HealedFraction = float64(out.Healed) / float64(out.Parked)
	} else {
		out.HealedFraction = 1
	}
	return out, nil
}

// SelfHealingText renders the comparison as a small report.
func SelfHealingText(r SelfHealingResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Self-healing: %s under %s fail=%.0f%% (%d pairs)\n",
		r.City, r.Mode, 100*r.Frac, r.Pairs)
	fmt.Fprintf(&sb, "%-16s %8s %12s %12s\n", "strategy", "deliv", "total bcast", "direct wins")
	fmt.Fprintf(&sb, "%-16s %7.1f%% %12d %12d\n", "ladder", 100*r.LadderRate, r.LadderBroadcasts, r.LadderDirectWins)
	fmt.Fprintf(&sb, "%-16s %7.1f%% %12d %12d\n", "ladder+health", 100*r.HealthRate, r.HealthBroadcasts, r.HealthDirectWins)
	fmt.Fprintf(&sb, "health map: %d suspect buildings after batch\n", r.Suspects)
	if r.RecoverAt > 0 {
		fmt.Fprintf(&sb, "store-and-heal: %d undeliverable, %d parked, %d healed (%.0f%%) by recovery at t=%.0fs",
			r.Undeliverable, r.Parked, r.Healed, 100*r.HealedFraction, r.RecoverAt)
		if r.Healed > 0 {
			fmt.Fprintf(&sb, ", time-to-heal p50 %.1fs", r.TimeToHealP50)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// SelfHealingCSV renders the result as a one-row CSV.
func SelfHealingCSV(r SelfHealingResult) string {
	var sb strings.Builder
	sb.WriteString("city,mode,fail_frac,pairs,ladder_rate,ladder_bcast,health_rate,health_bcast," +
		"ladder_direct_wins,health_direct_wins,suspects,recover_at,undeliverable,parked,healed,healed_frac,time_to_heal_p50\n")
	fmt.Fprintf(&sb, "%s,%s,%.2f,%d,%.4f,%d,%.4f,%d,%d,%d,%d,%.1f,%d,%d,%d,%.4f,%.2f\n",
		r.City, r.Mode, r.Frac, r.Pairs, r.LadderRate, r.LadderBroadcasts,
		r.HealthRate, r.HealthBroadcasts, r.LadderDirectWins, r.HealthDirectWins,
		r.Suspects, r.RecoverAt, r.Undeliverable, r.Parked, r.Healed, r.HealedFraction, r.TimeToHealP50)
	return sb.String()
}
