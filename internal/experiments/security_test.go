package experiments

import "testing"

func TestMultipathUnderAttack(t *testing.T) {
	rows, err := MultipathUnderAttack("gridtown", 0.3, 1, []float64{0, 0.15}, []int{1, 3}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[[2]int]SecurityRow{}
	for _, r := range rows {
		byKey[[2]int{int(r.AttackFrac * 100), r.Paths}] = r
		if r.Pairs == 0 {
			t.Fatalf("no pairs for %+v", r)
		}
	}
	// More paths cost more broadcasts.
	if byKey[[2]int{0, 3}].BroadcastsP50 < byKey[[2]int{0, 1}].BroadcastsP50 {
		t.Error("3 paths should cost at least as much as 1")
	}
	// Under attack, 3 paths should deliver at least as well as 1.
	if byKey[[2]int{15, 3}].Deliverability < byKey[[2]int{15, 1}].Deliverability {
		t.Errorf("multipath under attack %.2f worse than single path %.2f",
			byKey[[2]int{15, 3}].Deliverability, byKey[[2]int{15, 1}].Deliverability)
	}
	if SecurityText(rows) == "" {
		t.Error("empty text")
	}
	if _, err := MultipathUnderAttack("nope", 1, 1, nil, nil, 1, 1); err == nil {
		t.Error("unknown city should error")
	}
}

func TestRadioModelSweep(t *testing.T) {
	rows, err := RadioModelSweep("gridtown", 0.3, 1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Pairs == 0 {
			t.Fatalf("%s: no pairs", r.Model)
		}
		if r.Deliverability < 0 || r.Deliverability > 1 {
			t.Fatalf("%s: deliverability %v", r.Model, r.Deliverability)
		}
	}
	// Lossy settings cannot beat the idealized unit disk on this seed set
	// by a wide margin; at minimum the text renders.
	if RadioText(rows) == "" {
		t.Error("empty text")
	}
	if _, err := RadioModelSweep("nope", 1, 1, 1, 1); err == nil {
		t.Error("unknown city should error")
	}
}

func TestGeocastSweep(t *testing.T) {
	rows, err := GeocastSweep("gridtown", 0.3, 1, []float64{80, 200}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Casts == 0 {
			t.Fatalf("radius %v: no casts", r.RadiusM)
		}
		if r.CoverageP50 < 0 || r.CoverageP50 > 1 {
			t.Fatalf("coverage = %v", r.CoverageP50)
		}
	}
	// Larger areas contain more APs.
	if rows[1].APsInAreaP50 <= rows[0].APsInAreaP50 {
		t.Errorf("larger radius should cover more APs: %v vs %v",
			rows[1].APsInAreaP50, rows[0].APsInAreaP50)
	}
	if GeocastText(rows) == "" {
		t.Error("empty text")
	}
	if _, err := GeocastSweep("nope", 1, 1, nil, 1, 1); err == nil {
		t.Error("unknown city should error")
	}
}
