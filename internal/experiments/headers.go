package experiments

import (
	"fmt"
	"strings"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/packet"
	"citymesh/internal/runner"
	"citymesh/internal/stats"
)

// HeaderSizeResult reproduces the paper's §4 compressed-header result:
// "in a typical city simulation, the median and 90%ile packet header for
// the compressed source route are 175 and 225 bits".
type HeaderSizeResult struct {
	City            string
	Routes          int
	Waypoints       stats.Summary
	RouteBits       stats.Summary
	FullHeaderBits  stats.Summary
	UncompressedWps stats.Summary // route length before conduit compression
	// PrefixBits is the constant-size hierarchical region prefix an
	// inter-region send would stack on the same header, and
	// HierHeaderBits is the resulting federation header (full header +
	// prefix) — the per-relay cost of addressing this city from another
	// region in a two-level federation.
	PrefixBits     stats.Summary
	HierHeaderBits stats.Summary
}

// HeaderSizes samples random routable pairs in a city and measures the
// encoded route and header sizes. Candidates run as parallel tasks in
// index-ordered chunks; the first `samples` routable pairs in index order
// are kept, so output does not depend on parallelism.
func HeaderSizes(cityName string, scale float64, seed int64, samples, par int) (HeaderSizeResult, error) {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return HeaderSizeResult{}, fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return HeaderSizeResult{}, err
	}
	if samples <= 0 {
		samples = 200
	}
	var routeBits, headerBits, wps, rawWps, prefixBits, hierBits []float64
	pairs, err := n.RandomPairs(seed, samples*4)
	if err != nil {
		return HeaderSizeResult{}, err
	}
	type outcome struct {
		ok                           bool
		routeBits, headerBits        float64
		prefixBits                   float64
		waypoints, uncompressedPaths float64
	}
	for idx := 0; len(routeBits) < samples && idx < len(pairs); {
		chunk := samples - len(routeBits)
		if p := runner.Parallelism(par); chunk < p {
			chunk = p
		}
		if idx+chunk > len(pairs) {
			chunk = len(pairs) - idx
		}
		outs := runner.Map(par, chunk, func(k int) outcome {
			p := pairs[idx+k]
			path, err := n.BuildingPath(p[0], p[1])
			if err != nil {
				return outcome{}
			}
			r, err := n.PlanRoute(p[0], p[1])
			if err != nil {
				return outcome{}
			}
			pkt, err := n.NewPacket(r, nil)
			if err != nil {
				return outcome{}
			}
			// The hierarchical prefix this route would carry if it crossed
			// a region boundary on the way here (source region -> this
			// one, destination building addressed region-locally).
			prefix := (&packet.RegionPrefix{
				SrcRegion: 0, DstRegion: 1,
				DstBuilding: uint32(p[1]), TTL: 16,
			}).Bits()
			return outcome{
				ok:        true,
				routeBits: float64(pkt.Header.RouteBits()), headerBits: float64(pkt.Header.HeaderBits()),
				prefixBits: float64(prefix),
				waypoints:  float64(len(r.Waypoints)), uncompressedPaths: float64(len(path)),
			}
		})
		for _, o := range outs {
			if len(routeBits) >= samples {
				break
			}
			if !o.ok {
				continue
			}
			routeBits = append(routeBits, o.routeBits)
			headerBits = append(headerBits, o.headerBits)
			prefixBits = append(prefixBits, o.prefixBits)
			hierBits = append(hierBits, o.headerBits+o.prefixBits)
			wps = append(wps, o.waypoints)
			rawWps = append(rawWps, o.uncompressedPaths)
		}
		idx += chunk
	}
	if len(routeBits) == 0 {
		return HeaderSizeResult{}, fmt.Errorf("experiments: no routable pairs in %s", cityName)
	}
	return HeaderSizeResult{
		City:            cityName,
		Routes:          len(routeBits),
		Waypoints:       stats.Summarize(wps),
		RouteBits:       stats.Summarize(routeBits),
		FullHeaderBits:  stats.Summarize(headerBits),
		UncompressedWps: stats.Summarize(rawWps),
		PrefixBits:      stats.Summarize(prefixBits),
		HierHeaderBits:  stats.Summarize(hierBits),
	}, nil
}

// Text renders the header-size result.
func (r HeaderSizeResult) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Header sizes in %s over %d routes (paper: route p50=175, p90=225 bits)\n", r.City, r.Routes)
	fmt.Fprintf(&sb, "  route buildings (uncompressed): p50=%.0f p90=%.0f\n", r.UncompressedWps.P50, r.UncompressedWps.P90)
	fmt.Fprintf(&sb, "  waypoints after compression:    p50=%.0f p90=%.0f\n", r.Waypoints.P50, r.Waypoints.P90)
	fmt.Fprintf(&sb, "  compressed route bits:          p50=%.0f p90=%.0f\n", r.RouteBits.P50, r.RouteBits.P90)
	fmt.Fprintf(&sb, "  full header bits:               p50=%.0f p90=%.0f\n", r.FullHeaderBits.P50, r.FullHeaderBits.P90)
	fmt.Fprintf(&sb, "  + federation region prefix:     p50=%.0f p90=%.0f (hier header p50=%.0f p90=%.0f)\n",
		r.PrefixBits.P50, r.PrefixBits.P90, r.HierHeaderBits.P50, r.HierHeaderBits.P90)
	return sb.String()
}

// CSV renders the header-size result as a one-row CSV.
func (r HeaderSizeResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("city,routes,uncompressed_p50,uncompressed_p90,waypoints_p50,waypoints_p90," +
		"route_bits_p50,route_bits_p90,header_bits_p50,header_bits_p90," +
		"prefix_bits_p50,prefix_bits_p90,hier_header_bits_p50,hier_header_bits_p90\n")
	fmt.Fprintf(&sb, "%s,%d,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f\n",
		r.City, r.Routes, r.UncompressedWps.P50, r.UncompressedWps.P90,
		r.Waypoints.P50, r.Waypoints.P90, r.RouteBits.P50, r.RouteBits.P90,
		r.FullHeaderBits.P50, r.FullHeaderBits.P90,
		r.PrefixBits.P50, r.PrefixBits.P90, r.HierHeaderBits.P50, r.HierHeaderBits.P90)
	return sb.String()
}
