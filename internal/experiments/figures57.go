package experiments

import (
	"fmt"
	"io"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/svgrender"
)

// Figure5 renders the footprints panel (a) and the AP-graph panel (b) for a
// city preset, writing two SVG documents.
func Figure5(cityName string, scale float64, footprintsW, meshW io.Writer) error {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return err
	}
	if err := svgrender.RenderCity(footprintsW, n.City, 1000); err != nil {
		return err
	}
	return svgrender.RenderMesh(meshW, n.City, n.Mesh, 1000)
}

// Figure7Result captures one rendered simulation.
type Figure7Result struct {
	Src, Dst  int
	Delivered bool
	// Forwarded and ReceivedOnly count the light blue and red dots.
	Forwarded, ReceivedOnly int
	Broadcasts              int
}

// Figure7 runs one full event simulation on a reachable pair with a
// multi-conduit route and renders the transcript (green route, light blue
// forwarding APs, red receive-only APs) to w. The candidate-pair scan runs
// on the parallel runner; the pick is by index order, so the chosen pair
// is the same at any parallelism.
func Figure7(cityName string, scale float64, seed int64, par int, w io.Writer) (Figure7Result, error) {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return Figure7Result{}, fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	spec.Seed = seed
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return Figure7Result{}, err
	}

	// Find a long reachable pair so the figure shows a real route.
	pairs, err := n.RandomPairs(seed, 500)
	if err != nil {
		return Figure7Result{}, err
	}
	// Parallel phase: the cheap per-pair facts (reachability, distance).
	// Serial phase: the exact improving-candidate walk of the original loop
	// (PlanRoute only on candidates that beat the best so far), preserved
	// by folding in index order.
	type candidate struct {
		reachable bool
		dist      float64
	}
	cands := runner.Map(par, len(pairs), func(i int) candidate {
		p := pairs[i]
		if !n.Reachable(p[0], p[1]) {
			return candidate{}
		}
		return candidate{
			reachable: true,
			dist:      n.City.Buildings[p[0]].Centroid.Dist(n.City.Buildings[p[1]].Centroid),
		}
	})
	var src, dst int
	found := false
	bestLen := 0.0
	for i, c := range cands {
		if !c.reachable || c.dist <= bestLen {
			continue
		}
		p := pairs[i]
		if _, err := n.PlanRoute(p[0], p[1]); err == nil {
			src, dst, bestLen, found = p[0], p[1], c.dist, true
		}
	}
	if !found {
		return Figure7Result{}, fmt.Errorf("experiments: no reachable routed pair in %s", cityName)
	}

	route, err := n.PlanRoute(src, dst)
	if err != nil {
		return Figure7Result{}, err
	}
	pkt, err := n.NewPacket(route, nil)
	if err != nil {
		return Figure7Result{}, err
	}
	simCfg := sim.DefaultConfig()
	simCfg.Seed = seed
	simCfg.RecordTranscript = true
	res, err := n.Engine().Run(pkt, simCfg)
	if err != nil {
		return Figure7Result{}, err
	}

	conduits, err := route.Conduits(n.City)
	if err != nil {
		return Figure7Result{}, err
	}
	path, err := n.BuildingPath(src, dst)
	if err != nil {
		return Figure7Result{}, err
	}
	if err := svgrender.RenderSimulation(w, n.City, n.Mesh, conduits, path, res, 1000); err != nil {
		return Figure7Result{}, err
	}
	out := Figure7Result{Src: src, Dst: dst, Delivered: res.Delivered, Broadcasts: res.Broadcasts}
	for _, rec := range res.Transcript {
		if !rec.Received {
			continue
		}
		if rec.Forwarded {
			out.Forwarded++
		} else {
			out.ReceivedOnly++
		}
	}
	return out, nil
}
