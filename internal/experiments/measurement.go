// Package experiments regenerates every table and figure in the paper's
// evaluation, plus the ablations DESIGN.md commits to. Each experiment is a
// pure function from parameters to a result struct with text-table and CSV
// renderings, so the cmd/ binaries, the benchmark harness and EXPERIMENTS.md
// all share one implementation.
package experiments

import (
	"fmt"
	"strings"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/geo"
	"citymesh/internal/measure"
	"citymesh/internal/mesh"
	"citymesh/internal/runner"
	"citymesh/internal/stats"
)

// MeasurementStudyResult reproduces §2: Table 1, Figure 1a, Figure 1b and
// Figure 2 from a simulated wardriving survey of a synthetic city.
type MeasurementStudyResult struct {
	Rows map[string]measure.Table1Row
	// MACsPerMeasurement holds Figure 1a's per-area samples.
	MACsPerMeasurement map[string]*stats.CDF
	// Spread holds Figure 1b's per-area samples.
	Spread map[string]*stats.CDF
	// CommonByDistance holds Figure 2's per-area binned common-AP counts.
	CommonByDistance map[string]*stats.Binned
	// Areas preserves presentation order.
	Areas []string
}

// MeasurementStudy surveys four areas of a generated city mirroring the
// paper's downtown / campus / residential / river walks. The four area
// surveys are independent and run as parallel tasks.
func MeasurementStudy(seed int64, par int) (*MeasurementStudyResult, error) {
	spec, ok := citygen.Preset("boston")
	if !ok {
		return nil, fmt.Errorf("experiments: boston preset missing")
	}
	spec.Seed = seed
	plan, err := citygen.Generate(spec)
	if err != nil {
		return nil, err
	}
	city := core.PlanToCity(plan)
	m := mesh.Place(city, mesh.Config{
		Density: 1.0 / 200.0, Range: 50, Seed: seed, MinPerBuilding: 1,
	})

	cfg := measure.DefaultConfig()
	cfg.Seed = seed

	// Survey areas mirror the preset's districts. The river track walks the
	// bank just south of the river band.
	downtown := measure.SerpentineTrack(spec.DowntownRect, 90)
	campus := measure.SerpentineTrack(spec.CampusRect, 90)
	residential := measure.SerpentineTrack(geo.Rect{
		Min: geo.Pt(200, 1200), Max: geo.Pt(1500, 1750),
	}, 110)
	riverY := 1700.0
	river := measure.LineTrack(geo.Pt(100, riverY), geo.Pt(spec.Width-100, riverY))

	// The cyclist covers the river bank faster (the paper mixed walking and
	// bicycling).
	riverCfg := cfg
	riverCfg.SpeedMps = 4

	res := &MeasurementStudyResult{
		Rows:               make(map[string]measure.Table1Row),
		MACsPerMeasurement: make(map[string]*stats.CDF),
		Spread:             make(map[string]*stats.CDF),
		CommonByDistance:   make(map[string]*stats.Binned),
		Areas:              []string{"downtown", "campus", "residential", "river"},
	}
	surveys := []struct {
		area  string
		track []geo.Point
		cfg   measure.Config
	}{
		{"downtown", downtown, cfg},
		{"campus", campus, cfg},
		{"residential", residential, cfg},
		{"river", river, riverCfg},
	}
	type areaResult struct {
		row    measure.Table1Row
		macs   *stats.CDF
		spread *stats.CDF
		common *stats.Binned
	}
	outs := runner.Map(par, len(surveys), func(i int) areaResult {
		s := surveys[i]
		ds := measure.Survey(m, s.area, s.track, s.cfg)
		return areaResult{
			row:    measure.Table1(ds),
			macs:   stats.NewCDF(measure.MACsPerMeasurement(ds)),
			spread: stats.NewCDF(measure.APSpread(ds)),
			common: measure.CommonAPs(ds, 25, 20000, seed),
		}
	})
	for i, o := range outs {
		area := surveys[i].area
		res.Rows[area] = o.row
		res.MACsPerMeasurement[area] = o.macs
		res.Spread[area] = o.spread
		res.CommonByDistance[area] = o.common
	}
	return res, nil
}

// Table1Text renders the Table 1 reproduction.
func (r *MeasurementStudyResult) Table1Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: summary of simulated survey data\n")
	fmt.Fprintf(&sb, "%-12s %8s %10s\n", "Dataset", "# Meas.", "# Unique APs")
	total := measure.Table1Row{Area: "all"}
	for _, area := range r.Areas {
		row := r.Rows[area]
		fmt.Fprintf(&sb, "%s\n", row.String())
		total.Measurements += row.Measurements
		total.UniqueAPs += row.UniqueAPs // approximation: areas barely overlap
	}
	fmt.Fprintf(&sb, "%s\n", total.String())
	return sb.String()
}

// Figure1Text renders the Figure 1a/1b medians per area.
func (r *MeasurementStudyResult) Figure1Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1a: MACs per measurement (median)   Figure 1b: AP spread m (median)\n")
	for _, area := range r.Areas {
		fmt.Fprintf(&sb, "%-12s macs p50=%6.1f p90=%6.1f        spread p50=%6.1f p90=%6.1f\n",
			area,
			r.MACsPerMeasurement[area].Quantile(0.5), r.MACsPerMeasurement[area].Quantile(0.9),
			r.Spread[area].Quantile(0.5), r.Spread[area].Quantile(0.9))
	}
	return sb.String()
}

// Figure2Text renders the per-distance-bin common-AP distributions.
func (r *MeasurementStudyResult) Figure2Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2: APs observed in common vs measurement-pair distance\n")
	for _, area := range r.Areas {
		fmt.Fprintf(&sb, "-- %s --\n%s", area, r.CommonByDistance[area].Table())
	}
	return sb.String()
}

// CSV renders the Figure 1 samples as CSV (area, metric, value) rows.
func (r *MeasurementStudyResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("area,metric,quantile,value\n")
	for _, area := range r.Areas {
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			fmt.Fprintf(&sb, "%s,macs_per_measurement,%.2f,%.2f\n", area, q, r.MACsPerMeasurement[area].Quantile(q))
			fmt.Fprintf(&sb, "%s,ap_spread_m,%.2f,%.2f\n", area, q, r.Spread[area].Quantile(q))
		}
	}
	return sb.String()
}
