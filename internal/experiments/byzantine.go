package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"citymesh/internal/adversary"
	"citymesh/internal/agent"
	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/health"
	"citymesh/internal/mesh"
	"citymesh/internal/packet"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// ByzantineConfig scales the Byzantine-adversary experiment (PR 8): how much
// delivery does each misbehavior cost as the compromised fraction grows, and
// how much of that loss does the defense stack claw back?
type ByzantineConfig struct {
	// City is the preset name (default "gridtown" — a pure grid, so every
	// delivery change is attributable to the adversary, not geography).
	City string
	// Scale shrinks the preset extent (0 < Scale <= 1) for fast runs.
	Scale float64
	// Behaviors are the misbehavior names to sweep (see adversary.Names);
	// empty sweeps all of them.
	Behaviors []string
	// Fracs are the compromised-AP fractions (default 0, 0.1, 0.2, 0.3).
	Fracs []float64
	// Pairs is the number of building pairs per cell. Pairs whose endpoints
	// are themselves compromised are skipped — the question is whether
	// honest users can still talk, not whether a liar reports delivery.
	Pairs int
	// Seed drives sampling, adversary selection, and simulation randomness.
	Seed int64
	// NetTTL is the network TTL the defended arm enforces as MaxTTL. The
	// default (64) is far below packet.DefaultTTL so a TTL-resetter's
	// inflated frames are detectable.
	NetTTL uint8
	// DropProb is the grayhole per-frame drop probability (default 0.85).
	DropProb float64
	// Parallelism is the runner worker count; results are byte-identical
	// at any level.
	Parallelism int
}

// DefaultByzantineConfig is the evaluation setting.
func DefaultByzantineConfig() ByzantineConfig {
	return ByzantineConfig{
		City:     "gridtown",
		Fracs:    []float64{0, 0.1, 0.2, 0.3},
		Pairs:    16,
		Seed:     1,
		NetTTL:   64,
		DropProb: 0.85,
	}
}

// ByzantineRow is one (behavior, fraction, arm) cell.
type ByzantineRow struct {
	City     string
	Behavior string
	Frac     float64
	// Defended is false for the undefended baseline arm (plain Send, no
	// receiver sanity stack) and true for the defended arm (SendReliable
	// with route-health memory, delivery-evidence audit, and the
	// DefaultDefense receiver stack).
	Defended bool
	// Pairs is the number of honest-endpoint pairs evaluated; Compromised
	// is the number of Byzantine APs in the cell.
	Pairs       int
	Compromised int
	// DeliveryRate is the fraction of pairs whose packet reached an honest
	// destination AP uncorrupted.
	DeliveryRate float64
	// BroadcastsP50 is the median real-frame transmission cost per pair.
	BroadcastsP50 float64
	// Adversary activity observed in the cell's probe runs.
	GrayholeDrops    int
	ReplayedFrames   int
	ForgedBroadcasts int
	// Defense activity: frames refused by the receiver sanity stack.
	RejectedTTL         int
	RejectedTampered    int
	RejectedRateLimited int
	RejectedGeocast     int
	// Invariant-checker attribution: violations involving a declared
	// Byzantine AP versus violations by honest APs. Honest violations are
	// engine bugs, and Byzantine makes the whole experiment fail.
	ByzantineViolations int
	HonestViolations    int
}

// ByzantineLiveResult is the live-agent leg: the same forged/replayed frame
// classes thrown at a real agent.HandleFrameFrom, with every rejection
// attributed to a per-cause drop counter (the PR-2 hardening path).
type ByzantineLiveResult struct {
	FramesSent         int
	Received           int
	DroppedReplayed    int
	DroppedTampered    int
	DroppedMalformed   int
	DroppedRateLimited int
	PanicsRecovered    int
}

// ByzantineResult bundles the simulation sweep with the live-agent leg.
type ByzantineResult struct {
	Rows []ByzantineRow
	Live ByzantineLiveResult
}

// Byzantine sweeps misbehaviors and compromised fractions, with defenses
// off versus on, and runs the live-agent leg. It errors if any honest AP
// trips a kernel invariant — under a declared adversary every violation
// must be attributable to a declared liar.
func Byzantine(cfg ByzantineConfig) (ByzantineResult, error) {
	d := DefaultByzantineConfig()
	if cfg.City == "" {
		cfg.City = d.City
	}
	if len(cfg.Fracs) == 0 {
		cfg.Fracs = d.Fracs
	}
	if len(cfg.Behaviors) == 0 {
		cfg.Behaviors = adversary.Names()
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = d.Pairs
	}
	if cfg.Seed == 0 {
		cfg.Seed = d.Seed
	}
	if cfg.NetTTL == 0 {
		cfg.NetTTL = d.NetTTL
	}
	if cfg.DropProb <= 0 {
		cfg.DropProb = d.DropProb
	}
	behaviors := make([]struct {
		name string
		b    sim.APBehavior
	}, 0, len(cfg.Behaviors))
	for _, name := range cfg.Behaviors {
		b, err := adversary.Parse(name)
		if err != nil {
			return ByzantineResult{}, fmt.Errorf("experiments: %w", err)
		}
		if b == sim.BehaviorHonest {
			continue
		}
		behaviors = append(behaviors, struct {
			name string
			b    sim.APBehavior
		}{b.String(), b})
	}
	spec, ok := citygen.Preset(cfg.City)
	if !ok {
		return ByzantineResult{}, fmt.Errorf("experiments: unknown city %q", cfg.City)
	}
	if cfg.Scale > 0 && cfg.Scale < 1 {
		spec = scaleSpec(spec, cfg.Scale)
	}
	ccfg := core.DefaultConfig()
	ccfg.TTL = cfg.NetTTL
	n, err := core.FromSpec(spec, ccfg)
	if err != nil {
		return ByzantineResult{}, err
	}
	// Sample with slack: per-cell honest-endpoint filtering discards pairs
	// whose endpoints the adversary owns.
	allPairs, err := sampleReachablePairs(n, cfg.Seed, cfg.Pairs*2)
	if err != nil {
		return ByzantineResult{}, err
	}

	out := ByzantineResult{Live: byzantineLive(n, cfg.NetTTL)}
	for bi, beh := range behaviors {
		for _, frac := range cfg.Fracs {
			// The adversary realization depends only on (behavior, frac) —
			// both arms of a cell face the exact same liars, so the
			// defended-vs-undefended delta is the defense's doing.
			advSeed := cfg.Seed*1009 + int64(bi+1)*101 + int64(math.Round(frac*100))
			asg := adversary.Select(n.Mesh, beh.b, frac, advSeed)
			asg.Adversary.DropProb = cfg.DropProb
			// Bound the replay/forgery storms so a cell's event budget
			// stays proportional to its mesh, not to wall-clock horizons.
			asg.Adversary.ReplayInterval = 0.25
			asg.Adversary.ReplayHorizon = 2
			asg.Adversary.InjectRate = 2
			asg.Adversary.InjectHorizon = 2
			pairs := honestEndpointPairs(n.Mesh, asg.Adversary, allPairs, cfg.Pairs)
			for _, defended := range []bool{false, true} {
				row := byzantineCell(n, cfg, beh.name, frac, defended, pairs, asg, advSeed)
				out.Rows = append(out.Rows, row)
				if row.HonestViolations > 0 {
					return out, fmt.Errorf(
						"experiments: %d honest-AP invariant violations in cell %s frac=%.2f defended=%v — engine bug",
						row.HonestViolations, beh.name, frac, defended)
				}
			}
		}
	}
	return out, nil
}

// honestEndpointPairs keeps pairs whose source building hosts only honest
// APs (so injection is honest) and whose destination hosts at least one
// honest AP (so delivery credit is possible), up to max pairs.
func honestEndpointPairs(m *mesh.Mesh, adv *sim.Adversary, pairs [][2]int, max int) [][2]int {
	var out [][2]int
	for _, p := range pairs {
		if len(out) >= max {
			break
		}
		srcHonest := true
		for _, ap := range m.APsInBuilding(p[0]) {
			if adv.BehaviorOf(int(ap)) != sim.BehaviorHonest {
				srcHonest = false
				break
			}
		}
		if !srcHonest {
			continue
		}
		dstHonest := false
		for _, ap := range m.APsInBuilding(p[1]) {
			if adv.BehaviorOf(int(ap)) == sim.BehaviorHonest {
				dstHonest = true
				break
			}
		}
		if dstHonest {
			out = append(out, p)
		}
	}
	return out
}

func byzantineCell(n *core.Network, cfg ByzantineConfig, behavior string, frac float64, defended bool, pairs [][2]int, asg adversary.Assignment, cellSeed int64) ByzantineRow {
	row := ByzantineRow{
		City: cfg.City, Behavior: behavior, Frac: frac, Defended: defended,
		Compromised: asg.NumCompromised(),
	}
	var def sim.Defense
	if defended {
		def = adversary.DefaultDefense(cfg.NetTTL)
	}
	type outcome struct {
		ran, delivered      bool
		cost                float64
		probe               sim.Result
		honestViol, byzViol int
	}
	outs := runner.Map(cfg.Parallelism, len(pairs), func(i int) outcome {
		p := pairs[i]
		seed := runner.TaskSeed(cellSeed, i)
		simCfg := sim.DefaultConfig()
		simCfg.Seed = seed
		asg.Apply(&simCfg)
		simCfg.Defense = def

		var o outcome
		// The probe run: one plain Send with the invariant checker attached.
		// Undefended, it IS the measured arm; defended, it only observes
		// (SendReliable spans several internal runs, which a single checker
		// cannot attribute), and its cost is not charged to the ladder.
		ic := sim.NewInvariantChecker(n.Mesh.NumAPs(), simCfg)
		probeCfg := simCfg
		probeCfg.Probe = ic.Probe
		res, err := n.Send(p[0], p[1], nil, probeCfg)
		if err != nil {
			return o
		}
		o.probe = res.Sim
		o.honestViol = ic.Total()
		o.byzViol = ic.ByzantineViolations()
		if !defended {
			o.ran = true
			o.delivered = res.Sim.Delivered
			o.cost = float64(res.Sim.Broadcasts)
			return o
		}
		hm := health.New(health.Config{})
		rc := core.DefaultReliableConfig()
		rc.Seed = seed
		rc.Health = hm
		rc.Evidence = true
		rr, err := n.SendReliable(p[0], p[1], nil, simCfg, rc)
		if err != nil {
			return o
		}
		o.ran = true
		o.delivered = rr.Delivered
		o.cost = float64(rr.TotalBroadcasts)
		return o
	})

	delivered := 0
	var costs []float64
	for _, o := range outs {
		if !o.ran {
			continue
		}
		row.Pairs++
		costs = append(costs, o.cost)
		if o.delivered {
			delivered++
		}
		row.GrayholeDrops += o.probe.GrayholeDrops
		row.ReplayedFrames += o.probe.ReplayedFrames
		row.ForgedBroadcasts += o.probe.ForgedBroadcasts
		row.RejectedTTL += o.probe.RejectedTTL
		row.RejectedTampered += o.probe.RejectedTampered
		row.RejectedRateLimited += o.probe.RejectedRateLimited
		row.RejectedGeocast += o.probe.RejectedGeocast
		row.ByzantineViolations += o.byzViol
		row.HonestViolations += o.honestViol
	}
	if row.Pairs > 0 {
		row.DeliveryRate = float64(delivered) / float64(row.Pairs)
	}
	if len(costs) > 0 {
		row.BroadcastsP50 = stats.Percentile(costs, 50)
	}
	return row
}

// byzantineLive throws the experiment's frame classes at a real agent: fresh
// frames, exact replays, TTL-inflated and conduit-corrupt forgeries, CRC
// garbage, and a single-source replay storm. The agent runs the hardened
// receive path (per-pair replay detection, kernel sanity, per-source rate
// limiting) under an injected clock, so the leg is fully deterministic.
func byzantineLive(n *core.Network, netTTL uint8) ByzantineLiveResult {
	now := time.Unix(1_000_000_000, 0)
	a := agent.New(agent.Config{
		ID: 1, Pos: n.Mesh.APs[0].Pos, Building: -1, City: n.City,
		MaxTTL: netTTL, StrictSanity: true,
		NeighborRate: 8, NeighborBurst: 16,
		Clock: func() time.Time { return now },
	}, nil)

	mk := func(ttl uint8, msgID uint64, wps []uint32) []byte {
		wire, err := (&packet.Packet{
			Header:  packet.Header{TTL: ttl, MsgID: msgID, Waypoints: wps},
			Payload: []byte("byzantine-live"),
		}).Encode(nil)
		if err != nil {
			panic(err) // static inputs; cannot fail
		}
		return wire
	}
	var out ByzantineLiveResult
	send := func(src string, frame []byte) {
		a.HandleFrameFrom(src, frame)
		out.FramesSent++
	}

	// Fresh frames from an honest peer, one per second (under the rate).
	valid := make([][]byte, 20)
	for i := range valid {
		valid[i] = mk(8, uint64(1000+i), []uint32{0, 1})
		send("peer-honest", valid[i])
		now = now.Add(time.Second)
	}
	// The same frames again from the same source: replays, byte for byte.
	for _, f := range valid {
		send("peer-honest", f)
		now = now.Add(time.Second)
	}
	// Forgeries the kernel sanity check refuses: TTL inflated past the
	// network maximum, and a waypoint no city map contains.
	for i := 0; i < 10; i++ {
		send("peer-liar", mk(netTTL+100, uint64(2000+i), []uint32{0, 1}))
		now = now.Add(time.Second)
	}
	for i := 0; i < 5; i++ {
		send("peer-liar", mk(8, uint64(3000+i), []uint32{0, 1 << 30}))
		now = now.Add(time.Second)
	}
	// CRC garbage.
	for i := 0; i < 5; i++ {
		bad := mk(8, uint64(4000+i), []uint32{0, 1})
		bad[len(bad)-1] ^= 0xFF
		send("peer-liar", bad)
		now = now.Add(time.Second)
	}
	// A frozen-clock storm from one source: everything past the burst
	// allowance is shed by the per-source limiter before decode.
	for i := 0; i < 50; i++ {
		send("peer-storm", mk(8, uint64(5000+i), []uint32{0, 1}))
	}

	st := a.Stats()
	out.Received = st.Received
	out.DroppedReplayed = st.DroppedReplayed
	out.DroppedTampered = st.DroppedTampered
	out.DroppedMalformed = st.DroppedMalformed
	out.DroppedRateLimited = st.DroppedRateLimited
	out.PanicsRecovered = st.PanicsRecovered
	return out
}

// ByzantineText renders the sweep and the live leg as an aligned report.
func ByzantineText(r ByzantineResult) string {
	var sb strings.Builder
	sb.WriteString("Byzantine adversaries: delivery vs compromised fraction, defenses off vs on\n")
	fmt.Fprintf(&sb, "%-10s %5s %-4s %5s %5s %7s %10s %9s %9s %9s\n",
		"behavior", "frac", "def", "pairs", "byz", "deliv", "bcast p50", "rejected", "byz viol", "hon viol")
	for _, row := range r.Rows {
		def := "off"
		if row.Defended {
			def = "on"
		}
		rejected := row.RejectedTTL + row.RejectedTampered + row.RejectedRateLimited + row.RejectedGeocast
		fmt.Fprintf(&sb, "%-10s %4.0f%% %-4s %5d %5d %6.1f%% %10.0f %9d %9d %9d\n",
			row.Behavior, 100*row.Frac, def, row.Pairs, row.Compromised,
			100*row.DeliveryRate, row.BroadcastsP50, rejected,
			row.ByzantineViolations, row.HonestViolations)
	}
	l := r.Live
	fmt.Fprintf(&sb, "live agent: %d frames -> %d accepted, drops: %d replayed, %d tampered, %d malformed, %d rate-limited (%d panics)\n",
		l.FramesSent, l.Received, l.DroppedReplayed, l.DroppedTampered,
		l.DroppedMalformed, l.DroppedRateLimited, l.PanicsRecovered)
	return sb.String()
}

// ByzantineCSV renders the sweep rows, then the live leg as a second
// key-value section separated by a blank line.
func ByzantineCSV(r ByzantineResult) string {
	var sb strings.Builder
	sb.WriteString("behavior,frac,defended,pairs,compromised,delivery_rate,bcast_p50," +
		"grayhole_drops,replayed_frames,forged_broadcasts," +
		"rejected_ttl,rejected_tampered,rejected_rate,rejected_geocast," +
		"byz_violations,honest_violations\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s,%.2f,%v,%d,%d,%.4f,%.1f,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			row.Behavior, row.Frac, row.Defended, row.Pairs, row.Compromised,
			row.DeliveryRate, row.BroadcastsP50,
			row.GrayholeDrops, row.ReplayedFrames, row.ForgedBroadcasts,
			row.RejectedTTL, row.RejectedTampered, row.RejectedRateLimited, row.RejectedGeocast,
			row.ByzantineViolations, row.HonestViolations)
	}
	l := r.Live
	sb.WriteString("\nlive_metric,value\n")
	fmt.Fprintf(&sb, "frames_sent,%d\nreceived,%d\ndropped_replayed,%d\ndropped_tampered,%d\ndropped_malformed,%d\ndropped_rate_limited,%d\npanics_recovered,%d\n",
		l.FramesSent, l.Received, l.DroppedReplayed, l.DroppedTampered,
		l.DroppedMalformed, l.DroppedRateLimited, l.PanicsRecovered)
	return sb.String()
}
