package experiments

import (
	"fmt"
	"sort"

	"citymesh/internal/citygen"
)

// RunConfig is the one knob set shared by every registered experiment.
// Zero values select each experiment's own defaults, so `RunConfig{}` runs
// the paper's evaluation setting.
type RunConfig struct {
	// City is the preset for single-city experiments (default "boston").
	City string
	// Cities lists presets for multi-city experiments (figure6,
	// resilience); empty means all presets.
	Cities []string
	// Scale shrinks preset extents (0 < Scale <= 1); 0 means full size.
	Scale float64
	// Seed drives all sampling and simulation randomness (default 1).
	Seed int64
	// Pairs overrides the experiment's sample size where one applies.
	Pairs int
	// Parallelism is the runner worker count: 0 or negative uses
	// GOMAXPROCS, 1 forces serial. Results are byte-identical either way.
	Parallelism int
	// FederationCities caps the federation experiment's size sweep: the
	// default sizes up to and including this count (0 = the full default
	// sweep to 100 cities).
	FederationCities int
	// FederationTopology names the federation link graph shape (line,
	// ring, hub, mesh); empty selects the experiment default.
	FederationTopology string
	// LinkFailFracs overrides the federation experiment's link-failure
	// arms (nil = the experiment default).
	LinkFailFracs []float64
}

// withDefaults fills the zero fields shared across experiments.
func (c RunConfig) withDefaults() RunConfig {
	if c.City == "" {
		c.City = "boston"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is what every experiment returns: a rendered text table and a CSV
// document of the same data.
type Result interface {
	Text() string
	CSV() string
}

// textCSV is the concrete Result: experiments render both forms eagerly,
// so a Result is plain data safe to hold, diff, or ship across goroutines.
type textCSV struct {
	text string
	csv  string
}

func (r textCSV) Text() string { return r.text }
func (r textCSV) CSV() string  { return r.csv }

// Experiment is one registered evaluation: a stable name for CLI/bench
// lookup and a Run that maps the shared RunConfig onto the experiment's
// own parameters.
type Experiment interface {
	Name() string
	Run(cfg RunConfig) (Result, error)
}

// expFunc adapts a closure to Experiment.
type expFunc struct {
	name string
	run  func(cfg RunConfig) (Result, error)
}

func (e expFunc) Name() string                      { return e.name }
func (e expFunc) Run(cfg RunConfig) (Result, error) { return e.run(cfg) }

// Lookup returns the registered experiment with the given name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}

// Names lists the registered experiment names, sorted.
func Names() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out
}

// Registry lists every experiment behind the unified API. cmd/citymesh-sim
// (-experiment/-list) and the benchmark harness iterate this instead of
// hand-enumerating the per-file entry points.
func Registry() []Experiment {
	return []Experiment{
		expFunc{"measurement", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			res, err := MeasurementStudy(cfg.Seed, cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			return textCSV{
				text: res.Table1Text() + res.Figure1Text(),
				csv:  res.CSV(),
			}, nil
		}},
		expFunc{"figure6", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			f6 := Figure6Config{
				Cities: cfg.Cities, Seed: cfg.Seed, Scale: cfg.Scale,
				Parallelism: cfg.Parallelism,
			}
			if cfg.Pairs > 0 {
				f6.DeliverPairs = cfg.Pairs
			}
			rows, err := Figure6(f6)
			if err != nil {
				return nil, err
			}
			return textCSV{text: Figure6Text(rows), csv: Figure6CSV(rows)}, nil
		}},
		expFunc{"resilience", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			rc := ResilienceConfig{
				Cities: cfg.Cities, Seed: cfg.Seed, Scale: cfg.Scale,
				Pairs: cfg.Pairs, Parallelism: cfg.Parallelism,
			}
			rows, err := Resilience(rc)
			if err != nil {
				return nil, err
			}
			return textCSV{text: ResilienceText(rows), csv: ResilienceCSV(rows)}, nil
		}},
		expFunc{"selfhealing", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			sc := DefaultSelfHealingConfig()
			if len(cfg.Cities) > 0 {
				sc.City = cfg.Cities[0]
			} else if cfg.City != "boston" {
				sc.City = cfg.City
			}
			sc.Seed = cfg.Seed
			sc.Scale = cfg.Scale
			sc.Parallelism = cfg.Parallelism
			if cfg.Pairs > 0 {
				sc.Pairs = cfg.Pairs
			}
			res, err := SelfHealing(sc)
			if err != nil {
				return nil, err
			}
			return textCSV{text: SelfHealingText(res), csv: SelfHealingCSV(res)}, nil
		}},
		expFunc{"headers", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			res, err := HeaderSizes(cfg.City, cfg.Scale, cfg.Seed, cfg.Pairs, cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			return textCSV{text: res.Text(), csv: res.CSV()}, nil
		}},
		expFunc{"conduit-width", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			rows, err := ConduitWidthSweep(cfg.City, cfg.Scale, cfg.Seed, nil, cfg.Pairs, cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			return textCSV{
				text: AblationText("A1: conduit width sweep", rows),
				csv:  AblationCSV(rows),
			}, nil
		}},
		expFunc{"weight-exponent", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			rows, err := WeightExponentSweep(cfg.City, cfg.Scale, cfg.Seed, nil, cfg.Pairs, cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			return textCSV{
				text: AblationText("A2: edge-weight exponent sweep", rows),
				csv:  AblationCSV(rows),
			}, nil
		}},
		expFunc{"baselines", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			rows, err := BaselineComparison(cfg.City, cfg.Scale, cfg.Seed, cfg.Pairs, cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			return textCSV{
				text: AblationText("A3: policy baselines", rows),
				csv:  AblationCSV(rows),
			}, nil
		}},
		expFunc{"failure-injection", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			rows, err := FailureInjection(cfg.City, cfg.Scale, cfg.Seed, nil, cfg.Pairs, cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			return textCSV{
				text: AblationText("A4: random AP failure", rows),
				csv:  AblationCSV(rows),
			}, nil
		}},
		expFunc{"security", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			rows, err := MultipathUnderAttack(cfg.City, cfg.Scale, cfg.Seed, nil, nil, cfg.Pairs, cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			return textCSV{text: SecurityText(rows), csv: SecurityCSV(rows)}, nil
		}},
		expFunc{"radio", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			rows, err := RadioModelSweep(cfg.City, cfg.Scale, cfg.Seed, cfg.Pairs, cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			return textCSV{text: RadioText(rows), csv: RadioCSV(rows)}, nil
		}},
		expFunc{"parity", func(cfg RunConfig) (Result, error) {
			results, err := Parity()
			if err != nil {
				return nil, err
			}
			return textCSV{text: ParityText(results), csv: ParityCSV(results)}, nil
		}},
		expFunc{"overload", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			oc := DefaultOverloadConfig()
			if len(cfg.Cities) > 0 {
				oc.City = cfg.Cities[0]
			} else if cfg.City != "boston" {
				oc.City = cfg.City
			}
			oc.Seed = cfg.Seed
			if cfg.Scale > 0 {
				oc.Scale = cfg.Scale
			}
			oc.Parallelism = cfg.Parallelism
			if cfg.Pairs > 0 {
				// The shared -pairs knob sizes the user population here.
				oc.Users = cfg.Pairs
			}
			rows, err := Overload(oc)
			if err != nil {
				return nil, err
			}
			return textCSV{text: OverloadText(rows), csv: OverloadCSV(rows)}, nil
		}},
		expFunc{"datamule", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			dc := DataMuleConfig{
				Scale: cfg.Scale, Seed: cfg.Seed,
				Pairs: cfg.Pairs, Parallelism: cfg.Parallelism,
			}
			if len(cfg.Cities) > 0 {
				dc.City = cfg.Cities[0]
			} else if cfg.City != "boston" {
				// The shared default ("boston") is not a river-split city;
				// the experiment's own default ("dc") is.
				dc.City = cfg.City
			}
			rows, err := DataMule(dc)
			if err != nil {
				return nil, err
			}
			return textCSV{text: DataMuleText(rows), csv: DataMuleCSV(rows)}, nil
		}},
		expFunc{"floodfront", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			fc := FloodFrontStudyConfig{
				City: cfg.City, Scale: cfg.Scale, Seed: cfg.Seed,
				Pairs: cfg.Pairs, Parallelism: cfg.Parallelism,
			}
			if len(cfg.Cities) > 0 {
				fc.City = cfg.Cities[0]
			}
			rows, err := FloodFrontStudy(fc)
			if err != nil {
				return nil, err
			}
			return textCSV{text: FloodFrontText(rows), csv: FloodFrontCSV(rows)}, nil
		}},
		expFunc{"byzantine", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			bc := DefaultByzantineConfig()
			if len(cfg.Cities) > 0 {
				bc.City = cfg.Cities[0]
			} else if cfg.City != "boston" {
				// The shared default ("boston") is overridden by the
				// experiment's own default ("gridtown") unless the user
				// asked for a specific city.
				bc.City = cfg.City
			}
			bc.Seed = cfg.Seed
			bc.Scale = cfg.Scale
			bc.Parallelism = cfg.Parallelism
			if cfg.Pairs > 0 {
				bc.Pairs = cfg.Pairs
			}
			res, err := Byzantine(bc)
			if err != nil {
				return nil, err
			}
			return textCSV{text: ByzantineText(res), csv: ByzantineCSV(res)}, nil
		}},
		expFunc{"federation", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			fc := DefaultFederationConfig()
			fc.Seed = cfg.Seed
			fc.Parallelism = cfg.Parallelism
			if cfg.Pairs > 0 {
				fc.Pairs = cfg.Pairs
			}
			if cfg.FederationTopology != "" {
				topo, err := citygen.ParseTopology(cfg.FederationTopology)
				if err != nil {
					return nil, err
				}
				fc.Topology = topo
			}
			if cfg.FederationCities > 0 {
				fc.Sizes = federationSizesUpTo(cfg.FederationCities)
			}
			if len(cfg.LinkFailFracs) > 0 {
				fc.LinkFailFracs = cfg.LinkFailFracs
			}
			rows, err := FederationSweep(fc)
			if err != nil {
				return nil, err
			}
			return textCSV{text: FederationText(rows), csv: FederationCSV(rows)}, nil
		}},
		expFunc{"geocast", func(cfg RunConfig) (Result, error) {
			cfg = cfg.withDefaults()
			rows, err := GeocastSweep(cfg.City, cfg.Scale, cfg.Seed, nil, cfg.Pairs, cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			return textCSV{text: GeocastText(rows), csv: GeocastCSV(rows)}, nil
		}},
	}
}

// RunByName looks up and runs one experiment; unknown names list the
// registry in the error.
func RunByName(name string, cfg RunConfig) (Result, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.Run(cfg)
}
