package experiments

import (
	"strings"
	"testing"

	"citymesh/internal/session"
)

// The overload sweep joins the byte-identical-at-any-parallelism
// guarantee: cells are runner tasks with SplitMix64 seeds, folded in index
// order.
func TestOverloadParallelMatchesSerial(t *testing.T) {
	run := func(par int) ([]OverloadRow, error) {
		return Overload(OverloadConfig{
			Scale:       0.3,
			FailFracs:   []float64{0.3},
			Loads:       []float64{1, 4},
			Users:       30,
			Ticks:       20,
			Seed:        1,
			Parallelism: par,
		})
	}
	serial, err := run(1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if got, want := OverloadText(parallel), OverloadText(serial); got != want {
		t.Errorf("Text() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := OverloadCSV(parallel), OverloadCSV(serial); got != want {
		t.Errorf("CSV() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

// The acceptance shape of the experiment: under a 4x flash crowd on a 30%
// AP failure, the session layer degrades gracefully — accepted-message p99
// latency stays bounded by the queue discipline (it cannot exceed the run
// duration, and the queue bound pins the wait component), and every
// offered message is attributed to exactly one outcome.
func TestOverloadGracefulDegradationAt4x30(t *testing.T) {
	rows, err := Overload(OverloadConfig{
		FailFracs: []float64{0.3},
		Loads:     []float64{4},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if err := r.AccountingError(); err != nil {
		t.Fatal(err)
	}
	if r.Offered == 0 || r.Delivered == 0 {
		t.Fatalf("no traffic delivered under overload: %+v", r)
	}
	duration := float64(r.Ticks)
	if r.LatencyP99 <= 0 || r.LatencyP99 >= duration {
		t.Fatalf("p99 latency %v not in (0, %v): degradation is not graceful", r.LatencyP99, duration)
	}
	if r.PeakTier < session.TierCongested {
		t.Fatalf("admission never tightened under 4x flash crowd: peak tier %v", r.PeakTier)
	}
	rejected := r.RejectedAdmission + r.RejectedRateLimit + r.RejectedBufferFull
	if rejected == 0 {
		t.Fatalf("overload produced no rejections: %+v", r)
	}
	if r.Residual != 0 {
		t.Fatalf("unattributed residual messages: %+v", r)
	}
}

func TestOverloadRenderers(t *testing.T) {
	rows := []OverloadRow{{City: "x", Mode: "disk", FailFrac: 0.3, Load: 4}}
	rows[0].Offered = 10
	rows[0].Accepted = 8
	rows[0].Delivered = 7
	rows[0].DroppedNetworkExhausted = 1
	rows[0].RejectedAdmission = 2
	text := OverloadText(rows)
	if !strings.Contains(text, "x") || !strings.Contains(text, "4x") {
		t.Fatalf("text table missing cells:\n%s", text)
	}
	csv := OverloadCSV(rows)
	if !strings.HasPrefix(csv, "city,mode,load,fail_frac") || !strings.Contains(csv, "x,disk,4.00,0.30") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}
