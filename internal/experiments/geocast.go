package experiments

import (
	"fmt"

	"citymesh/internal/apps"
	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// GeocastRow is one target-radius setting of the A7 experiment: coverage
// and cost of area-addressed messaging (§1's "geospatial messaging").
type GeocastRow struct {
	RadiusM       float64
	Casts         int
	CoverageP50   float64
	CoverageMean  float64
	BroadcastsP50 float64
	APsInAreaP50  float64
}

// GeocastSweep sends geocasts to random in-city target discs of each
// radius from random sources and measures in-area AP coverage.
func GeocastSweep(cityName string, scale float64, seed int64, radii []float64, casts int) ([]GeocastRow, error) {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	if len(radii) == 0 {
		radii = []float64{100, 200, 400}
	}
	if casts <= 0 {
		casts = 15
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return nil, err
	}

	rows := make([]GeocastRow, 0, len(radii))
	for _, radius := range radii {
		row := GeocastRow{RadiusM: radius}
		var coverages, bcasts, inArea []float64
		pairs, err := n.RandomPairs(seed, casts*6)
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			if row.Casts >= casts {
				break
			}
			src := p[0]
			center := n.City.Buildings[p[1]].Centroid
			anchor := n.Graph.NearestBuilding(center)
			if anchor < 0 || !n.Reachable(src, anchor) {
				continue
			}
			simCfg := sim.DefaultConfig()
			simCfg.Seed = seed
			res, err := apps.Geocast(n, src, center, radius, nil, simCfg)
			if err != nil || res.APsInArea == 0 {
				continue
			}
			row.Casts++
			coverages = append(coverages, res.Coverage())
			bcasts = append(bcasts, float64(res.Broadcasts))
			inArea = append(inArea, float64(res.APsInArea))
		}
		if len(coverages) > 0 {
			row.CoverageP50 = stats.Percentile(coverages, 50)
			row.CoverageMean = stats.Mean(coverages)
			row.BroadcastsP50 = stats.Percentile(bcasts, 50)
			row.APsInAreaP50 = stats.Percentile(inArea, 50)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GeocastText renders the sweep.
func GeocastText(rows []GeocastRow) string {
	out := fmt.Sprintf("A7: geocast coverage by target radius\n%-10s %6s %9s %9s %10s %10s\n",
		"radius", "casts", "cov p50", "cov mean", "bcast p50", "APs p50")
	for _, r := range rows {
		out += fmt.Sprintf("%7.0f m %6d %8.1f%% %8.1f%% %10.0f %10.0f\n",
			r.RadiusM, r.Casts, 100*r.CoverageP50, 100*r.CoverageMean, r.BroadcastsP50, r.APsInAreaP50)
	}
	return out
}
