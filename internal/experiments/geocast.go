package experiments

import (
	"fmt"

	"citymesh/internal/apps"
	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// GeocastRow is one target-radius setting of the A7 experiment: coverage
// and cost of area-addressed messaging (§1's "geospatial messaging").
type GeocastRow struct {
	RadiusM       float64
	Casts         int
	CoverageP50   float64
	CoverageMean  float64
	BroadcastsP50 float64
	APsInAreaP50  float64
}

// GeocastSweep sends geocasts to random in-city target discs of each
// radius from random sources and measures in-area AP coverage. Candidate
// casts run as parallel tasks in index-seeded chunks; the first `casts`
// successful candidates in index order are kept, so the accepted set — and
// therefore the output — is the same at any parallelism.
func GeocastSweep(cityName string, scale float64, seed int64, radii []float64, casts, par int) ([]GeocastRow, error) {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	if len(radii) == 0 {
		radii = []float64{100, 200, 400}
	}
	if casts <= 0 {
		casts = 15
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return nil, err
	}

	rows := make([]GeocastRow, 0, len(radii))
	for _, radius := range radii {
		row := GeocastRow{RadiusM: radius}
		var coverages, bcasts, inArea []float64
		pairs, err := n.RandomPairs(seed, casts*6)
		if err != nil {
			return nil, err
		}
		type outcome struct {
			ok                       bool
			coverage, bcast, apsArea float64
		}
		// Chunked candidate scan: each chunk runs in parallel, seeded by
		// the candidate's global index, and the fold accepts successes in
		// index order until the quota fills. Which candidates are accepted
		// depends only on their index-derived outcomes, never on chunk
		// boundaries or worker scheduling.
		for idx := 0; row.Casts < casts && idx < len(pairs); {
			chunk := casts - row.Casts
			if p := runner.Parallelism(par); chunk < p {
				chunk = p
			}
			if idx+chunk > len(pairs) {
				chunk = len(pairs) - idx
			}
			outs := runner.Map(par, chunk, func(k int) outcome {
				p := pairs[idx+k]
				src := p[0]
				center := n.City.Buildings[p[1]].Centroid
				anchor := n.Graph.NearestBuilding(center)
				if anchor < 0 || !n.Reachable(src, anchor) {
					return outcome{}
				}
				simCfg := sim.DefaultConfig()
				simCfg.Seed = runner.TaskSeed(seed, idx+k)
				res, err := apps.Geocast(n, src, center, radius, nil, simCfg)
				if err != nil || res.APsInArea == 0 {
					return outcome{}
				}
				return outcome{
					ok: true, coverage: res.Coverage(),
					bcast: float64(res.Broadcasts), apsArea: float64(res.APsInArea),
				}
			})
			for _, o := range outs {
				if row.Casts >= casts {
					break
				}
				if !o.ok {
					continue
				}
				row.Casts++
				coverages = append(coverages, o.coverage)
				bcasts = append(bcasts, o.bcast)
				inArea = append(inArea, o.apsArea)
			}
			idx += chunk
		}
		if len(coverages) > 0 {
			row.CoverageP50 = stats.Percentile(coverages, 50)
			row.CoverageMean = stats.Mean(coverages)
			row.BroadcastsP50 = stats.Percentile(bcasts, 50)
			row.APsInAreaP50 = stats.Percentile(inArea, 50)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GeocastCSV renders the sweep as CSV.
func GeocastCSV(rows []GeocastRow) string {
	out := "radius_m,casts,coverage_p50,coverage_mean,bcast_p50,aps_in_area_p50\n"
	for _, r := range rows {
		out += fmt.Sprintf("%.0f,%d,%.4f,%.4f,%.1f,%.1f\n",
			r.RadiusM, r.Casts, r.CoverageP50, r.CoverageMean, r.BroadcastsP50, r.APsInAreaP50)
	}
	return out
}

// GeocastText renders the sweep.
func GeocastText(rows []GeocastRow) string {
	out := fmt.Sprintf("A7: geocast coverage by target radius\n%-10s %6s %9s %9s %10s %10s\n",
		"radius", "casts", "cov p50", "cov mean", "bcast p50", "APs p50")
	for _, r := range rows {
		out += fmt.Sprintf("%7.0f m %6d %8.1f%% %8.1f%% %10.0f %10.0f\n",
			r.RadiusM, r.Casts, 100*r.CoverageP50, 100*r.CoverageMean, r.BroadcastsP50, r.APsInAreaP50)
	}
	return out
}
