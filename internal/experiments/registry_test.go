package experiments

import (
	"strings"
	"testing"
)

func TestRegistryNamesUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		name := e.Name()
		if name == "" {
			t.Fatal("registered experiment with empty name")
		}
		if seen[name] {
			t.Fatalf("duplicate experiment name %q", name)
		}
		seen[name] = true
	}
	if len(seen) < 10 {
		t.Fatalf("registry has only %d experiments; expected the full evaluation", len(seen))
	}
}

func TestLookupAndNames(t *testing.T) {
	names := Names()
	if len(names) != len(Registry()) {
		t.Fatalf("Names() returned %d entries for %d experiments", len(names), len(Registry()))
	}
	for _, name := range names {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed for a listed name", name)
		}
		if e.Name() != name {
			t.Fatalf("Lookup(%q) returned experiment named %q", name, e.Name())
		}
	}
	if _, ok := Lookup("no-such-experiment"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
}

func TestRunByNameProducesTextAndCSV(t *testing.T) {
	res, err := RunByName("headers", RunConfig{
		City: "gridtown", Scale: 0.4, Seed: 1, Pairs: 20, Parallelism: 1,
	})
	if err != nil {
		t.Fatalf("RunByName(headers): %v", err)
	}
	if !strings.Contains(res.Text(), "Header sizes") {
		t.Errorf("Text() missing table header:\n%s", res.Text())
	}
	if !strings.HasPrefix(res.CSV(), "city,") {
		t.Errorf("CSV() missing header row:\n%s", res.CSV())
	}
}

func TestRunByNameUnknown(t *testing.T) {
	if _, err := RunByName("bogus", RunConfig{}); err == nil {
		t.Fatal("expected error for unknown experiment name")
	}
}

func TestRunByNameUnknownCityPropagates(t *testing.T) {
	if _, err := RunByName("geocast", RunConfig{City: "nope", Parallelism: 1}); err == nil {
		t.Fatal("expected unknown-city error to propagate through the registry")
	}
}
