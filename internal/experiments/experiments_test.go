package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"citymesh/internal/citygen"
)

func TestMeasurementStudy(t *testing.T) {
	res, err := MeasurementStudy(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, area := range res.Areas {
		row, ok := res.Rows[area]
		if !ok {
			t.Fatalf("missing area %s", area)
		}
		if row.Measurements == 0 {
			t.Errorf("%s: no measurements", area)
		}
		if row.UniqueAPs == 0 {
			t.Errorf("%s: no APs detected", area)
		}
	}
	// Density ordering: downtown sees more MACs per measurement than the
	// river bank (paper: medians 218 vs 60).
	dt := res.MACsPerMeasurement["downtown"].Quantile(0.5)
	rv := res.MACsPerMeasurement["river"].Quantile(0.5)
	if !(dt > rv) {
		t.Errorf("downtown median %v should exceed river %v", dt, rv)
	}
	// Spread medians exist and are positive.
	for _, area := range res.Areas {
		if s := res.Spread[area].Quantile(0.5); !(s > 0) || math.IsNaN(s) {
			t.Errorf("%s spread median = %v", area, s)
		}
	}
	for _, txt := range []string{res.Table1Text(), res.Figure1Text(), res.Figure2Text(), res.CSV()} {
		if txt == "" {
			t.Error("empty rendering")
		}
	}
	if !strings.Contains(res.Table1Text(), "downtown") {
		t.Error("Table1Text missing areas")
	}
}

func TestFigure6SmallScale(t *testing.T) {
	cfg := Figure6Config{
		Cities:       []string{"gridtown", "dc"},
		ReachPairs:   120,
		DeliverPairs: 10,
		Seed:         1,
		Scale:        0.35,
	}
	rows, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byCity := map[string]Figure6Row{}
	for _, r := range rows {
		byCity[r.City] = r
		if r.Buildings == 0 || r.APs == 0 {
			t.Errorf("%s: empty city", r.City)
		}
		if r.Reachability < 0 || r.Reachability > 1 {
			t.Errorf("%s: reachability %v", r.City, r.Reachability)
		}
	}
	// The gap-free grid must beat the river-fractured DC on reachability.
	if byCity["gridtown"].Reachability <= byCity["dc"].Reachability {
		t.Errorf("gridtown %.2f should out-reach dc %.2f",
			byCity["gridtown"].Reachability, byCity["dc"].Reachability)
	}
	// DC should fracture into multiple islands.
	if byCity["dc"].Islands < 2 {
		t.Errorf("dc islands = %d, want >= 2", byCity["dc"].Islands)
	}
	if Figure6Text(rows) == "" || Figure6CSV(rows) == "" {
		t.Error("empty renderings")
	}
	if _, err := Figure6(Figure6Config{Cities: []string{"nope"}}); err == nil {
		t.Error("unknown city should error")
	}
}

func TestFigure6GridtownDelivers(t *testing.T) {
	rows, err := Figure6(Figure6Config{
		Cities: []string{"gridtown"}, ReachPairs: 100, DeliverPairs: 12, Seed: 2, Scale: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Reachability < 0.9 {
		t.Errorf("gridtown reachability = %.2f, want ~1", r.Reachability)
	}
	if r.Deliverability < 0.7 {
		t.Errorf("gridtown deliverability = %.2f", r.Deliverability)
	}
	if r.OverheadMedian < 1 {
		t.Errorf("overhead median = %.2f < 1", r.OverheadMedian)
	}
}

func TestFigure5Renders(t *testing.T) {
	var a, b bytes.Buffer
	if err := Figure5("gridtown", 0.3, &a, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), "<svg") || !strings.Contains(b.String(), "<svg") {
		t.Error("missing SVG output")
	}
	if len(b.String()) < len(a.String()) {
		t.Error("mesh panel should be larger (links + dots)")
	}
	if err := Figure5("nope", 1, &a, &b); err == nil {
		t.Error("unknown city should error")
	}
}

func TestFigure7Renders(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure7("gridtown", 0.3, 3, 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("missing SVG")
	}
	if res.Forwarded == 0 {
		t.Error("no forwarding APs in figure")
	}
	if res.Broadcasts == 0 {
		t.Error("no broadcasts")
	}
	if _, err := Figure7("nope", 1, 1, 1, &buf); err == nil {
		t.Error("unknown city should error")
	}
}

func TestHeaderSizes(t *testing.T) {
	res, err := HeaderSizes("gridtown", 0.4, 1, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Routes == 0 {
		t.Fatal("no routes sampled")
	}
	// Compression must not grow the route.
	if res.Waypoints.P50 > res.UncompressedWps.P50 {
		t.Errorf("waypoints p50 %v > uncompressed %v", res.Waypoints.P50, res.UncompressedWps.P50)
	}
	// Bits should land in the paper's order of magnitude (tens to a few
	// hundred bits).
	if res.RouteBits.P50 < 16 || res.RouteBits.P50 > 600 {
		t.Errorf("route bits p50 = %v", res.RouteBits.P50)
	}
	if res.FullHeaderBits.P50 <= res.RouteBits.P50 {
		t.Error("full header must exceed route encoding")
	}
	// The federation prefix is small and constant-order; the hierarchical
	// header is the full header plus the prefix.
	if res.PrefixBits.P50 <= 0 || res.PrefixBits.P90 > 64 {
		t.Errorf("prefix bits p50=%v p90=%v", res.PrefixBits.P50, res.PrefixBits.P90)
	}
	if res.HierHeaderBits.P50 <= res.FullHeaderBits.P50 ||
		res.HierHeaderBits.Max > res.FullHeaderBits.Max+res.PrefixBits.Max {
		t.Errorf("hier header (p50 %v, max %v) inconsistent with full (p50 %v, max %v) + prefix (max %v)",
			res.HierHeaderBits.P50, res.HierHeaderBits.Max,
			res.FullHeaderBits.P50, res.FullHeaderBits.Max, res.PrefixBits.Max)
	}
	if res.Text() == "" {
		t.Error("empty text")
	}
	if _, err := HeaderSizes("nope", 1, 1, 10, 1); err == nil {
		t.Error("unknown city should error")
	}
}

func TestConduitWidthSweep(t *testing.T) {
	rows, err := ConduitWidthSweep("gridtown", 0.3, 1, []float64{30, 80}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Wider conduits must broadcast at least as much.
	if rows[1].BroadcastsP50 < rows[0].BroadcastsP50 {
		t.Errorf("W=80 broadcasts %v < W=30 %v", rows[1].BroadcastsP50, rows[0].BroadcastsP50)
	}
	if AblationText("t", rows) == "" {
		t.Error("empty text")
	}
	if _, err := ConduitWidthSweep("nope", 1, 1, nil, 1, 1); err == nil {
		t.Error("unknown city should error")
	}
}

func TestWeightExponentSweep(t *testing.T) {
	rows, err := WeightExponentSweep("gridtown", 0.3, 1, []float64{1, 3}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Pairs == 0 {
			t.Errorf("%s: no pairs", r.Label)
		}
	}
	if _, err := WeightExponentSweep("nope", 1, 1, nil, 1, 1); err == nil {
		t.Error("unknown city should error")
	}
}

func TestBaselineComparison(t *testing.T) {
	rows, err := BaselineComparison("gridtown", 0.3, 1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	cm, okCM := byLabel["citymesh"]
	fl, okFL := byLabel["flood"]
	if !okCM || !okFL {
		t.Fatalf("missing rows: %v", byLabel)
	}
	if fl.Deliverability < cm.Deliverability {
		t.Errorf("flood %.2f under-delivers citymesh %.2f", fl.Deliverability, cm.Deliverability)
	}
	if cm.BroadcastsP50 >= fl.BroadcastsP50 {
		t.Errorf("citymesh broadcasts %v >= flood %v", cm.BroadcastsP50, fl.BroadcastsP50)
	}
	if _, ok := byLabel["aodv-model"]; !ok {
		t.Error("missing AODV row")
	}
	if _, err := BaselineComparison("nope", 1, 1, 1, 1); err == nil {
		t.Error("unknown city should error")
	}
}

func TestFailureInjection(t *testing.T) {
	rows, err := FailureInjection("gridtown", 0.3, 1, []float64{0, 0.6}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Deliverability < rows[1].Deliverability {
		t.Errorf("no-failure deliverability %.2f < 60%%-failure %.2f",
			rows[0].Deliverability, rows[1].Deliverability)
	}
	if _, err := FailureInjection("nope", 1, 1, nil, 1, 1); err == nil {
		t.Error("unknown city should error")
	}
}

func TestFailSet(t *testing.T) {
	if failSet(100, 0, 1) != nil {
		t.Error("zero fraction should be nil")
	}
	f := failSet(10000, 0.3, 1)
	if len(f) < 2500 || len(f) > 3500 {
		t.Errorf("30%% of 10000 = %d failed", len(f))
	}
	// Deterministic.
	g := failSet(10000, 0.3, 1)
	if len(f) != len(g) {
		t.Error("failSet nondeterministic")
	}
}

func TestScaleSpec(t *testing.T) {
	spec, _ := citygen.Preset("dc")
	half := scaleSpec(spec, 0.5)
	if half.Width != spec.Width/2 || half.Height != spec.Height/2 {
		t.Error("extent not scaled")
	}
	if len(half.Rivers) != len(spec.Rivers) || half.Rivers[0].Width != spec.Rivers[0].Width/2 {
		t.Error("river not scaled")
	}
	if half.Parks[0].Rect.Max.X != spec.Parks[0].Rect.Max.X/2 {
		t.Error("park not scaled")
	}
}
