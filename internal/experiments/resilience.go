package experiments

import (
	"fmt"
	"strings"

	"citymesh/internal/adversary"
	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/faults"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// ResilienceRow is one (city, failure mode, failure fraction) cell of the
// disaster-scenario experiment: how often plain conduit routing delivers
// under injected AP failures, how often the full escalation ladder
// delivers, and which rung ends up doing the work.
type ResilienceRow struct {
	City     string
	Mode     faults.Mode
	FailFrac float64
	// Pairs is the number of (pre-failure reachable) building pairs run.
	Pairs int
	// PlainRate is the delivery fraction of a single Send.
	PlainRate float64
	// ReliableRate is the delivery fraction of SendReliable.
	ReliableRate float64
	// RungWins counts, for delivered reliable sends, which ladder rung
	// succeeded (indexed by core.Rung: direct, retry, widen, multipath,
	// flood).
	RungWins [core.NumRungs]int
	// PlainBroadcastsP50 and ReliableBroadcastsP50 compare the median
	// transmission cost of the two strategies.
	PlainBroadcastsP50    float64
	ReliableBroadcastsP50 float64
	// LostToDeadAP is the total count of frames that died at failed APs
	// across the plain sends — the injection's direct footprint.
	LostToDeadAP int
}

// ResilienceConfig scales the experiment.
type ResilienceConfig struct {
	// Cities to evaluate; empty means all presets.
	Cities []string
	// Mode is the fault injector to sweep.
	Mode faults.Mode
	// Fracs are the failure fractions to sweep (default 0, 0.1, ..., 0.5).
	Fracs []float64
	// Pairs is the number of building pairs simulated per cell.
	Pairs int
	// Seed drives sampling, injection, and the ladder jitter.
	Seed int64
	// Scale shrinks preset city extents (0 < Scale <= 1) for fast runs.
	Scale float64
	// Reliable configures the ladder; zero-value uses the defaults.
	Reliable core.ReliableConfig
	// Sim overrides the per-send simulator settings (delay, jitter, loss,
	// event cap); nil uses sim.DefaultConfig(). Seed and injected failures
	// are set per task regardless.
	Sim *sim.Config
	// Parallelism is the worker count for the pair sweep: 0 or negative
	// uses GOMAXPROCS, 1 forces serial. Output is byte-identical across
	// parallelism levels for the same seed.
	Parallelism int
	// Adversary, when non-empty, additionally compromises a seeded
	// fraction of each city's APs with this misbehavior (see
	// adversary.Names) — liars and rubble coexist, and a failed liar is
	// simply down.
	Adversary string
	// AdvFrac is the compromised fraction (default 0.2 when Adversary is
	// set).
	AdvFrac float64
	// Defend arms honest receivers with adversary.DefaultDefense.
	Defend bool
}

// DefaultResilienceConfig sweeps uniform failure on every preset.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Mode:  faults.ModeUniform,
		Fracs: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5},
		Pairs: 30,
		Seed:  1,
	}
}

// Resilience sweeps failure fractions across cities and reports delivery
// rates for plain sends versus the resilient ladder.
func Resilience(cfg ResilienceConfig) ([]ResilienceRow, error) {
	cities := cfg.Cities
	if len(cities) == 0 {
		cities = citygen.PresetNames()
	}
	if cfg.Mode == "" {
		cfg.Mode = faults.ModeUniform
	}
	known := false
	for _, m := range faults.Modes() {
		if cfg.Mode == faults.Mode(m) {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("experiments: unknown fault mode %q (have %s)",
			cfg.Mode, strings.Join(faults.Modes(), ", "))
	}
	if len(cfg.Fracs) == 0 {
		cfg.Fracs = DefaultResilienceConfig().Fracs
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = 30
	}
	behavior, err := adversary.Parse(cfg.Adversary)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	if cfg.AdvFrac <= 0 {
		cfg.AdvFrac = 0.2
	}
	if cfg.Sim != nil {
		if err := cfg.Sim.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}
	var rows []ResilienceRow
	for _, name := range cities {
		spec, ok := citygen.Preset(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown city %q", name)
		}
		if cfg.Scale > 0 && cfg.Scale < 1 {
			spec = scaleSpec(spec, cfg.Scale)
		}
		n, err := core.FromSpec(spec, core.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		pairs, err := sampleReachablePairs(n, cfg.Seed, cfg.Pairs)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		// The adversary realization is per city (it indexes the city's
		// mesh) and constant across the failure sweep, so the fraction
		// axis isolates crash faults with the liars held fixed.
		asg := adversary.Select(n.Mesh, behavior, cfg.AdvFrac, cfg.Seed+7777)
		for _, frac := range cfg.Fracs {
			row, err := resilienceCell(n, name, pairs, frac, cfg, asg)
			if err != nil {
				// A mode can be inapplicable to one city (e.g. flooding a
				// waterless preset): report and keep sweeping the rest.
				rows = append(rows, ResilienceRow{City: name, Mode: cfg.Mode, FailFrac: frac})
				continue
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func resilienceCell(n *core.Network, city string, pairs [][2]int, frac float64, cfg ResilienceConfig, asg adversary.Assignment) (ResilienceRow, error) {
	row := ResilienceRow{City: city, Mode: cfg.Mode, FailFrac: frac}
	inj, err := faults.Inject(n.Mesh, n.City, faults.Config{
		Mode: cfg.Mode,
		Frac: frac,
		Seed: cfg.Seed + int64(frac*1000),
	})
	if err != nil {
		return row, err
	}
	rcfg := cfg.Reliable
	if rcfg.MultipathK == 0 && rcfg.Retries == 0 && rcfg.BackoffBase == 0 {
		rcfg = core.DefaultReliableConfig()
	}
	base := sim.DefaultConfig()
	if cfg.Sim != nil {
		base = *cfg.Sim
	}

	// One task per pair on the parallel runner. Each task's randomness
	// derives from (sweep seed, task index) — the same pair sees the same
	// loss/jitter realization at any parallelism — and results fold below
	// in task-index order, exactly as the serial loop did.
	type outcome struct {
		plainRan, plainOK bool
		relRan, relOK     bool
		plainCost         float64
		relCost           float64
		lostToDead        int
		rung              core.Rung
	}
	outs := runner.Map(cfg.Parallelism, len(pairs), func(i int) outcome {
		p := pairs[i]
		seed := runner.TaskSeed(cfg.Seed, i)
		simCfg := base
		simCfg.Seed = seed
		inj.Apply(&simCfg)
		asg.Apply(&simCfg)
		if cfg.Defend {
			simCfg.Defense = adversary.DefaultDefense(n.Cfg.TTL)
		}

		var o outcome
		if res, err := n.Send(p[0], p[1], nil, simCfg); err == nil {
			o.plainRan = true
			o.lostToDead = res.Sim.LostToDeadAP
			o.plainCost = float64(res.Sim.Broadcasts)
			o.plainOK = res.Sim.Delivered
		}
		rc := rcfg
		rc.Seed = seed
		if rr, err := n.SendReliable(p[0], p[1], nil, simCfg, rc); err == nil {
			o.relRan = true
			o.relCost = float64(rr.TotalBroadcasts)
			o.relOK = rr.Delivered
			o.rung = rr.Rung
		}
		return o
	})

	var plainDelivered, reliableDelivered int
	var plainCost, reliableCost []float64
	for _, o := range outs {
		row.Pairs++
		if o.plainRan {
			row.LostToDeadAP += o.lostToDead
			plainCost = append(plainCost, o.plainCost)
			if o.plainOK {
				plainDelivered++
			}
		}
		if o.relRan {
			reliableCost = append(reliableCost, o.relCost)
			if o.relOK {
				reliableDelivered++
				if int(o.rung) < core.NumRungs {
					row.RungWins[o.rung]++
				}
			}
		}
	}
	if row.Pairs > 0 {
		row.PlainRate = float64(plainDelivered) / float64(row.Pairs)
		row.ReliableRate = float64(reliableDelivered) / float64(row.Pairs)
	}
	if len(plainCost) > 0 {
		row.PlainBroadcastsP50 = stats.Percentile(plainCost, 50)
	}
	if len(reliableCost) > 0 {
		row.ReliableBroadcastsP50 = stats.Percentile(reliableCost, 50)
	}
	return row, nil
}

// rungNames labels RungWins columns in ladder order.
var rungNames = [core.NumRungs]string{"direct", "retry", "widen", "mpath", "flood"}

// ResilienceText renders the sweep as an aligned table.
func ResilienceText(rows []ResilienceRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Resilience: delivery rate vs failure fraction (plain Send vs SendReliable ladder)\n")
	fmt.Fprintf(&sb, "%-14s %-8s %6s %6s %7s %8s %9s %9s  %s\n",
		"city", "mode", "fail", "pairs", "plain", "ladder", "bcast p50", "ladder p50", "rung wins")
	for _, r := range rows {
		var wins []string
		for i, w := range r.RungWins {
			if w > 0 {
				wins = append(wins, fmt.Sprintf("%s:%d", rungNames[i], w))
			}
		}
		if r.Pairs == 0 {
			wins = []string{"(mode inapplicable to this city)"}
		}
		fmt.Fprintf(&sb, "%-14s %-8s %5.0f%% %6d %6.1f%% %7.1f%% %9.0f %10.0f  %s\n",
			r.City, r.Mode, 100*r.FailFrac, r.Pairs,
			100*r.PlainRate, 100*r.ReliableRate,
			r.PlainBroadcastsP50, r.ReliableBroadcastsP50,
			strings.Join(wins, " "))
	}
	return sb.String()
}

// ResilienceCSV renders the sweep as CSV.
func ResilienceCSV(rows []ResilienceRow) string {
	var sb strings.Builder
	sb.WriteString("city,mode,fail_frac,pairs,plain_rate,reliable_rate,plain_bcast_p50,reliable_bcast_p50")
	for _, n := range rungNames {
		sb.WriteString(",wins_" + n)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%s,%.2f,%d,%.4f,%.4f,%.1f,%.1f",
			r.City, r.Mode, r.FailFrac, r.Pairs, r.PlainRate, r.ReliableRate,
			r.PlainBroadcastsP50, r.ReliableBroadcastsP50)
		for _, w := range r.RungWins {
			fmt.Fprintf(&sb, ",%d", w)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
