package experiments

import (
	"strings"
	"testing"

	"citymesh/internal/faults"
)

// TestSelfHealingAcceptance is the PR 3 acceptance scenario: on gridtown
// under a 30% disk outage, the ladder with route-health memory must
// deliver at least as often as the plain ladder for strictly fewer total
// broadcasts, and the store-and-heal phase must deliver >=90% of parked
// messages once the outage recovers, reporting time-to-heal.
func TestSelfHealingAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("self-healing sweep is slow")
	}
	cfg := DefaultSelfHealingConfig()
	cfg.Scale = 0.35
	cfg.Pairs = 25
	res, err := SelfHealing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", SelfHealingText(res))
	if res.Pairs == 0 {
		t.Fatal("no pairs were simulated")
	}
	if res.HealthRate < res.LadderRate {
		t.Errorf("health ladder delivers %.2f, below plain ladder %.2f", res.HealthRate, res.LadderRate)
	}
	if res.HealthBroadcasts >= res.LadderBroadcasts {
		t.Errorf("health ladder cost %d broadcasts, plain ladder %d — memory saved nothing",
			res.HealthBroadcasts, res.LadderBroadcasts)
	}
	if res.HealthDirectWins <= res.LadderDirectWins {
		t.Errorf("health direct wins %d not above plain %d — no learned rerouting",
			res.HealthDirectWins, res.LadderDirectWins)
	}
	if res.Suspects == 0 {
		t.Error("health map learned nothing from a 30% disk outage")
	}
	if res.Parked == 0 {
		t.Fatal("disk outage at 30% should leave some pairs partitioned and parked")
	}
	if res.HealedFraction < 0.9 {
		t.Errorf("only %.0f%% of parked messages healed, want >=90%%", 100*res.HealedFraction)
	}
	if res.TimeToHealP50 < res.RecoverAt {
		t.Errorf("time-to-heal p50 %.1fs predates the recovery at %.1fs", res.TimeToHealP50, res.RecoverAt)
	}
}

// TestSelfHealingDeterministic: the whole experiment — sampling,
// injection, both ladders, the healing scheduler — reproduces exactly
// under a fixed seed.
func TestSelfHealingDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("self-healing sweep is slow")
	}
	cfg := DefaultSelfHealingConfig()
	cfg.Scale = 0.35
	cfg.Pairs = 15
	a, err := SelfHealing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelfHealing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic experiment:\n%+v\n%+v", a, b)
	}
}

// TestSelfHealingChurn exercises the time-varying injector path: under
// churn the schedule already brings APs back, so the run must complete
// and classify sensibly without a recovery wrapper.
func TestSelfHealingChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("self-healing sweep is slow")
	}
	cfg := DefaultSelfHealingConfig()
	cfg.Mode = faults.ModeChurn
	cfg.Frac = 0.3
	cfg.Scale = 0.3
	cfg.Pairs = 10
	res, err := SelfHealing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs were simulated")
	}
	if res.HealthRate < res.LadderRate {
		t.Errorf("health ladder %.2f below plain %.2f under churn", res.HealthRate, res.LadderRate)
	}
}

func TestSelfHealingRejectsUnknownCity(t *testing.T) {
	cfg := DefaultSelfHealingConfig()
	cfg.City = "atlantis"
	if _, err := SelfHealing(cfg); err == nil {
		t.Fatal("unknown city should error")
	}
}

func TestSelfHealingRenderers(t *testing.T) {
	r := SelfHealingResult{
		City: "gridtown", Mode: faults.ModeDisk, Frac: 0.3, Pairs: 10,
		LadderRate: 0.7, LadderBroadcasts: 1000,
		HealthRate: 0.8, HealthBroadcasts: 800,
		RecoverAt: 60, Undeliverable: 2, Parked: 2, Healed: 2,
		HealedFraction: 1, TimeToHealP50: 75,
	}
	text := SelfHealingText(r)
	for _, want := range []string{"ladder+health", "store-and-heal", "time-to-heal"} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}
	csv := SelfHealingCSV(r)
	if lines := strings.Split(strings.TrimSpace(csv), "\n"); len(lines) != 2 {
		t.Fatalf("csv should be header + 1 row:\n%s", csv)
	}
	if !strings.Contains(csv, "gridtown,disk,0.30,10") {
		t.Errorf("csv row malformed:\n%s", csv)
	}
}
