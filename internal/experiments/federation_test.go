package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// smallFederationConfig keeps the sweep cheap for tests while still
// exercising every arm: two sizes, healthy + half-links-down + dead
// primary gateway.
func smallFederationConfig() FederationConfig {
	cfg := DefaultFederationConfig()
	cfg.Sizes = []int{2, 6}
	cfg.LinkFailFracs = []float64{0, 0.5}
	cfg.Pairs = 4
	return cfg
}

func TestFederationSweepScaling(t *testing.T) {
	cfg := smallFederationConfig()
	rows, err := FederationSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// sizes × (fracs + gateway arm)
	if want := 2 * 3; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	byCell := map[[2]int]FederationRow{} // (cities, arm) for the healthy rows
	for _, r := range rows {
		if r.LinkFailFrac == 0 && !r.DeadPrimaryGW {
			byCell[[2]int{r.Cities, 0}] = r
		}
		if r.DeadPrimaryGW {
			byCell[[2]int{r.Cities, 1}] = r
		}
	}
	small, big := byCell[[2]int{2, 0}], byCell[[2]int{6, 0}]
	if small.Sends == 0 || big.Sends == 0 {
		t.Fatalf("missing healthy rows: %+v", rows)
	}
	// The hierarchy's claim: ordinary-AP state does not grow with the
	// federation; the flat baseline does.
	if small.PerAPStateBytes != big.PerAPStateBytes {
		t.Errorf("per-AP state grew: %d -> %d bytes", small.PerAPStateBytes, big.PerAPStateBytes)
	}
	if big.FlatPerAPStateBytes <= small.FlatPerAPStateBytes {
		t.Errorf("flat baseline did not grow: %d -> %d bytes",
			small.FlatPerAPStateBytes, big.FlatPerAPStateBytes)
	}
	if big.GatewayStateBytes <= small.GatewayStateBytes {
		t.Errorf("gateway summary did not grow: %d -> %d bytes",
			small.GatewayStateBytes, big.GatewayStateBytes)
	}
	// Healthy mesh, lossless simulator: everything delivers.
	for _, r := range []FederationRow{small, big} {
		if r.Partitioned != 0 {
			t.Errorf("healthy %d-city federation partitioned %d sends", r.Cities, r.Partitioned)
		}
		if r.DeliveryRate < 1 {
			t.Errorf("healthy %d-city delivery = %.3f, want 1", r.Cities, r.DeliveryRate)
		}
		if r.HierBitsP90 <= 0 || r.FlatBitsP90 <= 0 {
			t.Errorf("%d-city header bits: hier p90 %.0f, flat p90 %.0f",
				r.Cities, r.HierBitsP90, r.FlatBitsP90)
		}
	}
	// The headline scaling claim: the flat source route grows with the
	// federation strictly faster than the hierarchical header.
	hierGrowth := big.HierBitsP90 / small.HierBitsP90
	flatGrowth := big.FlatBitsP90 / small.FlatBitsP90
	if flatGrowth <= hierGrowth {
		t.Errorf("flat header growth %.2fx not above hier growth %.2fx", flatGrowth, hierGrowth)
	}
	// The dead-primary-gateway arm must deliver through the failover.
	gw := byCell[[2]int{6, 1}]
	if gw.DeliveryRate < 1 {
		t.Errorf("dead-primary-gateway delivery = %.3f, want 1 via failover", gw.DeliveryRate)
	}
	if gw.Delivered > 0 && gw.GatewayFailovers == 0 {
		t.Error("dead-primary-gateway arm recorded no failovers")
	}
	// The growth summary line renders.
	text := FederationText(rows)
	if !strings.Contains(text, "growth 2 -> 6 cities") {
		t.Errorf("no growth line in:\n%s", text)
	}
}

func TestFederationParallelMatchesSerial(t *testing.T) {
	cfg := smallFederationConfig()
	cfg.Parallelism = 1
	serial, err := FederationSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	par, err := FederationSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel rows differ from serial:\n%+v\nvs\n%+v", serial, par)
	}
	if FederationText(serial) != FederationText(par) || FederationCSV(serial) != FederationCSV(par) {
		t.Error("rendered output differs between par=1 and par=8")
	}
}

func TestFederationSizesUpTo(t *testing.T) {
	if got := federationSizesUpTo(10); !reflect.DeepEqual(got, []int{2, 5, 10}) {
		t.Errorf("sizes(10) = %v", got)
	}
	if got := federationSizesUpTo(7); !reflect.DeepEqual(got, []int{2, 5, 7}) {
		t.Errorf("sizes(7) = %v", got)
	}
	if got := federationSizesUpTo(2); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("sizes(2) = %v", got)
	}
}

func TestFederationRejectsBadConfig(t *testing.T) {
	cfg := smallFederationConfig()
	cfg.Sizes = []int{1}
	if _, err := FederationSweep(cfg); err == nil {
		t.Error("size 1 accepted")
	}
}

func TestFederationRegistry(t *testing.T) {
	res, err := RunByName("federation", RunConfig{
		FederationCities: 3, FederationTopology: "ring",
		LinkFailFracs: []float64{0}, Pairs: 2, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text(), "ring") {
		t.Errorf("topology missing from text:\n%s", res.Text())
	}
	if !strings.HasPrefix(res.CSV(), "cities,topology,") {
		t.Errorf("CSV header wrong:\n%s", res.CSV())
	}
	if _, err := RunByName("federation", RunConfig{FederationTopology: "nope"}); err == nil {
		t.Error("bad topology accepted")
	}
}
