package experiments

import (
	"strings"
	"testing"

	"citymesh/internal/core"
	"citymesh/internal/faults"
)

// TestResilienceLadderBeatsPlainSend is the acceptance scenario: at >=30%
// uniform AP failure on the downtown (gridtown) preset, the SendReliable
// ladder must deliver strictly more pairs than plain Send, and the winning
// rung must be recorded.
func TestResilienceLadderBeatsPlainSend(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience sweep is slow")
	}
	rows, err := Resilience(ResilienceConfig{
		Cities: []string{"gridtown"},
		Mode:   faults.ModeUniform,
		Fracs:  []float64{0.3},
		Pairs:  25,
		Seed:   1,
		Scale:  0.35,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(rows))
	}
	r := rows[0]
	if r.Pairs == 0 {
		t.Fatal("no pairs were simulated")
	}
	t.Logf("pairs=%d plain=%.2f reliable=%.2f rungs=%v lostDead=%d",
		r.Pairs, r.PlainRate, r.ReliableRate, r.RungWins, r.LostToDeadAP)
	if r.ReliableRate <= r.PlainRate {
		t.Errorf("SendReliable rate %.2f must beat plain %.2f at 30%% uniform failure",
			r.ReliableRate, r.PlainRate)
	}
	// The winning rungs must be recorded and account for every delivery.
	total := 0
	for _, w := range r.RungWins {
		total += w
	}
	wantWins := int(r.ReliableRate*float64(r.Pairs) + 0.5)
	if total != wantWins {
		t.Errorf("rung wins %v sum to %d, want %d", r.RungWins, total, wantWins)
	}
	// Plain sends under failure must show dead-AP loss attribution.
	if r.PlainRate < 1 && r.LostToDeadAP == 0 {
		t.Error("expected LostToDeadAP diagnostics under 30% failure")
	}
}

// TestResilienceZeroFailureEquivalence: with nothing failed, both
// strategies deliver the same reachable pairs and the ladder never climbs
// past the direct rung.
func TestResilienceZeroFailureEquivalence(t *testing.T) {
	rows, err := Resilience(ResilienceConfig{
		Cities: []string{"gridtown"},
		Mode:   faults.ModeUniform,
		Fracs:  []float64{0},
		Pairs:  10,
		Seed:   2,
		Scale:  0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.PlainRate != r.ReliableRate {
		t.Errorf("zero failure: plain %.2f != reliable %.2f", r.PlainRate, r.ReliableRate)
	}
	for i, w := range r.RungWins {
		if core.Rung(i) != core.RungDirect && w > 0 {
			t.Errorf("zero failure should never need rung %v (wins %v)", core.Rung(i), r.RungWins)
		}
	}
}

func TestResilienceRejectsUnknownCity(t *testing.T) {
	_, err := Resilience(ResilienceConfig{Cities: []string{"atlantis"}})
	if err == nil {
		t.Fatal("unknown city must error")
	}
}

func TestResilienceRejectsUnknownMode(t *testing.T) {
	_, err := Resilience(ResilienceConfig{
		Cities: []string{"gridtown"},
		Mode:   faults.Mode("bogus"),
	})
	if err == nil {
		t.Fatal("unknown fault mode must error, not emit empty rows")
	}
}

func TestResilienceRenderers(t *testing.T) {
	rows := []ResilienceRow{{
		City: "gridtown", Mode: faults.ModeUniform, FailFrac: 0.3, Pairs: 10,
		PlainRate: 0.4, ReliableRate: 0.8,
		RungWins: [core.NumRungs]int{4, 2, 1, 1, 0},
	}}
	txt := ResilienceText(rows)
	for _, want := range []string{"gridtown", "uniform", "retry:2", "widen:1"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text output missing %q:\n%s", want, txt)
		}
	}
	csv := ResilienceCSV(rows)
	if !strings.Contains(csv, "wins_flood") || !strings.Contains(csv, "0.8000") {
		t.Errorf("csv output malformed:\n%s", csv)
	}
	if got := len(strings.Split(strings.TrimSpace(csv), "\n")); got != 2 {
		t.Errorf("csv should have header + 1 row, got %d lines", got)
	}
}
