package experiments

import (
	"testing"

	"citymesh/internal/faults"
)

// The tentpole guarantee of the parallel sweep engine: for the same seed,
// parallel output is byte-identical to serial output. These tests run the
// resilience and geocast sweeps at Parallelism 1 and 8 and diff the
// rendered Text/CSV forms, which include every reported number.

func TestResilienceParallelMatchesSerial(t *testing.T) {
	run := func(par int) ([]ResilienceRow, error) {
		return Resilience(ResilienceConfig{
			Cities: []string{"gridtown"},
			Mode:   faults.ModeUniform,
			Fracs:  []float64{0, 0.3},
			Pairs:  10,
			Seed:   1,
			Scale:  0.3,

			Parallelism: par,
		})
	}
	serial, err := run(1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if got, want := ResilienceText(parallel), ResilienceText(serial); got != want {
		t.Errorf("Text() differs between Parallelism=1 and Parallelism=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := ResilienceCSV(parallel), ResilienceCSV(serial); got != want {
		t.Errorf("CSV() differs between Parallelism=1 and Parallelism=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

func TestGeocastParallelMatchesSerial(t *testing.T) {
	run := func(par int) ([]GeocastRow, error) {
		return GeocastSweep("gridtown", 0.3, 1, []float64{80, 200}, 5, par)
	}
	serial, err := run(1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if got, want := GeocastText(parallel), GeocastText(serial); got != want {
		t.Errorf("Text() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := GeocastCSV(parallel), GeocastCSV(serial); got != want {
		t.Errorf("CSV() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

// Figure6 is the headline table; hold it to the same guarantee.
func TestFigure6ParallelMatchesSerial(t *testing.T) {
	run := func(par int) ([]Figure6Row, error) {
		return Figure6(Figure6Config{
			Cities: []string{"gridtown"}, ReachPairs: 200, DeliverPairs: 15,
			Seed: 1, Scale: 0.3, Parallelism: par,
		})
	}
	serial, err := run(1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if got, want := Figure6CSV(parallel), Figure6CSV(serial); got != want {
		t.Errorf("CSV() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}
