package experiments

import (
	"strings"
	"testing"
)

// findByz picks the row for (behavior, frac, defended) or fails the test.
func findByz(t *testing.T, rows []ByzantineRow, behavior string, frac float64, defended bool) ByzantineRow {
	t.Helper()
	for _, r := range rows {
		if r.Behavior == behavior && r.Frac == frac && r.Defended == defended {
			return r
		}
	}
	t.Fatalf("no row for %s frac=%.2f defended=%v", behavior, frac, defended)
	return ByzantineRow{}
}

// TestByzantineDefenseRecoversGrayholeLoss is the experiment's acceptance
// bar: at 20% grayhole APs on gridtown, the defended arm recovers at least
// 80% of the delivery the undefended arm lost, and no cell charges an
// invariant violation to an honest AP.
func TestByzantineDefenseRecoversGrayholeLoss(t *testing.T) {
	res, err := Byzantine(ByzantineConfig{
		Behaviors: []string{"grayhole"}, Fracs: []float64{0, 0.2},
		Scale: 0.35, Pairs: 12, Parallelism: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.HonestViolations != 0 {
			t.Errorf("honest violations in %s frac=%.2f defended=%v: %d",
				r.Behavior, r.Frac, r.Defended, r.HonestViolations)
		}
	}
	offClean := findByz(t, res.Rows, "grayhole", 0, false)
	offHit := findByz(t, res.Rows, "grayhole", 0.2, false)
	onHit := findByz(t, res.Rows, "grayhole", 0.2, true)
	loss := offClean.DeliveryRate - offHit.DeliveryRate
	if loss <= 0 {
		t.Fatalf("20%% grayholes cost nothing (%.2f -> %.2f); the adversary is inert",
			offClean.DeliveryRate, offHit.DeliveryRate)
	}
	if offHit.GrayholeDrops == 0 {
		t.Error("no grayhole drops observed in the undefended compromised cell")
	}
	recovered := onHit.DeliveryRate - offHit.DeliveryRate
	if recovered < 0.8*loss {
		t.Errorf("defenses recovered %.2f of a %.2f delivery loss (%.0f%%); want >= 80%%",
			recovered, loss, 100*recovered/loss)
	}
}

// The byzantine experiment joins the PR-4 guarantee: byte-identical
// rendered output at any parallelism.
func TestByzantineParallelMatchesSerial(t *testing.T) {
	run := func(par int) (ByzantineResult, error) {
		return Byzantine(ByzantineConfig{
			Behaviors: []string{"ttlreset", "flooder"}, Fracs: []float64{0.2},
			Scale: 0.25, Pairs: 4, Parallelism: par,
		})
	}
	serial, err := run(1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if got, want := ByzantineText(parallel), ByzantineText(serial); got != want {
		t.Errorf("Text() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := ByzantineCSV(parallel), ByzantineCSV(serial); got != want {
		t.Errorf("CSV() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestByzantineLiveLegAttributesDrops: the live agent sees every hostile
// frame class land in exactly one per-cause counter, with no panics.
func TestByzantineLiveLegAttributesDrops(t *testing.T) {
	res, err := Byzantine(ByzantineConfig{
		Behaviors: []string{"blackhole"}, Fracs: []float64{0},
		Scale: 0.25, Pairs: 2, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := res.Live
	if l.PanicsRecovered != 0 {
		t.Errorf("live agent recovered %d panics", l.PanicsRecovered)
	}
	if l.DroppedReplayed != 20 {
		t.Errorf("DroppedReplayed = %d, want 20 (every replay attributed)", l.DroppedReplayed)
	}
	if l.DroppedTampered != 15 {
		t.Errorf("DroppedTampered = %d, want 15 (TTL-inflated + bad-conduit)", l.DroppedTampered)
	}
	if l.DroppedMalformed != 5 {
		t.Errorf("DroppedMalformed = %d, want 5", l.DroppedMalformed)
	}
	if l.DroppedRateLimited == 0 {
		t.Error("the frozen-clock storm should trip the per-source limiter")
	}
	accounted := l.Received + l.DroppedReplayed + l.DroppedTampered +
		l.DroppedMalformed + l.DroppedRateLimited
	if accounted != l.FramesSent {
		t.Errorf("frames accounted %d of %d sent; every frame lands in exactly one counter",
			accounted, l.FramesSent)
	}
}

func TestByzantineRegistered(t *testing.T) {
	if _, ok := Lookup("byzantine"); !ok {
		t.Fatal("experiment \"byzantine\" not registered")
	}
	res, err := RunByName("byzantine", RunConfig{Scale: 0.25, Pairs: 2, Seed: 1, Parallelism: 4})
	if err != nil {
		t.Fatalf("RunByName(byzantine): %v", err)
	}
	if !strings.Contains(res.Text(), "Byzantine adversaries") {
		t.Errorf("Text() missing header:\n%s", res.Text())
	}
	if !strings.HasPrefix(res.CSV(), "behavior,") {
		t.Errorf("CSV() missing header row:\n%s", res.CSV())
	}
}
