// Dynamic-disaster experiments: the fault set *moves* while delivery is
// being attempted. "datamule" pits a bus-shuttle mobile relay against
// store-and-heal alone on a river-partitioned city; "floodfront" tracks
// delivery and session-tier degradation as an advancing waterline drowns
// APs, against the static snapshot of the same final magnitude.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/faults"
	"citymesh/internal/geo"
	"citymesh/internal/mobility"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
	"citymesh/internal/trafficgen"
)

// DataMuleConfig scales the bus-relay experiment.
type DataMuleConfig struct {
	// City is the preset; it must have a river (default "dc", whose wide
	// river fractures the mesh into banks — §4's observation).
	City string
	// Scale shrinks the preset (default 0.35).
	Scale float64
	// FloodFrac additionally drowns this fraction of APs nearest the water,
	// widening the dead zone so no bridgehead pair is in radio range
	// (default 0.2).
	FloodFrac float64
	// Pairs is how many cross-river building pairs are driven (default 8).
	Pairs int
	// Seed drives sampling, injection, and transport randomness.
	Seed int64
	// Buses is the shuttle fleet size; the buses run the same crossing
	// route phase-shifted by period/Buses, so one is always somewhere
	// useful (default 2).
	Buses int
	// BusSpeedMps is the shuttle speed (default 8 — a city bus).
	BusSpeedMps float64
	// HorizonS is how long a bus keeps rebroadcasting a carried message
	// (default 240 — comfortably one route crossing).
	HorizonS float64
	// Eventual tunes the store-and-heal scheduler shared by both arms;
	// zero-value uses datamule defaults (5 attempts, 20→120 s backoff).
	Eventual core.EventualConfig
	// Parallelism is the runner worker count; output is byte-identical at
	// any value.
	Parallelism int
}

// DataMuleRow is one arm of the comparison: the same cross-river pairs,
// same faults, same seeds, with and without the bus fleet.
type DataMuleRow struct {
	Arm       string
	Pairs     int
	Delivered int
	Parked    int
	// TimeToDeliverP50 is the median sim time to delivery across delivered
	// pairs (0 when nothing delivered).
	TimeToDeliverP50 float64
	// Attempts and Broadcasts are totals across all pairs.
	Attempts   int
	Broadcasts int
}

// DataMule compares store-and-heal alone against store-and-heal plus a
// bus-shuttle mobile relay on a river-partitioned city: the flooded river
// severs the banks, no static route exists, and recovery never comes — so
// the only way across is a radio that physically rides a bus. Each pair is
// one task on the parallel runner with a SplitMix64-derived seed; rows
// fold in index order, so output is byte-identical at any parallelism.
func DataMule(cfg DataMuleConfig) ([]DataMuleRow, error) {
	if cfg.City == "" {
		cfg.City = "dc"
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.35
	}
	if cfg.FloodFrac <= 0 {
		cfg.FloodFrac = 0.2
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Buses <= 0 {
		cfg.Buses = 2
	}
	if cfg.BusSpeedMps <= 0 {
		cfg.BusSpeedMps = 8
	}
	if cfg.HorizonS <= 0 {
		cfg.HorizonS = 240
	}
	ecfg := cfg.Eventual
	if ecfg.MaxAttempts <= 0 {
		ecfg.MaxAttempts = 5
	}
	if ecfg.BackoffBase <= 0 {
		ecfg.BackoffBase = 20
	}
	if ecfg.BackoffMax <= 0 {
		ecfg.BackoffMax = 120
	}
	if ecfg.ParkAfter <= 0 {
		ecfg.ParkAfter = 2
	}

	spec, ok := citygen.Preset(cfg.City)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cfg.City)
	}
	if cfg.Scale > 0 && cfg.Scale < 1 {
		spec = scaleSpec(spec, cfg.Scale)
	}
	if len(spec.Rivers) == 0 {
		return nil, fmt.Errorf("experiments: datamule needs a river city, %q has none", cfg.City)
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", cfg.City, err)
	}

	// Widen the dead zone: drown the APs nearest the water.
	inj, err := faults.Inject(n.Mesh, n.City, faults.Config{
		Mode: faults.ModeFlood, Frac: cfg.FloodFrac, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	pairs, err := crossRiverPairs(n, spec, inj.Failed, cfg.Seed, cfg.Pairs)
	if err != nil {
		return nil, err
	}

	// The shuttle route: perpendicular to the river through its midpoint,
	// clamped inside the city, looped so the buses go back and forth.
	river := spec.Rivers[0]
	mid := river.Start.Lerp(river.End, 0.5)
	nrm := river.End.Sub(river.Start).Unit().Perp()
	reach := 0.45 * math.Min(spec.Width, spec.Height)
	clamp := func(p geo.Point) geo.Point {
		const margin = 50.0
		return geo.Pt(math.Min(math.Max(p.X, margin), spec.Width-margin),
			math.Min(math.Max(p.Y, margin), spec.Height-margin))
	}
	route, err := mobility.NewTrack(
		[]geo.Point{clamp(mid.Add(nrm.Scale(-reach))), clamp(mid.Add(nrm.Scale(reach)))},
		cfg.BusSpeedMps, 0, true)
	if err != nil {
		return nil, err
	}
	fleet := make([]sim.Mobile, cfg.Buses)
	for k := range fleet {
		fleet[k] = sim.Mobile{
			Path:     sim.OffsetPath{Base: route, Offset: float64(k) * route.Period() / float64(cfg.Buses)},
			HorizonS: cfg.HorizonS,
		}
	}

	runArm := func(arm string, mobiles []sim.Mobile, armIdx int) DataMuleRow {
		row := DataMuleRow{Arm: arm, Pairs: len(pairs)}
		type outcome struct {
			ran, delivered, parked bool
			timeToDeliver          float64
			attempts, broadcasts   int
		}
		outs := runner.Map(cfg.Parallelism, len(pairs), func(i int) outcome {
			seed := runner.TaskSeed(cfg.Seed, armIdx*100_000+i)
			sc := sim.DefaultConfig()
			sc.Seed = seed
			inj.Apply(&sc)
			sc.Mobiles = mobiles
			rc := core.DefaultReliableConfig()
			rc.Seed = seed
			res, err := n.SendEventually(pairs[i][0], pairs[i][1], nil, sc, rc, ecfg)
			if err != nil {
				return outcome{}
			}
			return outcome{
				ran: true, delivered: res.Delivered, parked: res.Parked,
				timeToDeliver: res.TimeToHeal,
				attempts:      res.Attempts, broadcasts: res.TotalBroadcasts,
			}
		})
		var times []float64
		for _, o := range outs {
			if !o.ran {
				continue
			}
			row.Attempts += o.attempts
			row.Broadcasts += o.broadcasts
			if o.delivered {
				row.Delivered++
				times = append(times, o.timeToDeliver)
			}
			if o.parked {
				row.Parked++
			}
		}
		if len(times) > 0 {
			row.TimeToDeliverP50 = stats.Percentile(times, 50)
		}
		return row
	}
	return []DataMuleRow{
		runArm("store-and-heal", nil, 0),
		runArm("store-and-heal+mule", fleet, 1),
	}, nil
}

// crossRiverPairs samples building pairs whose centroids sit on opposite
// sides of the city's first river — the pairs a flooded crossing severs.
// Buildings whose every AP drowned are excluded: a dead endpoint can
// neither offer a packet to the mule nor receive one from it, so such
// pairs would measure the flood, not the relay.
func crossRiverPairs(n *core.Network, spec citygen.Spec, failed map[int]bool, seed int64, count int) ([][2]int, error) {
	river := spec.Rivers[0]
	dir := river.End.Sub(river.Start)
	side := func(b int) bool {
		return dir.Cross(n.City.Centroid(b).Sub(river.Start)) > 0
	}
	alive := func(b int) bool {
		for _, ap := range n.Mesh.APsInBuilding(b) {
			if !failed[int(ap)] {
				return true
			}
		}
		return false
	}
	raw, err := n.RandomPairs(seed, count*10)
	if err != nil {
		return nil, err
	}
	var out [][2]int
	for _, p := range raw {
		if len(out) >= count {
			break
		}
		if side(p[0]) != side(p[1]) && alive(p[0]) && alive(p[1]) {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no cross-river pairs in %q (river may not split the city)", spec.Name)
	}
	return out, nil
}

// DataMuleText renders the comparison.
func DataMuleText(rows []DataMuleRow) string {
	var sb strings.Builder
	sb.WriteString("Data mule: bus-shuttle relay vs store-and-heal on a river-partitioned city\n")
	fmt.Fprintf(&sb, "%-22s %6s %6s %7s %10s %9s %10s\n",
		"arm", "pairs", "deliv", "parked", "t_deliv", "attempts", "bcast")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %6d %6d %7d %9.1fs %9d %10d\n",
			r.Arm, r.Pairs, r.Delivered, r.Parked, r.TimeToDeliverP50, r.Attempts, r.Broadcasts)
	}
	return sb.String()
}

// DataMuleCSV renders the comparison as CSV.
func DataMuleCSV(rows []DataMuleRow) string {
	var sb strings.Builder
	sb.WriteString("arm,pairs,delivered,parked,time_to_deliver_p50,attempts,broadcasts\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%d,%d,%d,%.2f,%d,%d\n",
			r.Arm, r.Pairs, r.Delivered, r.Parked, r.TimeToDeliverP50, r.Attempts, r.Broadcasts)
	}
	return sb.String()
}

// FloodFrontStudyConfig scales the advancing-waterline experiment.
type FloodFrontStudyConfig struct {
	// City is the preset; it must have water (default "boston").
	City string
	// Scale shrinks the preset (default 0.35).
	Scale float64
	// Frac caps the front so the final submerged fraction matches the
	// static snapshot arm (default 0.3).
	Frac float64
	// SpeedMps is the waterline speed (default 2).
	SpeedMps float64
	// JitterS is the per-AP submergence jitter bound (default 5).
	JitterS float64
	// ProbeTimes are the sim instants at which each arm is sampled
	// (default {0, 60, 180, 420}).
	ProbeTimes []float64
	// Pairs sizes the delivery probe per cell (default 10).
	Pairs int
	// Seed drives sampling, the front, and transport randomness.
	Seed int64
	// Users and Ticks size each cell's session-layer traffic run
	// (defaults 36 / 10).
	Users, Ticks int
	// Parallelism is the runner worker count over (time, arm) cells;
	// output is byte-identical at any value.
	Parallelism int
}

// FloodFrontRow is one (probe time, arm) cell.
type FloodFrontRow struct {
	Arm string
	// TimeS is the probe instant the cell's runs start at.
	TimeS float64
	// DownFrac is the fraction of APs down at the probe instant.
	DownFrac float64
	// DeliveryRate is the ladder delivery fraction over the pair sample.
	DeliveryRate float64
	// RejectRate and PeakTier summarize the session layer under the same
	// schedule: admission refusals per offered message, worst tier reached.
	RejectRate float64
	PeakTier   string
	// Offered/Delivered are the session run's message counts.
	Offered, Delivered uint64
}

// FloodFrontStudy answers "does delivery keep working while the flood is
// still advancing": the dynamic front is probed at increasing start
// instants (each run's schedule shifted there via sim.OffsetSchedule, so
// the water keeps rising *during* the run too), against the static
// ModeFlood snapshot of the same final magnitude. Each cell is one task on
// the parallel runner; rows fold in index order, so output is
// byte-identical at any parallelism.
func FloodFrontStudy(cfg FloodFrontStudyConfig) ([]FloodFrontRow, error) {
	if cfg.City == "" {
		cfg.City = "boston"
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.35
	}
	if cfg.Frac <= 0 {
		cfg.Frac = 0.3
	}
	if cfg.SpeedMps <= 0 {
		cfg.SpeedMps = 2
	}
	if cfg.JitterS <= 0 {
		cfg.JitterS = 5
	}
	if len(cfg.ProbeTimes) == 0 {
		cfg.ProbeTimes = []float64{0, 60, 180, 420}
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Users <= 0 {
		cfg.Users = 36
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 10
	}

	spec, ok := citygen.Preset(cfg.City)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cfg.City)
	}
	if cfg.Scale > 0 && cfg.Scale < 1 {
		spec = scaleSpec(spec, cfg.Scale)
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", cfg.City, err)
	}
	pairs, err := sampleReachablePairs(n, cfg.Seed, cfg.Pairs)
	if err != nil {
		return nil, err
	}

	dynamic, err := faults.Inject(n.Mesh, n.City, faults.Config{
		Mode: faults.ModeFloodFront, Frac: cfg.Frac, Seed: cfg.Seed,
		FrontSpeed: cfg.SpeedMps, FrontJitter: cfg.JitterS,
	})
	if err != nil {
		return nil, err
	}
	static, err := faults.Inject(n.Mesh, n.City, faults.Config{
		Mode: faults.ModeFlood, Frac: cfg.Frac, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	front, _ := dynamic.Schedule.(interface{ DownFractionAt(float64) float64 })
	staticFrac := float64(static.NumFailed()) / float64(n.Mesh.NumAPs())

	type cell struct {
		arm   string
		timeS float64
	}
	var cells []cell
	for _, ts := range cfg.ProbeTimes {
		cells = append(cells, cell{arm: "floodfront", timeS: ts}, cell{arm: "static", timeS: ts})
	}

	rows, err := runner.MapErr(cfg.Parallelism, len(cells), func(i int) (FloodFrontRow, error) {
		c := cells[i]
		row := FloodFrontRow{Arm: c.arm, TimeS: c.timeS}
		simCfg := sim.DefaultConfig()
		switch c.arm {
		case "floodfront":
			if dynamic.Schedule != nil {
				if c.timeS > 0 {
					simCfg.Schedule = sim.OffsetSchedule{Base: dynamic.Schedule, Offset: c.timeS}
				} else {
					simCfg.Schedule = dynamic.Schedule
				}
			}
			if front != nil {
				row.DownFrac = front.DownFractionAt(c.timeS)
			}
		default:
			static.Apply(&simCfg)
			row.DownFrac = staticFrac
		}

		// Delivery probe: the shared pair sample through the ladder.
		delivered := 0
		for pi, p := range pairs {
			seed := runner.TaskSeed(cfg.Seed, i*10_000+pi)
			sc := simCfg
			sc.Seed = seed
			rc := core.DefaultReliableConfig()
			rc.Seed = seed
			rr, err := n.SendReliable(p[0], p[1], nil, sc, rc)
			if err != nil {
				return row, err
			}
			if rr.Delivered {
				delivered++
			}
		}
		if len(pairs) > 0 {
			row.DeliveryRate = float64(delivered) / float64(len(pairs))
		}

		// Session-tier probe: a small closed-loop traffic run on the same
		// schedule — does admission control degrade gracefully as the water
		// rises, or fall off a cliff.
		rep, err := trafficgen.Run(n, simCfg, trafficgen.Config{
			Users: cfg.Users, Ticks: cfg.Ticks,
			FlashMultiplier: 2,
			Seed:            runner.TaskSeed(cfg.Seed, 500_000+i),
		})
		if err != nil {
			return row, fmt.Errorf("experiments: floodfront cell %s@%.0fs: %w", c.arm, c.timeS, err)
		}
		row.RejectRate = rep.RejectRate()
		row.PeakTier = rep.PeakTier.String()
		row.Offered = rep.Offered
		row.Delivered = rep.Delivered
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FloodFrontText renders the study as an aligned table.
func FloodFrontText(rows []FloodFrontRow) string {
	var sb strings.Builder
	sb.WriteString("Flood front: delivery and session degradation as the waterline advances\n")
	fmt.Fprintf(&sb, "%-12s %7s %6s %7s %7s %8s %8s %-9s\n",
		"arm", "t", "down%", "deliv%", "rej%", "offered", "sess_dlv", "peak")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %6.0fs %5.1f%% %6.1f%% %6.1f%% %8d %8d %-9s\n",
			r.Arm, r.TimeS, 100*r.DownFrac, 100*r.DeliveryRate, 100*r.RejectRate,
			r.Offered, r.Delivered, r.PeakTier)
	}
	return sb.String()
}

// FloodFrontCSV renders the study as CSV.
func FloodFrontCSV(rows []FloodFrontRow) string {
	var sb strings.Builder
	sb.WriteString("arm,time_s,down_frac,delivery_rate,reject_rate,offered,session_delivered,peak_tier\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%.0f,%.4f,%.4f,%.4f,%d,%d,%s\n",
			r.Arm, r.TimeS, r.DownFrac, r.DeliveryRate, r.RejectRate, r.Offered, r.Delivered, r.PeakTier)
	}
	return sb.String()
}
