package experiments

import (
	"fmt"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// RadioRow is one PHY-model setting's outcome (A6): the paper's §6 calls
// for higher-fidelity simulation; this ablation quantifies how much the
// idealized unit-disk assumption flatters the results.
type RadioRow struct {
	Model          string
	Pairs          int
	Deliverability float64
	OverheadMedian float64
	DeliveryMsP50  float64
}

// RadioModelSweep runs the same pair sample under different radio models
// and collision settings.
func RadioModelSweep(cityName string, scale float64, seed int64, pairCount, par int) ([]RadioRow, error) {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	if pairCount <= 0 {
		pairCount = 20
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pairs, err := sampleReachablePairs(n, seed, pairCount)
	if err != nil {
		return nil, err
	}

	type setting struct {
		name      string
		radio     sim.RadioModel
		collision float64
		loss      float64
	}
	settings := []setting{
		{name: "unitdisk (paper)", radio: nil},
		{name: "pathloss", radio: sim.DefaultPathLoss()},
		{name: "pathloss+loss10%", radio: sim.DefaultPathLoss(), loss: 0.1},
		{name: "pathloss+collisions", radio: sim.DefaultPathLoss(), collision: 0.0002},
	}

	rows := make([]RadioRow, 0, len(settings))
	for _, st := range settings {
		row := RadioRow{Model: st.name}
		delivered := 0
		var overheads, delays []float64
		type outcome struct {
			ran, delivered bool
			delayMs        float64
			overhead       float64
		}
		outs := runner.Map(par, len(pairs), func(i int) outcome {
			simCfg := sim.DefaultConfig()
			simCfg.Seed = runner.TaskSeed(seed, i)
			simCfg.Radio = st.radio
			simCfg.CollisionWindow = st.collision
			simCfg.LossProb = st.loss
			res, err := n.Send(pairs[i][0], pairs[i][1], nil, simCfg)
			if err != nil {
				return outcome{}
			}
			return outcome{
				ran: true, delivered: res.Sim.Delivered,
				delayMs: res.Sim.DeliveryTime * 1000, overhead: res.Overhead(),
			}
		})
		for _, o := range outs {
			if !o.ran {
				continue
			}
			row.Pairs++
			if o.delivered {
				delivered++
				delays = append(delays, o.delayMs)
				if o.overhead > 0 {
					overheads = append(overheads, o.overhead)
				}
			}
		}
		if row.Pairs > 0 {
			row.Deliverability = float64(delivered) / float64(row.Pairs)
		}
		if len(overheads) > 0 {
			row.OverheadMedian = stats.Percentile(overheads, 50)
		}
		if len(delays) > 0 {
			row.DeliveryMsP50 = stats.Percentile(delays, 50)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RadioCSV renders the sweep as CSV.
func RadioCSV(rows []RadioRow) string {
	out := "model,pairs,deliverability,overhead_p50,delay_ms_p50\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s,%d,%.4f,%.2f,%.1f\n",
			r.Model, r.Pairs, r.Deliverability, r.OverheadMedian, r.DeliveryMsP50)
	}
	return out
}

// RadioText renders the sweep.
func RadioText(rows []RadioRow) string {
	out := fmt.Sprintf("A6: deliverability under PHY models\n%-22s %7s %8s %9s %10s\n",
		"model", "pairs", "deliv", "ovh p50", "delay p50")
	for _, r := range rows {
		out += fmt.Sprintf("%-22s %7d %7.1f%% %8.1fx %8.0fms\n",
			r.Model, r.Pairs, 100*r.Deliverability, r.OverheadMedian, r.DeliveryMsP50)
	}
	return out
}
