package experiments

import (
	"fmt"
	"strings"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// Figure6Row is one city's bar group in the paper's Figure 6: reachability,
// deliverability given reachability, and transmission overhead.
type Figure6Row struct {
	City string
	// Buildings and APs describe the realized city.
	Buildings, APs int
	// ReachabilityPairs is how many random pairs were tested.
	ReachabilityPairs int
	// Reachability is the fraction of pairs connected through the AP graph.
	Reachability float64
	// DeliverabilityPairs is how many reachable pairs ran the full
	// event-based simulation.
	DeliverabilityPairs int
	// Deliverability is the fraction of those delivered by building routing.
	Deliverability float64
	// OverheadMedian and OverheadP90 summarize broadcasts / ideal unicast
	// transmissions across delivered pairs.
	OverheadMedian, OverheadP90 float64
	// Islands is the number of AP-graph components with at least 10 APs —
	// the fracture diagnosis for low-reachability cities.
	Islands int
}

// Figure6Config scales the experiment.
type Figure6Config struct {
	// Cities to evaluate; empty means all presets.
	Cities []string
	// ReachPairs is the number of random building pairs tested for
	// reachability (the paper: 1000).
	ReachPairs int
	// DeliverPairs is the number of reachable pairs run through the full
	// event simulation (the paper: 50).
	DeliverPairs int
	// Seed drives all sampling.
	Seed int64
	// Scale shrinks the preset city extents (0 < Scale <= 1) so tests and
	// benches can run the same code quickly. 0 means full size.
	Scale float64
	// Sim overrides the per-send simulator settings; nil uses
	// sim.DefaultConfig(). The seed is set per task regardless.
	Sim *sim.Config
	// Parallelism is the worker count for the pair sweeps: 0 or negative
	// uses GOMAXPROCS, 1 forces serial. Output is byte-identical across
	// parallelism levels for the same seed.
	Parallelism int
}

// DefaultFigure6Config mirrors the paper's sampling.
func DefaultFigure6Config() Figure6Config {
	return Figure6Config{ReachPairs: 1000, DeliverPairs: 50, Seed: 1}
}

// Figure6 runs the reachability/deliverability/overhead experiment for each
// city.
func Figure6(cfg Figure6Config) ([]Figure6Row, error) {
	cities := cfg.Cities
	if len(cities) == 0 {
		cities = citygen.PresetNames()
	}
	if cfg.ReachPairs <= 0 {
		cfg.ReachPairs = 1000
	}
	if cfg.DeliverPairs <= 0 {
		cfg.DeliverPairs = 50
	}
	if cfg.Sim != nil {
		if err := cfg.Sim.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}
	rows := make([]Figure6Row, 0, len(cities))
	for _, name := range cities {
		spec, ok := citygen.Preset(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown city %q", name)
		}
		if cfg.Scale > 0 && cfg.Scale < 1 {
			spec = scaleSpec(spec, cfg.Scale)
		}
		row, err := figure6City(spec, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scaleSpec shrinks a city spec's extent and features proportionally. The
// feature slices are copied first: the input spec (often a shared preset)
// must not be mutated.
func scaleSpec(s citygen.Spec, k float64) citygen.Spec {
	s.Width *= k
	s.Height *= k
	s.Rivers = append([]citygen.RiverSpec(nil), s.Rivers...)
	s.Parks = append([]citygen.RectSpec(nil), s.Parks...)
	s.Highways = append([]citygen.RectSpec(nil), s.Highways...)
	scaleRect := func(r *citygen.RectSpec) {
		r.Rect.Min = r.Rect.Min.Scale(k)
		r.Rect.Max = r.Rect.Max.Scale(k)
	}
	s.DowntownRect.Min = s.DowntownRect.Min.Scale(k)
	s.DowntownRect.Max = s.DowntownRect.Max.Scale(k)
	s.CampusRect.Min = s.CampusRect.Min.Scale(k)
	s.CampusRect.Max = s.CampusRect.Max.Scale(k)
	for i := range s.Rivers {
		s.Rivers[i].Start = s.Rivers[i].Start.Scale(k)
		s.Rivers[i].End = s.Rivers[i].End.Scale(k)
		s.Rivers[i].Width *= k
	}
	for i := range s.Parks {
		scaleRect(&s.Parks[i])
	}
	for i := range s.Highways {
		scaleRect(&s.Highways[i])
	}
	return s
}

func figure6City(spec citygen.Spec, cfg Figure6Config) (Figure6Row, error) {
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return Figure6Row{}, err
	}
	row := Figure6Row{
		City:      spec.Name,
		Buildings: n.City.NumBuildings(),
		APs:       n.Mesh.NumAPs(),
	}
	for _, isl := range n.Mesh.Islands() {
		if isl.APs >= 10 {
			row.Islands++
		}
	}

	// Reachability across random unique pairs.
	pairs, err := n.RandomPairs(cfg.Seed, cfg.ReachPairs)
	if err != nil {
		return Figure6Row{}, err
	}
	row.ReachabilityPairs = len(pairs)
	reach := runner.Map(cfg.Parallelism, len(pairs), func(i int) bool {
		return n.Reachable(pairs[i][0], pairs[i][1])
	})
	var reachable [][2]int
	for i, ok := range reach {
		if ok {
			reachable = append(reachable, pairs[i])
		}
	}
	if row.ReachabilityPairs > 0 {
		row.Reachability = float64(len(reachable)) / float64(row.ReachabilityPairs)
	}

	// Deliverability over the first DeliverPairs reachable pairs via the
	// full event simulation — one runner task per pair, seeded by task
	// index.
	base := sim.DefaultConfig()
	if cfg.Sim != nil {
		base = *cfg.Sim
	}
	limit := cfg.DeliverPairs
	if limit > len(reachable) {
		limit = len(reachable)
	}
	type outcome struct {
		delivered bool
		overhead  float64
	}
	outs := runner.Map(cfg.Parallelism, limit, func(i int) outcome {
		p := reachable[i]
		simCfg := base
		simCfg.Seed = runner.TaskSeed(cfg.Seed, i)
		res, err := n.Send(p[0], p[1], nil, simCfg)
		if err != nil {
			return outcome{} // map-predicted disconnection: a delivery failure
		}
		return outcome{delivered: res.Sim.Delivered, overhead: res.Overhead()}
	})
	delivered := 0
	var overheads []float64
	for _, o := range outs {
		row.DeliverabilityPairs++
		if o.delivered {
			delivered++
			if o.overhead > 0 {
				overheads = append(overheads, o.overhead)
			}
		}
	}
	if row.DeliverabilityPairs > 0 {
		row.Deliverability = float64(delivered) / float64(row.DeliverabilityPairs)
	}
	if len(overheads) > 0 {
		row.OverheadMedian = stats.Percentile(overheads, 50)
		row.OverheadP90 = stats.Percentile(overheads, 90)
	}
	return row, nil
}

// Figure6Text renders the rows as an aligned table.
func Figure6Text(rows []Figure6Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6: reachability, deliverability and transmission overhead per city\n")
	fmt.Fprintf(&sb, "%-14s %9s %8s %7s %7s %7s %9s %9s %8s\n",
		"city", "buildings", "APs", "reach", "deliv", "pairs", "ovh p50", "ovh p90", "islands")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %9d %8d %6.1f%% %6.1f%% %7d %8.1fx %8.1fx %8d\n",
			r.City, r.Buildings, r.APs, 100*r.Reachability, 100*r.Deliverability,
			r.DeliverabilityPairs, r.OverheadMedian, r.OverheadP90, r.Islands)
	}
	return sb.String()
}

// Figure6CSV renders the rows as CSV.
func Figure6CSV(rows []Figure6Row) string {
	var sb strings.Builder
	sb.WriteString("city,buildings,aps,reachability,deliverability,overhead_p50,overhead_p90,islands\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%d,%d,%.4f,%.4f,%.2f,%.2f,%d\n",
			r.City, r.Buildings, r.APs, r.Reachability, r.Deliverability,
			r.OverheadMedian, r.OverheadP90, r.Islands)
	}
	return sb.String()
}
