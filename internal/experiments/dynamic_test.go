package experiments

import (
	"strings"
	"testing"
)

// The dynamic-disaster experiments join the PR-4 guarantee: byte-identical
// rendered output at any parallelism.

func TestDataMuleParallelMatchesSerial(t *testing.T) {
	run := func(par int) ([]DataMuleRow, error) {
		return DataMule(DataMuleConfig{Scale: 0.3, Pairs: 4, Seed: 1, Parallelism: par})
	}
	serial, err := run(1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if got, want := DataMuleText(parallel), DataMuleText(serial); got != want {
		t.Errorf("Text() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := DataMuleCSV(parallel), DataMuleCSV(serial); got != want {
		t.Errorf("CSV() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

func TestFloodFrontParallelMatchesSerial(t *testing.T) {
	run := func(par int) ([]FloodFrontRow, error) {
		return FloodFrontStudy(FloodFrontStudyConfig{
			Scale: 0.3, Pairs: 5, Seed: 1, Users: 24, Ticks: 6,
			ProbeTimes: []float64{0, 90}, Parallelism: par,
		})
	}
	serial, err := run(1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if got, want := FloodFrontText(parallel), FloodFrontText(serial); got != want {
		t.Errorf("Text() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := FloodFrontCSV(parallel), FloodFrontCSV(serial); got != want {
		t.Errorf("CSV() differs between par=1 and par=8:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestDataMuleHealsWhatStoreAndHealCannot is the experiment's thesis: on a
// river-partitioned city with no recovery coming, store-and-heal alone
// delivers nothing, and the bus fleet delivers a strict majority.
func TestDataMuleHealsWhatStoreAndHealCannot(t *testing.T) {
	rows, err := DataMule(DataMuleConfig{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 arms", len(rows))
	}
	base, mule := rows[0], rows[1]
	if base.Arm != "store-and-heal" || mule.Arm != "store-and-heal+mule" {
		t.Fatalf("unexpected arms %q, %q", base.Arm, mule.Arm)
	}
	if base.Delivered != 0 {
		t.Errorf("store-and-heal delivered %d cross-river pairs with no recovery; the banks must be severed", base.Delivered)
	}
	if mule.Delivered*2 <= mule.Pairs {
		t.Errorf("mule delivered only %d of %d pairs; the shuttle should heal a majority", mule.Delivered, mule.Pairs)
	}
	if mule.TimeToDeliverP50 <= 1 {
		t.Errorf("mule time-to-deliver p50 %.2fs is implausibly fast for a physical carry across the river", mule.TimeToDeliverP50)
	}
}

// TestFloodFrontDegradesTowardStatic: the dynamic arm starts healthier
// than the static snapshot and its down-fraction grows monotonically until
// it matches the snapshot's magnitude.
func TestFloodFrontDegradesTowardStatic(t *testing.T) {
	rows, err := FloodFrontStudy(FloodFrontStudyConfig{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	byArm := map[string][]FloodFrontRow{}
	for _, r := range rows {
		byArm[r.Arm] = append(byArm[r.Arm], r)
	}
	dyn, stat := byArm["floodfront"], byArm["static"]
	if len(dyn) == 0 || len(stat) != len(dyn) {
		t.Fatalf("arm rows: dynamic %d, static %d", len(dyn), len(stat))
	}
	if dyn[0].DownFrac != 0 {
		t.Errorf("at t=0 the front has not started, down fraction %.3f", dyn[0].DownFrac)
	}
	if dyn[0].DeliveryRate <= stat[0].DeliveryRate {
		t.Errorf("before the front arrives the dynamic arm (%.2f) should out-deliver the static snapshot (%.2f)",
			dyn[0].DeliveryRate, stat[0].DeliveryRate)
	}
	for i := 1; i < len(dyn); i++ {
		if dyn[i].DownFrac < dyn[i-1].DownFrac {
			t.Errorf("flood front receded: down %.3f at t=%.0f after %.3f at t=%.0f",
				dyn[i].DownFrac, dyn[i].TimeS, dyn[i-1].DownFrac, dyn[i-1].TimeS)
		}
	}
	last := len(dyn) - 1
	if dyn[last].DownFrac != stat[last].DownFrac {
		t.Errorf("final front magnitude %.3f does not match the static snapshot %.3f",
			dyn[last].DownFrac, stat[last].DownFrac)
	}
	for _, r := range stat {
		if r.DownFrac != stat[0].DownFrac {
			t.Errorf("static snapshot moved: %.3f at t=%.0f", r.DownFrac, r.TimeS)
		}
	}
}

func TestDynamicExperimentsRegistered(t *testing.T) {
	for _, name := range []string{"datamule", "floodfront"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	// The registry smoke path: datamule through RunByName with the shared
	// knobs, checking both rendered forms exist.
	res, err := RunByName("datamule", RunConfig{Scale: 0.3, Pairs: 3, Seed: 1, Parallelism: 2})
	if err != nil {
		t.Fatalf("RunByName(datamule): %v", err)
	}
	if !strings.Contains(res.Text(), "Data mule") {
		t.Errorf("Text() missing header:\n%s", res.Text())
	}
	if !strings.HasPrefix(res.CSV(), "arm,") {
		t.Errorf("CSV() missing header row:\n%s", res.CSV())
	}
}
