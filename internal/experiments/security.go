package experiments

import (
	"fmt"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// SecurityRow is one (attack fraction, path count) cell of the A5
// experiment: deliverability of k-route multipath under compromised
// (blackhole) APs. The paper's §1 sets the goal — "find a path between two
// nodes wishing to communicate if there exists a path that does not
// traverse a compromised node" — and this experiment measures how far
// route diversity gets toward it.
type SecurityRow struct {
	AttackFrac     float64
	Paths          int
	Pairs          int
	Deliverability float64
	BroadcastsP50  float64
}

// MultipathUnderAttack sweeps blackhole fractions × path counts on one
// city.
func MultipathUnderAttack(cityName string, scale float64, seed int64, fracs []float64, pathCounts []int, pairCount, par int) ([]SecurityRow, error) {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	if len(fracs) == 0 {
		fracs = []float64{0, 0.05, 0.1, 0.2}
	}
	if len(pathCounts) == 0 {
		pathCounts = []int{1, 2, 3}
	}
	if pairCount <= 0 {
		pairCount = 20
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pairs, err := sampleReachablePairs(n, seed, pairCount)
	if err != nil {
		return nil, err
	}

	var rows []SecurityRow
	for _, f := range fracs {
		blackholes := failSet(n.Mesh.NumAPs(), f, seed+7)
		for _, k := range pathCounts {
			row := SecurityRow{AttackFrac: f, Paths: k}
			delivered := 0
			var bcasts []float64
			type outcome struct {
				ran, delivered bool
				bcasts         float64
			}
			outs := runner.Map(par, len(pairs), func(i int) outcome {
				simCfg := sim.DefaultConfig()
				simCfg.Seed = runner.TaskSeed(seed, i)
				simCfg.Blackholes = blackholes
				res, err := n.MultipathSend(pairs[i][0], pairs[i][1], nil, k, simCfg)
				if err != nil {
					return outcome{}
				}
				return outcome{ran: true, delivered: res.Delivered, bcasts: float64(res.TotalBroadcasts)}
			})
			for _, o := range outs {
				if !o.ran {
					continue
				}
				row.Pairs++
				bcasts = append(bcasts, o.bcasts)
				if o.delivered {
					delivered++
				}
			}
			if row.Pairs > 0 {
				row.Deliverability = float64(delivered) / float64(row.Pairs)
			}
			if len(bcasts) > 0 {
				row.BroadcastsP50 = stats.Percentile(bcasts, 50)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// SecurityCSV renders the sweep as CSV.
func SecurityCSV(rows []SecurityRow) string {
	out := "attack_frac,paths,pairs,deliverability,bcast_p50\n"
	for _, r := range rows {
		out += fmt.Sprintf("%.2f,%d,%d,%.4f,%.1f\n",
			r.AttackFrac, r.Paths, r.Pairs, r.Deliverability, r.BroadcastsP50)
	}
	return out
}

// SecurityText renders the sweep as a table.
func SecurityText(rows []SecurityRow) string {
	out := fmt.Sprintf("A5: multipath deliverability under blackhole attack\n%-10s %6s %7s %8s %10s\n",
		"attack", "paths", "pairs", "deliv", "bcast p50")
	for _, r := range rows {
		out += fmt.Sprintf("%8.0f%% %6d %7d %7.1f%% %10.0f\n",
			100*r.AttackFrac, r.Paths, r.Pairs, 100*r.Deliverability, r.BroadcastsP50)
	}
	return out
}
