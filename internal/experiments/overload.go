package experiments

import (
	"fmt"
	"strings"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/faults"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/trafficgen"
)

// OverloadRow is one (flash-crowd load, failure fraction) cell of the
// user-traffic overload experiment: the session layer's degradation curve
// under a post-disaster flash crowd on a damaged mesh.
type OverloadRow struct {
	City     string
	Mode     faults.Mode
	FailFrac float64
	// Load is the flash-crowd rate multiplier.
	Load float64
	trafficgen.Report
}

// OverloadConfig scales the experiment.
type OverloadConfig struct {
	// City is the preset to run (default "gridtown").
	City string
	// Scale shrinks the preset (default 0.5).
	Scale float64
	// Mode is the fault injector (default disk — a localized disaster).
	Mode faults.Mode
	// FailFracs and Loads span the sweep grid (defaults {0, 0.3} ×
	// {1, 2, 4}).
	FailFracs []float64
	Loads     []float64
	// Users and Ticks size each cell's traffic run.
	Users int
	Ticks int
	// Seed drives injection, traffic, and transport randomness.
	Seed int64
	// Parallelism is the runner worker count over cells; output is
	// byte-identical at any value.
	Parallelism int
	// Traffic overrides generator defaults (Users/Ticks/Seed are set per
	// cell regardless).
	Traffic trafficgen.Config
}

// DefaultOverloadConfig is sized so the full sweep runs in CI smoke time.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		City:      "gridtown",
		Scale:     0.35,
		Mode:      faults.ModeDisk,
		FailFracs: []float64{0, 0.3},
		Loads:     []float64{1, 4},
		Users:     90,
		Ticks:     48,
		Seed:      1,
	}
}

// Overload sweeps flash-crowd load against failure fraction and reports
// the session layer's graceful-degradation curve. Each cell is one task on
// the parallel runner with a SplitMix64-derived seed; cells fold in index
// order, so the rendered output is byte-identical at any parallelism. The
// sweep hard-fails if any cell's per-cause accounting does not sum to its
// offered load — the attribution invariant is part of the experiment's
// contract, not just a statistic.
func Overload(cfg OverloadConfig) ([]OverloadRow, error) {
	def := DefaultOverloadConfig()
	if cfg.City == "" {
		cfg.City = def.City
	}
	if cfg.Scale <= 0 {
		cfg.Scale = def.Scale
	}
	if cfg.Mode == "" {
		cfg.Mode = def.Mode
	}
	if len(cfg.FailFracs) == 0 {
		cfg.FailFracs = def.FailFracs
	}
	if len(cfg.Loads) == 0 {
		cfg.Loads = def.Loads
	}
	if cfg.Users <= 0 {
		cfg.Users = def.Users
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = def.Ticks
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}

	spec, ok := citygen.Preset(cfg.City)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cfg.City)
	}
	if cfg.Scale > 0 && cfg.Scale < 1 {
		spec = scaleSpec(spec, cfg.Scale)
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", cfg.City, err)
	}

	type cell struct {
		frac, load float64
	}
	var cells []cell
	for _, frac := range cfg.FailFracs {
		for _, load := range cfg.Loads {
			cells = append(cells, cell{frac: frac, load: load})
		}
	}

	rows, err := runner.MapErr(cfg.Parallelism, len(cells), func(i int) (OverloadRow, error) {
		c := cells[i]
		row := OverloadRow{City: cfg.City, Mode: cfg.Mode, FailFrac: c.frac, Load: c.load}
		simCfg := sim.DefaultConfig()
		if c.frac > 0 {
			// The same fraction gets the same disaster across load levels
			// (seeded by frac, not by cell), isolating the load axis.
			inj, err := faults.Inject(n.Mesh, n.City, faults.Config{
				Mode: cfg.Mode, Frac: c.frac, Seed: cfg.Seed + int64(c.frac*1000),
			})
			if err != nil {
				return row, fmt.Errorf("experiments: overload inject %.2f: %w", c.frac, err)
			}
			inj.Apply(&simCfg)
		}
		tc := cfg.Traffic
		tc.Users = cfg.Users
		tc.Ticks = cfg.Ticks
		tc.FlashMultiplier = c.load
		tc.Seed = runner.TaskSeed(cfg.Seed, i)
		rep, err := trafficgen.Run(n, simCfg, tc)
		if err != nil {
			return row, fmt.Errorf("experiments: overload cell load=%g fail=%g: %w", c.load, c.frac, err)
		}
		row.Report = rep
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// OverloadText renders the sweep as an aligned table.
func OverloadText(rows []OverloadRow) string {
	var sb strings.Builder
	sb.WriteString("Overload: flash-crowd load vs AP failure (session admission + graceful degradation)\n")
	fmt.Fprintf(&sb, "%-10s %5s %5s %8s %7s %7s %7s %8s %8s %8s %8s %8s %8s %-9s\n",
		"city", "load", "fail", "offered", "deliv%", "rej%", "thr/s",
		"p50 s", "p99 s", "rej_adm", "rej_rate", "rej_buf", "drop_net", "peak")
	for _, r := range rows {
		delivPct := 0.0
		if r.Offered > 0 {
			delivPct = 100 * float64(r.Delivered) / float64(r.Offered)
		}
		fmt.Fprintf(&sb, "%-10s %4.0fx %4.0f%% %8d %6.1f%% %6.1f%% %7.2f %8.2f %8.2f %8d %8d %8d %8d %-9s\n",
			r.City, r.Load, 100*r.FailFrac, r.Offered, delivPct, 100*r.RejectRate(),
			r.Throughput, r.LatencyP50, r.LatencyP99,
			r.RejectedAdmission, r.RejectedRateLimit, r.RejectedBufferFull,
			r.DroppedNetworkExhausted, r.PeakTier)
	}
	return sb.String()
}

// OverloadCSV renders the sweep as CSV.
func OverloadCSV(rows []OverloadRow) string {
	var sb strings.Builder
	sb.WriteString("city,mode,load,fail_frac,users,ticks,offered,accepted,delivered," +
		"rej_admission,rej_rate_limit,rej_buffer_full,drop_network_exhausted," +
		"reject_rate,throughput,latency_p50,latency_p99,broadcasts,fetched,peak_tier\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%s,%.2f,%.2f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%.3f,%.3f,%.3f,%d,%d,%s\n",
			r.City, r.Mode, r.Load, r.FailFrac, r.Users, r.Ticks,
			r.Offered, r.Accepted, r.Delivered,
			r.RejectedAdmission, r.RejectedRateLimit, r.RejectedBufferFull,
			r.DroppedNetworkExhausted, r.RejectRate(), r.Throughput,
			r.LatencyP50, r.LatencyP99, r.Broadcasts, r.Fetched, r.PeakTier)
	}
	return sb.String()
}
