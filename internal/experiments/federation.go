package experiments

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"strings"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/internetwork"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// The federation experiment: the paper's §1 question — "how do we form an
// inter-network of DFNs across regions?" — answered with scaling numbers.
// It sweeps generated federations from 2 to 100 member cities and measures
// the two quantities the hierarchy is supposed to keep flat:
//
//   - per-AP routing state: an ordinary AP holds its region index and its
//     region's gateway list, independent of federation size, while the flat
//     baseline (every AP holds next-hop state per destination building
//     across all member cities) grows linearly;
//   - header size: an inter-region packet carries one constant-size region
//     prefix plus the largest intra-region header of any leg, while a flat
//     source route concatenates every leg's waypoints.
//
// Each cell also injects failures — a fraction of long-haul links down, or
// every region's primary gateway dead — and reports delivery through the
// multi-gateway failover and level-1 reroute machinery.

// FederationConfig parameterizes the sweep.
type FederationConfig struct {
	// Sizes lists the federation sizes (member-city counts) to sweep.
	Sizes []int
	// Topology is the long-haul link graph shape (default mesh, which
	// keeps redundant paths for the link-failure arms).
	Topology citygen.FedTopology
	// LinkFailFracs lists the fractions of long-haul links to fail, one
	// arm per fraction (0 = healthy baseline).
	LinkFailFracs []float64
	// DeadPrimaryGW adds one arm per size in which every multi-gateway
	// region's primary gateway is failed, forcing gateway failover.
	DeadPrimaryGW bool
	// Seed drives federation generation, failure selection and the
	// per-send simulations.
	Seed int64
	// Pairs is the number of inter-city sends per cell.
	Pairs int
	// Parallelism is the runner worker count (0 = GOMAXPROCS). Output is
	// byte-identical at any setting.
	Parallelism int
	// Sim overrides the per-leg simulator config (nil = defaults).
	Sim *sim.Config
}

// DefaultFederationConfig is the paper-style sweep: 2 to 100 cities on a
// mesh, healthy and 30%-links-down arms, plus the dead-primary-gateway arm.
func DefaultFederationConfig() FederationConfig {
	return FederationConfig{
		Sizes:         []int{2, 5, 10, 25, 50, 100},
		Topology:      citygen.TopoMesh,
		LinkFailFracs: []float64{0, 0.3},
		DeadPrimaryGW: true,
		Seed:          1,
		Pairs:         12,
	}
}

// federationSizesUpTo restricts the default size sweep to at most max
// cities, always including max itself (the -federation-cities CLI knob).
func federationSizesUpTo(max int) []int {
	var sizes []int
	for _, n := range DefaultFederationConfig().Sizes {
		if n < max {
			sizes = append(sizes, n)
		}
	}
	return append(sizes, max)
}

// FederationRow is one sweep cell: a federation size under one failure
// regime.
type FederationRow struct {
	Cities        int
	Topology      string
	LinkFailFrac  float64
	DeadPrimaryGW bool

	// Sends is the number of attempted inter-city sends; Partitioned
	// counts those the failed links disconnected at level 1 (no link path
	// exists — not a routing failure); Delivered counts end-to-end
	// successes. DeliveryRate is Delivered over the non-partitioned sends.
	Sends, Partitioned, Delivered int
	DeliveryRate                  float64
	GatewayFailovers, Reroutes    int

	// State accounting (bytes): what an ordinary AP holds under the
	// hierarchy, what a gateway holds, and what an AP would hold flat.
	PerAPStateBytes, GatewayStateBytes, FlatPerAPStateBytes int

	// Header accounting (bits) over delivered sends: hierarchical = the
	// constant region prefix plus the largest single-leg header; flat =
	// the legs' route waypoints concatenated into one source route.
	HierBitsP50, HierBitsP90 float64
	FlatBitsP50, FlatBitsP90 float64
	PrefixBits               float64
}

// FederationSweep runs the full sweep. Cells are independent runner tasks
// seeded by cell index, so results are byte-identical at any parallelism.
func FederationSweep(cfg FederationConfig) ([]FederationRow, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultFederationConfig().Sizes
	}
	if len(cfg.LinkFailFracs) == 0 {
		cfg.LinkFailFracs = []float64{0}
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = DefaultFederationConfig().Pairs
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	for _, n := range cfg.Sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: federation size %d < 2", n)
		}
	}

	type cell struct {
		size   int
		frac   float64
		gwFail bool
	}
	var cells []cell
	for _, n := range cfg.Sizes {
		for _, f := range cfg.LinkFailFracs {
			cells = append(cells, cell{size: n, frac: f})
		}
		if cfg.DeadPrimaryGW {
			cells = append(cells, cell{size: n, gwFail: true})
		}
	}
	return runner.MapErr(cfg.Parallelism, len(cells), func(i int) (FederationRow, error) {
		c := cells[i]
		return federationCell(cfg, c.size, c.frac, c.gwFail, i)
	})
}

// federationCell builds one federation, injects the cell's failures, runs
// the sends, and aggregates the row. Everything derives from
// runner.TaskSeed(cfg.Seed, cellIdx), never from worker identity.
func federationCell(cfg FederationConfig, size int, frac float64, gwFail bool, cellIdx int) (FederationRow, error) {
	fed, err := citygen.GenerateFederation(citygen.FederationSpec{
		Cities: size, Topology: cfg.Topology, Seed: cfg.Seed,
	})
	if err != nil {
		return FederationRow{}, err
	}
	in := internetwork.New()
	regions := make([]*internetwork.Region, len(fed.Cities))
	totalBuildings := 0
	for i, fc := range fed.Cities {
		net, err := core.FromSpec(fc.Spec, core.DefaultConfig())
		if err != nil {
			return FederationRow{}, fmt.Errorf("experiments: member %s: %w", fc.Name, err)
		}
		totalBuildings += net.City.NumBuildings()
		r := &internetwork.Region{
			ID: internetwork.RegionID(fc.Name), Net: net,
			Gateways: federationGateways(net), Pos: fc.PosKm,
		}
		if err := in.AddRegion(r); err != nil {
			return FederationRow{}, err
		}
		regions[i] = r
	}
	for _, l := range fed.Links {
		if err := in.AddLink(internetwork.Link{
			A:    internetwork.RegionID(fed.Cities[l.A].Name),
			B:    internetwork.RegionID(fed.Cities[l.B].Name),
			Kind: internetwork.LinkFiber, LatencySeconds: l.LatencyS,
			BandwidthMbps: l.BandwidthMbps,
		}); err != nil {
			return FederationRow{}, err
		}
	}

	rng := rand.New(rand.NewSource(runner.TaskSeed(cfg.Seed, cellIdx)))
	if frac > 0 {
		links := in.Links()
		k := int(math.Round(frac * float64(len(links))))
		for _, li := range rng.Perm(len(links))[:k] {
			in.FailLink(links[li].A, links[li].B, true)
		}
	}
	if gwFail {
		// Kill every primary gateway that has a live alternate: the arm
		// measures failover, not deliberate region loss.
		for _, r := range regions {
			if len(r.Gateways) >= 2 {
				in.FailGateway(r.ID, r.Gateways[0], true)
			}
		}
	}

	endpoints := make([]int, len(regions))
	for i, r := range regions {
		endpoints[i] = federationEndpoint(r)
	}

	simCfg := sim.DefaultConfig()
	if cfg.Sim != nil {
		simCfg = *cfg.Sim
	}
	row := FederationRow{
		Cities: size, Topology: cfg.Topology.String(),
		LinkFailFrac: frac, DeadPrimaryGW: gwFail,
	}
	var hierBits, flatBits, prefixBits []float64
	payload := []byte("federation probe")
	for k := 0; k < cfg.Pairs; k++ {
		srcCity := k % size
		dstCity := (srcCity + 1 + rng.Intn(size-1)) % size
		sendSeed := runner.TaskSeed(cfg.Seed, cellIdx*100003+k+1)
		legSim := simCfg
		legSim.Seed = sendSeed
		res, err := in.SendOpts(
			internetwork.Address{Region: regions[srcCity].ID, Building: endpoints[srcCity]},
			internetwork.Address{Region: regions[dstCity].ID, Building: endpoints[dstCity]},
			payload, legSim, internetwork.SendOptions{Seed: sendSeed})
		if err != nil {
			return FederationRow{}, err
		}
		row.Sends++
		row.GatewayFailovers += res.GatewayFailovers
		row.Reroutes += res.Reroutes
		if res.Failure == internetwork.FailNoLinkPath {
			row.Partitioned++
			continue
		}
		if !res.Delivered {
			continue
		}
		row.Delivered++
		maxHeader, maxRoute, wps, transits := 0, 0, 0, 0
		for _, leg := range res.Legs {
			switch leg.Reason {
			case internetwork.LegOK:
				wps += leg.Waypoints
				if leg.HeaderBits > maxHeader {
					maxHeader = leg.HeaderBits
				}
				if leg.RouteBits > maxRoute {
					maxRoute = leg.RouteBits
				}
			case internetwork.LegPassthrough:
				// A flat source route still names the gateway building it
				// crosses; the hierarchy crosses it with zero route bits.
				transits++
			}
		}
		// Hierarchical: constant prefix + the largest per-leg header any
		// relay parses; waypoints are region-local. Flat: one source
		// route spanning the federation — every waypoint of every leg
		// plus each transit building, each at federation-global width.
		globalBits := bits.Len(uint(totalBuildings - 1))
		hierBits = append(hierBits, float64(res.PrefixBits+maxHeader))
		flatBits = append(flatBits, float64((maxHeader-maxRoute)+(wps+transits)*globalBits))
		prefixBits = append(prefixBits, float64(res.PrefixBits))
	}
	if n := row.Sends - row.Partitioned; n > 0 {
		row.DeliveryRate = float64(row.Delivered) / float64(n)
	}
	// Leave the bit columns zero (not NaN) when nothing delivered, so rows
	// stay comparable with reflect.DeepEqual.
	if len(hierBits) > 0 {
		hs, fs := stats.Summarize(hierBits), stats.Summarize(flatBits)
		row.HierBitsP50, row.HierBitsP90 = hs.P50, hs.P90
		row.FlatBitsP50, row.FlatBitsP90 = fs.P50, fs.P90
		row.PrefixBits = stats.Summarize(prefixBits).Mean
	}

	// State is a topology property, not a traffic property: report the
	// first region's ordinary-AP state (all members are generated alike).
	row.PerAPStateBytes = in.PerAPL1StateBytes(regions[0].ID)
	row.GatewayStateBytes = in.GatewayStateBytes()
	row.FlatPerAPStateBytes = in.FlatPerAPStateBytes()
	return row, nil
}

// federationGateways picks up to two gateway buildings inside the member
// mesh's largest island: a primary and a failover.
func federationGateways(n *core.Network) []int {
	islands := n.Mesh.Islands()
	if len(islands) == 0 {
		return []int{0}
	}
	var gws []int
	for b := 0; b < n.City.NumBuildings() && len(gws) < 2; b++ {
		aps := n.Mesh.APsInBuilding(b)
		if len(aps) > 0 && n.Mesh.ComponentOf(int(aps[0])) == islands[0].Component {
			gws = append(gws, b)
		}
	}
	if len(gws) == 0 {
		return []int{0}
	}
	return gws
}

// federationEndpoint picks the region's send endpoint: the first non-gateway
// island building with plannable routes to and from every gateway, falling
// back to the primary gateway itself.
func federationEndpoint(r *internetwork.Region) int {
	n := r.Net
	islands := n.Mesh.Islands()
	if len(islands) == 0 {
		return r.Gateways[0]
	}
	isGW := map[int]bool{}
	for _, g := range r.Gateways {
		isGW[g] = true
	}
	for b := 0; b < n.City.NumBuildings(); b++ {
		aps := n.Mesh.APsInBuilding(b)
		if len(aps) == 0 || n.Mesh.ComponentOf(int(aps[0])) != islands[0].Component || isGW[b] {
			continue
		}
		ok := true
		for _, g := range r.Gateways {
			if _, err := n.PlanRoute(b, g); err != nil {
				ok = false
				break
			}
			if _, err := n.PlanRoute(g, b); err != nil {
				ok = false
				break
			}
		}
		if ok {
			return b
		}
	}
	return r.Gateways[0]
}

// FederationText renders the sweep with the scaling verdict the hierarchy
// is judged on: state and header growth factors from the smallest to the
// largest healthy federation.
func FederationText(rows []FederationRow) string {
	var sb strings.Builder
	sb.WriteString("Federation sweep: two-level hierarchy vs flat baseline\n")
	sb.WriteString("cities  topology  linkfail  gwfail  sends  part  deliv  rate   failover  reroute  apB  gwB     flatB    hierP50  hierP90  flatP50  flatP90\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%6d  %-8s  %8.2f  %6v  %5d  %4d  %5d  %5.3f  %8d  %7d  %3d  %6d  %7d  %7.0f  %7.0f  %7.0f  %7.0f\n",
			r.Cities, r.Topology, r.LinkFailFrac, r.DeadPrimaryGW,
			r.Sends, r.Partitioned, r.Delivered, r.DeliveryRate,
			r.GatewayFailovers, r.Reroutes,
			r.PerAPStateBytes, r.GatewayStateBytes, r.FlatPerAPStateBytes,
			r.HierBitsP50, r.HierBitsP90, r.FlatBitsP50, r.FlatBitsP90)
	}
	if lo, hi, ok := federationBaselinePair(rows); ok {
		growth := func(a, b float64) string {
			if a <= 0 || math.IsNaN(a) || math.IsNaN(b) {
				return "n/a"
			}
			return fmt.Sprintf("%.2fx", b/a)
		}
		fmt.Fprintf(&sb, "growth %d -> %d cities (healthy): per-AP state %s, hier header p90 %s; flat state %s, flat header p90 %s\n",
			lo.Cities, hi.Cities,
			growth(float64(lo.PerAPStateBytes), float64(hi.PerAPStateBytes)),
			growth(lo.HierBitsP90, hi.HierBitsP90),
			growth(float64(lo.FlatPerAPStateBytes), float64(hi.FlatPerAPStateBytes)),
			growth(lo.FlatBitsP90, hi.FlatBitsP90))
	}
	return sb.String()
}

// federationBaselinePair finds the smallest and largest healthy
// (no-failure) rows for the growth-factor summary.
func federationBaselinePair(rows []FederationRow) (lo, hi FederationRow, ok bool) {
	for _, r := range rows {
		if r.LinkFailFrac != 0 || r.DeadPrimaryGW {
			continue
		}
		if !ok {
			lo, hi, ok = r, r, true
			continue
		}
		if r.Cities < lo.Cities {
			lo = r
		}
		if r.Cities > hi.Cities {
			hi = r
		}
	}
	return lo, hi, ok && lo.Cities != hi.Cities
}

// FederationCSV renders the sweep as CSV.
func FederationCSV(rows []FederationRow) string {
	var sb strings.Builder
	sb.WriteString("cities,topology,link_fail_frac,dead_primary_gw,sends,partitioned,delivered,delivery_rate," +
		"gateway_failovers,reroutes,per_ap_state_bytes,gateway_state_bytes,flat_per_ap_state_bytes," +
		"prefix_bits,hier_bits_p50,hier_bits_p90,flat_bits_p50,flat_bits_p90\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%d,%s,%.2f,%v,%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%.1f,%.0f,%.0f,%.0f,%.0f\n",
			r.Cities, r.Topology, r.LinkFailFrac, r.DeadPrimaryGW,
			r.Sends, r.Partitioned, r.Delivered, r.DeliveryRate,
			r.GatewayFailovers, r.Reroutes,
			r.PerAPStateBytes, r.GatewayStateBytes, r.FlatPerAPStateBytes,
			r.PrefixBits, r.HierBitsP50, r.HierBitsP90, r.FlatBitsP50, r.FlatBitsP90)
	}
	return sb.String()
}
