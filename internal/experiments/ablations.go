package experiments

import (
	"fmt"
	"strings"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/routing"
	"citymesh/internal/runner"
	"citymesh/internal/sim"
	"citymesh/internal/stats"
)

// AblationRow is one parameter setting's outcome over a fixed pair sample.
type AblationRow struct {
	Label          string
	Pairs          int
	Deliverability float64
	OverheadMedian float64
	BroadcastsP50  float64
}

// AblationText renders ablation rows.
func AblationText(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-18s %7s %8s %10s %10s\n", title, "setting", "pairs", "deliv", "ovh p50", "bcast p50")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %7d %7.1f%% %9.1fx %10.0f\n",
			r.Label, r.Pairs, 100*r.Deliverability, r.OverheadMedian, r.BroadcastsP50)
	}
	return sb.String()
}

// AblationCSV renders ablation rows as CSV.
func AblationCSV(rows []AblationRow) string {
	out := "setting,pairs,deliverability,overhead_p50,bcast_p50\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s,%d,%.4f,%.2f,%.1f\n",
			r.Label, r.Pairs, r.Deliverability, r.OverheadMedian, r.BroadcastsP50)
	}
	return out
}

// sampleReachablePairs builds the shared pair sample for ablations.
func sampleReachablePairs(n *core.Network, seed int64, count int) ([][2]int, error) {
	pairs, err := n.RandomPairs(seed, count*6)
	if err != nil {
		return nil, err
	}
	var out [][2]int
	for _, p := range pairs {
		if len(out) >= count {
			break
		}
		if !n.Reachable(p[0], p[1]) {
			continue
		}
		if _, err := n.BuildingPath(p[0], p[1]); err != nil {
			continue
		}
		out = append(out, p)
	}
	return out, nil
}

// ConduitWidthSweep measures deliverability and overhead as the conduit
// width W varies (A1): narrow conduits tolerate less misprediction, wide
// conduits rebroadcast more.
func ConduitWidthSweep(cityName string, scale float64, seed int64, widths []float64, pairCount, par int) ([]AblationRow, error) {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	if len(widths) == 0 {
		widths = []float64{25, 35, 50, 75, 100}
	}
	if pairCount <= 0 {
		pairCount = 30
	}

	rows := make([]AblationRow, 0, len(widths))
	for _, w := range widths {
		cfg := core.DefaultConfig()
		cfg.ConduitWidth = w
		n, err := core.FromSpec(spec, cfg)
		if err != nil {
			return nil, err
		}
		pairs, err := sampleReachablePairs(n, seed, pairCount)
		if err != nil {
			return nil, err
		}
		row := runPairs(n, pairs, fmt.Sprintf("W=%.0fm", w), seed, par)
		rows = append(rows, row)
	}
	return rows, nil
}

// WeightExponentSweep compares edge-weight exponents for the building graph
// (A2): the paper's cubed weights versus linear and squared.
func WeightExponentSweep(cityName string, scale float64, seed int64, exponents []float64, pairCount, par int) ([]AblationRow, error) {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	if len(exponents) == 0 {
		exponents = []float64{1, 2, 3, 4}
	}
	if pairCount <= 0 {
		pairCount = 30
	}
	rows := make([]AblationRow, 0, len(exponents))
	for _, e := range exponents {
		cfg := core.DefaultConfig()
		cfg.WeightExponent = e
		n, err := core.FromSpec(spec, cfg)
		if err != nil {
			return nil, err
		}
		pairs, err := sampleReachablePairs(n, seed, pairCount)
		if err != nil {
			return nil, err
		}
		rows = append(rows, runPairs(n, pairs, fmt.Sprintf("gap^%.0f", e), seed, par))
	}
	return rows, nil
}

// runPairs sends across each pair under the CityMesh policy and
// summarizes. Pairs run as parallel tasks seeded by task index; the fold
// below walks results in task-index order, so output is identical at any
// parallelism.
func runPairs(n *core.Network, pairs [][2]int, label string, seed int64, par int) AblationRow {
	type outcome struct {
		ran, delivered bool
		bcasts         float64
		overhead       float64
	}
	outs := runner.Map(par, len(pairs), func(i int) outcome {
		simCfg := sim.DefaultConfig()
		simCfg.Seed = runner.TaskSeed(seed, i)
		res, err := n.Send(pairs[i][0], pairs[i][1], nil, simCfg)
		if err != nil {
			return outcome{}
		}
		return outcome{
			ran: true, delivered: res.Sim.Delivered,
			bcasts: float64(res.Sim.Broadcasts), overhead: res.Overhead(),
		}
	})
	row := AblationRow{Label: label}
	delivered := 0
	var overheads, bcasts []float64
	for _, o := range outs {
		if !o.ran {
			continue
		}
		row.Pairs++
		bcasts = append(bcasts, o.bcasts)
		if o.delivered {
			delivered++
			if o.overhead > 0 {
				overheads = append(overheads, o.overhead)
			}
		}
	}
	if row.Pairs > 0 {
		row.Deliverability = float64(delivered) / float64(row.Pairs)
	}
	if len(overheads) > 0 {
		row.OverheadMedian = stats.Percentile(overheads, 50)
	}
	if len(bcasts) > 0 {
		row.BroadcastsP50 = stats.Percentile(bcasts, 50)
	}
	return row
}

// BaselineComparison runs CityMesh against flooding, gossip, greedy
// geographic forwarding and the AODV cost model on the same pair sample
// (A3).
func BaselineComparison(cityName string, scale float64, seed int64, pairCount, par int) ([]AblationRow, error) {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	if pairCount <= 0 {
		pairCount = 30
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pairs, err := sampleReachablePairs(n, seed, pairCount)
	if err != nil {
		return nil, err
	}

	policies := []sim.Policy{
		routing.NewCityMesh(),
		routing.Flood{},
		routing.Gossip{P: 0.65},
		routing.GreedyGeo{},
		routing.GreedyGeo{Fallback: true},
	}
	type outcome struct {
		ran, delivered bool
		bcasts         float64
		overhead       float64
		hasOverhead    bool
	}
	fold := func(label string, outs []outcome) AblationRow {
		row := AblationRow{Label: label}
		delivered := 0
		var overheads, bcasts []float64
		for _, o := range outs {
			if !o.ran {
				continue
			}
			row.Pairs++
			bcasts = append(bcasts, o.bcasts)
			if o.delivered {
				delivered++
				if o.hasOverhead {
					overheads = append(overheads, o.overhead)
				}
			}
		}
		if row.Pairs > 0 {
			row.Deliverability = float64(delivered) / float64(row.Pairs)
		}
		if len(overheads) > 0 {
			row.OverheadMedian = stats.Percentile(overheads, 50)
		}
		if len(bcasts) > 0 {
			row.BroadcastsP50 = stats.Percentile(bcasts, 50)
		}
		return row
	}

	// One shared engine for the whole sweep: each policy is injected per
	// run via RunPolicy, and concurrent tasks draw scratch from its pool.
	eng := n.Engine()
	var rows []AblationRow
	for _, pol := range policies {
		pol := pol
		outs := runner.Map(par, len(pairs), func(i int) outcome {
			p := pairs[i]
			r, err := n.PlanRoute(p[0], p[1])
			if err != nil {
				return outcome{}
			}
			pkt, err := n.NewPacket(r, nil)
			if err != nil {
				return outcome{}
			}
			simCfg := sim.DefaultConfig()
			simCfg.Seed = runner.TaskSeed(seed, i)
			res, err := eng.RunPolicy(pol, pkt, simCfg)
			if err != nil {
				return outcome{}
			}
			o := outcome{ran: true, delivered: res.Delivered, bcasts: float64(res.Broadcasts)}
			if res.Delivered {
				if ideal, err := n.Mesh.MinTransmissions(p[0], p[1]); err == nil && ideal > 0 {
					o.overhead, o.hasOverhead = res.Overhead(ideal), true
				}
			}
			return o
		})
		rows = append(rows, fold(pol.Name(), outs))
	}

	// AODV cost model: per-message route discovery + unicast data. The
	// RREQ flood ignores the engine's policy, so the shared engine serves
	// here too via RunPolicy inside AODVDiscoverEngine.
	outs := runner.Map(par, len(pairs), func(i int) outcome {
		p := pairs[i]
		simCfg := sim.DefaultConfig()
		simCfg.Seed = runner.TaskSeed(seed, i)
		cost := routing.AODVDiscoverEngine(eng, p[0], p[1], simCfg)
		o := outcome{ran: true, delivered: cost.Delivered, bcasts: float64(cost.Total())}
		if cost.Delivered {
			if ideal, err := n.Mesh.MinTransmissions(p[0], p[1]); err == nil && ideal > 0 {
				o.overhead, o.hasOverhead = float64(cost.Total())/float64(ideal), true
			}
		}
		return o
	})
	rows = append(rows, fold("aodv-model", outs))
	return rows, nil
}

// FailureInjection measures deliverability as a growing random fraction of
// APs fail or are compromised (A4) — the DFN resilience question from §1.
func FailureInjection(cityName string, scale float64, seed int64, fracs []float64, pairCount, par int) ([]AblationRow, error) {
	spec, ok := citygen.Preset(cityName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown city %q", cityName)
	}
	if scale > 0 && scale < 1 {
		spec = scaleSpec(spec, scale)
	}
	if len(fracs) == 0 {
		fracs = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if pairCount <= 0 {
		pairCount = 30
	}
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pairs, err := sampleReachablePairs(n, seed, pairCount)
	if err != nil {
		return nil, err
	}

	eng := n.Engine()
	rows := make([]AblationRow, 0, len(fracs))
	for _, f := range fracs {
		// The failure set is converted to a bitset once per fraction so the
		// inner runs share one immutable NodeSet instead of a map each.
		failed := sim.NodeSetFromMap(failSet(n.Mesh.NumAPs(), f, seed))
		type outcome struct {
			ran, delivered bool
			bcasts         float64
		}
		outs := runner.Map(par, len(pairs), func(i int) outcome {
			p := pairs[i]
			r, err := n.PlanRoute(p[0], p[1])
			if err != nil {
				return outcome{}
			}
			pkt, err := n.NewPacket(r, nil)
			if err != nil {
				return outcome{}
			}
			simCfg := sim.DefaultConfig()
			simCfg.Seed = runner.TaskSeed(seed, i)
			simCfg.FailedSet = failed
			res, err := eng.Run(pkt, simCfg)
			if err != nil {
				return outcome{}
			}
			return outcome{ran: true, delivered: res.Delivered, bcasts: float64(res.Broadcasts)}
		})
		row := AblationRow{Label: fmt.Sprintf("fail=%.0f%%", 100*f)}
		delivered := 0
		var bcasts []float64
		for _, o := range outs {
			if !o.ran {
				continue
			}
			row.Pairs++
			bcasts = append(bcasts, o.bcasts)
			if o.delivered {
				delivered++
			}
		}
		if row.Pairs > 0 {
			row.Deliverability = float64(delivered) / float64(row.Pairs)
		}
		if len(bcasts) > 0 {
			row.BroadcastsP50 = stats.Percentile(bcasts, 50)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// failSet deterministically marks a fraction of AP ids as failed.
func failSet(numAPs int, frac float64, seed int64) map[int]bool {
	if frac <= 0 {
		return nil
	}
	// A multiplicative hash keeps the set stable per (seed, frac) without
	// a full permutation.
	out := make(map[int]bool, int(float64(numAPs)*frac))
	threshold := uint64(frac * float64(1<<32))
	for i := 0; i < numAPs; i++ {
		x := uint64(i)*0x9e3779b97f4a7c15 + uint64(seed)
		x ^= x >> 29
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 32
		if x&0xffffffff < threshold {
			out[i] = true
		}
	}
	return out
}
