// Package routing implements the forwarding policies the evaluation runs
// inside the simulator: the CityMesh conduit policy (the paper's
// contribution) and the comparison baselines — blind flooding, gossip
// (probabilistic) flooding, and greedy geographic forwarding — plus an
// AODV-style route-discovery cost model.
package routing

import (
	"math"

	"citymesh/internal/fwd"
	"citymesh/internal/packet"
	"citymesh/internal/sim"
)

// CityMesh is the paper's policy (§3 step 3): an AP rebroadcasts a packet
// if and only if its *building* falls inside one of the conduits
// reconstructed from the waypoint buildings in the packet header ("Only
// APs in buildings that fall within the geographic area of the conduits
// ... rebroadcast"; §4 confirms "currently all the APs within a building
// rebroadcast" when explaining the 13x overhead). Relay APs outside any
// building test their own position instead. The AP consults nothing but
// its copy of the building map and the header — no routing tables, no
// neighbor state.
//
// The decision itself lives in the shared forwarding kernel
// (internal/fwd), the same code path the live AP agent executes; this
// type is a thin sim.Policy adapter plus the kernel's bounded per-message
// conduit cache.
type CityMesh struct {
	k *fwd.Kernel
}

// NewCityMesh returns the conduit policy.
func NewCityMesh() *CityMesh {
	return &CityMesh{k: fwd.NewKernel(fwd.Options{})}
}

// Name implements sim.Policy.
func (c *CityMesh) Name() string { return "citymesh" }

// OnReceive implements sim.Policy.
func (c *CityMesh) OnReceive(ctx *sim.Context, ap int, pkt *packet.Packet, from int) sim.Decision {
	ttl := ctx.TTL
	if ttl <= 0 {
		// Direct caller that didn't thread the as-received TTL: trust the
		// header (the engine always sets ctx.TTL).
		ttl = int(pkt.Header.TTL)
	}
	a := ctx.Mesh.APs[ap]
	v := c.k.DecideTTL(ctx.City, &pkt.Header, ttl,
		fwd.Self{Pos: a.Pos, Building: a.Building}, from < 0)
	return sim.Decision{Rebroadcast: v.Rebroadcast}
}

// DecisionCounts implements sim.DecisionCounter: cumulative kernel
// decision totals since this policy was created.
func (c *CityMesh) DecisionCounts() fwd.Counts { return c.k.Counts() }

// Flood is blind flooding: every AP rebroadcasts every new packet until the
// TTL expires. It is the delivery-probability upper bound and the overhead
// worst case.
type Flood struct{}

// Name implements sim.Policy.
func (Flood) Name() string { return "flood" }

// OnReceive implements sim.Policy.
func (Flood) OnReceive(*sim.Context, int, *packet.Packet, int) sim.Decision {
	return sim.Decision{Rebroadcast: true}
}

// Gossip rebroadcasts each new packet independently with probability P — a
// classic broadcast-storm mitigation.
type Gossip struct {
	// P is the rebroadcast probability in (0, 1].
	P float64
}

// Name implements sim.Policy.
func (Gossip) Name() string { return "gossip" }

// OnReceive implements sim.Policy.
func (g Gossip) OnReceive(ctx *sim.Context, ap int, pkt *packet.Packet, from int) sim.Decision {
	if from < 0 {
		// The source always transmits.
		return sim.Decision{Rebroadcast: true}
	}
	return sim.Decision{Rebroadcast: ctx.RNG.Float64() < g.P}
}

// GreedyGeo is greedy geographic forwarding (GPSR's greedy mode): each AP
// unicasts to the neighbor closest to the destination building's centroid.
// When no neighbor is strictly closer (a void), it optionally falls back to
// the least-bad neighbor, relying on the engine's duplicate suppression to
// avoid loops — a simplified stand-in for perimeter routing.
//
// Unlike CityMesh, this baseline assumes each AP knows its neighbors'
// positions (the beacon overhead the paper's §5 criticizes is not charged
// here, making the comparison conservative in the baseline's favor).
type GreedyGeo struct {
	// Fallback enables forwarding to the least-regressing neighbor at a
	// void instead of dropping.
	Fallback bool
}

// Name implements sim.Policy.
func (g GreedyGeo) Name() string {
	if g.Fallback {
		return "greedy+fallback"
	}
	return "greedy"
}

// OnReceive implements sim.Policy.
func (g GreedyGeo) OnReceive(ctx *sim.Context, ap int, pkt *packet.Packet, from int) sim.Decision {
	dstPos := ctx.City.Buildings[ctx.Dst].Centroid
	self := ctx.Mesh.APs[ap].Pos
	selfD := self.Dist(dstPos)

	best, bestD := -1, math.Inf(1)
	second, secondD := -1, math.Inf(1)
	ctx.Mesh.Neighbors(ap, func(n int) {
		if n == from {
			return // never bounce straight back
		}
		d := ctx.Mesh.APs[n].Pos.Dist(dstPos)
		switch {
		case d < bestD:
			second, secondD = best, bestD
			best, bestD = n, d
		case d < secondD:
			second, secondD = n, d
		}
	})
	if best < 0 {
		return sim.Decision{}
	}
	if bestD < selfD {
		return sim.Decision{NextHops: []int32{int32(best)}}
	}
	if g.Fallback {
		// Void: hand to the two least-bad neighbors; duplicate suppression
		// at each AP bounds the wandering. This is a crude stand-in for
		// perimeter routing, enough to show the void-recovery trade-off.
		hops := []int32{int32(best)}
		if second >= 0 {
			hops = append(hops, int32(second))
		}
		return sim.Decision{NextHops: hops}
	}
	return sim.Decision{}
}
