package routing

import (
	"math/rand"
	"testing"

	"citymesh/internal/buildinggraph"
	"citymesh/internal/citygen"
	"citymesh/internal/conduit"
	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/sim"
)

func planCity(seed int64) *osm.City {
	plan, err := citygen.Generate(citygen.SmallTestSpec(seed))
	if err != nil {
		panic(err)
	}
	city := &osm.City{Name: plan.Spec.Name, Bounds: plan.Bounds}
	for i, b := range plan.Buildings {
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: b.Footprint, Centroid: b.Footprint.Centroid(),
		})
	}
	return city
}

// buildPacket plans a CityMesh route src->dst and wraps it in a packet.
func buildPacket(t testing.TB, city *osm.City, g *buildinggraph.Graph, src, dst int, width float64) *packet.Packet {
	t.Helper()
	path, _, err := g.ShortestPath(src, dst)
	if err != nil {
		t.Fatalf("no building path %d->%d: %v", src, dst, err)
	}
	r, err := conduit.Compress(city, path, width)
	if err != nil {
		t.Fatal(err)
	}
	wps := make([]uint32, len(r.Waypoints))
	for i, w := range r.Waypoints {
		wps[i] = uint32(w)
	}
	return &packet.Packet{
		Header: packet.Header{
			TTL:       packet.DefaultTTL,
			MsgID:     uint64(src)<<32 | uint64(dst),
			Width:     uint8(width),
			Waypoints: wps,
		},
		Payload: []byte("test"),
	}
}

// reachablePair finds a building pair that is mesh-reachable with a
// multi-hop building path.
func reachablePair(t testing.TB, city *osm.City, g *buildinggraph.Graph, m *mesh.Mesh, seed int64) (int, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := city.NumBuildings()
	for trial := 0; trial < 500; trial++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || !m.Reachable(a, b) {
			continue
		}
		path, _, err := g.ShortestPath(a, b)
		if err != nil || len(path) < 4 {
			continue
		}
		if city.Buildings[a].Centroid.Dist(city.Buildings[b].Centroid) < 200 {
			continue
		}
		return a, b
	}
	t.Skip("no suitable reachable pair found")
	return 0, 0
}

func testSetup(t testing.TB, seed int64) (*osm.City, *buildinggraph.Graph, *mesh.Mesh) {
	city := planCity(seed)
	g := buildinggraph.Build(city, buildinggraph.DefaultConfig())
	m := mesh.Place(city, mesh.DefaultConfig())
	return city, g, m
}

// runSim executes one run on a throwaway engine, failing the test if the
// run never started.
func runSim(t testing.TB, m *mesh.Mesh, city *osm.City, pol sim.Policy, pkt *packet.Packet, cfg sim.Config) sim.Result {
	t.Helper()
	res, err := sim.NewEngine(m, city, pol).Run(pkt, cfg)
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	return res
}

func TestCityMeshDelivers(t *testing.T) {
	city, g, m := testSetup(t, 51)
	src, dst := reachablePair(t, city, g, m, 1)
	pkt := buildPacket(t, city, g, src, dst, 50)
	res := runSim(t, m, city, NewCityMesh(), pkt, sim.DefaultConfig())
	if !res.Delivered {
		t.Fatalf("CityMesh failed to deliver %d->%d", src, dst)
	}
	if res.Broadcasts <= 0 {
		t.Error("no broadcasts recorded")
	}
}

func TestFloodDelivers(t *testing.T) {
	city, g, m := testSetup(t, 52)
	src, dst := reachablePair(t, city, g, m, 2)
	pkt := buildPacket(t, city, g, src, dst, 50)
	res := runSim(t, m, city, Flood{}, pkt, sim.DefaultConfig())
	if !res.Delivered {
		t.Fatal("flooding must deliver any reachable pair")
	}
}

func TestCityMeshCheaperThanFlood(t *testing.T) {
	city, g, m := testSetup(t, 53)
	src, dst := reachablePair(t, city, g, m, 3)
	pkt := buildPacket(t, city, g, src, dst, 50)
	cm := runSim(t, m, city, NewCityMesh(), pkt, sim.DefaultConfig())
	fl := runSim(t, m, city, Flood{}, pkt.Clone(), sim.DefaultConfig())
	if !cm.Delivered || !fl.Delivered {
		t.Skipf("delivery cm=%v fl=%v", cm.Delivered, fl.Delivered)
	}
	if cm.Broadcasts >= fl.Broadcasts {
		t.Errorf("CityMesh broadcasts %d >= flood %d; conduit not suppressing",
			cm.Broadcasts, fl.Broadcasts)
	}
}

func TestCityMeshOnlyConduitAPsForward(t *testing.T) {
	city, g, m := testSetup(t, 54)
	src, dst := reachablePair(t, city, g, m, 4)
	pkt := buildPacket(t, city, g, src, dst, 50)
	cfg := sim.DefaultConfig()
	cfg.RecordTranscript = true
	res := runSim(t, m, city, NewCityMesh(), pkt, cfg)

	wps := make([]int, len(pkt.Header.Waypoints))
	for i, w := range pkt.Header.Waypoints {
		wps[i] = int(w)
	}
	cs, err := (conduit.Route{Waypoints: wps, Width: 50}).Conduits(city)
	if err != nil {
		t.Fatal(err)
	}
	for id, rec := range res.Transcript {
		if !rec.Forwarded || id == res.SourceAP {
			continue
		}
		// Membership is by building: all APs of an in-conduit building
		// rebroadcast (§4).
		pos := m.APs[id].Pos
		if b := m.APs[id].Building; b >= 0 {
			pos = city.Buildings[b].Centroid
		}
		if !conduit.Contains(cs, pos) {
			t.Fatalf("AP %d (building %d) forwarded outside the conduit", id, m.APs[id].Building)
		}
	}
}

func TestGossipBetweenCityMeshAndFlood(t *testing.T) {
	city, g, m := testSetup(t, 55)
	src, dst := reachablePair(t, city, g, m, 5)
	pkt := buildPacket(t, city, g, src, dst, 50)
	fl := runSim(t, m, city, Flood{}, pkt.Clone(), sim.DefaultConfig())
	go65 := runSim(t, m, city, Gossip{P: 0.65}, pkt.Clone(), sim.DefaultConfig())
	if go65.Broadcasts >= fl.Broadcasts {
		t.Errorf("gossip broadcasts %d >= flood %d", go65.Broadcasts, fl.Broadcasts)
	}
}

func TestGreedyGeoUnicast(t *testing.T) {
	city, g, m := testSetup(t, 56)
	src, dst := reachablePair(t, city, g, m, 6)
	pkt := buildPacket(t, city, g, src, dst, 50)
	res := runSim(t, m, city, GreedyGeo{Fallback: true}, pkt, sim.DefaultConfig())
	// Greedy may fail at voids; but when it delivers, its broadcast count
	// must be far below flooding (it is unicast).
	if res.Delivered {
		fl := runSim(t, m, city, Flood{}, pkt.Clone(), sim.DefaultConfig())
		if res.Broadcasts >= fl.Broadcasts {
			t.Errorf("greedy %d >= flood %d", res.Broadcasts, fl.Broadcasts)
		}
	}
}

func TestGreedyGeoPureDropsAtVoid(t *testing.T) {
	// A concave arrangement: the greedy path hits a dead end.
	// Buildings along a C shape; destination behind a gap.
	var centers []geo.Point
	// Horizontal chain heading right, then the chain stops; dst beyond.
	for i := 0; i < 5; i++ {
		centers = append(centers, geo.Pt(float64(i)*35, 0))
	}
	centers = append(centers, geo.Pt(4*35+300, 0)) // dst far beyond a void
	city := &osm.City{Name: "void"}
	for i, c := range centers {
		fp := geo.Polygon{
			c.Add(geo.Pt(-7, -7)), c.Add(geo.Pt(7, -7)),
			c.Add(geo.Pt(7, 7)), c.Add(geo.Pt(-7, 7)),
		}
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding, Footprint: fp, Centroid: c,
		})
	}
	m := mesh.Place(city, mesh.DefaultConfig())
	pkt := &packet.Packet{Header: packet.Header{
		TTL: 64, MsgID: 42, Waypoints: []uint32{0, 5},
	}}
	res := runSim(t, m, city, GreedyGeo{}, pkt, sim.DefaultConfig())
	if res.Delivered {
		t.Error("greedy should not cross a 300 m void")
	}
}

func TestAODVDiscover(t *testing.T) {
	city, g, m := testSetup(t, 57)
	src, dst := reachablePair(t, city, g, m, 7)
	cost := AODVDiscover(m, city, src, dst, sim.DefaultConfig())
	if !cost.Delivered {
		t.Fatal("AODV discovery should reach a reachable pair")
	}
	if cost.RREQBroadcasts <= 0 || cost.DataUnicasts <= 0 {
		t.Errorf("cost = %+v", cost)
	}
	if cost.Total() != cost.RREQBroadcasts+cost.RREPUnicasts+cost.DataUnicasts {
		t.Error("Total inconsistent")
	}
	// The flood discovery must dominate the data path cost.
	if cost.RREQBroadcasts < cost.DataUnicasts {
		t.Errorf("RREQ %d < data path %d — discovery unrealistically cheap",
			cost.RREQBroadcasts, cost.DataUnicasts)
	}
}

func TestAODVUnreachable(t *testing.T) {
	city := &osm.City{Name: "iso"}
	for i, c := range []geo.Point{geo.Pt(0, 0), geo.Pt(5000, 0)} {
		fp := geo.Polygon{
			c.Add(geo.Pt(-7, -7)), c.Add(geo.Pt(7, -7)),
			c.Add(geo.Pt(7, 7)), c.Add(geo.Pt(-7, 7)),
		}
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding, Footprint: fp, Centroid: c,
		})
	}
	m := mesh.Place(city, mesh.DefaultConfig())
	cost := AODVDiscover(m, city, 0, 1, sim.DefaultConfig())
	if cost.Delivered {
		t.Error("isolated pair should not be delivered")
	}
	if cost.RREPUnicasts != 0 || cost.DataUnicasts != 0 {
		t.Error("no path costs should accrue without delivery")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]sim.Policy{
		"citymesh":        NewCityMesh(),
		"flood":           Flood{},
		"gossip":          Gossip{P: 0.5},
		"greedy":          GreedyGeo{},
		"greedy+fallback": GreedyGeo{Fallback: true},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestCityMeshBadWaypointsNoForward(t *testing.T) {
	city, _, m := testSetup(t, 58)
	pkt := &packet.Packet{Header: packet.Header{
		TTL: 16, MsgID: 7, Waypoints: []uint32{0, 1 << 30}, // dst building unknown
	}}
	cm := NewCityMesh()
	// from = -1 is the source injection: it always transmits.
	if d := cm.OnReceive(&sim.Context{City: city, Mesh: m, Dst: 0}, 0, pkt, -1); !d.Rebroadcast {
		t.Error("source injection must transmit")
	}
	// A relayed reception with unresolvable waypoints must not forward.
	if d := cm.OnReceive(&sim.Context{City: city, Mesh: m, Dst: 0}, 1, pkt, 0); d.Rebroadcast {
		t.Error("unresolvable waypoints must not trigger rebroadcast")
	}
}
