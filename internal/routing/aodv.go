package routing

import (
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/sim"
)

// AODVCost models the transmission cost of an AODV-style reactive protocol
// (§5): a route request (RREQ) floods the network until the destination is
// reached, a route reply (RREP) unicasts back along the discovered path,
// and the data packet then unicasts along it. The paper's criticism is that
// each route construction "quickly wast[es] the bandwidth which should be
// reserved for data packet transmissions" — this function quantifies it.
type AODVCost struct {
	// Delivered reports whether discovery reached the destination.
	Delivered bool
	// RREQBroadcasts is the flood cost of route discovery.
	RREQBroadcasts int
	// RREPUnicasts is the reply path length.
	RREPUnicasts int
	// DataUnicasts is the data path length.
	DataUnicasts int
}

// Total returns all transmissions charged to delivering one data packet.
func (c AODVCost) Total() int { return c.RREQBroadcasts + c.RREPUnicasts + c.DataUnicasts }

// AODVDiscover computes the AODV cost model for one src→dst building pair
// by running a flood simulation for the RREQ and a BFS for the path. It
// builds a throwaway engine per call; sweeps over many pairs should use
// AODVDiscoverEngine with one shared engine instead.
func AODVDiscover(m *mesh.Mesh, city *osm.City, src, dst int, cfg sim.Config) AODVCost {
	return AODVDiscoverEngine(sim.NewEngine(m, city, Flood{}), src, dst, cfg)
}

// AODVDiscoverEngine is AODVDiscover over a prebuilt engine, so sweeps
// amortize the per-mesh precomputation and pooled scratch across pairs.
// The engine's own policy is ignored: the RREQ always floods.
func AODVDiscoverEngine(eng *sim.Engine, src, dst int, cfg sim.Config) AODVCost {
	pkt := &packet.Packet{
		Header: packet.Header{
			TTL:       packet.DefaultTTL,
			MsgID:     0xA0D5<<32 | uint64(src)<<16 | uint64(dst),
			Waypoints: []uint32{uint32(src), uint32(dst)},
		},
	}
	res, err := eng.RunPolicy(Flood{}, pkt, cfg)
	if err != nil {
		// An uninjectable pair discovers nothing; the cost model reports an
		// undelivered zero-cost discovery, as the flood sim always did.
		return AODVCost{}
	}
	cost := AODVCost{Delivered: res.Delivered, RREQBroadcasts: res.Broadcasts}
	if !res.Delivered {
		return cost
	}
	hops, err := eng.Mesh().MinTransmissions(src, dst)
	if err != nil {
		// Flood delivered but BFS cannot: impossible by construction, but
		// degrade gracefully.
		return cost
	}
	cost.RREPUnicasts = hops
	cost.DataUnicasts = hops
	return cost
}
