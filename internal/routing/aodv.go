package routing

import (
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/sim"
)

// AODVCost models the transmission cost of an AODV-style reactive protocol
// (§5): a route request (RREQ) floods the network until the destination is
// reached, a route reply (RREP) unicasts back along the discovered path,
// and the data packet then unicasts along it. The paper's criticism is that
// each route construction "quickly wast[es] the bandwidth which should be
// reserved for data packet transmissions" — this function quantifies it.
type AODVCost struct {
	// Delivered reports whether discovery reached the destination.
	Delivered bool
	// RREQBroadcasts is the flood cost of route discovery.
	RREQBroadcasts int
	// RREPUnicasts is the reply path length.
	RREPUnicasts int
	// DataUnicasts is the data path length.
	DataUnicasts int
}

// Total returns all transmissions charged to delivering one data packet.
func (c AODVCost) Total() int { return c.RREQBroadcasts + c.RREPUnicasts + c.DataUnicasts }

// AODVDiscover computes the AODV cost model for one src→dst building pair
// by running a flood simulation for the RREQ and a BFS for the path.
func AODVDiscover(m *mesh.Mesh, city *osm.City, src, dst int, cfg sim.Config) AODVCost {
	pkt := &packet.Packet{
		Header: packet.Header{
			TTL:       packet.DefaultTTL,
			MsgID:     0xA0D5<<32 | uint64(src)<<16 | uint64(dst),
			Waypoints: []uint32{uint32(src), uint32(dst)},
		},
	}
	res := sim.Run(m, city, Flood{}, pkt, cfg)
	cost := AODVCost{Delivered: res.Delivered, RREQBroadcasts: res.Broadcasts}
	if !res.Delivered {
		return cost
	}
	hops, err := m.MinTransmissions(src, dst)
	if err != nil {
		// Flood delivered but BFS cannot: impossible by construction, but
		// degrade gracefully.
		return cost
	}
	cost.RREPUnicasts = hops
	cost.DataUnicasts = hops
	return cost
}
