package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMeanMedian(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if m := Median(xs); m != 5 {
		t.Errorf("Median = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(2); got != 0.6 {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %v", got)
	}
	if got := c.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := c.Max(); got != 10 {
		t.Errorf("Max = %v", got)
	}
	if got := c.Median(); got != 2 {
		t.Errorf("Median = %v", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points len = %d", len(pts))
	}
	// Monotone in both coordinates.
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Errorf("points not monotone: %v", pts)
		}
	}
	if last := pts[len(pts)-1]; last[0] != 10 || last[1] != 1 {
		t.Errorf("last point = %v, want (10, 1)", last)
	}
	if got := NewCDF(nil).Points(5); got != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 || s.Mean != 5.5 || s.P50 != 5.5 {
		t.Errorf("Summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.P50) {
		t.Errorf("empty Summary = %+v", empty)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestBinned(t *testing.T) {
	b := NewBinned(25)
	b.Add(10, 1)
	b.Add(12, 3)
	b.Add(30, 5)
	b.Add(99, 7)
	sums := b.Summaries()
	if len(sums) != 3 {
		t.Fatalf("bins = %d, want 3", len(sums))
	}
	if sums[0].Lo != 0 || sums[0].Hi != 25 || sums[0].N != 2 || sums[0].Mean != 2 {
		t.Errorf("bin0 = %+v", sums[0])
	}
	if sums[1].Lo != 25 || sums[1].N != 1 {
		t.Errorf("bin1 = %+v", sums[1])
	}
	if sums[2].Lo != 75 {
		t.Errorf("bin2 = %+v", sums[2])
	}
	if b.Table() == "" {
		t.Error("Table should be non-empty")
	}
}

func TestBinnedZeroWidth(t *testing.T) {
	b := NewBinned(0)
	b.Add(1.5, 1)
	if len(b.Summaries()) != 1 {
		t.Error("clamped bin width should still bin")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) {
		t.Error("empty Welford should be NaN")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of that classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.Stddev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("Stddev = %v", w.Stddev())
	}
}

// Property: CDF.At is monotone nondecreasing and Quantile inverts At within
// sample resolution.
func TestQuickCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := -300.0; x <= 300; x += 17 {
			v := c.At(x)
			if v < prev {
				t.Fatalf("CDF not monotone at %v: %v < %v", x, v, prev)
			}
			prev = v
		}
	}
}

// Property: percentile is order-preserving in p and bounded by min/max.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return v1 <= v2 && v1 >= s[0] && v2 <= s[len(s)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Welford mean matches direct mean.
func TestQuickWelfordMatchesMean(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		m := Mean(xs)
		return math.Abs(w.Mean()-m) <= 1e-6*(1+math.Abs(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
