// Package stats provides the small statistical toolkit the CityMesh
// evaluation needs: empirical CDFs, percentiles, distance-binned box
// statistics (for the paper's Figures 1 and 2), and running summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean of xs, or NaN for an empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample.
func (c *CDF) Quantile(q float64) float64 { return percentileSorted(c.sorted, q*100) }

// Median returns the sample median.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min returns the smallest sample, or NaN if empty.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample, or NaN if empty.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Points returns up to n (x, P(X<=x)) pairs sampled evenly through the
// distribution, suitable for plotting the CDF curve.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(1, n-1)
		x := c.sorted[idx]
		out = append(out, [2]float64{x, float64(idx+1) / float64(len(c.sorted))})
	}
	return out
}

// Summary holds a five-number-style summary plus mean and count.
type Summary struct {
	N                                 int
	Min, P10, P25, P50, P75, P90, Max float64
	Mean                              float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Min: nan, P10: nan, P25: nan, P50: nan, P75: nan, P90: nan, Max: nan, Mean: nan}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:    len(s),
		Min:  s[0],
		P10:  percentileSorted(s, 10),
		P25:  percentileSorted(s, 25),
		P50:  percentileSorted(s, 50),
		P75:  percentileSorted(s, 75),
		P90:  percentileSorted(s, 90),
		Max:  s[len(s)-1],
		Mean: Mean(s),
	}
}

// String renders the summary as a single row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f p25=%.1f p50=%.1f p75=%.1f p90=%.1f max=%.1f mean=%.1f",
		s.N, s.Min, s.P25, s.P50, s.P75, s.P90, s.Max, s.Mean)
}

// Binned groups (x, y) observations into fixed-width bins of x and
// summarizes the y values per bin. It is the shape of the paper's Figure 2:
// measurement-pair distance on x, common-AP count distribution on y.
type Binned struct {
	Width float64
	Bins  map[int][]float64
}

// NewBinned returns an empty binned collector with the given bin width.
func NewBinned(width float64) *Binned {
	if width <= 0 {
		width = 1
	}
	return &Binned{Width: width, Bins: make(map[int][]float64)}
}

// Add records observation y at coordinate x.
func (b *Binned) Add(x, y float64) {
	b.Bins[int(math.Floor(x/b.Width))] = append(b.Bins[int(math.Floor(x/b.Width))], y)
}

// BinSummary is the summary of one bin.
type BinSummary struct {
	// Lo and Hi bound the bin's x interval [Lo, Hi).
	Lo, Hi float64
	Summary
}

// Summaries returns per-bin summaries ordered by bin coordinate.
func (b *Binned) Summaries() []BinSummary {
	keys := make([]int, 0, len(b.Bins))
	for k := range b.Bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]BinSummary, 0, len(keys))
	for _, k := range keys {
		out = append(out, BinSummary{
			Lo:      float64(k) * b.Width,
			Hi:      float64(k+1) * b.Width,
			Summary: Summarize(b.Bins[k]),
		})
	}
	return out
}

// Table renders the binned summaries as an aligned text table with the
// paper's Figure 2 whisker percentiles (10/25/50/75/100).
func (b *Binned) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%12s %8s %8s %8s %8s %8s %8s\n", "bin (m)", "n", "p10", "p25", "p50", "p75", "max")
	for _, s := range b.Summaries() {
		fmt.Fprintf(&sb, "%5.0f-%-6.0f %8d %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			s.Lo, s.Hi, s.N, s.P10, s.P25, s.P50, s.P75, s.Max)
	}
	return sb.String()
}

// Welford accumulates a running mean and variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the running statistics.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or NaN before any samples.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the sample variance, or NaN with fewer than two samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }
