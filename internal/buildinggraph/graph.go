// Package buildinggraph builds the map-predicted connectivity graph at the
// heart of CityMesh routing (§3 step 1): vertices are buildings, an edge
// joins two buildings whose footprint gap is small enough that APs inside
// them are likely within radio range, and edge weights are the gap distance
// raised to a configurable exponent (cubed in the paper) so that routes
// prefer many short, reliable hops over few long, marginal ones.
//
// The graph is computed once per city from the map alone — no radio
// measurements — and answers the sender-side planning queries: Dijkstra
// shortest paths, penalty-based diverse multipath, and nearest-building
// lookup for geocast anchoring.
package buildinggraph

import (
	"fmt"
	"math"
	"sync"

	"citymesh/internal/geo"
	"citymesh/internal/osm"
)

// Config parameterizes graph construction.
type Config struct {
	// MaxGap is the maximum footprint-to-footprint gap in meters for a
	// predicted edge. The paper predicts an edge when APs in the two
	// buildings are "likely to be within transmission range"; core derives
	// this from PredictGapFactor * TransmissionRange.
	MaxGap float64
	// WeightExponent is the exponent applied to the gap distance when
	// weighting edges (3 in the paper: cubed weights strongly prefer short
	// hops).
	WeightExponent float64
	// MinWeight floors the gap distance before exponentiation so touching
	// or overlapping footprints (gap 0) still cost a positive amount per
	// hop and Dijkstra keeps hop counts finite-minded.
	MinWeight float64
}

// DefaultConfig matches the paper's evaluation: edges predicted up to
// 0.85 x 50 m of footprint gap, cubed weights.
func DefaultConfig() Config {
	return Config{MaxGap: 42.5, WeightExponent: 3, MinWeight: 1}
}

// edge is one directed half of an undirected building adjacency.
type edge struct {
	to     int32
	weight float64
	gap    float64
}

// Graph is the predicted building-connectivity graph of one city.
type Graph struct {
	city *osm.City
	cfg  Config
	adj  [][]edge
	// centroids indexes building centroids for nearest-building queries.
	centroids *geo.Grid
	numEdges  int
	// scratch pools per-call Dijkstra state (dist/prev/done arrays and the
	// frontier heap's backing array) so repeated planning queries — the
	// dominant cost of the resilience and multipath sweeps — allocate
	// nothing per call. Safe for concurrent queries: each call takes its
	// own scratch from the pool.
	scratch sync.Pool
}

// Build constructs the building graph. Candidate pairs come from a spatial
// grid over centroids (pruned by footprint radii), then the exact
// polygon-to-polygon gap decides each edge.
func Build(city *osm.City, cfg Config) *Graph {
	d := DefaultConfig()
	if cfg.MaxGap <= 0 {
		cfg.MaxGap = d.MaxGap
	}
	if cfg.WeightExponent == 0 {
		cfg.WeightExponent = d.WeightExponent
	}
	if cfg.MinWeight <= 0 {
		cfg.MinWeight = d.MinWeight
	}
	n := city.NumBuildings()
	g := &Graph{
		city: city,
		cfg:  cfg,
		adj:  make([][]edge, n),
	}

	// Footprint "radius": farthest vertex from the centroid. Two buildings
	// can only have gap <= MaxGap when their centroid distance is at most
	// MaxGap + rA + rB.
	radii := make([]float64, n)
	maxRadius := 0.0
	cell := cfg.MaxGap
	if cell <= 0 {
		cell = 50
	}
	g.centroids = geo.NewGrid(cell)
	for i, b := range city.Buildings {
		g.centroids.Insert(b.Centroid)
		r := 0.0
		for _, v := range b.Footprint {
			if d := v.Dist(b.Centroid); d > r {
				r = d
			}
		}
		radii[i] = r
		if r > maxRadius {
			maxRadius = r
		}
	}

	for i := 0; i < n; i++ {
		fpI := city.Buildings[i].Footprint
		searchR := cfg.MaxGap + radii[i] + maxRadius
		g.centroids.WithinRadius(city.Buildings[i].Centroid, searchR, func(j int, _ geo.Point) bool {
			if j <= i {
				return true
			}
			// Cheap centroid prune before the exact polygon gap.
			cd := city.Buildings[i].Centroid.Dist(city.Buildings[j].Centroid)
			if cd > cfg.MaxGap+radii[i]+radii[j] {
				return true
			}
			gap := fpI.GapTo(city.Buildings[j].Footprint)
			if gap > cfg.MaxGap {
				return true
			}
			w := gap
			if w < cfg.MinWeight {
				w = cfg.MinWeight
			}
			w = math.Pow(w, cfg.WeightExponent)
			g.adj[i] = append(g.adj[i], edge{to: int32(j), weight: w, gap: gap})
			g.adj[j] = append(g.adj[j], edge{to: int32(i), weight: w, gap: gap})
			g.numEdges++
			return true
		})
	}
	return g
}

// NumVertices returns the building count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.numEdges }

// Degree returns the number of predicted neighbors of building v.
func (g *Graph) Degree(v int) int {
	if v < 0 || v >= len(g.adj) {
		return 0
	}
	return len(g.adj[v])
}

// Neighbors calls fn with each predicted neighbor of v and the gap distance
// of the connecting edge.
func (g *Graph) Neighbors(v int, fn func(w int, gap float64)) {
	if v < 0 || v >= len(g.adj) {
		return
	}
	for _, e := range g.adj[v] {
		fn(int(e.to), e.gap)
	}
}

// ErrNoPath is wrapped by ShortestPath when the pair is disconnected in the
// predicted graph.
var ErrNoPath = fmt.Errorf("buildinggraph: no predicted path")

// VertexPenalty returns a multiplicative cost factor for routing *through*
// building v. Every edge entering v has its weight multiplied by the
// factor, so a penalty of 1 leaves the building unchanged and a large
// penalty makes Dijkstra route around it. A nil VertexPenalty means no
// penalties. This is how route-health memory (internal/health) steers
// planning around suspected-dead regions.
type VertexPenalty func(v int) float64

// ShortestPath runs Dijkstra from src to dst and returns the building index
// sequence (inclusive of both endpoints) and its total weight.
func (g *Graph) ShortestPath(src, dst int) ([]int, float64, error) {
	return g.shortestPathPenalized(src, dst, nil, nil)
}

// ShortestPathPenalized is ShortestPath with per-building cost multipliers
// applied (damage-aware planning). A nil penalty is identical to
// ShortestPath.
func (g *Graph) ShortestPathPenalized(src, dst int, vp VertexPenalty) ([]int, float64, error) {
	return g.shortestPathPenalized(src, dst, nil, vp)
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	v    int32
	dist float64
}

// pqPush and pqPop are a typed binary min-heap on dist, replicating
// container/heap's sift order exactly (append+up, swap-root-to-tail+down)
// so pop order — including among equal keys — is unchanged from the old
// interface-based heap while the per-operation boxing allocation is gone.
func pqPush(h *[]pqItem, it pqItem) {
	s := append(*h, it)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].dist < s[i].dist) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func pqPop(h *[]pqItem) pqItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].dist < s[j].dist {
			j = j2
		}
		if !(s[j].dist < s[i].dist) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

// dijkstraScratch is the pooled per-call state of shortestPathPenalized.
type dijkstraScratch struct {
	dist []float64
	prev []int32
	done []bool
	heap []pqItem
}

// getScratch takes a scratch sized for n vertices from the pool, reset for
// a fresh run.
func (g *Graph) getScratch(n int) *dijkstraScratch {
	s, _ := g.scratch.Get().(*dijkstraScratch)
	if s == nil || cap(s.dist) < n {
		s = &dijkstraScratch{
			dist: make([]float64, n),
			prev: make([]int32, n),
			done: make([]bool, n),
		}
	}
	s.dist = s.dist[:n]
	s.prev = s.prev[:n]
	s.done = s.done[:n]
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
		s.prev[i] = -1
	}
	clear(s.done)
	s.heap = s.heap[:0]
	return s
}

// edgeKey canonicalizes an undirected edge for the penalty map.
func edgeKey(a, b int) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{int32(a), int32(b)}
}

// shortestPathPenalized is Dijkstra with two optional multiplicative
// penalty layers: per undirected edge (the diverse-multipath mechanism)
// and per vertex (the route-health mechanism). The layers compose — a
// diverse replan under health penalties avoids both used corridors and
// suspected-dead regions.
func (g *Graph) shortestPathPenalized(src, dst int, penalty map[[2]int32]float64, vp VertexPenalty) ([]int, float64, error) {
	n := len(g.adj)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, 0, fmt.Errorf("buildinggraph: building out of range (%d, %d of %d)", src, dst, n)
	}
	if src == dst {
		return []int{src}, 0, nil
	}
	sc := g.getScratch(n)
	defer g.scratch.Put(sc)
	dist, prev, done := sc.dist, sc.prev, sc.done
	dist[src] = 0
	pqPush(&sc.heap, pqItem{v: int32(src)})
	for len(sc.heap) > 0 {
		it := pqPop(&sc.heap)
		v := int(it.v)
		if done[v] {
			continue
		}
		done[v] = true
		if v == dst {
			break
		}
		for _, e := range g.adj[v] {
			w := e.weight
			if penalty != nil {
				if f, ok := penalty[edgeKey(v, int(e.to))]; ok {
					w *= f
				}
			}
			// The vertex penalty is charged on entry, so routing *through*
			// a suspect building pays once per traversal; the destination's
			// own penalty shifts every candidate path equally and cannot
			// change the argmin.
			if vp != nil {
				w *= vp(int(e.to))
			}
			if nd := it.dist + w; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = int32(v)
				pqPush(&sc.heap, pqItem{v: e.to, dist: nd})
			}
		}
	}
	if !done[dst] {
		return nil, 0, fmt.Errorf("%w from %d to %d", ErrNoPath, src, dst)
	}
	var path []int
	for v := int32(dst); v >= 0; v = prev[v] {
		path = append(path, int(v))
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst], nil
}

// DiversePaths returns up to k spatially diverse paths from src to dst via
// iterative penalization: after each Dijkstra run, every edge of the found
// path has its weight multiplied by penalty, steering later runs around
// already-used corridors. Duplicate paths are dropped, so fewer than k
// paths may return in narrow topologies. The first path is always the true
// shortest path.
func (g *Graph) DiversePaths(src, dst, k int, penalty float64) ([][]int, error) {
	return g.DiversePathsPenalized(src, dst, k, penalty, nil)
}

// DiversePathsPenalized is DiversePaths under per-building cost multipliers
// (see VertexPenalty): every Dijkstra run avoids suspected-dead regions in
// addition to already-used corridors, so the k routes are diverse *and*
// damage-aware. A nil vp is identical to DiversePaths.
func (g *Graph) DiversePathsPenalized(src, dst, k int, penalty float64, vp VertexPenalty) ([][]int, error) {
	if k <= 0 {
		k = 1
	}
	if penalty <= 1 {
		penalty = 16
	}
	factors := make(map[[2]int32]float64)
	seen := make(map[string]bool)
	var paths [][]int
	for i := 0; i < k; i++ {
		path, _, err := g.shortestPathPenalized(src, dst, factors, vp)
		if err != nil {
			if i == 0 {
				return nil, err
			}
			break
		}
		key := fmt.Sprint(path)
		if !seen[key] {
			seen[key] = true
			paths = append(paths, path)
		}
		for j := 0; j+1 < len(path); j++ {
			ek := edgeKey(path[j], path[j+1])
			if f, ok := factors[ek]; ok {
				factors[ek] = f * penalty
			} else {
				factors[ek] = penalty
			}
		}
	}
	return paths, nil
}

// NearestBuilding returns the building whose centroid is closest to p, or
// -1 for a city with no buildings.
func (g *Graph) NearestBuilding(p geo.Point) int {
	id, _ := g.centroids.Nearest(p, 0)
	return id
}

// Components returns the connected components of the predicted graph,
// largest first, each a list of building indices. The fracture structure
// (rivers, parks) shows up directly here.
func (g *Graph) Components() [][]int {
	n := len(g.adj)
	compOf := make([]int32, n)
	for i := range compOf {
		compOf[i] = -1
	}
	var comps [][]int
	var stack []int32
	for s := 0; s < n; s++ {
		if compOf[s] >= 0 {
			continue
		}
		id := int32(len(comps))
		comp := []int{}
		stack = append(stack[:0], int32(s))
		compOf[s] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, int(v))
			for _, e := range g.adj[v] {
				if compOf[e.to] < 0 {
					compOf[e.to] = id
					stack = append(stack, e.to)
				}
			}
		}
		comps = append(comps, comp)
	}
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && len(comps[j]) > len(comps[j-1]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}
