package buildinggraph

import (
	"errors"
	"math"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/geo"
	"citymesh/internal/osm"
)

// rowCity builds small square buildings at the given centroids.
func rowCity(pts ...geo.Point) *osm.City {
	city := &osm.City{Name: "row"}
	for i, p := range pts {
		fp := geo.Polygon{
			p.Add(geo.Pt(-5, -5)), p.Add(geo.Pt(5, -5)),
			p.Add(geo.Pt(5, 5)), p.Add(geo.Pt(-5, 5)),
		}
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: fp, Centroid: fp.Centroid(),
		})
	}
	return city
}

func TestBuildEdgesWithinGap(t *testing.T) {
	// Three buildings in a row, 40 m centroid spacing => 30 m gaps; the
	// fourth is 200 m away and must be isolated.
	city := rowCity(geo.Pt(0, 0), geo.Pt(40, 0), geo.Pt(80, 0), geo.Pt(280, 0))
	g := Build(city, DefaultConfig())
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want the two 30 m gaps only", g.NumEdges())
	}
	if g.Degree(3) != 0 {
		t.Error("distant building should be isolated")
	}
}

func TestShortestPathChain(t *testing.T) {
	city := rowCity(geo.Pt(0, 0), geo.Pt(40, 0), geo.Pt(80, 0), geo.Pt(120, 0))
	g := Build(city, DefaultConfig())
	path, cost, err := g.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// Three hops of 30 m gap, cubed.
	if wantCost := 3 * math.Pow(30, 3); math.Abs(cost-wantCost) > 1e-6 {
		t.Errorf("cost = %v, want %v", cost, wantCost)
	}
}

func TestCubedWeightsPreferShortHops(t *testing.T) {
	// A detour of two 30 m gaps must beat one direct 42 m gap under cubed
	// weights (42^3 > 2*30^3) even though it is longer in euclid terms.
	city := rowCity(
		geo.Pt(0, 0),   // 0: src
		geo.Pt(52, 0),  // 1: dst, gap 42 from src (direct edge exists)
		geo.Pt(26, 34), // 2: midpoint hop with ~30 m-ish gaps to both
	)
	g := Build(city, DefaultConfig())
	if g.Degree(0) < 2 {
		t.Skip("geometry did not produce both edges")
	}
	path, _, err := g.ShortestPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != 2 {
		t.Errorf("path = %v, want the two-hop detour through 2", path)
	}
}

func TestShortestPathErrors(t *testing.T) {
	city := rowCity(geo.Pt(0, 0), geo.Pt(500, 0))
	g := Build(city, DefaultConfig())
	if _, _, err := g.ShortestPath(0, 1); !errors.Is(err, ErrNoPath) {
		t.Errorf("disconnected pair: err = %v, want ErrNoPath", err)
	}
	if _, _, err := g.ShortestPath(-1, 0); err == nil {
		t.Error("out-of-range src should error")
	}
	if _, _, err := g.ShortestPath(0, 99); err == nil {
		t.Error("out-of-range dst should error")
	}
	path, cost, err := g.ShortestPath(1, 1)
	if err != nil || len(path) != 1 || cost != 0 {
		t.Errorf("self path = %v, %v, %v", path, cost, err)
	}
}

func TestDiversePathsDisjointOnGrid(t *testing.T) {
	// A 2x3 grid: two corridor choices between opposite corners. The
	// penalized second path should avoid the first path's interior edges.
	city := rowCity(
		geo.Pt(0, 0), geo.Pt(40, 0), geo.Pt(80, 0),
		geo.Pt(0, 40), geo.Pt(40, 40), geo.Pt(80, 40),
	)
	g := Build(city, DefaultConfig())
	paths, err := g.DiversePaths(0, 5, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("paths = %v, want 2 diverse routes", paths)
	}
	// Interior vertices must differ between the two routes.
	same := true
	if len(paths[0]) != len(paths[1]) {
		same = false
	} else {
		for i := range paths[0] {
			if paths[0][i] != paths[1][i] {
				same = false
			}
		}
	}
	if same {
		t.Errorf("diverse paths identical: %v", paths)
	}
}

func TestDiversePathsFirstIsShortest(t *testing.T) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	city := planCity(plan)
	g := Build(city, DefaultConfig())
	var tested int
	for a := 0; a < g.NumVertices() && tested < 10; a += 7 {
		b := g.NumVertices() - 1 - a
		sp, cost, err := g.ShortestPath(a, b)
		if err != nil || len(sp) < 3 {
			continue
		}
		tested++
		paths, err := g.DiversePaths(a, b, 3, 16)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatal("no paths")
		}
		gotCost := pathCost(t, g, paths[0])
		if math.Abs(gotCost-cost) > 1e-9 {
			t.Errorf("first diverse path cost %v != shortest %v (path %v vs %v)",
				gotCost, cost, paths[0], sp)
		}
	}
	if tested == 0 {
		t.Skip("no multi-hop pairs in test city")
	}
}

func pathCost(t *testing.T, g *Graph, path []int) float64 {
	t.Helper()
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		found := false
		g.Neighbors(path[i], func(w int, gap float64) {
			if w == path[i+1] {
				found = true
				wgt := gap
				if wgt < g.cfg.MinWeight {
					wgt = g.cfg.MinWeight
				}
				total += math.Pow(wgt, g.cfg.WeightExponent)
			}
		})
		if !found {
			t.Fatalf("path edge %d-%d not in graph", path[i], path[i+1])
		}
	}
	return total
}

func TestShortestPathPenalizedRoutesAroundSuspect(t *testing.T) {
	// A 2x3 grid: two equal-cost corridors between opposite corners. A
	// heavy vertex penalty on one corridor's interior must force the route
	// through the other, and lifting the penalty must restore free choice.
	city := rowCity(
		geo.Pt(0, 0), geo.Pt(40, 0), geo.Pt(80, 0), // bottom: 0 1 2
		geo.Pt(0, 40), geo.Pt(40, 40), geo.Pt(80, 40), // top: 3 4 5
	)
	g := Build(city, DefaultConfig())
	base, baseCost, err := g.ShortestPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 3 || base[1] != 1 {
		t.Fatalf("unpenalized path = %v, want straight bottom corridor", base)
	}
	// Suspect the bottom midpoint: the planner must detour over the top.
	vp := func(v int) float64 {
		if v == 1 {
			return 1000
		}
		return 1
	}
	path, cost, err := g.ShortestPathPenalized(0, 2, vp)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range path {
		if v == 1 {
			t.Fatalf("penalized path %v still routes through suspect building 1", path)
		}
	}
	if cost <= baseCost {
		t.Errorf("detour cost %v should exceed direct cost %v", cost, baseCost)
	}
	// A nil penalty is exactly ShortestPath.
	same, sameCost, err := g.ShortestPathPenalized(0, 2, nil)
	if err != nil || sameCost != baseCost || len(same) != len(base) {
		t.Errorf("nil-penalty path = %v cost %v, want %v cost %v", same, sameCost, base, baseCost)
	}
}

func TestDiversePathsPenalizedAvoidsSuspects(t *testing.T) {
	city := rowCity(
		geo.Pt(0, 0), geo.Pt(40, 0), geo.Pt(80, 0),
		geo.Pt(0, 40), geo.Pt(40, 40), geo.Pt(80, 40),
	)
	g := Build(city, DefaultConfig())
	vp := func(v int) float64 {
		if v == 1 {
			return 1000
		}
		return 1
	}
	paths, err := g.DiversePathsPenalized(0, 2, 3, 16, vp)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// The *first* diverse path must already avoid the suspect (the
	// suspicion penalty dominates the diversity penalty).
	for _, v := range paths[0] {
		if v == 1 {
			t.Fatalf("first penalized diverse path %v routes through suspect", paths[0])
		}
	}
}

func TestNearestBuilding(t *testing.T) {
	city := rowCity(geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(200, 0))
	g := Build(city, DefaultConfig())
	if got := g.NearestBuilding(geo.Pt(95, 10)); got != 1 {
		t.Errorf("NearestBuilding = %d, want 1", got)
	}
	empty := Build(&osm.City{Name: "empty"}, DefaultConfig())
	if got := empty.NearestBuilding(geo.Pt(0, 0)); got != -1 {
		t.Errorf("empty city NearestBuilding = %d, want -1", got)
	}
}

func TestComponents(t *testing.T) {
	// Two clusters separated by 500 m.
	city := rowCity(
		geo.Pt(0, 0), geo.Pt(40, 0), geo.Pt(80, 0),
		geo.Pt(600, 0), geo.Pt(640, 0),
	)
	g := Build(city, DefaultConfig())
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Errorf("component sizes = %d, %d; want 3, 2 (largest first)",
			len(comps[0]), len(comps[1]))
	}
}

func planCity(p *citygen.Plan) *osm.City {
	city := &osm.City{Name: p.Spec.Name, Bounds: p.Bounds}
	for i, b := range p.Buildings {
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: b.Footprint, Centroid: b.Footprint.Centroid(),
		})
	}
	return city
}
