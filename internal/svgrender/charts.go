package svgrender

import (
	"fmt"
	"io"
	"math"
	"strings"

	"citymesh/internal/stats"
)

// The chart renderers produce the paper's data figures as standalone SVGs:
// CDF line charts (Figures 1a/1b), distance-binned box plots (Figure 2) and
// grouped bar charts (Figure 6). They are deliberately minimal — axes,
// ticks, series, legend — with no external dependencies.

// chartPalette cycles through series colors.
var chartPalette = []string{"#2e86c1", "#c0392b", "#28b463", "#8e44ad", "#d68910", "#16a085", "#7f8c8d"}

type chart struct {
	w, h          float64
	left, right   float64
	top, bottom   float64
	xMin, xMax    float64
	yMin, yMax    float64
	title         string
	xLabel        string
	yLabel        string
	body          strings.Builder
	legendEntries []string
}

func newChart(title, xLabel, yLabel string, xMin, xMax, yMin, yMax float64) *chart {
	if xMax <= xMin {
		xMax = xMin + 1
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}
	return &chart{
		w: 640, h: 420, left: 70, right: 24, top: 44, bottom: 52,
		xMin: xMin, xMax: xMax, yMin: yMin, yMax: yMax,
		title: title, xLabel: xLabel, yLabel: yLabel,
	}
}

func (c *chart) px(x, y float64) (float64, float64) {
	fx := (x - c.xMin) / (c.xMax - c.xMin)
	fy := (y - c.yMin) / (c.yMax - c.yMin)
	return c.left + fx*(c.w-c.left-c.right), c.h - c.bottom - fy*(c.h-c.top-c.bottom)
}

func (c *chart) line(x1, y1, x2, y2 float64, color string, width float64) {
	px1, py1 := c.px(x1, y1)
	px2, py2 := c.px(x2, y2)
	fmt.Fprintf(&c.body, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		px1, py1, px2, py2, color, width)
}

func (c *chart) polyline(pts [][2]float64, color string) {
	if len(pts) < 2 {
		return
	}
	var sb strings.Builder
	for i, p := range pts {
		x, y := c.px(p[0], p[1])
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.1f,%.1f", x, y)
	}
	fmt.Fprintf(&c.body, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", sb.String(), color)
}

func (c *chart) rect(x1, y1, x2, y2 float64, fill string, opacity float64) {
	px1, py1 := c.px(x1, y2) // y flipped
	px2, py2 := c.px(x2, y1)
	fmt.Fprintf(&c.body, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="%.2f"/>`+"\n",
		px1, py1, math.Max(0.5, px2-px1), math.Max(0.5, py2-py1), fill, opacity)
}

func (c *chart) text(px, py, size float64, anchor, color, s string) {
	fmt.Fprintf(&c.body, `<text x="%.1f" y="%.1f" font-size="%.0f" text-anchor="%s" fill="%s" font-family="sans-serif">%s</text>`+"\n",
		px, py, size, anchor, color, escapeText(s))
}

func (c *chart) legend(name, color string) {
	c.legendEntries = append(c.legendEntries, name+"\x00"+color)
}

// axes draws the frame, ticks and labels.
func (c *chart) axes(xTicks, yTicks int) {
	axisColor := "#555555"
	c.line(c.xMin, c.yMin, c.xMax, c.yMin, axisColor, 1.2)
	c.line(c.xMin, c.yMin, c.xMin, c.yMax, axisColor, 1.2)
	for i := 0; i <= xTicks; i++ {
		x := c.xMin + (c.xMax-c.xMin)*float64(i)/float64(xTicks)
		px, py := c.px(x, c.yMin)
		fmt.Fprintf(&c.body, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n", px, py, px, py+4, axisColor)
		c.text(px, py+18, 11, "middle", axisColor, trimFloat(x))
	}
	for i := 0; i <= yTicks; i++ {
		y := c.yMin + (c.yMax-c.yMin)*float64(i)/float64(yTicks)
		px, py := c.px(c.xMin, y)
		fmt.Fprintf(&c.body, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n", px-4, py, px, py, axisColor)
		c.text(px-8, py+4, 11, "end", axisColor, trimFloat(y))
	}
	c.text(c.w/2, 22, 15, "middle", "#222222", c.title)
	c.text(c.w/2, c.h-12, 12, "middle", axisColor, c.xLabel)
	fmt.Fprintf(&c.body, `<text x="16" y="%.1f" font-size="12" text-anchor="middle" fill="%s" font-family="sans-serif" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		c.h/2, axisColor, c.h/2, escapeText(c.yLabel))
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}

func (c *chart) writeTo(w io.Writer) error {
	var out strings.Builder
	fmt.Fprintf(&out, `<?xml version="1.0" encoding="UTF-8"?>`+"\n")
	fmt.Fprintf(&out, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", c.w, c.h, c.w, c.h)
	out.WriteString(`<rect width="100%" height="100%" fill="#ffffff"/>` + "\n")
	out.WriteString(c.body.String())
	// Legend in the top-right corner.
	for i, e := range c.legendEntries {
		parts := strings.SplitN(e, "\x00", 2)
		y := 40 + float64(i)*16
		fmt.Fprintf(&out, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", c.w-150, y, parts[1])
		fmt.Fprintf(&out, `<text x="%.1f" y="%.1f" font-size="11" fill="#333333" font-family="sans-serif">%s</text>`+"\n",
			c.w-134, y+9, escapeText(parts[0]))
	}
	out.WriteString("</svg>\n")
	_, err := io.WriteString(w, out.String())
	return err
}

// CDFSeries is one named CDF curve.
type CDFSeries struct {
	Name string
	CDF  *stats.CDF
}

// RenderCDFChart draws the paper's Figure 1 style chart: one CDF curve per
// series.
func RenderCDFChart(w io.Writer, title, xLabel string, series []CDFSeries) error {
	xMax := 1.0
	for _, s := range series {
		if s.CDF.Len() > 0 && s.CDF.Max() > xMax {
			xMax = s.CDF.Max()
		}
	}
	c := newChart(title, xLabel, "CDF", 0, xMax, 0, 1)
	c.axes(6, 5)
	for i, s := range series {
		if s.CDF.Len() == 0 {
			continue
		}
		color := chartPalette[i%len(chartPalette)]
		pts := s.CDF.Points(128)
		// Anchor the curve at (min, 0).
		pts = append([][2]float64{{s.CDF.Min(), 0}}, pts...)
		c.polyline(pts, color)
		c.legend(s.Name, color)
	}
	return c.writeTo(w)
}

// RenderBinnedBoxChart draws the paper's Figure 2 style chart: one box
// (p25..p75, median line, p10/max whiskers) per distance bin.
func RenderBinnedBoxChart(w io.Writer, title, xLabel, yLabel string, b *stats.Binned) error {
	sums := b.Summaries()
	if len(sums) == 0 {
		return fmt.Errorf("svgrender: no bins to draw")
	}
	xMax := sums[len(sums)-1].Hi
	yMax := 1.0
	for _, s := range sums {
		if s.Max > yMax {
			yMax = s.Max
		}
	}
	c := newChart(title, xLabel, yLabel, 0, xMax, 0, yMax*1.05)
	c.axes(6, 5)
	color := chartPalette[0]
	for _, s := range sums {
		mid := (s.Lo + s.Hi) / 2
		half := (s.Hi - s.Lo) * 0.3
		// Whiskers p10..max.
		c.line(mid, s.P10, mid, s.Max, color, 1)
		// Box p25..p75.
		c.rect(mid-half, s.P25, mid+half, s.P75, color, 0.45)
		// Median.
		c.line(mid-half, s.P50, mid+half, s.P50, "#1b2631", 1.6)
	}
	return c.writeTo(w)
}

// BarGroup is one labeled group of bars (e.g. one city).
type BarGroup struct {
	Label  string
	Values []float64 // one value per series
}

// RenderGroupedBarChart draws the paper's Figure 6 style chart: per-city
// groups of bars, one bar per metric series.
func RenderGroupedBarChart(w io.Writer, title string, seriesNames []string, groups []BarGroup, yMax float64) error {
	if len(groups) == 0 || len(seriesNames) == 0 {
		return fmt.Errorf("svgrender: nothing to draw")
	}
	if yMax <= 0 {
		for _, g := range groups {
			for _, v := range g.Values {
				if v > yMax {
					yMax = v
				}
			}
		}
		if yMax <= 0 {
			yMax = 1
		}
	}
	c := newChart(title, "", "", 0, float64(len(groups)), 0, yMax*1.05)
	c.axes(0, 5)
	barW := 0.8 / float64(len(seriesNames))
	for gi, g := range groups {
		for si := range seriesNames {
			v := 0.0
			if si < len(g.Values) {
				v = g.Values[si]
			}
			x0 := float64(gi) + 0.1 + float64(si)*barW
			c.rect(x0, 0, x0+barW*0.92, v, chartPalette[si%len(chartPalette)], 0.9)
		}
		px, py := c.px(float64(gi)+0.5, 0)
		c.text(px, py+18, 11, "middle", "#555555", g.Label)
	}
	for si, name := range seriesNames {
		c.legend(name, chartPalette[si%len(chartPalette)])
	}
	return c.writeTo(w)
}
