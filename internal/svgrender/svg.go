// Package svgrender renders cities, AP meshes and simulation transcripts as
// SVG — the repository's stand-in for the paper's Figure 5 (footprints and
// AP graph) and Figure 7 (a single simulation: the chosen building route,
// the APs inside the rebroadcast conduit, and the APs that received but did
// not rebroadcast).
package svgrender

import (
	"fmt"
	"io"
	"strings"

	"citymesh/internal/geo"
)

// Canvas accumulates SVG shapes in world (meter) coordinates and writes
// them scaled to pixels. The y axis is flipped so north is up.
type Canvas struct {
	bounds geo.Rect
	scale  float64
	w, h   float64
	body   strings.Builder
	bg     string
}

// New returns a canvas covering bounds, rendered pxWidth pixels wide.
func New(bounds geo.Rect, pxWidth int) *Canvas {
	if pxWidth <= 0 {
		pxWidth = 800
	}
	w := bounds.Width()
	if w <= 0 {
		w = 1
	}
	scale := float64(pxWidth) / w
	return &Canvas{
		bounds: bounds,
		scale:  scale,
		w:      float64(pxWidth),
		h:      bounds.Height() * scale,
		bg:     "#ffffff",
	}
}

// SetBackground sets the page background color.
func (c *Canvas) SetBackground(color string) { c.bg = color }

func (c *Canvas) px(p geo.Point) (float64, float64) {
	return (p.X - c.bounds.Min.X) * c.scale, (c.bounds.Max.Y - p.Y) * c.scale
}

// Polygon draws a filled polygon.
func (c *Canvas) Polygon(pg geo.Polygon, fill, stroke string, opacity float64) {
	if len(pg) < 3 {
		return
	}
	var pts strings.Builder
	for i, p := range pg {
		x, y := c.px(p)
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
	}
	fmt.Fprintf(&c.body, `<polygon points="%s" fill="%s" stroke="%s" fill-opacity="%.2f"/>`+"\n",
		pts.String(), fill, stroke, opacity)
}

// Line draws a segment with the given stroke width in pixels.
func (c *Canvas) Line(a, b geo.Point, stroke string, width float64) {
	x1, y1 := c.px(a)
	x2, y2 := c.px(b)
	fmt.Fprintf(&c.body, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

// Polyline draws a connected path.
func (c *Canvas) Polyline(pts []geo.Point, stroke string, width float64) {
	if len(pts) < 2 {
		return
	}
	var sb strings.Builder
	for i, p := range pts {
		x, y := c.px(p)
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.1f,%.1f", x, y)
	}
	fmt.Fprintf(&c.body, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		sb.String(), stroke, width)
}

// Circle draws a dot with radius in pixels.
func (c *Canvas) Circle(p geo.Point, rPx float64, fill string) {
	x, y := c.px(p)
	fmt.Fprintf(&c.body, `<circle cx="%.1f" cy="%.1f" r="%.2f" fill="%s"/>`+"\n", x, y, rPx, fill)
}

// Text places a label at p.
func (c *Canvas) Text(p geo.Point, size float64, fill, text string) {
	x, y := c.px(p)
	fmt.Fprintf(&c.body, `<text x="%.1f" y="%.1f" font-size="%.1f" fill="%s" font-family="sans-serif">%s</text>`+"\n",
		x, y, size, fill, escapeText(text))
}

// OrientedRect draws a conduit rectangle (without end caps).
func (c *Canvas) OrientedRect(o geo.OrientedRect, fill string, opacity float64) {
	axis := o.B.Sub(o.A)
	if axis.Norm() == 0 {
		c.Circle(o.A, (o.HalfWidth+o.EndCap)*c.scale, fill)
		return
	}
	u := axis.Unit()
	perp := u.Perp().Scale(o.HalfWidth)
	a := o.A.Sub(u.Scale(o.EndCap))
	b := o.B.Add(u.Scale(o.EndCap))
	c.Polygon(geo.Polygon{a.Add(perp), b.Add(perp), b.Sub(perp), a.Sub(perp)}, fill, "none", opacity)
}

// WriteTo emits the complete SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	var out strings.Builder
	fmt.Fprintf(&out, `<?xml version="1.0" encoding="UTF-8"?>`+"\n")
	fmt.Fprintf(&out, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		c.w, c.h, c.w, c.h)
	fmt.Fprintf(&out, `<rect width="100%%" height="100%%" fill="%s"/>`+"\n", c.bg)
	out.WriteString(c.body.String())
	out.WriteString("</svg>\n")
	n, err := io.WriteString(w, out.String())
	return int64(n), err
}

func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
