package svgrender

import (
	"bytes"
	"strings"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/sim"
)

func testCity() *osm.City {
	plan, err := citygen.Generate(citygen.SmallTestSpec(71))
	if err != nil {
		panic(err)
	}
	city := &osm.City{Name: "t", Bounds: plan.Bounds}
	for i, b := range plan.Buildings {
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: b.Footprint, Centroid: b.Footprint.Centroid(),
		})
	}
	return city
}

func TestCanvasShapes(t *testing.T) {
	c := New(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 50)}, 400)
	c.Polygon(geo.Polygon{geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(10, 10)}, "#ff0000", "none", 0.5)
	c.Line(geo.Pt(0, 0), geo.Pt(100, 50), "#000000", 1)
	c.Polyline([]geo.Point{geo.Pt(0, 0), geo.Pt(50, 25), geo.Pt(100, 0)}, "#00ff00", 2)
	c.Circle(geo.Pt(50, 25), 3, "#0000ff")
	c.Text(geo.Pt(10, 40), 12, "#333333", "label <&>")
	c.OrientedRect(geo.OrientedRect{A: geo.Pt(10, 10), B: geo.Pt(90, 40), HalfWidth: 5}, "#cccccc", 0.3)
	c.OrientedRect(geo.OrientedRect{A: geo.Pt(50, 25), B: geo.Pt(50, 25), HalfWidth: 5}, "#cccccc", 0.3)

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<polygon", "<line", "<polyline", "<circle", "<text", "label &lt;&amp;&gt;"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q in output", want)
		}
	}
	if strings.Contains(svg, "label <&>") {
		t.Error("text not escaped")
	}
}

func TestCanvasCoordinateMapping(t *testing.T) {
	c := New(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}, 200)
	// World (0,0) is bottom-left → pixel (0, 200); world (100,100) → (200, 0).
	x, y := c.px(geo.Pt(0, 0))
	if x != 0 || y != 200 {
		t.Errorf("px(0,0) = %v,%v", x, y)
	}
	x, y = c.px(geo.Pt(100, 100))
	if x != 200 || y != 0 {
		t.Errorf("px(100,100) = %v,%v", x, y)
	}
}

func TestCanvasDegenerate(t *testing.T) {
	// Zero-width bounds and zero pxWidth must not panic or divide by zero.
	c := New(geo.Rect{}, 0)
	c.Polygon(geo.Polygon{geo.Pt(0, 0)}, "#fff", "none", 1) // <3 vertices: ignored
	c.Polyline([]geo.Point{geo.Pt(0, 0)}, "#fff", 1)        // <2 points: ignored
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("no document produced")
	}
}

func TestRenderCity(t *testing.T) {
	city := testCity()
	city.Water = append(city.Water, &osm.Feature{
		Kind: osm.KindWater, Footprint: geo.RectPolygon(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(50, 50)}),
	})
	var buf bytes.Buffer
	if err := RenderCity(&buf, city, 600); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Count(svg, "<polygon") < city.NumBuildings() {
		t.Errorf("only %d polygons for %d buildings", strings.Count(svg, "<polygon"), city.NumBuildings())
	}
}

func TestRenderMesh(t *testing.T) {
	city := testCity()
	m := mesh.Place(city, mesh.DefaultConfig())
	var buf bytes.Buffer
	if err := RenderMesh(&buf, city, m, 600); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "<circle") != m.NumAPs() {
		t.Errorf("circles = %d, APs = %d", strings.Count(buf.String(), "<circle"), m.NumAPs())
	}
}

func TestRenderSimulation(t *testing.T) {
	city := testCity()
	m := mesh.Place(city, mesh.DefaultConfig())
	res := sim.Result{Transcript: make([]sim.APRecord, m.NumAPs())}
	res.Transcript[0] = sim.APRecord{Received: true, Forwarded: true}
	res.Transcript[1] = sim.APRecord{Received: true}
	conduits := []geo.OrientedRect{{A: geo.Pt(0, 0), B: geo.Pt(400, 300), HalfWidth: 25}}
	var buf bytes.Buffer
	if err := RenderSimulation(&buf, city, m, conduits, []int{0, 5, 9}, res, 600); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Count(svg, "<circle") != 2 {
		t.Errorf("circles = %d, want 2 (one forwarded, one received)", strings.Count(svg, "<circle"))
	}
	if !strings.Contains(svg, "<polyline") {
		t.Error("route polyline missing")
	}
}
