package svgrender

import (
	"bytes"
	"strings"
	"testing"

	"citymesh/internal/stats"
)

func TestRenderCDFChart(t *testing.T) {
	a := stats.NewCDF([]float64{1, 2, 3, 4, 5, 10, 20})
	b := stats.NewCDF([]float64{5, 6, 7, 8, 9})
	var buf bytes.Buffer
	err := RenderCDFChart(&buf, "Figure 1a", "MACs per measurement", []CDFSeries{
		{Name: "downtown", CDF: a},
		{Name: "river", CDF: b},
	})
	if err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "Figure 1a", "downtown", "river", "<polyline"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polylines = %d, want 2", strings.Count(svg, "<polyline"))
	}
	// Empty series are skipped without error.
	buf.Reset()
	if err := RenderCDFChart(&buf, "t", "x", []CDFSeries{{Name: "none", CDF: stats.NewCDF(nil)}}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderBinnedBoxChart(t *testing.T) {
	b := stats.NewBinned(25)
	for i := 0; i < 100; i++ {
		b.Add(float64(i%4)*25+5, float64(100-i))
	}
	var buf bytes.Buffer
	if err := RenderBinnedBoxChart(&buf, "Figure 2", "distance (m)", "common APs", b); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Count(svg, "<rect") < 4 { // background + 4 boxes
		t.Errorf("rects = %d", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "Figure 2") {
		t.Error("title missing")
	}
	if err := RenderBinnedBoxChart(&buf, "t", "x", "y", stats.NewBinned(10)); err == nil {
		t.Error("empty binned should error")
	}
}

func TestRenderGroupedBarChart(t *testing.T) {
	groups := []BarGroup{
		{Label: "boston", Values: []float64{0.73, 0.64}},
		{Label: "dc", Values: []float64{0.51, 0.90}},
		{Label: "gridtown", Values: []float64{1.0, 0.94}},
	}
	var buf bytes.Buffer
	if err := RenderGroupedBarChart(&buf, "Figure 6", []string{"reachability", "deliverability"}, groups, 1); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Count(svg, "<rect") < 7 { // background + 6 bars
		t.Errorf("rects = %d", strings.Count(svg, "<rect"))
	}
	for _, want := range []string{"boston", "dc", "gridtown", "reachability"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	if err := RenderGroupedBarChart(&buf, "t", nil, nil, 0); err == nil {
		t.Error("empty chart should error")
	}
	// Auto y-max path and short Values slices must not panic.
	buf.Reset()
	if err := RenderGroupedBarChart(&buf, "t", []string{"a", "b"}, []BarGroup{{Label: "x", Values: []float64{2}}}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(5) != "5" || trimFloat(0.25) != "0.25" {
		t.Errorf("trimFloat = %q, %q", trimFloat(5), trimFloat(0.25))
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Equal min/max must not divide by zero.
	c := newChart("t", "x", "y", 1, 1, 2, 2)
	c.axes(2, 2)
	var buf bytes.Buffer
	if err := c.writeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("no output")
	}
}
