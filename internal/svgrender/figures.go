package svgrender

import (
	"io"

	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/sim"
)

// Palette used by the figure renderers; chosen to match the paper's plots
// (building footprints in red, APs as white dots on dark ground, conduit
// APs light blue, non-forwarding receivers red, route in green).
const (
	colorBuilding   = "#c0392b"
	colorWater      = "#5dade2"
	colorPark       = "#58d68d"
	colorHighway    = "#909497"
	colorAPLink     = "#7f8c8d"
	colorAP         = "#f2f3f4"
	colorConduitAP  = "#85c1e9"
	colorReceiveAP  = "#e74c3c"
	colorRoute      = "#28b463"
	colorConduitBox = "#aed6f1"
	darkBackground  = "#1b2631"
)

// RenderCity draws the paper's Figure 5a: building footprints (plus water,
// parks and highway corridors when present).
func RenderCity(w io.Writer, city *osm.City, pxWidth int) error {
	c := New(city.Bounds.Pad(20), pxWidth)
	for _, f := range city.Water {
		c.Polygon(f.Footprint, colorWater, "none", 0.7)
	}
	for _, f := range city.Parks {
		c.Polygon(f.Footprint, colorPark, "none", 0.6)
	}
	for _, f := range city.Highways {
		c.Polygon(f.Footprint, colorHighway, "none", 0.6)
	}
	for _, f := range city.Buildings {
		c.Polygon(f.Footprint, colorBuilding, "none", 0.9)
	}
	_, err := c.WriteTo(w)
	return err
}

// RenderMesh draws the paper's Figure 5b: footprints with APs as white dots
// interconnected by gray lines where within transmission range.
func RenderMesh(w io.Writer, city *osm.City, m *mesh.Mesh, pxWidth int) error {
	c := New(city.Bounds.Pad(20), pxWidth)
	c.SetBackground(darkBackground)
	for _, f := range city.Water {
		c.Polygon(f.Footprint, colorWater, "none", 0.4)
	}
	for _, f := range city.Buildings {
		c.Polygon(f.Footprint, colorBuilding, "none", 0.5)
	}
	adj := m.Adjacency()
	for i, ns := range adj {
		for _, j := range ns {
			if int(j) > i {
				c.Line(m.APs[i].Pos, m.APs[j].Pos, colorAPLink, 0.5)
			}
		}
	}
	for _, ap := range m.APs {
		c.Circle(ap.Pos, 1.5, colorAP)
	}
	_, err := c.WriteTo(w)
	return err
}

// RenderSimulation draws the paper's Figure 7: the conduit region, the
// building-route polyline in green, light blue dots for APs that
// rebroadcast, and red dots for APs that received without rebroadcasting.
// The transcript must come from a sim run with RecordTranscript set.
func RenderSimulation(w io.Writer, city *osm.City, m *mesh.Mesh, conduits []geo.OrientedRect,
	routeBuildings []int, res sim.Result, pxWidth int) error {
	c := New(city.Bounds.Pad(20), pxWidth)
	c.SetBackground(darkBackground)
	for _, f := range city.Water {
		c.Polygon(f.Footprint, colorWater, "none", 0.4)
	}
	for _, f := range city.Buildings {
		c.Polygon(f.Footprint, colorBuilding, "none", 0.35)
	}
	for _, o := range conduits {
		c.OrientedRect(o, colorConduitBox, 0.25)
	}
	// Route polyline through building centroids.
	if len(routeBuildings) >= 2 {
		pts := make([]geo.Point, 0, len(routeBuildings))
		for _, b := range routeBuildings {
			if b >= 0 && b < city.NumBuildings() {
				pts = append(pts, city.Buildings[b].Centroid)
			}
		}
		c.Polyline(pts, colorRoute, 2.5)
	}
	for id, rec := range res.Transcript {
		if !rec.Received {
			continue
		}
		if rec.Forwarded {
			c.Circle(m.APs[id].Pos, 2, colorConduitAP)
		} else {
			c.Circle(m.APs[id].Pos, 2, colorReceiveAP)
		}
	}
	_, err := c.WriteTo(w)
	return err
}
