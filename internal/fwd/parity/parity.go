// Package parity is the sim↔live differential harness for the shared
// forwarding kernel (internal/fwd). It drives the same generated city,
// the same packet, and the same static fault set through two
// implementations that share nothing but the kernel:
//
//   - the discrete-event simulator (internal/sim) running the CityMesh
//     policy, and
//   - an in-process hub of live AP agents (internal/agent) exchanging
//     encoded frames over the mesh adjacency,
//
// then asserts that the two worlds reach, rebroadcast at, and deliver to
// exactly the same AP sets. A mismatch means the sim policy and the live
// runtime have drifted apart — precisely the bug the kernel exists to
// make impossible — so the harness runs in CI (the "parity" experiment
// and the package tests).
//
// The comparison is exact only in the noise-free regime the scenarios
// pin down: zero jitter, zero loss, no collision window, unit-disk
// radio, and static failures. Under those settings both worlds compute
// the same BFS closure over kernel-approved forwarders (equal per-hop
// delay makes the sim's event order hop-count order, which is also the
// hub's FIFO order), so set equality is the expected outcome, not a
// statistical one. Time-varying fault schedules are rejected: their
// outcome depends on event timing the live hub does not model.
package parity

import (
	"fmt"
	"sort"

	"citymesh/internal/agent"
	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/faults"
	"citymesh/internal/fwd"
	"citymesh/internal/packet"
	"citymesh/internal/routing"
	"citymesh/internal/sim"
)

// Scenario is one parity run: a generated city, a fault injection, and a
// message (point-to-point or geocast).
type Scenario struct {
	// Name labels the scenario in tables and failures.
	Name string
	// Seed drives city generation, AP placement, pair choice, and fault
	// injection.
	Seed int64
	// FaultMode and FaultFrac configure a static fault injection
	// (faults.ModeNone, ModeUniform, ModeDisk, ...). Churn is rejected:
	// parity is defined only for time-invariant failure sets.
	FaultMode faults.Mode
	FaultFrac float64
	// Geocast turns the message into an area broadcast around the
	// destination building's centroid with the given radius in meters.
	Geocast       bool
	GeocastRadius float64
}

// Result is the outcome of one parity run.
type Result struct {
	Scenario Scenario
	// APs is the mesh size; FailedAPs how many the injection killed.
	APs       int
	FailedAPs int
	// SourceAP is the AP both worlds injected at.
	SourceAP int
	// Reached / Forwarded / Delivered are the agreed set sizes (valid
	// when OK).
	Reached   int
	Forwarded int
	Delivered int
	// SimDelivered reports the simulator's destination-building verdict.
	SimDelivered bool
	// Decisions is the kernel's per-reason tally from the sim run; the
	// hub's total is asserted identical.
	Decisions fwd.Counts
	// Mismatches lists every AP where the two worlds disagreed, already
	// formatted; empty means parity holds.
	Mismatches []string
}

// OK reports whether the simulator and the live agents agreed exactly.
func (r Result) OK() bool { return len(r.Mismatches) == 0 }

// Scenarios returns the standard parity suite: a clean baseline, a
// disk-outage injection (§4's disaster scenario), uniform random
// failures, and a geocast. CI runs all of them.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "baseline", Seed: 11},
		{Name: "disk-outage", Seed: 12, FaultMode: faults.ModeDisk, FaultFrac: 0.30},
		{Name: "uniform-30", Seed: 13, FaultMode: faults.ModeUniform, FaultFrac: 0.30},
		{Name: "geocast", Seed: 14, Geocast: true, GeocastRadius: 120},
	}
}

// Run executes one scenario through both worlds and diffs them.
func Run(sc Scenario) (Result, error) {
	res := Result{Scenario: sc}

	net, err := core.FromSpec(citygen.SmallTestSpec(sc.Seed), core.Config{APSeed: sc.Seed})
	if err != nil {
		return res, fmt.Errorf("parity %s: build network: %w", sc.Name, err)
	}
	res.APs = net.Mesh.NumAPs()

	inj, err := faults.Inject(net.Mesh, net.City, faults.Config{
		Mode: sc.FaultMode, Frac: sc.FaultFrac, Seed: sc.Seed,
	})
	if err != nil {
		return res, fmt.Errorf("parity %s: inject faults: %w", sc.Name, err)
	}
	if inj.Schedule != nil {
		return res, fmt.Errorf("parity %s: time-varying fault schedules are not parity-comparable", sc.Name)
	}
	res.FailedAPs = len(inj.Failed)

	pkt, srcAP, err := pickMessage(net, inj.Failed, sc)
	if err != nil {
		return res, fmt.Errorf("parity %s: %w", sc.Name, err)
	}
	res.SourceAP = srcAP

	// World A: the discrete-event simulator in its noise-free setting. The
	// harness builds its own engine with a fresh kernel-backed policy so
	// the decision tally diffed below covers exactly this run.
	eng := sim.NewEngine(net.Mesh, net.City, routing.NewCityMesh())
	simRes, err := eng.Run(pkt, sim.Config{
		TxDelay:          0.001,
		FailedAPs:        inj.Failed,
		Seed:             1,
		RecordTranscript: true,
	})
	if err != nil {
		return res, fmt.Errorf("parity %s: sim run: %w", sc.Name, err)
	}
	if simRes.SourceAP != srcAP {
		return res, fmt.Errorf("parity %s: sim injected at AP %d, expected %d", sc.Name, simRes.SourceAP, srcAP)
	}
	res.SimDelivered = simRes.Delivered
	res.Decisions = simRes.Decisions

	// World B: live agents on the in-process hub, same fault set.
	hub := agent.NewHubWithConfig(net.Mesh, net.City, agent.HubConfig{Failed: inj.Failed})
	delivered := make([]bool, net.Mesh.NumAPs())
	for i := 0; i < hub.NumAgents(); i++ {
		i := i
		hub.Agent(i).OnDeliver(func(*packet.Packet) { delivered[i] = true })
	}
	if err := hub.Agent(srcAP).Inject(pkt.Clone()); err != nil {
		hub.Close()
		return res, fmt.Errorf("parity %s: inject: %w", sc.Name, err)
	}
	hub.Flush()
	hub.Close()

	// Diff the three per-AP sets plus the kernel tallies.
	var hubDecisions fwd.Counts
	hdr := &pkt.Header
	for ap := 0; ap < net.Mesh.NumAPs(); ap++ {
		st := hub.Agent(ap).Stats()
		hubDecisions = add(hubDecisions, st.Decisions)

		simReached := simRes.Transcript[ap].Received
		liveReached := st.Received > 0 || ap == srcAP
		if simReached != liveReached {
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("ap %d: reached sim=%v live=%v", ap, simReached, liveReached))
			continue
		}
		if simReached {
			res.Reached++
		}

		simFwd := simRes.Transcript[ap].Forwarded
		liveFwd := st.Rebroadcast > 0
		if simFwd != liveFwd {
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("ap %d: forwarded sim=%v live=%v", ap, simFwd, liveFwd))
		} else if simFwd {
			res.Forwarded++
		}

		// The simulator has no per-AP delivery callback; its expected
		// delivery set is "reached and the kernel would deliver here" —
		// the same predicate the live agent evaluates.
		a := net.Mesh.APs[ap]
		simDel := simReached && fwd.WouldDeliver(hdr, fwd.Self{Pos: a.Pos, Building: a.Building})
		if simDel != delivered[ap] {
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("ap %d: delivered sim=%v live=%v", ap, simDel, delivered[ap]))
		} else if simDel {
			res.Delivered++
		}
	}
	if hubDecisions != simRes.Decisions {
		res.Mismatches = append(res.Mismatches,
			fmt.Sprintf("kernel tallies diverge: sim=%+v live=%+v", simRes.Decisions, hubDecisions))
	}
	sort.Strings(res.Mismatches)
	return res, nil
}

// RunAll runs every scenario and returns the results; err is non-nil if
// any scenario failed to run at all (as opposed to running and
// mismatching, which the Result reports).
func RunAll(scs []Scenario) ([]Result, error) {
	out := make([]Result, 0, len(scs))
	for _, sc := range scs {
		r, err := Run(sc)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// pickMessage selects a routable building pair whose source AP survived
// the injection and builds the scenario's packet.
func pickMessage(net *core.Network, failed map[int]bool, sc Scenario) (*packet.Packet, int, error) {
	pairs, err := net.RandomPairs(sc.Seed, 256)
	if err != nil {
		return nil, -1, err
	}
	for _, p := range pairs {
		src, dst := p[0], p[1]
		if !net.Reachable(src, dst) {
			continue
		}
		aps := net.Mesh.APsInBuilding(src)
		if len(aps) == 0 || failed[int(aps[0])] {
			continue
		}
		route, err := net.PlanRoute(src, dst)
		if err != nil {
			continue
		}
		pkt, err := net.NewPacket(route, []byte("parity probe"))
		if err != nil {
			continue
		}
		if sc.Geocast {
			c := net.City.Buildings[dst].Centroid
			pkt.Header.Flags |= packet.FlagGeocast
			pkt.Header.Target = packet.GeocastArea{
				CenterX: int32(c.X + 0.5),
				CenterY: int32(c.Y + 0.5),
				Radius:  uint32(sc.GeocastRadius + 0.5),
			}
		}
		return pkt, int(aps[0]), nil
	}
	return nil, -1, fmt.Errorf("no viable (src, dst) pair among %d candidates", len(pairs))
}

func add(a, b fwd.Counts) fwd.Counts {
	return fwd.Counts{
		FirstHop:     a.FirstHop + b.FirstHop,
		TTLExpired:   a.TTLExpired + b.TTLExpired,
		Geocast:      a.Geocast + b.Geocast,
		InConduit:    a.InConduit + b.InConduit,
		OutOfConduit: a.OutOfConduit + b.OutOfConduit,
		BadRoute:     a.BadRoute + b.BadRoute,
	}
}
