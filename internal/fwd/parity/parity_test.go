package parity

import (
	"testing"

	"citymesh/internal/faults"
)

// TestParityScenarios is the PR's core differential: the simulator and
// the live agent runtime must agree AP-by-AP on who hears, who forwards,
// and who delivers, across the standard scenario suite.
func TestParityScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !r.OK() {
				for _, m := range r.Mismatches {
					t.Error(m)
				}
				t.Fatalf("%d mismatches across %d APs", len(r.Mismatches), r.APs)
			}
			if r.Reached < 2 {
				t.Fatalf("degenerate scenario: only %d APs reached", r.Reached)
			}
			if sc.FaultMode == "" {
				// Fault-free scenarios must exercise the delivery path;
				// under 30% failures non-delivery is a legitimate outcome
				// that the two worlds must merely agree on.
				if !r.SimDelivered {
					t.Fatalf("fault-free scenario must deliver")
				}
				if r.Delivered == 0 {
					t.Fatalf("no AP delivered — scenario exercises nothing")
				}
			}
			if r.Decisions.Total() == 0 {
				t.Fatalf("kernel decision tally empty")
			}
			t.Logf("%s: %d APs (%d failed), reached=%d forwarded=%d delivered=%d decisions=%+v",
				sc.Name, r.APs, r.FailedAPs, r.Reached, r.Forwarded, r.Delivered, r.Decisions)
		})
	}
}

// TestParityRejectsChurn pins the documented boundary: time-varying
// schedules are not parity-comparable and must be refused, not silently
// mis-compared.
func TestParityRejectsChurn(t *testing.T) {
	_, err := Run(Scenario{Name: "churn", Seed: 3, FaultMode: faults.ModeChurn, FaultFrac: 0.2})
	if err == nil {
		t.Fatal("churn scenario must be rejected")
	}
}

// TestGeocastParityDeliversOutsideDstBuilding asserts the geocast
// scenario actually exercises the area-delivery path: more APs deliver
// than the destination building hosts.
func TestGeocastParityDeliversOutsideDstBuilding(t *testing.T) {
	var geo Scenario
	for _, sc := range Scenarios() {
		if sc.Geocast {
			geo = sc
		}
	}
	if !geo.Geocast {
		t.Fatal("no geocast scenario in suite")
	}
	r, err := Run(geo)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("geocast parity broken: %v", r.Mismatches)
	}
	if r.Delivered < 2 {
		t.Fatalf("geocast delivered to %d APs; want the whole disc, not just the anchor", r.Delivered)
	}
}
