package fwd

import (
	"fmt"
	"testing"

	"citymesh/internal/geo"
	"citymesh/internal/packet"
)

// gridView is a minimal MapView: buildings on a line along the x-axis,
// spaced 100 m apart, so conduit geometry is easy to reason about.
type gridView struct {
	centroids []geo.Point
}

func (v *gridView) NumBuildings() int        { return len(v.centroids) }
func (v *gridView) Centroid(b int) geo.Point { return v.centroids[b] }

// lineCity returns n buildings at (0,0), (100,0), ..., ((n-1)*100, 0).
func lineCity(n int) *gridView {
	v := &gridView{}
	for i := 0; i < n; i++ {
		v.centroids = append(v.centroids, geo.Pt(float64(i)*100, 0))
	}
	return v
}

// header builds a route header across waypoint buildings with default
// width (50 m half-width conduits).
func header(ttl uint8, waypoints ...uint32) *packet.Header {
	return &packet.Header{TTL: ttl, MsgID: 42, Waypoints: waypoints}
}

func TestFirstHopAlwaysTransmits(t *testing.T) {
	view := lineCity(3)
	hdr := header(8, 0, 2)
	// Self far outside every conduit: the injection AP still transmits.
	self := Self{Pos: geo.Pt(0, 5000), Building: -1}
	v := Decide(view, hdr, self, true)
	if !v.Rebroadcast || v.Reason != ReasonFirstHop {
		t.Fatalf("first hop: got %+v, want rebroadcast with ReasonFirstHop", v)
	}
	if v.Deliver {
		t.Fatalf("first hop far from destination should not deliver: %+v", v)
	}
	// Even with an exhausted TTL the injection transmits: first-hop wins.
	v = Decide(view, header(1, 0, 2), self, true)
	if !v.Rebroadcast || v.Reason != ReasonFirstHop {
		t.Fatalf("first hop with TTL 1: got %+v, want rebroadcast", v)
	}
}

func TestTTLExpiredSuppressesForwardNotDelivery(t *testing.T) {
	view := lineCity(3)
	hdr := header(1, 0, 2)
	// The destination AP hears the frame with TTL 1: it must deliver the
	// payload but not forward it.
	dst := Self{Pos: geo.Pt(200, 0), Building: 2}
	v := Decide(view, hdr, dst, false)
	if v.Rebroadcast {
		t.Fatalf("TTL 1 must suppress rebroadcast: %+v", v)
	}
	if !v.Deliver {
		t.Fatalf("destination with expired TTL must still deliver: %+v", v)
	}
	if v.Reason != ReasonTTLExpired {
		t.Fatalf("reason = %v, want %v", v.Reason, ReasonTTLExpired)
	}
}

func TestRelayUsesOwnPositionBuildingUsesCentroid(t *testing.T) {
	view := lineCity(3)
	hdr := header(8, 0, 2)

	// A relay AP (no building) standing inside the conduit rebroadcasts on
	// its own position.
	relayIn := Self{Pos: geo.Pt(150, 30), Building: -1}
	if v := Decide(view, hdr, relayIn, false); !v.Rebroadcast || v.Reason != ReasonInConduit {
		t.Fatalf("in-conduit relay: got %+v", v)
	}
	// The same position outside the conduit suppresses.
	relayOut := Self{Pos: geo.Pt(150, 200), Building: -1}
	if v := Decide(view, hdr, relayOut, false); v.Rebroadcast || v.Reason != ReasonOutOfConduit {
		t.Fatalf("out-of-conduit relay: got %+v", v)
	}

	// A building-hosted AP is judged by its building's centroid, not where
	// its own radio happens to sit: building 1's centroid (100,0) is inside
	// the conduit even though this AP's position is far outside.
	hosted := Self{Pos: geo.Pt(150, 5000), Building: 1}
	if v := Decide(view, hdr, hosted, false); !v.Rebroadcast || v.Reason != ReasonInConduit {
		t.Fatalf("centroid-in, position-out must rebroadcast: got %+v", v)
	}
	// And the converse: position inside, centroid outside — suppressed.
	farView := lineCity(3)
	farView.centroids[1] = geo.Pt(100, 5000)
	hosted = Self{Pos: geo.Pt(100, 0), Building: 1}
	if v := Decide(farView, hdr, hosted, false); v.Rebroadcast {
		t.Fatalf("centroid-out, position-in must suppress: got %+v", v)
	}
}

func TestGeocastDeliversAndForwardsInDisc(t *testing.T) {
	view := lineCity(5)
	hdr := header(8, 0, 4)
	hdr.Flags |= packet.FlagGeocast
	hdr.Target = packet.GeocastArea{CenterX: 200, CenterY: 400, Radius: 100}

	// In-disc AP outside every conduit: geocast both delivers and forwards.
	inDisc := Self{Pos: geo.Pt(200, 350), Building: -1}
	v := Decide(view, hdr, inDisc, false)
	if !v.Rebroadcast || v.Reason != ReasonGeocast {
		t.Fatalf("in-disc AP: got %+v, want geocast rebroadcast", v)
	}
	if !v.Deliver {
		t.Fatalf("in-disc AP must deliver: %+v", v)
	}

	// Same AP with exhausted TTL: delivery survives, forwarding does not.
	exhausted := header(1, 0, 4)
	exhausted.Flags = hdr.Flags
	exhausted.Target = hdr.Target
	v = Decide(view, exhausted, inDisc, false)
	if v.Rebroadcast {
		t.Fatalf("expired-TTL geocast must not forward: %+v", v)
	}
	if !v.Deliver {
		t.Fatalf("expired-TTL geocast must still deliver: %+v", v)
	}

	// Out-of-disc, in-conduit AP: normal conduit forwarding, no delivery.
	transit := Self{Pos: geo.Pt(200, 0), Building: 2}
	v = Decide(view, hdr, transit, false)
	if !v.Rebroadcast || v.Reason != ReasonInConduit {
		t.Fatalf("out-of-disc transit AP: got %+v", v)
	}
	if v.Deliver {
		t.Fatalf("out-of-disc transit AP must not deliver: %+v", v)
	}
}

func TestBadRouteSuppresses(t *testing.T) {
	view := lineCity(3)
	self := Self{Pos: geo.Pt(0, 0), Building: 0}

	// No waypoints at all.
	if v := Decide(view, &packet.Header{TTL: 8, MsgID: 1}, self, false); v.Rebroadcast || v.Reason != ReasonBadRoute {
		t.Fatalf("empty waypoints: got %+v", v)
	}
	// Waypoint index beyond the map.
	if v := Decide(view, header(8, 0, 99), self, false); v.Rebroadcast || v.Reason != ReasonBadRoute {
		t.Fatalf("unknown waypoint: got %+v", v)
	}
	// No map at all (an agent still syncing its map cannot judge conduits).
	if v := Decide(nil, header(8, 0, 2), self, false); v.Rebroadcast || v.Reason != ReasonBadRoute {
		t.Fatalf("nil view: got %+v", v)
	}
}

func TestKernelAgreesWithPureDecide(t *testing.T) {
	view := lineCity(6)
	k := NewKernel(Options{})
	selves := []Self{
		{Pos: geo.Pt(150, 0), Building: -1},
		{Pos: geo.Pt(150, 400), Building: -1},
		{Pos: geo.Pt(300, 0), Building: 3},
		{Pos: geo.Pt(500, 0), Building: 5},
		{Pos: geo.Pt(0, 0), Building: 0},
	}
	hdrs := []*packet.Header{
		header(8, 0, 5),
		header(1, 0, 5),
		header(8, 0, 2, 5),
		{TTL: 8, MsgID: 7},
	}
	g := header(8, 0, 5)
	g.Flags |= packet.FlagGeocast
	g.Target = packet.GeocastArea{CenterX: 150, CenterY: 0, Radius: 60}
	hdrs = append(hdrs, g)

	for hi, hdr := range hdrs {
		for si, self := range selves {
			for _, firstHop := range []bool{false, true} {
				want := Decide(view, hdr, self, firstHop)
				got := k.Decide(view, hdr, self, firstHop)
				if got != want {
					t.Fatalf("hdr %d self %d firstHop=%v: kernel %+v != pure %+v",
						hi, si, firstHop, got, want)
				}
			}
		}
	}
	if c := k.Counts(); c.Total() != uint64(len(hdrs)*len(selves)*2) {
		t.Fatalf("counted %d decisions, want %d", c.Total(), len(hdrs)*len(selves)*2)
	}
}

func TestKernelCountsBreakdown(t *testing.T) {
	view := lineCity(3)
	k := NewKernel(Options{})
	hdr := header(8, 0, 2)

	k.Decide(view, hdr, Self{Pos: geo.Pt(0, 0), Building: 0}, true)                // first hop
	k.Decide(view, hdr, Self{Pos: geo.Pt(100, 0), Building: 1}, false)             // in conduit
	k.Decide(view, hdr, Self{Pos: geo.Pt(100, 900), Building: -1}, false)          // out of conduit
	k.Decide(view, header(1, 0, 2), Self{Pos: geo.Pt(200, 0), Building: 2}, false) // ttl

	c := k.Counts()
	want := Counts{FirstHop: 1, InConduit: 1, OutOfConduit: 1, TTLExpired: 1}
	if c != want {
		t.Fatalf("counts = %+v, want %+v", c, want)
	}
	if c.Rebroadcasts() != 2 {
		t.Fatalf("rebroadcasts = %d, want 2", c.Rebroadcasts())
	}
	if d := c.Sub(Counts{FirstHop: 1}); d.FirstHop != 0 || d.InConduit != 1 {
		t.Fatalf("sub = %+v", d)
	}
}

func TestKernelCacheBoundedAndCorrectAcrossEviction(t *testing.T) {
	view := lineCity(3)
	const cap = 8
	k := NewKernel(Options{CacheCap: cap})
	self := Self{Pos: geo.Pt(100, 0), Building: 1}

	for i := 0; i < 10*cap; i++ {
		hdr := header(8, 0, 2)
		hdr.MsgID = uint64(i + 1)
		if v := k.Decide(view, hdr, self, false); !v.Rebroadcast {
			t.Fatalf("msg %d: got %+v", i, v)
		}
		if n := k.CacheLen(); n > cap {
			t.Fatalf("cache grew to %d entries, cap %d", n, cap)
		}
	}
	if n := k.CacheLen(); n != cap {
		t.Fatalf("cache len = %d, want full at %d", n, cap)
	}
	// An evicted message decides identically when it comes back (rebuild).
	old := header(8, 0, 2)
	old.MsgID = 1
	if v := k.Decide(view, old, self, false); !v.Rebroadcast || v.Reason != ReasonInConduit {
		t.Fatalf("evicted msg re-decide: got %+v", v)
	}
}

func TestKernelCacheDisabled(t *testing.T) {
	view := lineCity(3)
	k := NewKernel(Options{CacheCap: -1})
	self := Self{Pos: geo.Pt(100, 0), Building: 1}
	for i := 0; i < 4; i++ {
		hdr := header(8, 0, 2)
		hdr.MsgID = uint64(i + 1)
		if v := k.Decide(view, hdr, self, false); !v.Rebroadcast {
			t.Fatalf("msg %d: got %+v", i, v)
		}
	}
	if n := k.CacheLen(); n != 0 {
		t.Fatalf("disabled cache holds %d entries", n)
	}
}

func TestKernelCachesBadRoutes(t *testing.T) {
	view := lineCity(3)
	k := NewKernel(Options{CacheCap: 4})
	self := Self{Pos: geo.Pt(0, 0), Building: 0}
	bad := header(8, 0, 99) // unknown waypoint
	for i := 0; i < 3; i++ {
		if v := k.Decide(view, bad, self, false); v.Rebroadcast || v.Reason != ReasonBadRoute {
			t.Fatalf("bad route: got %+v", v)
		}
	}
	// The nil region occupies a cache slot: one reconstruction attempt, not
	// one per frame.
	if n := k.CacheLen(); n != 1 {
		t.Fatalf("bad-route cache len = %d, want 1", n)
	}
}

func TestConcurrentKernelDecides(t *testing.T) {
	view := lineCity(4)
	k := NewKernel(Options{CacheCap: 16})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			self := Self{Pos: geo.Pt(float64(g)*40, 0), Building: -1}
			for i := 0; i < 200; i++ {
				hdr := header(8, 0, 3)
				hdr.MsgID = uint64(i % 32)
				want := Decide(view, hdr, self, false)
				if got := k.Decide(view, hdr, self, false); got != want {
					done <- fmt.Errorf("goroutine %d msg %d: %+v != %+v", g, i, got, want)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if n := k.CacheLen(); n > 16 {
		t.Fatalf("cache len %d exceeds cap", n)
	}
}

func TestReasonStrings(t *testing.T) {
	for r := ReasonFirstHop; r < numReasons; r++ {
		if r.String() == "unknown" {
			t.Fatalf("reason %d has no name", r)
		}
	}
	if numReasons.String() != "unknown" {
		t.Fatalf("out-of-range reason should stringify as unknown")
	}
}

// TestKernelCacheUnderMovement: the conduit-region cache is keyed by
// message ID and stores pure geometry — the mover's own position enters
// per decision via Self. A node drifting across the conduit boundary (a
// relay on a moving vehicle) must see its verdict flip at the boundary
// while the cache neither grows nor goes stale.
func TestKernelCacheUnderMovement(t *testing.T) {
	view := lineCity(6)
	k := NewKernel(Options{})
	hdr := header(8, 0, 5)

	// Walk a mobile relay from the conduit spine out to 1 km abeam and
	// back, deciding the same message at every step.
	var flips []Reason
	prev := Reason(255)
	for _, y := range []float64{0, 30, 120, 400, 1000, 400, 120, 30, 0} {
		v := k.Decide(view, hdr, Self{Pos: geo.Pt(250, y), Building: -1}, false)
		if v.Reason != ReasonInConduit && v.Reason != ReasonOutOfConduit {
			t.Fatalf("y=%v: unexpected reason %v", y, v.Reason)
		}
		if v.Reason != prev {
			flips = append(flips, v.Reason)
			prev = v.Reason
		}
		if want := Decide(view, hdr, Self{Pos: geo.Pt(250, y), Building: -1}, false); v != want {
			t.Fatalf("y=%v: cached verdict %+v diverges from pure %+v", y, v, want)
		}
	}
	// On the spine it forwards; far abeam it suppresses; back on the spine
	// it forwards again — three regimes, one cached region.
	if len(flips) != 3 || flips[0] != ReasonInConduit || flips[1] != ReasonOutOfConduit || flips[2] != ReasonInConduit {
		t.Fatalf("verdict regimes along the drive = %v, want in/out/in", flips)
	}
	if n := k.CacheLen(); n != 1 {
		t.Fatalf("cache holds %d regions after one message's movement, want 1", n)
	}
}
