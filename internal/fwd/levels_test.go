package fwd

import (
	"testing"

	"citymesh/internal/geo"
	"citymesh/internal/packet"
)

// levelView is a minimal MapView: n nodes on a straight line 100 apart —
// serving as buildings at level 0 and as region anchors at level 1.
type levelView struct{ n int }

func (v levelView) NumBuildings() int        { return v.n }
func (v levelView) Centroid(b int) geo.Point { return geo.Pt(float64(b)*100, 0) }

func TestLevelKernelIndependentCounters(t *testing.T) {
	lk := NewLevelKernel()
	buildings := levelView{n: 10}
	regions := levelView{n: 4}
	hdrL0 := &packet.Header{TTL: 16, MsgID: 1, Width: 60, Waypoints: []uint32{0, 9}}
	hdrL1 := &packet.Header{TTL: 8, MsgID: 2, Width: 60, Waypoints: []uint32{0, 3}}

	// Level 0: an on-corridor building forwards.
	v0 := lk.Level(Level0Building).Decide(buildings, hdrL0, Self{Pos: geo.Pt(500, 0), Building: 5}, false)
	if !v0.Rebroadcast || v0.Reason != ReasonInConduit {
		t.Fatalf("level-0 verdict = %+v", v0)
	}
	// Level 1: an on-corridor region relays, an off-corridor one does not.
	v1 := lk.Level(Level1Region).Decide(regions, hdrL1, Self{Pos: geo.Pt(100, 0), Building: 1}, false)
	if !v1.Rebroadcast || v1.Reason != ReasonInConduit {
		t.Fatalf("level-1 verdict = %+v", v1)
	}
	far := lk.Level(Level1Region).Decide(regions, hdrL1, Self{Pos: geo.Pt(100, 900), Building: -1}, false)
	if far.Rebroadcast {
		t.Fatalf("far region forwarded: %+v", far)
	}

	c0, c1 := lk.Counts(Level0Building), lk.Counts(Level1Region)
	if c0.Total() != 1 || c0.InConduit != 1 {
		t.Errorf("level-0 counts = %+v", c0)
	}
	if c1.Total() != 2 || c1.InConduit != 1 || c1.OutOfConduit != 1 {
		t.Errorf("level-1 counts = %+v", c1)
	}
	all := lk.AllCounts()
	if all[0] != c0 || all[1] != c1 {
		t.Errorf("AllCounts = %+v", all)
	}
	if got := lk.TotalCounts().Total(); got != 3 {
		t.Errorf("TotalCounts.Total = %d, want 3", got)
	}
}

func TestLevelKernelSeparateCaches(t *testing.T) {
	// The same MsgID decided at both levels must reconstruct against each
	// level's own view — shared caching would poison one with the other.
	lk := NewLevelKernel()
	hdr := &packet.Header{TTL: 16, MsgID: 42, Width: 60, Waypoints: []uint32{0, 3}}
	buildings := levelView{n: 100}
	regions := levelView{n: 4}
	lk.Level(Level0Building).Decide(buildings, hdr, Self{Pos: geo.Pt(150, 0), Building: -1}, false)
	lk.Level(Level1Region).Decide(regions, hdr, Self{Pos: geo.Pt(150, 0), Building: -1}, false)
	r0 := lk.Level(Level0Building).Region(buildings, hdr)
	r1 := lk.Level(Level1Region).Region(regions, hdr)
	if r0 == r1 {
		t.Fatal("levels share one cached conduit region")
	}
}

func TestLevelKernelPerLevelOptions(t *testing.T) {
	lk := NewLevelKernel(Options{}, Options{MaxTTL: 4})
	regions := levelView{n: 4}
	hdr := &packet.Header{TTL: 9, MsgID: 7, Waypoints: []uint32{0, 3}}
	v := lk.Level(Level1Region).Decide(regions, hdr, Self{Pos: geo.Pt(100, 0), Building: 1}, false)
	if v.Reason != ReasonTTLInflated {
		t.Errorf("level-1 MaxTTL not applied: %+v", v)
	}
	// Level 0 got the zero Options: no TTL cap.
	v0 := lk.Level(Level0Building).Decide(regions, hdr, Self{Pos: geo.Pt(100, 0), Building: 1}, false)
	if v0.Reason == ReasonTTLInflated {
		t.Errorf("level-0 inherited level-1 options: %+v", v0)
	}
}

func TestLevelKernelBadLevelPanics(t *testing.T) {
	lk := NewLevelKernel()
	for _, level := range []int{-1, NumLevels} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Level(%d) did not panic", level)
				}
			}()
			lk.Level(level)
		}()
	}
}

func TestLevelNames(t *testing.T) {
	if LevelName(Level0Building) != "L0/building" || LevelName(Level1Region) != "L1/region" {
		t.Error("level names changed")
	}
	if LevelName(5) != "L5" {
		t.Errorf("LevelName(5) = %q", LevelName(5))
	}
}
