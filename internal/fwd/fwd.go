// Package fwd is the single source of truth for an AP's forwarding
// decision — the paper's §3 step 3, where a node consults nothing but its
// cached building map and the packet header to decide whether to deliver
// and whether to rebroadcast.
//
// Before this package existed the decision was implemented twice: once in
// internal/routing (the simulator's CityMesh policy) and once in
// internal/agent (the live AP runtime), so every experiment result
// silently assumed the two copies agreed. Both are now thin adapters over
// Decide/Kernel here, and internal/fwd/parity drives identical workloads
// through the simulator and an in-process hub of live agents to prove the
// paths cannot drift.
//
// The decision is pure and stateless given the map view: Decide is a free
// function. The only state worth keeping is the reconstructed conduit
// geometry per message — Kernel adds a bounded, concurrency-safe FIFO
// cache of prefiltered conduit regions plus per-reason decision counters.
package fwd

import (
	"sync"
	"sync/atomic"

	"citymesh/internal/conduit"
	"citymesh/internal/geo"
	"citymesh/internal/packet"
)

// MapView is the contract between a deciding AP and its cached copy of the
// building map: a dense building count and per-building centroids, nothing
// else. *osm.City satisfies it directly. Sim APs and live agents hand the
// kernel the same view, which is what makes the simulator's verdicts
// byte-for-byte the deployed ones.
type MapView interface {
	NumBuildings() int
	Centroid(b int) geo.Point
}

// Self describes the deciding AP: its physical position and the dense
// index of the building hosting it (-1 for a relay AP outside any
// building).
type Self struct {
	Pos      geo.Point
	Building int
}

// Reason classifies a forwarding verdict — why the kernel did or did not
// rebroadcast. The values are stable: they are counted into agent.Stats
// and sim.Result.
type Reason uint8

const (
	// ReasonFirstHop is the initial injection (sim's from == -1, the
	// agent's Inject): the AP the sender's device submitted to always
	// transmits (§3 step 3).
	ReasonFirstHop Reason = iota
	// ReasonTTLExpired suppressed the rebroadcast because the received
	// header TTL was ≤ 1; delivery still happens.
	ReasonTTLExpired
	// ReasonGeocast rebroadcast because the packet is a geocast and the
	// AP's position lies inside the target disc.
	ReasonGeocast
	// ReasonInConduit rebroadcast because the AP's test point falls inside
	// a conduit reconstructed from the header — the paper's core rule.
	ReasonInConduit
	// ReasonOutOfConduit suppressed the rebroadcast because the test point
	// lies outside every conduit — the paper's core suppression.
	ReasonOutOfConduit
	// ReasonBadRoute suppressed the rebroadcast because the header's
	// waypoints could not be resolved against the map (unknown building
	// index, empty route, or no map at all).
	ReasonBadRoute
	// ReasonTTLInflated rejected the frame outright: its as-received TTL
	// exceeds the kernel's configured network maximum, the signature of a
	// Byzantine TTL-resetter upstream. Unlike the suppressions above, the
	// frame is not delivered either — its header is evidence of tampering.
	ReasonTTLInflated
	// ReasonBadConduit rejected the frame outright under strict sanity:
	// the header's conduit description is malformed against the local map
	// (waypoint index beyond the building count), which no honest sender
	// can produce — a corruptor's flipped route bytes.
	ReasonBadConduit

	numReasons
)

// String implements fmt.Stringer for diagnostics and experiment tables.
func (r Reason) String() string {
	switch r {
	case ReasonFirstHop:
		return "first-hop"
	case ReasonTTLExpired:
		return "ttl-expired"
	case ReasonGeocast:
		return "geocast"
	case ReasonInConduit:
		return "in-conduit"
	case ReasonOutOfConduit:
		return "out-of-conduit"
	case ReasonBadRoute:
		return "bad-route"
	case ReasonTTLInflated:
		return "ttl-inflated"
	case ReasonBadConduit:
		return "bad-conduit"
	default:
		return "unknown"
	}
}

// Verdict is the kernel's complete answer for one received packet.
// Deliver and Rebroadcast are independent: a destination AP with an
// exhausted TTL delivers without forwarding, and an in-conduit transit AP
// forwards without delivering.
type Verdict struct {
	// Deliver requests local delivery: this AP's building is the route
	// destination, or the packet is a geocast and the AP sits inside the
	// target disc.
	Deliver bool
	// Rebroadcast requests retransmission to every neighbor.
	Rebroadcast bool
	// Reason explains the Rebroadcast bit.
	Reason Reason
}

// Counts is a snapshot of per-reason decision totals. The zero value is
// empty; Sub supports windowed readings over a shared kernel.
type Counts struct {
	FirstHop     uint64
	TTLExpired   uint64
	Geocast      uint64
	InConduit    uint64
	OutOfConduit uint64
	BadRoute     uint64
	TTLInflated  uint64
	BadConduit   uint64
}

// Total returns the number of decisions counted.
func (c Counts) Total() uint64 {
	return c.FirstHop + c.TTLExpired + c.Geocast + c.InConduit + c.OutOfConduit +
		c.BadRoute + c.TTLInflated + c.BadConduit
}

// Rebroadcasts returns the decisions that requested a transmission.
func (c Counts) Rebroadcasts() uint64 { return c.FirstHop + c.Geocast + c.InConduit }

// Rejected returns the sanity rejections: frames the kernel refused to
// process at all (no delivery, no rebroadcast) because the header is
// evidence of tampering.
func (c Counts) Rejected() uint64 { return c.TTLInflated + c.BadConduit }

// Sub returns c - o field-wise (for diffing two snapshots of one kernel).
func (c Counts) Sub(o Counts) Counts {
	return Counts{
		FirstHop:     c.FirstHop - o.FirstHop,
		TTLExpired:   c.TTLExpired - o.TTLExpired,
		Geocast:      c.Geocast - o.Geocast,
		InConduit:    c.InConduit - o.InConduit,
		OutOfConduit: c.OutOfConduit - o.OutOfConduit,
		BadRoute:     c.BadRoute - o.BadRoute,
		TTLInflated:  c.TTLInflated - o.TTLInflated,
		BadConduit:   c.BadConduit - o.BadConduit,
	}
}

// Decide evaluates the paper's stateless forwarding rule with no cache and
// no counters: reconstruct the conduits from the header against the map
// view and test this AP. It is a pure function of its inputs — the
// property the parity harness leans on. hdr.TTL must be the TTL as
// received off the wire; callers that track remaining TTL out of band
// (the simulator) use Kernel.DecideTTL.
func Decide(view MapView, hdr *packet.Header, self Self, firstHop bool) Verdict {
	return verdict(view, hdr, int(hdr.TTL), self, firstHop, func() *conduit.Region {
		return BuildRegion(view, hdr)
	})
}

// BuildRegion reconstructs the prefiltered conduit region a header
// describes, exactly the computation each AP performs once per new
// message. It returns nil when the route cannot be resolved against the
// view (the ReasonBadRoute case).
func BuildRegion(view MapView, hdr *packet.Header) *conduit.Region {
	if view == nil || len(hdr.Waypoints) == 0 {
		return nil
	}
	wps := make([]int, len(hdr.Waypoints))
	for i, w := range hdr.Waypoints {
		wps[i] = int(w)
	}
	rects, err := conduit.Route{Waypoints: wps, Width: hdr.WidthMeters()}.ConduitsOn(view)
	if err != nil {
		return nil
	}
	return conduit.NewRegion(rects)
}

// TestPoint is the position the conduit-containment test runs against:
// the hosting building's centroid when the AP sits in a known building
// (§4: "currently all the APs within a building rebroadcast", so the
// building is the unit of membership), or the AP's own position for relay
// APs outside any building.
func TestPoint(view MapView, self Self) geo.Point {
	if view != nil && self.Building >= 0 && self.Building < view.NumBuildings() {
		return view.Centroid(self.Building)
	}
	return self.Pos
}

// WouldDeliver reports whether this AP should hand the packet to its
// local delivery path: it hosts the destination building, or the packet
// is a geocast whose target disc covers the AP's position. Delivery never
// depends on the conduit geometry or the TTL.
func WouldDeliver(hdr *packet.Header, self Self) bool {
	if len(hdr.Waypoints) > 0 && self.Building >= 0 && self.Building == hdr.Dst() {
		return true
	}
	return inGeocastArea(hdr, self.Pos)
}

// inGeocastArea reports whether pos lies inside the header's geocast
// target disc. The test runs against the AP's physical position, not its
// building centroid: the geocast contract is "every radio inside the
// area", not "every building".
func inGeocastArea(hdr *packet.Header, pos geo.Point) bool {
	if hdr.Flags&packet.FlagGeocast == 0 {
		return false
	}
	center := geo.Pt(float64(hdr.Target.CenterX), float64(hdr.Target.CenterY))
	return pos.Dist(center) <= float64(hdr.Target.Radius)
}

// verdict is the decision table shared by the pure and cached entry
// points. region is consulted lazily: only the conduit branch pays for
// reconstruction.
func verdict(view MapView, hdr *packet.Header, ttl int, self Self, firstHop bool, region func() *conduit.Region) Verdict {
	if len(hdr.Waypoints) == 0 {
		return Verdict{Reason: ReasonBadRoute}
	}
	deliver := WouldDeliver(hdr, self)
	if firstHop {
		// Initial injection: the AP the sender's device submitted to
		// always transmits, even at the edge of the first conduit.
		return Verdict{Deliver: deliver, Rebroadcast: true, Reason: ReasonFirstHop}
	}
	if ttl <= 1 {
		return Verdict{Deliver: deliver, Reason: ReasonTTLExpired}
	}
	if inGeocastArea(hdr, self.Pos) {
		return Verdict{Deliver: deliver, Rebroadcast: true, Reason: ReasonGeocast}
	}
	r := region()
	if r == nil {
		return Verdict{Deliver: deliver, Reason: ReasonBadRoute}
	}
	if r.Contains(TestPoint(view, self)) {
		return Verdict{Deliver: deliver, Rebroadcast: true, Reason: ReasonInConduit}
	}
	return Verdict{Deliver: deliver, Reason: ReasonOutOfConduit}
}

// DefaultCacheCap is the default bound on the kernel's per-message conduit
// cache. 1024 messages of a few rectangles each is tens of kilobytes —
// safe for a 32 MB router — while covering far more concurrent flood
// waves than a city sees at once.
const DefaultCacheCap = 1024

// Options parameterizes a Kernel.
type Options struct {
	// CacheCap bounds the conduit-region cache (number of message IDs);
	// 0 means DefaultCacheCap, negative disables caching entirely.
	CacheCap int
	// MaxTTL, when non-zero, rejects non-first-hop frames whose
	// as-received TTL exceeds it (ReasonTTLInflated). Set it to the
	// deployment's network TTL: no honest frame can arrive above it, so
	// anything that does was rewritten by a Byzantine TTL-resetter.
	MaxTTL uint8
	// StrictSanity enables cheap header-shape rejection: a waypoint index
	// beyond the map view's building count is unmappable by any honest
	// sender and rejects the frame outright (ReasonBadConduit) instead of
	// merely suppressing the rebroadcast as bad-route.
	StrictSanity bool
}

// Kernel is the shared forwarding engine: the pure decision table plus a
// bounded FIFO cache of reconstructed conduit regions (keyed by message
// ID) and atomic per-reason counters. A Kernel is safe for concurrent use;
// one instance assumes one map view (message IDs are unique across
// traffic, so entries never collide across cities in practice).
type Kernel struct {
	cache  regionCache
	counts [numReasons]atomic.Uint64
	maxTTL int
	strict bool
}

// NewKernel returns a kernel with the given options.
func NewKernel(opts Options) *Kernel {
	k := &Kernel{maxTTL: int(opts.MaxTTL), strict: opts.StrictSanity}
	k.cache.init(opts.CacheCap)
	return k
}

// sanity runs the kernel's cheap adversarial rejections on a received
// header. ok is false on rejection, with the rejecting verdict (neither
// deliver nor rebroadcast). First-hop frames are exempt: the injecting AP
// vouches for its own submission, and the source header legitimately
// carries the full network TTL.
func (k *Kernel) sanity(view MapView, hdr *packet.Header, ttl int, firstHop bool) (Verdict, bool) {
	if firstHop {
		return Verdict{}, true
	}
	if k.maxTTL > 0 && ttl > k.maxTTL {
		return Verdict{Reason: ReasonTTLInflated}, false
	}
	if k.strict && view != nil {
		nb := uint32(view.NumBuildings())
		for _, w := range hdr.Waypoints {
			if w >= nb {
				return Verdict{Reason: ReasonBadConduit}, false
			}
		}
	}
	return Verdict{}, true
}

// Sanity is the exported form of the kernel's cheap rejection stack, for
// callers that want to refuse a frame before spending dedup-cache or
// delivery work on it (the live agent runs it pre-dedup so tampered frames
// never claim a dedup slot). A rejection is counted here; callers must not
// follow a failed Sanity with Decide for the same frame, which would
// double-count.
func (k *Kernel) Sanity(view MapView, hdr *packet.Header, firstHop bool) (Verdict, bool) {
	v, ok := k.sanity(view, hdr, int(hdr.TTL), firstHop)
	if !ok {
		k.counts[v.Reason].Add(1)
	}
	return v, ok
}

// Decide is the cached, counted form of the package-level Decide: same
// verdict, but conduit reconstruction is amortized across every AP that
// shares this kernel and the decision is tallied into Counts.
func (k *Kernel) Decide(view MapView, hdr *packet.Header, self Self, firstHop bool) Verdict {
	return k.DecideTTL(view, hdr, int(hdr.TTL), self, firstHop)
}

// DecideTTL is Decide with the as-received TTL supplied out of band, for
// callers whose header field does not carry it (the simulator tracks
// remaining TTL per AP instead of rewriting the shared packet).
func (k *Kernel) DecideTTL(view MapView, hdr *packet.Header, ttl int, self Self, firstHop bool) Verdict {
	if v, ok := k.sanity(view, hdr, ttl, firstHop); !ok {
		k.counts[v.Reason].Add(1)
		return v
	}
	v := verdict(view, hdr, ttl, self, firstHop, func() *conduit.Region {
		return k.cache.get(view, hdr)
	})
	k.counts[v.Reason].Add(1)
	return v
}

// Region returns the (cached) conduit region for hdr, or nil for an
// unresolvable route.
func (k *Kernel) Region(view MapView, hdr *packet.Header) *conduit.Region {
	return k.cache.get(view, hdr)
}

// Counts snapshots the per-reason decision totals since the kernel was
// created.
func (k *Kernel) Counts() Counts {
	return Counts{
		FirstHop:     k.counts[ReasonFirstHop].Load(),
		TTLExpired:   k.counts[ReasonTTLExpired].Load(),
		Geocast:      k.counts[ReasonGeocast].Load(),
		InConduit:    k.counts[ReasonInConduit].Load(),
		OutOfConduit: k.counts[ReasonOutOfConduit].Load(),
		BadRoute:     k.counts[ReasonBadRoute].Load(),
		TTLInflated:  k.counts[ReasonTTLInflated].Load(),
		BadConduit:   k.counts[ReasonBadConduit].Load(),
	}
}

// CacheLen returns the number of cached conduit regions (bounded by the
// configured capacity).
func (k *Kernel) CacheLen() int { return k.cache.len() }

// regionCache is a bounded FIFO map from message ID to prefiltered conduit
// region. Oldest entries are evicted first — a message's flood wave is
// short relative to cache capacity, so FIFO behaves like LRU here (the
// same reasoning as the agent's dedup cache) without per-hit bookkeeping.
// Unresolvable routes cache a nil region so a storm of bad-route frames
// costs one reconstruction attempt, not one per AP per frame.
type regionCache struct {
	mu       sync.Mutex
	cap      int
	disabled bool
	m        map[uint64]*conduit.Region
	ring     []uint64
	next     int
}

func (c *regionCache) init(capacity int) {
	if capacity < 0 {
		c.disabled = true
		return
	}
	if capacity == 0 {
		capacity = DefaultCacheCap
	}
	c.cap = capacity
	c.m = make(map[uint64]*conduit.Region, capacity)
}

func (c *regionCache) get(view MapView, hdr *packet.Header) *conduit.Region {
	if c.disabled {
		return BuildRegion(view, hdr)
	}
	c.mu.Lock()
	if r, ok := c.m[hdr.MsgID]; ok {
		c.mu.Unlock()
		return r
	}
	c.mu.Unlock()

	// Build outside the lock: reconstruction is the expensive part, and a
	// duplicate build on a race is deterministic and harmless.
	r := BuildRegion(view, hdr)

	c.mu.Lock()
	if prior, ok := c.m[hdr.MsgID]; ok {
		c.mu.Unlock()
		return prior
	}
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, hdr.MsgID)
	} else {
		delete(c.m, c.ring[c.next])
		c.ring[c.next] = hdr.MsgID
		c.next = (c.next + 1) % c.cap
	}
	c.m[hdr.MsgID] = r
	c.mu.Unlock()
	return r
}

func (c *regionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
