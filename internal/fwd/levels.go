package fwd

import "fmt"

// Hierarchy levels. The kernel's decision table is level-agnostic — it
// only sees a MapView, a header, and a position — which is what lets the
// federation layer reuse it unchanged one level up: level 0 decides
// building-route forwarding inside a region, level 1 decides region-route
// forwarding over the federation's summary graph, where each region
// collapses to one coarse "building" (its anchor position) and the
// waypoints are dense region indices. A level-1 conduit is therefore a
// conduit-of-conduits: each region segment it recruits expands, inside
// that region, into ordinary level-0 conduits.
const (
	// Level0Building is intra-region forwarding over the building map.
	Level0Building = 0
	// Level1Region is inter-region forwarding over the region summary map.
	Level1Region = 1

	// NumLevels is the hierarchy depth. Two levels carry a planetary
	// federation (the same argument as the paper's city→inter-network
	// split); deeper nesting would add constants here, not new code.
	NumLevels = 2
)

// LevelName names a hierarchy level for tables and logs.
func LevelName(level int) string {
	switch level {
	case Level0Building:
		return "L0/building"
	case Level1Region:
		return "L1/region"
	default:
		return fmt.Sprintf("L%d", level)
	}
}

// LevelKernel is a stack of independent Kernels, one per hierarchy level,
// with per-level reason counters. Decisions at different levels run
// against different map views (buildings vs region summaries) and must
// never share a conduit cache — a level-1 region conduit reconstructed
// against the building map would be garbage — so each level gets its own
// bounded cache and its own Counts.
type LevelKernel struct {
	kernels [NumLevels]*Kernel
}

// NewLevelKernel builds one kernel per level. opts[i] configures level i;
// missing entries use the zero Options (default cache, no sanity caps).
func NewLevelKernel(opts ...Options) *LevelKernel {
	lk := &LevelKernel{}
	for i := range lk.kernels {
		var o Options
		if i < len(opts) {
			o = opts[i]
		}
		lk.kernels[i] = NewKernel(o)
	}
	return lk
}

// Level returns the kernel for one hierarchy level. Levels outside
// [0, NumLevels) are a programming error and panic.
func (lk *LevelKernel) Level(level int) *Kernel {
	if level < 0 || level >= NumLevels {
		panic(fmt.Sprintf("fwd: hierarchy level %d out of range [0,%d)", level, NumLevels))
	}
	return lk.kernels[level]
}

// Counts snapshots one level's per-reason totals. Decisions are made via
// Level(level).Decide — each tallies into its own level only.
func (lk *LevelKernel) Counts(level int) Counts { return lk.Level(level).Counts() }

// AllCounts snapshots every level.
func (lk *LevelKernel) AllCounts() [NumLevels]Counts {
	var out [NumLevels]Counts
	for i, k := range lk.kernels {
		out[i] = k.Counts()
	}
	return out
}

// TotalCounts sums the per-level counters into one Counts — total
// decisions made across the hierarchy.
func (lk *LevelKernel) TotalCounts() Counts {
	var t Counts
	for _, k := range lk.kernels {
		c := k.Counts()
		t.FirstHop += c.FirstHop
		t.TTLExpired += c.TTLExpired
		t.Geocast += c.Geocast
		t.InConduit += c.InConduit
		t.OutOfConduit += c.OutOfConduit
		t.BadRoute += c.BadRoute
		t.TTLInflated += c.TTLInflated
		t.BadConduit += c.BadConduit
	}
	return t
}
