package fwd

import (
	"testing"

	"citymesh/internal/geo"
)

func TestSanityTTLInflationRejected(t *testing.T) {
	view := lineCity(3)
	k := NewKernel(Options{MaxTTL: 64})
	self := Self{Pos: geo.Pt(100, 0), Building: 1}

	// An in-conduit transit frame at a legal TTL passes untouched.
	v := k.DecideTTL(view, header(64, 0, 2), 64, self, false)
	if !v.Rebroadcast || v.Reason != ReasonInConduit {
		t.Fatalf("legal TTL: got %+v, want in-conduit rebroadcast", v)
	}

	// The same frame with TTL above the network maximum is rejected
	// outright: no rebroadcast AND no delivery, even at the destination.
	dst := Self{Pos: geo.Pt(200, 0), Building: 2}
	v = k.DecideTTL(view, header(200, 0, 2), 200, dst, false)
	if v.Rebroadcast || v.Deliver || v.Reason != ReasonTTLInflated {
		t.Fatalf("inflated TTL: got %+v, want outright rejection", v)
	}

	// First hop is exempt: the source header carries the full network TTL.
	v = k.DecideTTL(view, header(200, 1, 2), 200, self, true)
	if !v.Rebroadcast || v.Reason != ReasonFirstHop {
		t.Fatalf("first hop exempt from MaxTTL: got %+v", v)
	}

	c := k.Counts()
	if c.TTLInflated != 1 || c.Rejected() != 1 {
		t.Fatalf("counts = %+v, want exactly one ttl-inflated rejection", c)
	}
}

func TestSanityBadConduitRejected(t *testing.T) {
	view := lineCity(3)
	k := NewKernel(Options{StrictSanity: true})
	self := Self{Pos: geo.Pt(100, 0), Building: 1}

	// A waypoint index beyond the building count is unmappable by any
	// honest sender: strict sanity rejects instead of bad-route suppress.
	v := k.DecideTTL(view, header(8, 0, 99), 8, self, false)
	if v.Rebroadcast || v.Deliver || v.Reason != ReasonBadConduit {
		t.Fatalf("corrupt waypoints: got %+v, want bad-conduit rejection", v)
	}

	// Without strict sanity the same frame degrades to the legacy
	// bad-route suppression (delivery still possible).
	lax := NewKernel(Options{})
	v = lax.DecideTTL(view, header(8, 0, 99), 8, self, false)
	if v.Reason != ReasonBadRoute {
		t.Fatalf("lax kernel: got %+v, want bad-route", v)
	}

	if c := k.Counts(); c.BadConduit != 1 {
		t.Fatalf("counts = %+v, want one bad-conduit rejection", c)
	}
}

func TestSanityPreDedupEntryPoint(t *testing.T) {
	view := lineCity(3)
	k := NewKernel(Options{MaxTTL: 64, StrictSanity: true})

	if _, ok := k.Sanity(view, header(64, 0, 2), false); !ok {
		t.Fatalf("clean frame failed Sanity")
	}
	if v, ok := k.Sanity(view, header(255, 0, 2), false); ok || v.Reason != ReasonTTLInflated {
		t.Fatalf("inflated frame passed Sanity: %+v ok=%v", v, ok)
	}
	if v, ok := k.Sanity(view, header(8, 7, 2), false); ok || v.Reason != ReasonBadConduit {
		t.Fatalf("corrupt frame passed Sanity: %+v ok=%v", v, ok)
	}
	// First-hop submissions bypass sanity even with hot headers.
	if _, ok := k.Sanity(view, header(255, 0, 2), true); !ok {
		t.Fatalf("first hop must bypass Sanity")
	}
	c := k.Counts()
	if c.TTLInflated != 1 || c.BadConduit != 1 || c.Total() != 2 {
		t.Fatalf("counts = %+v, want the two rejections and nothing else", c)
	}
}
