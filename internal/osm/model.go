// Package osm implements the subset of the OpenStreetMap data model and XML
// format that CityMesh needs: nodes, ways, relations and tags, plus
// extraction of typed geographic features (buildings, water, parks,
// highways) into planar footprints.
//
// The paper compiles building footprint data from OSM (§4); this package is
// the real pipeline for that. Because this module is offline, the companion
// package citygen synthesizes OSM documents for the evaluation, and the
// parser/writer are validated by round-tripping them.
package osm

import (
	"sort"

	"citymesh/internal/geo"
)

// ID is an OSM element identifier.
type ID int64

// Tags is an element's key-value tag set.
type Tags map[string]string

// Get returns the value for key, or "" when absent.
func (t Tags) Get(key string) string { return t[key] }

// Has reports whether key is present with a non-empty value.
func (t Tags) Has(key string) bool { return t[key] != "" }

// Keys returns the tag keys in sorted order (for deterministic output).
func (t Tags) Keys() []string {
	ks := make([]string, 0, len(t))
	for k := range t {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Node is an OSM node: a tagged coordinate.
type Node struct {
	ID   ID
	Pos  geo.LatLon
	Tags Tags
}

// Way is an OSM way: an ordered list of node references. A way whose first
// and last refs coincide is closed and may describe an area.
type Way struct {
	ID   ID
	Refs []ID
	Tags Tags
}

// IsClosed reports whether the way forms a closed ring.
func (w *Way) IsClosed() bool {
	return len(w.Refs) >= 4 && w.Refs[0] == w.Refs[len(w.Refs)-1]
}

// Member is one member of a relation.
type Member struct {
	Type string // "node", "way" or "relation"
	Ref  ID
	Role string
}

// Relation is an OSM relation.
type Relation struct {
	ID      ID
	Members []Member
	Tags    Tags
}

// Document is a parsed OSM file.
type Document struct {
	Bounds    *geo.Rect // planar bounds after projection; nil until Project
	MinLat    float64
	MinLon    float64
	MaxLat    float64
	MaxLon    float64
	HasBounds bool

	Nodes     map[ID]*Node
	Ways      map[ID]*Way
	Relations map[ID]*Relation
}

// NewDocument returns an empty document.
func NewDocument() *Document {
	return &Document{
		Nodes:     make(map[ID]*Node),
		Ways:      make(map[ID]*Way),
		Relations: make(map[ID]*Relation),
	}
}

// AddNode inserts n, replacing any node with the same ID.
func (d *Document) AddNode(n *Node) { d.Nodes[n.ID] = n }

// AddWay inserts w, replacing any way with the same ID.
func (d *Document) AddWay(w *Way) { d.Ways[w.ID] = w }

// AddRelation inserts r, replacing any relation with the same ID.
func (d *Document) AddRelation(r *Relation) { d.Relations[r.ID] = r }

// Center returns the document's coordinate center: the declared bounds
// center when present, otherwise the mean of all node coordinates.
func (d *Document) Center() geo.LatLon {
	if d.HasBounds {
		return geo.LatLon{Lat: (d.MinLat + d.MaxLat) / 2, Lon: (d.MinLon + d.MaxLon) / 2}
	}
	var lat, lon float64
	n := 0
	for _, nd := range d.Nodes {
		lat += nd.Pos.Lat
		lon += nd.Pos.Lon
		n++
	}
	if n == 0 {
		return geo.LatLon{}
	}
	return geo.LatLon{Lat: lat / float64(n), Lon: lon / float64(n)}
}

// WayPolygon resolves a closed way into a planar polygon using proj,
// dropping the duplicated closing vertex. It returns nil if the way is not
// closed or references missing nodes.
func (d *Document) WayPolygon(w *Way, proj *geo.Projection) geo.Polygon {
	if !w.IsClosed() {
		return nil
	}
	pg := make(geo.Polygon, 0, len(w.Refs)-1)
	for _, ref := range w.Refs[:len(w.Refs)-1] {
		n, ok := d.Nodes[ref]
		if !ok {
			return nil
		}
		pg = append(pg, proj.ToPlane(n.Pos))
	}
	return pg
}

// WayLine resolves any way into a planar polyline. It returns nil if any
// referenced node is missing.
func (d *Document) WayLine(w *Way, proj *geo.Projection) []geo.Point {
	line := make([]geo.Point, 0, len(w.Refs))
	for _, ref := range w.Refs {
		n, ok := d.Nodes[ref]
		if !ok {
			return nil
		}
		line = append(line, proj.ToPlane(n.Pos))
	}
	return line
}

// SortedWayIDs returns way IDs in ascending order for deterministic
// iteration.
func (d *Document) SortedWayIDs() []ID {
	ids := make([]ID, 0, len(d.Ways))
	for id := range d.Ways {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
