package osm

import (
	"sort"

	"citymesh/internal/geo"
)

// FeatureKind classifies an extracted map feature by how CityMesh treats it.
type FeatureKind int

const (
	// KindBuilding is a building footprint: an AP host and a building-graph
	// vertex.
	KindBuilding FeatureKind = iota
	// KindWater is a river/lake polygon: a connectivity gap.
	KindWater
	// KindPark is a park/green polygon: typically AP-free.
	KindPark
	// KindHighway is a wide road corridor polygon: a potential gap.
	KindHighway
)

// String implements fmt.Stringer.
func (k FeatureKind) String() string {
	switch k {
	case KindBuilding:
		return "building"
	case KindWater:
		return "water"
	case KindPark:
		return "park"
	case KindHighway:
		return "highway"
	default:
		return "unknown"
	}
}

// Feature is a typed planar footprint extracted from an OSM document.
type Feature struct {
	ID        ID
	Kind      FeatureKind
	Footprint geo.Polygon
	Centroid  geo.Point
	Name      string
	Levels    int // building:levels when tagged, else 0
}

// City is the planar form of an OSM extract: everything CityMesh routing
// needs, with buildings indexed densely so building IDs can be encoded
// compactly in packet headers.
type City struct {
	Name       string
	Projection *geo.Projection
	Bounds     geo.Rect

	// Buildings is indexed by dense building index (0..len-1); a building's
	// index is its CityMesh building ID.
	Buildings []*Feature
	Water     []*Feature
	Parks     []*Feature
	Highways  []*Feature

	// byOSMID maps an OSM way ID back to a dense building index.
	byOSMID map[ID]int
}

// BuildingByOSMID returns the dense building index of the building extracted
// from the given OSM way, and whether it exists.
func (c *City) BuildingByOSMID(id ID) (int, bool) {
	i, ok := c.byOSMID[id]
	return i, ok
}

// NumBuildings returns the number of buildings in the city.
func (c *City) NumBuildings() int { return len(c.Buildings) }

// Centroid returns the centroid of the building with dense index b. With
// NumBuildings it makes *City satisfy the map-view contract the forwarding
// kernel (internal/fwd) and conduit reconstruction consume: an AP's
// rebroadcast decision needs nothing from the map beyond building count
// and centroids.
func (c *City) Centroid(b int) geo.Point { return c.Buildings[b].Centroid }

// classify returns the feature kind for a way's tag set, and whether the
// way describes a feature CityMesh cares about.
func classify(t Tags) (FeatureKind, bool) {
	switch {
	case t.Has("building"):
		return KindBuilding, true
	case t.Get("natural") == "water", t.Has("waterway"), t.Get("landuse") == "reservoir":
		return KindWater, true
	case t.Get("leisure") == "park", t.Get("leisure") == "garden",
		t.Get("landuse") == "grass", t.Get("landuse") == "recreation_ground":
		return KindPark, true
	case t.Get("highway") == "motorway", t.Get("highway") == "trunk",
		t.Get("area:highway") != "":
		return KindHighway, true
	default:
		return 0, false
	}
}

// ExtractCity projects doc into the plane and extracts all typed features.
// Buildings with degenerate footprints (area below minArea square meters)
// are dropped, matching the paper's use of footprints as AP containers: a
// footprint too small to hold an AP cannot route.
func ExtractCity(name string, doc *Document, minArea float64) *City {
	proj := geo.NewProjection(doc.Center())
	city := &City{
		Name:       name,
		Projection: proj,
		byOSMID:    make(map[ID]int),
	}

	first := true
	for _, id := range doc.SortedWayIDs() {
		w := doc.Ways[id]
		kind, ok := classify(w.Tags)
		if !ok {
			continue
		}
		pg := doc.WayPolygon(w, proj)
		if pg == nil {
			// Open ways can still matter for rivers drawn as waterway lines;
			// buffer them into thin polygons.
			if kind == KindWater || kind == KindHighway {
				line := doc.WayLine(w, proj)
				pg = bufferLine(line, corridorHalfWidth(kind, w.Tags))
			}
			if pg == nil {
				continue
			}
		}
		if kind == KindBuilding && pg.Area() < minArea {
			continue
		}
		f := &Feature{
			ID:        w.ID,
			Kind:      kind,
			Footprint: pg,
			Centroid:  pg.Centroid(),
			Name:      w.Tags.Get("name"),
			Levels:    atoiDefault(w.Tags.Get("building:levels"), 0),
		}
		switch kind {
		case KindBuilding:
			city.byOSMID[w.ID] = len(city.Buildings)
			city.Buildings = append(city.Buildings, f)
		case KindWater:
			city.Water = append(city.Water, f)
		case KindPark:
			city.Parks = append(city.Parks, f)
		case KindHighway:
			city.Highways = append(city.Highways, f)
		}
		b := pg.Bounds()
		if first {
			city.Bounds = b
			first = false
		} else {
			city.Bounds = city.Bounds.Union(b)
		}
	}
	return city
}

// corridorHalfWidth returns half the corridor width for a linear feature.
func corridorHalfWidth(kind FeatureKind, t Tags) float64 {
	if kind == KindHighway {
		return 15 // motorway corridor ~30 m
	}
	// waterway: rivers wider than streams
	if t.Get("waterway") == "river" {
		return 40
	}
	return 10
}

// bufferLine turns a polyline into a corridor polygon of the given
// half-width by offsetting each segment perpendicular on both sides. It is
// a simple miter-free buffer sufficient for gap modelling.
func bufferLine(line []geo.Point, halfWidth float64) geo.Polygon {
	if len(line) < 2 || halfWidth <= 0 {
		return nil
	}
	left := make([]geo.Point, 0, len(line))
	right := make([]geo.Point, 0, len(line))
	for i := 0; i < len(line); i++ {
		var dir geo.Point
		switch {
		case i == 0:
			dir = line[1].Sub(line[0]).Unit()
		case i == len(line)-1:
			dir = line[i].Sub(line[i-1]).Unit()
		default:
			dir = line[i+1].Sub(line[i-1]).Unit()
		}
		off := dir.Perp().Scale(halfWidth)
		left = append(left, line[i].Add(off))
		right = append(right, line[i].Sub(off))
	}
	pg := make(geo.Polygon, 0, 2*len(line))
	pg = append(pg, left...)
	for i := len(right) - 1; i >= 0; i-- {
		pg = append(pg, right[i])
	}
	return pg
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return def
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Gaps returns every feature that acts as a connectivity gap (water, parks,
// highways), sorted by descending area. Callers use it to explain failed
// routes (§4: "connectivity is occasionally interrupted by large features").
func (c *City) Gaps() []*Feature {
	out := make([]*Feature, 0, len(c.Water)+len(c.Parks)+len(c.Highways))
	out = append(out, c.Water...)
	out = append(out, c.Parks...)
	out = append(out, c.Highways...)
	sort.Slice(out, func(i, j int) bool {
		return out[i].Footprint.Area() > out[j].Footprint.Area()
	})
	return out
}
