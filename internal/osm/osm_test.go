package osm

import (
	"bytes"
	"strings"
	"testing"

	"citymesh/internal/geo"
)

const sampleXML = `<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="test">
  <bounds minlat="42.35" minlon="-71.11" maxlat="42.37" maxlon="-71.05"/>
  <node id="1" lat="42.360" lon="-71.090"/>
  <node id="2" lat="42.360" lon="-71.0895"/>
  <node id="3" lat="42.3605" lon="-71.0895"/>
  <node id="4" lat="42.3605" lon="-71.090"/>
  <node id="5" lat="42.361" lon="-71.091">
    <tag k="amenity" v="cafe"/>
    <tag k="name" v="A &amp; B &lt;Cafe&gt;"/>
  </node>
  <way id="100">
    <nd ref="1"/>
    <nd ref="2"/>
    <nd ref="3"/>
    <nd ref="4"/>
    <nd ref="1"/>
    <tag k="building" v="yes"/>
    <tag k="building:levels" v="12"/>
    <tag k="name" v="Tower"/>
  </way>
  <way id="101">
    <nd ref="1"/>
    <nd ref="3"/>
    <tag k="highway" v="residential"/>
  </way>
  <relation id="200">
    <member type="way" ref="100" role="outer"/>
    <tag k="type" v="multipolygon"/>
  </relation>
</osm>
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if !doc.HasBounds || doc.MinLat != 42.35 || doc.MaxLon != -71.05 {
		t.Errorf("bounds = %+v", doc)
	}
	if len(doc.Nodes) != 5 || len(doc.Ways) != 2 || len(doc.Relations) != 1 {
		t.Fatalf("counts = %d nodes, %d ways, %d relations",
			len(doc.Nodes), len(doc.Ways), len(doc.Relations))
	}
	n5 := doc.Nodes[5]
	if n5.Tags.Get("amenity") != "cafe" {
		t.Errorf("node 5 tags = %v", n5.Tags)
	}
	if got := n5.Tags.Get("name"); got != "A & B <Cafe>" {
		t.Errorf("escaped tag = %q", got)
	}
	w := doc.Ways[100]
	if !w.IsClosed() {
		t.Error("way 100 should be closed")
	}
	if len(w.Refs) != 5 || w.Refs[0] != 1 || w.Refs[4] != 1 {
		t.Errorf("way refs = %v", w.Refs)
	}
	if doc.Ways[101].IsClosed() {
		t.Error("way 101 should be open")
	}
	rel := doc.Relations[200]
	if len(rel.Members) != 1 || rel.Members[0].Ref != 100 || rel.Members[0].Role != "outer" {
		t.Errorf("relation members = %+v", rel.Members)
	}
}

func TestParseBadXML(t *testing.T) {
	if _, err := Parse(strings.NewReader("<osm><node id=\"x\"")); err == nil {
		t.Error("truncated XML should error")
	}
	if _, err := Parse(strings.NewReader(`<osm><bounds minlat="abc"/></osm>`)); err == nil {
		t.Error("bad bounds should error")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\noutput:\n%s", err, buf.String())
	}
	if len(doc2.Nodes) != len(doc.Nodes) || len(doc2.Ways) != len(doc.Ways) ||
		len(doc2.Relations) != len(doc.Relations) {
		t.Fatal("element counts changed across round trip")
	}
	if got := doc2.Nodes[5].Tags.Get("name"); got != "A & B <Cafe>" {
		t.Errorf("escaped tag after round trip = %q", got)
	}
	for id, w := range doc.Ways {
		w2 := doc2.Ways[id]
		if w2 == nil || len(w2.Refs) != len(w.Refs) {
			t.Fatalf("way %d refs changed", id)
		}
	}
	if !doc2.HasBounds || doc2.MinLat != doc.MinLat {
		t.Error("bounds lost in round trip")
	}
}

func TestWriteDeterministic(t *testing.T) {
	doc, _ := Parse(strings.NewReader(sampleXML))
	var a, b bytes.Buffer
	if err := Write(&a, doc); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, doc); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Write output not deterministic")
	}
}

func TestCenter(t *testing.T) {
	doc, _ := Parse(strings.NewReader(sampleXML))
	c := doc.Center()
	if c.Lat != 42.36 || c.Lon != -71.08 {
		t.Errorf("bounds center = %+v", c)
	}
	// Without bounds, falls back to node mean.
	doc.HasBounds = false
	c = doc.Center()
	if c.Lat < 42.35 || c.Lat > 42.37 {
		t.Errorf("node-mean center = %+v", c)
	}
	if got := NewDocument().Center(); got != (geo.LatLon{}) {
		t.Errorf("empty center = %+v", got)
	}
}

func TestWayPolygon(t *testing.T) {
	doc, _ := Parse(strings.NewReader(sampleXML))
	proj := geo.NewProjection(doc.Center())
	pg := doc.WayPolygon(doc.Ways[100], proj)
	if len(pg) != 4 {
		t.Fatalf("polygon has %d vertices, want 4", len(pg))
	}
	// ~41m x ~55m building; area should be in a plausible range.
	if a := pg.Area(); a < 1000 || a > 4000 {
		t.Errorf("area = %v", a)
	}
	if got := doc.WayPolygon(doc.Ways[101], proj); got != nil {
		t.Error("open way should give nil polygon")
	}
	// Missing node reference.
	doc.Ways[100].Refs[1] = 9999
	if got := doc.WayPolygon(doc.Ways[100], proj); got != nil {
		t.Error("way with missing node should give nil polygon")
	}
}

func TestExtractCity(t *testing.T) {
	doc, _ := Parse(strings.NewReader(sampleXML))
	city := ExtractCity("test", doc, 10)
	if city.NumBuildings() != 1 {
		t.Fatalf("buildings = %d, want 1", city.NumBuildings())
	}
	b := city.Buildings[0]
	if b.Kind != KindBuilding || b.Name != "Tower" || b.Levels != 12 {
		t.Errorf("building = %+v", b)
	}
	if idx, ok := city.BuildingByOSMID(100); !ok || idx != 0 {
		t.Errorf("BuildingByOSMID = %d, %v", idx, ok)
	}
	if _, ok := city.BuildingByOSMID(999); ok {
		t.Error("missing OSM ID should not resolve")
	}
	if !b.Footprint.Contains(b.Centroid) {
		t.Error("centroid should be inside a convex building footprint")
	}
}

func TestExtractCityMinArea(t *testing.T) {
	doc, _ := Parse(strings.NewReader(sampleXML))
	city := ExtractCity("test", doc, 1e9)
	if city.NumBuildings() != 0 {
		t.Error("minArea filter should drop small buildings")
	}
}

func TestExtractWaterLineBuffered(t *testing.T) {
	xml := `<osm>
  <node id="1" lat="42.0" lon="-71.0"/>
  <node id="2" lat="42.0" lon="-70.99"/>
  <node id="3" lat="42.001" lon="-70.98"/>
  <way id="50">
    <nd ref="1"/><nd ref="2"/><nd ref="3"/>
    <tag k="waterway" v="river"/>
  </way>
</osm>`
	doc, err := Parse(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	city := ExtractCity("river", doc, 10)
	if len(city.Water) != 1 {
		t.Fatalf("water features = %d, want 1", len(city.Water))
	}
	pg := city.Water[0].Footprint
	if pg.Area() <= 0 {
		t.Error("buffered river should have positive area")
	}
	// ~1.6 km long, 80 m wide river: area should exceed 80,000 m².
	if pg.Area() < 50000 {
		t.Errorf("river area = %v, looks too thin", pg.Area())
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		tags Tags
		kind FeatureKind
		ok   bool
	}{
		{Tags{"building": "yes"}, KindBuilding, true},
		{Tags{"building": "apartments"}, KindBuilding, true},
		{Tags{"natural": "water"}, KindWater, true},
		{Tags{"leisure": "park"}, KindPark, true},
		{Tags{"landuse": "grass"}, KindPark, true},
		{Tags{"highway": "motorway"}, KindHighway, true},
		{Tags{"highway": "residential"}, 0, false},
		{Tags{"amenity": "cafe"}, 0, false},
		{nil, 0, false},
	}
	for i, c := range cases {
		kind, ok := classify(c.tags)
		if ok != c.ok || (ok && kind != c.kind) {
			t.Errorf("case %d: classify(%v) = %v, %v", i, c.tags, kind, ok)
		}
	}
}

func TestGapsSorted(t *testing.T) {
	city := &City{
		Water: []*Feature{{Footprint: geo.RectPolygon(geo.Rect{Max: geo.Pt(10, 10)})}},
		Parks: []*Feature{{Footprint: geo.RectPolygon(geo.Rect{Max: geo.Pt(100, 100)})}},
	}
	gaps := city.Gaps()
	if len(gaps) != 2 {
		t.Fatalf("gaps = %d", len(gaps))
	}
	if gaps[0].Footprint.Area() < gaps[1].Footprint.Area() {
		t.Error("gaps should be sorted by descending area")
	}
}

func TestXMLEscape(t *testing.T) {
	cases := map[string]string{
		"plain":  "plain",
		"a&b":    "a&amp;b",
		`<tag">`: "&lt;tag&quot;&gt;",
		"":       "",
	}
	for in, want := range cases {
		if got := xmlEscape(in); got != want {
			t.Errorf("xmlEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAtoiDefault(t *testing.T) {
	if atoiDefault("12", 0) != 12 || atoiDefault("", 7) != 7 || atoiDefault("x2", 7) != 7 {
		t.Error("atoiDefault misbehaves")
	}
}

func TestFeatureKindString(t *testing.T) {
	for k, want := range map[FeatureKind]string{
		KindBuilding: "building", KindWater: "water", KindPark: "park",
		KindHighway: "highway", FeatureKind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q", k, k.String())
		}
	}
}
