package osm

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"

	"citymesh/internal/geo"
)

// xmlTag mirrors <tag k="..." v="..."/>.
type xmlTag struct {
	K string `xml:"k,attr"`
	V string `xml:"v,attr"`
}

// xmlNode mirrors <node id lat lon>...</node>.
type xmlNode struct {
	ID   int64    `xml:"id,attr"`
	Lat  float64  `xml:"lat,attr"`
	Lon  float64  `xml:"lon,attr"`
	Tags []xmlTag `xml:"tag"`
}

// xmlNd mirrors <nd ref="..."/>.
type xmlNd struct {
	Ref int64 `xml:"ref,attr"`
}

// xmlWay mirrors <way id>...</way>.
type xmlWay struct {
	ID   int64    `xml:"id,attr"`
	Nds  []xmlNd  `xml:"nd"`
	Tags []xmlTag `xml:"tag"`
}

// xmlMember mirrors <member type ref role/>.
type xmlMember struct {
	Type string `xml:"type,attr"`
	Ref  int64  `xml:"ref,attr"`
	Role string `xml:"role,attr"`
}

// xmlRelation mirrors <relation id>...</relation>.
type xmlRelation struct {
	ID      int64       `xml:"id,attr"`
	Members []xmlMember `xml:"member"`
	Tags    []xmlTag    `xml:"tag"`
}

func tagsFromXML(xs []xmlTag) Tags {
	if len(xs) == 0 {
		return nil
	}
	t := make(Tags, len(xs))
	for _, x := range xs {
		t[x.K] = x.V
	}
	return t
}

func tagsToXML(t Tags) []xmlTag {
	out := make([]xmlTag, 0, len(t))
	for _, k := range t.Keys() {
		out = append(out, xmlTag{K: k, V: t[k]})
	}
	return out
}

// Parse reads an OSM XML document from r. It streams element-by-element so
// city-scale files do not require the whole DOM in memory at once.
func Parse(r io.Reader) (*Document, error) {
	doc := NewDocument()
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("osm: parse: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch start.Name.Local {
		case "bounds":
			for _, a := range start.Attr {
				v, err := strconv.ParseFloat(a.Value, 64)
				if err != nil {
					return nil, fmt.Errorf("osm: bounds attr %s: %w", a.Name.Local, err)
				}
				switch a.Name.Local {
				case "minlat":
					doc.MinLat = v
				case "minlon":
					doc.MinLon = v
				case "maxlat":
					doc.MaxLat = v
				case "maxlon":
					doc.MaxLon = v
				}
			}
			doc.HasBounds = true
			if err := dec.Skip(); err != nil {
				return nil, err
			}
		case "node":
			var xn xmlNode
			if err := dec.DecodeElement(&xn, &start); err != nil {
				return nil, fmt.Errorf("osm: node: %w", err)
			}
			doc.AddNode(&Node{
				ID:   ID(xn.ID),
				Pos:  geo.LatLon{Lat: xn.Lat, Lon: xn.Lon},
				Tags: tagsFromXML(xn.Tags),
			})
		case "way":
			var xw xmlWay
			if err := dec.DecodeElement(&xw, &start); err != nil {
				return nil, fmt.Errorf("osm: way: %w", err)
			}
			w := &Way{ID: ID(xw.ID), Tags: tagsFromXML(xw.Tags)}
			w.Refs = make([]ID, len(xw.Nds))
			for i, nd := range xw.Nds {
				w.Refs[i] = ID(nd.Ref)
			}
			doc.AddWay(w)
		case "relation":
			var xr xmlRelation
			if err := dec.DecodeElement(&xr, &start); err != nil {
				return nil, fmt.Errorf("osm: relation: %w", err)
			}
			rel := &Relation{ID: ID(xr.ID), Tags: tagsFromXML(xr.Tags)}
			rel.Members = make([]Member, len(xr.Members))
			for i, m := range xr.Members {
				rel.Members[i] = Member{Type: m.Type, Ref: ID(m.Ref), Role: m.Role}
			}
			doc.AddRelation(rel)
		}
	}
	return doc, nil
}

// Write emits doc as OSM XML. Elements are written in ascending ID order so
// output is deterministic.
func Write(w io.Writer, doc *Document) error {
	bw := &errWriter{w: w}
	bw.printf("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")
	bw.printf("<osm version=\"0.6\" generator=\"citymesh\">\n")
	if doc.HasBounds {
		bw.printf("  <bounds minlat=\"%.7f\" minlon=\"%.7f\" maxlat=\"%.7f\" maxlon=\"%.7f\"/>\n",
			doc.MinLat, doc.MinLon, doc.MaxLat, doc.MaxLon)
	}

	nodeIDs := make([]ID, 0, len(doc.Nodes))
	for id := range doc.Nodes {
		nodeIDs = append(nodeIDs, id)
	}
	sortIDs(nodeIDs)
	for _, id := range nodeIDs {
		n := doc.Nodes[id]
		if len(n.Tags) == 0 {
			bw.printf("  <node id=\"%d\" lat=\"%.7f\" lon=\"%.7f\"/>\n", n.ID, n.Pos.Lat, n.Pos.Lon)
			continue
		}
		bw.printf("  <node id=\"%d\" lat=\"%.7f\" lon=\"%.7f\">\n", n.ID, n.Pos.Lat, n.Pos.Lon)
		writeTags(bw, n.Tags)
		bw.printf("  </node>\n")
	}

	for _, id := range doc.SortedWayIDs() {
		way := doc.Ways[id]
		bw.printf("  <way id=\"%d\">\n", way.ID)
		for _, ref := range way.Refs {
			bw.printf("    <nd ref=\"%d\"/>\n", ref)
		}
		writeTags(bw, way.Tags)
		bw.printf("  </way>\n")
	}

	relIDs := make([]ID, 0, len(doc.Relations))
	for id := range doc.Relations {
		relIDs = append(relIDs, id)
	}
	sortIDs(relIDs)
	for _, id := range relIDs {
		rel := doc.Relations[id]
		bw.printf("  <relation id=\"%d\">\n", rel.ID)
		for _, m := range rel.Members {
			bw.printf("    <member type=\"%s\" ref=\"%d\" role=\"%s\"/>\n",
				xmlEscape(m.Type), m.Ref, xmlEscape(m.Role))
		}
		writeTags(bw, rel.Tags)
		bw.printf("  </relation>\n")
	}

	bw.printf("</osm>\n")
	return bw.err
}

func writeTags(bw *errWriter, t Tags) {
	for _, k := range t.Keys() {
		bw.printf("    <tag k=\"%s\" v=\"%s\"/>\n", xmlEscape(k), xmlEscape(t[k]))
	}
}

func xmlEscape(s string) string {
	var buf []byte
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			buf = appendStart(buf, s, i)
			buf = append(buf, "&amp;"...)
		case '<':
			buf = appendStart(buf, s, i)
			buf = append(buf, "&lt;"...)
		case '>':
			buf = appendStart(buf, s, i)
			buf = append(buf, "&gt;"...)
		case '"':
			buf = appendStart(buf, s, i)
			buf = append(buf, "&quot;"...)
		default:
			if buf != nil {
				buf = append(buf, s[i])
			}
		}
	}
	if buf == nil {
		return s
	}
	return string(buf)
}

// appendStart lazily copies the unescaped prefix of s on first escape.
func appendStart(buf []byte, s string, i int) []byte {
	if buf == nil {
		buf = make([]byte, 0, len(s)+8)
		buf = append(buf, s[:i]...)
	}
	return buf
}

func sortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// errWriter folds error handling out of the write path.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
