// Package packet defines the CityMesh wire format.
//
// A CityMesh packet carries everything an AP needs for its stateless
// rebroadcast decision: the compressed building route (waypoint building
// IDs), the conduit width, a TTL and a duplicate-suppression message ID —
// plus an optional postbox address and the payload. The header is designed
// for compactness because every bit is rebroadcast many times; the paper
// reports a median compressed header of 175 bits (§4). Waypoint IDs are
// delta-encoded with zigzag varints, exploiting the spatial locality of
// dense building indices.
package packet

import (
	"errors"
	"math/bits"
)

// ErrVarintOverflow is returned when a varint does not terminate within the
// 64-bit range.
var ErrVarintOverflow = errors.New("packet: varint overflows 64 bits")

// ErrShortBuffer is returned when a decode runs out of bytes.
var ErrShortBuffer = errors.New("packet: short buffer")

// AppendUvarint appends the LEB128 encoding of v to dst.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uvarint decodes a LEB128 value from b, returning the value and the number
// of bytes consumed.
func Uvarint(b []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if shift >= 64 || (shift == 63 && c > 1) {
			return 0, 0, ErrVarintOverflow
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrShortBuffer
}

// ZigZag maps a signed value to an unsigned one with small magnitudes near
// zero: 0,-1,1,-2,2 → 0,1,2,3,4.
func ZigZag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// UnZigZag is the inverse of ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// UvarintLen returns the encoded size of v in bytes.
func UvarintLen(v uint64) int {
	if v == 0 {
		return 1
	}
	return (bits.Len64(v) + 6) / 7
}
