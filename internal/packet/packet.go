package packet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Magic identifies a CityMesh frame.
const Magic = 0xC9

// Version is the current wire format version.
const Version = 1

// Flag bits in the header flags nibble.
const (
	// FlagPostbox indicates an 8-byte postbox address follows the route.
	FlagPostbox = 1 << 0
	// FlagEncrypted indicates the payload is a sealed postbox message.
	FlagEncrypted = 1 << 1
	// FlagUrgent requests push delivery at the destination postbox.
	FlagUrgent = 1 << 2
	// FlagGeocast marks a geospatial message (§1): the header carries a
	// target disc after the route, and APs inside the disc rebroadcast
	// and deliver regardless of destination building.
	FlagGeocast = 1 << 3
)

// DefaultTTL bounds rebroadcast depth. A city-scale route is tens of
// building hops with several AP hops each, so the default is generous.
const DefaultTTL = 255

// PostboxAddrLen is the truncated self-certifying postbox address length.
const PostboxAddrLen = 8

// MaxWaypoints bounds the route length a header may carry.
const MaxWaypoints = 255

// Header is the routing header of a CityMesh packet.
type Header struct {
	Flags uint8
	TTL   uint8
	MsgID uint64 // random duplicate-suppression ID
	Width uint8  // conduit width in meters; 0 means the default (50 m)
	// Waypoints is the compressed building route: dense building indices,
	// source first, destination last.
	Waypoints []uint32
	// Postbox is the destination postbox address; meaningful only when
	// FlagPostbox is set.
	Postbox [PostboxAddrLen]byte
	// Target is the geocast area; meaningful only when FlagGeocast is set.
	Target GeocastArea
}

// GeocastArea is a disc in city coordinates (meters). Coordinates are
// encoded as zigzag varints at 1 m resolution; the radius as a varint.
type GeocastArea struct {
	CenterX, CenterY int32
	Radius           uint32
}

// Packet is a full CityMesh frame: header plus payload.
type Packet struct {
	Header  Header
	Payload []byte
}

// routeBytes returns the encoded size in bytes of just the compressed
// route (count + delta-encoded waypoints). This is the quantity the paper's
// "compressed source route" header-size result measures.
func (h *Header) routeBytes() int {
	n := UvarintLen(uint64(len(h.Waypoints)))
	prev := int64(0)
	for i, w := range h.Waypoints {
		if i == 0 {
			n += UvarintLen(uint64(w))
		} else {
			n += UvarintLen(ZigZag(int64(w) - prev))
		}
		prev = int64(w)
	}
	return n
}

// RouteBits returns the size in bits of the encoded compressed route,
// comparable to the paper's 175-bit median / 225-bit 90th percentile.
func (h *Header) RouteBits() int { return 8 * h.routeBytes() }

// EncodedLen returns the full encoded header length in bytes.
func (h *Header) EncodedLen() int {
	n := 1 + 1 + 1 + 8 + 1 // magic/version, flags, ttl, msgid, width
	n += h.routeBytes()
	if h.Flags&FlagPostbox != 0 {
		n += PostboxAddrLen
	}
	if h.Flags&FlagGeocast != 0 {
		n += UvarintLen(ZigZag(int64(h.Target.CenterX)))
		n += UvarintLen(ZigZag(int64(h.Target.CenterY)))
		n += UvarintLen(uint64(h.Target.Radius))
	}
	return n
}

// HeaderBits returns the full header size in bits.
func (h *Header) HeaderBits() int { return 8 * h.EncodedLen() }

// Encode appends the wire encoding of the packet (header, payload and
// trailing CRC-32) to dst and returns the extended slice.
func (p *Packet) Encode(dst []byte) ([]byte, error) {
	h := &p.Header
	if len(h.Waypoints) == 0 {
		return nil, fmt.Errorf("packet: no waypoints: %w", ErrWaypointCount)
	}
	if len(h.Waypoints) > MaxWaypoints {
		return nil, fmt.Errorf("packet: %d waypoints exceeds max %d: %w",
			len(h.Waypoints), MaxWaypoints, ErrWaypointCount)
	}
	if h.Width > MaxWidthMeters {
		return nil, fmt.Errorf("packet: width %d m: %w", h.Width, ErrWidthRange)
	}
	if rb := h.routeBytes(); rb > MaxRouteBytes {
		return nil, fmt.Errorf("packet: route encodes to %d bytes: %w", rb, ErrRouteTooLong)
	}
	if len(p.Payload) > MaxPayloadLen {
		return nil, fmt.Errorf("packet: payload %d bytes: %w", len(p.Payload), ErrPayloadTooLarge)
	}
	if h.Flags&FlagGeocast != 0 && h.Target.Radius > MaxGeocastRadius {
		return nil, fmt.Errorf("packet: geocast radius %d: %w", h.Target.Radius, ErrGeocastRadius)
	}
	start := len(dst)
	dst = append(dst, Magic, (Version<<4)|(h.Flags&0x0f), h.TTL)
	dst = binary.BigEndian.AppendUint64(dst, h.MsgID)
	dst = append(dst, h.Width)
	dst = AppendUvarint(dst, uint64(len(h.Waypoints)))
	prev := int64(0)
	for i, w := range h.Waypoints {
		if i == 0 {
			dst = AppendUvarint(dst, uint64(w))
		} else {
			dst = AppendUvarint(dst, ZigZag(int64(w)-prev))
		}
		prev = int64(w)
	}
	if h.Flags&FlagPostbox != 0 {
		dst = append(dst, h.Postbox[:]...)
	}
	if h.Flags&FlagGeocast != 0 {
		dst = AppendUvarint(dst, ZigZag(int64(h.Target.CenterX)))
		dst = AppendUvarint(dst, ZigZag(int64(h.Target.CenterY)))
		dst = AppendUvarint(dst, uint64(h.Target.Radius))
	}
	dst = append(dst, p.Payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	dst = binary.BigEndian.AppendUint32(dst, crc)
	return dst, nil
}

// Decode parses a CityMesh frame. The returned packet's Payload aliases b;
// callers that retain the packet beyond the buffer's lifetime must copy.
func Decode(b []byte) (*Packet, error) {
	if len(b) > MaxFrameLen {
		return nil, fmt.Errorf("packet: %d-byte frame: %w", len(b), ErrFrameTooLarge)
	}
	if len(b) < 4 {
		return nil, ErrShortBuffer
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return nil, ErrBadCRC
	}
	if len(body) < 14 {
		return nil, ErrShortBuffer
	}
	if body[0] != Magic {
		return nil, fmt.Errorf("packet: magic 0x%02x: %w", body[0], ErrBadMagic)
	}
	if v := body[1] >> 4; v != Version {
		return nil, fmt.Errorf("packet: version %d: %w", v, ErrBadVersion)
	}
	p := &Packet{}
	h := &p.Header
	h.Flags = body[1] & 0x0f
	h.TTL = body[2]
	h.MsgID = binary.BigEndian.Uint64(body[3:11])
	h.Width = body[11]
	if h.Width > MaxWidthMeters {
		return nil, fmt.Errorf("packet: width %d m: %w", h.Width, ErrWidthRange)
	}
	off := 12

	count, n, err := Uvarint(body[off:])
	if err != nil {
		return nil, err
	}
	off += n
	if count == 0 || count > MaxWaypoints {
		return nil, fmt.Errorf("packet: waypoint count %d: %w", count, ErrWaypointCount)
	}
	routeStart := off - n
	h.Waypoints = make([]uint32, count)
	prev := int64(0)
	for i := range h.Waypoints {
		u, n, err := Uvarint(body[off:])
		if err != nil {
			return nil, err
		}
		off += n
		var v int64
		if i == 0 {
			v = int64(u)
		} else {
			v = prev + UnZigZag(u)
		}
		if v < 0 || v > 1<<31 {
			return nil, fmt.Errorf("packet: waypoint %d: %w", v, ErrWaypointRange)
		}
		h.Waypoints[i] = uint32(v)
		prev = v
	}
	if off-routeStart > MaxRouteBytes {
		return nil, fmt.Errorf("packet: route is %d bytes: %w", off-routeStart, ErrRouteTooLong)
	}
	if h.Flags&FlagPostbox != 0 {
		if len(body) < off+PostboxAddrLen {
			return nil, ErrShortBuffer
		}
		copy(h.Postbox[:], body[off:off+PostboxAddrLen])
		off += PostboxAddrLen
	}
	if h.Flags&FlagGeocast != 0 {
		cx, n, err := Uvarint(body[off:])
		if err != nil {
			return nil, err
		}
		off += n
		cy, n, err := Uvarint(body[off:])
		if err != nil {
			return nil, err
		}
		off += n
		rad, n, err := Uvarint(body[off:])
		if err != nil {
			return nil, err
		}
		off += n
		if rad > MaxGeocastRadius {
			return nil, fmt.Errorf("packet: geocast radius %d: %w", rad, ErrGeocastRadius)
		}
		cxv, cyv := UnZigZag(cx), UnZigZag(cy)
		if cxv < -1<<31 || cxv > 1<<31-1 || cyv < -1<<31 || cyv > 1<<31-1 {
			return nil, fmt.Errorf("packet: geocast center (%d,%d): %w", cxv, cyv, ErrGeocastRadius)
		}
		h.Target = GeocastArea{
			CenterX: int32(cxv),
			CenterY: int32(cyv),
			Radius:  uint32(rad),
		}
	}
	if len(body)-off > MaxPayloadLen {
		return nil, fmt.Errorf("packet: payload %d bytes: %w", len(body)-off, ErrPayloadTooLarge)
	}
	p.Payload = body[off:]
	return p, nil
}

// Src returns the source building index.
func (h *Header) Src() int { return int(h.Waypoints[0]) }

// Dst returns the destination building index.
func (h *Header) Dst() int { return int(h.Waypoints[len(h.Waypoints)-1]) }

// WidthMeters returns the conduit width in meters, resolving the default.
func (h *Header) WidthMeters() float64 {
	if h.Width == 0 {
		return 50
	}
	return float64(h.Width)
}

// Clone returns a deep copy of the packet (for rebroadcast with a decremented
// TTL without aliasing the original buffers).
func (p *Packet) Clone() *Packet {
	q := &Packet{Header: p.Header}
	q.Header.Waypoints = append([]uint32(nil), p.Header.Waypoints...)
	q.Payload = append([]byte(nil), p.Payload...)
	return q
}

// String implements fmt.Stringer with a compact routing summary.
func (p *Packet) String() string {
	h := &p.Header
	return fmt.Sprintf("citymesh[msg=%016x ttl=%d wps=%d src=%d dst=%d payload=%dB]",
		h.MsgID, h.TTL, len(h.Waypoints), h.Src(), h.Dst(), len(p.Payload))
}
