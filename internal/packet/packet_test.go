package packet

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 300, 1 << 14, 1<<14 - 1, 1 << 21, 1<<63 - 1, 1<<64 - 1}
	for _, v := range vals {
		b := AppendUvarint(nil, v)
		got, n, err := Uvarint(b)
		if err != nil || got != v || n != len(b) {
			t.Errorf("round trip %d: got %d, n=%d, err=%v", v, got, n, err)
		}
		if len(b) != UvarintLen(v) {
			t.Errorf("UvarintLen(%d) = %d, encoded %d", v, UvarintLen(v), len(b))
		}
	}
}

func TestVarintErrors(t *testing.T) {
	if _, _, err := Uvarint(nil); err != ErrShortBuffer {
		t.Errorf("empty = %v", err)
	}
	if _, _, err := Uvarint([]byte{0x80, 0x80}); err != ErrShortBuffer {
		t.Errorf("truncated = %v", err)
	}
	// 11 continuation bytes overflow 64 bits.
	over := bytes.Repeat([]byte{0xff}, 10)
	over = append(over, 0x01)
	if _, _, err := Uvarint(over); err != ErrVarintOverflow {
		t.Errorf("overflow = %v", err)
	}
}

func TestZigZag(t *testing.T) {
	cases := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, 63: 126, -64: 127}
	for v, want := range cases {
		if got := ZigZag(v); got != want {
			t.Errorf("ZigZag(%d) = %d, want %d", v, got, want)
		}
		if back := UnZigZag(want); back != v {
			t.Errorf("UnZigZag(%d) = %d, want %d", want, back, v)
		}
	}
}

func TestQuickZigZagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickVarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := AppendUvarint(nil, v)
		got, n, err := Uvarint(b)
		return err == nil && got == v && n == len(b) && n == UvarintLen(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func samplePacket() *Packet {
	return &Packet{
		Header: Header{
			Flags:     FlagPostbox | FlagEncrypted,
			TTL:       64,
			MsgID:     0xdeadbeefcafef00d,
			Width:     50,
			Waypoints: []uint32{1042, 1107, 980, 2044, 2050},
			Postbox:   [8]byte{1, 2, 3, 4, 5, 6, 7, 8},
		},
		Payload: []byte("hello bob, are you safe?"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	wire, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if q.Header.Flags != p.Header.Flags || q.Header.TTL != p.Header.TTL ||
		q.Header.MsgID != p.Header.MsgID || q.Header.Width != p.Header.Width {
		t.Errorf("header mismatch: %+v vs %+v", q.Header, p.Header)
	}
	if len(q.Header.Waypoints) != len(p.Header.Waypoints) {
		t.Fatalf("waypoints = %v", q.Header.Waypoints)
	}
	for i := range p.Header.Waypoints {
		if q.Header.Waypoints[i] != p.Header.Waypoints[i] {
			t.Fatalf("waypoint %d: %d != %d", i, q.Header.Waypoints[i], p.Header.Waypoints[i])
		}
	}
	if q.Header.Postbox != p.Header.Postbox {
		t.Error("postbox mismatch")
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Errorf("payload = %q", q.Payload)
	}
}

func TestEncodeNoPostbox(t *testing.T) {
	p := samplePacket()
	p.Header.Flags = 0
	wire, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if q.Header.Postbox != [8]byte{} {
		t.Error("postbox should be zero without FlagPostbox")
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Error("payload mismatch")
	}
	// The postbox-free header is 8 bytes shorter.
	withPB := samplePacket()
	if withPB.Header.EncodedLen()-p.Header.EncodedLen() != PostboxAddrLen {
		t.Error("EncodedLen does not account for postbox flag")
	}
}

func TestEncodedLenMatchesWire(t *testing.T) {
	p := samplePacket()
	wire, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Header.EncodedLen() + len(p.Payload) + 4 // + CRC
	if len(wire) != want {
		t.Errorf("wire = %d bytes, EncodedLen predicts %d", len(wire), want)
	}
	if p.Header.HeaderBits() != 8*p.Header.EncodedLen() {
		t.Error("HeaderBits inconsistent")
	}
	if p.Header.RouteBits() >= p.Header.HeaderBits() {
		t.Error("route must be a strict subset of the header")
	}
}

func TestDecodeErrors(t *testing.T) {
	p := samplePacket()
	wire, _ := p.Encode(nil)

	if _, err := Decode(nil); err == nil {
		t.Error("nil buffer should error")
	}
	if _, err := Decode(wire[:3]); err == nil {
		t.Error("tiny buffer should error")
	}
	// Flip a bit: CRC must catch it.
	bad := append([]byte(nil), wire...)
	bad[5] ^= 0x40
	if _, err := Decode(bad); err == nil {
		t.Error("corrupted frame should fail CRC")
	}
	// Bad magic with recomputed CRC.
	bad2 := append([]byte(nil), wire...)
	bad2[0] = 0x00
	bad2 = recrc(bad2)
	if _, err := Decode(bad2); err == nil {
		t.Error("bad magic should error")
	}
	// Bad version.
	bad3 := append([]byte(nil), wire...)
	bad3[1] = (9 << 4) | (bad3[1] & 0x0f)
	bad3 = recrc(bad3)
	if _, err := Decode(bad3); err == nil {
		t.Error("bad version should error")
	}
}

// recrc recomputes the trailing CRC after mutation.
func recrc(frame []byte) []byte {
	body := frame[:len(frame)-4]
	out := append([]byte(nil), body...)
	return binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
}

func TestEncodeErrors(t *testing.T) {
	p := &Packet{}
	if _, err := p.Encode(nil); err == nil {
		t.Error("no waypoints should error")
	}
	p.Header.Waypoints = make([]uint32, MaxWaypoints+1)
	if _, err := p.Encode(nil); err == nil {
		t.Error("too many waypoints should error")
	}
}

func TestSrcDstWidth(t *testing.T) {
	h := Header{Waypoints: []uint32{5, 9, 12}}
	if h.Src() != 5 || h.Dst() != 12 {
		t.Errorf("src/dst = %d/%d", h.Src(), h.Dst())
	}
	if h.WidthMeters() != 50 {
		t.Errorf("default width = %v", h.WidthMeters())
	}
	h.Width = 80
	if h.WidthMeters() != 80 {
		t.Errorf("width = %v", h.WidthMeters())
	}
}

func TestClone(t *testing.T) {
	p := samplePacket()
	q := p.Clone()
	q.Header.Waypoints[0] = 9999
	q.Payload[0] = 'X'
	if p.Header.Waypoints[0] == 9999 || p.Payload[0] == 'X' {
		t.Error("Clone aliases original")
	}
}

func TestString(t *testing.T) {
	if s := samplePacket().String(); s == "" {
		t.Error("empty String")
	}
}

// Property: any header with valid waypoints round-trips.
func TestQuickHeaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(20)
		wps := make([]uint32, n)
		for i := range wps {
			wps[i] = uint32(rng.Intn(1 << 20))
		}
		p := &Packet{
			Header: Header{
				Flags:     uint8(rng.Intn(8)),
				TTL:       uint8(rng.Intn(256)),
				MsgID:     rng.Uint64(),
				Width:     uint8(rng.Intn(200)),
				Waypoints: wps,
			},
			Payload: make([]byte, rng.Intn(100)),
		}
		rng.Read(p.Payload)
		rng.Read(p.Header.Postbox[:])
		wire, err := p.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode trial %d: %v", trial, err)
		}
		for i := range wps {
			if q.Header.Waypoints[i] != wps[i] {
				t.Fatalf("trial %d waypoint %d mismatch", trial, i)
			}
		}
		if !bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("trial %d payload mismatch", trial)
		}
	}
}

// Delta encoding must beat or match raw encoding for spatially local routes.
func TestDeltaEncodingCompact(t *testing.T) {
	local := Header{Waypoints: []uint32{100000, 100012, 99990, 100031}}
	spread := Header{Waypoints: []uint32{100000, 400000, 50000, 900000}}
	if local.RouteBits() >= spread.RouteBits() {
		t.Errorf("local route %d bits >= spread route %d bits",
			local.RouteBits(), spread.RouteBits())
	}
}

func BenchmarkEncode(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if _, err := p.Encode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	wire, _ := samplePacket().Encode(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGeocastRoundTrip(t *testing.T) {
	p := samplePacket()
	p.Header.Flags |= FlagGeocast
	p.Header.Target = GeocastArea{CenterX: -1250, CenterY: 2040, Radius: 300}
	wire, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if q.Header.Target != p.Header.Target {
		t.Errorf("target = %+v, want %+v", q.Header.Target, p.Header.Target)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Error("payload mismatch with geocast header")
	}
	// EncodedLen accounts for the geocast fields.
	noGeo := samplePacket()
	if p.Header.EncodedLen() <= noGeo.Header.EncodedLen() {
		t.Error("geocast header should be larger")
	}
	if len(wire) != p.Header.EncodedLen()+len(p.Payload)+4 {
		t.Errorf("wire %d != predicted %d", len(wire), p.Header.EncodedLen()+len(p.Payload)+4)
	}
}

func TestGeocastAbsentWhenFlagClear(t *testing.T) {
	p := samplePacket()
	p.Header.Target = GeocastArea{CenterX: 99, CenterY: 99, Radius: 99}
	// Flag not set: target is not encoded and decodes as zero.
	wire, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if q.Header.Target != (GeocastArea{}) {
		t.Errorf("unflagged target decoded as %+v", q.Header.Target)
	}
}

// Property: Decode never panics and never returns a malformed packet on
// arbitrary byte strings or random mutations of valid frames.
func TestQuickDecodeRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	valid, _ := samplePacket().Encode(nil)
	for trial := 0; trial < 2000; trial++ {
		var buf []byte
		if trial%2 == 0 {
			buf = make([]byte, rng.Intn(80))
			rng.Read(buf)
		} else {
			buf = append([]byte(nil), valid...)
			for k := 0; k < 1+rng.Intn(4); k++ {
				buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
			}
		}
		p, err := Decode(buf)
		if err != nil {
			continue
		}
		// Rarely a mutation keeps the CRC valid; the result must still be
		// structurally sound.
		if len(p.Header.Waypoints) == 0 || len(p.Header.Waypoints) > MaxWaypoints {
			t.Fatalf("decoded malformed packet: %+v", p.Header)
		}
	}
}
