package packet

import (
	"errors"
	"testing"
)

func TestRegionPrefixRoundTrip(t *testing.T) {
	cases := []RegionPrefix{
		{},
		{SrcRegion: 1, DstRegion: 99, DstBuilding: 1234, TTL: 8},
		{SrcRegion: MaxRegionIndex, DstRegion: MaxRegionIndex, DstBuilding: MaxRegionIndex, TTL: 255},
	}
	for _, want := range cases {
		b, err := AppendRegionPrefix(nil, want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		if len(b) != want.EncodedLen() {
			t.Errorf("EncodedLen = %d, encoded %d bytes", want.EncodedLen(), len(b))
		}
		if want.Bits() != 8*len(b) {
			t.Errorf("Bits = %d, want %d", want.Bits(), 8*len(b))
		}
		// Trailing payload must be left for the caller.
		b = append(b, 0xAA, 0xBB)
		got, n, err := DecodeRegionPrefix(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
		if n != len(b)-2 {
			t.Errorf("consumed %d bytes, want %d", n, len(b)-2)
		}
	}
}

func TestRegionPrefixConstantSize(t *testing.T) {
	// The hierarchy's header argument: the prefix for a 100-region
	// federation is the same single-digit byte count as for 2 regions.
	small := RegionPrefix{SrcRegion: 0, DstRegion: 1, DstBuilding: 40, TTL: 4}
	big := RegionPrefix{SrcRegion: 7, DstRegion: 99, DstBuilding: 120, TTL: 16}
	if small.EncodedLen() != big.EncodedLen() {
		t.Errorf("prefix grew with federation size: %d vs %d bytes",
			small.EncodedLen(), big.EncodedLen())
	}
	if big.EncodedLen() > 8 {
		t.Errorf("prefix is %d bytes; the shim must stay single-digit", big.EncodedLen())
	}
}

func TestRegionPrefixBudgets(t *testing.T) {
	if _, err := AppendRegionPrefix(nil, RegionPrefix{SrcRegion: MaxRegionIndex + 1}); !errors.Is(err, ErrRegionIndex) {
		t.Errorf("oversized src region: err = %v", err)
	}
	if _, err := AppendRegionPrefix(nil, RegionPrefix{DstBuilding: MaxRegionIndex + 1}); !errors.Is(err, ErrRegionIndex) {
		t.Errorf("oversized building: err = %v", err)
	}
	// Oversized varint on the wire is rejected at decode.
	b := append([]byte{RegionMagic, 1}, AppendUvarint(nil, MaxRegionIndex+1)...)
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 0)
	if _, _, err := DecodeRegionPrefix(b); !errors.Is(err, ErrRegionIndex) {
		t.Errorf("oversized wire index: err = %v", err)
	}
}

func TestRegionPrefixDecodeErrors(t *testing.T) {
	if _, _, err := DecodeRegionPrefix(nil); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("nil: err = %v", err)
	}
	if _, _, err := DecodeRegionPrefix([]byte{0x00, 0x01, 0x02, 0x03, 0x04}); !errors.Is(err, ErrBadRegionMagic) {
		t.Errorf("bad magic: err = %v", err)
	}
	// Truncated after the fixed bytes: every prefix-length truncation of a
	// valid encoding must fail cleanly, never panic.
	full, err := AppendRegionPrefix(nil, RegionPrefix{SrcRegion: 300, DstRegion: 5, DstBuilding: 70000, TTL: 3})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 2; cut < len(full); cut++ {
		if _, _, err := DecodeRegionPrefix(full[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func FuzzDecodeRegionPrefix(f *testing.F) {
	seed, _ := AppendRegionPrefix(nil, RegionPrefix{SrcRegion: 3, DstRegion: 9, DstBuilding: 1234, TTL: 7})
	f.Add(seed)
	f.Add([]byte{RegionMagic, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, n, err := DecodeRegionPrefix(b)
		if err != nil {
			return
		}
		if n < 2 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// Anything that decodes must re-encode (budgets were enforced).
		out, err := AppendRegionPrefix(nil, p)
		if err != nil {
			t.Fatalf("decoded prefix %+v does not re-encode: %v", p, err)
		}
		if len(out) != p.EncodedLen() {
			t.Fatalf("EncodedLen mismatch")
		}
	})
}
