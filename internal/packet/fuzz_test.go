package packet

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns a corpus of valid and near-valid frames covering every
// header variant, so the fuzzer starts at the interesting boundaries
// instead of random bytes.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	add := func(p *Packet) {
		if wire, err := p.Encode(nil); err == nil {
			seeds = append(seeds, wire)
		}
	}
	add(samplePacket())
	geo := samplePacket()
	geo.Header.Flags |= FlagGeocast
	geo.Header.Target = GeocastArea{CenterX: -1250, CenterY: 2040, Radius: 300}
	add(geo)
	plain := samplePacket()
	plain.Header.Flags = 0
	plain.Payload = nil
	add(plain)
	one := samplePacket()
	one.Header.Waypoints = []uint32{7}
	add(one)
	wide := samplePacket()
	wide.Header.Width = MaxWidthMeters
	add(wide)
	long := samplePacket()
	long.Header.Waypoints = make([]uint32, MaxWaypoints)
	for i := range long.Header.Waypoints {
		long.Header.Waypoints[i] = uint32(i * 3)
	}
	add(long)
	// Structurally broken seeds: truncated varint in the route, zero
	// waypoint count, and a bare header prefix.
	seeds = append(seeds,
		recrc(append(bytes.Repeat([]byte{0}, 4), 0x80, 0x80, 0x80, 0, 0, 0, 0)),
		recrc([]byte{Magic, Version << 4, 1, 0, 0, 0, 0, 0, 0, 0, 0, 50, 0, 0, 0, 0}),
		[]byte{Magic, Version << 4},
	)
	return seeds
}

// FuzzDecode feeds arbitrary bytes to Decode: it must never panic, and any
// frame it accepts must satisfy the validation budget and re-encode to a
// frame that decodes to the same packet.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Decode(b)
		if err != nil {
			return
		}
		h := &p.Header
		if len(h.Waypoints) == 0 || len(h.Waypoints) > MaxWaypoints {
			t.Fatalf("accepted waypoint count %d", len(h.Waypoints))
		}
		if h.Width > MaxWidthMeters {
			t.Fatalf("accepted width %d", h.Width)
		}
		if len(p.Payload) > MaxPayloadLen {
			t.Fatalf("accepted payload of %d bytes", len(p.Payload))
		}
		wire, err := p.Encode(nil)
		if err != nil {
			t.Fatalf("re-encode of accepted packet failed: %v", err)
		}
		q, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q.Header.MsgID != h.MsgID || q.Header.TTL != h.TTL ||
			len(q.Header.Waypoints) != len(h.Waypoints) ||
			!bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("round trip diverged: %+v vs %+v", q.Header, h)
		}
	})
}

// FuzzRoundTrip builds a packet from fuzzed fields; whenever Encode accepts
// it, Decode must reproduce it exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(64), uint64(1), uint8(50), []byte("hi"), []byte{1, 2, 3, 4})
	f.Add(uint8(FlagGeocast), uint8(255), uint64(1<<60), uint8(0), []byte{}, []byte{9})
	f.Add(uint8(FlagPostbox|FlagUrgent), uint8(1), uint64(0), uint8(MaxWidthMeters),
		bytes.Repeat([]byte{0xaa}, 64), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, flags, ttl uint8, msgID uint64, width uint8, payload, wpBytes []byte) {
		if len(wpBytes) == 0 {
			return
		}
		wps := make([]uint32, 0, len(wpBytes))
		for i, b := range wpBytes {
			// Spread waypoints across the index space with fuzz-driven deltas.
			wps = append(wps, uint32(i)*131+uint32(b))
		}
		p := &Packet{
			Header: Header{
				Flags:     flags & 0x0f,
				TTL:       ttl,
				MsgID:     msgID,
				Width:     width,
				Waypoints: wps,
			},
			Payload: payload,
		}
		if p.Header.Flags&FlagGeocast != 0 {
			p.Header.Target = GeocastArea{
				CenterX: int32(msgID), CenterY: -int32(msgID >> 32),
				Radius: uint32(msgID) % MaxGeocastRadius,
			}
		}
		wire, err := p.Encode(nil)
		if err != nil {
			return // rejected by the validation budget; fine
		}
		q, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of encoded packet failed: %v", err)
		}
		if q.Header.Flags != p.Header.Flags || q.Header.TTL != ttl ||
			q.Header.MsgID != msgID || q.Header.Width != width {
			t.Fatalf("header mismatch: %+v vs %+v", q.Header, p.Header)
		}
		for i := range wps {
			if q.Header.Waypoints[i] != wps[i] {
				t.Fatalf("waypoint %d: %d != %d", i, q.Header.Waypoints[i], wps[i])
			}
		}
		if !bytes.Equal(q.Payload, payload) {
			t.Fatalf("payload mismatch")
		}
	})
}

// FuzzDecodeHello mirrors FuzzDecode for the beacon format.
func FuzzDecodeHello(f *testing.F) {
	f.Add(Hello{ID: 42, Building: 7}.Encode())
	f.Add(Hello{ID: 0, Building: -1}.Encode())
	f.Add([]byte{HelloMagic})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeHello(b)
		if err != nil {
			return
		}
		if !bytes.Equal(h.Encode(), b) {
			t.Fatalf("hello round trip diverged: %+v", h)
		}
	})
}

// TestFuzzSeedsDecode pins the seed corpus behavior outside fuzz mode: the
// valid seeds decode, the broken ones are rejected without panicking.
func TestFuzzSeedsDecode(t *testing.T) {
	seeds := fuzzSeeds()
	ok := 0
	for _, s := range seeds {
		if _, err := Decode(s); err == nil {
			ok++
		}
	}
	if ok < 5 {
		t.Errorf("only %d/%d seeds decode; corpus lost its valid frames", ok, len(seeds))
	}
}
