package packet

import "errors"

// Validation budget.
//
// The decode path is the agent's untrusted-input boundary: on a deployed AP
// every frame arrives from an arbitrary radio peer, so each variable-length
// field carries an explicit upper bound and decoding rejects anything beyond
// it with a typed error. The bounds are sized generously against legitimate
// traffic (the paper's median header is 175 bits, §4) but small enough that
// a hostile frame cannot make a 32 MB router allocate or loop unreasonably.
const (
	// MaxFrameLen bounds a whole encoded frame. It matches the UDP
	// transport's datagram cap.
	MaxFrameLen = 64 << 10
	// MaxPayloadLen bounds the payload; CityMesh is a low-bandwidth
	// messaging substrate, not a bulk channel.
	MaxPayloadLen = 16 << 10
	// MaxRouteBytes bounds the encoded compressed route. A worst-case legal
	// route (MaxWaypoints deltas with poor locality) still fits well under
	// this; adversarial maximal-varint routes do not.
	MaxRouteBytes = 1 << 10
	// MaxWidthMeters bounds the conduit width a frame may request. Width
	// scales the area — and so the rebroadcast load — a single frame
	// commands; 4x the 50 m default is ample for legitimate fat conduits.
	MaxWidthMeters = 200
	// MaxGeocastRadius bounds the geocast disc radius in meters.
	MaxGeocastRadius = 1 << 24
)

// Typed decode errors. Each distinct rejection cause is a sentinel so the
// agent can keep per-cause drop counters; Decode wraps these with context,
// so match with errors.Is.
var (
	ErrFrameTooLarge   = errors.New("packet: frame exceeds MaxFrameLen")
	ErrBadCRC          = errors.New("packet: CRC mismatch")
	ErrBadMagic        = errors.New("packet: bad magic")
	ErrBadVersion      = errors.New("packet: unsupported version")
	ErrWaypointCount   = errors.New("packet: waypoint count out of range")
	ErrWaypointRange   = errors.New("packet: waypoint value out of range")
	ErrRouteTooLong    = errors.New("packet: encoded route exceeds MaxRouteBytes")
	ErrPayloadTooLarge = errors.New("packet: payload exceeds MaxPayloadLen")
	ErrWidthRange      = errors.New("packet: conduit width exceeds MaxWidthMeters")
	ErrGeocastRadius   = errors.New("packet: geocast radius out of range")
)

// Oversize reports whether err indicates a frame rejected for exceeding a
// resource budget, as opposed to being structurally malformed. Agents use
// this to split their drop counters into oversized vs malformed.
func Oversize(err error) bool {
	return errors.Is(err, ErrFrameTooLarge) ||
		errors.Is(err, ErrPayloadTooLarge) ||
		errors.Is(err, ErrRouteTooLong) ||
		errors.Is(err, ErrWidthRange) ||
		errors.Is(err, ErrGeocastRadius)
}
