package packet

import (
	"bytes"
	"errors"
	"testing"
)

// rawFrame assembles a frame from hand-built body bytes plus a valid CRC,
// for decode tests that need wire-level control beyond what Encode allows.
func rawFrame(body []byte) []byte {
	return recrc(append(append([]byte(nil), body...), 0, 0, 0, 0))
}

// header12 returns the fixed 12-byte header prefix.
func header12(flags, ttl, width uint8) []byte {
	b := []byte{Magic, (Version << 4) | (flags & 0x0f), ttl}
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 1) // msgID = 1
	return append(b, width)
}

func TestDecodeValidationBudget(t *testing.T) {
	cases := []struct {
		name string
		make func() []byte
		want error
	}{
		{
			name: "zero waypoint count",
			make: func() []byte {
				// Trailing pad byte keeps the body at the 14-byte minimum so
				// the count check, not the length check, fires.
				return rawFrame(append(header12(0, 10, 50), 0, 0))
			},
			want: ErrWaypointCount,
		},
		{
			name: "waypoint count above max",
			make: func() []byte {
				b := header12(0, 10, 50)
				b = AppendUvarint(b, MaxWaypoints+1)
				return rawFrame(b)
			},
			want: ErrWaypointCount,
		},
		{
			name: "truncated varint in waypoint count",
			make: func() []byte {
				// Continuation bit set with no following byte.
				return rawFrame(append(header12(0, 10, 50), 0x80))
			},
			want: ErrShortBuffer,
		},
		{
			name: "truncated varint mid-route",
			make: func() []byte {
				b := header12(0, 10, 50)
				b = AppendUvarint(b, 3)   // three waypoints promised
				b = AppendUvarint(b, 100) // first present
				b = append(b, 0x80)       // second truncated
				return rawFrame(b)
			},
			want: ErrShortBuffer,
		},
		{
			name: "varint overflow in waypoint",
			make: func() []byte {
				b := append(header12(0, 10, 50), 1)
				b = append(b, bytes.Repeat([]byte{0xff}, 10)...)
				b = append(b, 0x01)
				return rawFrame(b)
			},
			want: ErrVarintOverflow,
		},
		{
			name: "negative waypoint after delta",
			make: func() []byte {
				b := header12(0, 10, 50)
				b = AppendUvarint(b, 2)
				b = AppendUvarint(b, 5)           // first waypoint 5
				b = AppendUvarint(b, ZigZag(-10)) // delta to -5
				return rawFrame(b)
			},
			want: ErrWaypointRange,
		},
		{
			name: "width above cap",
			make: func() []byte {
				b := header12(0, 10, MaxWidthMeters+1)
				b = AppendUvarint(b, 1)
				b = AppendUvarint(b, 7)
				return rawFrame(b)
			},
			want: ErrWidthRange,
		},
		{
			name: "payload above cap",
			make: func() []byte {
				b := header12(0, 10, 50)
				b = AppendUvarint(b, 1)
				b = AppendUvarint(b, 7)
				b = append(b, make([]byte, MaxPayloadLen+1)...)
				return rawFrame(b)
			},
			want: ErrPayloadTooLarge,
		},
		{
			name: "frame above cap",
			make: func() []byte {
				return make([]byte, MaxFrameLen+1)
			},
			want: ErrFrameTooLarge,
		},
		{
			name: "geocast radius above cap",
			make: func() []byte {
				b := header12(FlagGeocast, 10, 50)
				b = AppendUvarint(b, 1)
				b = AppendUvarint(b, 7)
				b = AppendUvarint(b, ZigZag(0))
				b = AppendUvarint(b, ZigZag(0))
				b = AppendUvarint(b, MaxGeocastRadius+1)
				return rawFrame(b)
			},
			want: ErrGeocastRadius,
		},
		{
			name: "truncated postbox address",
			make: func() []byte {
				b := header12(FlagPostbox, 10, 50)
				b = AppendUvarint(b, 1)
				b = AppendUvarint(b, 7)
				b = append(b, 1, 2, 3) // postbox needs 8 bytes
				return rawFrame(b)
			},
			want: ErrShortBuffer,
		},
		{
			name: "bad CRC",
			make: func() []byte {
				wire, _ := samplePacket().Encode(nil)
				wire[len(wire)-1] ^= 0xff
				return wire
			},
			want: ErrBadCRC,
		},
		{
			name: "bad magic",
			make: func() []byte {
				wire, _ := samplePacket().Encode(nil)
				wire[0] = 0x00
				return recrc(wire)
			},
			want: ErrBadMagic,
		},
		{
			name: "bad version",
			make: func() []byte {
				wire, _ := samplePacket().Encode(nil)
				wire[1] = (9 << 4) | (wire[1] & 0x0f)
				return recrc(wire)
			},
			want: ErrBadVersion,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.make())
			if err == nil {
				t.Fatal("decode accepted a frame outside the validation budget")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeMaxWidthHeader pins the acceptance boundary: the largest legal
// header (max waypoints, max width, full postbox + geocast) round-trips.
func TestDecodeMaxWidthHeader(t *testing.T) {
	p := &Packet{
		Header: Header{
			Flags: FlagPostbox | FlagGeocast,
			TTL:   255,
			MsgID: ^uint64(0),
			Width: MaxWidthMeters,
			Target: GeocastArea{
				CenterX: -(1 << 20), CenterY: 1 << 20, Radius: MaxGeocastRadius,
			},
		},
		Payload: bytes.Repeat([]byte{0x5a}, 512),
	}
	p.Header.Waypoints = make([]uint32, MaxWaypoints)
	for i := range p.Header.Waypoints {
		p.Header.Waypoints[i] = uint32(1000 + i*2)
	}
	for i := range p.Header.Postbox {
		p.Header.Postbox[i] = byte(i)
	}
	wire, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Header.Waypoints) != MaxWaypoints || q.Header.Width != MaxWidthMeters ||
		q.Header.Target != p.Header.Target || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("max header did not round-trip: %+v", q.Header)
	}
}

func TestEncodeValidationBudget(t *testing.T) {
	base := func() *Packet { return samplePacket() }

	over := base()
	over.Payload = make([]byte, MaxPayloadLen+1)
	if _, err := over.Encode(nil); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("oversized payload: err = %v", err)
	}

	wide := base()
	wide.Header.Width = MaxWidthMeters + 1
	if _, err := wide.Encode(nil); !errors.Is(err, ErrWidthRange) {
		t.Errorf("oversized width: err = %v", err)
	}

	geo := base()
	geo.Header.Flags |= FlagGeocast
	geo.Header.Target.Radius = MaxGeocastRadius + 1
	if _, err := geo.Encode(nil); !errors.Is(err, ErrGeocastRadius) {
		t.Errorf("oversized radius: err = %v", err)
	}
}

func TestOversizeClassifier(t *testing.T) {
	for _, err := range []error{ErrFrameTooLarge, ErrPayloadTooLarge, ErrRouteTooLong, ErrWidthRange, ErrGeocastRadius} {
		if !Oversize(err) {
			t.Errorf("Oversize(%v) = false", err)
		}
	}
	for _, err := range []error{ErrBadCRC, ErrBadMagic, ErrBadVersion, ErrWaypointCount, ErrWaypointRange, ErrShortBuffer, ErrVarintOverflow, nil} {
		if Oversize(err) {
			t.Errorf("Oversize(%v) = true", err)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{ID: 1234567, Building: -1}
	frame := h.Encode()
	if !IsHello(frame) {
		t.Fatal("IsHello(beacon) = false")
	}
	got, err := DecodeHello(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("hello = %+v, want %+v", got, h)
	}
	// Corruption is caught.
	frame[3] ^= 1
	if _, err := DecodeHello(frame); !errors.Is(err, ErrBadCRC) {
		t.Errorf("corrupted hello: err = %v", err)
	}
	if _, err := DecodeHello(frame[:5]); err == nil {
		t.Error("short hello should error")
	}
	if IsHello([]byte{Magic}) {
		t.Error("data frame misclassified as hello")
	}
}
