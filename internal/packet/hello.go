package packet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// HelloMagic identifies a liveness beacon frame. Beacons share the frame
// namespace with data packets (one UDP socket per AP) but use a distinct
// magic byte, so a receiver can dispatch on frame[0].
const HelloMagic = 0xCA

// helloLen is the fixed beacon size: magic, version, 8-byte agent ID,
// 4-byte building index, CRC-32.
const helloLen = 1 + 1 + 8 + 4 + 4

// Hello is the periodic liveness beacon an agent broadcasts so neighbors
// can maintain a last-seen table. Node churn — an AP losing power and
// rejoining — is the normal case in a disaster, and the beacon is how the
// runtime observes it.
type Hello struct {
	ID       uint64 // sender's agent identifier
	Building int32  // sender's building index, or -1 for a relay
}

// IsHello reports whether frame is a beacon (dispatch check only; the
// frame may still fail DecodeHello).
func IsHello(frame []byte) bool {
	return len(frame) > 0 && frame[0] == HelloMagic
}

// Encode returns the beacon's wire encoding.
func (h Hello) Encode() []byte {
	out := make([]byte, 0, helloLen)
	out = append(out, HelloMagic, Version)
	out = binary.BigEndian.AppendUint64(out, h.ID)
	out = binary.BigEndian.AppendUint32(out, uint32(h.Building))
	return binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// DecodeHello parses a beacon frame.
func DecodeHello(frame []byte) (Hello, error) {
	if len(frame) != helloLen {
		return Hello{}, fmt.Errorf("packet: hello is %d bytes, want %d: %w",
			len(frame), helloLen, ErrShortBuffer)
	}
	body, trailer := frame[:helloLen-4], frame[helloLen-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return Hello{}, ErrBadCRC
	}
	if body[0] != HelloMagic {
		return Hello{}, fmt.Errorf("packet: hello magic 0x%02x: %w", body[0], ErrBadMagic)
	}
	if body[1] != Version {
		return Hello{}, fmt.Errorf("packet: hello version %d: %w", body[1], ErrBadVersion)
	}
	return Hello{
		ID:       binary.BigEndian.Uint64(body[2:10]),
		Building: int32(binary.BigEndian.Uint32(body[10:14])),
	}, nil
}
