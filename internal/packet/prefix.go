package packet

import (
	"errors"
	"fmt"
)

// RegionPrefix is the level-1 addressing shim of the federation hierarchy:
// the hierarchical address (Region/Building) an inter-region frame carries
// while it rides a gateway-to-gateway long-haul link. Inside a region the
// ordinary Header is the whole story — APs never see the prefix — so the
// per-AP header cost of federating is exactly these few bytes, *constant*
// in the number of federated cities (region indices are varints, so a
// 100-region federation pays one byte where a 2-region one does). That is
// the hierarchy's header-scaling argument, measured by the `federation`
// experiment and accounted in the headers experiment.
//
// The prefix is a link-layer frame: gateways encode it in front of the
// intra-region frame when transmitting on an inter-region link and strip
// it on arrival, re-planning the level-0 route inside their own city. It
// never transits the broadcast mesh.
type RegionPrefix struct {
	// SrcRegion and DstRegion are dense federation region indices.
	SrcRegion, DstRegion uint32
	// DstBuilding is the destination building inside DstRegion — the
	// second component of the hierarchical address.
	DstBuilding uint32
	// TTL bounds the remaining region-level link hops.
	TTL uint8
}

// RegionMagic identifies a region-prefix shim on an inter-region link.
const RegionMagic = 0xCE

// MaxRegionIndex bounds the region indices a prefix may carry. A planetary
// federation of city DFNs is thousands of regions; 2^20 leaves headroom
// without letting a corrupt varint claim gigabyte state.
const MaxRegionIndex = 1 << 20

// Typed sentinel errors for prefix decoding.
var (
	// ErrRegionIndex marks a region or building index beyond MaxRegionIndex.
	ErrRegionIndex = errors.New("packet: region prefix index out of range")
	// ErrBadRegionMagic marks a link frame that does not start with
	// RegionMagic.
	ErrBadRegionMagic = errors.New("packet: bad region prefix magic")
)

// EncodedLen returns the encoded prefix length in bytes.
func (p *RegionPrefix) EncodedLen() int {
	return 2 + // magic, ttl
		UvarintLen(uint64(p.SrcRegion)) +
		UvarintLen(uint64(p.DstRegion)) +
		UvarintLen(uint64(p.DstBuilding))
}

// Bits returns the prefix size in bits, comparable against Header.HeaderBits.
func (p *RegionPrefix) Bits() int { return 8 * p.EncodedLen() }

// AppendRegionPrefix appends the wire encoding of the prefix to dst.
func AppendRegionPrefix(dst []byte, p RegionPrefix) ([]byte, error) {
	if p.SrcRegion > MaxRegionIndex || p.DstRegion > MaxRegionIndex || p.DstBuilding > MaxRegionIndex {
		return nil, fmt.Errorf("packet: region prefix (%d,%d,%d): %w",
			p.SrcRegion, p.DstRegion, p.DstBuilding, ErrRegionIndex)
	}
	dst = append(dst, RegionMagic, p.TTL)
	dst = AppendUvarint(dst, uint64(p.SrcRegion))
	dst = AppendUvarint(dst, uint64(p.DstRegion))
	dst = AppendUvarint(dst, uint64(p.DstBuilding))
	return dst, nil
}

// DecodeRegionPrefix parses a region prefix from the front of a link frame
// and returns it plus the number of bytes consumed; b[n:] is the enclosed
// intra-region frame.
func DecodeRegionPrefix(b []byte) (RegionPrefix, int, error) {
	if len(b) < 2 {
		return RegionPrefix{}, 0, ErrShortBuffer
	}
	if b[0] != RegionMagic {
		return RegionPrefix{}, 0, fmt.Errorf("packet: magic 0x%02x: %w", b[0], ErrBadRegionMagic)
	}
	p := RegionPrefix{TTL: b[1]}
	off := 2
	for i, field := range []*uint32{&p.SrcRegion, &p.DstRegion, &p.DstBuilding} {
		u, n, err := Uvarint(b[off:])
		if err != nil {
			return RegionPrefix{}, 0, err
		}
		off += n
		if u > MaxRegionIndex {
			return RegionPrefix{}, 0, fmt.Errorf("packet: region prefix field %d = %d: %w", i, u, ErrRegionIndex)
		}
		*field = uint32(u)
	}
	return p, off, nil
}
