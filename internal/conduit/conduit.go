// Package conduit implements CityMesh's route-compression algorithm (§3,
// Figure 4 of the paper).
//
// A building route — the sequence of buildings a Dijkstra run over the
// building graph produces — would be too large to carry in a packet header.
// Instead, the route is compressed into a sequence of *waypoint buildings*.
// Between each pair of consecutive waypoints lies a conduit: a rectangle
// superimposed over the route. The paper's width parameter W ("comparable
// to the Wi-Fi transmission range, 50 m in our implementation") is treated
// as the lateral tolerance on each side of the waypoint-to-waypoint axis:
// an AP up to W meters off-axis is inside the conduit. This reading — one
// transmission range of slack either side — is what reproduces the paper's
// high deliverability; interpreting W as the total band width (W/2 each
// side) leaves too few APs in the band to relay through mispredicted
// building-graph hops. The compression both shrinks the
// header and *widens* the described region, which improves tolerance to
// mispredicted AP connectivity: any AP inside a conduit rebroadcasts, not
// just APs in the exact listed buildings.
//
// The waypoint-selection algorithm is the paper's greedy covering: place
// the start of the first conduit at the first building's centroid, then
// find the latest building in the route such that the conduit ending there
// covers every preceding route building; that building is the next
// waypoint. Repeat from there until the destination is reached.
package conduit

import (
	"fmt"

	"citymesh/internal/geo"
	"citymesh/internal/osm"
)

// DefaultWidth is the paper's conduit width parameter W: comparable to the
// Wi-Fi transmission range, 50 m in their implementation.
const DefaultWidth = 50.0

// Route is a compressed building route: an ordered list of waypoint
// building indices (dense city building IDs), including the source building
// first and the destination building last.
type Route struct {
	Waypoints []int
	Width     float64
}

// Compress reduces the building route (a sequence of dense building
// indices) to waypoints such that every building on the route lies within a
// conduit of the given width. It returns an error for empty routes or
// out-of-range indices.
func Compress(city *osm.City, route []int, width float64) (Route, error) {
	if len(route) == 0 {
		return Route{}, fmt.Errorf("conduit: empty route")
	}
	if width <= 0 {
		width = DefaultWidth
	}
	for _, b := range route {
		if b < 0 || b >= len(city.Buildings) {
			return Route{}, fmt.Errorf("conduit: building index %d out of range [0,%d)", b, len(city.Buildings))
		}
	}
	if len(route) == 1 {
		return Route{Waypoints: []int{route[0]}, Width: width}, nil
	}

	waypoints := []int{route[0]}
	start := 0 // index into route of the current conduit's starting waypoint
	for start < len(route)-1 {
		// Find the latest end index such that the conduit from start to end
		// covers all intermediate route buildings.
		end := start + 1 // a single hop is always coverable
		for cand := len(route) - 1; cand > start+1; cand-- {
			if coversIntermediate(city, route, start, cand, width) {
				end = cand
				break
			}
		}
		waypoints = append(waypoints, route[end])
		start = end
	}
	return Route{Waypoints: waypoints, Width: width}, nil
}

// coversIntermediate reports whether the conduit from route[start] to
// route[end] contains the centroids of all route buildings strictly between
// them.
func coversIntermediate(city *osm.City, route []int, start, end int, width float64) bool {
	o := geo.OrientedRect{
		A:         city.Buildings[route[start]].Centroid,
		B:         city.Buildings[route[end]].Centroid,
		HalfWidth: width,
		EndCap:    width,
	}
	for i := start + 1; i < end; i++ {
		if !o.Contains(city.Buildings[route[i]].Centroid) {
			return false
		}
	}
	return true
}

// Map is the minimal building-map view conduit reconstruction consumes: a
// dense building count and per-building centroids. *osm.City satisfies it
// directly; the forwarding kernel's MapView (internal/fwd) is the same
// contract, so sim APs and live agents reconstruct conduits from exactly
// the same inputs.
type Map interface {
	NumBuildings() int
	Centroid(b int) geo.Point
}

// Conduits reconstructs the conduit rectangles for the route using the
// building map, exactly as each AP does on packet reception (§3 step 3).
func (r Route) Conduits(city *osm.City) ([]geo.OrientedRect, error) {
	return r.ConduitsOn(city)
}

// ConduitsOn is Conduits over the abstract map view, so callers that hold
// only the kernel's MapView contract (not a concrete *osm.City) can
// reconstruct the same rectangles.
func (r Route) ConduitsOn(m Map) ([]geo.OrientedRect, error) {
	if len(r.Waypoints) == 0 {
		return nil, fmt.Errorf("conduit: route has no waypoints")
	}
	w := r.Width
	if w <= 0 {
		w = DefaultWidth
	}
	nb := m.NumBuildings()
	for _, b := range r.Waypoints {
		if b < 0 || b >= nb {
			return nil, fmt.Errorf("conduit: waypoint building %d unknown", b)
		}
	}
	if len(r.Waypoints) == 1 {
		c := m.Centroid(r.Waypoints[0])
		return []geo.OrientedRect{{A: c, B: c, HalfWidth: w, EndCap: w}}, nil
	}
	out := make([]geo.OrientedRect, 0, len(r.Waypoints)-1)
	for i := 0; i+1 < len(r.Waypoints); i++ {
		out = append(out, geo.OrientedRect{
			A:         m.Centroid(r.Waypoints[i]),
			B:         m.Centroid(r.Waypoints[i+1]),
			HalfWidth: w,
			EndCap:    w,
		})
	}
	return out, nil
}

// Contains reports whether point p falls inside any of the route's
// conduits. This is the rebroadcast predicate an AP evaluates. The conduits
// slice should come from Conduits; splitting the calls lets an AP
// reconstruct once per packet and test cheaply. Each rectangle is guarded
// by a bounding-box prefilter (MayContain) so far-away points are rejected
// without the oriented-rect projection math.
func Contains(conduits []geo.OrientedRect, p geo.Point) bool {
	for _, o := range conduits {
		if o.MayContain(p) && o.Contains(p) {
			return true
		}
	}
	return false
}

// Region is a conduit set prepared for repeated containment tests — the
// form the forwarding kernel caches per message. Each oriented rectangle
// is paired with its precomputed axis-aligned bounding box, and the union
// box rejects far-away points with four comparisons before any per-rect
// work. A Region is immutable after construction and safe for concurrent
// Contains calls.
type Region struct {
	rects  []geo.OrientedRect
	bounds []geo.Rect
	outer  geo.Rect
}

// NewRegion precomputes the prefilter geometry for a conduit set. The
// rects slice is retained; callers must not mutate it afterwards.
func NewRegion(rects []geo.OrientedRect) *Region {
	r := &Region{rects: rects, bounds: make([]geo.Rect, len(rects))}
	for i, o := range rects {
		r.bounds[i] = o.Bounds()
		if i == 0 {
			r.outer = r.bounds[0]
		} else {
			r.outer = r.outer.Union(r.bounds[i])
		}
	}
	return r
}

// Contains reports whether p falls inside any conduit of the region. A nil
// or empty region contains nothing.
func (r *Region) Contains(p geo.Point) bool {
	if r == nil || len(r.rects) == 0 || !r.outer.Contains(p) {
		return false
	}
	for i := range r.rects {
		if r.bounds[i].Contains(p) && r.rects[i].Contains(p) {
			return true
		}
	}
	return false
}

// Len returns the number of conduit rectangles in the region.
func (r *Region) Len() int {
	if r == nil {
		return 0
	}
	return len(r.rects)
}

// Rects exposes the underlying conduit rectangles (read-only; rendering
// and diagnostics).
func (r *Region) Rects() []geo.OrientedRect {
	if r == nil {
		return nil
	}
	return r.rects
}

// Src returns the source building index of the route.
func (r Route) Src() int { return r.Waypoints[0] }

// Dst returns the destination building index of the route.
func (r Route) Dst() int { return r.Waypoints[len(r.Waypoints)-1] }

// Length returns the total axis length of the route's conduits in meters.
func (r Route) Length(city *osm.City) float64 {
	var l float64
	for i := 0; i+1 < len(r.Waypoints); i++ {
		l += city.Buildings[r.Waypoints[i]].Centroid.Dist(city.Buildings[r.Waypoints[i+1]].Centroid)
	}
	return l
}
