package conduit

import (
	"math"
	"math/rand"
	"testing"

	"citymesh/internal/geo"
)

// containsExhaustive is the pre-prefilter containment loop: the full
// oriented-rectangle projection for every conduit, no bounding-box
// rejection. Kept here as the benchmark baseline so the prefilter's
// effect stays measurable (run with: go test -bench Contains ./internal/conduit).
func containsExhaustive(conduits []geo.OrientedRect, p geo.Point) bool {
	for _, o := range conduits {
		if o.Contains(p) {
			return true
		}
	}
	return false
}

// benchRoute builds a staircase of nRects conduits (alternating east and
// north legs, 200 m each, 50 m half-width) plus a deterministic set of
// query points: most far from the route (the common case for a
// city-scale flood — almost every AP is outside the conduit band), some
// on it.
func benchRoute(nRects int) ([]geo.OrientedRect, []geo.Point) {
	rects := make([]geo.OrientedRect, 0, nRects)
	cur := geo.Pt(0, 0)
	for i := 0; i < nRects; i++ {
		next := cur.Add(geo.Pt(200, 0))
		if i%2 == 1 {
			next = cur.Add(geo.Pt(0, 200))
		}
		rects = append(rects, geo.OrientedRect{A: cur, B: next, HalfWidth: 50, EndCap: 50})
		cur = next
	}
	rng := rand.New(rand.NewSource(7))
	pts := make([]geo.Point, 0, 256)
	for i := 0; i < 256; i++ {
		if i%8 == 0 {
			// On-route point: along some leg's axis.
			o := rects[rng.Intn(len(rects))]
			t := rng.Float64()
			pts = append(pts, geo.Pt(o.A.X+(o.B.X-o.A.X)*t, o.A.Y+(o.B.Y-o.A.Y)*t))
		} else {
			// Off-route point somewhere in a city-sized square around the
			// staircase.
			pts = append(pts, geo.Pt(rng.Float64()*4000-1000, rng.Float64()*4000-1000))
		}
	}
	return rects, pts
}

func BenchmarkContainsExhaustive(b *testing.B) {
	rects, pts := benchRoute(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		containsExhaustive(rects, pts[i%len(pts)])
	}
}

func BenchmarkContainsPrefiltered(b *testing.B) {
	rects, pts := benchRoute(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contains(rects, pts[i%len(pts)])
	}
}

func BenchmarkRegionContains(b *testing.B) {
	rects, pts := benchRoute(12)
	r := NewRegion(rects)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Contains(pts[i%len(pts)])
	}
}

// TestPrefilterAgreesWithExhaustive fuzzes the three containment paths
// against each other: the prefiltered Contains and the cached Region must
// answer exactly like the exhaustive baseline for every point, including
// points straddling the bounding boxes.
func TestPrefilterAgreesWithExhaustive(t *testing.T) {
	rects, _ := benchRoute(9)
	region := NewRegion(rects)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		p := geo.Pt(rng.Float64()*3000-1000, rng.Float64()*3000-1000)
		want := containsExhaustive(rects, p)
		if got := Contains(rects, p); got != want {
			t.Fatalf("Contains(%v) = %v, exhaustive = %v", p, got, want)
		}
		if got := region.Contains(p); got != want {
			t.Fatalf("Region.Contains(%v) = %v, exhaustive = %v", p, got, want)
		}
	}
}

// TestMayContainIsConservative verifies the prefilter's defining
// property: it never rejects a point the full test would accept.
func TestMayContainIsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		o := geo.OrientedRect{
			A:         geo.Pt(rng.Float64()*500, rng.Float64()*500),
			B:         geo.Pt(rng.Float64()*500, rng.Float64()*500),
			HalfWidth: rng.Float64() * 80,
			EndCap:    rng.Float64() * 80,
		}
		p := geo.Pt(rng.Float64()*700-100, rng.Float64()*700-100)
		if o.Contains(p) && !o.MayContain(p) {
			t.Fatalf("prefilter rejected a contained point: rect %+v point %v", o, p)
		}
	}
}

func TestRegionBasics(t *testing.T) {
	var nilRegion *Region
	if nilRegion.Contains(geo.Pt(0, 0)) {
		t.Fatal("nil region must contain nothing")
	}
	if nilRegion.Len() != 0 || nilRegion.Rects() != nil {
		t.Fatal("nil region must be empty")
	}
	empty := NewRegion(nil)
	if empty.Contains(geo.Pt(0, 0)) || empty.Len() != 0 {
		t.Fatal("empty region must contain nothing")
	}

	o := geo.OrientedRect{A: geo.Pt(0, 0), B: geo.Pt(100, 0), HalfWidth: 50, EndCap: 50}
	r := NewRegion([]geo.OrientedRect{o})
	if r.Len() != 1 || len(r.Rects()) != 1 {
		t.Fatalf("region len = %d", r.Len())
	}
	if !r.Contains(geo.Pt(50, 0)) {
		t.Fatal("axis point must be inside")
	}
	if r.Contains(geo.Pt(50, 51)) {
		t.Fatal("51 m off a 50 m half-width conduit must be outside")
	}
	// A corner just outside the oriented rect but inside its padded AABB:
	// the prefilter passes it through and the exact test rejects it.
	corner := geo.Pt(-o.EndCap-1, -o.HalfWidth-1)
	if math.Hypot(o.EndCap+1, o.HalfWidth+1) < math.Hypot(o.HalfWidth, o.EndCap) {
		t.Fatal("corner point not outside — test geometry wrong")
	}
	if r.Contains(corner) {
		t.Fatal("corner outside the oriented rect must be rejected")
	}
}
