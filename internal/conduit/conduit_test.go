package conduit

import (
	"math/rand"
	"testing"

	"citymesh/internal/buildinggraph"
	"citymesh/internal/citygen"
	"citymesh/internal/geo"
	"citymesh/internal/osm"
)

// lineCity builds buildings at the given centroid points (tiny squares).
func lineCity(pts ...geo.Point) *osm.City {
	city := &osm.City{Name: "line"}
	for i, p := range pts {
		fp := geo.Polygon{
			p.Add(geo.Pt(-4, -4)), p.Add(geo.Pt(4, -4)),
			p.Add(geo.Pt(4, 4)), p.Add(geo.Pt(-4, 4)),
		}
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: fp, Centroid: fp.Centroid(),
		})
	}
	return city
}

func TestCompressStraightLine(t *testing.T) {
	// Ten collinear buildings: one conduit covers everything, so the
	// compressed route is just {first, last}.
	pts := make([]geo.Point, 10)
	route := make([]int, 10)
	for i := range pts {
		pts[i] = geo.Pt(float64(i)*40, 0)
		route[i] = i
	}
	city := lineCity(pts...)
	r, err := Compress(city, route, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Waypoints) != 2 || r.Src() != 0 || r.Dst() != 9 {
		t.Errorf("waypoints = %v", r.Waypoints)
	}
}

func TestCompressRightAngle(t *testing.T) {
	// An L-shaped route needs a waypoint at the corner.
	pts := []geo.Point{
		geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(200, 0), geo.Pt(300, 0),
		geo.Pt(300, 100), geo.Pt(300, 200), geo.Pt(300, 300),
	}
	route := []int{0, 1, 2, 3, 4, 5, 6}
	city := lineCity(pts...)
	r, err := Compress(city, route, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Waypoints) < 3 {
		t.Fatalf("L route compressed to %v; corner lost", r.Waypoints)
	}
	if r.Src() != 0 || r.Dst() != 6 {
		t.Errorf("endpoints = %d, %d", r.Src(), r.Dst())
	}
	// The corner building (index 3) should be a waypoint.
	foundCorner := false
	for _, w := range r.Waypoints {
		if w == 3 {
			foundCorner = true
		}
	}
	if !foundCorner {
		t.Errorf("corner not a waypoint: %v", r.Waypoints)
	}
}

func TestCompressSingleBuilding(t *testing.T) {
	city := lineCity(geo.Pt(0, 0))
	r, err := Compress(city, []int{0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Waypoints) != 1 {
		t.Errorf("waypoints = %v", r.Waypoints)
	}
	cs, err := r.Conduits(city)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || !Contains(cs, geo.Pt(10, 10)) {
		t.Error("degenerate conduit should be a disc around the building")
	}
	if Contains(cs, geo.Pt(150, 0)) {
		t.Error("degenerate conduit disc too large")
	}
}

func TestCompressErrors(t *testing.T) {
	city := lineCity(geo.Pt(0, 0))
	if _, err := Compress(city, nil, 50); err == nil {
		t.Error("empty route should error")
	}
	if _, err := Compress(city, []int{5}, 50); err == nil {
		t.Error("out-of-range building should error")
	}
	bad := Route{Waypoints: []int{7}}
	if _, err := bad.Conduits(city); err != nil {
		// waypoint 7 unknown
	} else {
		t.Error("unknown waypoint should error")
	}
	empty := Route{}
	if _, err := empty.Conduits(city); err == nil {
		t.Error("empty route Conduits should error")
	}
}

func TestCompressDefaultWidth(t *testing.T) {
	city := lineCity(geo.Pt(0, 0), geo.Pt(40, 0))
	r, err := Compress(city, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Width != DefaultWidth {
		t.Errorf("width = %v", r.Width)
	}
}

// The paper's core invariant: every building on the original route lies
// inside at least one conduit of the compressed route.
func TestCoverageInvariantOnRealRoutes(t *testing.T) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	city := planToCity(plan)
	g := buildinggraph.Build(city, buildinggraph.DefaultConfig())
	rng := rand.New(rand.NewSource(4))
	n := g.NumVertices()
	tested := 0
	for trial := 0; trial < 200 && tested < 60; trial++ {
		a, b := rng.Intn(n), rng.Intn(n)
		path, _, err := g.ShortestPath(a, b)
		if err != nil || len(path) < 3 {
			continue
		}
		tested++
		for _, w := range []float64{30, 50, 80} {
			r, err := Compress(city, path, w)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := r.Conduits(city)
			if err != nil {
				t.Fatal(err)
			}
			for _, bIdx := range path {
				if !Contains(cs, city.Buildings[bIdx].Centroid) {
					t.Fatalf("W=%v: route building %d centroid %v not covered by conduits (route %v, waypoints %v)",
						w, bIdx, city.Buildings[bIdx].Centroid, path, r.Waypoints)
				}
			}
			// Waypoints must be a subsequence of the path.
			pi := 0
			for _, wp := range r.Waypoints {
				for pi < len(path) && path[pi] != wp {
					pi++
				}
				if pi == len(path) {
					t.Fatalf("waypoints %v not a subsequence of path %v", r.Waypoints, path)
				}
			}
			// Compression should not grow the list.
			if len(r.Waypoints) > len(path) {
				t.Fatalf("waypoints %d > path %d", len(r.Waypoints), len(path))
			}
		}
	}
	if tested < 20 {
		t.Fatalf("only %d multi-hop routes tested", tested)
	}
}

// Wider conduits must never need more waypoints than narrower ones on the
// same route (monotonicity of the greedy covering).
func TestWidthMonotonicity(t *testing.T) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(32))
	if err != nil {
		t.Fatal(err)
	}
	city := planToCity(plan)
	g := buildinggraph.Build(city, buildinggraph.DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	n := g.NumVertices()
	for trial := 0; trial < 60; trial++ {
		a, b := rng.Intn(n), rng.Intn(n)
		path, _, err := g.ShortestPath(a, b)
		if err != nil || len(path) < 4 {
			continue
		}
		prev := -1
		for _, w := range []float64{25, 50, 100, 200} {
			r, err := Compress(city, path, w)
			if err != nil {
				t.Fatal(err)
			}
			if prev >= 0 && len(r.Waypoints) > prev {
				t.Fatalf("W=%v produced %d waypoints, narrower width produced %d",
					w, len(r.Waypoints), prev)
			}
			prev = len(r.Waypoints)
		}
	}
}

func TestConduitsMatchWaypoints(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(100, 100)}
	city := lineCity(pts...)
	r := Route{Waypoints: []int{0, 1, 2}, Width: 50}
	cs, err := r.Conduits(city)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("conduits = %d", len(cs))
	}
	if cs[0].A != pts[0] || cs[0].B != pts[1] || cs[1].B != pts[2] {
		t.Error("conduit endpoints do not match waypoint centroids")
	}
	if cs[0].HalfWidth != 50 {
		t.Errorf("half width = %v (W is the lateral tolerance each side)", cs[0].HalfWidth)
	}
}

func TestContains(t *testing.T) {
	city := lineCity(geo.Pt(0, 0), geo.Pt(200, 0))
	r := Route{Waypoints: []int{0, 1}, Width: 50}
	cs, _ := r.Conduits(city)
	if !Contains(cs, geo.Pt(100, 20)) {
		t.Error("point inside conduit rejected")
	}
	if Contains(cs, geo.Pt(100, 120)) {
		t.Error("point outside conduit accepted")
	}
	if Contains(nil, geo.Pt(0, 0)) {
		t.Error("no conduits should contain nothing")
	}
}

func TestRouteLength(t *testing.T) {
	city := lineCity(geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(100, 50))
	r := Route{Waypoints: []int{0, 1, 2}, Width: 50}
	if l := r.Length(city); l != 150 {
		t.Errorf("Length = %v", l)
	}
}

// planToCity converts a citygen plan directly to an osm.City.
func planToCity(p *citygen.Plan) *osm.City {
	city := &osm.City{Name: p.Spec.Name, Bounds: p.Bounds}
	for i, b := range p.Buildings {
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: b.Footprint, Centroid: b.Footprint.Centroid(),
		})
	}
	return city
}

func BenchmarkCompress(b *testing.B) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(33))
	if err != nil {
		b.Fatal(err)
	}
	city := planToCity(plan)
	g := buildinggraph.Build(city, buildinggraph.DefaultConfig())
	// Find one long path.
	var path []int
	rng := rand.New(rand.NewSource(6))
	for len(path) < 6 {
		p, _, err := g.ShortestPath(rng.Intn(g.NumVertices()), rng.Intn(g.NumVertices()))
		if err == nil {
			path = p
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Compress(city, path, 50)
	}
}

// TestGreedyNearBruteForceMinimality: the greedy "latest coverable end"
// selection is a heuristic — geometric conduit coverage is not
// suffix-monotone, so greedy can exceed the true minimum. Verify on short
// random routes that greedy (a) always produces a valid cover, (b) never
// beats the exhaustive minimum, and (c) stays within one waypoint of it.
func TestGreedyNearBruteForceMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		// A random wandering route of 6-9 buildings.
		nPts := 6 + rng.Intn(4)
		pts := make([]geo.Point, nPts)
		cur := geo.Pt(0, 0)
		for i := range pts {
			pts[i] = cur
			cur = cur.Add(geo.Pt(30+rng.Float64()*40, (rng.Float64()*2-1)*60))
		}
		city := lineCity(pts...)
		route := make([]int, nPts)
		for i := range route {
			route[i] = i
		}
		const width = 50
		r, err := Compress(city, route, width)
		if err != nil {
			t.Fatal(err)
		}

		wps := r.Waypoints
		if !coversAll(city, route, wps, width) {
			t.Fatalf("greedy produced a non-covering compression: %v", wps)
		}
		best := bruteForceMin(city, route, width)
		if len(wps) < best {
			t.Fatalf("greedy %d waypoints beats exhaustive minimum %d — brute force is wrong",
				len(wps), best)
		}
		if len(wps) > best+1 {
			t.Fatalf("greedy %d waypoints, exhaustive minimum %d (route %v)",
				len(wps), best, pts)
		}
	}
}

// bruteForceMin finds the minimum covering waypoint count by enumerating
// subsets of interior route indices.
func bruteForceMin(city *osm.City, route []int, width float64) int {
	n := len(route)
	interior := n - 2
	for size := 0; size <= interior; size++ {
		// All interior subsets of the given size.
		idx := make([]int, size)
		var try func(pos, start int) bool
		try = func(pos, start int) bool {
			if pos == size {
				wps := []int{route[0]}
				for _, i := range idx {
					wps = append(wps, route[i])
				}
				wps = append(wps, route[n-1])
				return coversAll(city, route, wps, width)
			}
			for i := start; i < n-1; i++ {
				idx[pos] = i
				if try(pos+1, i+1) {
					return true
				}
			}
			return false
		}
		if try(0, 1) {
			return size + 2
		}
	}
	return n
}

// coversAll reports whether the conduits defined by wps cover every route
// building centroid.
func coversAll(city *osm.City, route []int, wps []int, width float64) bool {
	cs, err := (Route{Waypoints: wps, Width: width}).Conduits(city)
	if err != nil {
		return false
	}
	for _, b := range route {
		if !Contains(cs, city.Buildings[b].Centroid) {
			return false
		}
	}
	return true
}
