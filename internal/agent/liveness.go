package agent

import (
	"time"

	"citymesh/internal/packet"
)

// Liveness. A deployed mesh loses nodes to power failure and gains them
// back on reboot — churn, not link loss, is the dominant failure mode in
// the deployment the paper targets. Each agent therefore broadcasts a tiny
// fixed-size HELLO beacon on a timer; receivers maintain a bounded
// last-seen table (surfaced in Stats.Neighbors) from which an operator —
// or a watchdog — can tell a silent radio from a dead neighbor.

// DefaultBeaconInterval is the default HELLO period. At ~21 bytes per
// beacon the steady-state cost is noise even on the paper's low-bandwidth
// links.
const DefaultBeaconInterval = 5 * time.Second

// StartBeacons begins broadcasting HELLO beacons every interval until
// Close (or StopBeacons). Starting twice restarts the ticker with the new
// interval. interval <= 0 uses DefaultBeaconInterval.
func (a *Agent) StartBeacons(interval time.Duration) {
	if interval <= 0 {
		interval = DefaultBeaconInterval
	}
	a.StopBeacons()
	stop := make(chan struct{})
	a.mu.Lock()
	a.beaconStop = stop
	a.mu.Unlock()
	a.beaconWG.Add(1)
	go a.beaconLoop(interval, stop)
}

// StopBeacons halts beacon broadcast; safe to call when none are running.
func (a *Agent) StopBeacons() {
	a.mu.Lock()
	stop := a.beaconStop
	a.beaconStop = nil
	a.mu.Unlock()
	if stop != nil {
		close(stop)
		a.beaconWG.Wait()
	}
}

func (a *Agent) beaconLoop(interval time.Duration, stop chan struct{}) {
	defer a.beaconWG.Done()
	frame := packet.Hello{ID: uint64(a.cfg.ID), Building: int32(a.cfg.Building)}.Encode()
	t := time.NewTicker(interval)
	defer t.Stop()
	// Announce immediately so a rebooted agent reappears in neighbor
	// tables within one receive, not one interval.
	a.sendBeacon(frame)
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			a.sendBeacon(frame)
		}
	}
}

func (a *Agent) sendBeacon(frame []byte) {
	tr := a.transport()
	if tr == nil {
		return
	}
	if err := tr.Broadcast(frame); err == nil {
		a.mu.Lock()
		a.stats.HellosSent++
		a.mu.Unlock()
	}
}
