package agent

import (
	"fmt"
	"testing"
	"time"
)

func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	b := tokenBucket{tokens: 2, last: now, rate: 10, burst: 2}
	if !b.allow(now, 1) || !b.allow(now, 1) {
		t.Fatal("burst tokens refused")
	}
	if b.allow(now, 1) {
		t.Fatal("empty bucket allowed")
	}
	// 100 ms at 10/s refills one token.
	now = now.Add(100 * time.Millisecond)
	if !b.allow(now, 1) {
		t.Fatal("refilled token refused")
	}
	if b.allow(now, 1) {
		t.Fatal("over-refilled")
	}
	// Refill never exceeds burst.
	now = now.Add(time.Hour)
	if !b.allow(now, 2) {
		t.Fatal("burst after idle refused")
	}
	if b.allow(now, 1) {
		t.Fatal("bucket exceeded burst after idle")
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	b := tokenBucket{rate: 0}
	for i := 0; i < 100; i++ {
		if !b.allow(time.Unix(0, 0), 1e9) {
			t.Fatal("disabled bucket refused")
		}
	}
}

func TestLimiterPerSourceIsolation(t *testing.T) {
	now := time.Unix(2000, 0)
	l := newLimiter(10, 10, 0, 0, 0)
	// Source A exhausts its bucket; source B is unaffected.
	for i := 0; i < 10; i++ {
		if !l.allowSource("a", now) {
			t.Fatalf("a refused at frame %d", i)
		}
	}
	if l.allowSource("a", now) {
		t.Fatal("a allowed past burst")
	}
	if !l.allowSource("b", now) {
		t.Fatal("b throttled by a's storm")
	}
}

func TestLimiterGlobalByteBudget(t *testing.T) {
	now := time.Unix(3000, 0)
	l := newLimiter(-1, 0, 1000, 1000, 0)
	if !l.allowBytes(800, now) {
		t.Fatal("within budget refused")
	}
	if l.allowBytes(800, now) {
		t.Fatal("over budget allowed")
	}
	now = now.Add(time.Second)
	if !l.allowBytes(800, now) {
		t.Fatal("refilled budget refused")
	}
}

func TestLimiterSourceTableBounded(t *testing.T) {
	now := time.Unix(4000, 0)
	l := newLimiter(10, 10, 0, 0, 64)
	for i := 0; i < 1000; i++ {
		l.allowSource(fmt.Sprintf("src-%d", i), now.Add(time.Duration(i)*time.Millisecond))
	}
	if n := l.sourceCount(); n > 64 {
		t.Fatalf("source table grew to %d entries, cap 64", n)
	}
	// Forged-source churn must not hand out unlimited tokens: a recycled
	// bucket still enforces its own burst.
	src := "recycled"
	allowed := 0
	tick := now.Add(2 * time.Second)
	for i := 0; i < 100; i++ {
		if l.allowSource(src, tick) {
			allowed++
		}
	}
	if allowed > 10 {
		t.Fatalf("recycled bucket allowed %d frames, burst is 10", allowed)
	}
}
