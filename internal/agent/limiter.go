package agent

import (
	"sync"
	"time"
)

// Overload protection. A deployed AP takes frames from whoever transmits;
// a single hostile or faulty neighbor replaying frames at line rate must
// degrade to bounded drops, not unbounded CPU (every accepted frame costs a
// CRC + decode + conduit test). Two budgets apply before decoding:
//
//   - a per-source token bucket (frames/sec), so one noisy neighbor cannot
//     starve the others;
//   - a global byte bucket (bytes/sec), capping the total inbound work the
//     agent will accept regardless of how many sources share the load.
//
// Both are classic token buckets with an injectable clock for deterministic
// tests. The per-source table is bounded: at capacity the stalest bucket is
// recycled, keeping memory fixed on a 32 MB router no matter how many
// source addresses an attacker forges.

// Default rate-limit parameters, sized far above legitimate mesh traffic
// (a flood wave delivers each message to a neighbor a handful of times).
const (
	DefaultNeighborRate  = 500  // frames/sec per source
	DefaultNeighborBurst = 1000 // frames of burst headroom
	DefaultMaxSources    = 1024 // distinct source buckets remembered
)

// tokenBucket is a standard leaky-bucket rate limiter.
type tokenBucket struct {
	tokens float64
	last   time.Time
	rate   float64 // tokens replenished per second; <=0 disables
	burst  float64 // bucket capacity
}

// allow consumes cost tokens if available at time now.
func (b *tokenBucket) allow(now time.Time, cost float64) bool {
	if b.rate <= 0 {
		return true
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < cost {
		return false
	}
	b.tokens -= cost
	return true
}

// limiter combines the per-source buckets with the global byte budget.
type limiter struct {
	mu         sync.Mutex
	rate       float64 // per-source frames/sec
	burst      float64
	maxSources int
	sources    map[string]*tokenBucket
	global     tokenBucket // cost = bytes
}

// newLimiter builds a limiter; rate<=0 disables per-source limiting,
// bytesPerSec<=0 disables the global budget.
func newLimiter(rate, burst, bytesPerSec, burstBytes float64, maxSources int) *limiter {
	if maxSources <= 0 {
		maxSources = DefaultMaxSources
	}
	if burst <= 0 {
		burst = 2 * rate
	}
	if burstBytes <= 0 {
		burstBytes = 2 * bytesPerSec
	}
	return &limiter{
		rate:       rate,
		burst:      burst,
		maxSources: maxSources,
		sources:    make(map[string]*tokenBucket),
		global:     tokenBucket{tokens: burstBytes, rate: bytesPerSec, burst: burstBytes},
	}
}

// allowSource charges one frame against src's bucket.
func (l *limiter) allowSource(src string, now time.Time) bool {
	if l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.sources[src]
	if b == nil {
		b = l.takeBucket(now)
		l.sources[src] = b
	}
	return b.allow(now, 1)
}

// takeBucket returns a fresh bucket, recycling the stalest one when the
// table is at capacity; called with l.mu held.
func (l *limiter) takeBucket(now time.Time) *tokenBucket {
	if len(l.sources) >= l.maxSources {
		var staleKey string
		var stale *tokenBucket
		for k, b := range l.sources {
			if stale == nil || b.last.Before(stale.last) {
				staleKey, stale = k, b
			}
		}
		delete(l.sources, staleKey)
		// A recycled bucket starts empty-handed except the burst refill,
		// which allow() grants from elapsed time; reset it explicitly so a
		// forged-source flood cannot inherit a full bucket.
		*stale = tokenBucket{tokens: l.burst, last: now, rate: l.rate, burst: l.burst}
		return stale
	}
	return &tokenBucket{tokens: l.burst, last: now, rate: l.rate, burst: l.burst}
}

// allowBytes charges n bytes against the global inbound budget.
func (l *limiter) allowBytes(n int, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.global.allow(now, float64(n))
}

// sourceCount reports how many source buckets are live (tests, status dump).
func (l *limiter) sourceCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sources)
}
