package agent

import (
	"net"
	"testing"
	"time"

	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

func TestHelloUpdatesNeighborTable(t *testing.T) {
	base := time.Unix(9000, 0)
	now := base
	a := New(Config{ID: 1, Building: -1, City: &osm.City{Name: "x"},
		Clock: func() time.Time { return now }}, nil)

	a.HandleFrameFrom("10.1.1.1:7", packet.Hello{ID: 42, Building: 5}.Encode())
	now = now.Add(10 * time.Second)
	a.HandleFrameFrom("", packet.Hello{ID: 43, Building: -1}.Encode())

	st := a.Stats()
	if st.HellosReceived != 2 {
		t.Fatalf("hellos = %d", st.HellosReceived)
	}
	if ts, ok := st.Neighbors["10.1.1.1:7"]; !ok || !ts.Equal(base) {
		t.Errorf("neighbor by src = %v, %v", ts, ok)
	}
	if _, ok := st.Neighbors["agent-43"]; !ok {
		t.Error("sourceless hello not keyed by agent ID")
	}
	// Staleness filter: only the recent neighbor within 1 minute of "now".
	live := a.NeighborsSince(time.Minute)
	if len(live) != 2 {
		t.Errorf("live neighbors = %v", live)
	}
	now = now.Add(2 * time.Minute)
	if live := a.NeighborsSince(time.Minute); len(live) != 0 {
		t.Errorf("stale neighbors still live: %v", live)
	}

	// Corrupt hello is a malformed drop, not a table update.
	bad := packet.Hello{ID: 9, Building: 1}.Encode()
	bad[2] ^= 1
	a.HandleFrameFrom("10.2.2.2:7", bad)
	st = a.Stats()
	if st.DroppedMalformed != 1 {
		t.Errorf("corrupt hello: %+v", st)
	}
	if _, ok := st.Neighbors["10.2.2.2:7"]; ok {
		t.Error("corrupt hello updated the neighbor table")
	}
}

// TestBeaconsOverUDP runs two real transports and verifies beacons flow
// and populate the peer's last-seen table.
func TestBeaconsOverUDP(t *testing.T) {
	city := &osm.City{Name: "x"}
	mk := func(id int) (*Agent, *UDPTransport) {
		a := New(Config{ID: id, Building: -1, City: city}, nil)
		tr, err := NewUDPTransport("127.0.0.1:0", a.HandleFrameFrom)
		if err != nil {
			t.Fatal(err)
		}
		a.Attach(tr)
		return a, tr
	}
	a1, t1 := mk(1)
	a2, t2 := mk(2)
	defer a1.Close()
	defer a2.Close()
	t1.SetNeighbors([]*net.UDPAddr{t2.Addr()})
	t2.SetNeighbors([]*net.UDPAddr{t1.Addr()})

	a1.StartBeacons(50 * time.Millisecond)
	a2.StartBeacons(50 * time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s1, s2 := a1.Stats(), a2.Stats()
		if s1.HellosReceived > 0 && s2.HellosReceived > 0 &&
			len(s1.Neighbors) > 0 && len(s2.Neighbors) > 0 {
			if s1.HellosSent == 0 || s2.HellosSent == 0 {
				t.Fatalf("sent counters empty: %+v %+v", s1, s2)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("beacons never crossed: a1=%+v a2=%+v", a1.Stats(), a2.Stats())
}

func TestStopBeaconsIdempotent(t *testing.T) {
	a := New(Config{ID: 1, Building: -1, City: &osm.City{Name: "x"}}, nil)
	a.StopBeacons() // never started: no-op
	a.StartBeacons(time.Hour)
	a.StartBeacons(time.Hour) // restart replaces the first loop
	a.StopBeacons()
	a.StopBeacons()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
