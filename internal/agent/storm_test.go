package agent

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

// stormAgent builds a cheap agent with an injectable clock and tight
// budgets, suitable for hostile-input tests without a city map.
func stormAgent(clock func() time.Time) *Agent {
	return New(Config{
		ID:                 1,
		Building:           -1,
		City:               &osm.City{Name: "storm"},
		DedupCap:           256,
		NeighborRate:       50,
		NeighborBurst:      50,
		InboundBytesPerSec: 64 << 10,
		InboundBurstBytes:  64 << 10,
		Clock:              clock,
	}, nil)
}

// TestMalformedFrameStorm is the acceptance scenario: a storm of garbage,
// truncated, oversized and duplicate frames from many (mostly forged)
// sources. The agent must never panic, must account every frame in a
// per-cause counter, and must hold bounded memory.
func TestMalformedFrameStorm(t *testing.T) {
	now := time.Unix(5000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	a := stormAgent(clock)

	rng := rand.New(rand.NewSource(42))
	valid, err := (&packet.Packet{
		Header: packet.Header{
			TTL:       8,
			MsgID:     777,
			Waypoints: []uint32{1, 2, 3},
		},
		Payload: []byte("legit"),
	}).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}

	const frames = 20000
	for i := 0; i < frames; i++ {
		src := fmt.Sprintf("10.0.%d.%d:9999", rng.Intn(64), rng.Intn(256))
		switch i % 4 {
		case 0: // random garbage
			b := make([]byte, rng.Intn(64))
			rng.Read(b)
			a.HandleFrameFrom(src, b)
		case 1: // bit-flipped valid frame
			b := append([]byte(nil), valid...)
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
			a.HandleFrameFrom(src, b)
		case 2: // oversized frame
			a.HandleFrameFrom(src, make([]byte, packet.MaxFrameLen+1))
		case 3: // replayed valid frame (duplicate after the first)
			a.HandleFrameFrom(src, valid)
		}
		if i%100 == 0 {
			mu.Lock()
			now = now.Add(10 * time.Millisecond)
			mu.Unlock()
		}
	}

	st := a.Stats()
	if st.PanicsRecovered != 0 {
		t.Errorf("handler panicked %d times during the storm", st.PanicsRecovered)
	}
	// Every frame is accounted: received (first valid + duplicates that
	// passed the limiter) or dropped with a cause.
	accounted := st.Received + st.Dropped
	if accounted != frames {
		t.Errorf("accounted %d of %d frames (stats %+v)", accounted, frames, st)
	}
	if st.Dropped != st.DroppedMalformed+st.DroppedOversized+st.DroppedRateLimited+
		st.DroppedReplayed+st.DroppedTampered {
		t.Errorf("per-cause drops do not sum to Dropped: %+v", st)
	}
	if st.DroppedMalformed == 0 || st.DroppedOversized == 0 || st.DroppedRateLimited == 0 {
		t.Errorf("storm should hit every drop cause: %+v", st)
	}
	if st.DroppedReplayed == 0 {
		t.Errorf("repeated (source, msg) frames not classified as replays: %+v", st)
	}
	if st.Duplicates == 0 {
		t.Errorf("flood-overlap duplicates not recorded: %+v", st)
	}

	// Bounded memory: every adversary-controlled table respects its cap.
	a.mu.Lock()
	dedupLen := a.seen.len()
	pairLen := a.pairSeen.len()
	neighborLen := len(a.neighbors)
	a.mu.Unlock()
	if dedupLen > 256 {
		t.Errorf("dedup cache grew to %d entries, cap 256", dedupLen)
	}
	if pairLen > 256 {
		t.Errorf("replay pair-set grew to %d entries, cap 256", pairLen)
	}
	if neighborLen > maxNeighborEntries {
		t.Errorf("neighbor table grew to %d entries, cap %d", neighborLen, maxNeighborEntries)
	}
	if n := a.limiter.sourceCount(); n > DefaultMaxSources {
		t.Errorf("limiter tracks %d sources, cap %d", n, DefaultMaxSources)
	}
}

// TestRateLimiterShedsBeforeDecode verifies a single-source flood degrades
// to rate-limited drops (cheap) rather than malformed drops (which would
// mean we paid for a decode).
func TestRateLimiterShedsBeforeDecode(t *testing.T) {
	now := time.Unix(6000, 0)
	a := stormAgent(func() time.Time { return now })
	garbage := []byte("??????")
	for i := 0; i < 1000; i++ {
		a.HandleFrameFrom("1.2.3.4:5", garbage)
	}
	st := a.Stats()
	if st.Dropped != 1000 {
		t.Fatalf("dropped %d of 1000", st.Dropped)
	}
	// First 50 (the burst) reach the decoder and fail as malformed; the
	// rest must be shed by the limiter without decoding.
	if st.DroppedMalformed != 50 || st.DroppedRateLimited != 950 {
		t.Errorf("malformed=%d rateLimited=%d, want 50/950", st.DroppedMalformed, st.DroppedRateLimited)
	}
}

// TestUnidentifiedSourceSkipsPerSourceLimit pins the in-process hub
// behavior: frames without a source are not per-source limited (the hub is
// trusted), only the global byte budget applies.
func TestUnidentifiedSourceSkipsPerSourceLimit(t *testing.T) {
	now := time.Unix(7000, 0)
	a := New(Config{ID: 1, Building: -1, City: &osm.City{Name: "x"},
		NeighborRate: 1, NeighborBurst: 1, Clock: func() time.Time { return now }}, nil)
	for i := 0; i < 100; i++ {
		a.HandleFrame([]byte("junk"))
	}
	if st := a.Stats(); st.DroppedRateLimited != 0 || st.DroppedMalformed != 100 {
		t.Errorf("stats = %+v", st)
	}
}

// TestHandleFramePanicRecovered proves the supervisor contract: a panic in
// the delivery callback is absorbed and counted, and the agent keeps
// serving afterwards.
func TestHandleFramePanicRecovered(t *testing.T) {
	n := testNetwork(t, 98)
	pkt := reachablePacket(t, n, 7)
	dst := pkt.Header.Dst()
	ap := n.Mesh.APsInBuilding(dst)
	if len(ap) == 0 {
		t.Skip("no AP in destination building")
	}
	cfg := Config{ID: 0, Building: dst, City: n.City,
		Pos: n.City.Buildings[dst].Centroid}
	a := New(cfg, nil)
	a.OnDeliver(func(*packet.Packet) { panic("hostile callback") })
	frame, err := pkt.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	a.HandleFrameFrom("9.9.9.9:1", frame)
	st := a.Stats()
	if st.PanicsRecovered != 1 {
		t.Fatalf("panic not recovered: %+v", st)
	}
	// Agent still processes frames after the panic.
	a.HandleFrameFrom("9.9.9.9:1", []byte("junk"))
	if st := a.Stats(); st.DroppedMalformed != 1 {
		t.Errorf("agent dead after recovered panic: %+v", st)
	}
}
