package agent

import "testing"

func TestDedupSetDetectsDuplicates(t *testing.T) {
	d := newDedupSet(8)
	if d.insert(42) {
		t.Error("first insert must not be a duplicate")
	}
	if !d.insert(42) {
		t.Error("second insert must be a duplicate")
	}
	if d.len() != 1 {
		t.Errorf("len = %d, want 1", d.len())
	}
}

func TestDedupSetEvictsOldestFirst(t *testing.T) {
	d := newDedupSet(4)
	for id := uint64(0); id < 4; id++ {
		d.insert(id)
	}
	// Inserting a 5th evicts id 0 (FIFO), nothing else.
	d.insert(100)
	if d.len() != 4 {
		t.Fatalf("len = %d, want capacity 4", d.len())
	}
	if !d.insert(1) || !d.insert(2) || !d.insert(3) {
		t.Error("recent ids must survive the eviction")
	}
	if d.insert(0) {
		t.Error("id 0 should have been evicted, but was still seen")
	}
}

func TestDedupSetStaysBounded(t *testing.T) {
	const capacity = 64
	d := newDedupSet(capacity)
	for id := uint64(0); id < 10*capacity; id++ {
		d.insert(id)
		if d.len() > capacity {
			t.Fatalf("cache grew to %d past capacity %d", d.len(), capacity)
		}
		if len(d.ring) > capacity {
			t.Fatalf("ring grew to %d past capacity %d", len(d.ring), capacity)
		}
	}
	if d.len() != capacity {
		t.Errorf("steady-state len = %d, want %d", d.len(), capacity)
	}
	// The newest window is exactly what survives.
	for id := uint64(10*capacity - capacity); id < 10*capacity; id++ {
		if !d.insert(id) {
			t.Fatalf("id %d from the newest window was evicted", id)
		}
	}
}

func TestDedupSetZeroCapUsesDefault(t *testing.T) {
	d := newDedupSet(0)
	if d.cap != DefaultDedupCap {
		t.Errorf("cap = %d, want default %d", d.cap, DefaultDedupCap)
	}
}

func TestAgentDedupConfigurable(t *testing.T) {
	// A tiny cache: after capacity distinct messages, the first message is
	// forgotten and counted as fresh again.
	a := New(Config{ID: 1, Building: -1, DedupCap: 2}, nil)
	if a.seen.cap != 2 {
		t.Fatalf("agent cache cap = %d, want 2", a.seen.cap)
	}
	a.seen.insert(1)
	a.seen.insert(2)
	a.seen.insert(3) // evicts 1
	if a.seen.insert(1) {
		t.Error("evicted message should be treated as fresh")
	}
}
