package agent

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

// TestStatsRaceFree hammers HandleFrameFrom, Stats, NeighborsSince and
// beacon start/stop from many goroutines. It asserts nothing beyond "the
// race detector stays quiet and counters stay coherent" — run it with
// go test -race (CI does).
func TestStatsRaceFree(t *testing.T) {
	a := New(Config{
		ID:                 1,
		Building:           -1,
		City:               &osm.City{Name: "race"},
		NeighborRate:       -1, // unlimited: maximize concurrent traffic
		InboundBytesPerSec: 0,
	}, nil)

	valid, err := (&packet.Packet{
		Header:  packet.Header{TTL: 4, MsgID: 99, Waypoints: []uint32{1, 2}},
		Payload: []byte("race"),
	}).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	hello := packet.Hello{ID: 7, Building: 3}.Encode()

	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := fmt.Sprintf("10.0.0.%d:1", w)
			for i := 0; i < perWorker; i++ {
				switch i % 4 {
				case 0:
					a.HandleFrameFrom(src, valid)
				case 1:
					a.HandleFrameFrom(src, []byte("garbage frame"))
				case 2:
					a.HandleFrameFrom(src, hello)
				case 3:
					p := &packet.Packet{
						Header:  packet.Header{TTL: 4, MsgID: uint64(w*perWorker + i), Waypoints: []uint32{1, 2}},
						Payload: []byte("unique"),
					}
					f, _ := p.Encode(nil)
					a.HandleFrameFrom(src, f)
				}
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st := a.Stats()
				_ = st.Neighbors["10.0.0.1:1"]
				a.NeighborsSince(time.Minute)
			}
		}()
	}
	wg.Wait()

	st := a.Stats()
	frames := workers * perWorker
	if got := st.Received + st.Dropped + st.HellosReceived; got != frames {
		t.Errorf("accounted %d of %d frames: %+v", got, frames, st)
	}
	if st.DroppedMalformed != workers*perWorker/4 {
		t.Errorf("malformed = %d, want %d", st.DroppedMalformed, workers*perWorker/4)
	}
	if st.PanicsRecovered != 0 {
		t.Errorf("panics during race test: %d", st.PanicsRecovered)
	}
}
