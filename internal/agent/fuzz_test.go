package agent

import (
	"testing"
	"time"

	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

// FuzzHandleFrame drives the full untrusted-input path — hello dispatch,
// rate limiter, decode, dedup, conduit test — with arbitrary frames from
// arbitrary sources. The agent must absorb everything: no panic escapes
// (recovered ones count in stats and fail the test to surface the bug),
// and every frame lands in exactly one counter.
func FuzzHandleFrame(f *testing.F) {
	valid, err := (&packet.Packet{
		Header:  packet.Header{TTL: 8, MsgID: 12345, Waypoints: []uint32{3, 9, 27}},
		Payload: []byte("seed payload"),
	}).Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	pb := &packet.Packet{
		Header:  packet.Header{Flags: packet.FlagPostbox | packet.FlagUrgent, TTL: 2, MsgID: 9, Waypoints: []uint32{1, 4}},
		Payload: []byte("sealed"),
	}
	pbWire, _ := pb.Encode(nil)
	f.Add("1.2.3.4:5", valid)
	f.Add("", pbWire)
	f.Add("x", packet.Hello{ID: 1, Building: 2}.Encode())
	f.Add("1.2.3.4:5", []byte{packet.HelloMagic, 0, 1})
	f.Add("", []byte{})

	f.Fuzz(func(t *testing.T, src string, frame []byte) {
		now := time.Unix(10000, 0)
		a := New(Config{
			ID: 1, Building: 4, City: &osm.City{Name: "fuzz"},
			NeighborRate: -1,
			Clock:        func() time.Time { return now },
		}, nil)
		a.HandleFrameFrom(src, frame)
		a.HandleFrameFrom(src, frame) // replay: exercises dedup
		st := a.Stats()
		if st.PanicsRecovered != 0 {
			t.Fatalf("frame handler panicked on %d-byte frame from %q", len(frame), src)
		}
		if got := st.Received + st.Dropped + st.HellosReceived; got != 2 {
			t.Fatalf("frame accounting: %d of 2 (stats %+v)", got, st)
		}
	})
}
