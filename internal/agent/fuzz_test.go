package agent

import (
	"testing"
	"time"

	"citymesh/internal/geo"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

// FuzzHandleFrame drives the full untrusted-input path — hello dispatch,
// rate limiter, decode, dedup, conduit test — with arbitrary frames from
// arbitrary sources. The agent must absorb everything: no panic escapes
// (recovered ones count in stats and fail the test to surface the bug),
// and every frame lands in exactly one counter.
func FuzzHandleFrame(f *testing.F) {
	valid, err := (&packet.Packet{
		Header:  packet.Header{TTL: 8, MsgID: 12345, Waypoints: []uint32{3, 9, 27}},
		Payload: []byte("seed payload"),
	}).Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	pb := &packet.Packet{
		Header:  packet.Header{Flags: packet.FlagPostbox | packet.FlagUrgent, TTL: 2, MsgID: 9, Waypoints: []uint32{1, 4}},
		Payload: []byte("sealed"),
	}
	pbWire, _ := pb.Encode(nil)
	f.Add("1.2.3.4:5", valid)
	f.Add("", pbWire)
	f.Add("x", packet.Hello{ID: 1, Building: 2}.Encode())
	f.Add("1.2.3.4:5", []byte{packet.HelloMagic, 0, 1})
	f.Add("", []byte{})

	f.Fuzz(func(t *testing.T, src string, frame []byte) {
		now := time.Unix(10000, 0)
		a := New(Config{
			ID: 1, Building: 4, City: &osm.City{Name: "fuzz"},
			NeighborRate: -1,
			Clock:        func() time.Time { return now },
		}, nil)
		a.HandleFrameFrom(src, frame)
		a.HandleFrameFrom(src, frame) // replay: exercises dedup
		st := a.Stats()
		if st.PanicsRecovered != 0 {
			t.Fatalf("frame handler panicked on %d-byte frame from %q", len(frame), src)
		}
		if got := st.Received + st.Dropped + st.HellosReceived; got != 2 {
			t.Fatalf("frame accounting: %d of 2 (stats %+v)", got, st)
		}
	})
}

// fuzzCity is a small real map so the strict conduit sanity check has
// buildings to validate waypoints against.
func fuzzCity() *osm.City {
	city := &osm.City{Name: "fuzz-adv"}
	for i := 0; i < 4; i++ {
		c := geo.Pt(float64(i)*60, 0)
		fp := geo.Polygon{
			c.Add(geo.Pt(-5, -5)), c.Add(geo.Pt(5, -5)),
			c.Add(geo.Pt(5, 5)), c.Add(geo.Pt(-5, 5)),
		}
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding, Footprint: fp, Centroid: c,
		})
	}
	return city
}

// FuzzAdversarialFrame drives the Byzantine defense stack specifically: a
// hardened agent (MaxTTL, strict conduit sanity, per-pair replay detection)
// receives attacker-shaped frames — inflated TTLs, out-of-map waypoints,
// bit flips, exact replays. Invariants: no panic escapes, every frame lands
// in exactly one counter, the per-cause breakdown partitions Dropped, a
// TTL past the network maximum is never accepted, and a replayed accepted
// frame from an identified source is always attributed to DroppedReplayed.
func FuzzAdversarialFrame(f *testing.F) {
	f.Add("peer", uint8(8), uint64(1), uint32(1), -1, []byte("honest"))
	f.Add("peer", uint8(200), uint64(2), uint32(2), -1, []byte("ttl-inflated"))
	f.Add("", uint8(4), uint64(3), uint32(1<<20), -1, []byte("bad-conduit"))
	f.Add("liar", uint8(16), uint64(4), uint32(0), 5, []byte("bitflip"))
	f.Fuzz(func(t *testing.T, src string, ttl uint8, msgID uint64, wp uint32, flip int, payload []byte) {
		const maxTTL = 64
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		wire, err := (&packet.Packet{
			Header:  packet.Header{TTL: ttl, MsgID: msgID, Waypoints: []uint32{0, wp}},
			Payload: payload,
		}).Encode(nil)
		if err != nil {
			t.Skip("unencodable input")
		}
		if flip >= 0 && len(wire) > 0 {
			wire[flip%len(wire)] ^= 0x01
		}
		now := time.Unix(20000, 0)
		a := New(Config{
			ID: 1, Building: 0, City: fuzzCity(),
			MaxTTL: maxTTL, StrictSanity: true, NeighborRate: -1,
			Clock: func() time.Time { return now },
		}, nil)
		a.HandleFrameFrom(src, wire)
		first := a.Stats()
		a.HandleFrameFrom(src, wire)
		st := a.Stats()
		if st.PanicsRecovered != 0 {
			t.Fatalf("defense stack panicked (src %q ttl %d wp %d flip %d)", src, ttl, wp, flip)
		}
		if got := st.Received + st.Dropped + st.HellosReceived; got != 2 {
			t.Fatalf("frame accounting: %d of 2 (stats %+v)", got, st)
		}
		perCause := st.DroppedMalformed + st.DroppedOversized + st.DroppedRateLimited +
			st.DroppedReplayed + st.DroppedTampered
		if perCause != st.Dropped {
			t.Fatalf("per-cause drops %d do not partition Dropped %d (stats %+v)", perCause, st.Dropped, st)
		}
		if flip < 0 && ttl > maxTTL && st.Received != 0 {
			t.Fatalf("TTL %d past the network maximum %d was accepted", ttl, maxTTL)
		}
		if first.DroppedTampered == 1 && st.DroppedTampered != 2 {
			t.Fatalf("sanity rejection not deterministic: first %d, total %d", first.DroppedTampered, st.DroppedTampered)
		}
		if first.Received == 1 {
			if src != "" && st.DroppedReplayed != 1 {
				t.Fatalf("replayed accepted frame from %q not attributed (stats %+v)", src, st)
			}
			if src == "" && st.Duplicates != 1 {
				t.Fatalf("anonymous duplicate not suppressed (stats %+v)", st)
			}
		}
	})
}
