// Package agent implements the "small software agent" the paper proposes
// running on each Wi-Fi AP (§3): receive a CityMesh frame, suppress
// duplicates, rebroadcast if and only if the AP lies inside a conduit
// reconstructed from the packet header, and store messages addressed to
// postboxes this AP hosts.
//
// An Agent is transport-agnostic: the in-process transport wires agents
// together with the mesh adjacency for tests, and the UDP transport runs
// real sockets on localhost — the repository's small-scale stand-in for the
// paper's proposed OpenWrt deployment.
package agent

import (
	"fmt"
	"sync"

	"citymesh/internal/conduit"
	"citymesh/internal/geo"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/postbox"
)

// Transport delivers encoded frames from this agent to its radio neighbors.
// Implementations must be safe for concurrent Broadcast calls.
type Transport interface {
	// Broadcast sends the frame to every neighbor.
	Broadcast(frame []byte) error
	// Close releases transport resources.
	Close() error
}

// Config describes one AP agent.
type Config struct {
	// ID is the agent's identifier (diagnostics only).
	ID int
	// Pos is the AP's location; the conduit test runs against it.
	Pos geo.Point
	// Building is the dense building index hosting this AP, or -1 for a
	// relay AP outside any building.
	Building int
	// City is the agent's cached building map.
	City *osm.City
	// DedupCap bounds the duplicate-suppression cache (number of message
	// IDs remembered); 0 means DefaultDedupCap. APs run for months on
	// 32 MB routers — the cache must not grow with traffic.
	DedupCap int
}

// DefaultDedupCap is the default dedup cache bound: 64k message IDs is
// ~1.5 MB of state, hours of city-scale traffic, yet fixed-size.
const DefaultDedupCap = 64 << 10

// dedupSet is a FIFO-evicting set of message IDs. Oldest entries are
// forgotten first once the capacity is reached, which matches the traffic
// pattern: a duplicate of a message arrives within its flood wave, not
// hours later.
type dedupSet struct {
	cap  int
	set  map[uint64]struct{}
	ring []uint64
	next int // ring slot the next insertion overwrites
}

func newDedupSet(capacity int) *dedupSet {
	if capacity <= 0 {
		capacity = DefaultDedupCap
	}
	return &dedupSet{
		cap: capacity,
		set: make(map[uint64]struct{}, capacity),
	}
}

// insert adds id and reports whether it was already present.
func (d *dedupSet) insert(id uint64) (dup bool) {
	if _, ok := d.set[id]; ok {
		return true
	}
	if len(d.ring) < d.cap {
		d.ring = append(d.ring, id)
	} else {
		delete(d.set, d.ring[d.next])
		d.ring[d.next] = id
		d.next = (d.next + 1) % d.cap
	}
	d.set[id] = struct{}{}
	return false
}

func (d *dedupSet) len() int { return len(d.set) }

// Stats counts an agent's activity.
type Stats struct {
	Received    int
	Duplicates  int
	Rebroadcast int
	Stored      int
	Dropped     int
}

// Agent is one AP's CityMesh runtime.
type Agent struct {
	cfg   Config
	tr    Transport
	store *postbox.Store

	mu    sync.Mutex
	seen  *dedupSet
	stats Stats
	// onDeliver fires when a packet for this agent's building arrives.
	onDeliver func(*packet.Packet)
}

// New creates an agent. The transport may be nil until Attach.
func New(cfg Config, tr Transport) *Agent {
	return &Agent{
		cfg:   cfg,
		tr:    tr,
		store: postbox.NewStore(),
		seen:  newDedupSet(cfg.DedupCap),
	}
}

// Attach sets the transport after construction (the in-process hub needs
// the agent before it can build the transport).
func (a *Agent) Attach(tr Transport) {
	a.mu.Lock()
	a.tr = tr
	a.mu.Unlock()
}

// transport snapshots the transport under the lock.
func (a *Agent) transport() Transport {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tr
}

// Store exposes the agent's postbox store.
func (a *Agent) Store() *postbox.Store { return a.store }

// OnDeliver registers a delivery callback, invoked (synchronously, off the
// agent lock) whenever a packet destined to this agent's building arrives.
func (a *Agent) OnDeliver(fn func(*packet.Packet)) {
	a.mu.Lock()
	a.onDeliver = fn
	a.mu.Unlock()
}

// Stats returns a snapshot of the agent's counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ID returns the agent's identifier.
func (a *Agent) ID() int { return a.cfg.ID }

// Inject submits a locally originated packet to the network: the paper's
// step where Alice's device hands the message to the AP it associates with.
// The injecting AP always transmits.
func (a *Agent) Inject(pkt *packet.Packet) error {
	frame, err := pkt.Encode(nil)
	if err != nil {
		return fmt.Errorf("agent %d: inject: %w", a.cfg.ID, err)
	}
	a.mu.Lock()
	a.seen.insert(pkt.Header.MsgID)
	a.stats.Rebroadcast++
	a.mu.Unlock()
	a.maybeDeliver(pkt)
	tr := a.transport()
	if tr == nil {
		return fmt.Errorf("agent %d: no transport", a.cfg.ID)
	}
	return tr.Broadcast(frame)
}

// HandleFrame processes one received frame: decode, dedup, deliver or
// store, and rebroadcast when inside the conduit. It is the Transport's
// receive callback.
func (a *Agent) HandleFrame(frame []byte) {
	pkt, err := packet.Decode(frame)
	if err != nil {
		a.mu.Lock()
		a.stats.Dropped++
		a.mu.Unlock()
		return
	}
	a.mu.Lock()
	a.stats.Received++
	if a.seen.insert(pkt.Header.MsgID) {
		a.stats.Duplicates++
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()

	a.maybeDeliver(pkt)

	if pkt.Header.TTL <= 1 {
		return
	}
	if !a.insideConduit(pkt) {
		return
	}
	fwd := pkt.Clone()
	fwd.Header.TTL--
	out, err := fwd.Encode(nil)
	if err != nil {
		return
	}
	a.mu.Lock()
	a.stats.Rebroadcast++
	tr := a.tr
	a.mu.Unlock()
	if tr != nil {
		_ = tr.Broadcast(out)
	}
}

// maybeDeliver stores the payload if the packet is addressed to this
// agent's building.
func (a *Agent) maybeDeliver(pkt *packet.Packet) {
	if a.cfg.Building < 0 || pkt.Header.Dst() != a.cfg.Building {
		return
	}
	a.mu.Lock()
	cb := a.onDeliver
	if pkt.Header.Flags&packet.FlagPostbox != 0 {
		var addr postbox.Address
		copy(addr[:], pkt.Header.Postbox[:])
		urgent := pkt.Header.Flags&packet.FlagUrgent != 0
		a.mu.Unlock()
		a.store.Put(addr, pkt.Payload, urgent)
		a.mu.Lock()
		a.stats.Stored++
	}
	a.mu.Unlock()
	if cb != nil {
		cb(pkt)
	}
}

// insideConduit evaluates the paper's stateless rebroadcast predicate: the
// agent's building must fall within a conduit (all APs of an in-conduit
// building rebroadcast, §4); relay agents outside any building use their
// own position.
func (a *Agent) insideConduit(pkt *packet.Packet) bool {
	wps := make([]int, len(pkt.Header.Waypoints))
	for i, w := range pkt.Header.Waypoints {
		wps[i] = int(w)
	}
	r := conduit.Route{Waypoints: wps, Width: pkt.Header.WidthMeters()}
	cs, err := r.Conduits(a.cfg.City)
	if err != nil {
		return false
	}
	pos := a.cfg.Pos
	if b := a.cfg.Building; b >= 0 && b < a.cfg.City.NumBuildings() {
		pos = a.cfg.City.Buildings[b].Centroid
	}
	return conduit.Contains(cs, pos)
}

// Close shuts the transport down.
func (a *Agent) Close() error {
	tr := a.transport()
	if tr == nil {
		return nil
	}
	return tr.Close()
}

// Building returns the agent's building index.
func (a *Agent) Building() int { return a.cfg.Building }

// Pos returns the agent's location.
func (a *Agent) Pos() geo.Point { return a.cfg.Pos }
