// Package agent implements the "small software agent" the paper proposes
// running on each Wi-Fi AP (§3): receive a CityMesh frame, suppress
// duplicates, rebroadcast if and only if the AP lies inside a conduit
// reconstructed from the packet header, and store messages addressed to
// postboxes this AP hosts.
//
// An Agent is transport-agnostic: the in-process transport wires agents
// together with the mesh adjacency for tests, and the UDP transport runs
// real sockets on localhost — the repository's small-scale stand-in for the
// paper's proposed OpenWrt deployment.
package agent

import (
	"fmt"
	"sync"
	"time"

	"citymesh/internal/fwd"
	"citymesh/internal/geo"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/postbox"
)

// Transport delivers encoded frames from this agent to its radio neighbors.
// Implementations must be safe for concurrent Broadcast calls.
type Transport interface {
	// Broadcast sends the frame to every neighbor.
	Broadcast(frame []byte) error
	// Close releases transport resources.
	Close() error
}

// Config describes one AP agent.
type Config struct {
	// ID is the agent's identifier (diagnostics only).
	ID int
	// Pos is the AP's location; the conduit test runs against it.
	Pos geo.Point
	// Building is the dense building index hosting this AP, or -1 for a
	// relay AP outside any building.
	Building int
	// City is the agent's cached building map.
	City *osm.City
	// DedupCap bounds the duplicate-suppression cache (number of message
	// IDs remembered); 0 means DefaultDedupCap. APs run for months on
	// 32 MB routers — the cache must not grow with traffic.
	DedupCap int
	// ConduitCacheCap bounds the forwarding kernel's per-message conduit
	// cache; 0 means fwd.DefaultCacheCap, negative disables caching (every
	// frame reconstructs its conduits).
	ConduitCacheCap int
	// Store optionally supplies the postbox store (e.g. one opened with
	// postbox.OpenDir for crash-safe persistence); nil creates a fresh
	// in-memory store.
	Store *postbox.Store
	// NeighborRate limits frames/sec accepted per identified source
	// (frames arriving via HandleFrameFrom with a non-empty src). 0 means
	// DefaultNeighborRate; negative disables per-source limiting.
	NeighborRate float64
	// NeighborBurst is the per-source burst allowance; 0 derives 2x rate.
	NeighborBurst float64
	// InboundBytesPerSec caps the agent's total inbound byte budget across
	// all sources; 0 disables the global budget.
	InboundBytesPerSec float64
	// InboundBurstBytes is the global budget's burst; 0 derives 2x rate.
	InboundBurstBytes float64
	// MaxTTL, when non-zero, rejects frames whose as-received TTL exceeds
	// it (fwd.ReasonTTLInflated — a Byzantine TTL-resetter upstream). Set
	// it to the deployment's network TTL.
	MaxTTL uint8
	// StrictSanity enables the kernel's cheap header-shape rejection
	// (fwd.ReasonBadConduit): waypoint indices no honest sender can
	// produce against this agent's map drop the frame before it claims a
	// dedup slot.
	StrictSanity bool
	// Clock is injectable for deterministic rate-limit and liveness tests;
	// nil means time.Now.
	Clock func() time.Time
}

// DefaultDedupCap is the default dedup cache bound: 64k message IDs is
// ~1.5 MB of state, hours of city-scale traffic, yet fixed-size.
const DefaultDedupCap = 64 << 10

// dedupSet is a FIFO-evicting set of message IDs. Oldest entries are
// forgotten first once the capacity is reached, which matches the traffic
// pattern: a duplicate of a message arrives within its flood wave, not
// hours later.
type dedupSet struct {
	cap  int
	set  map[uint64]struct{}
	ring []uint64
	next int // ring slot the next insertion overwrites
}

func newDedupSet(capacity int) *dedupSet {
	if capacity <= 0 {
		capacity = DefaultDedupCap
	}
	return &dedupSet{
		cap: capacity,
		set: make(map[uint64]struct{}, capacity),
	}
}

// insert adds id and reports whether it was already present.
func (d *dedupSet) insert(id uint64) (dup bool) {
	if _, ok := d.set[id]; ok {
		return true
	}
	if len(d.ring) < d.cap {
		d.ring = append(d.ring, id)
	} else {
		delete(d.set, d.ring[d.next])
		d.ring[d.next] = id
		d.next = (d.next + 1) % d.cap
	}
	d.set[id] = struct{}{}
	return false
}

func (d *dedupSet) len() int { return len(d.set) }

// maxNeighborEntries bounds the last-seen neighbor table so forged beacon
// sources cannot grow it without bound.
const maxNeighborEntries = 1024

// Stats counts an agent's activity. Dropped is the total of the per-cause
// DroppedX counters; Duplicates and OutOfConduit are tracked separately
// because a duplicate or out-of-conduit frame is correct mesh behavior
// (flood overlap), not a defect.
type Stats struct {
	Received    int
	Duplicates  int
	Rebroadcast int
	Stored      int
	Dropped     int

	// Per-cause drop breakdown (sums to Dropped).
	DroppedMalformed   int // failed decode: bad CRC/magic/version/structure
	DroppedOversized   int // exceeded a validation budget (packet.Oversize)
	DroppedRateLimited int // per-source rate or global byte budget exceeded
	DroppedReplayed    int // same (source, message ID) pair seen before: a replay storm
	DroppedTampered    int // failed kernel sanity: inflated TTL or corrupt conduit bytes

	// OutOfConduit counts received frames not rebroadcast because this AP
	// lies outside the packet's conduit — the paper's core suppression.
	OutOfConduit int
	// Decisions is the forwarding kernel's per-reason verdict tally — the
	// same counters a sim run records in sim.Result.Decisions, so a live
	// agent's behavior is directly comparable to its simulated twin.
	Decisions fwd.Counts
	// PanicsRecovered counts frame-handler panics absorbed by the runtime
	// supervisor; any nonzero value is a bug worth a report, but it must
	// not kill a deployed agent.
	PanicsRecovered int

	// Liveness beacon activity.
	HellosSent     int
	HellosReceived int
	// Neighbors is the last-seen table built from HELLO beacons: source
	// key (transport address, or "agent-<id>" when the transport does not
	// identify sources) to the agent-clock time of the last beacon.
	Neighbors map[string]time.Time
}

// Agent is one AP's CityMesh runtime.
type Agent struct {
	cfg     Config
	tr      Transport
	store   *postbox.Store
	limiter *limiter
	clock   func() time.Time

	// kernel is the shared forwarding engine (internal/fwd) — the same
	// code path the simulator's CityMesh policy runs. The agent adds its
	// armor (rate limits, drop counters, panic recovery) around it but
	// never re-implements the conduit/TTL/deliver decision.
	kernel *fwd.Kernel
	// view is cfg.City as the kernel's map view (nil when no map was
	// configured, which the kernel treats as an unresolvable route).
	view fwd.MapView
	self fwd.Self

	mu   sync.Mutex
	seen *dedupSet
	// pairSeen remembers (source, message ID) pairs. A correct neighbor
	// broadcasts a given message at most once, so a repeat pair is a
	// replayed frame (dropped, counted per cause), while the same message
	// arriving from *different* neighbors stays a benign flood-overlap
	// duplicate. Same FIFO bound as the dedup cache.
	pairSeen  *dedupSet
	stats     Stats
	neighbors map[string]time.Time
	// onDeliver fires when a packet for this agent's building arrives.
	onDeliver func(*packet.Packet)

	beaconStop chan struct{}
	beaconWG   sync.WaitGroup
}

// New creates an agent. The transport may be nil until Attach.
func New(cfg Config, tr Transport) *Agent {
	store := cfg.Store
	if store == nil {
		store = postbox.NewStore()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	rate := cfg.NeighborRate
	if rate == 0 {
		rate = DefaultNeighborRate
	}
	burst := cfg.NeighborBurst
	if burst == 0 && rate == DefaultNeighborRate {
		burst = DefaultNeighborBurst
	}
	a := &Agent{
		cfg:     cfg,
		tr:      tr,
		store:   store,
		clock:   clock,
		limiter: newLimiter(rate, burst, cfg.InboundBytesPerSec, cfg.InboundBurstBytes, 0),
		kernel: fwd.NewKernel(fwd.Options{
			CacheCap:     cfg.ConduitCacheCap,
			MaxTTL:       cfg.MaxTTL,
			StrictSanity: cfg.StrictSanity,
		}),
		self:      fwd.Self{Pos: cfg.Pos, Building: cfg.Building},
		seen:      newDedupSet(cfg.DedupCap),
		pairSeen:  newDedupSet(cfg.DedupCap),
		neighbors: make(map[string]time.Time),
	}
	if cfg.City != nil {
		a.view = cfg.City
	}
	return a
}

// Attach sets the transport after construction (the in-process hub needs
// the agent before it can build the transport).
func (a *Agent) Attach(tr Transport) {
	a.mu.Lock()
	a.tr = tr
	a.mu.Unlock()
}

// transport snapshots the transport under the lock.
func (a *Agent) transport() Transport {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tr
}

// Store exposes the agent's postbox store.
func (a *Agent) Store() *postbox.Store { return a.store }

// OnDeliver registers a delivery callback, invoked (synchronously, off the
// agent lock) whenever a packet destined to this agent's building arrives.
func (a *Agent) OnDeliver(fn func(*packet.Packet)) {
	a.mu.Lock()
	a.onDeliver = fn
	a.mu.Unlock()
}

// Stats returns a snapshot of the agent's counters. The snapshot is a deep
// copy (including the neighbor table), so it is race-free against
// concurrent HandleFrame calls.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.Decisions = a.kernel.Counts()
	st.Neighbors = make(map[string]time.Time, len(a.neighbors))
	for k, v := range a.neighbors {
		st.Neighbors[k] = v
	}
	return st
}

// NeighborsSince returns the keys of neighbors whose last HELLO beacon is
// no older than maxAge (maxAge <= 0 returns all known neighbors).
func (a *Agent) NeighborsSince(maxAge time.Duration) []string {
	now := a.clock()
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for k, v := range a.neighbors {
		if maxAge <= 0 || now.Sub(v) <= maxAge {
			out = append(out, k)
		}
	}
	return out
}

// ID returns the agent's identifier.
func (a *Agent) ID() int { return a.cfg.ID }

// Inject submits a locally originated packet to the network: the paper's
// step where Alice's device hands the message to the AP it associates with.
// The injecting AP always transmits (the kernel's first-hop rule).
func (a *Agent) Inject(pkt *packet.Packet) error {
	frame, err := pkt.Encode(nil)
	if err != nil {
		return fmt.Errorf("agent %d: inject: %w", a.cfg.ID, err)
	}
	v := a.kernel.Decide(a.view, &pkt.Header, a.self, true)
	a.mu.Lock()
	a.seen.insert(pkt.Header.MsgID)
	a.stats.Rebroadcast++
	a.mu.Unlock()
	if v.Deliver {
		a.deliver(pkt)
	}
	tr := a.transport()
	if tr == nil {
		return fmt.Errorf("agent %d: no transport", a.cfg.ID)
	}
	return tr.Broadcast(frame)
}

// HandleFrame processes a frame from an unidentified source. Transports
// that know the sender should call HandleFrameFrom so per-source rate
// limiting applies.
func (a *Agent) HandleFrame(frame []byte) { a.HandleFrameFrom("", frame) }

// HandleFrameFrom processes one received frame: budget-check, decode,
// dedup, deliver or store, and rebroadcast when inside the conduit. It is
// the Transport's receive callback. The frame is untrusted input; every
// rejection increments a per-cause drop counter, and a panic anywhere in
// the handling path is absorbed (counted in PanicsRecovered) so a hostile
// frame can never kill the agent process.
func (a *Agent) HandleFrameFrom(src string, frame []byte) {
	defer func() {
		if r := recover(); r != nil {
			// The frame's counters stand wherever processing reached; the
			// recovery itself only records that a panic was absorbed.
			a.mu.Lock()
			a.stats.PanicsRecovered++
			a.mu.Unlock()
		}
	}()
	now := a.clock()

	// Liveness beacons bypass the packet path (and the rate limiter: they
	// are tiny, fixed-size, and the last-seen table is bounded).
	if packet.IsHello(frame) {
		hello, err := packet.DecodeHello(frame)
		if err != nil {
			a.drop(func(st *Stats) { st.DroppedMalformed++ })
			return
		}
		key := src
		if key == "" {
			key = fmt.Sprintf("agent-%d", hello.ID)
		}
		a.mu.Lock()
		a.stats.HellosReceived++
		a.noteNeighborLocked(key, now)
		a.mu.Unlock()
		return
	}

	// Frames too large to ever decode are rejected before they charge the
	// byte budget; everything else passes the overload budgets before the
	// (comparatively expensive) CRC + decode, so a frame storm costs only
	// a map lookup per drop.
	if len(frame) > packet.MaxFrameLen {
		a.drop(func(st *Stats) { st.DroppedOversized++ })
		return
	}
	if src != "" && !a.limiter.allowSource(src, now) {
		a.drop(func(st *Stats) { st.DroppedRateLimited++ })
		return
	}
	if !a.limiter.allowBytes(len(frame), now) {
		a.drop(func(st *Stats) { st.DroppedRateLimited++ })
		return
	}

	pkt, err := packet.Decode(frame)
	if err != nil {
		if packet.Oversize(err) {
			a.drop(func(st *Stats) { st.DroppedOversized++ })
		} else {
			a.drop(func(st *Stats) { st.DroppedMalformed++ })
		}
		return
	}

	// Kernel sanity runs before the frame can claim a dedup slot: a
	// corruptor must not be able to poison the dedup cache with a tampered
	// copy and thereby suppress the genuine message behind it.
	if _, ok := a.kernel.Sanity(a.view, &pkt.Header, false); !ok {
		a.drop(func(st *Stats) { st.DroppedTampered++ })
		return
	}

	a.mu.Lock()
	// A repeat (source, message ID) pair is a replay: a correct neighbor
	// broadcasts each message at most once. Checked before Received so a
	// replay storm lands entirely in the drop partition.
	if src != "" && a.pairSeen.insert(pairID(src, pkt.Header.MsgID)) {
		a.stats.Dropped++
		a.stats.DroppedReplayed++
		a.mu.Unlock()
		return
	}
	a.stats.Received++
	if src != "" {
		a.noteNeighborLocked(src, now)
	}
	if a.seen.insert(pkt.Header.MsgID) {
		a.stats.Duplicates++
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()

	// The deliver/forward verdict is the shared kernel's — the identical
	// code path the simulator's CityMesh policy evaluates — so what the
	// experiments measure is byte-for-byte what this agent executes.
	v := a.kernel.Decide(a.view, &pkt.Header, a.self, false)
	if v.Deliver {
		a.deliver(pkt)
	}
	if !v.Rebroadcast {
		if v.Reason == fwd.ReasonOutOfConduit {
			a.mu.Lock()
			a.stats.OutOfConduit++
			a.mu.Unlock()
		}
		return
	}
	next := pkt.Clone()
	next.Header.TTL--
	out, err := next.Encode(nil)
	if err != nil {
		return
	}
	a.mu.Lock()
	a.stats.Rebroadcast++
	tr := a.tr
	a.mu.Unlock()
	if tr != nil {
		_ = tr.Broadcast(out)
	}
}

// pairID folds a source key and message ID into the replay pair-set key:
// FNV-1a over the source, mixed with the golden-ratio-scrambled message ID.
// A 64-bit collision misclassifying a fresh frame as a replay is vanishingly
// rare next to radio loss.
func pairID(src string, msgID uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(src); i++ {
		h ^= uint64(src[i])
		h *= 1099511628211
	}
	return h ^ (msgID * 0x9E3779B97F4A7C15)
}

// drop records one dropped frame with its cause.
func (a *Agent) drop(cause func(*Stats)) {
	a.mu.Lock()
	a.stats.Dropped++
	cause(&a.stats)
	a.mu.Unlock()
}

// noteNeighborLocked updates the last-seen table, evicting the stalest
// entry at capacity; called with a.mu held.
func (a *Agent) noteNeighborLocked(key string, now time.Time) {
	if _, ok := a.neighbors[key]; !ok && len(a.neighbors) >= maxNeighborEntries {
		var staleKey string
		var staleAt time.Time
		first := true
		for k, v := range a.neighbors {
			if first || v.Before(staleAt) {
				staleKey, staleAt = k, v
				first = false
			}
		}
		delete(a.neighbors, staleKey)
	}
	a.neighbors[key] = now
}

// deliver hands a kernel-approved packet to the local application: the
// callback fires for every delivery (destination building or geocast
// area), while postbox storage additionally requires that the packet is
// addressed to this agent's building.
func (a *Agent) deliver(pkt *packet.Packet) {
	a.mu.Lock()
	cb := a.onDeliver
	if pkt.Header.Flags&packet.FlagPostbox != 0 &&
		a.cfg.Building >= 0 && len(pkt.Header.Waypoints) > 0 &&
		pkt.Header.Dst() == a.cfg.Building {
		var addr postbox.Address
		copy(addr[:], pkt.Header.Postbox[:])
		urgent := pkt.Header.Flags&packet.FlagUrgent != 0
		a.mu.Unlock()
		a.store.Put(addr, pkt.Payload, urgent)
		a.mu.Lock()
		a.stats.Stored++
	}
	a.mu.Unlock()
	if cb != nil {
		cb(pkt)
	}
}

// Close stops beacons and shuts the transport down. The postbox store is
// not closed: the caller that supplied it (Config.Store) owns its
// lifecycle, and the default in-memory store has nothing to release.
func (a *Agent) Close() error {
	a.StopBeacons()
	tr := a.transport()
	if tr == nil {
		return nil
	}
	return tr.Close()
}

// Building returns the agent's building index.
func (a *Agent) Building() int { return a.cfg.Building }

// Pos returns the agent's location.
func (a *Agent) Pos() geo.Point { return a.cfg.Pos }
