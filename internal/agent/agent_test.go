package agent

import (
	"crypto/rand"
	"net"
	"sync"
	"testing"
	"time"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/postbox"
	"citymesh/internal/sim"
)

func testNetwork(t testing.TB, seed int64) *core.Network {
	t.Helper()
	n, err := core.FromSpec(citygen.SmallTestSpec(seed), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// reachablePacket plans a multi-hop packet on the network, preferring a
// pair the simulator confirms deliverable so agent tests exercise a live
// route.
func reachablePacket(t testing.TB, n *core.Network, seed int64) *packet.Packet {
	t.Helper()
	var fallback *packet.Packet
	pairs, err := n.RandomPairs(seed, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if !n.Reachable(p[0], p[1]) {
			continue
		}
		res, err := n.Send(p[0], p[1], []byte("agent test payload"), sim.DefaultConfig())
		if err != nil {
			continue
		}
		if res.Sim.Delivered {
			// Re-issue with a fresh message ID so agents see a new packet.
			pkt, err := n.NewPacket(res.Route, []byte("agent test payload"))
			if err != nil {
				continue
			}
			return pkt
		}
		if fallback == nil {
			fallback = res.Packet
		}
	}
	if fallback != nil {
		return fallback
	}
	t.Skip("no routable pair")
	return nil
}

func TestHubEndToEndDelivery(t *testing.T) {
	n := testNetwork(t, 91)
	hub := NewHub(n.Mesh, n.City)
	defer hub.Close()

	pkt := reachablePacket(t, n, 1)
	dst := pkt.Header.Dst()

	var mu sync.Mutex
	deliveredTo := map[int]bool{}
	for _, apID := range n.Mesh.APsInBuilding(dst) {
		id := int(apID)
		hub.Agent(id).OnDeliver(func(p *packet.Packet) {
			mu.Lock()
			deliveredTo[id] = true
			mu.Unlock()
		})
	}

	srcAP := int(n.Mesh.APsInBuilding(pkt.Header.Src())[0])
	if err := hub.Agent(srcAP).Inject(pkt); err != nil {
		t.Fatal(err)
	}
	hub.Flush()

	mu.Lock()
	got := len(deliveredTo)
	mu.Unlock()
	if got == 0 {
		t.Fatal("packet not delivered to any destination-building agent")
	}

	// Rebroadcast counters: at least the source transmitted; duplicates
	// were suppressed (every agent forwards at most once).
	total := 0
	for i := 0; i < hub.NumAgents(); i++ {
		st := hub.Agent(i).Stats()
		if st.Rebroadcast > 1 {
			t.Fatalf("agent %d rebroadcast %d times", i, st.Rebroadcast)
		}
		total += st.Rebroadcast
	}
	if total < 2 {
		t.Errorf("only %d rebroadcasts across the mesh", total)
	}
}

func TestHubAgentStatsAndDedup(t *testing.T) {
	n := testNetwork(t, 92)
	hub := NewHub(n.Mesh, n.City)
	defer hub.Close()
	pkt := reachablePacket(t, n, 2)
	srcAP := int(n.Mesh.APsInBuilding(pkt.Header.Src())[0])
	if err := hub.Agent(srcAP).Inject(pkt); err != nil {
		t.Fatal(err)
	}
	// Injecting the same message again must not re-flood.
	if err := hub.Agent(srcAP).Inject(pkt); err != nil {
		t.Fatal(err)
	}
	hub.Flush()
	st := hub.Agent(srcAP).Stats()
	if st.Rebroadcast != 2 {
		// two Injects, both transmit (source always transmits)
		t.Errorf("source rebroadcasts = %d", st.Rebroadcast)
	}
	dupSeen := false
	for i := 0; i < hub.NumAgents(); i++ {
		if hub.Agent(i).Stats().Duplicates > 0 {
			dupSeen = true
			break
		}
	}
	if !dupSeen {
		t.Error("no duplicate receptions recorded in a broadcast mesh")
	}
}

func TestAgentPostboxStorage(t *testing.T) {
	n := testNetwork(t, 93)
	hub := NewHub(n.Mesh, n.City)
	defer hub.Close()

	bob, err := postbox.NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pkt := reachablePacket(t, n, 3)
	pkt.Header.Flags |= packet.FlagPostbox
	copy(pkt.Header.Postbox[:], bob.Address().String()[:8]) // any 8 bytes
	var addr postbox.Address
	copy(addr[:], pkt.Header.Postbox[:])

	srcAP := int(n.Mesh.APsInBuilding(pkt.Header.Src())[0])
	if err := hub.Agent(srcAP).Inject(pkt); err != nil {
		t.Fatal(err)
	}
	hub.Flush()

	stored := 0
	for _, apID := range n.Mesh.APsInBuilding(pkt.Header.Dst()) {
		stored += hub.Agent(int(apID)).Store().Len(addr)
	}
	if stored == 0 {
		t.Fatal("no destination agent stored the postbox message")
	}
}

func TestAgentDropsGarbage(t *testing.T) {
	city := &osm.City{Name: "x"}
	a := New(Config{ID: 0, Building: -1, City: city}, nil)
	a.HandleFrame([]byte("not a citymesh frame"))
	if st := a.Stats(); st.Dropped != 1 || st.Received != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAgentTTLExhaustion(t *testing.T) {
	n := testNetwork(t, 94)
	pkt := reachablePacket(t, n, 4)
	pkt.Header.TTL = 1
	frame, err := pkt.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	ap := n.Mesh.APs[0]
	a := New(Config{ID: 0, Pos: ap.Pos, Building: ap.Building, City: n.City}, nil)
	a.HandleFrame(frame)
	if st := a.Stats(); st.Rebroadcast != 0 {
		t.Errorf("TTL=1 frame forwarded: %+v", st)
	}
}

func TestInjectWithoutTransport(t *testing.T) {
	n := testNetwork(t, 95)
	pkt := reachablePacket(t, n, 5)
	a := New(Config{ID: 0, Building: -1, City: n.City}, nil)
	if err := a.Inject(pkt); err == nil {
		t.Error("inject without transport should error")
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	got := make(chan []byte, 10)
	recv, err := NewUDPTransport("127.0.0.1:0", func(_ string, f []byte) { got <- f })
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	sender, err := NewUDPTransport("127.0.0.1:0", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	sender.SetNeighbors([]*net.UDPAddr{recv.Addr()})
	if err := sender.Broadcast([]byte("hello mesh")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if string(f) != "hello mesh" {
			t.Errorf("frame = %q", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frame not received")
	}
}

func TestUDPTransportErrors(t *testing.T) {
	if _, err := NewUDPTransport("not-an-addr", nil); err == nil {
		t.Error("bad address should error")
	}
	tr, err := NewUDPTransport("127.0.0.1:0", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Broadcast(make([]byte, MaxFrameSize+1)); err == nil {
		t.Error("oversized frame should error")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
	if err := tr.Broadcast([]byte("x")); err == nil {
		t.Error("broadcast after close should error")
	}
}

func TestUDPAgentChainDelivery(t *testing.T) {
	// Three agents in a line on localhost; conduit covers all.
	n := testNetwork(t, 96)
	pkt := reachablePacket(t, n, 6)

	// Build three agents positioned along the first conduit leg.
	srcB := pkt.Header.Dst() // deliver "to" the dst building at agent 2
	city := n.City
	a0 := city.Buildings[pkt.Header.Src()].Centroid
	a2 := city.Buildings[srcB].Centroid
	a1 := a0.Lerp(a2, 0.5)

	agents := make([]*Agent, 3)
	transports := make([]*UDPTransport, 3)
	buildings := []int{pkt.Header.Src(), -1, srcB}
	positions := []struct{ p struct{ X, Y float64 } }{}
	_ = positions
	pos := []struct{ X, Y float64 }{{a0.X, a0.Y}, {a1.X, a1.Y}, {a2.X, a2.Y}}
	deliverCh := make(chan struct{}, 1)
	for i := 0; i < 3; i++ {
		cfg := Config{ID: i, Building: buildings[i], City: city}
		cfg.Pos.X, cfg.Pos.Y = pos[i].X, pos[i].Y
		agents[i] = New(cfg, nil)
		tr, err := NewUDPTransport("127.0.0.1:0", agents[i].HandleFrameFrom)
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		agents[i].Attach(tr)
		defer tr.Close()
	}
	agents[2].OnDeliver(func(*packet.Packet) {
		select {
		case deliverCh <- struct{}{}:
		default:
		}
	})
	// Chain adjacency: 0<->1<->2.
	transports[0].SetNeighbors([]*net.UDPAddr{transports[1].Addr()})
	transports[1].SetNeighbors([]*net.UDPAddr{transports[0].Addr(), transports[2].Addr()})
	transports[2].SetNeighbors([]*net.UDPAddr{transports[1].Addr()})

	if err := agents[0].Inject(pkt); err != nil {
		t.Fatal(err)
	}
	select {
	case <-deliverCh:
	case <-time.After(3 * time.Second):
		t.Fatal("UDP chain did not deliver")
	}
}

func TestHubWithMinimalMesh(t *testing.T) {
	// Build a mesh of two adjacent buildings directly.
	n := testNetwork(t, 97)
	m := mesh.Place(n.City, mesh.Config{Density: 1e-12, Range: 5000, Seed: 1, MinPerBuilding: 1})
	hub := NewHub(m, n.City)
	defer hub.Close()
	if hub.NumAgents() != m.NumAPs() {
		t.Errorf("agents = %d, APs = %d", hub.NumAgents(), m.NumAPs())
	}
}

func BenchmarkHubFlood(b *testing.B) {
	n, err := core.FromSpec(citygen.SmallTestSpec(501), core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	// One fixed deliverable packet template.
	var tmpl *packet.Packet
	pairs, err := n.RandomPairs(1, 300)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range pairs {
		if !n.Reachable(p[0], p[1]) {
			continue
		}
		r, err := n.PlanRoute(p[0], p[1])
		if err != nil {
			continue
		}
		if tmpl, err = n.NewPacket(r, []byte("bench")); err == nil {
			break
		}
	}
	if tmpl == nil {
		b.Skip("no packet")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub := NewHub(n.Mesh, n.City)
		pkt := tmpl.Clone()
		pkt.Header.MsgID = uint64(i) + 1
		src := int(n.Mesh.APsInBuilding(pkt.Header.Src())[0])
		if err := hub.Agent(src).Inject(pkt); err != nil {
			b.Fatal(err)
		}
		hub.Close()
	}
}
