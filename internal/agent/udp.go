package agent

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// UDPTransport is a real-socket transport: each agent listens on a UDP
// port, and "radio" broadcast is emulated by unicasting the frame to every
// neighbor's address. Neighbor sets are computed from AP geometry by the
// caller, exactly as physical proximity would determine them — this is the
// repository's localhost testbed for the paper's proposed real-world
// deployment (§6).
type UDPTransport struct {
	conn *net.UDPConn

	mu        sync.Mutex
	neighbors []*net.UDPAddr
	closed    bool
	wg        sync.WaitGroup
}

// MaxFrameSize bounds a CityMesh UDP frame (well above any header +
// low-bandwidth payload the system carries).
const MaxFrameSize = 64 * 1024

// NewUDPTransport binds a UDP socket on addr (e.g. "127.0.0.1:0") and
// delivers inbound frames to onFrame until Close.
func NewUDPTransport(addr string, onFrame func([]byte)) (*UDPTransport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("agent: listen %q: %w", addr, err)
	}
	t := &UDPTransport{conn: conn}
	t.wg.Add(1)
	go t.readLoop(onFrame)
	return t, nil
}

// Addr returns the transport's bound address.
func (t *UDPTransport) Addr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// SetNeighbors installs the addresses reached by Broadcast. The slice is
// copied.
func (t *UDPTransport) SetNeighbors(addrs []*net.UDPAddr) {
	t.mu.Lock()
	t.neighbors = append([]*net.UDPAddr(nil), addrs...)
	t.mu.Unlock()
}

// Broadcast implements Transport: one datagram per neighbor.
func (t *UDPTransport) Broadcast(frame []byte) error {
	if len(frame) > MaxFrameSize {
		return fmt.Errorf("agent: frame %d bytes exceeds max %d", len(frame), MaxFrameSize)
	}
	t.mu.Lock()
	neighbors := t.neighbors
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return errors.New("agent: transport closed")
	}
	var firstErr error
	for _, addr := range neighbors {
		if _, err := t.conn.WriteToUDP(frame, addr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (t *UDPTransport) readLoop(onFrame func([]byte)) {
	defer t.wg.Done()
	buf := make([]byte, MaxFrameSize)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		frame := append([]byte(nil), buf[:n]...)
		onFrame(frame)
	}
}

// Close shuts the socket and waits for the read loop to exit.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	t.wg.Wait()
	return err
}
