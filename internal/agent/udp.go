package agent

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// FrameHandler receives one inbound frame. src is the sender's transport
// address ("" when unknown); agents use it for per-source rate limiting
// and the liveness table.
type FrameHandler func(src string, frame []byte)

// UDPTransport is a real-socket transport: each agent listens on a UDP
// port, and "radio" broadcast is emulated by unicasting the frame to every
// neighbor's address. Neighbor sets are computed from AP geometry by the
// caller, exactly as physical proximity would determine them — this is the
// repository's localhost testbed for the paper's proposed real-world
// deployment (§6).
//
// The receive path is supervised for months-unattended operation: a panic
// escaping the frame handler is absorbed, and if the read loop dies (the
// socket is closed or errors persistently out from under it), a watchdog
// rebinds the same port and resumes reading, with exponential backoff
// between attempts.
type UDPTransport struct {
	mu        sync.Mutex
	conn      *net.UDPConn
	neighbors []*net.UDPAddr
	closed    bool
	restarts  int // read-loop restarts by the watchdog
	panics    int // handler panics absorbed by the read loop
	wg        sync.WaitGroup
}

// MaxFrameSize bounds a CityMesh UDP frame (well above any header +
// low-bandwidth payload the system carries).
const MaxFrameSize = 64 * 1024

// consecutive read errors on a live socket before the watchdog rebinds it.
const maxReadErrors = 8

// NewUDPTransport binds a UDP socket on addr (e.g. "127.0.0.1:0") and
// delivers inbound frames to onFrame until Close.
func NewUDPTransport(addr string, onFrame FrameHandler) (*UDPTransport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("agent: listen %q: %w", addr, err)
	}
	t := &UDPTransport{conn: conn}
	t.wg.Add(1)
	go t.supervise(onFrame)
	return t, nil
}

// Addr returns the transport's bound address.
func (t *UDPTransport) Addr() *net.UDPAddr {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.conn.LocalAddr().(*net.UDPAddr)
}

// Health reports supervision counters: read-loop restarts performed by the
// watchdog and handler panics absorbed.
func (t *UDPTransport) Health() (restarts, panics int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.restarts, t.panics
}

// SetNeighbors installs the addresses reached by Broadcast. The slice is
// copied.
func (t *UDPTransport) SetNeighbors(addrs []*net.UDPAddr) {
	t.mu.Lock()
	t.neighbors = append([]*net.UDPAddr(nil), addrs...)
	t.mu.Unlock()
}

// Broadcast implements Transport: one datagram per neighbor.
func (t *UDPTransport) Broadcast(frame []byte) error {
	if len(frame) > MaxFrameSize {
		return fmt.Errorf("agent: frame %d bytes exceeds max %d", len(frame), MaxFrameSize)
	}
	t.mu.Lock()
	neighbors := t.neighbors
	conn := t.conn
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return errors.New("agent: transport closed")
	}
	var firstErr error
	for _, addr := range neighbors {
		if _, err := conn.WriteToUDP(frame, addr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// supervise runs the read loop, restarting it — rebinding the socket if
// necessary — whenever it exits without Close having been called. This is
// the watchdog that keeps a deployed agent receiving after transient
// socket failure.
func (t *UDPTransport) supervise(onFrame FrameHandler) {
	defer t.wg.Done()
	backoff := 10 * time.Millisecond
	for {
		t.mu.Lock()
		conn, closed := t.conn, t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		t.readLoop(conn, onFrame)
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		t.restarts++
		port := conn.LocalAddr().(*net.UDPAddr)
		t.mu.Unlock()

		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
		// Rebind the same port. If the old socket is somehow still open
		// this fails (address in use) and we retry reading on it; if it is
		// dead, the fresh socket takes over.
		if fresh, err := net.ListenUDP("udp", port); err == nil {
			t.mu.Lock()
			if t.closed {
				t.mu.Unlock()
				fresh.Close()
				return
			}
			t.conn.Close()
			t.conn = fresh
			t.mu.Unlock()
			backoff = 10 * time.Millisecond
		}
	}
}

// readLoop reads frames from conn until the socket dies or errors
// persist; it returns to hand control back to the watchdog.
func (t *UDPTransport) readLoop(conn *net.UDPConn, onFrame FrameHandler) {
	buf := make([]byte, MaxFrameSize)
	readErrs := 0
	for {
		n, sender, err := conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			readErrs++
			if readErrs > maxReadErrors {
				return
			}
			time.Sleep(time.Millisecond)
			continue
		}
		readErrs = 0
		frame := append([]byte(nil), buf[:n]...)
		src := ""
		if sender != nil {
			src = sender.String()
		}
		t.deliver(onFrame, src, frame)
	}
}

// deliver invokes the handler, absorbing panics so one hostile frame
// cannot take the read loop down.
func (t *UDPTransport) deliver(onFrame FrameHandler, src string, frame []byte) {
	defer func() {
		if r := recover(); r != nil {
			t.mu.Lock()
			t.panics++
			t.mu.Unlock()
		}
	}()
	onFrame(src, frame)
}

// Close shuts the socket and waits for the supervisor to exit.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conn := t.conn
	t.mu.Unlock()
	err := conn.Close()
	t.wg.Wait()
	return err
}
