package agent

import (
	"sync"

	"citymesh/internal/mesh"
	"citymesh/internal/osm"
)

// Hub wires a set of agents together in-process using the mesh adjacency as
// the radio: a broadcast from agent i is handed to every agent within
// transmission range. Deliveries run on a single worker goroutine fed by an
// unbounded queue, so rebroadcast cascades neither recurse nor deadlock.
type Hub struct {
	agents []*Agent
	adj    [][]int32
	failed map[int]bool

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []delivery
	closed  bool
	pending int
	idle    *sync.Cond
	worker  sync.WaitGroup
}

type delivery struct {
	to    int
	frame []byte
}

// HubConfig tunes hub construction beyond the defaults of NewHub.
type HubConfig struct {
	// Failed marks AP ids whose radios are dead for the whole run: a
	// failed AP neither receives nor (therefore) rebroadcasts anything,
	// mirroring the simulator's static Config.FailedAPs set so parity
	// runs can drive the same fault injection through both worlds.
	Failed map[int]bool
}

// NewHub builds one agent per AP in the mesh and connects them. Callers
// retrieve agents with Agent(i) (indexed by AP id).
func NewHub(m *mesh.Mesh, city *osm.City) *Hub {
	return NewHubWithConfig(m, city, HubConfig{})
}

// NewHubWithConfig is NewHub with explicit options.
func NewHubWithConfig(m *mesh.Mesh, city *osm.City, cfg HubConfig) *Hub {
	h := &Hub{adj: m.Adjacency(), failed: cfg.Failed}
	h.cond = sync.NewCond(&h.mu)
	h.idle = sync.NewCond(&h.mu)
	h.agents = make([]*Agent, m.NumAPs())
	for i, ap := range m.APs {
		a := New(Config{ID: i, Pos: ap.Pos, Building: ap.Building, City: city}, nil)
		a.Attach(&hubTransport{hub: h, id: i})
		h.agents[i] = a
	}
	h.worker.Add(1)
	go h.run()
	return h
}

// run drains the delivery queue until Close.
func (h *Hub) run() {
	defer h.worker.Done()
	for {
		h.mu.Lock()
		for len(h.queue) == 0 && !h.closed {
			h.cond.Wait()
		}
		if len(h.queue) == 0 && h.closed {
			h.mu.Unlock()
			return
		}
		d := h.queue[0]
		h.queue = h.queue[1:]
		h.mu.Unlock()

		h.agents[d.to].HandleFrame(d.frame)

		h.mu.Lock()
		h.pending--
		if h.pending == 0 {
			h.idle.Broadcast()
		}
		h.mu.Unlock()
	}
}

// Agent returns the agent for AP id.
func (h *Hub) Agent(id int) *Agent { return h.agents[id] }

// NumAgents returns the number of agents.
func (h *Hub) NumAgents() int { return len(h.agents) }

// Flush blocks until every queued delivery — including those enqueued by
// rebroadcasts during the flush — has been handled.
func (h *Hub) Flush() {
	h.mu.Lock()
	for h.pending > 0 {
		h.idle.Wait()
	}
	h.mu.Unlock()
}

// Close stops delivery after draining outstanding frames.
func (h *Hub) Close() {
	h.Flush()
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
	h.worker.Wait()
}

// hubTransport broadcasts by enqueueing a delivery per neighbor.
type hubTransport struct {
	hub *Hub
	id  int
}

// Broadcast implements Transport.
func (t *hubTransport) Broadcast(frame []byte) error {
	h := t.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	for _, n := range h.adj[t.id] {
		if h.failed[int(n)] {
			continue
		}
		// Copy per receiver: agents may retain payload slices.
		f := append([]byte(nil), frame...)
		h.queue = append(h.queue, delivery{to: int(n), frame: f})
		h.pending++
	}
	h.cond.Signal()
	return nil
}

// Close implements Transport; the hub owns the shared state.
func (t *hubTransport) Close() error { return nil }
