package agent

import (
	"net"
	"testing"
	"time"
)

// TestUDPWatchdogRebindsDeadSocket kills the socket out from under the
// transport (without Close) and verifies the supervisor rebinds the same
// port and keeps delivering — the "dead read loop" recovery a deployed
// agent needs to survive transient network-stack failures.
func TestUDPWatchdogRebindsDeadSocket(t *testing.T) {
	got := make(chan []byte, 16)
	recv, err := NewUDPTransport("127.0.0.1:0", func(_ string, f []byte) { got <- f })
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	addr := recv.Addr()

	// Simulate socket death: close the connection directly, bypassing
	// Close() so the transport does not know it is shutting down.
	recv.mu.Lock()
	recv.conn.Close()
	recv.mu.Unlock()

	// The watchdog must rebind addr and resume delivery.
	sender, err := NewUDPTransport("127.0.0.1:0", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	sender.SetNeighbors([]*net.UDPAddr{addr})

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_ = sender.Broadcast([]byte("are you back"))
		select {
		case f := <-got:
			if string(f) != "are you back" {
				t.Fatalf("frame = %q", f)
			}
			if restarts, _ := recv.Health(); restarts == 0 {
				t.Error("watchdog restart not counted")
			}
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
	restarts, panics := recv.Health()
	t.Fatalf("transport never recovered (restarts=%d panics=%d)", restarts, panics)
}

// TestUDPHandlerPanicAbsorbed sends a frame into a handler that panics;
// the read loop must survive and keep serving subsequent frames.
func TestUDPHandlerPanicAbsorbed(t *testing.T) {
	got := make(chan []byte, 16)
	first := true
	recv, err := NewUDPTransport("127.0.0.1:0", func(_ string, f []byte) {
		if first {
			first = false
			panic("hostile first frame")
		}
		got <- f
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	sender, err := NewUDPTransport("127.0.0.1:0", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	sender.SetNeighbors([]*net.UDPAddr{recv.Addr()})

	if err := sender.Broadcast([]byte("boom")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_ = sender.Broadcast([]byte("after"))
		select {
		case f := <-got:
			if string(f) != "after" {
				continue // late reordering; keep draining
			}
			if _, panics := recv.Health(); panics == 0 {
				t.Error("absorbed panic not counted")
			}
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
	t.Fatal("read loop died after handler panic")
}

// TestUDPCloseDuringBackoff ensures Close returns promptly even while the
// supervisor is in its restart path.
func TestUDPCloseDuringBackoff(t *testing.T) {
	recv, err := NewUDPTransport("127.0.0.1:0", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	recv.mu.Lock()
	recv.conn.Close()
	recv.mu.Unlock()
	done := make(chan error, 1)
	go func() { done <- recv.Close() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung during watchdog backoff")
	}
}
