package apps

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/geo"
	"citymesh/internal/postbox"
	"citymesh/internal/sim"
)

func authority(t testing.TB) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func TestAlertSignVerifyRoundTrip(t *testing.T) {
	pub, priv := authority(t)
	a := &Alert{Seq: 1, Severity: SeverityCritical, IssuedUnix: 1720000000,
		Body: "Flood warning: move to high ground."}
	SignAlert(a, priv)
	if err := VerifyAlert(a, pub); err != nil {
		t.Fatal(err)
	}
	enc := EncodeAlert(a)
	dec, err := DecodeAlert(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Seq != a.Seq || dec.Severity != a.Severity || dec.Body != a.Body || dec.IssuedUnix != a.IssuedUnix {
		t.Errorf("decoded = %+v", dec)
	}
	if err := VerifyAlert(dec, pub); err != nil {
		t.Errorf("decoded alert fails verify: %v", err)
	}
}

func TestAlertForgeryRejected(t *testing.T) {
	pub, priv := authority(t)
	_, evilPriv := authority(t)
	a := &Alert{Seq: 1, Severity: SeverityInfo, Body: "all clear"}
	SignAlert(a, evilPriv)
	if err := VerifyAlert(a, pub); !errors.Is(err, ErrAlertSignature) {
		t.Errorf("forged alert verified: %v", err)
	}
	// Tampered body.
	SignAlert(a, priv)
	a.Body = "evacuate now (forged)"
	if err := VerifyAlert(a, pub); err == nil {
		t.Error("tampered alert verified")
	}
}

func TestAlertReceiverReplay(t *testing.T) {
	pub, priv := authority(t)
	r := NewAlertReceiver(pub)
	mk := func(seq uint64, body string) []byte {
		a := &Alert{Seq: seq, Severity: SeverityWarning, Body: body}
		SignAlert(a, priv)
		return EncodeAlert(a)
	}
	if _, err := r.Accept(mk(5, "first")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Accept(mk(5, "replay")); !errors.Is(err, ErrAlertReplay) {
		t.Errorf("replay accepted: %v", err)
	}
	if _, err := r.Accept(mk(4, "older")); !errors.Is(err, ErrAlertReplay) {
		t.Errorf("older accepted: %v", err)
	}
	if _, err := r.Accept(mk(6, "newer")); err != nil {
		t.Errorf("newer rejected: %v", err)
	}
	if _, err := r.Accept([]byte("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestAlertDecodeErrors(t *testing.T) {
	if _, err := DecodeAlert(nil); err == nil {
		t.Error("nil decode should error")
	}
	if _, err := DecodeAlert([]byte{0, 0, 0, 200, 1, 2}); err == nil {
		t.Error("truncated decode should error")
	}
}

func TestSeverityString(t *testing.T) {
	for s, want := range map[Severity]string{
		SeverityInfo: "info", SeverityWarning: "warning",
		SeverityCritical: "critical", Severity(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %q", s, s.String())
		}
	}
}

func appsNetwork(t testing.TB, seed int64) *core.Network {
	t.Helper()
	n, err := core.FromSpec(citygen.SmallTestSpec(seed), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGeocastCoverage(t *testing.T) {
	n := appsNetwork(t, 201)
	// Target: a disc in the downtown area; source: any building outside it.
	center := geo.Pt(400, 300)
	radius := 120.0
	src := -1
	pairs, err := n.RandomPairs(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if n.City.Buildings[p[0]].Centroid.Dist(center) > radius*2 {
			anchor := n.Graph.NearestBuilding(center)
			if n.Reachable(p[0], anchor) {
				if _, err := n.PlanRoute(p[0], anchor); err == nil {
					src = p[0]
					break
				}
			}
		}
	}
	if src < 0 {
		t.Skip("no suitable source")
	}
	res, err := Geocast(n, src, center, radius, []byte("water distribution at city hall"), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.APsInArea == 0 {
		t.Fatal("no APs in target area")
	}
	if res.Coverage() < 0.5 {
		t.Errorf("coverage = %.2f with %d/%d APs", res.Coverage(), res.APsCovered, res.APsInArea)
	}
	if res.Broadcasts == 0 {
		t.Error("no broadcasts")
	}
}

func TestGeocastErrors(t *testing.T) {
	n := appsNetwork(t, 202)
	if _, err := Geocast(n, 0, geo.Pt(0, 0), -5, nil, sim.DefaultConfig()); err == nil {
		t.Error("negative radius should error")
	}
}

func TestGeocastResultCoverageZero(t *testing.T) {
	if (GeocastResult{}).Coverage() != 0 {
		t.Error("empty coverage should be 0")
	}
}

func TestWalletPayAndLedger(t *testing.T) {
	_, alicePriv := authority(t)
	bobPub, _ := authority(t)
	alice := NewWallet(alicePriv)

	n1, err := alice.Pay(bobPub, 1500, "water")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyNote(n1); err != nil {
		t.Fatal(err)
	}
	// Wire round trip.
	dec, err := DecodeNote(EncodeNote(n1))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyNote(dec); err != nil {
		t.Errorf("decoded note fails verify: %v", err)
	}
	if dec.AmountCents != 1500 || dec.Memo != "water" || dec.Seq != 1 {
		t.Errorf("decoded = %+v", dec)
	}

	l := NewLedger()
	if err := l.Accept(dec); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-delivery.
	if err := l.Accept(dec); err != nil {
		t.Errorf("idempotent accept = %v", err)
	}
	if l.Size() != 1 {
		t.Errorf("size = %d", l.Size())
	}
	if l.Balance(alice.Pub()) != -1500 || l.Balance(bobPub) != 1500 {
		t.Errorf("balances = %d, %d", l.Balance(alice.Pub()), l.Balance(bobPub))
	}
}

func TestDoubleSpendDetected(t *testing.T) {
	_, alicePriv := authority(t)
	bobPub, _ := authority(t)
	carolPub, _ := authority(t)
	alice := NewWallet(alicePriv)

	n1, _ := alice.Pay(bobPub, 1000, "bread")
	// Forge a conflicting note with the same sequence by re-signing.
	n2 := &Note{Payer: n1.Payer, Payee: carolPub, Seq: n1.Seq, AmountCents: 1000, Memo: "bread"}
	n2.Sig = ed25519.Sign(alicePriv, noteSigned(n2))

	l := NewLedger()
	if err := l.Accept(n1); err != nil {
		t.Fatal(err)
	}
	if err := l.Accept(n2); !errors.Is(err, ErrDoubleSpend) {
		t.Errorf("double spend accepted: %v", err)
	}
}

func TestNoteValidation(t *testing.T) {
	_, alicePriv := authority(t)
	bobPub, _ := authority(t)
	alice := NewWallet(alicePriv)
	if _, err := alice.Pay(bobPub, 0, ""); err == nil {
		t.Error("zero amount accepted")
	}
	long := make([]byte, 300)
	if _, err := alice.Pay(bobPub, 1, string(long)); err == nil {
		t.Error("oversized memo accepted")
	}
	n, _ := alice.Pay(bobPub, 5, "ok")
	n.AmountCents = 500 // tamper
	if err := VerifyNote(n); !errors.Is(err, ErrNoteSignature) {
		t.Errorf("tampered note verified: %v", err)
	}
	bad := &Note{Payer: []byte{1}, Payee: bobPub}
	if err := VerifyNote(bad); err == nil {
		t.Error("bad key length verified")
	}
	if _, err := DecodeNote(nil); err == nil {
		t.Error("nil decode should error")
	}
	if _, err := DecodeNote([]byte{0, 200, 1}); err == nil {
		t.Error("truncated decode should error")
	}
}

func TestLedgerMerge(t *testing.T) {
	_, alicePriv := authority(t)
	bobPub, _ := authority(t)
	carolPub, _ := authority(t)
	alice := NewWallet(alicePriv)

	n1, _ := alice.Pay(bobPub, 100, "a")
	n2, _ := alice.Pay(bobPub, 200, "b")
	// A conflicting version of n2 paid to carol (double spend across
	// ledgers).
	n2evil := &Note{Payer: n2.Payer, Payee: carolPub, Seq: n2.Seq, AmountCents: 200, Memo: "b"}
	n2evil.Sig = ed25519.Sign(alicePriv, noteSigned(n2evil))

	la, lb := NewLedger(), NewLedger()
	if err := la.Accept(n1); err != nil {
		t.Fatal(err)
	}
	if err := la.Accept(n2); err != nil {
		t.Fatal(err)
	}
	if err := lb.Accept(n2evil); err != nil {
		t.Fatal(err)
	}

	absorbed, conflicts := lb.Merge(la)
	if absorbed != 1 { // n1 is new to lb; n2 conflicts
		t.Errorf("absorbed = %d", absorbed)
	}
	if conflicts != 1 {
		t.Errorf("conflicts = %d", conflicts)
	}
}

func TestWalletSequencesMonotonic(t *testing.T) {
	_, priv := authority(t)
	bobPub, _ := authority(t)
	w := NewWallet(priv)
	var last uint64
	for i := 0; i < 20; i++ {
		n, err := w.Pay(bobPub, 1, "")
		if err != nil {
			t.Fatal(err)
		}
		if n.Seq <= last {
			t.Fatalf("sequence not monotonic: %d after %d", n.Seq, last)
		}
		last = n.Seq
	}
}

func TestPollSignVerifyRoundTrip(t *testing.T) {
	id, err := postbox.NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := SignPoll(id, 7, 42)
	if err := VerifyPoll(p, id.Address()); err != nil {
		t.Fatal(err)
	}
	// Wrong postbox address: self-certification fails.
	other, _ := postbox.NewIdentity(rand.Reader)
	if err := VerifyPoll(p, other.Address()); err == nil {
		t.Error("poll verified against someone else's postbox")
	}
	// Tampered fields invalidate the signature.
	p2 := SignPoll(id, 7, 42)
	p2.AfterSeq = 99
	if err := VerifyPoll(p2, id.Address()); err == nil {
		t.Error("tampered poll verified")
	}
	// Encode round trip.
	dec, err := DecodePoll(EncodePoll(p))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPoll(dec, id.Address()); err != nil {
		t.Errorf("decoded poll fails verify: %v", err)
	}
	if dec.AfterSeq != 7 || dec.Building != 42 {
		t.Errorf("decoded = %+v", dec)
	}
	if _, err := DecodePoll([]byte("short")); err == nil {
		t.Error("short poll decoded")
	}
}

func TestReplyEncodingRoundTrip(t *testing.T) {
	msgs := []postbox.StoredMessage{
		{Seq: 3, Sealed: []byte("aaa")},
		{Seq: 9, Sealed: []byte("bbbbbb")},
	}
	enc := encodeReply(msgs)
	dec, err := DecodeReply(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 || dec[0].Seq != 3 || string(dec[1].Sealed) != "bbbbbb" {
		t.Errorf("decoded = %+v", dec)
	}
	if _, err := DecodeReply(nil); err == nil {
		t.Error("nil reply decoded")
	}
	if _, err := DecodeReply(enc[:5]); err == nil {
		t.Error("truncated reply decoded")
	}
	if got, err := DecodeReply(encodeReply(nil)); err != nil || len(got) != 0 {
		t.Errorf("empty reply = %v, %v", got, err)
	}
}

func TestRetrieveOverMesh(t *testing.T) {
	n := appsNetwork(t, 203)
	bob, err := postbox.NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := postbox.NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	// Find a device/postbox pair where both directions deliver.
	var deviceB, postboxB int
	found := false
	pairs, err := n.RandomPairs(5, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if !n.Reachable(p[0], p[1]) {
			continue
		}
		r1, err1 := n.Send(p[0], p[1], nil, sim.DefaultConfig())
		r2, err2 := n.Send(p[1], p[0], nil, sim.DefaultConfig())
		if err1 == nil && err2 == nil && r1.Sim.Delivered && r2.Sim.Delivered {
			deviceB, postboxB = p[0], p[1]
			found = true
			break
		}
	}
	if !found {
		t.Skip("no bidirectional pair")
	}

	// Alice leaves two sealed messages in Bob's postbox store.
	store := postbox.NewStore()
	for _, text := range []string{"first", "second"} {
		sealed, err := postbox.Seal(rand.Reader, alice, bob.Public(), []byte(text))
		if err != nil {
			t.Fatal(err)
		}
		store.Put(bob.Address(), sealed, false)
	}

	res, err := Retrieve(n, store, bob, deviceB, postboxB, 0, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.PollDelivered || !res.ReplyDelivered {
		t.Fatalf("round trip failed: %+v", res)
	}
	if len(res.Messages) != 2 {
		t.Fatalf("messages = %d", len(res.Messages))
	}
	// Bob can open what came back.
	for i, m := range res.Messages {
		plain, sender, err := postbox.Open(bob, m.Sealed)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		if sender.Address() != alice.Address() {
			t.Error("sender mismatch")
		}
		if len(plain) == 0 {
			t.Error("empty plaintext")
		}
	}
	// The store cached Bob's current building for push.
	if b, ok := store.LastSeen(bob.Address()); !ok || b != deviceB {
		t.Errorf("LastSeen = %d, %v", b, ok)
	}
	// Incremental retrieval from the last seq returns nothing new.
	res2, err := Retrieve(n, store, bob, deviceB, postboxB, res.Messages[1].Seq, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res2.PollDelivered && res2.ReplyDelivered && len(res2.Messages) != 0 {
		t.Errorf("incremental retrieve returned %d messages", len(res2.Messages))
	}
}
