// Package apps implements the low-bandwidth disaster applications the
// paper motivates in §1–§2: signed emergency broadcast messages, geospatial
// (area-addressed) messaging, and offline payments. Each application rides
// on the CityMesh substrate — postboxes, conduits, flooding — and none
// requires cloud access.
package apps

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
)

// Severity grades an emergency alert.
type Severity uint8

const (
	// SeverityInfo is advisory (e.g. shelter locations).
	SeverityInfo Severity = iota
	// SeverityWarning calls for preparation.
	SeverityWarning
	// SeverityCritical calls for immediate action.
	SeverityCritical
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// Alert is an emergency broadcast message. Alerts flood the whole mesh (no
// conduit restriction) and are authenticated by the issuing authority's
// Ed25519 key, which residents pin out-of-band — e.g. printed on city
// signage — so verification needs no connectivity.
type Alert struct {
	// Seq orders alerts from one authority; receivers drop replays of
	// lower sequence numbers.
	Seq uint64
	// Severity grades the alert.
	Severity Severity
	// IssuedUnix is the issue time (seconds).
	IssuedUnix int64
	// Body is the human-readable message.
	Body string
	// Sig is the authority signature over the preceding fields.
	Sig []byte
}

// ErrAlertSignature is returned when alert verification fails.
var ErrAlertSignature = errors.New("apps: alert signature invalid")

// ErrAlertReplay is returned when an alert's sequence number does not
// advance.
var ErrAlertReplay = errors.New("apps: alert replayed or out of order")

// alertSigned serializes the signed portion.
func alertSigned(a *Alert) []byte {
	buf := make([]byte, 0, 17+len(a.Body))
	buf = binary.BigEndian.AppendUint64(buf, a.Seq)
	buf = append(buf, byte(a.Severity))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.IssuedUnix))
	buf = append(buf, a.Body...)
	return buf
}

// SignAlert signs the alert with the authority key, filling Sig.
func SignAlert(a *Alert, authority ed25519.PrivateKey) {
	a.Sig = ed25519.Sign(authority, alertSigned(a))
}

// VerifyAlert checks the signature against the pinned authority key.
func VerifyAlert(a *Alert, authority ed25519.PublicKey) error {
	if !ed25519.Verify(authority, alertSigned(a), a.Sig) {
		return ErrAlertSignature
	}
	return nil
}

// EncodeAlert serializes an alert for a packet payload.
func EncodeAlert(a *Alert) []byte {
	body := alertSigned(a)
	out := make([]byte, 0, 4+len(body)+len(a.Sig))
	out = binary.BigEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	out = append(out, a.Sig...)
	return out
}

// DecodeAlert parses EncodeAlert output.
func DecodeAlert(b []byte) (*Alert, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("apps: alert too short")
	}
	n := binary.BigEndian.Uint32(b)
	if int(n) < 17 || len(b) < 4+int(n)+ed25519.SignatureSize {
		return nil, fmt.Errorf("apps: alert truncated (body %d, have %d)", n, len(b))
	}
	body := b[4 : 4+n]
	a := &Alert{
		Seq:        binary.BigEndian.Uint64(body),
		Severity:   Severity(body[8]),
		IssuedUnix: int64(binary.BigEndian.Uint64(body[9:])),
		Body:       string(body[17:]),
		Sig:        append([]byte(nil), b[4+n:4+n+ed25519.SignatureSize]...),
	}
	return a, nil
}

// AlertReceiver tracks per-authority replay state and verifies incoming
// alerts — the logic every resident device runs.
type AlertReceiver struct {
	authority ed25519.PublicKey
	lastSeq   uint64
	seen      bool
}

// NewAlertReceiver pins the authority key.
func NewAlertReceiver(authority ed25519.PublicKey) *AlertReceiver {
	return &AlertReceiver{authority: authority}
}

// Accept verifies and replay-checks an encoded alert, returning it when it
// should be surfaced to the user.
func (r *AlertReceiver) Accept(encoded []byte) (*Alert, error) {
	a, err := DecodeAlert(encoded)
	if err != nil {
		return nil, err
	}
	if err := VerifyAlert(a, r.authority); err != nil {
		return nil, err
	}
	if r.seen && a.Seq <= r.lastSeq {
		return nil, ErrAlertReplay
	}
	r.seen = true
	r.lastSeq = a.Seq
	return a, nil
}
