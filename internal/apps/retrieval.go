package apps

import (
	"encoding/binary"
	"fmt"

	"citymesh/internal/core"
	"citymesh/internal/postbox"
	"citymesh/internal/sim"
)

// Retrieval implements §3 step 4 as an over-the-mesh protocol: Bob's device
// — possibly far from his postbox building during the outage — sends a
// signed POLL packet along a conduit to his postbox; the postbox AP answers
// with the stored sealed messages along the reverse conduit, and caches
// Bob's current building for future push notifications.
//
// The poll is authenticated: it carries Bob's public identity plus a
// signature over (postbox address | afterSeq | current building), so a
// compromised AP cannot drain someone else's postbox by spoofing polls —
// it could at most replay an old poll, which re-sends messages the owner
// already asked for (sealed to the owner, so confidentiality holds).

// Poll is a postbox retrieval request.
type Poll struct {
	// Owner is the requesting identity (must hash to the postbox address).
	Owner postbox.PublicIdentity
	// AfterSeq requests messages with store sequence numbers beyond this.
	AfterSeq uint64
	// Building is the device's current building (cached for push).
	Building int
	// Sig is the owner's Ed25519 signature.
	Sig []byte
}

// SignPoll builds and signs a poll with the owner's identity.
func SignPoll(id *postbox.Identity, afterSeq uint64, building int) *Poll {
	p := &Poll{Owner: id.Public(), AfterSeq: afterSeq, Building: building}
	p.Sig = id.Sign(pollSigned(p))
	return p
}

func pollSigned(p *Poll) []byte {
	addr := p.Owner.Address()
	buf := make([]byte, 0, len(addr)+16)
	buf = append(buf, addr[:]...)
	buf = binary.BigEndian.AppendUint64(buf, p.AfterSeq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(p.Building)))
	return buf
}

// VerifyPoll checks the poll signature and self-certification against the
// postbox address it claims to drain.
func VerifyPoll(p *Poll, claimed postbox.Address) error {
	if !p.Owner.Verify(claimed) {
		return fmt.Errorf("apps: poll identity does not certify postbox address")
	}
	if !p.Owner.VerifySig(pollSigned(p), p.Sig) {
		return fmt.Errorf("apps: poll signature invalid")
	}
	return nil
}

// EncodePoll serializes a poll for a packet payload.
func EncodePoll(p *Poll) []byte {
	id := p.Owner.Encode()
	out := make([]byte, 0, len(id)+16+len(p.Sig))
	out = append(out, id...)
	out = binary.BigEndian.AppendUint64(out, p.AfterSeq)
	out = binary.BigEndian.AppendUint64(out, uint64(int64(p.Building)))
	out = append(out, p.Sig...)
	return out
}

// DecodePoll parses EncodePoll output.
func DecodePoll(b []byte) (*Poll, error) {
	if len(b) < 64+16+64 {
		return nil, fmt.Errorf("apps: poll too short")
	}
	id, err := postbox.DecodePublicIdentity(b[:64])
	if err != nil {
		return nil, err
	}
	return &Poll{
		Owner:    id,
		AfterSeq: binary.BigEndian.Uint64(b[64:]),
		Building: int(int64(binary.BigEndian.Uint64(b[72:]))),
		Sig:      append([]byte(nil), b[80:80+64]...),
	}, nil
}

// RetrievalResult is the outcome of an over-the-mesh retrieval round trip.
type RetrievalResult struct {
	// PollDelivered and ReplyDelivered report the two conduit traversals.
	PollDelivered, ReplyDelivered bool
	// Messages are the sealed messages returned to the device.
	Messages []postbox.StoredMessage
	// Broadcasts is the combined transmission count of both directions.
	Broadcasts int
}

// Retrieve runs the full §3 step 4 round trip through the simulator:
// device (at deviceBuilding) -> postbox (at postboxBuilding), then the
// reply back. The store is the postbox building's message store.
func Retrieve(n *core.Network, store *postbox.Store, id *postbox.Identity,
	deviceBuilding, postboxBuilding int, afterSeq uint64, simCfg sim.Config) (RetrievalResult, error) {

	var out RetrievalResult
	poll := SignPoll(id, afterSeq, deviceBuilding)
	addr := id.Address()

	// Leg 1: the poll rides a conduit to the postbox building.
	route, err := n.PlanRoute(deviceBuilding, postboxBuilding)
	if err != nil {
		return out, fmt.Errorf("apps: poll route: %w", err)
	}
	pkt, err := n.NewPacket(route, EncodePoll(poll))
	if err != nil {
		return out, err
	}
	res, err := n.Engine().Run(pkt, simCfg)
	if err != nil {
		return out, err
	}
	out.Broadcasts += res.Broadcasts
	out.PollDelivered = res.Delivered
	if !res.Delivered {
		return out, nil
	}

	// The postbox AP verifies the poll before draining the box.
	if err := VerifyPoll(poll, addr); err != nil {
		return out, err
	}
	msgs := store.Retrieve(addr, poll.AfterSeq, poll.Building)

	// Leg 2: the reply rides the reverse conduit to the device's building.
	back, err := n.PlanRoute(postboxBuilding, deviceBuilding)
	if err != nil {
		return out, fmt.Errorf("apps: reply route: %w", err)
	}
	payload := encodeReply(msgs)
	rpkt, err := n.NewPacket(back, payload)
	if err != nil {
		return out, err
	}
	rres, err := n.Engine().Run(rpkt, simCfg)
	if err != nil {
		return out, err
	}
	out.Broadcasts += rres.Broadcasts
	out.ReplyDelivered = rres.Delivered
	if rres.Delivered {
		out.Messages = msgs
	}
	return out, nil
}

// encodeReply frames the message batch (length-prefixed sealed blobs).
func encodeReply(msgs []postbox.StoredMessage) []byte {
	var out []byte
	out = binary.BigEndian.AppendUint16(out, uint16(len(msgs)))
	for _, m := range msgs {
		out = binary.BigEndian.AppendUint64(out, m.Seq)
		out = binary.BigEndian.AppendUint32(out, uint32(len(m.Sealed)))
		out = append(out, m.Sealed...)
	}
	return out
}

// DecodeReply parses encodeReply output into (seq, sealed) pairs.
func DecodeReply(b []byte) ([]postbox.StoredMessage, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("apps: reply too short")
	}
	count := int(binary.BigEndian.Uint16(b))
	off := 2
	out := make([]postbox.StoredMessage, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < off+12 {
			return nil, fmt.Errorf("apps: reply truncated at message %d", i)
		}
		seq := binary.BigEndian.Uint64(b[off:])
		l := int(binary.BigEndian.Uint32(b[off+8:]))
		off += 12
		if len(b) < off+l {
			return nil, fmt.Errorf("apps: reply body truncated at message %d", i)
		}
		out = append(out, postbox.StoredMessage{Seq: seq, Sealed: append([]byte(nil), b[off:off+l]...)})
		off += l
	}
	return out, nil
}
