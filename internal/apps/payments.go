package apps

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// The payments substrate implements the paper's §2 banking use case
// ("obtain access to essentials and to access a banking application for
// money") without cloud connectivity: payers sign transfer notes against a
// per-payer monotonic sequence number, payees verify signatures offline
// with the payer's self-certifying identity, and any node can maintain a
// Ledger that detects double spends (two distinct notes with the same payer
// and sequence). Final settlement reconciles when connectivity returns —
// the DFN's job is to keep commerce moving meanwhile.

// Note is one signed offline payment.
type Note struct {
	// Payer and Payee are the parties' Ed25519 public keys.
	Payer, Payee ed25519.PublicKey
	// Seq is the payer's monotonic note counter; reuse is a double spend.
	Seq uint64
	// AmountCents is the transferred amount.
	AmountCents uint64
	// Memo is a short free-text field.
	Memo string
	// Sig is the payer's signature over the preceding fields.
	Sig []byte
}

// Wallet issues signed notes for one payer.
type Wallet struct {
	mu   sync.Mutex
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
	seq  uint64
}

// NewWallet wraps a payer key pair.
func NewWallet(priv ed25519.PrivateKey) *Wallet {
	return &Wallet{priv: priv, pub: priv.Public().(ed25519.PublicKey)}
}

// Pub returns the wallet's public key.
func (w *Wallet) Pub() ed25519.PublicKey { return w.pub }

// Pay issues a signed note to payee.
func (w *Wallet) Pay(payee ed25519.PublicKey, amountCents uint64, memo string) (*Note, error) {
	if amountCents == 0 {
		return nil, errors.New("apps: zero amount")
	}
	if len(memo) > 255 {
		return nil, errors.New("apps: memo too long")
	}
	w.mu.Lock()
	w.seq++
	n := &Note{
		Payer:       w.pub,
		Payee:       append(ed25519.PublicKey(nil), payee...),
		Seq:         w.seq,
		AmountCents: amountCents,
		Memo:        memo,
	}
	w.mu.Unlock()
	n.Sig = ed25519.Sign(w.priv, noteSigned(n))
	return n, nil
}

func noteSigned(n *Note) []byte {
	buf := make([]byte, 0, 64+16+len(n.Memo))
	buf = append(buf, n.Payer...)
	buf = append(buf, n.Payee...)
	buf = binary.BigEndian.AppendUint64(buf, n.Seq)
	buf = binary.BigEndian.AppendUint64(buf, n.AmountCents)
	buf = append(buf, n.Memo...)
	return buf
}

// ErrNoteSignature is returned when a note's signature fails.
var ErrNoteSignature = errors.New("apps: note signature invalid")

// ErrDoubleSpend is returned when the same (payer, seq) appears with
// different content.
var ErrDoubleSpend = errors.New("apps: double spend detected")

// VerifyNote checks a note's signature.
func VerifyNote(n *Note) error {
	if len(n.Payer) != ed25519.PublicKeySize || len(n.Payee) != ed25519.PublicKeySize {
		return fmt.Errorf("apps: bad key lengths")
	}
	if !ed25519.Verify(n.Payer, noteSigned(n), n.Sig) {
		return ErrNoteSignature
	}
	return nil
}

// EncodeNote serializes a note for transport.
func EncodeNote(n *Note) []byte {
	body := noteSigned(n)
	out := make([]byte, 0, 2+len(body)+len(n.Sig))
	out = binary.BigEndian.AppendUint16(out, uint16(len(body)))
	out = append(out, body...)
	out = append(out, n.Sig...)
	return out
}

// DecodeNote parses EncodeNote output.
func DecodeNote(b []byte) (*Note, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("apps: note too short")
	}
	bl := int(binary.BigEndian.Uint16(b))
	if bl < 80 || len(b) < 2+bl+ed25519.SignatureSize {
		return nil, fmt.Errorf("apps: note truncated")
	}
	body := b[2 : 2+bl]
	n := &Note{
		Payer:       append(ed25519.PublicKey(nil), body[:32]...),
		Payee:       append(ed25519.PublicKey(nil), body[32:64]...),
		Seq:         binary.BigEndian.Uint64(body[64:]),
		AmountCents: binary.BigEndian.Uint64(body[72:]),
		Memo:        string(body[80:]),
		Sig:         append([]byte(nil), b[2+bl:2+bl+ed25519.SignatureSize]...),
	}
	return n, nil
}

// Ledger records accepted notes and detects double spends. Any node — a
// merchant device, a postbox AP — can run one; reconciliation across
// ledgers happens at settlement.
type Ledger struct {
	mu sync.Mutex
	// notes indexes by payer key + seq.
	notes map[string]*Note
	// balances tracks net flows observed by this ledger (may go negative:
	// the ledger sees only a slice of the economy).
	balances map[string]int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{notes: make(map[string]*Note), balances: make(map[string]int64)}
}

func noteKey(payer ed25519.PublicKey, seq uint64) string {
	k := make([]byte, 0, 40)
	k = append(k, payer...)
	k = binary.BigEndian.AppendUint64(k, seq)
	return string(k)
}

// Accept verifies and records a note. Re-presenting the identical note is
// idempotent; a conflicting note with the same (payer, seq) returns
// ErrDoubleSpend.
func (l *Ledger) Accept(n *Note) error {
	if err := VerifyNote(n); err != nil {
		return err
	}
	key := noteKey(n.Payer, n.Seq)
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.notes[key]; ok {
		if sameNote(prev, n) {
			return nil // idempotent re-delivery
		}
		return ErrDoubleSpend
	}
	l.notes[key] = n
	l.balances[string(n.Payer)] -= int64(n.AmountCents)
	l.balances[string(n.Payee)] += int64(n.AmountCents)
	return nil
}

func sameNote(a, b *Note) bool {
	return a.Seq == b.Seq && a.AmountCents == b.AmountCents && a.Memo == b.Memo &&
		string(a.Payee) == string(b.Payee) && string(a.Payer) == string(b.Payer)
}

// Balance returns the net observed flow for a key (negative = net payer).
func (l *Ledger) Balance(pub ed25519.PublicKey) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[string(pub)]
}

// Size returns the number of recorded notes.
func (l *Ledger) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.notes)
}

// Merge folds another ledger's notes into this one, returning how many new
// notes were absorbed and how many double spends were discovered — the
// settlement-time reconciliation step.
func (l *Ledger) Merge(other *Ledger) (absorbed, conflicts int) {
	other.mu.Lock()
	notes := make([]*Note, 0, len(other.notes))
	for _, n := range other.notes {
		notes = append(notes, n)
	}
	other.mu.Unlock()
	for _, n := range notes {
		before := l.Size()
		switch err := l.Accept(n); err {
		case nil:
			if l.Size() > before {
				absorbed++
			}
		case ErrDoubleSpend:
			conflicts++
		}
	}
	return absorbed, conflicts
}
