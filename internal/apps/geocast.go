package apps

import (
	"fmt"

	"citymesh/internal/core"
	"citymesh/internal/fwd"
	"citymesh/internal/geo"
	"citymesh/internal/packet"
	"citymesh/internal/routing"
	"citymesh/internal/sim"
)

// GeocastPolicy extends the conduit policy for area-addressed messages
// (§1's "geospatial messaging"): the packet first rides a conduit toward
// the building nearest the target area's center, then floods within the
// target disc so every AP (and postbox) in the area hears it.
//
// The disc-then-conduit rule itself lives in the shared forwarding kernel
// (internal/fwd), which evaluates the geocast branch for every
// FlagGeocast packet — so this policy is the plain CityMesh adapter under
// a distinct name, kept so transcripts and tables can label geocast runs.
type GeocastPolicy struct {
	inner sim.Policy
}

// NewGeocastPolicy returns the geocast forwarding policy.
func NewGeocastPolicy() *GeocastPolicy {
	return &GeocastPolicy{inner: routing.NewCityMesh()}
}

// Name implements sim.Policy.
func (*GeocastPolicy) Name() string { return "geocast" }

// OnReceive implements sim.Policy.
func (g *GeocastPolicy) OnReceive(ctx *sim.Context, ap int, pkt *packet.Packet, from int) sim.Decision {
	return g.inner.OnReceive(ctx, ap, pkt, from)
}

// DecisionCounts implements sim.DecisionCounter by delegating to the
// kernel-backed inner policy.
func (g *GeocastPolicy) DecisionCounts() fwd.Counts {
	if dc, ok := g.inner.(sim.DecisionCounter); ok {
		return dc.DecisionCounts()
	}
	return fwd.Counts{}
}

// GeocastResult summarizes one geocast.
type GeocastResult struct {
	// Sim is the raw simulation result (Delivered means the anchor
	// building heard it).
	Sim sim.Result
	// APsInArea is the number of APs inside the target disc.
	APsInArea int
	// APsCovered is how many of them received the message.
	APsCovered int
	// Broadcasts is the total transmission count.
	Broadcasts int
}

// Coverage is the fraction of in-area APs reached — the geocast quality
// metric.
func (r GeocastResult) Coverage() float64 {
	if r.APsInArea == 0 {
		return 0
	}
	return float64(r.APsCovered) / float64(r.APsInArea)
}

// Geocast routes payload from the source building to every AP within
// radius meters of center.
func Geocast(n *core.Network, srcBuilding int, center geo.Point, radius float64, payload []byte, simCfg sim.Config) (GeocastResult, error) {
	if radius <= 0 {
		return GeocastResult{}, fmt.Errorf("apps: geocast radius must be positive")
	}
	// Anchor: the building nearest the target center; the conduit carries
	// the message there, the in-area flood spreads it.
	anchor := n.Graph.NearestBuilding(center)
	if anchor < 0 {
		return GeocastResult{}, fmt.Errorf("apps: no buildings in city")
	}
	route, err := n.PlanRoute(srcBuilding, anchor)
	if err != nil {
		return GeocastResult{}, fmt.Errorf("apps: geocast route: %w", err)
	}
	pkt, err := n.NewPacket(route, payload)
	if err != nil {
		return GeocastResult{}, err
	}
	pkt.Header.Flags |= packet.FlagGeocast
	pkt.Header.Target = packet.GeocastArea{
		CenterX: int32(center.X + 0.5),
		CenterY: int32(center.Y + 0.5),
		Radius:  uint32(radius + 0.5),
	}

	if !simCfg.RecordTranscript {
		simCfg.RecordTranscript = true
	}
	res, err := n.Engine().RunPolicy(NewGeocastPolicy(), pkt, simCfg)
	if err != nil {
		return GeocastResult{}, err
	}

	out := GeocastResult{Sim: res, Broadcasts: res.Broadcasts}
	for id, ap := range n.Mesh.APs {
		if ap.Pos.Dist(center) > radius {
			continue
		}
		out.APsInArea++
		if id < len(res.Transcript) && res.Transcript[id].Received {
			out.APsCovered++
		}
	}
	return out, nil
}
