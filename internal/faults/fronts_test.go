package faults

import (
	"math"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/sim"
)

// riverMesh builds a scaled boston (the preset whose river survives
// scaling) for front tests that need water.
func riverMesh(t testing.TB) *core.Network {
	t.Helper()
	spec, ok := citygen.Preset("boston")
	if !ok {
		t.Fatal("no boston preset")
	}
	spec.Width, spec.Height = spec.Width/3, spec.Height/3
	spec.Rivers[0].Start = spec.Rivers[0].Start.Scale(1.0 / 3)
	spec.Rivers[0].End = spec.Rivers[0].End.Scale(1.0 / 3)
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(n.City.Water) == 0 {
		t.Skip("scaled boston lost its river")
	}
	return n
}

func TestFloodFrontAdvancesMonotonically(t *testing.T) {
	n := riverMesh(t)
	f, err := NewFloodFront(n.Mesh, n.City, FloodFrontConfig{SpeedMps: 10, StartS: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing is down before the banks burst.
	if got := f.DownFractionAt(4.9); got != 0 {
		t.Fatalf("down fraction %v before StartS", got)
	}
	// The submerged set only ever grows, and eventually covers everything.
	prev := -1.0
	for _, tm := range []float64{5, 10, 20, 40, 80, 1e6} {
		frac := f.DownFractionAt(tm)
		if frac < prev {
			t.Fatalf("t=%v: down fraction %v receded from %v", tm, frac, prev)
		}
		prev = frac
	}
	if prev != 1 {
		t.Fatalf("unbounded front must eventually drown every AP, got %v", prev)
	}
	// Per-AP monotonicity: once down, down forever.
	for ap := 0; ap < n.Mesh.NumAPs(); ap++ {
		if f.Down(ap, 20) && !f.Down(ap, 21) {
			t.Fatalf("AP %d resurfaced", ap)
		}
	}
	// Out-of-range APs are never down (mobile node indices land here).
	if f.Down(-1, 100) || f.Down(n.Mesh.NumAPs()+3, 100) {
		t.Error("out-of-range node must never be scheduled down")
	}
}

func TestFloodFrontFracCapMatchesStaticFlood(t *testing.T) {
	n := riverMesh(t)
	inj, err := Inject(n.Mesh, n.City, Config{Mode: ModeFloodFront, Frac: 0.3, FrontSpeed: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	front, ok := inj.Schedule.(*FloodFront)
	if !ok {
		t.Fatalf("schedule is %T, want *FloodFront", inj.Schedule)
	}
	static, err := Inject(n.Mesh, n.City, Config{Mode: ModeFlood, Frac: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The fully-advanced front drowns exactly the static flood's AP set.
	finalDown := 0
	for ap := 0; ap < n.Mesh.NumAPs(); ap++ {
		down := front.Down(ap, math.Inf(1))
		if down {
			finalDown++
		}
		if down != static.Failed[ap] {
			t.Fatalf("AP %d: front final state %v, static flood %v", ap, down, static.Failed[ap])
		}
	}
	if finalDown != static.NumFailed() {
		t.Fatalf("front drowns %d, static flood %d", finalDown, static.NumFailed())
	}
}

func TestFloodFrontDeterministicUnderJitter(t *testing.T) {
	n := riverMesh(t)
	mk := func(seed int64) *FloodFront {
		f, err := NewFloodFront(n.Mesh, n.City, FloodFrontConfig{SpeedMps: 5, JitterS: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b, c := mk(9), mk(9), mk(10)
	same, diff := true, false
	for ap := 0; ap < n.Mesh.NumAPs(); ap++ {
		for _, tm := range []float64{1, 7, 19} {
			if a.Down(ap, tm) != b.Down(ap, tm) {
				same = false
			}
			if a.Down(ap, tm) != c.Down(ap, tm) {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed produced different fronts")
	}
	if !diff {
		t.Error("different jitter seeds produced identical fronts")
	}
}

func TestFloodFrontNeedsWater(t *testing.T) {
	n, m := testMesh(t, 21) // SmallTestSpec has no rivers
	if len(n.City.Water) != 0 {
		t.Skip("test spec grew water")
	}
	if _, err := NewFloodFront(m, n.City, FloodFrontConfig{}); err == nil {
		t.Error("flood front on a waterless city should error")
	}
	if _, err := Inject(m, n.City, Config{Mode: ModeFloodFront, Frac: 0.2}); err == nil {
		t.Error("injecting a flood front on a waterless city should error")
	}
}

func TestRollingBlackoutRotation(t *testing.T) {
	n, m := testMesh(t, 22)
	rb, err := NewRollingBlackout(m, n.City, BlackoutConfig{Districts: 3, OutageS: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rb.NumDistricts() < 2 {
		t.Fatalf("test city occupies %d districts; rotation is trivial", rb.NumDistricts())
	}
	// Every AP goes dark exactly once during one pass, and the pass ends.
	horizon := float64(rb.NumDistricts()) * 5
	for ap := 0; ap < m.NumAPs(); ap++ {
		everDown := false
		for tm := 0.0; tm < horizon; tm += 0.5 {
			if rb.Down(ap, tm) {
				everDown = true
			}
		}
		if !everDown {
			t.Fatalf("AP %d never blacked out during the pass", ap)
		}
		if rb.Down(ap, horizon+1) {
			t.Fatalf("AP %d still dark after the non-repeating pass", ap)
		}
	}
	// Back-to-back stagger: at any instant at most one district is dark,
	// so the down fraction never reaches 1 (the rotation is load shedding,
	// not a citywide outage).
	for tm := 0.0; tm < horizon; tm += 0.5 {
		if rb.DownFractionAt(tm) >= 1 {
			t.Fatalf("t=%v: the whole city is dark under a rolling rotation", tm)
		}
	}
}

func TestRollingBlackoutZeroDurationWindow(t *testing.T) {
	n, m := testMesh(t, 23)
	// An explicit negative window is rejected; the zero value takes the
	// default rather than meaning "no outage".
	if _, err := NewRollingBlackout(m, n.City, BlackoutConfig{OutageS: -1}); err == nil {
		t.Error("negative outage window must be rejected")
	}
	rb, err := NewRollingBlackout(m, n.City, BlackoutConfig{OutageS: 1e-9, StaggerS: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A (near-)zero-duration window blacks out essentially nothing: the
	// half-open [off, off+outage) windows cover measure ~0 of the timeline.
	down := 0
	for tm := 0.013; tm < 20; tm += 0.257 {
		for ap := 0; ap < m.NumAPs(); ap++ {
			if rb.Down(ap, tm) {
				down++
			}
		}
	}
	if down != 0 {
		t.Errorf("zero-duration windows caught %d sampled outages", down)
	}
}

func TestRollingBlackoutOverlapAndRepeat(t *testing.T) {
	n, m := testMesh(t, 24)
	rb, err := NewRollingBlackout(m, n.City, BlackoutConfig{
		Districts: 2, OutageS: 10, StaggerS: 2, Repeat: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping windows (stagger < outage): at some instant more than
	// one district must be dark simultaneously.
	overlap := false
	period := float64(rb.NumDistricts()) * 2
	for tm := 0.0; tm < period; tm += 0.25 {
		if rb.DownFractionAt(tm) > 1.0/float64(rb.NumDistricts())+1e-9 {
			overlap = true
			break
		}
	}
	if rb.NumDistricts() > 1 && !overlap {
		t.Error("stagger < outage should overlap district windows")
	}
	// Repeat: the schedule is periodic.
	for ap := 0; ap < m.NumAPs(); ap++ {
		for _, tm := range []float64{0.5, 3.3, 7.7} {
			if rb.Down(ap, tm) != rb.Down(ap, tm+period) {
				t.Fatalf("AP %d: repeat rotation not periodic at t=%v", ap, tm)
			}
		}
	}
}

// --- schedule-composition edge cases (OffsetSchedule, recovery ordering,
// overlapping injections) ---

func TestOffsetScheduleComposes(t *testing.T) {
	// Offset of an offset adds up; churn under a double shift matches a
	// single shift of the sum.
	n, m := testMesh(t, 25)
	inj, err := Inject(m, n.City, Config{Mode: ModeChurn, Frac: 0.4, Seed: 6, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	base := inj.Schedule
	double := sim.OffsetSchedule{Base: sim.OffsetSchedule{Base: base, Offset: 3}, Offset: 4}
	single := sim.OffsetSchedule{Base: base, Offset: 7}
	for ap := 0; ap < m.NumAPs(); ap++ {
		for _, tm := range []float64{0, 1.5, 10, 33} {
			if double.Down(ap, tm) != single.Down(ap, tm) {
				t.Fatalf("AP %d t=%v: nested offsets disagree with their sum", ap, tm)
			}
		}
	}
	_ = n
}

func TestOffsetScheduleNegativeOffsetLooksBack(t *testing.T) {
	// A negative offset rewinds the schedule: a recovery that already
	// happened is un-happened from the shifted run's perspective.
	r := Recovery(map[int]bool{2: true}, 10)
	off := sim.OffsetSchedule{Base: r, Offset: -5}
	if !off.Down(2, 12) {
		t.Error("offset -5 + t 12 = 7 is before recovery; AP must be down")
	}
	if off.Down(2, 16) {
		t.Error("offset -5 + t 16 = 11 is after recovery; AP must be up")
	}
}

func TestRecoveryAtZeroHealsImmediately(t *testing.T) {
	// Zero-duration outage: recovery at t=0 means nothing is ever down,
	// even though the static set says otherwise.
	r := Recovery(map[int]bool{0: true, 1: true}, 0)
	for _, tm := range []float64{0, 0.001, 5} {
		if r.Down(0, tm) || r.Down(1, tm) {
			t.Fatalf("t=%v: recovery at 0 must heal from the first instant", tm)
		}
	}
}

func TestRecoveryBeforeFailureOrdering(t *testing.T) {
	// A recovery instant *earlier* than the base schedule's own failure
	// windows wins: RecoverySchedule clamps everything up from recoverAt,
	// even failures the wrapped schedule would inject later.
	n, m := testMesh(t, 26)
	churn, err := Inject(m, n.City, Config{Mode: ModeChurn, Frac: 0.5, Seed: 8, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}
	healed := churn.WithRecovery(0.5)
	for ap := 0; ap < m.NumAPs(); ap++ {
		for _, tm := range []float64{0.5, 1, 10, 59} {
			if healed.Schedule.Down(ap, tm) {
				t.Fatalf("AP %d t=%v: churn toggle after the recovery instant resurrected a failure", ap, tm)
			}
		}
	}
	// Before the recovery instant the base schedule still applies.
	agree := 0
	for ap := 0; ap < m.NumAPs(); ap++ {
		if healed.Schedule.Down(ap, 0.2) == churn.Schedule.Down(ap, 0.2) {
			agree++
		}
	}
	if agree != m.NumAPs() {
		t.Errorf("pre-recovery behaviour diverged from the base schedule (%d/%d agree)", agree, m.NumAPs())
	}
}

func TestOverlappingInjectionsMerge(t *testing.T) {
	// Two static injections applied to one sim config union their failure
	// sets; a schedule injection rides alongside without clobbering them.
	n, m := testMesh(t, 27)
	u1, err := Inject(m, n.City, Config{Mode: ModeUniform, Frac: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Inject(m, n.City, Config{Mode: ModeDisk, Frac: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Inject(m, n.City, Config{Mode: ModeChurn, Frac: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var cfg sim.Config
	u1.Apply(&cfg)
	u2.Apply(&cfg)
	ch.Apply(&cfg)
	for ap := range u1.Failed {
		if !cfg.FailedAPs[ap] {
			t.Fatalf("AP %d from the first injection lost in the merge", ap)
		}
	}
	for ap := range u2.Failed {
		if !cfg.FailedAPs[ap] {
			t.Fatalf("AP %d from the overlapping injection lost in the merge", ap)
		}
	}
	if cfg.Schedule == nil {
		t.Fatal("churn schedule dropped by the merge")
	}
	_ = n
}
