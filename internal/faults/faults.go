// Package faults injects failures into a realized AP mesh for disaster
// scenario evaluation: the paper's premise is operating *during* disasters,
// so the simulator must be able to kill APs the way disasters do —
// uniformly at random (scattered power loss), in a spatially correlated
// blast radius (explosion, flood along a river), inside an arbitrary
// polygon (a downed neighborhood), or as Markov on/off churn (brownouts,
// overloaded APs rebooting).
//
// Every injector is deterministic under its seed and produces an Injection
// that plugs directly into sim.Config: a static failure set plus, for
// churn, a time-varying sim.FailureSchedule the engine consults per event.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/sim"
)

// Mode names a fault injector.
type Mode string

const (
	// ModeNone injects nothing (the healthy baseline).
	ModeNone Mode = "none"
	// ModeUniform kills a uniform random fraction of APs.
	ModeUniform Mode = "uniform"
	// ModeDisk kills the APs nearest a blast center until the requested
	// fraction is down — a disk-shaped correlated outage.
	ModeDisk Mode = "disk"
	// ModePolygon kills every AP inside an explicit polygon.
	ModePolygon Mode = "polygon"
	// ModeFlood kills APs nearest the city's water features, growing the
	// flood plain until the requested fraction is down.
	ModeFlood Mode = "flood"
	// ModeChurn gives every AP an independent Markov on/off schedule.
	ModeChurn Mode = "churn"
	// ModeFloodFront is a time-evolving flood: the waterline advances away
	// from the mapped water at a configurable speed (see FloodFront).
	ModeFloodFront Mode = "floodfront"
	// ModeBlackout is a rolling district-by-district outage rotation (see
	// RollingBlackout).
	ModeBlackout Mode = "blackout"
)

// Modes lists the selectable injector names (for flag help).
func Modes() []string {
	return []string{string(ModeNone), string(ModeUniform), string(ModeDisk),
		string(ModePolygon), string(ModeFlood), string(ModeChurn),
		string(ModeFloodFront), string(ModeBlackout)}
}

// Config parameterizes an injection.
type Config struct {
	// Mode selects the injector.
	Mode Mode
	// Frac is the target fraction of APs failed (uniform/disk/flood) or,
	// for churn, the long-run fraction of time each AP spends down when
	// MeanUp/MeanDown are not set explicitly.
	Frac float64
	// Seed drives all randomness in the injector.
	Seed int64
	// Center overrides the blast center for ModeDisk; nil uses the city
	// bounds center.
	Center *geo.Point
	// Polygon is the outage area for ModePolygon.
	Polygon geo.Polygon
	// MeanUp and MeanDown are the churn state holding-time means in
	// seconds. When zero they are derived from Frac and DefaultChurnPeriod.
	MeanUp, MeanDown float64
	// Horizon bounds the churn schedule in seconds (default 60): beyond
	// it each AP freezes in its final sampled state.
	Horizon float64

	// FrontSpeed is the ModeFloodFront waterline speed in m/s (default 2).
	FrontSpeed float64
	// FrontStart delays the dynamic fronts (floodfront, blackout) by this
	// many seconds.
	FrontStart float64
	// FrontJitter is the ModeFloodFront per-AP submergence jitter bound in
	// seconds.
	FrontJitter float64
	// Districts, OutageS, StaggerS and Repeat parameterize ModeBlackout
	// (see BlackoutConfig; zero values take its defaults).
	Districts int
	OutageS   float64
	StaggerS  float64
	Repeat    bool
}

// DefaultChurnPeriod is the default mean up+down cycle length in seconds
// when churn timing is derived from Frac alone. It is short relative to
// real AP reboots so that sub-second simulations still see transitions.
const DefaultChurnPeriod = 0.2

// Injection is a concrete failure realization for one mesh.
type Injection struct {
	// Mode records which injector produced this.
	Mode Mode
	// Failed is the static set of APs down from t = 0, sim.Config-ready.
	// The static injectors fill both this legacy map form and FailedSet;
	// hand-built injections may populate either.
	Failed map[int]bool
	// FailedSet is the same static set as a sim.NodeSet bitset — the
	// allocation-free form the metro-scale engine consumes directly.
	FailedSet sim.NodeSet
	// Schedule is the time-varying model (ModeChurn only), else nil.
	Schedule sim.FailureSchedule
	// Desc is a human-readable summary for experiment tables.
	Desc string
}

// NumFailed returns the static failure count, from whichever of the two
// set forms is populated.
func (inj Injection) NumFailed() int {
	if len(inj.Failed) > 0 {
		return len(inj.Failed)
	}
	return inj.FailedSet.Len()
}

// Apply installs the injection onto a simulator config. Both set forms
// are installed; the engine unions them, so an injection carrying one,
// the other, or both behaves identically.
func (inj Injection) Apply(cfg *sim.Config) {
	if len(inj.Failed) > 0 {
		if cfg.FailedAPs == nil {
			cfg.FailedAPs = make(map[int]bool, len(inj.Failed))
		}
		for ap := range inj.Failed {
			cfg.FailedAPs[ap] = true
		}
	}
	if len(inj.FailedSet) > 0 {
		cfg.FailedSet = cfg.FailedSet.Union(inj.FailedSet)
	}
	if inj.Schedule != nil {
		cfg.Schedule = inj.Schedule
	}
}

// ApplySet installs the injection using only the bitset form: no map is
// created or mutated, so repeated sim runs over one injection stay
// allocation-free. Injections carrying only the legacy map are converted
// once here.
func (inj Injection) ApplySet(cfg *sim.Config) {
	set := inj.FailedSet
	if len(set) == 0 && len(inj.Failed) > 0 {
		set = sim.NodeSetFromMap(inj.Failed)
	}
	if len(set) > 0 {
		cfg.FailedSet = cfg.FailedSet.Union(set)
	}
	if inj.Schedule != nil {
		cfg.Schedule = inj.Schedule
	}
}

// Inject realizes cfg against a mesh. The same (mesh, cfg) always produces
// the same injection.
func Inject(m *mesh.Mesh, city *osm.City, cfg Config) (Injection, error) {
	switch cfg.Mode {
	case "", ModeNone:
		return Injection{Mode: ModeNone, Desc: "no faults"}, nil
	case ModeUniform:
		return injectUniform(m, cfg)
	case ModeDisk:
		return injectDisk(m, city, cfg)
	case ModePolygon:
		return injectPolygon(m, cfg)
	case ModeFlood:
		return injectFlood(m, city, cfg)
	case ModeChurn:
		return injectChurn(m, cfg)
	case ModeFloodFront:
		return injectFloodFront(m, city, cfg)
	case ModeBlackout:
		return injectBlackout(m, city, cfg)
	default:
		return Injection{}, fmt.Errorf("faults: unknown mode %q (have %v)", cfg.Mode, Modes())
	}
}

// targetCount converts a fraction into an AP count, clamped to [0, n].
func targetCount(n int, frac float64) int {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return n
	}
	return int(math.Round(frac * float64(n)))
}

func injectUniform(m *mesh.Mesh, cfg Config) (Injection, error) {
	n := m.NumAPs()
	kill := targetCount(n, cfg.Frac)
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(n)
	failed := make(map[int]bool, kill)
	set := sim.NewNodeSet(n)
	for _, ap := range perm[:kill] {
		failed[ap] = true
		set = set.Add(ap)
	}
	return Injection{
		Mode:      ModeUniform,
		Failed:    failed,
		FailedSet: set,
		Desc:      fmt.Sprintf("uniform: %d/%d APs down (p=%.2f)", kill, n, cfg.Frac),
	}, nil
}

// injectDisk kills the `kill` APs nearest the blast center: a disk by
// construction, whose radius adapts to local density.
func injectDisk(m *mesh.Mesh, city *osm.City, cfg Config) (Injection, error) {
	n := m.NumAPs()
	kill := targetCount(n, cfg.Frac)
	center := city.Bounds.Center()
	if cfg.Center != nil {
		center = *cfg.Center
	}
	type apDist struct {
		ap int
		d  float64
	}
	order := make([]apDist, n)
	for i := range m.APs {
		order[i] = apDist{ap: i, d: m.APs[i].Pos.Dist(center)}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].d != order[j].d {
			return order[i].d < order[j].d
		}
		return order[i].ap < order[j].ap
	})
	failed := make(map[int]bool, kill)
	set := sim.NewNodeSet(n)
	radius := 0.0
	for _, od := range order[:kill] {
		failed[od.ap] = true
		set = set.Add(od.ap)
		radius = od.d
	}
	return Injection{
		Mode:      ModeDisk,
		Failed:    failed,
		FailedSet: set,
		Desc: fmt.Sprintf("disk: %d/%d APs down within %.0f m of %v (p=%.2f)",
			kill, n, radius, center, cfg.Frac),
	}, nil
}

func injectPolygon(m *mesh.Mesh, cfg Config) (Injection, error) {
	if len(cfg.Polygon) < 3 {
		return Injection{}, fmt.Errorf("faults: polygon mode needs >= 3 vertices")
	}
	failed := make(map[int]bool)
	set := sim.NewNodeSet(m.NumAPs())
	for i := range m.APs {
		if cfg.Polygon.Contains(m.APs[i].Pos) {
			failed[i] = true
			set = set.Add(i)
		}
	}
	return Injection{
		Mode:      ModePolygon,
		Failed:    failed,
		FailedSet: set,
		Desc:      fmt.Sprintf("polygon: %d/%d APs down inside outage area", len(failed), m.NumAPs()),
	}, nil
}

// injectFlood kills the APs closest to any water feature — the river
// bursting its banks — growing the plain until the fraction is reached.
func injectFlood(m *mesh.Mesh, city *osm.City, cfg Config) (Injection, error) {
	if len(city.Water) == 0 {
		return Injection{}, fmt.Errorf("faults: city %q has no water features to flood", city.Name)
	}
	n := m.NumAPs()
	kill := targetCount(n, cfg.Frac)
	type apDist struct {
		ap int
		d  float64
	}
	order := make([]apDist, n)
	for i := range m.APs {
		best := math.Inf(1)
		for _, w := range city.Water {
			if d := w.Footprint.DistToPoint(m.APs[i].Pos); d < best {
				best = d
			}
		}
		order[i] = apDist{ap: i, d: best}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].d != order[j].d {
			return order[i].d < order[j].d
		}
		return order[i].ap < order[j].ap
	})
	failed := make(map[int]bool, kill)
	set := sim.NewNodeSet(n)
	reach := 0.0
	for _, od := range order[:kill] {
		failed[od.ap] = true
		set = set.Add(od.ap)
		reach = od.d
	}
	return Injection{
		Mode:      ModeFlood,
		Failed:    failed,
		FailedSet: set,
		Desc: fmt.Sprintf("flood: %d/%d APs down within %.0f m of water (p=%.2f)",
			kill, n, reach, cfg.Frac),
	}, nil
}

// RecoverySchedule models injected repair: a failure realization that
// heals at a known instant — crews restore power, APs reboot — after which
// every AP is up. Before RecoverAt the static failed set (and any wrapped
// base schedule, e.g. churn) applies unchanged. It is the deterministic
// recovery model behind store-and-heal delivery (core.SendEventually) and
// its time-to-heal measurements.
type RecoverySchedule struct {
	failed    map[int]bool
	failedSet sim.NodeSet
	base      sim.FailureSchedule
	recoverAt float64
}

// Recovery returns a schedule where the given APs are down until recoverAt
// and everything is up afterward.
func Recovery(failed map[int]bool, recoverAt float64) *RecoverySchedule {
	return &RecoverySchedule{failed: failed, recoverAt: recoverAt}
}

// Down implements sim.FailureSchedule.
func (r *RecoverySchedule) Down(ap int, t float64) bool {
	if t >= r.recoverAt {
		return false
	}
	if r.failed[ap] || r.failedSet.Contains(ap) {
		return true
	}
	return r.base != nil && r.base.Down(ap, t)
}

// RecoverAt returns the healing instant.
func (r *RecoverySchedule) RecoverAt() float64 { return r.recoverAt }

// WithRecovery converts an injection into a time-varying one that fully
// heals at recoverAt: the static failed set moves into a RecoverySchedule
// (wrapping any existing schedule, so churn injections heal too). The
// returned injection has no static failures — recovery only works through
// the schedule, since sim.Config.FailedAPs never comes back up.
func (inj Injection) WithRecovery(recoverAt float64) Injection {
	out := inj
	out.Failed = nil
	out.FailedSet = nil
	out.Schedule = &RecoverySchedule{
		failed:    inj.Failed,
		failedSet: inj.FailedSet,
		base:      inj.Schedule,
		recoverAt: recoverAt,
	}
	out.Desc = fmt.Sprintf("%s; recovers at t=%.1fs", inj.Desc, recoverAt)
	return out
}

// ChurnSchedule is a per-AP alternating up/down schedule sampled from a
// two-state Markov process with exponential holding times. It implements
// sim.FailureSchedule via binary search over precomputed toggle instants,
// so lookups are read-only and safe for concurrent simulations.
type ChurnSchedule struct {
	// toggles[ap] holds the instants at which the AP flips state, ascending.
	toggles [][]float64
	// startDown[ap] is the AP's state at t = 0.
	startDown []bool
}

// Down implements sim.FailureSchedule.
func (s *ChurnSchedule) Down(ap int, t float64) bool {
	if ap < 0 || ap >= len(s.startDown) {
		return false
	}
	// Count toggles at or before t; each flips the state once.
	flips := sort.SearchFloat64s(s.toggles[ap], t)
	if flips < len(s.toggles[ap]) && s.toggles[ap][flips] == t {
		flips++
	}
	down := s.startDown[ap]
	if flips%2 == 1 {
		down = !down
	}
	return down
}

// DownFractionAt returns the fraction of APs down at time t (diagnostics).
func (s *ChurnSchedule) DownFractionAt(t float64) float64 {
	if len(s.startDown) == 0 {
		return 0
	}
	down := 0
	for ap := range s.startDown {
		if s.Down(ap, t) {
			down++
		}
	}
	return float64(down) / float64(len(s.startDown))
}

func injectChurn(m *mesh.Mesh, cfg Config) (Injection, error) {
	meanUp, meanDown := cfg.MeanUp, cfg.MeanDown
	if meanUp <= 0 || meanDown <= 0 {
		// Derive holding times from the target down-fraction:
		// frac = meanDown / (meanUp + meanDown).
		frac := cfg.Frac
		if frac <= 0 || frac >= 1 {
			return Injection{}, fmt.Errorf("faults: churn needs MeanUp/MeanDown or Frac in (0,1), got %v", frac)
		}
		meanDown = frac * DefaultChurnPeriod
		meanUp = DefaultChurnPeriod - meanDown
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 60
	}
	n := m.NumAPs()
	s := &ChurnSchedule{
		toggles:   make([][]float64, n),
		startDown: make([]bool, n),
	}
	pDown := meanDown / (meanUp + meanDown)
	failed := make(map[int]bool)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for ap := 0; ap < n; ap++ {
		// Stationary initial state, then alternating exponential holds.
		down := rng.Float64() < pDown
		s.startDown[ap] = down
		if down {
			failed[ap] = true
		}
		t := 0.0
		for {
			mean := meanUp
			if down {
				mean = meanDown
			}
			t += rng.ExpFloat64() * mean
			if t >= horizon {
				break
			}
			s.toggles[ap] = append(s.toggles[ap], t)
			down = !down
		}
	}
	return Injection{
		Mode:     ModeChurn,
		Failed:   nil, // the schedule covers t = 0 too
		Schedule: s,
		Desc: fmt.Sprintf("churn: %d APs, mean up %.3fs / down %.3fs (stationary down %.2f), %d down at t=0",
			n, meanUp, meanDown, pDown, len(failed)),
	}, nil
}
