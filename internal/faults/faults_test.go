package faults

import (
	"math"
	"reflect"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/sim"
)

func testMesh(t testing.TB, seed int64) (*core.Network, *mesh.Mesh) {
	t.Helper()
	n, err := core.FromSpec(citygen.SmallTestSpec(seed), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n, n.Mesh
}

func TestUniformKillsExactFraction(t *testing.T) {
	n, m := testMesh(t, 11)
	for _, frac := range []float64{0, 0.1, 0.3, 0.5, 1} {
		inj, err := Inject(m, n.City, Config{Mode: ModeUniform, Frac: frac, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		want := int(math.Round(frac * float64(m.NumAPs())))
		if inj.NumFailed() != want {
			t.Errorf("frac %v: killed %d, want exactly %d of %d",
				frac, inj.NumFailed(), want, m.NumAPs())
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	n, m := testMesh(t, 12)
	a, _ := Inject(m, n.City, Config{Mode: ModeUniform, Frac: 0.3, Seed: 42})
	b, _ := Inject(m, n.City, Config{Mode: ModeUniform, Frac: 0.3, Seed: 42})
	if !reflect.DeepEqual(a.Failed, b.Failed) {
		t.Error("same seed produced different failure sets")
	}
	c, _ := Inject(m, n.City, Config{Mode: ModeUniform, Frac: 0.3, Seed: 43})
	if reflect.DeepEqual(a.Failed, c.Failed) {
		t.Error("different seeds produced identical failure sets")
	}
}

func TestDiskIsSpatiallyCorrelated(t *testing.T) {
	n, m := testMesh(t, 13)
	inj, err := Inject(m, n.City, Config{Mode: ModeDisk, Frac: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Round(0.25 * float64(m.NumAPs())))
	if inj.NumFailed() != want {
		t.Fatalf("killed %d, want %d", inj.NumFailed(), want)
	}
	// Every dead AP must be nearer the center than every surviving AP
	// (ties aside): the failure set is a disk.
	center := n.City.Bounds.Center()
	maxDead := 0.0
	for ap := range inj.Failed {
		if d := m.APs[ap].Pos.Dist(center); d > maxDead {
			maxDead = d
		}
	}
	for i := range m.APs {
		if inj.Failed[i] {
			continue
		}
		if d := m.APs[i].Pos.Dist(center); d < maxDead-1e-9 {
			t.Fatalf("surviving AP %d at %.1f m inside blast radius %.1f m", i, d, maxDead)
		}
	}
}

func TestDiskCustomCenter(t *testing.T) {
	n, m := testMesh(t, 14)
	c := geo.Pt(0, 0) // city corner
	inj, err := Inject(m, n.City, Config{Mode: ModeDisk, Frac: 0.1, Center: &c})
	if err != nil {
		t.Fatal(err)
	}
	boundsCenter := n.City.Bounds.Center()
	// The failure set must hug the corner, not the city center.
	for ap := range inj.Failed {
		if m.APs[ap].Pos.Dist(c) > m.APs[ap].Pos.Dist(boundsCenter) {
			return // at least one AP closer to the corner: plausible disk
		}
	}
	if inj.NumFailed() > 0 {
		t.Error("corner-centered disk killed only center-hugging APs")
	}
}

func TestPolygonKillsOnlyInside(t *testing.T) {
	n, m := testMesh(t, 15)
	b := n.City.Bounds
	// Left half of the city.
	half := geo.Polygon{
		b.Min, geo.Pt(b.Center().X, b.Min.Y),
		geo.Pt(b.Center().X, b.Max.Y), geo.Pt(b.Min.X, b.Max.Y),
	}
	inj, err := Inject(m, n.City, Config{Mode: ModePolygon, Polygon: half})
	if err != nil {
		t.Fatal(err)
	}
	if inj.NumFailed() == 0 {
		t.Fatal("no APs inside the left half?")
	}
	for i := range m.APs {
		in := half.Contains(m.APs[i].Pos)
		if in != inj.Failed[i] {
			t.Fatalf("AP %d inside=%v failed=%v", i, in, inj.Failed[i])
		}
	}
}

func TestFloodNeedsWater(t *testing.T) {
	n, m := testMesh(t, 16) // SmallTestSpec has no rivers
	if len(n.City.Water) == 0 {
		if _, err := Inject(m, n.City, Config{Mode: ModeFlood, Frac: 0.2}); err == nil {
			t.Error("flooding a waterless city should error")
		}
	}
}

func TestFloodHugsTheRiver(t *testing.T) {
	spec, ok := citygen.Preset("boston")
	if !ok {
		t.Fatal("no boston preset")
	}
	spec.Width, spec.Height = spec.Width/3, spec.Height/3
	spec.Rivers[0].Start = spec.Rivers[0].Start.Scale(1.0 / 3)
	spec.Rivers[0].End = spec.Rivers[0].End.Scale(1.0 / 3)
	n, err := core.FromSpec(spec, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(n.City.Water) == 0 {
		t.Skip("scaled boston lost its river")
	}
	inj, err := Inject(n.Mesh, n.City, Config{Mode: ModeFlood, Frac: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Round(0.2 * float64(n.Mesh.NumAPs())))
	if inj.NumFailed() != want {
		t.Fatalf("killed %d, want %d", inj.NumFailed(), want)
	}
	// Dead APs must be nearer water than survivors (flood plain property).
	distToWater := func(ap int) float64 {
		best := math.Inf(1)
		for _, w := range n.City.Water {
			if d := w.Footprint.DistToPoint(n.Mesh.APs[ap].Pos); d < best {
				best = d
			}
		}
		return best
	}
	maxDead := 0.0
	for ap := range inj.Failed {
		if d := distToWater(ap); d > maxDead {
			maxDead = d
		}
	}
	for i := range n.Mesh.APs {
		if inj.Failed[i] {
			continue
		}
		if d := distToWater(i); d < maxDead-1e-9 {
			t.Fatalf("surviving AP %d is %.1f m from water, inside the %.1f m flood plain", i, d, maxDead)
		}
	}
}

func TestChurnScheduleDeterministicAndStationary(t *testing.T) {
	n, m := testMesh(t, 17)
	mk := func(seed int64) *ChurnSchedule {
		inj, err := Inject(m, n.City, Config{Mode: ModeChurn, Frac: 0.3, Seed: seed, Horizon: 10})
		if err != nil {
			t.Fatal(err)
		}
		return inj.Schedule.(*ChurnSchedule)
	}
	a, b := mk(5), mk(5)
	for _, tm := range []float64{0, 0.01, 0.5, 3, 9.9} {
		for ap := 0; ap < m.NumAPs(); ap += 7 {
			if a.Down(ap, tm) != b.Down(ap, tm) {
				t.Fatalf("same seed disagrees at ap=%d t=%v", ap, tm)
			}
		}
	}
	// Long-run down fraction should hover near the target 0.3.
	samples, down := 0, 0
	for _, tm := range []float64{0.5, 1.5, 2.5, 4, 6, 8} {
		for ap := 0; ap < m.NumAPs(); ap++ {
			samples++
			if a.Down(ap, tm) {
				down++
			}
		}
	}
	got := float64(down) / float64(samples)
	if got < 0.15 || got > 0.45 {
		t.Errorf("down fraction %.3f far from target 0.30", got)
	}
}

func TestChurnTogglesFlipState(t *testing.T) {
	s := &ChurnSchedule{
		toggles:   [][]float64{{1, 2, 3}},
		startDown: []bool{false},
	}
	cases := []struct {
		t    float64
		down bool
	}{
		{0, false}, {0.99, false}, {1, true}, {1.5, true},
		{2, false}, {2.5, false}, {3, true}, {100, true},
	}
	for _, c := range cases {
		if got := s.Down(0, c.t); got != c.down {
			t.Errorf("Down(0, %v) = %v, want %v", c.t, got, c.down)
		}
	}
	if s.Down(5, 0) {
		t.Error("out-of-range AP should never be down")
	}
}

func TestApplyMergesIntoSimConfig(t *testing.T) {
	n, m := testMesh(t, 18)
	inj, err := Inject(m, n.City, Config{Mode: ModeUniform, Frac: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.FailedAPs = map[int]bool{999999: true}
	inj.Apply(&cfg)
	if !cfg.FailedAPs[999999] {
		t.Error("Apply must merge, not replace")
	}
	for ap := range inj.Failed {
		if !cfg.FailedAPs[ap] {
			t.Fatalf("AP %d not applied", ap)
		}
	}
}

func TestInjectUnknownMode(t *testing.T) {
	n, m := testMesh(t, 19)
	if _, err := Inject(m, n.City, Config{Mode: "earthquake"}); err == nil {
		t.Error("unknown mode should error")
	}
	inj, err := Inject(m, n.City, Config{})
	if err != nil || inj.NumFailed() != 0 || inj.Schedule != nil {
		t.Error("empty mode should be a no-op injection")
	}
}

func TestRecoveryScheduleHealsAtInstant(t *testing.T) {
	r := Recovery(map[int]bool{3: true, 7: true}, 5.0)
	if !r.Down(3, 0) || !r.Down(7, 4.999) {
		t.Error("failed APs must be down before RecoverAt")
	}
	if r.Down(3, 5.0) || r.Down(7, 100) {
		t.Error("every AP must be up at and after RecoverAt")
	}
	if r.Down(1, 0) {
		t.Error("unlisted APs are never down")
	}
	if r.RecoverAt() != 5.0 {
		t.Errorf("RecoverAt = %v", r.RecoverAt())
	}
}

func TestWithRecoveryMovesStaticFailuresIntoSchedule(t *testing.T) {
	n, m := testMesh(t, 23)
	inj, err := Inject(m, n.City, Config{Mode: ModeUniform, Frac: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if inj.NumFailed() == 0 {
		t.Fatal("expected static failures")
	}
	healed := inj.WithRecovery(10)
	if healed.NumFailed() != 0 {
		t.Error("WithRecovery must clear the static failed set (it can never heal)")
	}
	if healed.Schedule == nil {
		t.Fatal("WithRecovery must install a schedule")
	}
	var anyAP int
	for ap := range inj.Failed {
		anyAP = ap
		break
	}
	if !healed.Schedule.Down(anyAP, 0) {
		t.Error("failed AP must be down before recovery")
	}
	if healed.Schedule.Down(anyAP, 10) {
		t.Error("failed AP must be up after recovery")
	}
	// Churn injections heal too: the base schedule is muted after RecoverAt.
	cinj, err := Inject(m, n.City, Config{Mode: ModeChurn, Frac: 0.5, Seed: 5, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	chealed := cinj.WithRecovery(3)
	for ap := 0; ap < m.NumAPs(); ap++ {
		if chealed.Schedule.Down(ap, 3.5) {
			t.Fatalf("AP %d still down after churn recovery instant", ap)
		}
	}
}

func TestOffsetScheduleShiftsClock(t *testing.T) {
	r := Recovery(map[int]bool{1: true}, 5.0)
	off := sim.OffsetSchedule{Base: r, Offset: 4.5}
	if !off.Down(1, 0.2) {
		t.Error("offset 4.5 + t 0.2 = 4.7 is before recovery; AP must be down")
	}
	if off.Down(1, 0.6) {
		t.Error("offset 4.5 + t 0.6 = 5.1 is after recovery; AP must be up")
	}
	empty := sim.OffsetSchedule{}
	if empty.Down(0, 0) {
		t.Error("nil base schedule means nothing is down")
	}
}
