// Dynamic disaster fronts: time-evolving failure schedules in which the
// set of dead APs is a *moving* region, not a snapshot. The static
// injectors (uniform/disk/polygon/flood) answer "how does the mesh cope
// with this much damage"; the fronts answer the paper's harder question —
// does delivery keep working while the disaster is still advancing.
//
// Both fronts implement sim.FailureSchedule over precomputed per-AP
// timelines, so Down is a read-only lookup: deterministic under the seed
// and safe for the parallel experiment runner's concurrent simulations.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
)

// FloodFrontConfig parameterizes an advancing waterline.
type FloodFrontConfig struct {
	// SpeedMps is the waterline's advance speed away from the mapped water
	// features, in meters per second (default 2 — a fast urban flash
	// flood, chosen so experiment-scale runs see the front move).
	SpeedMps float64
	// StartS is the instant the banks burst; before it nothing is down.
	StartS float64
	// MaxReach caps how far from the water the front ever advances, in
	// meters; 0 leaves it unbounded.
	MaxReach float64
	// JitterS adds a per-AP uniform [0, JitterS) delay to its submergence
	// instant — buildings flood unevenly (elevation, drainage) — sampled
	// deterministically from Seed.
	JitterS float64
	// Seed drives the jitter sampling.
	Seed int64
}

// FloodFront is a waterline advancing along the city's mapped water at
// constant speed: AP i drowns at StartS + dist(i, water)/SpeedMps (+
// jitter) and stays down. It implements sim.FailureSchedule.
type FloodFront struct {
	downAt []float64
	speed  float64
	start  float64
}

// NewFloodFront precomputes every AP's submergence instant from its
// distance to the nearest water feature.
func NewFloodFront(m *mesh.Mesh, city *osm.City, cfg FloodFrontConfig) (*FloodFront, error) {
	if len(city.Water) == 0 {
		return nil, fmt.Errorf("faults: city %q has no water features for a flood front", city.Name)
	}
	if cfg.SpeedMps <= 0 {
		cfg.SpeedMps = 2
	}
	f := &FloodFront{
		downAt: make([]float64, m.NumAPs()),
		speed:  cfg.SpeedMps,
		start:  cfg.StartS,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range m.APs {
		best := math.Inf(1)
		for _, w := range city.Water {
			if d := w.Footprint.DistToPoint(m.APs[i].Pos); d < best {
				best = d
			}
		}
		if cfg.MaxReach > 0 && best > cfg.MaxReach {
			f.downAt[i] = math.Inf(1)
			// Keep the rng stream aligned: every AP draws exactly once.
			rng.Float64()
			continue
		}
		f.downAt[i] = cfg.StartS + best/cfg.SpeedMps + rng.Float64()*cfg.JitterS
	}
	return f, nil
}

// Down implements sim.FailureSchedule: an AP is down once the waterline
// has reached it, forever (flood water does not recede on mesh timescales;
// wrap with a RecoverySchedule for drained-and-restored scenarios).
func (f *FloodFront) Down(ap int, t float64) bool {
	if ap < 0 || ap >= len(f.downAt) {
		return false
	}
	// Beyond-MaxReach APs carry +Inf and must stay up even when callers
	// probe the final state with t = +Inf.
	return !math.IsInf(f.downAt[ap], 1) && t >= f.downAt[ap]
}

// ReachAt returns the waterline distance from the water at time t.
func (f *FloodFront) ReachAt(t float64) float64 {
	if t <= f.start {
		return 0
	}
	return (t - f.start) * f.speed
}

// DownFractionAt returns the fraction of APs submerged at time t.
func (f *FloodFront) DownFractionAt(t float64) float64 {
	if len(f.downAt) == 0 {
		return 0
	}
	n := 0
	for ap := range f.downAt {
		if f.Down(ap, t) {
			n++
		}
	}
	return float64(n) / float64(len(f.downAt))
}

// injectFloodFront realizes a ModeFloodFront config. Frac, when set in
// (0, 1), caps the front so at most that fraction of APs ever drowns (the
// MaxReach is derived from the Frac-quantile AP distance), making the
// dynamic front directly comparable to a static ModeFlood snapshot of the
// same magnitude.
func injectFloodFront(m *mesh.Mesh, city *osm.City, cfg Config) (Injection, error) {
	fc := FloodFrontConfig{
		SpeedMps: cfg.FrontSpeed,
		StartS:   cfg.FrontStart,
		JitterS:  cfg.FrontJitter,
		Seed:     cfg.Seed,
	}
	if cfg.Frac > 0 && cfg.Frac < 1 {
		if len(city.Water) == 0 {
			return Injection{}, fmt.Errorf("faults: city %q has no water features for a flood front", city.Name)
		}
		dists := make([]float64, m.NumAPs())
		for i := range m.APs {
			best := math.Inf(1)
			for _, w := range city.Water {
				if d := w.Footprint.DistToPoint(m.APs[i].Pos); d < best {
					best = d
				}
			}
			dists[i] = best
		}
		sort.Float64s(dists)
		k := targetCount(len(dists), cfg.Frac)
		if k > 0 {
			fc.MaxReach = dists[k-1]
		} else {
			fc.MaxReach = -1 // nothing ever drowns; NewFloodFront treats <=0 as unbounded, so clamp below
		}
	}
	if fc.MaxReach < 0 {
		return Injection{Mode: ModeFloodFront, Desc: "flood-front: frac 0, nothing drowns"}, nil
	}
	f, err := NewFloodFront(m, city, fc)
	if err != nil {
		return Injection{}, err
	}
	speed := fc.SpeedMps
	if speed <= 0 {
		speed = 2
	}
	return Injection{
		Mode:     ModeFloodFront,
		Schedule: f,
		Desc: fmt.Sprintf("flood-front: waterline %.1f m/s from t=%.1fs, final down fraction %.2f",
			speed, fc.StartS, f.DownFractionAt(math.Inf(1))),
	}, nil
}

// BlackoutConfig parameterizes a rolling district-by-district blackout.
type BlackoutConfig struct {
	// Districts is the side length of the KxK district grid laid over the
	// city bounds (default 4, i.e. up to 16 districts; empty cells are
	// skipped).
	Districts int
	// OutageS is each district's outage window length in seconds
	// (default 10). Zero-duration windows are legal and black out nothing.
	OutageS float64
	// StaggerS is the start-to-start spacing between consecutive
	// districts' windows (default OutageS — back-to-back; smaller values
	// overlap neighbouring outages).
	StaggerS float64
	// StartS is when the first district goes dark.
	StartS float64
	// Repeat cycles the rotation forever with period = districts *
	// StaggerS; otherwise one pass and the grid stays up.
	Repeat bool
	// Seed shuffles the district rotation order.
	Seed int64
}

// RollingBlackout is a load-shedding rotation: the city is cut into
// districts and each district is switched off for a window, one after
// another in a seed-shuffled order. It implements sim.FailureSchedule.
type RollingBlackout struct {
	// offS[ap] is the AP's window start relative to StartS; -1 marks an
	// AP outside every scheduled district (never happens today, kept for
	// safety against future sparse layouts).
	offS   []float64
	outage float64
	start  float64
	period float64
	repeat bool
	rounds int // number of occupied districts
}

// NewRollingBlackout builds the rotation for a realized mesh.
func NewRollingBlackout(m *mesh.Mesh, city *osm.City, cfg BlackoutConfig) (*RollingBlackout, error) {
	if cfg.Districts <= 0 {
		cfg.Districts = 4
	}
	if cfg.OutageS < 0 {
		return nil, fmt.Errorf("faults: negative blackout window %v", cfg.OutageS)
	}
	if cfg.OutageS == 0 {
		cfg.OutageS = 10
	}
	if cfg.StaggerS <= 0 {
		cfg.StaggerS = cfg.OutageS
	}
	k := cfg.Districts
	b := city.Bounds
	cw, ch := b.Width()/float64(k), b.Height()/float64(k)
	if cw <= 0 || ch <= 0 {
		return nil, fmt.Errorf("faults: degenerate city bounds %v", b)
	}
	cell := func(p geo.Point) int {
		cx := int((p.X - b.Min.X) / cw)
		cy := int((p.Y - b.Min.Y) / ch)
		if cx < 0 {
			cx = 0
		}
		if cx >= k {
			cx = k - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= k {
			cy = k - 1
		}
		return cy*k + cx
	}
	// Occupied districts, in cell order, then shuffled into the rotation.
	apCell := make([]int, m.NumAPs())
	occupied := make(map[int]bool)
	for i := range m.APs {
		c := cell(m.APs[i].Pos)
		apCell[i] = c
		occupied[c] = true
	}
	cells := make([]int, 0, len(occupied))
	for c := range occupied {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
	slot := make(map[int]int, len(cells))
	for i, c := range cells {
		slot[c] = i
	}
	rb := &RollingBlackout{
		offS:   make([]float64, m.NumAPs()),
		outage: cfg.OutageS,
		start:  cfg.StartS,
		period: float64(len(cells)) * cfg.StaggerS,
		repeat: cfg.Repeat,
		rounds: len(cells),
	}
	for i := range apCell {
		rb.offS[i] = float64(slot[apCell[i]]) * cfg.StaggerS
	}
	return rb, nil
}

// NumDistricts returns the number of occupied districts in the rotation.
func (rb *RollingBlackout) NumDistricts() int { return rb.rounds }

// Down implements sim.FailureSchedule.
func (rb *RollingBlackout) Down(ap int, t float64) bool {
	if ap < 0 || ap >= len(rb.offS) || rb.outage <= 0 {
		return false
	}
	rel := t - rb.start
	if rel < 0 {
		return false
	}
	if rb.repeat && rb.period > 0 {
		rel = math.Mod(rel, rb.period)
	}
	off := rb.offS[ap]
	return rel >= off && rel < off+rb.outage
}

// DownFractionAt returns the fraction of APs dark at time t.
func (rb *RollingBlackout) DownFractionAt(t float64) float64 {
	if len(rb.offS) == 0 {
		return 0
	}
	n := 0
	for ap := range rb.offS {
		if rb.Down(ap, t) {
			n++
		}
	}
	return float64(n) / float64(len(rb.offS))
}

// injectBlackout realizes a ModeBlackout config.
func injectBlackout(m *mesh.Mesh, city *osm.City, cfg Config) (Injection, error) {
	rb, err := NewRollingBlackout(m, city, BlackoutConfig{
		Districts: cfg.Districts,
		OutageS:   cfg.OutageS,
		StaggerS:  cfg.StaggerS,
		StartS:    cfg.FrontStart,
		Repeat:    cfg.Repeat,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return Injection{}, err
	}
	return Injection{
		Mode:     ModeBlackout,
		Schedule: rb,
		Desc: fmt.Sprintf("rolling blackout: %d districts, %.1fs windows, repeat=%v",
			rb.NumDistricts(), rb.outage, rb.repeat),
	}, nil
}
