// Mobile carrier nodes and run-time invariant probing.
//
// A Mobile is a moving participant — a bus still running its route, an
// emergency vehicle, a pedestrian with a phone — that acts as a carrier
// (data mule): it overhears broadcast transmissions, stores the packet,
// and rebroadcasts it periodically from wherever its track has taken it.
// Carriers bypass the forwarding Policy entirely: they are not APs, know
// nothing about the city map, and implement pure store-carry-forward. That
// keeps every Policy (and the fwd kernel parity harness) untouched while
// letting a moving radio stitch a partitioned mesh back together.
//
// The Probe hook exposes the engine's per-event ground truth so invariant
// checkers (and the fuzz harness) can verify structural properties — loop
// freedom, strict TTL decrease, no traffic through failed APs — under
// arbitrary churn and movement without re-implementing engine logic.
package sim

import (
	"fmt"

	"citymesh/internal/geo"
)

// MobilePath is a deterministic motion plan: position as a pure function
// of simulation time. internal/mobility's Track implements it; sim
// deliberately depends only on this interface so the engine stays free of
// track-construction concerns.
type MobilePath interface {
	PosAt(t float64) geo.Point
}

// OffsetPath shifts a MobilePath's time origin, the mobility analogue of
// OffsetSchedule: each sim.Run starts its clock at zero, so a re-attempt
// at global time T wraps every path with Offset T — the run then sees the
// bus where it actually is *now*, not back at its depot.
type OffsetPath struct {
	Base   MobilePath
	Offset float64
}

// PosAt implements MobilePath.
func (o OffsetPath) PosAt(t float64) geo.Point { return o.Base.PosAt(t + o.Offset) }

// DefaultMobileInterval is the carrier rebroadcast period in seconds when
// Mobile.IntervalS is zero: once a second, the beaconing cadence of a
// store-carry-forward radio.
const DefaultMobileInterval = 1.0

// DefaultMobileHorizon bounds carrier rebroadcasting when Mobile.HorizonS
// is zero. It matches the default churn horizon: past it the run's
// interesting dynamics are over.
const DefaultMobileHorizon = 60.0

// Mobile is a moving carrier node. Mobiles occupy node indices
// NumAPs()..NumAPs()+len(Mobiles)-1 in a run; they never fail (a vehicle
// drives out of a flood zone rather than drowning with it), never deliver
// (they are not in any building), and always rebroadcast while they hold
// a live-TTL packet.
type Mobile struct {
	// Path gives the carrier's position at every instant. Required.
	Path MobilePath
	// IntervalS is the rebroadcast period in seconds once the carrier
	// holds the packet (default DefaultMobileInterval).
	IntervalS float64
	// HorizonS stops the carrier's rebroadcasting after this simulation
	// time (default DefaultMobileHorizon).
	HorizonS float64
}

func (mb Mobile) interval() float64 {
	if mb.IntervalS <= 0 {
		return DefaultMobileInterval
	}
	return mb.IntervalS
}

func (mb Mobile) horizon() float64 {
	if mb.HorizonS <= 0 {
		return DefaultMobileHorizon
	}
	return mb.HorizonS
}

// ProbeKind labels a ProbeEvent.
type ProbeKind uint8

const (
	// ProbeAccept fires when a node accepts (first, non-duplicate
	// reception of) the packet.
	ProbeAccept ProbeKind = iota
	// ProbeTransmit fires when a node actually transmits (broadcast or
	// unicast), after the engine's own down-check.
	ProbeTransmit
	// ProbeDeliver fires when an accepted packet reaches an AP of the
	// destination building.
	ProbeDeliver
)

// ProbeEvent is the engine's ground truth for one observable action.
type ProbeEvent struct {
	Kind ProbeKind
	// Node is the acting node: the accepter/transmitter/deliverer. AP
	// indices are < NumAPs; carrier indices follow.
	Node int
	// From is the transmitting node for ProbeAccept (-1 for the source
	// injection); -1 otherwise.
	From int
	// T is the simulation time of the action.
	T float64
	// TTL is the node's remaining TTL after an accept, or the
	// transmitter's remaining TTL for a transmit; 0 for deliver events.
	TTL int
}

// InvariantChecker verifies the forwarding kernel's structural properties
// from a run's probe stream, independent of any policy:
//
//  1. Loop freedom: no node accepts the packet twice, and nothing
//     transmits a packet it never accepted.
//  2. TTL strictly decreases: every accept carries strictly less TTL than
//     the transmitter held (exactly one less, the wire decrement).
//  3. Dead silence: a failed AP never accepts, transmits, or takes
//     delivery.
//
// Wire one up with:
//
//	ic := sim.NewInvariantChecker(cfg)
//	cfg.Probe = ic.Probe
//	res, err := sim.NewEngine(m, city, pol).Run(pkt, cfg)
//	violations := ic.Violations()
//
// When the run declares an Adversary, the checker runs adversary-aware:
// violations in which any involved node is declared Byzantine are expected
// misbehavior, tallied in ByzantineViolations() and kept out of the failing
// report — a TTL-resetter *should* trip the strict-decrement invariant.
// Violations among honest nodes still fail, which is the property the
// byzantine experiment gates on.
//
// The checker is not safe for concurrent use; give each run its own.
type InvariantChecker struct {
	numAPs    int
	failedAPs map[int]bool
	failedSet NodeSet
	schedule  FailureSchedule
	adversary *Adversary

	acceptTTL  map[int]int
	transmits  map[int]int
	violations []string
	total      int
	byzantine  int
}

// maxViolations caps the recorded violation list; a broken engine would
// otherwise drown the report in millions of identical lines. Total() keeps
// counting past the cap so adversary runs report true magnitudes.
const maxViolations = 32

// NewInvariantChecker builds a checker for runs using cfg's failure model
// against a mesh with numAPs access points.
func NewInvariantChecker(numAPs int, cfg Config) *InvariantChecker {
	return &InvariantChecker{
		numAPs:    numAPs,
		failedAPs: cfg.FailedAPs,
		failedSet: cfg.FailedSet,
		schedule:  cfg.Schedule,
		adversary: cfg.Adversary,
		acceptTTL: make(map[int]int),
		transmits: make(map[int]int),
	}
}

func (ic *InvariantChecker) down(node int, t float64) bool {
	if node >= ic.numAPs {
		return false // carriers never fail
	}
	if ic.failedAPs[node] || ic.failedSet.Contains(node) {
		return true
	}
	return ic.schedule != nil && ic.schedule.Down(node, t)
}

// violate records one breach. When any involved node is declared Byzantine
// the breach is expected misbehavior and only bumps the Byzantine tally;
// honest breaches count toward Total and fill the capped report list.
func (ic *InvariantChecker) violate(involved []int, format string, args ...any) {
	for _, n := range involved {
		if n >= 0 && ic.adversary.IsByzantine(n) {
			ic.byzantine++
			return
		}
	}
	ic.total++
	if len(ic.violations) < maxViolations {
		ic.violations = append(ic.violations, fmt.Sprintf(format, args...))
	}
}

// Probe consumes one engine event; install it as Config.Probe.
func (ic *InvariantChecker) Probe(e ProbeEvent) {
	switch e.Kind {
	case ProbeAccept:
		if _, dup := ic.acceptTTL[e.Node]; dup {
			ic.violate([]int{e.Node, e.From}, "node %d accepted twice (t=%.6f): forwarding loop", e.Node, e.T)
			return
		}
		if ic.down(e.Node, e.T) {
			ic.violate([]int{e.Node}, "failed AP %d accepted at t=%.6f", e.Node, e.T)
		}
		if e.From >= 0 {
			fromTTL, ok := ic.acceptTTL[e.From]
			if !ok {
				ic.violate([]int{e.Node, e.From}, "node %d accepted from %d, which never accepted", e.Node, e.From)
			} else if e.TTL != fromTTL-1 {
				ic.violate([]int{e.Node, e.From},
					"node %d accepted TTL %d from node %d holding TTL %d: not a strict decrement",
					e.Node, e.TTL, e.From, fromTTL)
			}
		}
		ic.acceptTTL[e.Node] = e.TTL
	case ProbeTransmit:
		ic.transmits[e.Node]++
		if _, ok := ic.acceptTTL[e.Node]; !ok {
			ic.violate([]int{e.Node}, "node %d transmitted without ever accepting", e.Node)
		}
		if ic.down(e.Node, e.T) {
			ic.violate([]int{e.Node}, "failed AP %d transmitted at t=%.6f", e.Node, e.T)
		}
		if e.TTL <= 0 {
			ic.violate([]int{e.Node}, "node %d transmitted with TTL %d exhausted", e.Node, e.TTL)
		}
	case ProbeDeliver:
		if _, ok := ic.acceptTTL[e.Node]; !ok {
			ic.violate([]int{e.Node}, "delivery at AP %d without an accept", e.Node)
		}
		if ic.down(e.Node, e.T) {
			ic.violate([]int{e.Node}, "delivery to failed AP %d at t=%.6f", e.Node, e.T)
		}
	}
}

// Violations returns the recorded honest-node invariant breaches (nil when
// clean), capped at maxViolations lines; when Total exceeds the cap, a
// final summary line reports how many went unrecorded.
func (ic *InvariantChecker) Violations() []string {
	if ic.total > maxViolations {
		return append(ic.violations[:maxViolations:maxViolations],
			fmt.Sprintf("... and %d more honest violations (total %d)", ic.total-maxViolations, ic.total))
	}
	return ic.violations
}

// Total is the full count of honest-node violations, including those past
// the recorded-report cap.
func (ic *InvariantChecker) Total() int { return ic.total }

// ByzantineViolations counts breaches attributed to declared-Byzantine
// nodes — expected misbehavior under an Adversary, excluded from
// Violations and Total.
func (ic *InvariantChecker) ByzantineViolations() int { return ic.byzantine }
