package sim

import "testing"

// stepSchedule takes an AP down at a fixed time, forever.
type stepSchedule struct {
	ap int
	at float64
}

func (s stepSchedule) Down(ap int, t float64) bool { return ap == s.ap && t >= s.at }

// windowSchedule takes an AP down only inside [from, to).
type windowSchedule struct {
	ap       int
	from, to float64
}

func (s windowSchedule) Down(ap int, t float64) bool {
	return ap == s.ap && t >= s.from && t < s.to
}

func TestScheduleCutsChainMidRun(t *testing.T) {
	city, m := chainCity(6, 40)
	// Down from t=0: equivalent to a static failure of the midpoint.
	cfg := DefaultConfig()
	cfg.Schedule = stepSchedule{ap: 3, at: 0}
	res := Run(m, city, floodAll{}, mkPacket(0, 5, 255), cfg)
	if res.Delivered {
		t.Error("midpoint down from t=0 should cut the chain")
	}
	if res.LostToDeadAP == 0 {
		t.Error("frames at the dead AP should be diagnosed as LostToDeadAP")
	}
	// Down only long after the packet passed: no effect.
	cfg.Schedule = stepSchedule{ap: 3, at: 1e6}
	if res := Run(m, city, floodAll{}, mkPacket(0, 5, 255), cfg); !res.Delivered {
		t.Error("failure after propagation must not block delivery")
	}
}

func TestScheduleRecoveryDoesNotResurrectFrame(t *testing.T) {
	city, m := chainCity(6, 40)
	// AP 3 is down only during the propagation wave (first 50 ms) and
	// recovers afterwards — but the frame is gone: no delivery.
	cfg := DefaultConfig()
	cfg.Schedule = windowSchedule{ap: 3, from: 0, to: 0.05}
	res := Run(m, city, floodAll{}, mkPacket(0, 5, 255), cfg)
	if res.Delivered {
		t.Error("an AP down exactly during the wave must drop the frame for good")
	}
}

func TestScheduledSourceSuppressed(t *testing.T) {
	city, m := chainCity(4, 40)
	cfg := DefaultConfig()
	cfg.Schedule = stepSchedule{ap: 0, at: 0}
	res := Run(m, city, floodAll{}, mkPacket(0, 3, 255), cfg)
	if res.APsReached != 0 || res.Delivered {
		t.Errorf("scheduled-down source should inject nothing: %+v", res)
	}
}

func TestLossDiagnosticsAttribution(t *testing.T) {
	city, m := chainCity(5, 40)

	// Dead-AP losses: middle AP statically failed.
	cfg := DefaultConfig()
	cfg.FailedAPs = map[int]bool{2: true}
	res := Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if res.LostToDeadAP == 0 {
		t.Error("static failure should count LostToDeadAP")
	}
	if res.LostToLoss != 0 || res.LostToCollision != 0 {
		t.Errorf("unexpected loss attribution: %+v", res)
	}

	// Random losses: full loss probability, nothing else.
	cfg = DefaultConfig()
	cfg.LossProb = 1
	res = Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if res.LostToLoss == 0 {
		t.Error("LossProb drops should count LostToLoss")
	}
	if res.LostToDeadAP != 0 {
		t.Errorf("no dead APs in this run: %+v", res)
	}

	// Collision losses: zero jitter and a wide collision window force
	// simultaneous arrivals at shared neighbors.
	cfg = DefaultConfig()
	cfg.JitterMax = 0
	cfg.CollisionWindow = 0.5
	res = Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if res.LostToCollision == 0 {
		t.Skipf("no collisions materialized: %+v", res)
	}
}
