package sim

import (
	"testing"

	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

// chainCity builds n one-AP buildings in a line with the given spacing so
// that each AP reaches only its immediate neighbors.
func chainCity(n int, spacing float64) (*osm.City, *mesh.Mesh) {
	city := &osm.City{Name: "chain"}
	for i := 0; i < n; i++ {
		c := geo.Pt(float64(i)*spacing, 0)
		fp := geo.Polygon{
			c.Add(geo.Pt(-2, -2)), c.Add(geo.Pt(2, -2)),
			c.Add(geo.Pt(2, 2)), c.Add(geo.Pt(-2, 2)),
		}
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding, Footprint: fp, Centroid: c,
		})
	}
	cfg := mesh.DefaultConfig()
	cfg.Density = 1e-12 // exactly MinPerBuilding APs
	return city, mesh.Place(city, cfg)
}

// floodAll is a local flooding policy for engine tests.
type floodAll struct{}

func (floodAll) Name() string { return "floodAll" }
func (floodAll) OnReceive(*Context, int, *packet.Packet, int) Decision {
	return Decision{Rebroadcast: true}
}

// silent never forwards.
type silent struct{}

func (silent) Name() string { return "silent" }
func (silent) OnReceive(*Context, int, *packet.Packet, int) Decision {
	return Decision{}
}

func mkPacket(src, dst int, ttl uint8) *packet.Packet {
	return &packet.Packet{Header: packet.Header{
		TTL: ttl, MsgID: uint64(src)*1000 + uint64(dst),
		Waypoints: []uint32{uint32(src), uint32(dst)},
	}}
}

func TestFloodAlongChain(t *testing.T) {
	city, m := chainCity(6, 40)
	res := Run(m, city, floodAll{}, mkPacket(0, 5, 255), DefaultConfig())
	if !res.Delivered {
		t.Fatal("flood should traverse the chain")
	}
	if res.DeliveryHops != 5 {
		t.Errorf("hops = %d, want 5", res.DeliveryHops)
	}
	// Every AP transmits exactly once under flooding with dedup.
	if res.Broadcasts != 6 {
		t.Errorf("broadcasts = %d, want 6", res.Broadcasts)
	}
	if res.APsReached != 6 {
		t.Errorf("reached = %d, want 6", res.APsReached)
	}
	if res.DeliveryTime <= 0 {
		t.Error("delivery time not recorded")
	}
}

func TestSilentPolicyOnlySource(t *testing.T) {
	city, m := chainCity(4, 40)
	res := Run(m, city, silent{}, mkPacket(0, 3, 255), DefaultConfig())
	if res.Delivered {
		t.Error("silent policy should not deliver across hops")
	}
	if res.Broadcasts != 0 {
		t.Errorf("broadcasts = %d, want 0", res.Broadcasts)
	}
	if res.APsReached != 1 {
		t.Errorf("reached = %d, want 1 (source only)", res.APsReached)
	}
}

func TestSelfDelivery(t *testing.T) {
	city, m := chainCity(3, 40)
	res := Run(m, city, silent{}, mkPacket(2, 2, 255), DefaultConfig())
	if !res.Delivered || res.DeliveryHops != 0 || res.DeliveryTime != 0 {
		t.Errorf("self delivery = %+v", res)
	}
}

func TestTTLBoundsPropagation(t *testing.T) {
	city, m := chainCity(10, 40)
	// TTL 3: reaches AP 3 (hop 3) whose TTL hits 0 and stops forwarding.
	res := Run(m, city, floodAll{}, mkPacket(0, 9, 3), DefaultConfig())
	if res.Delivered {
		t.Error("TTL 3 should not reach hop 9")
	}
	if res.APsReached != 4 { // hops 0..3
		t.Errorf("reached = %d, want 4", res.APsReached)
	}
	res = Run(m, city, floodAll{}, mkPacket(0, 9, 9), DefaultConfig())
	if !res.Delivered {
		t.Error("TTL 9 should exactly reach hop 9")
	}
}

func TestFailedAPsBlock(t *testing.T) {
	city, m := chainCity(5, 40)
	// Fail the middle AP: the chain is cut.
	cfg := DefaultConfig()
	cfg.FailedAPs = map[int]bool{2: true}
	res := Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if res.Delivered {
		t.Error("failed midpoint should cut the chain")
	}
	if res.APsReached != 2 { // APs 0 and 1
		t.Errorf("reached = %d, want 2", res.APsReached)
	}
	// Failing the source suppresses everything.
	cfg.FailedAPs = map[int]bool{0: true}
	res = Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if res.APsReached != 0 || res.Delivered {
		t.Errorf("failed source: %+v", res)
	}
}

func TestLossyLinks(t *testing.T) {
	city, m := chainCity(8, 40)
	cfg := DefaultConfig()
	cfg.LossProb = 1.0 // every reception lost
	res := Run(m, city, floodAll{}, mkPacket(0, 7, 255), cfg)
	if res.Delivered || res.APsReached != 1 {
		t.Errorf("total loss: %+v", res)
	}
	// Zero loss is the baseline.
	cfg.LossProb = 0
	if res := Run(m, city, floodAll{}, mkPacket(0, 7, 255), cfg); !res.Delivered {
		t.Error("lossless flood should deliver")
	}
}

func TestDeterministicRuns(t *testing.T) {
	city, m := chainCity(8, 40)
	cfg := DefaultConfig()
	cfg.LossProb = 0.3
	cfg.Seed = 99
	a := Run(m, city, floodAll{}, mkPacket(0, 7, 255), cfg)
	b := Run(m, city, floodAll{}, mkPacket(0, 7, 255), cfg)
	if a.Delivered != b.Delivered || a.Broadcasts != b.Broadcasts ||
		a.Receptions != b.Receptions || a.DeliveryTime != b.DeliveryTime {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestTranscript(t *testing.T) {
	city, m := chainCity(5, 40)
	cfg := DefaultConfig()
	cfg.RecordTranscript = true
	res := Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if len(res.Transcript) != m.NumAPs() {
		t.Fatalf("transcript size = %d", len(res.Transcript))
	}
	for i, rec := range res.Transcript {
		if !rec.Received {
			t.Errorf("AP %d not marked received", i)
		}
		if rec.Hops != i {
			t.Errorf("AP %d hops = %d", i, rec.Hops)
		}
	}
}

func TestInvalidSource(t *testing.T) {
	city, m := chainCity(3, 40)
	res := Run(m, city, floodAll{}, mkPacket(99, 2, 255), DefaultConfig())
	if res.SourceAP != -1 || res.Delivered {
		t.Errorf("invalid source: %+v", res)
	}
}

func TestMaxEventsCap(t *testing.T) {
	city, m := chainCity(10, 40)
	cfg := DefaultConfig()
	cfg.MaxEvents = 3
	res := Run(m, city, floodAll{}, mkPacket(0, 9, 255), cfg)
	if res.Delivered {
		t.Error("3-event budget cannot deliver over 9 hops")
	}
}

func TestOverheadMetric(t *testing.T) {
	r := Result{Broadcasts: 26}
	if o := r.Overhead(2); o != 13 {
		t.Errorf("Overhead = %v, want 13", o)
	}
	if o := r.Overhead(0); o != 0 {
		t.Errorf("Overhead(0) = %v", o)
	}
}

func TestUnicastDecision(t *testing.T) {
	city, m := chainCity(4, 40)
	// Policy that unicasts to the next AP id (a static source route).
	pol := unicastNext{}
	res := Run(m, city, pol, mkPacket(0, 3, 255), DefaultConfig())
	if !res.Delivered {
		t.Fatal("unicast chain should deliver")
	}
	// Exactly 3 transmissions: 0->1, 1->2, 2->3.
	if res.Broadcasts != 3 {
		t.Errorf("unicasts = %d, want 3", res.Broadcasts)
	}
}

type unicastNext struct{}

func (unicastNext) Name() string { return "unicastNext" }
func (unicastNext) OnReceive(ctx *Context, ap int, pkt *packet.Packet, from int) Decision {
	if ap+1 < ctx.Mesh.NumAPs() {
		return Decision{NextHops: []int32{int32(ap + 1)}}
	}
	return Decision{}
}

func BenchmarkRunFloodChain(b *testing.B) {
	city, m := chainCity(200, 40)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(m, city, floodAll{}, mkPacket(0, 199, 255), cfg)
		if !res.Delivered {
			b.Fatal("chain flood failed")
		}
	}
}

func BenchmarkRunPathLossChain(b *testing.B) {
	city, m := chainCity(200, 30)
	cfg := DefaultConfig()
	cfg.Radio = DefaultPathLoss()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		Run(m, city, floodAll{}, mkPacket(0, 199, 255), cfg)
	}
}
