package sim

import (
	"errors"
	"fmt"
)

// Typed sentinels for Config.Validate, matching core.ReliableConfig's
// convention: match with errors.Is, wrap with context at the call site.
var (
	// ErrNegativeTxDelay rejects a negative per-transmission latency.
	ErrNegativeTxDelay = errors.New("sim: TxDelay must be >= 0")
	// ErrNegativeJitter rejects a negative jitter bound.
	ErrNegativeJitter = errors.New("sim: JitterMax must be >= 0")
	// ErrBadLossProb rejects a loss probability outside [0, 1].
	ErrBadLossProb = errors.New("sim: LossProb must be in [0, 1]")
	// ErrNegativeMaxEvents rejects a negative event cap. Zero is not an
	// error: it selects the default cap, like every other zero field.
	ErrNegativeMaxEvents = errors.New("sim: MaxEvents must be >= 0")
	// ErrNegativeCollisionWindow rejects a negative collision window.
	ErrNegativeCollisionWindow = errors.New("sim: CollisionWindow must be >= 0")
	// ErrBadMobile rejects a mobile carrier with no path or negative
	// timing parameters.
	ErrBadMobile = errors.New("sim: Mobile needs a Path and non-negative IntervalS/HorizonS")
	// ErrBadAdversary rejects an Adversary with an out-of-range knob or an
	// unknown behavior value.
	ErrBadAdversary = errors.New("sim: Adversary knobs must be non-negative, DropProb in [0, 1], behaviors known")
	// ErrBadDefense rejects a Defense with a negative rate, burst, or
	// geocast radius bound.
	ErrBadDefense = errors.New("sim: Defense rates and radius must be >= 0")
	// ErrNoSourceAP is returned by Engine.Run when the packet's source
	// building is out of range or hosts no AP — there is nowhere to inject
	// the packet, so nothing was simulated. The deprecated Run wrapper
	// folds this into its historical SourceAP == -1 sentinel.
	ErrNoSourceAP = errors.New("sim: no AP in the packet's source building")
)

// Validate checks the physically meaningless configurations a caller can
// construct: negative delays, probabilities outside [0, 1], a negative
// event cap. Zero values are not errors — they select defaults (zero
// MaxEvents becomes the 5M runaway guard inside Run), mirroring
// core.ReliableConfig.Validate. Run validates internally; flag-driven
// callers validate up front to fail fast with a usable message.
func (c Config) Validate() error {
	if c.TxDelay < 0 {
		return fmt.Errorf("%w (got %v)", ErrNegativeTxDelay, c.TxDelay)
	}
	if c.JitterMax < 0 {
		return fmt.Errorf("%w (got %v)", ErrNegativeJitter, c.JitterMax)
	}
	if c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("%w (got %v)", ErrBadLossProb, c.LossProb)
	}
	if c.MaxEvents < 0 {
		return fmt.Errorf("%w (got %d)", ErrNegativeMaxEvents, c.MaxEvents)
	}
	if c.CollisionWindow < 0 {
		return fmt.Errorf("%w (got %v)", ErrNegativeCollisionWindow, c.CollisionWindow)
	}
	for i, mb := range c.Mobiles {
		if mb.Path == nil || mb.IntervalS < 0 || mb.HorizonS < 0 {
			return fmt.Errorf("%w (mobile %d)", ErrBadMobile, i)
		}
	}
	if a := c.Adversary; a != nil {
		if a.DropProb < 0 || a.DropProb > 1 {
			return fmt.Errorf("%w (DropProb %v)", ErrBadAdversary, a.DropProb)
		}
		if a.ReplayInterval < 0 || a.ReplayHorizon < 0 || a.ReplayBuffer < 0 ||
			a.InjectRate < 0 || a.InjectHorizon < 0 || a.GeocastRadius < 0 {
			return fmt.Errorf("%w (negative knob)", ErrBadAdversary)
		}
		for ap, b := range a.Behaviors {
			if b >= numBehaviors {
				return fmt.Errorf("%w (AP %d behavior %d)", ErrBadAdversary, ap, b)
			}
		}
	}
	if d := c.Defense; d.NeighborRate < 0 || d.NeighborBurst < 0 || d.MaxGeocastRadius < 0 {
		return fmt.Errorf("%w", ErrBadDefense)
	}
	return nil
}
