package sim

import (
	"reflect"
	"testing"
)

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet(130)
	if s.Len() != 0 {
		t.Fatalf("fresh set Len = %d", s.Len())
	}
	for _, i := range []int{0, 63, 64, 129} {
		s = s.Add(i)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false", i)
		}
	}
	if s.Contains(1) || s.Contains(128) {
		t.Error("Contains reports unset members")
	}
	// Out-of-range and negative queries are safe, not panics.
	if s.Contains(-1) || s.Contains(1<<20) {
		t.Error("Contains out of range should be false")
	}
	// Add ignores negatives and grows past the initial capacity.
	s = s.Add(-5)
	s = s.Add(300)
	if !s.Contains(300) || s.Len() != 5 {
		t.Errorf("after growth: Contains(300)=%v Len=%d", s.Contains(300), s.Len())
	}
}

func TestNodeSetNilSafe(t *testing.T) {
	var s NodeSet
	if s.Contains(0) || s.Len() != 0 {
		t.Error("nil NodeSet should be empty")
	}
	s.ForEach(func(int) { t.Error("nil NodeSet ForEach must not visit") })
	s = s.Add(7)
	if !s.Contains(7) {
		t.Error("Add on nil NodeSet must allocate")
	}
}

func TestNodeSetForEachAscending(t *testing.T) {
	s := NewNodeSet(200)
	want := []int{3, 64, 65, 190}
	for _, i := range want {
		s = s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ForEach order = %v, want %v", got, want)
	}
}

func TestNodeSetFromMapAndUnion(t *testing.T) {
	m := map[int]bool{1: true, 5: true, 9: false}
	s := NodeSetFromMap(m)
	if !s.Contains(1) || !s.Contains(5) || s.Contains(9) {
		t.Errorf("NodeSetFromMap = %v", s)
	}
	if NodeSetFromMap(nil) != nil {
		t.Error("NodeSetFromMap(nil) should be nil")
	}

	a := NewNodeSet(10).Add(1).Add(2)
	b := NewNodeSet(100).Add(2).Add(70)
	u := a.Union(b)
	for _, i := range []int{1, 2, 70} {
		if !u.Contains(i) {
			t.Errorf("union missing %d", i)
		}
	}
	if u.Len() != 3 {
		t.Errorf("union Len = %d", u.Len())
	}
	// Union must not mutate its operands.
	if a.Len() != 2 || b.Len() != 2 {
		t.Error("Union mutated an operand")
	}
	if a.Union(nil).Len() != 2 || NodeSet(nil).Union(b).Len() != 2 {
		t.Error("Union with nil should equal the other operand")
	}
}

func TestNodeSetClone(t *testing.T) {
	a := NewNodeSet(10).Add(3)
	c := a.Clone()
	c = c.Add(4)
	if a.Contains(4) {
		t.Error("Clone shares storage with the original")
	}
	if NodeSet(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}
