package sim

import (
	"math"
	"math/rand"
)

// RadioModel decides whether a transmission from one AP is received by
// another — the simulator's PHY abstraction. The paper's preliminary
// evaluation uses a symmetric unit-disk cutoff; §6 calls for higher
// fidelity ("physical network characteristics such as wireless channel
// congestion and interference"), which PathLossModel and the engine's
// collision window approximate.
type RadioModel interface {
	Name() string
	// ReceiveProb returns the probability that a frame sent over distance
	// d meters is received, before interference.
	ReceiveProb(d float64) float64
	// MaxRange returns the distance beyond which ReceiveProb is zero; the
	// engine uses it to bound neighbor queries.
	MaxRange() float64
}

// UnitDisk is the paper's model: reception is certain within the cutoff
// and impossible beyond it.
type UnitDisk struct {
	Range float64
}

// Name implements RadioModel.
func (UnitDisk) Name() string { return "unitdisk" }

// ReceiveProb implements RadioModel.
func (u UnitDisk) ReceiveProb(d float64) float64 {
	if d <= u.Range {
		return 1
	}
	return 0
}

// MaxRange implements RadioModel.
func (u UnitDisk) MaxRange() float64 { return u.Range }

// PathLossModel is a log-distance path-loss abstraction: reception is
// certain within ReliableRange, then the probability decays smoothly and
// reaches zero at CutoffRange. The Exponent shapes the decay (2 =
// free-space-like, 3-4 = urban clutter).
type PathLossModel struct {
	// ReliableRange is the distance within which reception is certain.
	ReliableRange float64
	// CutoffRange is the distance beyond which reception never happens.
	CutoffRange float64
	// Exponent shapes the decay between the two ranges.
	Exponent float64
}

// DefaultPathLoss mirrors the paper's 50 m planning range with an urban
// decay: certain to 35 m, impossible past 65 m.
func DefaultPathLoss() PathLossModel {
	return PathLossModel{ReliableRange: 35, CutoffRange: 65, Exponent: 3}
}

// Name implements RadioModel.
func (PathLossModel) Name() string { return "pathloss" }

// ReceiveProb implements RadioModel.
func (m PathLossModel) ReceiveProb(d float64) float64 {
	if d <= m.ReliableRange {
		return 1
	}
	if d >= m.CutoffRange {
		return 0
	}
	frac := (d - m.ReliableRange) / (m.CutoffRange - m.ReliableRange)
	e := m.Exponent
	if e <= 0 {
		e = 3
	}
	return math.Pow(1-frac, e)
}

// MaxRange implements RadioModel.
func (m PathLossModel) MaxRange() float64 { return m.CutoffRange }

// receives samples a reception decision.
func receives(model RadioModel, d float64, rng *rand.Rand) bool {
	p := model.ReceiveProb(d)
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return rng.Float64() < p
}
