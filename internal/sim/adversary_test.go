package sim

import (
	"reflect"
	"sync"
	"testing"

	"citymesh/internal/geo"
)

func TestNilAdversaryIsExactBaseline(t *testing.T) {
	city, m := chainCity(8, 40)
	base := Run(m, city, floodAll{}, mkPacket(0, 7, 255), DefaultConfig())

	cfg := DefaultConfig()
	cfg.Adversary = &Adversary{} // empty behaviors: no misbehavior, no RNG drift
	got := Run(m, city, floodAll{}, mkPacket(0, 7, 255), cfg)
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("empty adversary changed the run:\nbase %+v\ngot  %+v", base, got)
	}
}

func TestBlackholeBehaviorCutsChain(t *testing.T) {
	city, m := chainCity(5, 40)
	cfg := DefaultConfig()
	cfg.Adversary = &Adversary{Behaviors: map[int]APBehavior{2: BehaviorBlackhole}}
	res := Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if res.Delivered {
		t.Error("blackhole midpoint should cut the chain")
	}
	// Unlike a failed AP, the blackhole *receives* (it is not down).
	if res.APsReached != 3 { // 0, 1, and the blackhole itself
		t.Errorf("reached = %d, want 3", res.APsReached)
	}
}

func TestGrayholeDropsAreCounted(t *testing.T) {
	city, m := chainCity(5, 40)
	cfg := DefaultConfig()
	cfg.Adversary = &Adversary{
		Behaviors: map[int]APBehavior{2: BehaviorGrayhole},
		DropProb:  1.0, // always drops: a blackhole wearing a disguise
	}
	res := Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if res.Delivered {
		t.Error("p=1 grayhole should cut the chain")
	}
	if res.GrayholeDrops != 1 {
		t.Errorf("GrayholeDrops = %d, want 1", res.GrayholeDrops)
	}
}

func TestByzantineDestinationGetsNoDeliveryCredit(t *testing.T) {
	city, m := chainCity(4, 40)
	cfg := DefaultConfig()
	cfg.Adversary = &Adversary{Behaviors: map[int]APBehavior{3: BehaviorBlackhole}}
	res := Run(m, city, floodAll{}, mkPacket(0, 3, 255), cfg)
	if res.Delivered {
		t.Error("a packet held only by a compromised destination AP is not delivered")
	}
	if res.CompromisedDeliveries != 1 {
		t.Errorf("CompromisedDeliveries = %d, want 1", res.CompromisedDeliveries)
	}
}

func TestTTLResetTripsDefenseAndChecker(t *testing.T) {
	city, m := chainCity(6, 40)

	// Undefended: the resetter's inflated frames propagate and deliver,
	// and the invariant checker attributes the strict-decrement breach to
	// the declared-Byzantine AP — honest counts stay clean.
	cfg := DefaultConfig()
	cfg.Adversary = &Adversary{
		Behaviors: map[int]APBehavior{2: BehaviorTTLReset},
		ResetTTL:  200,
	}
	ic := NewInvariantChecker(m.NumAPs(), cfg)
	cfg.Probe = ic.Probe
	res := Run(m, city, floodAll{}, mkPacket(0, 5, 8), cfg)
	if !res.Delivered {
		t.Fatal("undefended chain should still deliver")
	}
	if ic.ByzantineViolations() == 0 {
		t.Error("TTL reset should trip the strict-decrement invariant as Byzantine")
	}
	if ic.Total() != 0 || len(ic.Violations()) != 0 {
		t.Errorf("honest violations = %d (%v), want none", ic.Total(), ic.Violations())
	}

	// Defended: MaxTTL set to the injected TTL rejects every frame the
	// resetter touched, cutting the chain at the liar.
	cfg.Probe = nil
	cfg.Defense = Defense{MaxTTL: 8}
	res = Run(m, city, floodAll{}, mkPacket(0, 5, 8), cfg)
	if res.Delivered {
		t.Error("MaxTTL defense should refuse the resetter's inflated frames")
	}
	if res.RejectedTTL == 0 {
		t.Error("no RejectedTTL counted")
	}
}

func TestCorruptorTaintAndTamperCheck(t *testing.T) {
	city, m := chainCity(5, 40)

	// Undefended: the corrupted copy reaches the destination first, the
	// honest dst AP accepts it, and its dedup suppresses the truth — a
	// tainted delivery, not a real one.
	cfg := DefaultConfig()
	cfg.Adversary = &Adversary{Behaviors: map[int]APBehavior{2: BehaviorCorruptor}}
	res := Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if res.Delivered {
		t.Error("corrupted payload must not count as delivery")
	}
	if res.TaintedDeliveries != 1 {
		t.Errorf("TaintedDeliveries = %d, want 1", res.TaintedDeliveries)
	}
	if res.TaintedAccepts == 0 {
		t.Error("no tainted accepts recorded downstream of the corruptor")
	}

	// TamperCheck drops tainted frames at honest receivers instead.
	cfg.Defense = Defense{TamperCheck: true}
	res = Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if res.TaintedDeliveries != 0 {
		t.Errorf("TamperCheck on: TaintedDeliveries = %d, want 0", res.TaintedDeliveries)
	}
	if res.RejectedTampered == 0 {
		t.Error("no RejectedTampered counted")
	}
}

func TestReplayerStormAndRateGate(t *testing.T) {
	city, m := chainCity(4, 40)
	cfg := DefaultConfig()
	cfg.Adversary = &Adversary{
		Behaviors:      map[int]APBehavior{1: BehaviorReplayer},
		ReplayInterval: 0.05,
		ReplayHorizon:  2,
	}
	res := Run(m, city, floodAll{}, mkPacket(0, 3, 255), cfg)
	if !res.Delivered {
		t.Fatal("a replayer still forwards; delivery must succeed")
	}
	if res.ReplayedFrames < 10 {
		t.Errorf("ReplayedFrames = %d, want a storm", res.ReplayedFrames)
	}
	stormRx := res.Receptions

	cfg.Defense = Defense{NeighborRate: 1, NeighborBurst: 2}
	res = Run(m, city, floodAll{}, mkPacket(0, 3, 255), cfg)
	if !res.Delivered {
		t.Fatal("rate gate must not break first-time delivery")
	}
	if res.RejectedRateLimited == 0 {
		t.Error("replay storm above the per-neighbor rate should be rejected")
	}
	if res.Receptions >= stormRx {
		t.Errorf("rate gate did not shed load: %d receptions vs %d undefended",
			res.Receptions, stormRx)
	}
}

func TestFlooderForgedWaveIsolatedFromRealMetrics(t *testing.T) {
	city, m := chainCity(6, 40)
	base := Run(m, city, floodAll{}, mkPacket(0, 5, 255), DefaultConfig())

	cfg := DefaultConfig()
	cfg.Adversary = &Adversary{
		Behaviors:     map[int]APBehavior{3: BehaviorFlooder},
		InjectRate:    5,
		InjectHorizon: 2,
	}
	res := Run(m, city, floodAll{}, mkPacket(0, 5, 255), cfg)
	if !res.Delivered {
		t.Fatal("forged traffic must not break real delivery")
	}
	if res.ForgedBroadcasts == 0 || res.ForgedAccepts == 0 {
		t.Errorf("forged wave not propagating: %+v", res)
	}
	// The legacy broadcast metric keeps meaning real-packet transmissions.
	if res.Broadcasts != base.Broadcasts {
		t.Errorf("forged frames leaked into Broadcasts: %d vs %d", res.Broadcasts, base.Broadcasts)
	}
}

func TestSpooferGeocastRadiusDefense(t *testing.T) {
	city, m := chainCity(8, 40)
	cfg := DefaultConfig()
	cfg.Adversary = &Adversary{
		Behaviors:     map[int]APBehavior{0: BehaviorSpoofer},
		InjectRate:    2,
		InjectHorizon: 1,
	}
	res := Run(m, city, silent{}, mkPacket(6, 7, 255), cfg)
	if res.ForgedAccepts == 0 {
		t.Fatal("unchecked spoofed geocast should recruit honest APs")
	}
	open := res.ForgedAccepts

	cfg.Defense = Defense{MaxGeocastRadius: 2000}
	res = Run(m, city, silent{}, mkPacket(6, 7, 255), cfg)
	if res.RejectedGeocast == 0 {
		t.Error("metro-scale geocast claim should be rejected")
	}
	if res.ForgedAccepts != 0 {
		t.Errorf("defended ForgedAccepts = %d, want 0 (open run had %d)", res.ForgedAccepts, open)
	}
}

func TestAdversaryRunsAreDeterministic(t *testing.T) {
	city, m := chainCity(10, 40)
	mk := func() Config {
		cfg := DefaultConfig()
		cfg.Seed = 77
		cfg.LossProb = 0.1
		cfg.Adversary = &Adversary{
			Behaviors: map[int]APBehavior{
				2: BehaviorGrayhole,
				4: BehaviorReplayer,
				6: BehaviorFlooder,
				8: BehaviorTTLReset,
			},
		}
		cfg.Defense = Defense{MaxTTL: 64, TamperCheck: true, NeighborRate: 4}
		return cfg
	}
	a := Run(m, city, floodAll{}, mkPacket(0, 9, 64), mk())
	for i := 0; i < 3; i++ {
		b := Run(m, city, floodAll{}, mkPacket(0, 9, 64), mk())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d diverged:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestValidateAdversaryAndDefense(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Adversary = &Adversary{DropProb: 1.5}
	if err := cfg.Validate(); err == nil {
		t.Error("DropProb 1.5 should fail validation")
	}
	cfg = DefaultConfig()
	cfg.Adversary = &Adversary{Behaviors: map[int]APBehavior{0: numBehaviors}}
	if err := cfg.Validate(); err == nil {
		t.Error("unknown behavior should fail validation")
	}
	cfg = DefaultConfig()
	cfg.Defense = Defense{NeighborRate: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative defense rate should fail validation")
	}
	cfg = DefaultConfig()
	cfg.Adversary = &Adversary{
		Behaviors: map[int]APBehavior{1: BehaviorGrayhole},
		DropProb:  0.8,
	}
	cfg.Defense = Defense{MaxTTL: 64}
	if err := cfg.Validate(); err != nil {
		t.Errorf("legitimate adversary config rejected: %v", err)
	}
}

// TestByzantineChurnMobilityStress mixes every misbehavior with a shared
// churn schedule and a shared mobile carrier across concurrent runs — the
// CI -race step drives it to prove the read-only sharing contract extends
// to the Adversary, and that honest APs never trip an invariant even while
// liars, rubble, and moving relays interact.
func TestByzantineChurnMobilityStress(t *testing.T) {
	city, m := twoIslands()
	shared := fuzzSchedule{bits: 0b10110, start: 0.001, stagger: 0.003, width: 2}
	path := pingPong{a: geo.Pt(40, 0), b: geo.Pt(340, 0), speed: 30}
	adv := &Adversary{
		Behaviors: map[int]APBehavior{
			1: BehaviorGrayhole,
			2: BehaviorReplayer,
			4: BehaviorTTLReset,
			5: BehaviorFlooder,
		},
		ReplayInterval: 0.25, ReplayHorizon: 2,
		InjectRate: 2, InjectHorizon: 2,
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				cfg := DefaultConfig()
				cfg.Seed = int64(g*100 + i)
				cfg.Schedule = shared
				cfg.Mobiles = []Mobile{{Path: path}}
				cfg.Adversary = adv // shared: the engine must never write it
				if i%2 == 1 {
					cfg.Defense = Defense{MaxTTL: 32, TamperCheck: true, NeighborRate: 4}
				}
				ic := NewInvariantChecker(m.NumAPs(), cfg)
				cfg.Probe = ic.Probe
				Run(m, city, floodAll{}, mkPacket(0, 5, 32), cfg)
				for _, v := range ic.Violations() {
					errs <- v
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for v := range errs {
		t.Error(v)
	}
}

func TestInvariantCheckerCountsPastCap(t *testing.T) {
	ic := NewInvariantChecker(1000, Config{})
	// 100 distinct nodes transmitting without ever accepting: 100 honest
	// violations against a 32-line report cap.
	for node := 0; node < 100; node++ {
		ic.Probe(ProbeEvent{Kind: ProbeTransmit, Node: node, From: -1, TTL: 5})
	}
	if ic.Total() != 100 {
		t.Fatalf("Total = %d, want 100", ic.Total())
	}
	v := ic.Violations()
	if len(v) != maxViolations+1 {
		t.Fatalf("Violations len = %d, want %d recorded + 1 summary", len(v), maxViolations)
	}
	want := "... and 68 more honest violations (total 100)"
	if v[len(v)-1] != want {
		t.Fatalf("summary line = %q, want %q", v[len(v)-1], want)
	}
}
