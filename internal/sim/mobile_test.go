package sim

import (
	"math"
	"sync"
	"testing"

	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
)

// gapCity builds one-AP buildings at the given x positions (range 50 m, so
// gaps wider than that partition the mesh).
func gapCity(xs []float64) (*osm.City, *mesh.Mesh) {
	city := &osm.City{Name: "gap"}
	for i, x := range xs {
		c := geo.Pt(x, 0)
		fp := geo.Polygon{
			c.Add(geo.Pt(-2, -2)), c.Add(geo.Pt(2, -2)),
			c.Add(geo.Pt(2, 2)), c.Add(geo.Pt(-2, 2)),
		}
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding, Footprint: fp, Centroid: c,
		})
	}
	cfg := mesh.DefaultConfig()
	cfg.Density = 1e-12
	return city, mesh.Place(city, cfg)
}

// pingPong is a test MobilePath shuttling between a and b forever.
type pingPong struct {
	a, b  geo.Point
	speed float64
}

func (p pingPong) PosAt(t float64) geo.Point {
	l := p.a.Dist(p.b)
	if l <= 0 {
		return p.a
	}
	d := math.Mod(t*p.speed, 2*l)
	if d > l {
		d = 2*l - d
	}
	return p.a.Lerp(p.b, d/l)
}

// parked is a test MobilePath that never moves.
type parked struct{ at geo.Point }

func (p parked) PosAt(float64) geo.Point { return p.at }

// twoIslands is two 3-AP clusters with a 220 m gap no radio can cross.
func twoIslands() (*osm.City, *mesh.Mesh) {
	return gapCity([]float64{0, 40, 80, 300, 340, 380})
}

func TestMobileCarrierBridgesPartition(t *testing.T) {
	city, m := twoIslands()
	// Sanity: without a carrier the gap is final.
	if res := Run(m, city, floodAll{}, mkPacket(0, 5, 255), DefaultConfig()); res.Delivered {
		t.Fatal("220 m gap crossed without a carrier")
	}
	// A shuttle at 30 m/s starts inside the source island and crosses to
	// the far one at t = 10 s, rebroadcasting once a second as it goes.
	cfg := DefaultConfig()
	cfg.Mobiles = []Mobile{{Path: pingPong{a: geo.Pt(40, 0), b: geo.Pt(340, 0), speed: 30}}}
	res := Run(m, city, floodAll{}, mkPacket(0, 5, 255), cfg)
	if !res.Delivered {
		t.Fatalf("shuttle failed to mule the packet across: %+v", res)
	}
	if res.MobilesReached != 1 {
		t.Errorf("MobilesReached = %d, want 1", res.MobilesReached)
	}
	if res.DeliveryTime < 5 {
		t.Errorf("delivery at %.3f s is faster than the shuttle can drive", res.DeliveryTime)
	}
	if res.APsReached != m.NumAPs() {
		t.Errorf("carrier flood reached %d/%d APs", res.APsReached, m.NumAPs())
	}
}

func TestParkedCarrierOutOfRangeHearsNothing(t *testing.T) {
	city, m := twoIslands()
	cfg := DefaultConfig()
	cfg.Mobiles = []Mobile{{Path: parked{at: geo.Pt(190, 0)}}} // mid-gap, 110 m from both islands
	res := Run(m, city, floodAll{}, mkPacket(0, 5, 255), cfg)
	if res.MobilesReached != 0 {
		t.Errorf("out-of-range carrier picked the packet up: %+v", res)
	}
	if res.Delivered {
		t.Error("a parked mid-gap carrier cannot bridge anything")
	}
}

func TestMobileRunsAreDeterministic(t *testing.T) {
	city, m := twoIslands()
	cfg := DefaultConfig()
	cfg.Mobiles = []Mobile{{Path: pingPong{a: geo.Pt(40, 0), b: geo.Pt(340, 0), speed: 30}}}
	a := Run(m, city, floodAll{}, mkPacket(0, 5, 255), cfg)
	b := Run(m, city, floodAll{}, mkPacket(0, 5, 255), cfg)
	if a.Delivered != b.Delivered || a.DeliveryTime != b.DeliveryTime ||
		a.Broadcasts != b.Broadcasts || a.Receptions != b.Receptions {
		t.Errorf("same config diverged:\n%+v\n%+v", a, b)
	}
}

func TestOffsetPathShiftsClock(t *testing.T) {
	p := pingPong{a: geo.Pt(0, 0), b: geo.Pt(100, 0), speed: 10}
	off := OffsetPath{Base: p, Offset: 4}
	for _, tm := range []float64{0, 1.5, 7} {
		if got, want := off.PosAt(tm), p.PosAt(tm+4); got != want {
			t.Errorf("t=%v: OffsetPath %v, base at t+4 %v", tm, got, want)
		}
	}
}

func TestValidateRejectsBadMobiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mobiles = []Mobile{{}}
	if cfg.Validate() == nil {
		t.Error("nil Path must not validate")
	}
	cfg.Mobiles = []Mobile{{Path: parked{}, IntervalS: -1}}
	if cfg.Validate() == nil {
		t.Error("negative interval must not validate")
	}
	// Run must refuse rather than panic.
	city, m := twoIslands()
	cfg.Mobiles = []Mobile{{}}
	if res := Run(m, city, floodAll{}, mkPacket(0, 5, 255), cfg); res.SourceAP != -1 {
		t.Error("invalid mobile config must yield the empty result")
	}
}

// runChecked runs a simulation with an invariant checker attached and
// returns the violations.
func runChecked(t testing.TB, m *mesh.Mesh, city *osm.City, cfg Config, src, dst int) []string {
	t.Helper()
	ic := NewInvariantChecker(m.NumAPs(), cfg)
	cfg.Probe = ic.Probe
	Run(m, city, floodAll{}, mkPacket(src, dst, 32), cfg)
	return ic.Violations()
}

func TestInvariantsHoldUnderChurnAndMovement(t *testing.T) {
	city, m := twoIslands()
	cfg := DefaultConfig()
	cfg.Schedule = windowSchedule{ap: 1, from: 0.001, to: 4}
	cfg.Mobiles = []Mobile{
		{Path: pingPong{a: geo.Pt(40, 0), b: geo.Pt(340, 0), speed: 30}},
		{Path: parked{at: geo.Pt(80, 30)}, IntervalS: 0.5},
	}
	if v := runChecked(t, m, city, cfg, 0, 5); len(v) != 0 {
		t.Errorf("invariant violations under churn+movement:\n%v", v)
	}
}

func TestInvariantCheckerFlagsBadStreams(t *testing.T) {
	cfg := Config{FailedAPs: map[int]bool{7: true}}
	cases := []struct {
		name   string
		events []ProbeEvent
	}{
		{"double accept", []ProbeEvent{
			{Kind: ProbeAccept, Node: 1, From: -1, TTL: 5},
			{Kind: ProbeAccept, Node: 1, From: -1, TTL: 5},
		}},
		{"ttl not decremented", []ProbeEvent{
			{Kind: ProbeAccept, Node: 1, From: -1, TTL: 5},
			{Kind: ProbeAccept, Node: 2, From: 1, TTL: 5},
		}},
		{"ttl increased", []ProbeEvent{
			{Kind: ProbeAccept, Node: 1, From: -1, TTL: 5},
			{Kind: ProbeAccept, Node: 2, From: 1, TTL: 9},
		}},
		{"accept at failed AP", []ProbeEvent{
			{Kind: ProbeAccept, Node: 7, From: -1, TTL: 5},
		}},
		{"transmit without accept", []ProbeEvent{
			{Kind: ProbeTransmit, Node: 3, From: -1, TTL: 4},
		}},
		{"transmit with exhausted ttl", []ProbeEvent{
			{Kind: ProbeAccept, Node: 1, From: -1, TTL: 0},
			{Kind: ProbeTransmit, Node: 1, From: -1, TTL: 0},
		}},
		{"deliver to failed AP", []ProbeEvent{
			{Kind: ProbeAccept, Node: 7, From: -1, TTL: 5},
			{Kind: ProbeDeliver, Node: 7},
		}},
		{"deliver without accept", []ProbeEvent{
			{Kind: ProbeDeliver, Node: 2},
		}},
	}
	for _, tc := range cases {
		ic := NewInvariantChecker(10, cfg)
		for _, e := range tc.events {
			ic.Probe(e)
		}
		if len(ic.Violations()) == 0 {
			t.Errorf("%s: stream passed the checker", tc.name)
		}
	}
	// A clean stream stays clean.
	ic := NewInvariantChecker(10, cfg)
	for _, e := range []ProbeEvent{
		{Kind: ProbeAccept, Node: 0, From: -1, TTL: 5},
		{Kind: ProbeTransmit, Node: 0, From: -1, TTL: 5},
		{Kind: ProbeAccept, Node: 1, From: 0, TTL: 4},
		{Kind: ProbeDeliver, Node: 1},
	} {
		ic.Probe(e)
	}
	if v := ic.Violations(); len(v) != 0 {
		t.Errorf("clean stream flagged: %v", v)
	}
}

// fuzzSchedule derives a per-AP outage window from fuzz bytes: AP i is
// down during [start + i*stagger, start + i*stagger + width).
type fuzzSchedule struct {
	bits                  uint16
	start, stagger, width float64
}

func (s fuzzSchedule) Down(ap int, t float64) bool {
	if ap < 0 || ap > 15 || s.bits&(1<<uint(ap)) == 0 {
		return false
	}
	from := s.start + float64(ap)*s.stagger
	return t >= from && t < from+s.width
}

func clampF(v, lo, hi float64) float64 {
	if math.IsNaN(v) || v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// FuzzInvariantsUnderChurn drives the engine through fuzzed churn windows,
// loss, and carrier movement, asserting the kernel invariants (loop
// freedom, strict TTL decrease, dead silence) hold for every input.
func FuzzInvariantsUnderChurn(f *testing.F) {
	f.Add(int64(1), uint16(0), 0.0, 0.0, 0.0, 30.0, 0.0)
	f.Add(int64(7), uint16(0b101010), 0.001, 0.002, 4.0, 25.0, 0.1)
	f.Add(int64(42), uint16(0xffff), 0.0, 0.01, 100.0, 1.0, 0.5)
	f.Fuzz(func(t *testing.T, seed int64, bits uint16, start, stagger, width, speed, loss float64) {
		city, m := twoIslands()
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.LossProb = clampF(loss, 0, 1)
		cfg.Schedule = fuzzSchedule{
			bits:    bits,
			start:   clampF(start, 0, 30),
			stagger: clampF(stagger, 0, 1),
			width:   clampF(width, 0, 30),
		}
		cfg.Mobiles = []Mobile{{
			Path:      pingPong{a: geo.Pt(40, 0), b: geo.Pt(340, 0), speed: clampF(speed, 0.1, 100)},
			IntervalS: 0.5,
		}}
		ic := NewInvariantChecker(m.NumAPs(), cfg)
		cfg.Probe = ic.Probe
		Run(m, city, floodAll{}, mkPacket(0, 5, 32), cfg)
		if v := ic.Violations(); len(v) != 0 {
			t.Fatalf("invariants violated:\n%v", v)
		}
	})
}

// TestChurnMobilityStress runs concurrent simulations sharing one schedule
// and one carrier path, each with its own checker — the CI -race step
// drives it to prove the read-only sharing contract holds under movement.
func TestChurnMobilityStress(t *testing.T) {
	city, m := twoIslands()
	shared := fuzzSchedule{bits: 0b10110, start: 0.001, stagger: 0.003, width: 2}
	path := pingPong{a: geo.Pt(40, 0), b: geo.Pt(340, 0), speed: 30}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				cfg := DefaultConfig()
				cfg.Seed = int64(g*100 + i)
				cfg.Schedule = shared
				cfg.Mobiles = []Mobile{{Path: path}}
				ic := NewInvariantChecker(m.NumAPs(), cfg)
				cfg.Probe = ic.Probe
				Run(m, city, floodAll{}, mkPacket(0, 5, 32), cfg)
				for _, v := range ic.Violations() {
					errs <- v
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for v := range errs {
		t.Error(v)
	}
}
