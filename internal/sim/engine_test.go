package sim

import (
	"errors"
	"reflect"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
)

// gridCity generates the gridtown preset — the allocation-budget and
// determinism fixtures run on a real city, not a toy chain.
func gridCity(t testing.TB) (*osm.City, *mesh.Mesh) {
	t.Helper()
	spec, ok := citygen.Preset("gridtown")
	if !ok {
		t.Fatal("gridtown preset missing")
	}
	plan, err := citygen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	city := &osm.City{Name: plan.Spec.Name, Bounds: plan.Bounds}
	for i, b := range plan.Buildings {
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: b.Footprint, Centroid: b.Footprint.Centroid(),
		})
	}
	return city, mesh.Place(city, mesh.DefaultConfig())
}

// engineConfigs is the determinism matrix: every scratch-pool code path
// that could leak state between runs (RNG, event heap, per-AP slices,
// collision clocks, adversary taint, failure sets) gets a config that
// exercises it.
func engineConfigs(numAPs int) map[string]Config {
	noisy := DefaultConfig()
	noisy.LossProb = 0.3
	noisy.JitterMax = 0.02

	collide := DefaultConfig()
	collide.CollisionWindow = 0.001

	failed := DefaultConfig()
	failed.FailedAPs = map[int]bool{2: true, 5: true}
	failed.FailedSet = NewNodeSet(numAPs).Add(7).Add(11)
	failed.BlackholeSet = NewNodeSet(numAPs).Add(13)

	adv := DefaultConfig()
	adv.JitterMax = 0.01
	adv.Adversary = &Adversary{
		Behaviors: map[int]APBehavior{
			3:  BehaviorGrayhole,
			9:  BehaviorReplayer,
			15: BehaviorTTLReset,
		},
		DropProb:       0.5,
		ReplayInterval: 0.05,
		ReplayHorizon:  0.5,
	}
	adv.Defense = Defense{MaxTTL: 64, NeighborRate: 50}

	return map[string]Config{
		"default":     DefaultConfig(),
		"noisy":       noisy,
		"collision":   collide,
		"failures":    failed,
		"adversarial": adv,
	}
}

// TestEngineWarmRunsMatchColdRuns is the pooled-scratch determinism
// guarantee: re-running on a warm engine (scratch reused from the pool)
// must be byte-identical to a cold engine's first run, for every config in
// the matrix and across seeds.
func TestEngineWarmRunsMatchColdRuns(t *testing.T) {
	city, m := chainCity(20, 40)
	for name, cfg := range engineConfigs(m.NumAPs()) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cfg.RecordTranscript = true
			warm := NewEngine(m, city, floodAll{})
			for seed := int64(1); seed <= 3; seed++ {
				cfg.Seed = seed
				// Warm the pool, then run again: the second run reuses
				// the first's scratch.
				first, err := warm.Run(mkPacket(0, 19, 255), cfg)
				if err != nil {
					t.Fatal(err)
				}
				second, err := warm.Run(mkPacket(0, 19, 255), cfg)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := NewEngine(m, city, floodAll{}).Run(mkPacket(0, 19, 255), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(first, cold) || !reflect.DeepEqual(second, cold) {
					t.Fatalf("seed %d: warm runs diverge from cold run\nfirst:  %+v\nsecond: %+v\ncold:   %+v",
						seed, first, second, cold)
				}
			}
		})
	}
}

// TestEngineMatchesDeprecatedRun pins the compat wrapper to the engine:
// both entry points must produce identical results.
func TestEngineMatchesDeprecatedRun(t *testing.T) {
	city, m := chainCity(12, 40)
	cfg := DefaultConfig()
	cfg.LossProb = 0.2
	cfg.JitterMax = 0.01
	cfg.RecordTranscript = true
	cfg.Seed = 7
	viaEngine, err := NewEngine(m, city, floodAll{}).Run(mkPacket(0, 11, 255), cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaRun := Run(m, city, floodAll{}, mkPacket(0, 11, 255), cfg)
	if !reflect.DeepEqual(viaEngine, viaRun) {
		t.Fatalf("Run and Engine.Run diverge:\n%+v\n%+v", viaEngine, viaRun)
	}
}

// TestEngineRunAllocs pins the warm-path allocation budget on gridtown.
// A warm Engine.Run with bitset failure sets and no transcript must not
// allocate per run: scratch comes from the pool, the event heap backing
// array is retained, and the RNG is re-seeded in place. The budget of 4
// leaves headroom for runtime noise (pool repopulation after a GC), not
// for per-run garbage — a real regression (per-run maps, heap boxing,
// closures) costs hundreds of allocations and trips this immediately.
func TestEngineRunAllocs(t *testing.T) {
	city, m := gridCity(t)
	eng := NewEngine(m, city, floodAll{})
	cfg := DefaultConfig()
	cfg.FailedSet = NewNodeSet(m.NumAPs()).Add(3).Add(99)
	pkt := mkPacket(0, city.NumBuildings()-1, 255)
	if _, err := eng.Run(pkt, cfg); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(pkt, cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm Engine.Run on gridtown (%d APs): %.1f allocs/run", m.NumAPs(), allocs)
	if allocs > 4 {
		t.Errorf("warm Engine.Run allocates %.1f/run, budget 4", allocs)
	}
}

// TestEngineRunErrors covers the typed-error contract the deprecated Run
// sentinel hid.
func TestEngineRunErrors(t *testing.T) {
	city, m := chainCity(4, 40)
	eng := NewEngine(m, city, floodAll{})

	// Unroutable source building: typed sentinel.
	_, err := eng.Run(mkPacket(99, 1, 16), DefaultConfig())
	if !errors.Is(err, ErrNoSourceAP) {
		t.Errorf("out-of-range source: err = %v, want ErrNoSourceAP", err)
	}

	// Invalid config: validation error before any event runs.
	bad := DefaultConfig()
	bad.LossProb = 1.5
	if _, err := eng.Run(mkPacket(0, 1, 16), bad); err == nil {
		t.Error("invalid config must error")
	}

	// The deprecated wrapper folds both into the legacy sentinel.
	if res := Run(m, city, floodAll{}, mkPacket(99, 1, 16), DefaultConfig()); res.SourceAP != -1 {
		t.Errorf("deprecated Run sentinel: SourceAP = %d, want -1", res.SourceAP)
	}
}
