package sim

import "math/bits"

// NodeSet is a dense bitset over node (AP) indices — the allocation-free
// replacement for the map[int]bool failure and blackhole sets. A nil
// NodeSet is a valid empty set; Contains on any index (including negative
// or out-of-range ones) is safe and returns false. Add grows the set as
// needed, so callers never size it by hand.
//
// At metro scale (10^5 APs) a NodeSet is ~12 KB against the megabytes a
// populated map would cost, and membership is one shift and mask instead
// of a hash probe — which is why the engine's hot down() check takes one.
type NodeSet []uint64

// NewNodeSet returns an empty set with capacity for indices [0, n).
func NewNodeSet(n int) NodeSet {
	if n <= 0 {
		return nil
	}
	return make(NodeSet, (n+63)/64)
}

// NodeSetFromMap converts a legacy map[int]bool set (only true entries are
// members). A nil or empty map yields a nil set.
func NodeSetFromMap(m map[int]bool) NodeSet {
	var s NodeSet
	for node, on := range m {
		if on {
			s = s.Add(node)
		}
	}
	return s
}

// Add sets bit i and returns the (possibly grown) set; negative indices
// are ignored. Use it like append: s = s.Add(i).
func (s NodeSet) Add(i int) NodeSet {
	if i < 0 {
		return s
	}
	w := i >> 6
	for w >= len(s) {
		s = append(s, 0)
	}
	s[w] |= 1 << (uint(i) & 63)
	return s
}

// Contains reports membership; false for any index outside the set's
// capacity (and for any index on a nil set).
func (s NodeSet) Contains(i int) bool {
	if i < 0 {
		return false
	}
	w := i >> 6
	return w < len(s) && s[w]&(1<<(uint(i)&63)) != 0
}

// Len counts members.
func (s NodeSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every member in ascending index order.
func (s NodeSet) ForEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1 // clear lowest set bit
		}
	}
}

// Union returns a new set holding every member of s and other; neither
// input is modified.
func (s NodeSet) Union(other NodeSet) NodeSet {
	if len(other) > len(s) {
		s, other = other, s
	}
	out := s.Clone()
	for i, w := range other {
		out[i] |= w
	}
	return out
}

// Clone returns an independent copy.
func (s NodeSet) Clone() NodeSet {
	if s == nil {
		return nil
	}
	out := make(NodeSet, len(s))
	copy(out, s)
	return out
}

// clearSet zeroes the set in place, keeping capacity.
func (s NodeSet) clearSet() {
	for i := range s {
		s[i] = 0
	}
}

// union folds src's members into s, growing as needed, and returns s.
func (s NodeSet) union(src NodeSet) NodeSet {
	for len(s) < len(src) {
		s = append(s, 0)
	}
	for i, w := range src {
		s[i] |= w
	}
	return s
}
