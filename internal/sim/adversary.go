// Byzantine misbehavior and receiver-side defenses for the simulator.
//
// The paper's open-admission premise — any surviving AP may join the mesh —
// means some APs will not merely be dead (the faults package) but *wrong*:
// dropping transit traffic, replaying stale frames, corrupting payloads,
// inflating TTLs, or injecting forged traffic outright. An Adversary assigns
// one such behavior per AP; the engine executes the behavior at that AP's
// accept/forward points, so every Policy and every FailureSchedule composes
// with it unchanged (an AP that is both flooded and Byzantine is simply
// down: the crash wins).
//
// Defense is the honest receiver's cheap sanity stack, the simulator twin of
// the fwd kernel's sanity rejections and the live agent's rate limiting:
// reject frames whose as-received TTL exceeds the deployment maximum, frames
// whose bytes fail integrity re-validation, geocasts claiming an absurd
// target disc, and frame storms above a per-neighbor rate. Both knobs
// default to off; a Config with a nil Adversary and a zero Defense runs the
// exact event and RNG sequence it always did.
//
// Scope notes: forged messages propagate as their own flood/geocast waves
// but do not fire Probe events (the probe stream documents the real packet)
// and are not picked up by mobile carriers; honest nodes cannot distinguish
// a tainted (corrupted) copy of the real packet without Defense.TamperCheck,
// which models CRC plus kernel sanity on the frame bytes.
package sim

import "citymesh/internal/geo"

// APBehavior classifies one AP's misbehavior. BehaviorHonest is the zero
// value: an AP absent from Adversary.Behaviors follows the protocol.
type APBehavior uint8

const (
	// BehaviorHonest follows the protocol.
	BehaviorHonest APBehavior = iota
	// BehaviorBlackhole receives and silently consumes: no delivery, no
	// forwarding. Equivalent to Config.Blackholes membership.
	BehaviorBlackhole
	// BehaviorGrayhole forwards probabilistically: each policy-approved
	// forward is suppressed with Adversary.DropProb — harder to detect and
	// to route around than a blackhole because some traffic gets through.
	BehaviorGrayhole
	// BehaviorReplayer forwards normally but also retransmits its stored
	// copy of the frame every ReplayInterval until ReplayHorizon, without
	// decrementing TTL — a stale-frame storm.
	BehaviorReplayer
	// BehaviorCorruptor forwards a corrupted copy of every frame it
	// receives (flipped payload/TTL/conduit bytes), unconditionally and
	// regardless of the conduit test. Receptions downstream of a corruptor
	// are tainted; an undefended receiver cannot tell and has its dedup
	// cache poisoned by the corrupt copy.
	BehaviorCorruptor
	// BehaviorTTLReset rewrites the TTL of every frame it forwards back up
	// to Adversary.ResetTTL, unbounding scoped floods.
	BehaviorTTLReset
	// BehaviorSpoofer injects forged geocast frames at InjectRate claiming
	// a GeocastRadius target disc — honest APs inside the claimed disc
	// rebroadcast them.
	BehaviorSpoofer
	// BehaviorFlooder injects forged flood frames at InjectRate with
	// ForgedTTL — pure resource exhaustion.
	BehaviorFlooder

	numBehaviors
)

// String implements fmt.Stringer for tables and flag help.
func (b APBehavior) String() string {
	switch b {
	case BehaviorHonest:
		return "honest"
	case BehaviorBlackhole:
		return "blackhole"
	case BehaviorGrayhole:
		return "grayhole"
	case BehaviorReplayer:
		return "replayer"
	case BehaviorCorruptor:
		return "corruptor"
	case BehaviorTTLReset:
		return "ttlreset"
	case BehaviorSpoofer:
		return "spoofer"
	case BehaviorFlooder:
		return "flooder"
	default:
		return "unknown"
	}
}

// Adversary behavior defaults. Each is used when the corresponding knob is
// zero, so a bare Adversary{Behaviors: ...} is fully specified.
const (
	// DefaultGrayholeDropProb is the grayhole forward-suppression
	// probability.
	DefaultGrayholeDropProb = 0.5
	// DefaultReplayInterval is the replayer retransmission period in
	// seconds.
	DefaultReplayInterval = 1.0
	// DefaultReplayHorizon stops replays after this sim time.
	DefaultReplayHorizon = 30.0
	// DefaultResetTTL is the TTL a TTL-resetter rewrites onto forwarded
	// frames.
	DefaultResetTTL = 255
	// DefaultInjectRate is the forged-frame injection rate (frames/s) of
	// spoofers and flooders.
	DefaultInjectRate = 2.0
	// DefaultInjectHorizon stops forged injections after this sim time.
	DefaultInjectHorizon = 10.0
	// DefaultForgedTTL is the TTL on injected forged frames.
	DefaultForgedTTL = 16
	// DefaultSpoofRadius is the spoofer's claimed geocast disc radius in
	// meters: large enough to cover any preset city, the worst case an
	// unchecked geocast admits.
	DefaultSpoofRadius = 100_000.0
)

// Adversary assigns Byzantine behaviors to APs plus the behavior knobs.
// It is plain data, safe for concurrent reads, and is consulted only for
// APs (mobile carriers are never Byzantine). A nil *Adversary — or one with
// an empty Behaviors map — changes nothing about a run, including its RNG
// stream.
type Adversary struct {
	// Behaviors maps AP index to misbehavior; absent APs are honest.
	Behaviors map[int]APBehavior

	// DropProb is the grayhole forward-suppression probability in [0, 1]
	// (0 selects DefaultGrayholeDropProb).
	DropProb float64
	// ReplayInterval is the replayer retransmission period in seconds.
	ReplayInterval float64
	// ReplayHorizon stops replays after this sim time.
	ReplayHorizon float64
	// ReplayBuffer bounds how many distinct frames a replayer retransmits.
	// The single-packet engine holds at most one; the knob exists so the
	// live-agent leg and future multi-message runs share one config shape.
	ReplayBuffer int
	// ResetTTL is the TTL a TTL-resetter rewrites onto forwarded frames
	// (0 selects DefaultResetTTL).
	ResetTTL uint8
	// InjectRate is the spoofer/flooder forged-frame rate in frames/s.
	InjectRate float64
	// InjectHorizon stops forged injections after this sim time.
	InjectHorizon float64
	// ForgedTTL is the TTL on injected forged frames.
	ForgedTTL uint8
	// GeocastRadius is the spoofer's claimed target disc radius in meters.
	GeocastRadius float64
}

// BehaviorOf returns ap's assigned behavior (BehaviorHonest when a is nil
// or the AP is unassigned).
func (a *Adversary) BehaviorOf(ap int) APBehavior {
	if a == nil {
		return BehaviorHonest
	}
	return a.Behaviors[ap]
}

// IsByzantine reports whether ap has any misbehavior assigned.
func (a *Adversary) IsByzantine(ap int) bool { return a.BehaviorOf(ap) != BehaviorHonest }

// NumByzantine counts assigned (non-honest) APs.
func (a *Adversary) NumByzantine() int {
	if a == nil {
		return 0
	}
	n := 0
	for _, b := range a.Behaviors {
		if b != BehaviorHonest {
			n++
		}
	}
	return n
}

func (a *Adversary) dropProb() float64 {
	if a.DropProb <= 0 {
		return DefaultGrayholeDropProb
	}
	return a.DropProb
}

func (a *Adversary) replayInterval() float64 {
	if a.ReplayInterval <= 0 {
		return DefaultReplayInterval
	}
	return a.ReplayInterval
}

func (a *Adversary) replayHorizon() float64 {
	if a.ReplayHorizon <= 0 {
		return DefaultReplayHorizon
	}
	return a.ReplayHorizon
}

func (a *Adversary) resetTTL() int {
	if a.ResetTTL == 0 {
		return DefaultResetTTL
	}
	return int(a.ResetTTL)
}

func (a *Adversary) injectRate() float64 {
	if a.InjectRate <= 0 {
		return DefaultInjectRate
	}
	return a.InjectRate
}

func (a *Adversary) injectHorizon() float64 {
	if a.InjectHorizon <= 0 {
		return DefaultInjectHorizon
	}
	return a.InjectHorizon
}

func (a *Adversary) forgedTTL() int {
	if a.ForgedTTL == 0 {
		return DefaultForgedTTL
	}
	return int(a.ForgedTTL)
}

func (a *Adversary) spoofRadius() float64 {
	if a.GeocastRadius <= 0 {
		return DefaultSpoofRadius
	}
	return a.GeocastRadius
}

// Defense is the honest receiver's sanity stack — the simulator twin of the
// fwd kernel's cheap rejections plus the live agent's per-source rate
// limiting. The zero value disables everything (the undefended baseline).
type Defense struct {
	// MaxTTL rejects receptions whose as-received TTL exceeds it — the
	// signature of a Byzantine TTL-resetter. 0 disables. Set it to the
	// deployment's network TTL: no honest frame can exceed that.
	MaxTTL uint8
	// TamperCheck rejects receptions of corrupted frames (a corruptor's
	// output and everything honest nodes relay of it) — modeling CRC plus
	// kernel route-shape sanity on the received bytes.
	TamperCheck bool
	// NeighborRate caps frames/s accepted per (receiver, sender) pair via
	// a token bucket, throttling replay and forged-frame storms. 0
	// disables.
	NeighborRate float64
	// NeighborBurst is the pair bucket's burst; 0 derives 2x rate.
	NeighborBurst float64
	// MaxGeocastRadius rejects geocast frames claiming a target disc
	// larger than this many meters — no legitimate emergency geocast
	// covers the whole metro. 0 disables.
	MaxGeocastRadius float64
}

// Any reports whether any defense is enabled.
func (d Defense) Any() bool {
	return d.MaxTTL > 0 || d.TamperCheck || d.NeighborRate > 0 || d.MaxGeocastRadius > 0
}

// pairKey packs a (receiver, sender) node pair for the defense rate buckets.
func pairKey(to, from int) uint64 { return uint64(uint32(to))<<32 | uint64(uint32(from)) }

// pairBucket is one (receiver, sender) token bucket, sim-time based.
type pairBucket struct {
	tokens float64
	last   float64
}

// rateGate is the Defense.NeighborRate enforcement: one lazily-created
// token bucket per communicating pair, refilled in sim time. Bounded by the
// number of in-range pairs that actually exchange frames in one run.
type rateGate struct {
	rate, burst float64
	buckets     map[uint64]*pairBucket
}

func newRateGate(d Defense) *rateGate {
	burst := d.NeighborBurst
	if burst <= 0 {
		burst = 2 * d.NeighborRate
	}
	return &rateGate{rate: d.NeighborRate, burst: burst, buckets: make(map[uint64]*pairBucket)}
}

// allow charges one frame from `from` arriving at `to` at sim time t.
func (g *rateGate) allow(to, from int, t float64) bool {
	key := pairKey(to, from)
	b := g.buckets[key]
	if b == nil {
		b = &pairBucket{tokens: g.burst, last: t}
		g.buckets[key] = b
	}
	b.tokens += (t - b.last) * g.rate
	b.last = t
	if b.tokens > g.burst {
		b.tokens = g.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// forgedMsg is one injected forged message's propagation state: where it
// came from, what it claims, and which nodes hold it with how much TTL
// left (presence in ttl doubles as the per-node dedup bit).
type forgedMsg struct {
	spoof  bool // geocast-spoof (radius-scoped) vs flood
	radius float64
	center geo.Point
	ttl    map[int]int
}
