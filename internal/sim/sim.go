// Package sim is the discrete-event network simulator behind the paper's
// preliminary evaluation (§4). It propagates a single CityMesh packet
// through the realized AP mesh: every transmission is an event, receptions
// are subject to loss and AP failure injection, each AP suppresses
// duplicates by message ID, and a pluggable forwarding policy decides
// whether (and to whom) a receiving AP forwards.
//
// The engine is deterministic given a seed, and can record a full
// transcript (who transmitted, who received without forwarding) for
// rendering the paper's Figure 7.
package sim

import (
	"container/heap"
	"math"
	"math/rand"

	"citymesh/internal/fwd"
	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

// Decision is a policy's forwarding choice for a freshly received packet.
type Decision struct {
	// Rebroadcast requests a broadcast to every AP in range.
	Rebroadcast bool
	// NextHops requests unicast transmissions to specific neighbor APs
	// (used by the unicast baselines such as greedy geographic routing).
	NextHops []int32
}

// Context hands a policy everything it may legitimately consult. CityMesh
// itself uses only the city map and the packet header; baselines may use
// neighbor positions (geographic routing assumes position beacons).
type Context struct {
	City *osm.City
	Mesh *mesh.Mesh
	RNG  *rand.Rand
	// Dst is the destination building index of the current packet.
	Dst int
	// TTL is the header TTL as the receiving AP would read it off the
	// wire for the current OnReceive call. The engine tracks remaining TTL
	// per AP instead of rewriting the shared packet, so the header's own
	// TTL field stays at the injected value; kernel-backed policies
	// consult this instead. 0 means "not set" (a direct test call) — fall
	// back to the packet header.
	TTL int
}

// Policy decides forwarding at each AP. OnReceive runs exactly once per
// (AP, message): the engine suppresses duplicates before consulting it.
type Policy interface {
	Name() string
	// OnReceive is called when AP ap first receives pkt from AP from
	// (from == -1 for the initial injection at the source).
	OnReceive(ctx *Context, ap int, pkt *packet.Packet, from int) Decision
}

// DecisionCounter is implemented by policies backed by the shared
// forwarding kernel (internal/fwd). Run snapshots the counts before and
// after the simulation and records the delta in Result.Decisions, so a
// transcript explains not just who forwarded but why. The delta is exact
// when the policy instance is not shared across concurrent runs.
type DecisionCounter interface {
	DecisionCounts() fwd.Counts
}

// FailureSchedule is a time-varying AP failure model (see internal/faults):
// the engine consults it at every transmission and reception instant, so an
// AP can crash mid-run or recover (churn). Implementations must be
// deterministic and safe for concurrent reads.
type FailureSchedule interface {
	// Down reports whether AP ap is failed at simulation time t.
	Down(ap int, t float64) bool
}

// OffsetSchedule shifts a FailureSchedule's time origin: Down(ap, t)
// consults the base schedule at t + Offset. Each sim.Run starts its own
// clock at zero, so a sender re-attempting a delivery at a later point of
// a time-varying outage (core.SendEventually's healing scheduler) wraps
// the schedule with the elapsed sim time — the run then sees the outage
// as it stands *now*, including any churn recovery since the first try.
type OffsetSchedule struct {
	Base   FailureSchedule
	Offset float64
}

// Down implements FailureSchedule.
func (o OffsetSchedule) Down(ap int, t float64) bool {
	return o.Base != nil && o.Base.Down(ap, t+o.Offset)
}

// Config parameterizes a simulation run.
type Config struct {
	// TxDelay is the per-transmission latency in seconds.
	TxDelay float64
	// JitterMax bounds the uniform random delay added before each
	// forwarding transmission, de-synchronizing rebroadcast storms.
	JitterMax float64
	// LossProb is the independent per-reception loss probability.
	LossProb float64
	// FailedAPs marks crashed APs: they neither receive nor forward.
	FailedAPs map[int]bool
	// Schedule is an optional time-varying failure model consulted in
	// addition to FailedAPs; an AP down at time t neither receives nor
	// rebroadcasts at t.
	Schedule FailureSchedule
	// Blackholes marks compromised APs (§1's security threat): they
	// receive and silently consume frames — never forwarding and never
	// counting as delivery — which is strictly harder to route around
	// than a crashed AP whose silence at least leaves the channel clear.
	Blackholes map[int]bool
	// Radio selects the PHY model. nil uses the paper's unit-disk cutoff
	// at the mesh's configured transmission range.
	Radio RadioModel
	// CollisionWindow approximates interference: when two frames arrive
	// at the same AP within this many seconds, the later one is lost.
	// Zero disables collisions (the paper's idealized setting).
	CollisionWindow float64
	// MaxEvents caps the event count as a runaway guard.
	MaxEvents int
	// Seed drives all randomness in the run.
	Seed int64
	// RecordTranscript enables per-AP reception/forwarding records.
	RecordTranscript bool
	// Mobiles adds moving carrier nodes (data mules): each overhears
	// broadcast transmissions wherever its path has taken it, stores the
	// packet, and rebroadcasts periodically (see Mobile). Carrier node
	// indices follow the AP indices.
	Mobiles []Mobile
	// Probe, when set, receives the engine's ground-truth event stream
	// (accepts, transmissions, deliveries) for invariant checking; see
	// InvariantChecker. Must not retain the events beyond the call.
	Probe func(ProbeEvent)
}

// DefaultConfig returns the evaluation defaults: 1 ms transmissions with up
// to 5 ms jitter, no loss, no failures.
func DefaultConfig() Config {
	return Config{TxDelay: 0.001, JitterMax: 0.005, MaxEvents: 5_000_000, Seed: 1}
}

// APRecord is an AP's role in one simulation, for transcripts.
type APRecord struct {
	Received    bool
	Forwarded   bool
	ReceiveTime float64
	Hops        int
}

// Result summarizes one simulation run.
type Result struct {
	// Delivered reports whether any AP in the destination building
	// received the packet.
	Delivered bool
	// DeliveryTime is the simulation time of first delivery.
	DeliveryTime float64
	// DeliveryHops is the transmission count along the first delivery path.
	DeliveryHops int
	// Broadcasts is the total number of transmissions (the numerator of
	// the paper's transmission-overhead metric).
	Broadcasts int
	// Receptions counts successful packet receptions (including
	// duplicates).
	Receptions int
	// APsReached counts distinct APs that received the packet.
	APsReached int
	// MobilesReached counts distinct mobile carriers that picked the
	// packet up (APsReached excludes them).
	MobilesReached int
	// Transcript holds per-AP records when Config.RecordTranscript is set.
	Transcript []APRecord
	// SourceAP is the AP that injected the packet.
	SourceAP int
	// Decisions is the forwarding kernel's per-reason decision tally for
	// this run, populated when the policy implements DecisionCounter
	// (CityMesh does); zero for kernel-less baselines.
	Decisions fwd.Counts

	// Per-attempt loss diagnostics: why frames that were transmitted never
	// became receptions. Together they explain a failed delivery — a run
	// dominated by LostToDeadAP needs rerouting, one dominated by
	// LostToCollision needs pacing, one dominated by LostToRange reflects
	// marginal links or a mispredicted building edge.

	// LostToDeadAP counts frames addressed to an AP that was failed (or
	// scheduled down) at arrival time.
	LostToDeadAP int
	// LostToCollision counts frames lost to the collision window.
	LostToCollision int
	// LostToLoss counts frames dropped by the independent LossProb coin.
	LostToLoss int
	// LostToRange counts frames the radio model rejected (out of range or
	// faded).
	LostToRange int
}

// Overhead returns Broadcasts divided by the ideal minimum transmission
// count (from mesh.MinTransmissions); the paper's overhead metric. It
// returns 0 when ideal is 0.
func (r Result) Overhead(ideal int) float64 {
	if ideal <= 0 {
		return 0
	}
	return float64(r.Broadcasts) / float64(ideal)
}

type evKind uint8

const (
	evTransmit evKind = iota // an AP broadcasts to all neighbors
	evUnicast                // an AP transmits to one neighbor
	evReceive                // a neighbor receives
)

type event struct {
	t    float64
	seq  int64 // FIFO tiebreak for determinism
	kind evKind
	ap   int // acting AP: transmitter for evTransmit/evUnicast, receiver for evReceive
	peer int // evUnicast: target AP; evReceive: sending AP
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run simulates the propagation of pkt, injected at the first AP of the
// source building, until the event queue drains or MaxEvents is hit. The
// destination building is taken from the packet header. An invalid config
// (see Config.Validate) yields the same empty not-delivered Result as an
// out-of-range source: SourceAP == -1 and nothing simulated.
func Run(m *mesh.Mesh, city *osm.City, pol Policy, pkt *packet.Packet, cfg Config) Result {
	if cfg.Validate() != nil {
		return Result{SourceAP: -1}
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 5_000_000
	}
	radio := cfg.Radio
	if radio == nil {
		radio = UnitDisk{Range: m.Cfg.Range}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ctx := &Context{City: city, Mesh: m, RNG: rng, Dst: pkt.Header.Dst()}

	// Kernel-backed policies expose decision counters; snapshot before and
	// after so Result.Decisions covers exactly this run.
	dc, hasDC := pol.(DecisionCounter)
	var dcBefore fwd.Counts
	if hasDC {
		dcBefore = dc.DecisionCounts()
	}

	numAPs := m.NumAPs()
	total := numAPs + len(cfg.Mobiles)

	// down folds the static failure set and the time-varying schedule.
	// Mobile carriers never fail: a vehicle drives out of the flood zone
	// rather than drowning with it.
	down := func(node int, t float64) bool {
		if node >= numAPs {
			return false
		}
		if cfg.FailedAPs[node] {
			return true
		}
		return cfg.Schedule != nil && cfg.Schedule.Down(node, t)
	}

	// nodePos resolves a node's position at time t: APs are static, a
	// carrier is wherever its path has taken it — the engine re-resolves
	// neighbor sets against these positions at every transmission.
	nodePos := func(node int, t float64) geo.Point {
		if node < numAPs {
			return m.APs[node].Pos
		}
		return cfg.Mobiles[node-numAPs].Path.PosAt(t)
	}

	probe := func(kind ProbeKind, node, from int, t float64, ttl int) {
		if cfg.Probe != nil {
			cfg.Probe(ProbeEvent{Kind: kind, Node: node, From: from, T: t, TTL: ttl})
		}
	}

	res := Result{SourceAP: -1}
	src := pkt.Header.Src()
	dst := pkt.Header.Dst()
	if src < 0 || src >= city.NumBuildings() || len(m.APsInBuilding(src)) == 0 {
		return res
	}
	srcAP := int(m.APsInBuilding(src)[0])
	res.SourceAP = srcAP

	seen := make([]bool, total)
	hops := make([]int, total)
	ttl := make([]int, total)
	if cfg.RecordTranscript {
		res.Transcript = make([]APRecord, numAPs)
	}

	h := &eventHeap{}
	var seq int64
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(h, e)
	}

	inDst := make(map[int]bool)
	for _, a := range m.APsInBuilding(dst) {
		inDst[int(a)] = true
	}

	lastArrival := make([]float64, total)
	for i := range lastArrival {
		lastArrival[i] = math.Inf(-1)
	}

	// deliver marks a reception at AP ap.
	deliver := func(ap, from int, t float64) {
		// Interference approximation: a frame arriving hard on the heels
		// of another at the same radio is lost in the collision.
		if cfg.CollisionWindow > 0 && from >= 0 {
			collided := t-lastArrival[ap] < cfg.CollisionWindow
			lastArrival[ap] = t
			if collided {
				res.LostToCollision++
				return
			}
		}
		res.Receptions++
		if seen[ap] {
			return
		}
		seen[ap] = true
		if from >= 0 {
			hops[ap] = hops[from] + 1
			ttl[ap] = ttl[from] - 1
		} else {
			hops[ap] = 0
			ttl[ap] = int(pkt.Header.TTL)
		}
		probe(ProbeAccept, ap, from, t, ttl[ap])
		if ap >= numAPs {
			// Mobile carrier pickup: store the packet and start the
			// periodic carry-and-rebroadcast chain. Carriers bypass the
			// Policy — they are not APs and know nothing about the map.
			res.MobilesReached++
			if ttl[ap] > 0 {
				mb := cfg.Mobiles[ap-numAPs]
				if t <= mb.horizon() {
					push(event{t: t + cfg.TxDelay + rng.Float64()*cfg.JitterMax, kind: evTransmit, ap: ap})
				}
			}
			return
		}
		res.APsReached++
		if cfg.RecordTranscript {
			res.Transcript[ap].Received = true
			res.Transcript[ap].ReceiveTime = t
			res.Transcript[ap].Hops = hops[ap]
		}
		if cfg.Blackholes[ap] {
			// Compromised node: consume silently; no delivery, no forward.
			return
		}
		if inDst[ap] {
			probe(ProbeDeliver, ap, -1, t, 0)
			if !res.Delivered {
				res.Delivered = true
				res.DeliveryTime = t
				res.DeliveryHops = hops[ap]
			}
		}
		if ttl[ap] <= 0 {
			return
		}
		// Hand the policy the TTL a live AP would read off the wire: the
		// sender decrements before transmitting, except the injection AP,
		// which broadcasts the original header unchanged.
		ctx.TTL = ttl[ap]
		if from >= 0 {
			ctx.TTL++
		}
		d := pol.OnReceive(ctx, ap, pkt, from)
		if d.Rebroadcast {
			push(event{t: t + cfg.TxDelay + rng.Float64()*cfg.JitterMax, kind: evTransmit, ap: ap})
			if cfg.RecordTranscript {
				res.Transcript[ap].Forwarded = true
			}
		}
		for _, nh := range d.NextHops {
			push(event{t: t + cfg.TxDelay + rng.Float64()*cfg.JitterMax, kind: evUnicast, ap: ap, peer: int(nh)})
			if cfg.RecordTranscript {
				res.Transcript[ap].Forwarded = true
			}
		}
	}

	// Inject at the source.
	if !down(srcAP, 0) {
		deliver(srcAP, -1, 0)
	}

	events := 0
	for h.Len() > 0 && events < cfg.MaxEvents {
		e := heap.Pop(h).(event)
		events++
		switch e.kind {
		case evTransmit:
			if down(e.ap, e.t) {
				continue
			}
			probe(ProbeTransmit, e.ap, -1, e.t, ttl[e.ap])
			res.Broadcasts++
			arrival := e.t + cfg.TxDelay
			pos := nodePos(e.ap, e.t)
			m.Grid().WithinRadius(pos, radio.MaxRange(), func(n int, p geo.Point) bool {
				if n == e.ap {
					return true
				}
				if down(n, arrival) {
					res.LostToDeadAP++
					return true
				}
				if !receives(radio, pos.Dist(p), rng) {
					res.LostToRange++
					return true
				}
				if cfg.LossProb > 0 && rng.Float64() < cfg.LossProb {
					res.LostToLoss++
					return true
				}
				push(event{t: arrival, kind: evReceive, ap: n, peer: e.ap})
				return true
			})
			// Moving carriers are not in the static AP grid: re-resolve
			// each against the transmitter's position. Out-of-range
			// carriers are skipped silently (not lost frames — nothing was
			// ever addressed to them); in-range ones face the same radio
			// and loss coins as APs.
			for j := range cfg.Mobiles {
				node := numAPs + j
				if node == e.ap || seen[node] {
					continue
				}
				d := pos.Dist(nodePos(node, arrival))
				if d > radio.MaxRange() {
					continue
				}
				if !receives(radio, d, rng) {
					res.LostToRange++
					continue
				}
				if cfg.LossProb > 0 && rng.Float64() < cfg.LossProb {
					res.LostToLoss++
					continue
				}
				push(event{t: arrival, kind: evReceive, ap: node, peer: e.ap})
			}
			// Chain the carrier's next periodic rebroadcast.
			if e.ap >= numAPs {
				mb := cfg.Mobiles[e.ap-numAPs]
				if next := e.t + mb.interval(); next <= mb.horizon() {
					push(event{t: next, kind: evTransmit, ap: e.ap})
				}
			}
		case evUnicast:
			if down(e.ap, e.t) {
				continue
			}
			probe(ProbeTransmit, e.ap, -1, e.t, ttl[e.ap])
			res.Broadcasts++
			arrival := e.t + cfg.TxDelay
			if down(e.peer, arrival) {
				res.LostToDeadAP++
				continue
			}
			if !receives(radio, m.APs[e.ap].Pos.Dist(m.APs[e.peer].Pos), rng) {
				res.LostToRange++
				continue
			}
			if cfg.LossProb > 0 && rng.Float64() < cfg.LossProb {
				res.LostToLoss++
				continue
			}
			push(event{t: arrival, kind: evReceive, ap: e.peer, peer: e.ap})
		case evReceive:
			deliver(e.ap, e.peer, e.t)
		}
	}
	if hasDC {
		res.Decisions = dc.DecisionCounts().Sub(dcBefore)
	}
	return res
}
