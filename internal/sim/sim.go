// Package sim is the discrete-event network simulator behind the paper's
// preliminary evaluation (§4). It propagates a single CityMesh packet
// through the realized AP mesh: every transmission is an event, receptions
// are subject to loss and AP failure injection, each AP suppresses
// duplicates by message ID, and a pluggable forwarding policy decides
// whether (and to whom) a receiving AP forwards.
//
// The engine is deterministic given a seed, and can record a full
// transcript (who transmitted, who received without forwarding) for
// rendering the paper's Figure 7.
package sim

import (
	"math/rand"

	"citymesh/internal/fwd"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

// Decision is a policy's forwarding choice for a freshly received packet.
type Decision struct {
	// Rebroadcast requests a broadcast to every AP in range.
	Rebroadcast bool
	// NextHops requests unicast transmissions to specific neighbor APs
	// (used by the unicast baselines such as greedy geographic routing).
	NextHops []int32
}

// Context hands a policy everything it may legitimately consult. CityMesh
// itself uses only the city map and the packet header; baselines may use
// neighbor positions (geographic routing assumes position beacons).
type Context struct {
	City *osm.City
	Mesh *mesh.Mesh
	RNG  *rand.Rand
	// Dst is the destination building index of the current packet.
	Dst int
	// TTL is the header TTL as the receiving AP would read it off the
	// wire for the current OnReceive call. The engine tracks remaining TTL
	// per AP instead of rewriting the shared packet, so the header's own
	// TTL field stays at the injected value; kernel-backed policies
	// consult this instead. 0 means "not set" (a direct test call) — fall
	// back to the packet header.
	TTL int
}

// Policy decides forwarding at each AP. OnReceive runs exactly once per
// (AP, message): the engine suppresses duplicates before consulting it.
type Policy interface {
	Name() string
	// OnReceive is called when AP ap first receives pkt from AP from
	// (from == -1 for the initial injection at the source).
	OnReceive(ctx *Context, ap int, pkt *packet.Packet, from int) Decision
}

// DecisionCounter is implemented by policies backed by the shared
// forwarding kernel (internal/fwd). Run snapshots the counts before and
// after the simulation and records the delta in Result.Decisions, so a
// transcript explains not just who forwarded but why. The delta is exact
// when the policy instance is not shared across concurrent runs.
type DecisionCounter interface {
	DecisionCounts() fwd.Counts
}

// FailureSchedule is a time-varying AP failure model (see internal/faults):
// the engine consults it at every transmission and reception instant, so an
// AP can crash mid-run or recover (churn). Implementations must be
// deterministic and safe for concurrent reads.
type FailureSchedule interface {
	// Down reports whether AP ap is failed at simulation time t.
	Down(ap int, t float64) bool
}

// OffsetSchedule shifts a FailureSchedule's time origin: Down(ap, t)
// consults the base schedule at t + Offset. Each sim.Run starts its own
// clock at zero, so a sender re-attempting a delivery at a later point of
// a time-varying outage (core.SendEventually's healing scheduler) wraps
// the schedule with the elapsed sim time — the run then sees the outage
// as it stands *now*, including any churn recovery since the first try.
type OffsetSchedule struct {
	Base   FailureSchedule
	Offset float64
}

// Down implements FailureSchedule.
func (o OffsetSchedule) Down(ap int, t float64) bool {
	return o.Base != nil && o.Base.Down(ap, t+o.Offset)
}

// Config parameterizes a simulation run.
type Config struct {
	// TxDelay is the per-transmission latency in seconds.
	TxDelay float64
	// JitterMax bounds the uniform random delay added before each
	// forwarding transmission, de-synchronizing rebroadcast storms.
	JitterMax float64
	// LossProb is the independent per-reception loss probability.
	LossProb float64
	// FailedAPs marks crashed APs: they neither receive nor forward.
	// Legacy map form; the engine folds it into a NodeSet once per run.
	// Prefer FailedSet for metro-scale runs.
	FailedAPs map[int]bool
	// FailedSet marks crashed APs as a bitset — the allocation-free
	// equivalent of FailedAPs. The engine consults the union of both.
	FailedSet NodeSet
	// Schedule is an optional time-varying failure model consulted in
	// addition to FailedAPs; an AP down at time t neither receives nor
	// rebroadcasts at t.
	Schedule FailureSchedule
	// Blackholes marks compromised APs (§1's security threat): they
	// receive and silently consume frames — never forwarding and never
	// counting as delivery — which is strictly harder to route around
	// than a crashed AP whose silence at least leaves the channel clear.
	// Legacy map form; prefer BlackholeSet for metro-scale runs.
	Blackholes map[int]bool
	// BlackholeSet is the NodeSet equivalent of Blackholes; the engine
	// consults the union of both.
	BlackholeSet NodeSet
	// Radio selects the PHY model. nil uses the paper's unit-disk cutoff
	// at the mesh's configured transmission range.
	Radio RadioModel
	// CollisionWindow approximates interference: when two frames arrive
	// at the same AP within this many seconds, the later one is lost.
	// Zero disables collisions (the paper's idealized setting).
	CollisionWindow float64
	// MaxEvents caps the event count as a runaway guard.
	MaxEvents int
	// Seed drives all randomness in the run.
	Seed int64
	// RecordTranscript enables per-AP reception/forwarding records.
	RecordTranscript bool
	// Mobiles adds moving carrier nodes (data mules): each overhears
	// broadcast transmissions wherever its path has taken it, stores the
	// packet, and rebroadcasts periodically (see Mobile). Carrier node
	// indices follow the AP indices.
	Mobiles []Mobile
	// Probe, when set, receives the engine's ground-truth event stream
	// (accepts, transmissions, deliveries) for invariant checking; see
	// InvariantChecker. Must not retain the events beyond the call.
	Probe func(ProbeEvent)
	// Adversary assigns Byzantine misbehaviors to APs (see APBehavior);
	// nil means every AP is honest. Composes with FailedAPs/Schedule: a
	// down AP stays silent whatever its behavior.
	Adversary *Adversary
	// Defense is the honest receivers' sanity stack; the zero value is the
	// undefended baseline.
	Defense Defense
}

// DefaultConfig returns the evaluation defaults: 1 ms transmissions with up
// to 5 ms jitter, no loss, no failures.
func DefaultConfig() Config {
	return Config{TxDelay: 0.001, JitterMax: 0.005, MaxEvents: 5_000_000, Seed: 1}
}

// APRecord is an AP's role in one simulation, for transcripts.
type APRecord struct {
	Received    bool
	Forwarded   bool
	ReceiveTime float64
	Hops        int
}

// Result summarizes one simulation run.
type Result struct {
	// Delivered reports whether any AP in the destination building
	// received the packet.
	Delivered bool
	// DeliveryTime is the simulation time of first delivery.
	DeliveryTime float64
	// DeliveryHops is the transmission count along the first delivery path.
	DeliveryHops int
	// Broadcasts is the total number of transmissions (the numerator of
	// the paper's transmission-overhead metric).
	Broadcasts int
	// Receptions counts successful packet receptions (including
	// duplicates).
	Receptions int
	// APsReached counts distinct APs that received the packet.
	APsReached int
	// MobilesReached counts distinct mobile carriers that picked the
	// packet up (APsReached excludes them).
	MobilesReached int
	// Transcript holds per-AP records when Config.RecordTranscript is set.
	Transcript []APRecord
	// SourceAP is the AP that injected the packet.
	SourceAP int
	// Decisions is the forwarding kernel's per-reason decision tally for
	// this run, populated when the policy implements DecisionCounter
	// (CityMesh does); zero for kernel-less baselines.
	Decisions fwd.Counts

	// Per-attempt loss diagnostics: why frames that were transmitted never
	// became receptions. Together they explain a failed delivery — a run
	// dominated by LostToDeadAP needs rerouting, one dominated by
	// LostToCollision needs pacing, one dominated by LostToRange reflects
	// marginal links or a mispredicted building edge.

	// LostToDeadAP counts frames addressed to an AP that was failed (or
	// scheduled down) at arrival time.
	LostToDeadAP int
	// LostToCollision counts frames lost to the collision window.
	LostToCollision int
	// LostToLoss counts frames dropped by the independent LossProb coin.
	LostToLoss int
	// LostToRange counts frames the radio model rejected (out of range or
	// faded).
	LostToRange int

	// Adversary diagnostics: what the Byzantine APs did and what the
	// defense stack caught. All zero when Config.Adversary is nil and
	// Config.Defense is zero.

	// CompromisedDeliveries counts receptions of the packet at Byzantine
	// APs of the destination building — the message reached the building
	// but only a liar holds it, so Delivered stays false for them.
	CompromisedDeliveries int
	// TaintedDeliveries counts destination-building receptions of a
	// corrupted copy by honest APs: without TamperCheck the corruption is
	// accepted (and poisons dedup against the genuine copy), but a
	// corrupted payload is not a delivery.
	TaintedDeliveries int
	// TaintedAccepts counts nodes whose first (dedup-claiming) reception
	// was a corrupted copy.
	TaintedAccepts int
	// GrayholeDrops counts policy-approved forwards suppressed by grayhole
	// APs.
	GrayholeDrops int
	// ReplayedFrames counts replayer retransmissions (also in Broadcasts).
	ReplayedFrames int
	// ForgedBroadcasts counts transmissions of forged messages, by their
	// injectors and by honest nodes relaying them. Not in Broadcasts: the
	// legacy metric keeps meaning "transmissions of the real packet".
	ForgedBroadcasts int
	// ForgedAccepts counts first receptions of forged messages.
	ForgedAccepts int
	// RejectedTampered counts receptions dropped by Defense.TamperCheck.
	RejectedTampered int
	// RejectedTTL counts receptions dropped by Defense.MaxTTL.
	RejectedTTL int
	// RejectedRateLimited counts receptions dropped by the per-neighbor
	// rate gate.
	RejectedRateLimited int
	// RejectedGeocast counts forged-geocast receptions dropped by
	// Defense.MaxGeocastRadius.
	RejectedGeocast int
}

// Overhead returns Broadcasts divided by the ideal minimum transmission
// count (from mesh.MinTransmissions); the paper's overhead metric. It
// returns 0 when ideal is 0.
func (r Result) Overhead(ideal int) float64 {
	if ideal <= 0 {
		return 0
	}
	return float64(r.Broadcasts) / float64(ideal)
}

type evKind uint8

const (
	evTransmit evKind = iota // an AP broadcasts to all neighbors
	evUnicast                // an AP transmits to one neighbor
	evReceive                // a neighbor receives
)

type event struct {
	t    float64
	seq  int64 // FIFO tiebreak for determinism
	kind evKind
	ap   int // acting AP: transmitter for evTransmit/evUnicast, receiver for evReceive
	peer int // evUnicast: target AP; evReceive: sending AP
	// msg selects the message: 0 is the real packet, k > 0 is forged
	// message k-1 (spoofer/flooder injections propagate as their own
	// waves).
	msg int
	// replay marks a replayer's stale retransmission of the real packet.
	replay bool
}

// Run simulates the propagation of pkt, injected at the first AP of the
// source building, until the event queue drains or MaxEvents is hit. The
// destination building is taken from the packet header. An invalid config
// (see Config.Validate) yields the same empty not-delivered Result as an
// out-of-range source: SourceAP == -1 and nothing simulated.
//
// Deprecated: Run builds a throwaway Engine per call, repaying none of
// the per-mesh precomputation and pooled scratch that make repeated runs
// cheap, and it swallows the reason a run never started. Construct an
// Engine once per (mesh, city, policy) and call Engine.Run, which returns
// a real error instead of the SourceAP == -1 sentinel.
func Run(m *mesh.Mesh, city *osm.City, pol Policy, pkt *packet.Packet, cfg Config) Result {
	res, err := NewEngine(m, city, pol).Run(pkt, cfg)
	if err != nil {
		return Result{SourceAP: -1}
	}
	return res
}
