// Package sim is the discrete-event network simulator behind the paper's
// preliminary evaluation (§4). It propagates a single CityMesh packet
// through the realized AP mesh: every transmission is an event, receptions
// are subject to loss and AP failure injection, each AP suppresses
// duplicates by message ID, and a pluggable forwarding policy decides
// whether (and to whom) a receiving AP forwards.
//
// The engine is deterministic given a seed, and can record a full
// transcript (who transmitted, who received without forwarding) for
// rendering the paper's Figure 7.
package sim

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"citymesh/internal/fwd"
	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

// Decision is a policy's forwarding choice for a freshly received packet.
type Decision struct {
	// Rebroadcast requests a broadcast to every AP in range.
	Rebroadcast bool
	// NextHops requests unicast transmissions to specific neighbor APs
	// (used by the unicast baselines such as greedy geographic routing).
	NextHops []int32
}

// Context hands a policy everything it may legitimately consult. CityMesh
// itself uses only the city map and the packet header; baselines may use
// neighbor positions (geographic routing assumes position beacons).
type Context struct {
	City *osm.City
	Mesh *mesh.Mesh
	RNG  *rand.Rand
	// Dst is the destination building index of the current packet.
	Dst int
	// TTL is the header TTL as the receiving AP would read it off the
	// wire for the current OnReceive call. The engine tracks remaining TTL
	// per AP instead of rewriting the shared packet, so the header's own
	// TTL field stays at the injected value; kernel-backed policies
	// consult this instead. 0 means "not set" (a direct test call) — fall
	// back to the packet header.
	TTL int
}

// Policy decides forwarding at each AP. OnReceive runs exactly once per
// (AP, message): the engine suppresses duplicates before consulting it.
type Policy interface {
	Name() string
	// OnReceive is called when AP ap first receives pkt from AP from
	// (from == -1 for the initial injection at the source).
	OnReceive(ctx *Context, ap int, pkt *packet.Packet, from int) Decision
}

// DecisionCounter is implemented by policies backed by the shared
// forwarding kernel (internal/fwd). Run snapshots the counts before and
// after the simulation and records the delta in Result.Decisions, so a
// transcript explains not just who forwarded but why. The delta is exact
// when the policy instance is not shared across concurrent runs.
type DecisionCounter interface {
	DecisionCounts() fwd.Counts
}

// FailureSchedule is a time-varying AP failure model (see internal/faults):
// the engine consults it at every transmission and reception instant, so an
// AP can crash mid-run or recover (churn). Implementations must be
// deterministic and safe for concurrent reads.
type FailureSchedule interface {
	// Down reports whether AP ap is failed at simulation time t.
	Down(ap int, t float64) bool
}

// OffsetSchedule shifts a FailureSchedule's time origin: Down(ap, t)
// consults the base schedule at t + Offset. Each sim.Run starts its own
// clock at zero, so a sender re-attempting a delivery at a later point of
// a time-varying outage (core.SendEventually's healing scheduler) wraps
// the schedule with the elapsed sim time — the run then sees the outage
// as it stands *now*, including any churn recovery since the first try.
type OffsetSchedule struct {
	Base   FailureSchedule
	Offset float64
}

// Down implements FailureSchedule.
func (o OffsetSchedule) Down(ap int, t float64) bool {
	return o.Base != nil && o.Base.Down(ap, t+o.Offset)
}

// Config parameterizes a simulation run.
type Config struct {
	// TxDelay is the per-transmission latency in seconds.
	TxDelay float64
	// JitterMax bounds the uniform random delay added before each
	// forwarding transmission, de-synchronizing rebroadcast storms.
	JitterMax float64
	// LossProb is the independent per-reception loss probability.
	LossProb float64
	// FailedAPs marks crashed APs: they neither receive nor forward.
	FailedAPs map[int]bool
	// Schedule is an optional time-varying failure model consulted in
	// addition to FailedAPs; an AP down at time t neither receives nor
	// rebroadcasts at t.
	Schedule FailureSchedule
	// Blackholes marks compromised APs (§1's security threat): they
	// receive and silently consume frames — never forwarding and never
	// counting as delivery — which is strictly harder to route around
	// than a crashed AP whose silence at least leaves the channel clear.
	Blackholes map[int]bool
	// Radio selects the PHY model. nil uses the paper's unit-disk cutoff
	// at the mesh's configured transmission range.
	Radio RadioModel
	// CollisionWindow approximates interference: when two frames arrive
	// at the same AP within this many seconds, the later one is lost.
	// Zero disables collisions (the paper's idealized setting).
	CollisionWindow float64
	// MaxEvents caps the event count as a runaway guard.
	MaxEvents int
	// Seed drives all randomness in the run.
	Seed int64
	// RecordTranscript enables per-AP reception/forwarding records.
	RecordTranscript bool
	// Mobiles adds moving carrier nodes (data mules): each overhears
	// broadcast transmissions wherever its path has taken it, stores the
	// packet, and rebroadcasts periodically (see Mobile). Carrier node
	// indices follow the AP indices.
	Mobiles []Mobile
	// Probe, when set, receives the engine's ground-truth event stream
	// (accepts, transmissions, deliveries) for invariant checking; see
	// InvariantChecker. Must not retain the events beyond the call.
	Probe func(ProbeEvent)
	// Adversary assigns Byzantine misbehaviors to APs (see APBehavior);
	// nil means every AP is honest. Composes with FailedAPs/Schedule: a
	// down AP stays silent whatever its behavior.
	Adversary *Adversary
	// Defense is the honest receivers' sanity stack; the zero value is the
	// undefended baseline.
	Defense Defense
}

// DefaultConfig returns the evaluation defaults: 1 ms transmissions with up
// to 5 ms jitter, no loss, no failures.
func DefaultConfig() Config {
	return Config{TxDelay: 0.001, JitterMax: 0.005, MaxEvents: 5_000_000, Seed: 1}
}

// APRecord is an AP's role in one simulation, for transcripts.
type APRecord struct {
	Received    bool
	Forwarded   bool
	ReceiveTime float64
	Hops        int
}

// Result summarizes one simulation run.
type Result struct {
	// Delivered reports whether any AP in the destination building
	// received the packet.
	Delivered bool
	// DeliveryTime is the simulation time of first delivery.
	DeliveryTime float64
	// DeliveryHops is the transmission count along the first delivery path.
	DeliveryHops int
	// Broadcasts is the total number of transmissions (the numerator of
	// the paper's transmission-overhead metric).
	Broadcasts int
	// Receptions counts successful packet receptions (including
	// duplicates).
	Receptions int
	// APsReached counts distinct APs that received the packet.
	APsReached int
	// MobilesReached counts distinct mobile carriers that picked the
	// packet up (APsReached excludes them).
	MobilesReached int
	// Transcript holds per-AP records when Config.RecordTranscript is set.
	Transcript []APRecord
	// SourceAP is the AP that injected the packet.
	SourceAP int
	// Decisions is the forwarding kernel's per-reason decision tally for
	// this run, populated when the policy implements DecisionCounter
	// (CityMesh does); zero for kernel-less baselines.
	Decisions fwd.Counts

	// Per-attempt loss diagnostics: why frames that were transmitted never
	// became receptions. Together they explain a failed delivery — a run
	// dominated by LostToDeadAP needs rerouting, one dominated by
	// LostToCollision needs pacing, one dominated by LostToRange reflects
	// marginal links or a mispredicted building edge.

	// LostToDeadAP counts frames addressed to an AP that was failed (or
	// scheduled down) at arrival time.
	LostToDeadAP int
	// LostToCollision counts frames lost to the collision window.
	LostToCollision int
	// LostToLoss counts frames dropped by the independent LossProb coin.
	LostToLoss int
	// LostToRange counts frames the radio model rejected (out of range or
	// faded).
	LostToRange int

	// Adversary diagnostics: what the Byzantine APs did and what the
	// defense stack caught. All zero when Config.Adversary is nil and
	// Config.Defense is zero.

	// CompromisedDeliveries counts receptions of the packet at Byzantine
	// APs of the destination building — the message reached the building
	// but only a liar holds it, so Delivered stays false for them.
	CompromisedDeliveries int
	// TaintedDeliveries counts destination-building receptions of a
	// corrupted copy by honest APs: without TamperCheck the corruption is
	// accepted (and poisons dedup against the genuine copy), but a
	// corrupted payload is not a delivery.
	TaintedDeliveries int
	// TaintedAccepts counts nodes whose first (dedup-claiming) reception
	// was a corrupted copy.
	TaintedAccepts int
	// GrayholeDrops counts policy-approved forwards suppressed by grayhole
	// APs.
	GrayholeDrops int
	// ReplayedFrames counts replayer retransmissions (also in Broadcasts).
	ReplayedFrames int
	// ForgedBroadcasts counts transmissions of forged messages, by their
	// injectors and by honest nodes relaying them. Not in Broadcasts: the
	// legacy metric keeps meaning "transmissions of the real packet".
	ForgedBroadcasts int
	// ForgedAccepts counts first receptions of forged messages.
	ForgedAccepts int
	// RejectedTampered counts receptions dropped by Defense.TamperCheck.
	RejectedTampered int
	// RejectedTTL counts receptions dropped by Defense.MaxTTL.
	RejectedTTL int
	// RejectedRateLimited counts receptions dropped by the per-neighbor
	// rate gate.
	RejectedRateLimited int
	// RejectedGeocast counts forged-geocast receptions dropped by
	// Defense.MaxGeocastRadius.
	RejectedGeocast int
}

// Overhead returns Broadcasts divided by the ideal minimum transmission
// count (from mesh.MinTransmissions); the paper's overhead metric. It
// returns 0 when ideal is 0.
func (r Result) Overhead(ideal int) float64 {
	if ideal <= 0 {
		return 0
	}
	return float64(r.Broadcasts) / float64(ideal)
}

type evKind uint8

const (
	evTransmit evKind = iota // an AP broadcasts to all neighbors
	evUnicast                // an AP transmits to one neighbor
	evReceive                // a neighbor receives
)

type event struct {
	t    float64
	seq  int64 // FIFO tiebreak for determinism
	kind evKind
	ap   int // acting AP: transmitter for evTransmit/evUnicast, receiver for evReceive
	peer int // evUnicast: target AP; evReceive: sending AP
	// msg selects the message: 0 is the real packet, k > 0 is forged
	// message k-1 (spoofer/flooder injections propagate as their own
	// waves).
	msg int
	// replay marks a replayer's stale retransmission of the real packet.
	replay bool
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run simulates the propagation of pkt, injected at the first AP of the
// source building, until the event queue drains or MaxEvents is hit. The
// destination building is taken from the packet header. An invalid config
// (see Config.Validate) yields the same empty not-delivered Result as an
// out-of-range source: SourceAP == -1 and nothing simulated.
func Run(m *mesh.Mesh, city *osm.City, pol Policy, pkt *packet.Packet, cfg Config) Result {
	if cfg.Validate() != nil {
		return Result{SourceAP: -1}
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 5_000_000
	}
	radio := cfg.Radio
	if radio == nil {
		radio = UnitDisk{Range: m.Cfg.Range}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ctx := &Context{City: city, Mesh: m, RNG: rng, Dst: pkt.Header.Dst()}

	// Kernel-backed policies expose decision counters; snapshot before and
	// after so Result.Decisions covers exactly this run.
	dc, hasDC := pol.(DecisionCounter)
	var dcBefore fwd.Counts
	if hasDC {
		dcBefore = dc.DecisionCounts()
	}

	numAPs := m.NumAPs()
	total := numAPs + len(cfg.Mobiles)

	// down folds the static failure set and the time-varying schedule.
	// Mobile carriers never fail: a vehicle drives out of the flood zone
	// rather than drowning with it.
	down := func(node int, t float64) bool {
		if node >= numAPs {
			return false
		}
		if cfg.FailedAPs[node] {
			return true
		}
		return cfg.Schedule != nil && cfg.Schedule.Down(node, t)
	}

	// nodePos resolves a node's position at time t: APs are static, a
	// carrier is wherever its path has taken it — the engine re-resolves
	// neighbor sets against these positions at every transmission.
	nodePos := func(node int, t float64) geo.Point {
		if node < numAPs {
			return m.APs[node].Pos
		}
		return cfg.Mobiles[node-numAPs].Path.PosAt(t)
	}

	probe := func(kind ProbeKind, node, from int, t float64, ttl int) {
		if cfg.Probe != nil {
			cfg.Probe(ProbeEvent{Kind: kind, Node: node, From: from, T: t, TTL: ttl})
		}
	}

	res := Result{SourceAP: -1}
	src := pkt.Header.Src()
	dst := pkt.Header.Dst()
	if src < 0 || src >= city.NumBuildings() || len(m.APsInBuilding(src)) == 0 {
		return res
	}
	srcAP := int(m.APsInBuilding(src)[0])
	res.SourceAP = srcAP

	seen := make([]bool, total)
	hops := make([]int, total)
	ttl := make([]int, total)
	if cfg.RecordTranscript {
		res.Transcript = make([]APRecord, numAPs)
	}

	h := &eventHeap{}
	var seq int64
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(h, e)
	}

	inDst := make(map[int]bool)
	for _, a := range m.APsInBuilding(dst) {
		inDst[int(a)] = true
	}

	lastArrival := make([]float64, total)
	for i := range lastArrival {
		lastArrival[i] = math.Inf(-1)
	}

	// Adversary and defense state. All of it is inert (no allocations on
	// the hot path, no extra RNG draws) when no behaviors are assigned and
	// no defense is enabled, preserving the historical event and RNG
	// sequence byte-for-byte.
	adv := cfg.Adversary
	behavior := func(node int) APBehavior {
		if node >= numAPs {
			return BehaviorHonest // carriers are never Byzantine
		}
		return adv.BehaviorOf(node)
	}
	// tainted marks nodes whose accepted copy of the packet is corrupted
	// (they accepted downstream of a corruptor); everything they forward
	// is corrupted too.
	var tainted []bool
	if adv != nil {
		tainted = make([]bool, total)
	}
	var gate *rateGate
	if cfg.Defense.NeighborRate > 0 {
		gate = newRateGate(cfg.Defense)
	}
	isTainted := func(node int) bool { return tainted != nil && tainted[node] }

	// deliver marks a reception at AP ap.
	deliver := func(ap, from int, t float64) {
		// Receiver-side defense stack, applied to frames off the air (not
		// the source's own injection): rate gate, TTL sanity, integrity.
		if from >= 0 {
			if gate != nil && !gate.allow(ap, from, t) {
				res.RejectedRateLimited++
				return
			}
			if cfg.Defense.MaxTTL > 0 && ttl[from] > int(cfg.Defense.MaxTTL) {
				res.RejectedTTL++
				return
			}
			if cfg.Defense.TamperCheck && isTainted(from) {
				res.RejectedTampered++
				return
			}
		}
		// Interference approximation: a frame arriving hard on the heels
		// of another at the same radio is lost in the collision.
		if cfg.CollisionWindow > 0 && from >= 0 {
			collided := t-lastArrival[ap] < cfg.CollisionWindow
			lastArrival[ap] = t
			if collided {
				res.LostToCollision++
				return
			}
		}
		res.Receptions++
		if seen[ap] {
			return
		}
		seen[ap] = true
		if from >= 0 {
			hops[ap] = hops[from] + 1
			ttl[ap] = ttl[from] - 1
			if isTainted(from) {
				tainted[ap] = true
			}
		} else {
			hops[ap] = 0
			ttl[ap] = int(pkt.Header.TTL)
		}
		beh := behavior(ap)
		switch beh {
		case BehaviorTTLReset:
			// The resetter rewrites its stored TTL upward; every frame it
			// forwards carries the inflated value, which is exactly what
			// the probe stream (and Defense.MaxTTL downstream) will see.
			ttl[ap] = adv.resetTTL()
		case BehaviorCorruptor:
			tainted[ap] = true
		}
		if isTainted(ap) {
			res.TaintedAccepts++
		}
		probe(ProbeAccept, ap, from, t, ttl[ap])
		if ap >= numAPs {
			// Mobile carrier pickup: store the packet and start the
			// periodic carry-and-rebroadcast chain. Carriers bypass the
			// Policy — they are not APs and know nothing about the map.
			res.MobilesReached++
			if ttl[ap] > 0 {
				mb := cfg.Mobiles[ap-numAPs]
				if t <= mb.horizon() {
					push(event{t: t + cfg.TxDelay + rng.Float64()*cfg.JitterMax, kind: evTransmit, ap: ap})
				}
			}
			return
		}
		res.APsReached++
		if cfg.RecordTranscript {
			res.Transcript[ap].Received = true
			res.Transcript[ap].ReceiveTime = t
			res.Transcript[ap].Hops = hops[ap]
		}
		if cfg.Blackholes[ap] {
			// Compromised node: consume silently; no delivery, no forward.
			return
		}
		if inDst[ap] {
			switch {
			case beh != BehaviorHonest:
				// The packet reached the destination building, but only a
				// liar holds it: no delivery credit.
				res.CompromisedDeliveries++
			case isTainted(ap):
				// An honest destination AP accepted the corrupted copy —
				// and its dedup now suppresses the genuine one.
				res.TaintedDeliveries++
			default:
				probe(ProbeDeliver, ap, -1, t, 0)
				if !res.Delivered {
					res.Delivered = true
					res.DeliveryTime = t
					res.DeliveryHops = hops[ap]
				}
			}
		}
		if beh == BehaviorBlackhole {
			// Byzantine consume: silently eats the frame after (correctly)
			// being counted as a compromised destination above.
			return
		}
		if ttl[ap] <= 0 {
			return
		}
		if beh == BehaviorReplayer {
			// Schedule the stale-frame storm: retransmissions of the
			// stored copy (frozen TTL, no decrement) until the horizon.
			iv := adv.replayInterval()
			for rt := t + iv; rt <= adv.replayHorizon(); rt += iv {
				push(event{t: rt, kind: evTransmit, ap: ap, replay: true})
			}
		}
		if beh == BehaviorCorruptor {
			// Malicious forward: skip the conduit test entirely and
			// rebroadcast the (now corrupted) frame — corruption spreads
			// as far as TTL allows.
			push(event{t: t + cfg.TxDelay + rng.Float64()*cfg.JitterMax, kind: evTransmit, ap: ap})
			if cfg.RecordTranscript {
				res.Transcript[ap].Forwarded = true
			}
			return
		}
		// Hand the policy the TTL a live AP would read off the wire: the
		// sender decrements before transmitting, except the injection AP,
		// which broadcasts the original header unchanged.
		ctx.TTL = ttl[ap]
		if from >= 0 {
			ctx.TTL++
		}
		d := pol.OnReceive(ctx, ap, pkt, from)
		if beh == BehaviorGrayhole && (d.Rebroadcast || len(d.NextHops) > 0) &&
			rng.Float64() < adv.dropProb() {
			// The grayhole quietly eats this forward; the transcript shows
			// a reception with no transmission — the evidence mismatch the
			// health layer keys on.
			res.GrayholeDrops++
			return
		}
		if d.Rebroadcast {
			push(event{t: t + cfg.TxDelay + rng.Float64()*cfg.JitterMax, kind: evTransmit, ap: ap})
			if cfg.RecordTranscript {
				res.Transcript[ap].Forwarded = true
			}
		}
		for _, nh := range d.NextHops {
			push(event{t: t + cfg.TxDelay + rng.Float64()*cfg.JitterMax, kind: evUnicast, ap: ap, peer: int(nh)})
			if cfg.RecordTranscript {
				res.Transcript[ap].Forwarded = true
			}
		}
	}

	// Forged-traffic injection: spoofers and flooders start their own
	// message waves on a fixed cadence (phase-jittered per injector) until
	// the horizon. Scheduled before the source injection so forged state
	// indices are stable regardless of how the real wave unfolds.
	var forged []forgedMsg
	if adv != nil {
		var injectors []int
		for ap, b := range adv.Behaviors {
			if (b == BehaviorSpoofer || b == BehaviorFlooder) && ap >= 0 && ap < numAPs {
				injectors = append(injectors, ap)
			}
		}
		sort.Ints(injectors) // map order must not leak into the event stream
		for _, ap := range injectors {
			spoof := adv.Behaviors[ap] == BehaviorSpoofer
			iv := 1 / adv.injectRate()
			for ft := rng.Float64() * iv; ft <= adv.injectHorizon(); ft += iv {
				forged = append(forged, forgedMsg{
					spoof:  spoof,
					radius: adv.spoofRadius(),
					center: m.APs[ap].Pos,
					ttl:    map[int]int{ap: adv.forgedTTL()},
				})
				push(event{t: ft, kind: evTransmit, ap: ap, msg: len(forged)})
			}
		}
	}

	// deliverForged processes a forged-message reception at node ap.
	deliverForged := func(ap, from, msg int, t float64) {
		fm := &forged[msg-1]
		if gate != nil && !gate.allow(ap, from, t) {
			res.RejectedRateLimited++
			return
		}
		if fm.spoof && cfg.Defense.MaxGeocastRadius > 0 && fm.radius > cfg.Defense.MaxGeocastRadius {
			res.RejectedGeocast++
			return
		}
		senderTTL, ok := fm.ttl[from]
		if !ok {
			return // sender lost its state race; cannot happen in practice
		}
		if cfg.Defense.MaxTTL > 0 && senderTTL > int(cfg.Defense.MaxTTL) {
			res.RejectedTTL++
			return
		}
		if _, dup := fm.ttl[ap]; dup {
			return
		}
		remaining := senderTTL - 1
		fm.ttl[ap] = remaining
		res.ForgedAccepts++
		if cfg.Blackholes[ap] || behavior(ap) == BehaviorBlackhole {
			return
		}
		if remaining <= 0 {
			return
		}
		// Honest relaying of the forgery: flood frames flood; spoofed
		// geocasts rebroadcast only inside the claimed disc — which is why
		// an absurd claimed radius recruits the whole city.
		if fm.spoof && m.APs[ap].Pos.Dist(fm.center) > fm.radius {
			return
		}
		push(event{t: t + cfg.TxDelay + rng.Float64()*cfg.JitterMax, kind: evTransmit, ap: ap, msg: msg})
	}

	// Inject at the source.
	if !down(srcAP, 0) {
		deliver(srcAP, -1, 0)
	}

	events := 0
	for h.Len() > 0 && events < cfg.MaxEvents {
		e := heap.Pop(h).(event)
		events++
		switch e.kind {
		case evTransmit:
			if down(e.ap, e.t) {
				continue
			}
			if e.msg > 0 {
				// Forged-message wave: its own flood, kept out of the real
				// packet's Broadcasts/probe stream and invisible to mobile
				// carriers (they store only the real packet).
				res.ForgedBroadcasts++
				arrival := e.t + cfg.TxDelay
				pos := nodePos(e.ap, e.t)
				m.Grid().WithinRadius(pos, radio.MaxRange(), func(n int, p geo.Point) bool {
					if n == e.ap {
						return true
					}
					if down(n, arrival) {
						return true
					}
					if !receives(radio, pos.Dist(p), rng) {
						return true
					}
					if cfg.LossProb > 0 && rng.Float64() < cfg.LossProb {
						return true
					}
					push(event{t: arrival, kind: evReceive, ap: n, peer: e.ap, msg: e.msg})
					return true
				})
				continue
			}
			if e.replay {
				res.ReplayedFrames++
			}
			probe(ProbeTransmit, e.ap, -1, e.t, ttl[e.ap])
			res.Broadcasts++
			arrival := e.t + cfg.TxDelay
			pos := nodePos(e.ap, e.t)
			m.Grid().WithinRadius(pos, radio.MaxRange(), func(n int, p geo.Point) bool {
				if n == e.ap {
					return true
				}
				if down(n, arrival) {
					res.LostToDeadAP++
					return true
				}
				if !receives(radio, pos.Dist(p), rng) {
					res.LostToRange++
					return true
				}
				if cfg.LossProb > 0 && rng.Float64() < cfg.LossProb {
					res.LostToLoss++
					return true
				}
				push(event{t: arrival, kind: evReceive, ap: n, peer: e.ap})
				return true
			})
			// Moving carriers are not in the static AP grid: re-resolve
			// each against the transmitter's position. Out-of-range
			// carriers are skipped silently (not lost frames — nothing was
			// ever addressed to them); in-range ones face the same radio
			// and loss coins as APs.
			for j := range cfg.Mobiles {
				node := numAPs + j
				if node == e.ap || seen[node] {
					continue
				}
				d := pos.Dist(nodePos(node, arrival))
				if d > radio.MaxRange() {
					continue
				}
				if !receives(radio, d, rng) {
					res.LostToRange++
					continue
				}
				if cfg.LossProb > 0 && rng.Float64() < cfg.LossProb {
					res.LostToLoss++
					continue
				}
				push(event{t: arrival, kind: evReceive, ap: node, peer: e.ap})
			}
			// Chain the carrier's next periodic rebroadcast.
			if e.ap >= numAPs {
				mb := cfg.Mobiles[e.ap-numAPs]
				if next := e.t + mb.interval(); next <= mb.horizon() {
					push(event{t: next, kind: evTransmit, ap: e.ap})
				}
			}
		case evUnicast:
			if down(e.ap, e.t) {
				continue
			}
			probe(ProbeTransmit, e.ap, -1, e.t, ttl[e.ap])
			res.Broadcasts++
			arrival := e.t + cfg.TxDelay
			if down(e.peer, arrival) {
				res.LostToDeadAP++
				continue
			}
			if !receives(radio, m.APs[e.ap].Pos.Dist(m.APs[e.peer].Pos), rng) {
				res.LostToRange++
				continue
			}
			if cfg.LossProb > 0 && rng.Float64() < cfg.LossProb {
				res.LostToLoss++
				continue
			}
			push(event{t: arrival, kind: evReceive, ap: e.peer, peer: e.ap})
		case evReceive:
			if e.msg > 0 {
				deliverForged(e.ap, e.peer, e.msg, e.t)
				continue
			}
			deliver(e.ap, e.peer, e.t)
		}
	}
	if hasDC {
		res.Decisions = dc.DecisionCounts().Sub(dcBefore)
	}
	return res
}
