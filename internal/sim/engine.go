// The reusable metro-scale simulation core.
//
// An Engine is constructed once per (mesh, city, policy) and amortizes
// everything a single sim.Run used to rebuild per call: struct-of-arrays
// AP state (positions and building ids copied out of the mesh's
// array-of-structs), the default radio model, and a pool of per-run
// scratch — the seen/hops/ttl/lastArrival slices, the event-heap backing
// array, the RNG, and the failure/blackhole bitsets — reused across runs
// instead of reallocated.
//
// Determinism is unaffected by pooling: every run fully re-seeds the
// pooled RNG from Config.Seed, every scratch slice is cleared (or, for
// lastArrival, refilled) before use, and the event heap orders events by
// the strict total order (t, seq), so the pop sequence — and therefore
// every RNG draw — is independent of which pooled buffers a run happens
// to receive. A warm Engine.Run is byte-identical to a cold one.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"citymesh/internal/fwd"
	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

// Engine is a reusable simulator for one (mesh, city, policy) triple.
// Construct it once with NewEngine and call Run per packet; runs may be
// issued concurrently (each takes its own scratch from an internal pool),
// provided the policy itself tolerates concurrent OnReceive calls — the
// kernel-backed CityMesh policy does.
type Engine struct {
	mesh *mesh.Mesh
	city *osm.City
	pol  Policy

	numAPs int
	// Struct-of-arrays AP state: the hot loops touch positions and
	// building ids and nothing else, so they get dense arrays instead of
	// strided loads through []mesh.AP.
	pos      []geo.Point
	building []int32

	defaultRadio RadioModel

	pool sync.Pool // of *scratch
}

// NewEngine precomputes the per-mesh state for repeated runs. pol is the
// default forwarding policy used by Run; RunPolicy overrides it per call.
func NewEngine(m *mesh.Mesh, city *osm.City, pol Policy) *Engine {
	n := m.NumAPs()
	e := &Engine{
		mesh:         m,
		city:         city,
		pol:          pol,
		numAPs:       n,
		pos:          make([]geo.Point, n),
		building:     make([]int32, n),
		defaultRadio: UnitDisk{Range: m.Cfg.Range},
	}
	for i := range m.APs {
		e.pos[i] = m.APs[i].Pos
		e.building[i] = int32(m.APs[i].Building)
	}
	e.pool.New = func() any { return newScratch(e) }
	return e
}

// Mesh returns the engine's mesh.
func (e *Engine) Mesh() *mesh.Mesh { return e.mesh }

// City returns the engine's city map.
func (e *Engine) City() *osm.City { return e.city }

// Run simulates the propagation of pkt, injected at the first AP of the
// source building, until the event queue drains or Config.MaxEvents is
// hit, using the engine's default policy. The destination building is
// taken from the packet header. It returns a validation sentinel (see
// validate.go) for a physically meaningless Config, or ErrNoSourceAP when
// the source building is out of range or hosts no AP; either way nothing
// is simulated and the Result carries SourceAP == -1.
func (e *Engine) Run(pkt *packet.Packet, cfg Config) (Result, error) {
	return e.RunPolicy(e.pol, pkt, cfg)
}

// RunPolicy is Run with a per-call policy override — for harnesses that
// sweep policies (baseline comparisons, the flood rung) over one mesh
// without rebuilding engines.
func (e *Engine) RunPolicy(pol Policy, pkt *packet.Packet, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{SourceAP: -1}, err
	}
	src := pkt.Header.Src()
	if src < 0 || src >= e.city.NumBuildings() || len(e.mesh.APsInBuilding(src)) == 0 {
		return Result{SourceAP: -1}, fmt.Errorf("%w (source building %d)", ErrNoSourceAP, src)
	}
	s := e.pool.Get().(*scratch)
	s.reset(pol, pkt, cfg)
	res := s.run()
	s.release()
	e.pool.Put(s)
	return res, nil
}

// scratch is one run's worth of mutable state, pooled and reused across
// runs. Every field is either re-derived from the Config in reset or
// cleared there; nothing observable survives from the previous run.
type scratch struct {
	eng *Engine

	// Per-run bindings.
	cfg    Config
	pol    Policy
	pkt    *packet.Packet
	radio  RadioModel
	dst    int
	numAPs int
	total  int // APs + mobile carriers
	advOn  bool

	src rand.Source
	rng *rand.Rand
	ctx Context

	// failed/black are the merged failure and blackhole sets consulted on
	// the hot path. They alias the Config's NodeSets directly when no
	// legacy map is present, or the reusable merge buffers below when one
	// is (the map is folded in once per run, at reset).
	failed, black       NodeSet
	failedBuf, blackBuf NodeSet

	seen        []bool
	hops        []int
	ttl         []int
	lastArrival []float64 // refilled with -Inf only when CollisionWindow > 0
	tainted     []bool    // sized only when an Adversary is declared

	// events is the binary-heap backing array, ordered by (t, seq).
	events []event
	seq    int64

	gate   *rateGate
	forged []forgedMsg

	res Result

	// Per-transmit state read by the pre-bound grid callbacks, so the
	// WithinRadius fan-out allocates no closure per transmission.
	txArrival float64
	txPos     geo.Point
	txAP      int
	txMsg     int

	visitReal   func(n int, p geo.Point) bool
	visitForged func(n int, p geo.Point) bool
}

func newScratch(e *Engine) *scratch {
	s := &scratch{eng: e}
	s.src = rand.NewSource(1)
	s.rng = rand.New(s.src)
	s.visitReal = func(n int, p geo.Point) bool {
		if n == s.txAP {
			return true
		}
		if s.down(n, s.txArrival) {
			s.res.LostToDeadAP++
			return true
		}
		if !receives(s.radio, s.txPos.Dist(p), s.rng) {
			s.res.LostToRange++
			return true
		}
		if s.cfg.LossProb > 0 && s.rng.Float64() < s.cfg.LossProb {
			s.res.LostToLoss++
			return true
		}
		s.push(event{t: s.txArrival, kind: evReceive, ap: n, peer: s.txAP})
		return true
	}
	// Forged-message waves take the same radio and loss coins but are kept
	// out of the real packet's loss diagnostics.
	s.visitForged = func(n int, p geo.Point) bool {
		if n == s.txAP {
			return true
		}
		if s.down(n, s.txArrival) {
			return true
		}
		if !receives(s.radio, s.txPos.Dist(p), s.rng) {
			return true
		}
		if s.cfg.LossProb > 0 && s.rng.Float64() < s.cfg.LossProb {
			return true
		}
		s.push(event{t: s.txArrival, kind: evReceive, ap: n, peer: s.txAP, msg: s.txMsg})
		return true
	}
	return s
}

// reset rebinds the scratch to one run's inputs and clears all carried
// state. The caller has already validated cfg and the source building.
func (s *scratch) reset(pol Policy, pkt *packet.Packet, cfg Config) {
	e := s.eng
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 5_000_000
	}
	s.cfg = cfg
	s.pol = pol
	s.pkt = pkt
	s.radio = cfg.Radio
	if s.radio == nil {
		s.radio = e.defaultRadio
	}
	s.dst = pkt.Header.Dst()
	s.numAPs = e.numAPs
	s.total = e.numAPs + len(cfg.Mobiles)
	s.advOn = cfg.Adversary != nil

	s.src.Seed(cfg.Seed)
	s.ctx = Context{City: e.city, Mesh: e.mesh, RNG: s.rng, Dst: s.dst}

	s.seen = resetBools(s.seen, s.total)
	s.hops = resetInts(s.hops, s.total)
	s.ttl = resetInts(s.ttl, s.total)
	if cfg.CollisionWindow > 0 {
		if cap(s.lastArrival) < s.total {
			s.lastArrival = make([]float64, s.total)
		}
		s.lastArrival = s.lastArrival[:s.total]
		negInf := math.Inf(-1)
		for i := range s.lastArrival {
			s.lastArrival[i] = negInf
		}
	}
	if s.advOn {
		s.tainted = resetBools(s.tainted, s.total)
	}
	s.events = s.events[:0]
	s.seq = 0
	s.forged = s.forged[:0]
	if cfg.Defense.NeighborRate > 0 {
		s.gate = newRateGate(cfg.Defense)
	} else {
		s.gate = nil
	}

	s.failed = mergeSet(&s.failedBuf, cfg.FailedSet, cfg.FailedAPs)
	s.black = mergeSet(&s.blackBuf, cfg.BlackholeSet, cfg.Blackholes)

	s.res = Result{SourceAP: -1}
}

// release drops references the pooled scratch must not pin between runs
// (the caller's Config maps, packet, policy, and the returned Transcript).
func (s *scratch) release() {
	s.cfg = Config{}
	s.pol = nil
	s.pkt = nil
	s.radio = nil
	s.gate = nil
	s.failed, s.black = nil, nil
	for i := range s.forged {
		s.forged[i] = forgedMsg{}
	}
	s.forged = s.forged[:0]
	s.res = Result{}
	s.ctx = Context{}
}

// mergeSet resolves the effective node set from the bitset and legacy map
// forms of a Config field. With no map entries the Config's set is used
// directly (zero copies); otherwise the map is folded into the reusable
// buffer once, so repeated runs with legacy maps still allocate nothing.
func mergeSet(buf *NodeSet, set NodeSet, legacy map[int]bool) NodeSet {
	if len(legacy) == 0 {
		return set
	}
	b := *buf
	b.clearSet()
	b = b.union(set)
	for node, on := range legacy {
		if on {
			b = b.Add(node)
		}
	}
	*buf = b
	return b
}

// down folds the static failure set and the time-varying schedule. Mobile
// carriers never fail: a vehicle drives out of the flood zone rather than
// drowning with it.
func (s *scratch) down(node int, t float64) bool {
	if node >= s.numAPs {
		return false
	}
	if s.failed.Contains(node) {
		return true
	}
	return s.cfg.Schedule != nil && s.cfg.Schedule.Down(node, t)
}

func (s *scratch) behavior(node int) APBehavior {
	if node >= s.numAPs {
		return BehaviorHonest // carriers are never Byzantine
	}
	return s.cfg.Adversary.BehaviorOf(node)
}

func (s *scratch) isTainted(node int) bool { return s.advOn && s.tainted[node] }

// nodePos resolves a node's position at time t: APs are static, a carrier
// is wherever its path has taken it.
func (s *scratch) nodePos(node int, t float64) geo.Point {
	if node < s.numAPs {
		return s.eng.pos[node]
	}
	return s.cfg.Mobiles[node-s.numAPs].Path.PosAt(t)
}

func (s *scratch) probe(kind ProbeKind, node, from int, t float64, ttl int) {
	if s.cfg.Probe != nil {
		s.cfg.Probe(ProbeEvent{Kind: kind, Node: node, From: from, T: t, TTL: ttl})
	}
}

// push enqueues with the next FIFO sequence number. The heap is a plain
// binary min-heap over (t, seq); because that comparator is a strict
// total order, the pop sequence is fully determined by the push sequence
// — heap internals cannot perturb determinism.
func (s *scratch) push(ev event) {
	ev.seq = s.seq
	s.seq++
	h := append(s.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.events = h
}

func (s *scratch) pop() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && eventLess(h[l], h[m]) {
			m = l
		}
		if r < n && eventLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.events = h
	return top
}

func eventLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// run executes the event loop. It mirrors the historical sim.Run exactly
// — same defense-stack ordering, same forged-injection phase draws, same
// jitter/radio/loss draw sequence — so a warm pooled run is byte-identical
// to the free function it replaced.
func (s *scratch) run() Result {
	e := s.eng
	cfg := &s.cfg

	// Kernel-backed policies expose decision counters; snapshot before and
	// after so Result.Decisions covers exactly this run.
	dc, hasDC := s.pol.(DecisionCounter)
	var dcBefore fwd.Counts
	if hasDC {
		dcBefore = dc.DecisionCounts()
	}

	srcAP := int(e.mesh.APsInBuilding(s.pkt.Header.Src())[0])
	s.res.SourceAP = srcAP
	if cfg.RecordTranscript {
		s.res.Transcript = make([]APRecord, s.numAPs)
	}

	// Forged-traffic injection: spoofers and flooders start their own
	// message waves on a fixed cadence (phase-jittered per injector) until
	// the horizon. Scheduled before the source injection so forged state
	// indices are stable regardless of how the real wave unfolds.
	if adv := cfg.Adversary; adv != nil {
		var injectors []int
		for ap, b := range adv.Behaviors {
			if (b == BehaviorSpoofer || b == BehaviorFlooder) && ap >= 0 && ap < s.numAPs {
				injectors = append(injectors, ap)
			}
		}
		sort.Ints(injectors) // map order must not leak into the event stream
		for _, ap := range injectors {
			spoof := adv.Behaviors[ap] == BehaviorSpoofer
			iv := 1 / adv.injectRate()
			for ft := s.rng.Float64() * iv; ft <= adv.injectHorizon(); ft += iv {
				s.forged = append(s.forged, forgedMsg{
					spoof:  spoof,
					radius: adv.spoofRadius(),
					center: e.pos[ap],
					ttl:    map[int]int{ap: adv.forgedTTL()},
				})
				s.push(event{t: ft, kind: evTransmit, ap: ap, msg: len(s.forged)})
			}
		}
	}

	// Inject at the source.
	if !s.down(srcAP, 0) {
		s.deliver(srcAP, -1, 0)
	}

	events := 0
	for len(s.events) > 0 && events < cfg.MaxEvents {
		ev := s.pop()
		events++
		switch ev.kind {
		case evTransmit:
			s.onTransmit(ev)
		case evUnicast:
			s.onUnicast(ev)
		case evReceive:
			if ev.msg > 0 {
				s.deliverForged(ev.ap, ev.peer, ev.msg, ev.t)
			} else {
				s.deliver(ev.ap, ev.peer, ev.t)
			}
		}
	}
	if hasDC {
		s.res.Decisions = dc.DecisionCounts().Sub(dcBefore)
	}
	return s.res
}

// deliver marks a reception of the real packet at node ap.
func (s *scratch) deliver(ap, from int, t float64) {
	cfg := &s.cfg
	res := &s.res
	// Receiver-side defense stack, applied to frames off the air (not the
	// source's own injection): rate gate, TTL sanity, integrity.
	if from >= 0 {
		if s.gate != nil && !s.gate.allow(ap, from, t) {
			res.RejectedRateLimited++
			return
		}
		if cfg.Defense.MaxTTL > 0 && s.ttl[from] > int(cfg.Defense.MaxTTL) {
			res.RejectedTTL++
			return
		}
		if cfg.Defense.TamperCheck && s.isTainted(from) {
			res.RejectedTampered++
			return
		}
	}
	// Interference approximation: a frame arriving hard on the heels of
	// another at the same radio is lost in the collision.
	if cfg.CollisionWindow > 0 && from >= 0 {
		collided := t-s.lastArrival[ap] < cfg.CollisionWindow
		s.lastArrival[ap] = t
		if collided {
			res.LostToCollision++
			return
		}
	}
	res.Receptions++
	if s.seen[ap] {
		return
	}
	s.seen[ap] = true
	if from >= 0 {
		s.hops[ap] = s.hops[from] + 1
		s.ttl[ap] = s.ttl[from] - 1
		if s.isTainted(from) {
			s.tainted[ap] = true
		}
	} else {
		s.hops[ap] = 0
		s.ttl[ap] = int(s.pkt.Header.TTL)
	}
	beh := s.behavior(ap)
	switch beh {
	case BehaviorTTLReset:
		// The resetter rewrites its stored TTL upward; every frame it
		// forwards carries the inflated value, which is exactly what the
		// probe stream (and Defense.MaxTTL downstream) will see.
		s.ttl[ap] = cfg.Adversary.resetTTL()
	case BehaviorCorruptor:
		s.tainted[ap] = true
	}
	if s.isTainted(ap) {
		res.TaintedAccepts++
	}
	s.probe(ProbeAccept, ap, from, t, s.ttl[ap])
	if ap >= s.numAPs {
		// Mobile carrier pickup: store the packet and start the periodic
		// carry-and-rebroadcast chain. Carriers bypass the Policy — they
		// are not APs and know nothing about the map.
		res.MobilesReached++
		if s.ttl[ap] > 0 {
			mb := cfg.Mobiles[ap-s.numAPs]
			if t <= mb.horizon() {
				s.push(event{t: t + cfg.TxDelay + s.rng.Float64()*cfg.JitterMax, kind: evTransmit, ap: ap})
			}
		}
		return
	}
	res.APsReached++
	if cfg.RecordTranscript {
		res.Transcript[ap].Received = true
		res.Transcript[ap].ReceiveTime = t
		res.Transcript[ap].Hops = s.hops[ap]
	}
	if s.black.Contains(ap) {
		// Compromised node: consume silently; no delivery, no forward.
		return
	}
	if int(s.eng.building[ap]) == s.dst {
		switch {
		case beh != BehaviorHonest:
			// The packet reached the destination building, but only a liar
			// holds it: no delivery credit.
			res.CompromisedDeliveries++
		case s.isTainted(ap):
			// An honest destination AP accepted the corrupted copy — and
			// its dedup now suppresses the genuine one.
			res.TaintedDeliveries++
		default:
			s.probe(ProbeDeliver, ap, -1, t, 0)
			if !res.Delivered {
				res.Delivered = true
				res.DeliveryTime = t
				res.DeliveryHops = s.hops[ap]
			}
		}
	}
	if beh == BehaviorBlackhole {
		// Byzantine consume: silently eats the frame after (correctly)
		// being counted as a compromised destination above.
		return
	}
	if s.ttl[ap] <= 0 {
		return
	}
	if beh == BehaviorReplayer {
		// Schedule the stale-frame storm: retransmissions of the stored
		// copy (frozen TTL, no decrement) until the horizon.
		iv := cfg.Adversary.replayInterval()
		for rt := t + iv; rt <= cfg.Adversary.replayHorizon(); rt += iv {
			s.push(event{t: rt, kind: evTransmit, ap: ap, replay: true})
		}
	}
	if beh == BehaviorCorruptor {
		// Malicious forward: skip the conduit test entirely and rebroadcast
		// the (now corrupted) frame — corruption spreads as far as TTL
		// allows.
		s.push(event{t: t + cfg.TxDelay + s.rng.Float64()*cfg.JitterMax, kind: evTransmit, ap: ap})
		if cfg.RecordTranscript {
			res.Transcript[ap].Forwarded = true
		}
		return
	}
	// Hand the policy the TTL a live AP would read off the wire: the
	// sender decrements before transmitting, except the injection AP,
	// which broadcasts the original header unchanged.
	s.ctx.TTL = s.ttl[ap]
	if from >= 0 {
		s.ctx.TTL++
	}
	d := s.pol.OnReceive(&s.ctx, ap, s.pkt, from)
	if beh == BehaviorGrayhole && (d.Rebroadcast || len(d.NextHops) > 0) &&
		s.rng.Float64() < cfg.Adversary.dropProb() {
		// The grayhole quietly eats this forward; the transcript shows a
		// reception with no transmission — the evidence mismatch the
		// health layer keys on.
		res.GrayholeDrops++
		return
	}
	if d.Rebroadcast {
		s.push(event{t: t + cfg.TxDelay + s.rng.Float64()*cfg.JitterMax, kind: evTransmit, ap: ap})
		if cfg.RecordTranscript {
			res.Transcript[ap].Forwarded = true
		}
	}
	for _, nh := range d.NextHops {
		s.push(event{t: t + cfg.TxDelay + s.rng.Float64()*cfg.JitterMax, kind: evUnicast, ap: ap, peer: int(nh)})
		if cfg.RecordTranscript {
			res.Transcript[ap].Forwarded = true
		}
	}
}

// deliverForged processes a forged-message reception at node ap.
func (s *scratch) deliverForged(ap, from, msg int, t float64) {
	cfg := &s.cfg
	res := &s.res
	fm := &s.forged[msg-1]
	if s.gate != nil && !s.gate.allow(ap, from, t) {
		res.RejectedRateLimited++
		return
	}
	if fm.spoof && cfg.Defense.MaxGeocastRadius > 0 && fm.radius > cfg.Defense.MaxGeocastRadius {
		res.RejectedGeocast++
		return
	}
	senderTTL, ok := fm.ttl[from]
	if !ok {
		return // sender lost its state race; cannot happen in practice
	}
	if cfg.Defense.MaxTTL > 0 && senderTTL > int(cfg.Defense.MaxTTL) {
		res.RejectedTTL++
		return
	}
	if _, dup := fm.ttl[ap]; dup {
		return
	}
	remaining := senderTTL - 1
	fm.ttl[ap] = remaining
	res.ForgedAccepts++
	if s.black.Contains(ap) || s.behavior(ap) == BehaviorBlackhole {
		return
	}
	if remaining <= 0 {
		return
	}
	// Honest relaying of the forgery: flood frames flood; spoofed geocasts
	// rebroadcast only inside the claimed disc — which is why an absurd
	// claimed radius recruits the whole city.
	if fm.spoof && s.eng.pos[ap].Dist(fm.center) > fm.radius {
		return
	}
	s.push(event{t: t + cfg.TxDelay + s.rng.Float64()*cfg.JitterMax, kind: evTransmit, ap: ap, msg: msg})
}

func (s *scratch) onTransmit(ev event) {
	cfg := &s.cfg
	res := &s.res
	e := s.eng
	if s.down(ev.ap, ev.t) {
		return
	}
	if ev.msg > 0 {
		// Forged-message wave: its own flood, kept out of the real
		// packet's Broadcasts/probe stream and invisible to mobile
		// carriers (they store only the real packet).
		res.ForgedBroadcasts++
		s.txArrival = ev.t + cfg.TxDelay
		s.txPos = s.nodePos(ev.ap, ev.t)
		s.txAP = ev.ap
		s.txMsg = ev.msg
		e.mesh.Grid().WithinRadius(s.txPos, s.radio.MaxRange(), s.visitForged)
		return
	}
	if ev.replay {
		res.ReplayedFrames++
	}
	s.probe(ProbeTransmit, ev.ap, -1, ev.t, s.ttl[ev.ap])
	res.Broadcasts++
	s.txArrival = ev.t + cfg.TxDelay
	s.txPos = s.nodePos(ev.ap, ev.t)
	s.txAP = ev.ap
	e.mesh.Grid().WithinRadius(s.txPos, s.radio.MaxRange(), s.visitReal)
	// Moving carriers are not in the static AP grid: re-resolve each
	// against the transmitter's position. Out-of-range carriers are
	// skipped silently (not lost frames — nothing was ever addressed to
	// them); in-range ones face the same radio and loss coins as APs.
	arrival := s.txArrival
	pos := s.txPos
	for j := range cfg.Mobiles {
		node := s.numAPs + j
		if node == ev.ap || s.seen[node] {
			continue
		}
		d := pos.Dist(s.nodePos(node, arrival))
		if d > s.radio.MaxRange() {
			continue
		}
		if !receives(s.radio, d, s.rng) {
			res.LostToRange++
			continue
		}
		if cfg.LossProb > 0 && s.rng.Float64() < cfg.LossProb {
			res.LostToLoss++
			continue
		}
		s.push(event{t: arrival, kind: evReceive, ap: node, peer: ev.ap})
	}
	// Chain the carrier's next periodic rebroadcast.
	if ev.ap >= s.numAPs {
		mb := cfg.Mobiles[ev.ap-s.numAPs]
		if next := ev.t + mb.interval(); next <= mb.horizon() {
			s.push(event{t: next, kind: evTransmit, ap: ev.ap})
		}
	}
}

func (s *scratch) onUnicast(ev event) {
	cfg := &s.cfg
	res := &s.res
	if s.down(ev.ap, ev.t) {
		return
	}
	s.probe(ProbeTransmit, ev.ap, -1, ev.t, s.ttl[ev.ap])
	res.Broadcasts++
	arrival := ev.t + cfg.TxDelay
	if s.down(ev.peer, arrival) {
		res.LostToDeadAP++
		return
	}
	if !receives(s.radio, s.eng.pos[ev.ap].Dist(s.eng.pos[ev.peer]), s.rng) {
		res.LostToRange++
		return
	}
	if cfg.LossProb > 0 && s.rng.Float64() < cfg.LossProb {
		res.LostToLoss++
		return
	}
	s.push(event{t: arrival, kind: evReceive, ap: ev.peer, peer: ev.ap})
}

func resetBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resetInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}
