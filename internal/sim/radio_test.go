package sim

import (
	"math/rand"
	"testing"
)

func TestUnitDisk(t *testing.T) {
	u := UnitDisk{Range: 50}
	if u.ReceiveProb(49.9) != 1 || u.ReceiveProb(50) != 1 {
		t.Error("within range should be certain")
	}
	if u.ReceiveProb(50.1) != 0 {
		t.Error("beyond range should be impossible")
	}
	if u.MaxRange() != 50 || u.Name() != "unitdisk" {
		t.Error("metadata wrong")
	}
}

func TestPathLossModel(t *testing.T) {
	m := DefaultPathLoss()
	if m.ReceiveProb(10) != 1 || m.ReceiveProb(m.ReliableRange) != 1 {
		t.Error("reliable zone should be certain")
	}
	if m.ReceiveProb(m.CutoffRange) != 0 || m.ReceiveProb(1000) != 0 {
		t.Error("beyond cutoff should be impossible")
	}
	// Monotone decay between the two.
	prev := 1.0
	for d := m.ReliableRange; d <= m.CutoffRange; d += 2 {
		p := m.ReceiveProb(d)
		if p > prev+1e-12 {
			t.Fatalf("ReceiveProb not monotone at %v: %v > %v", d, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		prev = p
	}
	if m.Name() != "pathloss" || m.MaxRange() != m.CutoffRange {
		t.Error("metadata wrong")
	}
	// Zero exponent falls back to a sane default rather than a constant 1.
	bad := PathLossModel{ReliableRange: 10, CutoffRange: 20}
	if p := bad.ReceiveProb(15); p <= 0 || p >= 1 {
		t.Errorf("fallback exponent prob = %v", p)
	}
}

func TestReceivesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := UnitDisk{Range: 50}
	for i := 0; i < 100; i++ {
		if !receives(u, 30, rng) {
			t.Fatal("certain reception failed")
		}
		if receives(u, 60, rng) {
			t.Fatal("impossible reception succeeded")
		}
	}
	// Intermediate probabilities hit both outcomes.
	m := PathLossModel{ReliableRange: 10, CutoffRange: 100, Exponent: 1}
	yes, no := 0, 0
	for i := 0; i < 1000; i++ {
		if receives(m, 55, rng) {
			yes++
		} else {
			no++
		}
	}
	if yes == 0 || no == 0 {
		t.Errorf("sampling degenerate: yes=%d no=%d", yes, no)
	}
}

func TestRunWithPathLoss(t *testing.T) {
	// A chain spaced at 40 m: always connected under unit disk, flaky
	// under path loss (reliable only to 35 m).
	city, m := chainCity(8, 40)
	cfg := DefaultConfig()
	cfg.Radio = DefaultPathLoss()
	cfg.Seed = 5
	res := Run(m, city, floodAll{}, mkPacket(0, 7, 255), cfg)
	// 40 m hops have prob (1 - 5/30)^3 ~ 0.58 per attempt with only one
	// transmitter per hop, so full delivery is possible but not certain;
	// what must hold is that the engine runs and respects the cutoff.
	if res.APsReached < 1 {
		t.Fatal("source not reached")
	}
	// With a cutoff of 65 m the packet can skip at most one AP per hop.
	if res.Delivered && res.DeliveryHops < 4 {
		t.Errorf("delivery in %d hops impossible with 65 m cutoff over 280 m", res.DeliveryHops)
	}
}

func TestRunPathLossExtendsReach(t *testing.T) {
	// At 55 m spacing, unit disk (50 m) cannot cross, but a gentler path
	// loss model with an 80 m cutoff usually can (p ~ 0.55 per hop).
	city, m := chainCity(4, 55)
	res := Run(m, city, floodAll{}, mkPacket(0, 3, 255), DefaultConfig())
	if res.APsReached != 1 {
		t.Fatalf("unit disk crossed a 55 m gap: %+v", res)
	}
	crossed := false
	for seed := int64(0); seed < 30; seed++ {
		cfg := DefaultConfig()
		cfg.Radio = PathLossModel{ReliableRange: 35, CutoffRange: 80, Exponent: 1}
		cfg.Seed = seed
		if r := Run(m, city, floodAll{}, mkPacket(0, 3, 255), cfg); r.APsReached > 1 {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Error("path loss never crossed a 55 m gap in 30 seeds (p~0.55 each)")
	}
}

func TestBlackholeConsumes(t *testing.T) {
	city, m := chainCity(5, 40)
	cfg := DefaultConfig()
	cfg.Blackholes = map[int]bool{2: true}
	res := Run(m, city, floodAll{}, mkPacket(0, 4, 255), cfg)
	if res.Delivered {
		t.Error("blackhole mid-chain should prevent delivery")
	}
	// The blackhole *receives* (it is reached) but never forwards.
	if res.APsReached != 3 { // APs 0, 1, 2
		t.Errorf("reached = %d, want 3", res.APsReached)
	}
}

func TestBlackholeAtDestinationNoDelivery(t *testing.T) {
	city, m := chainCity(3, 40)
	cfg := DefaultConfig()
	cfg.Blackholes = map[int]bool{2: true}
	res := Run(m, city, floodAll{}, mkPacket(0, 2, 255), cfg)
	if res.Delivered {
		t.Error("delivery to a compromised AP must not count")
	}
}

func TestCollisionWindowLosesBackToBackFrames(t *testing.T) {
	// A star: two transmitters both reach the center. With a huge
	// collision window the second arrival is destroyed.
	city, m := chainCity(3, 40) // 0 - 1 - 2; 1 hears both 0 and 2
	cfg := DefaultConfig()
	cfg.JitterMax = 0 // both rebroadcasts land close together
	cfg.CollisionWindow = 10
	// Inject at 0; AP1 receives from 0, rebroadcasts; AP2 receives,
	// rebroadcasts; AP1's second copy collides (dup anyway). To observe a
	// real loss, fail AP1's forwarding via TTL... simpler: verify the
	// engine still terminates and counts receptions sanely.
	res := Run(m, city, floodAll{}, mkPacket(0, 2, 255), cfg)
	if !res.Delivered {
		// Collisions may legitimately destroy the chain with window 10s;
		// the invariant is termination without panic.
		t.Log("collision window prevented delivery (acceptable)")
	}
	noColl := Run(m, city, floodAll{}, mkPacket(0, 2, 255), DefaultConfig())
	if res.Receptions > noColl.Receptions {
		t.Errorf("collisions increased receptions: %d > %d", res.Receptions, noColl.Receptions)
	}
}

func TestCollisionWindowZeroDisables(t *testing.T) {
	city, m := chainCity(6, 40)
	a := Run(m, city, floodAll{}, mkPacket(0, 5, 255), DefaultConfig())
	cfg := DefaultConfig()
	cfg.CollisionWindow = 0
	b := Run(m, city, floodAll{}, mkPacket(0, 5, 255), cfg)
	if a.Receptions != b.Receptions || a.Delivered != b.Delivered {
		t.Error("zero collision window changed behavior")
	}
}
