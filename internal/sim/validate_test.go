package sim

import (
	"errors"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want error
	}{
		{"default ok", func(c *Config) {}, nil},
		{"zero value ok", func(c *Config) { *c = Config{} }, nil},
		{"negative tx delay", func(c *Config) { c.TxDelay = -0.001 }, ErrNegativeTxDelay},
		{"negative jitter", func(c *Config) { c.JitterMax = -1 }, ErrNegativeJitter},
		{"loss below zero", func(c *Config) { c.LossProb = -0.1 }, ErrBadLossProb},
		{"loss above one", func(c *Config) { c.LossProb = 1.5 }, ErrBadLossProb},
		{"loss at bounds ok", func(c *Config) { c.LossProb = 1 }, nil},
		{"negative max events", func(c *Config) { c.MaxEvents = -1 }, ErrNegativeMaxEvents},
		{"zero max events ok", func(c *Config) { c.MaxEvents = 0 }, nil},
		{"negative collision window", func(c *Config) { c.CollisionWindow = -0.5 }, ErrNegativeCollisionWindow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(_, %v)", err, tc.want)
			}
		})
	}
}
