// Package postbox implements CityMesh's application substrate (§3):
// postboxes that store-and-forward messages at the destination building's
// APs, addressed by *self-certifying names* — each identifier is the hash
// of the entity's public key exchanged out-of-band (the paper cites SFS
// [42]) — so message and origin authenticity and confidentiality need no
// real-time access to a certificate authority.
//
// A sealed message is encrypted to the recipient with an ephemeral X25519
// agreement + AES-256-GCM and signed by the sender with Ed25519; the
// signature is inside the ciphertext, hiding the sender from observers.
package postbox

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// AddressLen is the truncated self-certifying address length in bytes. It
// matches packet.PostboxAddrLen so an address embeds directly in a header.
const AddressLen = 8

// Address is a self-certifying name: the truncated SHA-256 of the owner's
// public keys. Anyone holding the full public identity can verify that it
// hashes to the address; no certificate authority is involved.
type Address [AddressLen]byte

// String returns the address as lowercase hex.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// Identity is a user's key pair set: Ed25519 for signatures, X25519 for
// encryption key agreement.
type Identity struct {
	signKey ed25519.PrivateKey
	dhKey   *ecdh.PrivateKey
}

// PublicIdentity is the shareable half of an Identity. It is what Bob hands
// Alice out-of-band (the paper suggests a QR code) together with his
// postbox building.
type PublicIdentity struct {
	SignPub ed25519.PublicKey
	DHPub   *ecdh.PublicKey
}

// NewIdentity generates a fresh identity from the given entropy source.
func NewIdentity(rand io.Reader) (*Identity, error) {
	_, signKey, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("postbox: generate signing key: %w", err)
	}
	dhKey, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("postbox: generate DH key: %w", err)
	}
	return &Identity{signKey: signKey, dhKey: dhKey}, nil
}

// Public returns the shareable public identity.
func (id *Identity) Public() PublicIdentity {
	return PublicIdentity{
		SignPub: id.signKey.Public().(ed25519.PublicKey),
		DHPub:   id.dhKey.PublicKey(),
	}
}

// Address returns the identity's self-certifying address.
func (id *Identity) Address() Address { return id.Public().Address() }

// Address derives the self-certifying address: truncated
// SHA-256(signPub || dhPub).
func (p PublicIdentity) Address() Address {
	h := sha256.New()
	h.Write(p.SignPub)
	h.Write(p.DHPub.Bytes())
	var a Address
	copy(a[:], h.Sum(nil))
	return a
}

// Verify reports whether the public identity hashes to the claimed
// address — the self-certification check.
func (p PublicIdentity) Verify(claimed Address) bool { return p.Address() == claimed }

// Encode serializes the public identity (32-byte sign key + 32-byte DH key).
func (p PublicIdentity) Encode() []byte {
	out := make([]byte, 0, 64)
	out = append(out, p.SignPub...)
	out = append(out, p.DHPub.Bytes()...)
	return out
}

// DecodePublicIdentity parses the 64-byte encoding from Encode.
func DecodePublicIdentity(b []byte) (PublicIdentity, error) {
	if len(b) != 64 {
		return PublicIdentity{}, fmt.Errorf("postbox: public identity must be 64 bytes, got %d", len(b))
	}
	dhPub, err := ecdh.X25519().NewPublicKey(b[32:64])
	if err != nil {
		return PublicIdentity{}, fmt.Errorf("postbox: bad DH key: %w", err)
	}
	return PublicIdentity{
		SignPub: ed25519.PublicKey(append([]byte(nil), b[:32]...)),
		DHPub:   dhPub,
	}, nil
}

// PostboxInfo is everything Bob shares with Alice out-of-band (§3 step 1):
// his public identity and the building that hosts his postbox.
type PostboxInfo struct {
	Identity PublicIdentity
	Building int // dense building index of the postbox AP's building
}

// EncodePostboxInfo serializes info compactly (QR-code friendly: 68 bytes).
func EncodePostboxInfo(info PostboxInfo) []byte {
	out := info.Identity.Encode()
	b := info.Building
	out = append(out, byte(b>>24), byte(b>>16), byte(b>>8), byte(b))
	return out
}

// DecodePostboxInfo parses EncodePostboxInfo output.
func DecodePostboxInfo(b []byte) (PostboxInfo, error) {
	if len(b) != 68 {
		return PostboxInfo{}, fmt.Errorf("postbox: info must be 68 bytes, got %d", len(b))
	}
	pid, err := DecodePublicIdentity(b[:64])
	if err != nil {
		return PostboxInfo{}, err
	}
	building := int(b[64])<<24 | int(b[65])<<16 | int(b[66])<<8 | int(b[67])
	return PostboxInfo{Identity: pid, Building: building}, nil
}

// Sign signs an application-level message with the identity's Ed25519 key
// (used e.g. by the postbox retrieval protocol).
func (id *Identity) Sign(msg []byte) []byte { return ed25519.Sign(id.signKey, msg) }

// VerifySig checks an application-level signature made by Sign.
func (p PublicIdentity) VerifySig(msg, sig []byte) bool {
	return ed25519.Verify(p.SignPub, msg, sig)
}
