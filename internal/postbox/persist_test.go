package postbox

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func addr(b byte) Address {
	var a Address
	a[0] = b
	return a
}

// TestPersistCrashReopen is the core crash-safety property: messages
// accepted before an abrupt death (no Sync, no Close — the store is simply
// abandoned, as SIGKILL would) are all present after OpenDir on the same
// directory.
func TestPersistCrashReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	alice, bob := addr(1), addr(2)
	for i := 0; i < 5; i++ {
		s.Put(alice, []byte(fmt.Sprintf("to alice %d", i)), false)
	}
	s.Put(bob, []byte("to bob"), true)
	// No Sync, no Close: simulate SIGKILL by abandoning the store.

	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := r.Retrieve(alice, 0, 0)
	if len(got) != 5 {
		t.Fatalf("alice has %d messages after reopen, want 5", len(got))
	}
	for i, m := range got {
		want := fmt.Sprintf("to alice %d", i)
		if string(m.Sealed) != want {
			t.Errorf("message %d = %q, want %q", i, m.Sealed, want)
		}
		if i > 0 && m.Seq <= got[i-1].Seq {
			t.Errorf("seq not increasing: %d then %d", got[i-1].Seq, m.Seq)
		}
	}
	bobs := r.Retrieve(bob, 0, 0)
	if len(bobs) != 1 || !bobs[0].Urgent {
		t.Fatalf("bob's box = %+v", bobs)
	}
	// Sequence numbers continue past the replayed history.
	next := r.Put(alice, []byte("post-restart"), false)
	if next.Seq <= got[len(got)-1].Seq {
		t.Errorf("post-restart seq %d not above replayed max %d", next.Seq, got[len(got)-1].Seq)
	}
}

func TestPersistAckSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := addr(3)
	var second uint64
	for i := 0; i < 3; i++ {
		m := s.Put(a, []byte{byte(i)}, false)
		if i == 1 {
			second = m.Seq
		}
	}
	s.Ack(a, second)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := r.Retrieve(a, 0, 0)
	if len(got) != 1 || got[0].Sealed[0] != 2 {
		t.Fatalf("after acked reopen: %+v", got)
	}
}

func TestPersistTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := addr(4)
	s.Put(a, []byte("whole one"), false)
	s.Put(a, []byte("whole two"), false)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate power loss mid-append: garbage half-record at the tail.
	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 99, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(logPath)

	r, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("torn tail must not prevent open: %v", err)
	}
	got := r.Retrieve(a, 0, 0)
	if len(got) != 2 {
		t.Fatalf("torn tail: %d messages, want 2", len(got))
	}
	// The tail was truncated, and the log accepts new appends cleanly.
	after, _ := os.Stat(logPath)
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	r.Put(a, []byte("post-tear"), false)
	r.Close()

	r2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Retrieve(a, 0, 0); len(got) != 3 {
		t.Fatalf("after post-tear append: %d messages, want 3", len(got))
	}
}

func TestPersistCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, WithCompactThreshold(256))
	if err != nil {
		t.Fatal(err)
	}
	a := addr(5)
	payload := bytes.Repeat([]byte{0x42}, 64)
	for i := 0; i < 20; i++ {
		s.Put(a, payload, false)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("compaction never produced a snapshot: %v", err)
	}
	if lb := s.LogBytes(); lb >= 20*64 {
		t.Errorf("log not reset by compaction: %d bytes", lb)
	}
	s.Close()

	r, err := OpenDir(dir, WithCompactThreshold(256))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Retrieve(a, 0, 0); len(got) != 20 {
		t.Fatalf("after compacted reopen: %d messages, want 20", len(got))
	}
}

func TestPersistManualCompactAndAck(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b := addr(6), addr(7)
	s.Put(a, []byte("a1"), false)
	m := s.Put(b, []byte("b1"), false)
	s.Put(b, []byte("b2"), false)
	s.Ack(b, m.Seq)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.LogBytes() != 0 {
		t.Errorf("log bytes after compact = %d", s.LogBytes())
	}
	s.Close()

	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Retrieve(a, 0, 0); len(got) != 1 {
		t.Fatalf("a: %d messages, want 1", len(got))
	}
	if got := r.Retrieve(b, 0, 0); len(got) != 1 || string(got[0].Sealed) != "b2" {
		t.Fatalf("b: %+v", got)
	}
}

func TestPersistRetentionAtReplay(t *testing.T) {
	dir := t.TempDir()
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	s, err := OpenDir(dir, WithClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	a := addr(8)
	stale := s.Put(a, []byte("stale"), false)
	s.Close()

	later := now.Add(100 * time.Hour) // beyond the 72 h default retention
	r, err := OpenDir(dir, WithClock(func() time.Time { return later }))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Retrieve(a, 0, 0); len(got) != 0 {
		t.Fatalf("expired message survived replay: %+v", got)
	}
	// Seq must still advance past the expired history.
	if m := r.Put(a, []byte("fresh"), false); m.Seq <= stale.Seq {
		t.Errorf("seq %d did not advance past expired %d", m.Seq, stale.Seq)
	}
}

func TestPersistCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapName), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}
}

func TestInMemoryStoreUnaffected(t *testing.T) {
	s := NewStore()
	s.Put(addr(9), []byte("x"), false)
	if err := s.Sync(); err != nil {
		t.Errorf("Sync on in-memory store: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close on in-memory store: %v", err)
	}
	if s.Dir() != "" {
		t.Errorf("Dir = %q", s.Dir())
	}
	// Still usable after Close.
	if s.Put(addr(9), []byte("y"), false).Seq != 2 {
		t.Error("in-memory store broken after Close")
	}
}
