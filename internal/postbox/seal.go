package postbox

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// ErrDecrypt is returned when a sealed message cannot be opened: wrong
// recipient, corruption, or tampering.
var ErrDecrypt = errors.New("postbox: cannot decrypt sealed message")

// ErrBadSignature is returned when the inner sender signature fails.
var ErrBadSignature = errors.New("postbox: sender signature invalid")

const (
	ephKeyLen = 32
	nonceLen  = 12
	sigLen    = ed25519.SignatureSize
	// sealOverhead is the fixed expansion of Seal beyond the plaintext.
	sealOverhead = ephKeyLen + nonceLen + 64 /*sender pub*/ + sigLen + 16 /*GCM tag*/
)

// Seal encrypts plaintext from sender to the recipient public identity.
//
// Layout: ephemeralPub(32) | nonce(12) | AES-256-GCM ciphertext of
// (senderPublicIdentity(64) | signature(64) | plaintext), where the
// signature covers (ephemeralPub | recipientAddress | plaintext) and the
// AEAD is additionally bound to the ephemeral key and recipient address via
// associated data. The sender's identity travels inside the ciphertext, so
// an observer learns only the recipient address already present in the
// packet header.
func Seal(rand io.Reader, sender *Identity, recipient PublicIdentity, plaintext []byte) ([]byte, error) {
	eph, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("postbox: ephemeral key: %w", err)
	}
	shared, err := eph.ECDH(recipient.DHPub)
	if err != nil {
		return nil, fmt.Errorf("postbox: ECDH: %w", err)
	}
	rcptAddr := recipient.Address()
	key := deriveKey(shared, eph.PublicKey().Bytes(), recipient.DHPub.Bytes())

	var nonce [nonceLen]byte
	if _, err := io.ReadFull(rand, nonce[:]); err != nil {
		return nil, fmt.Errorf("postbox: nonce: %w", err)
	}

	signed := make([]byte, 0, ephKeyLen+AddressLen+len(plaintext))
	signed = append(signed, eph.PublicKey().Bytes()...)
	signed = append(signed, rcptAddr[:]...)
	signed = append(signed, plaintext...)
	sig := ed25519.Sign(sender.signKey, signed)

	inner := make([]byte, 0, 64+sigLen+len(plaintext))
	inner = append(inner, sender.Public().Encode()...)
	inner = append(inner, sig...)
	inner = append(inner, plaintext...)

	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, ephKeyLen+nonceLen+len(inner)+16)
	out = append(out, eph.PublicKey().Bytes()...)
	out = append(out, nonce[:]...)
	ad := associatedData(eph.PublicKey().Bytes(), rcptAddr)
	out = aead.Seal(out, nonce[:], inner, ad)
	return out, nil
}

// Open decrypts a sealed message addressed to recipient, verifies the inner
// signature, and returns the plaintext and the sender's public identity.
func Open(recipient *Identity, sealed []byte) ([]byte, PublicIdentity, error) {
	if len(sealed) < sealOverhead {
		return nil, PublicIdentity{}, ErrDecrypt
	}
	ephPubBytes := sealed[:ephKeyLen]
	nonce := sealed[ephKeyLen : ephKeyLen+nonceLen]
	ct := sealed[ephKeyLen+nonceLen:]

	ephPub, err := ecdh.X25519().NewPublicKey(ephPubBytes)
	if err != nil {
		return nil, PublicIdentity{}, ErrDecrypt
	}
	shared, err := recipient.dhKey.ECDH(ephPub)
	if err != nil {
		return nil, PublicIdentity{}, ErrDecrypt
	}
	key := deriveKey(shared, ephPubBytes, recipient.dhKey.PublicKey().Bytes())
	aead, err := newGCM(key)
	if err != nil {
		return nil, PublicIdentity{}, err
	}
	rcptAddr := recipient.Address()
	inner, err := aead.Open(nil, nonce, ct, associatedData(ephPubBytes, rcptAddr))
	if err != nil {
		return nil, PublicIdentity{}, ErrDecrypt
	}
	if len(inner) < 64+sigLen {
		return nil, PublicIdentity{}, ErrDecrypt
	}
	senderPub, err := DecodePublicIdentity(inner[:64])
	if err != nil {
		return nil, PublicIdentity{}, ErrDecrypt
	}
	sig := inner[64 : 64+sigLen]
	plaintext := inner[64+sigLen:]

	signed := make([]byte, 0, ephKeyLen+AddressLen+len(plaintext))
	signed = append(signed, ephPubBytes...)
	signed = append(signed, rcptAddr[:]...)
	signed = append(signed, plaintext...)
	if !ed25519.Verify(senderPub.SignPub, signed, sig) {
		return nil, PublicIdentity{}, ErrBadSignature
	}
	return plaintext, senderPub, nil
}

// deriveKey hashes the ECDH shared secret with both public contributions
// into an AES-256 key.
func deriveKey(shared, ephPub, rcptPub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("citymesh-postbox-v1"))
	h.Write(shared)
	h.Write(ephPub)
	h.Write(rcptPub)
	return h.Sum(nil)
}

func associatedData(ephPub []byte, rcpt Address) []byte {
	ad := make([]byte, 0, len(ephPub)+AddressLen)
	ad = append(ad, ephPub...)
	ad = append(ad, rcpt[:]...)
	return ad
}

func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("postbox: AES: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("postbox: GCM: %w", err)
	}
	return aead, nil
}
