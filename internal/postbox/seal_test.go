package postbox

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"io"
	"testing"
)

func TestSealOverheadFixed(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	for _, n := range []int{0, 1, 100} {
		sealed, err := Seal(rand.Reader, alice, bob.Public(), make([]byte, n))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(sealed), n+sealOverhead; got != want {
			t.Errorf("%d-byte plaintext: sealed length %d, want %d", n, got, want)
		}
	}
}

func TestSealOpenEmptyPlaintext(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	sealed, err := Seal(rand.Reader, alice, bob.Public(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, sender, err := Open(bob, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty plaintext round-tripped to %q", got)
	}
	if sender.Address() != alice.Address() {
		t.Error("sender identity lost on empty plaintext")
	}
}

func TestOpenTamperedEveryByte(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	sealed, err := Seal(rand.Reader, alice, bob.Public(), []byte("integrity matters"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit at every position — ephemeral key, nonce, ciphertext,
	// tag. Every variant must fail closed with ErrDecrypt, never a wrong
	// plaintext or a signature error that leaks which layer broke first.
	for i := range sealed {
		tampered := append([]byte(nil), sealed...)
		tampered[i] ^= 0x01
		if _, _, err := Open(bob, tampered); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("bit flip at byte %d: got %v, want ErrDecrypt", i, err)
		}
	}
}

func TestOpenTruncatedBoundaries(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	sealed, err := Seal(rand.Reader, alice, bob.Public(), []byte("short me"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, ephKeyLen, ephKeyLen + nonceLen, sealOverhead - 1, len(sealed) - 1} {
		if _, _, err := Open(bob, sealed[:n]); !errors.Is(err, ErrDecrypt) {
			t.Errorf("truncated to %d bytes: got %v, want ErrDecrypt", n, err)
		}
	}
}

// sealWithBadSig replicates Seal's layout but signs the wrong bytes, so the
// AEAD opens cleanly and only the inner signature check can catch the
// forgery.
func sealWithBadSig(t *testing.T, sender *Identity, recipient PublicIdentity, plaintext []byte) []byte {
	t.Helper()
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := eph.ECDH(recipient.DHPub)
	if err != nil {
		t.Fatal(err)
	}
	rcptAddr := recipient.Address()
	key := deriveKey(shared, eph.PublicKey().Bytes(), recipient.DHPub.Bytes())

	var nonce [nonceLen]byte
	if _, err := io.ReadFull(rand.Reader, nonce[:]); err != nil {
		t.Fatal(err)
	}

	sig := ed25519.Sign(sender.signKey, []byte("not the transcript Seal signs"))
	inner := make([]byte, 0, 64+sigLen+len(plaintext))
	inner = append(inner, sender.Public().Encode()...)
	inner = append(inner, sig...)
	inner = append(inner, plaintext...)

	aead, err := newGCM(key)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 0, ephKeyLen+nonceLen+len(inner)+16)
	out = append(out, eph.PublicKey().Bytes()...)
	out = append(out, nonce[:]...)
	return aead.Seal(out, nonce[:], inner, associatedData(eph.PublicKey().Bytes(), rcptAddr))
}

// TestOpenReplayedCiphertextAccepted pins the crypto layer's replay
// contract: Open is stateless, so a byte-identical replay of a sealed
// message decrypts again — same plaintext, same authenticated sender — and
// is ACCEPTED here by design. Replay suppression is the receive path's job
// (agent per-(source, msgID) detection feeding DroppedReplayed), not the
// sealed envelope's; this test exists so that division of labor is a pinned
// decision rather than an accident.
func TestOpenReplayedCiphertextAccepted(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	sealed, err := Seal(rand.Reader, alice, bob.Public(), []byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	first, sender1, err := Open(bob, sealed)
	if err != nil {
		t.Fatal(err)
	}
	// The replay: the exact same ciphertext, delivered again.
	replayed := append([]byte(nil), sealed...)
	second, sender2, err := Open(bob, replayed)
	if err != nil {
		t.Fatalf("replayed ciphertext must still open (statelessness): %v", err)
	}
	if string(first) != "once" || string(second) != string(first) {
		t.Errorf("replay decrypted to %q, original to %q", second, first)
	}
	if sender1.Address() != alice.Address() || sender2.Address() != sender1.Address() {
		t.Error("replay changed the authenticated sender")
	}
}

func TestOpenBadInnerSignature(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	sealed := sealWithBadSig(t, alice, bob.Public(), []byte("forged"))
	if _, _, err := Open(bob, sealed); !errors.Is(err, ErrBadSignature) {
		t.Errorf("bad inner signature: got %v, want ErrBadSignature", err)
	}
}
