package postbox

import "testing"

func TestDecodePublicIdentityRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, 32, 63, 65, 128} {
		if _, err := DecodePublicIdentity(make([]byte, n)); err == nil {
			t.Errorf("%d-byte input: want error, got nil", n)
		}
	}
}

func TestSignVerifySig(t *testing.T) {
	id := mustIdentity(t)
	other := mustIdentity(t)
	msg := []byte("retrieve postbox after seq 42")
	sig := id.Sign(msg)
	if !id.Public().VerifySig(msg, sig) {
		t.Error("valid signature rejected")
	}
	if id.Public().VerifySig([]byte("different message"), sig) {
		t.Error("signature verified against a different message")
	}
	if other.Public().VerifySig(msg, sig) {
		t.Error("signature verified under the wrong key")
	}
}

func TestIdentityAddressMatchesPublic(t *testing.T) {
	id := mustIdentity(t)
	if id.Address() != id.Public().Address() {
		t.Error("Identity.Address disagrees with PublicIdentity.Address")
	}
	if id.Address() == (Address{}) {
		t.Error("address is all zeros")
	}
}
